# Development targets. `make check` is the gate every change must
# pass: build, formatting, vet, the full test suite, and the same
# suite under the race detector — the concurrency in internal/parallel
# and the codec's sharded motion search make -race non-negotiable
# (see ARCHITECTURE.md, determinism guarantees).

GO ?= go

.PHONY: all build fmt vet test race bench check

all: check

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required for:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reduced-scale reproduction of every figure benchmark.
bench:
	$(GO) test -bench . -benchtime 1x

check: build fmt vet test race
