# Development targets. `make check` is the gate every change must
# pass: build, formatting, vet, the full test suite, and the same
# suite under the race detector — the concurrency in internal/parallel
# and the codec's sharded motion search make -race non-negotiable
# (see ARCHITECTURE.md, determinism guarantees).

GO ?= go

.PHONY: all build fmt vet test race bench fuzz check

# Seconds each fuzz target runs under `make fuzz` (CI uses the same
# smoke budget; raise it locally for a real fuzzing session).
FUZZTIME ?= 5s

all: check

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required for:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reduced-scale reproduction of every figure benchmark.
bench:
	$(GO) test -bench . -benchtime 1x

# Short fuzz smoke over every fuzz target (decoder, entropy reader,
# stream container). Each target gets FUZZTIME.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/codec/
	$(GO) test -run xxx -fuzz FuzzEncodeSpecFingerprint -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run xxx -fuzz FuzzReadEvent -fuzztime $(FUZZTIME) ./internal/entropy/
	$(GO) test -run xxx -fuzz FuzzReadUE -fuzztime $(FUZZTIME) ./internal/entropy/
	$(GO) test -run xxx -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/stream/

check: build fmt vet test race
