# Development targets. `make check` is the gate every change must
# pass: build, formatting, vet, the full test suite, and the same
# suite under the race detector — the concurrency in internal/parallel
# and the codec's sharded motion search make -race non-negotiable
# (see ARCHITECTURE.md, determinism guarantees).

GO ?= go

.PHONY: all build fmt vet test race bench bench-json docs-lint fuzz soak-smoke check

# Seconds each fuzz target runs under `make fuzz` (CI uses the same
# smoke budget; raise it locally for a real fuzzing session).
FUZZTIME ?= 5s

all: check

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required for:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Reduced-scale reproduction of every figure benchmark.
bench:
	$(GO) test -bench . -benchtime 1x

# Benchtime for the kernel micro-benchmarks feeding BENCH_kernels.json.
# 0.5s per benchmark keeps a full regeneration under two minutes while
# giving stable ns/op on the tiny kernels.
BENCHTIME ?= 0.5s

# Regenerate the committed benchmark trajectories, parsed into JSON
# by pbpair-benchjson so they can be diffed across revisions:
#  - BENCH_kernels.json: the encode-phase fast/reference kernel pairs
#    (SAD, half-pel, DCT, bitstream, VLC) plus the end-to-end encoder.
#  - BENCH_sim.json: the simulate-phase pairs (fused frame metrics,
#    concealment boundary matching) plus the decoder, gated by
#    -check-pairs — the build fails if any fast kernel measures
#    slower than the scalar reference it replaced.
#  - BENCH_analytic.json: the closed-form grid engine, gated on its
#    points/s and mc_speedup_x metrics being present (the speedup vs
#    an equivalent 5-seed Monte-Carlo cell, documented >= 100x).
#  - BENCH_mc.json: the bit-packed Monte-Carlo batch engine, gated on
#    its documented floors — the dedup speedup over the scalar trial
#    loop (>= 20x at 5% loss) and the figure-level bar (a 10k-trial
#    Figure 5 point at most 2x the 5-seed Fig5Multi wall-clock,
#    i.e. vs_5seed_x >= 0.5).
#  - BENCH_serve.json: the serving layer, gated on the 10k-session
#    scale figure — aggregate frames/s over the full run (>= 10000,
#    the sharded-datapath floor), genuinely batched receives (>= 5
#    datagrams per recvmmsg wakeup under the fleet's per-frame report
#    torrent), at least one lineage re-merge proving the fork ->
#    quiesce -> fold-back lifecycle fires under full fanout load, and
#    shard_rx_balance >= 0.5 — the kernel's SO_REUSEPORT steering must
#    actually spread the fleet across the receive shards.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkSAD|BenchmarkCompensateHalf|BenchmarkForward|BenchmarkInverse|BenchmarkWriteBits|BenchmarkReadBits|BenchmarkWriteEvent|BenchmarkReadEvent|BenchmarkEncodeParallel' \
		-benchmem -benchtime $(BENCHTIME) \
		./internal/motion/ ./internal/dct/ ./internal/bitstream/ ./internal/entropy/ . \
		| $(GO) run ./cmd/pbpair-benchjson -out BENCH_kernels.json
	@echo wrote BENCH_kernels.json
	$(GO) test -run xxx -bench 'BenchmarkFrameStats|BenchmarkBadPixels|BenchmarkBoundaryCost|BenchmarkConceal|BenchmarkDecodeFrame' \
		-benchmem -benchtime $(BENCHTIME) \
		./internal/metrics/ ./internal/conceal/ ./internal/codec/ \
		| $(GO) run ./cmd/pbpair-benchjson -check-pairs -out BENCH_sim.json
	@echo wrote BENCH_sim.json
	$(GO) test -run xxx -bench 'BenchmarkServe' -benchtime $(BENCHTIME) \
		./internal/serve/ \
		| $(GO) run ./cmd/pbpair-benchjson \
			-require 'BenchmarkServeFarm:frames/s,BenchmarkServeFarm:MB/s,BenchmarkServeFarm:p50_us,BenchmarkServeFarm:p99_us,BenchmarkServeThroughput:frames/s,BenchmarkServeThroughput:MB/s,BenchmarkServeFarm10k:frames/s,BenchmarkServeFarm10k:datagrams_per_syscall,BenchmarkServeFarm10k:lineage_merges,BenchmarkServeFarm10k:shard_rx_balance' \
			-min 'BenchmarkServeFarm10k:frames/s=10000,BenchmarkServeFarm10k:datagrams_per_syscall=5,BenchmarkServeFarm10k:lineage_merges=1,BenchmarkServeFarm10k:shard_rx_balance=0.5' \
			-out BENCH_serve.json
	@echo wrote BENCH_serve.json
	$(GO) test -run xxx -bench 'BenchmarkAnalyticGrid' -benchtime $(BENCHTIME) \
		./internal/experiment/ \
		| $(GO) run ./cmd/pbpair-benchjson \
			-require 'BenchmarkAnalyticGrid:points/s,BenchmarkAnalyticGrid:mc_speedup_x' \
			-out BENCH_analytic.json
	@echo wrote BENCH_analytic.json
	$(GO) test -run xxx -bench 'BenchmarkSimBatch$$|BenchmarkFig5BatchPoint' -benchtime $(BENCHTIME) \
		./internal/experiment/ \
		| $(GO) run ./cmd/pbpair-benchjson \
			-require 'BenchmarkSimBatch:trials/s,BenchmarkSimBatch:lanes_per_decode,BenchmarkFig5BatchPoint:trials/s' \
			-min 'BenchmarkSimBatch:speedup_x=20,BenchmarkFig5BatchPoint:vs_5seed_x=0.5' \
			-out BENCH_mc.json
	@echo wrote BENCH_mc.json

# Session-churn smoke under the race detector: a fixed pool of client
# slots that finish and immediately rejoin, over and over — the
# lifecycle stress (ephemeral-port reuse, metric teardown racing
# admission, lineage membership folding) that a fixed fleet never
# exercises. Deliberately small so it stays well under 30 seconds on
# two cores; the full-scale version is TestSoakTenThousandSessions.
soak-smoke:
	GOMAXPROCS=2 $(GO) test -race -run TestChurnSoak -count=1 ./internal/serve/

# Documentation gate: every relative link in the repo's markdown must
# resolve, and the operator guide must track the code — pbpair-mdlint
# cross-checks OPERATIONS.md against the live pbpair-serve/pbpair-load
# flag sets and the serve-layer metric names.
docs-lint:
	$(GO) run ./cmd/pbpair-mdlint .

# Short fuzz smoke over every fuzz target: decoder, entropy reader,
# stream container, the fast-vs-reference kernel equivalence harness
# (SAD, DCT, bitstream, VLC, frame metrics, concealment) and the
# analytic-vs-Monte-Carlo agreement check. Each target gets FUZZTIME.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/codec/
	$(GO) test -run xxx -fuzz FuzzEncodeSpecFingerprint -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run xxx -fuzz FuzzAnalyticVsMC -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run xxx -fuzz FuzzBatchVsScalar -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run xxx -fuzz FuzzReadEvent -fuzztime $(FUZZTIME) ./internal/entropy/
	$(GO) test -run xxx -fuzz FuzzReadUE -fuzztime $(FUZZTIME) ./internal/entropy/
	$(GO) test -run xxx -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -run xxx -fuzz FuzzSADEquiv -fuzztime $(FUZZTIME) ./internal/motion/
	$(GO) test -run xxx -fuzz FuzzMetricsEquiv -fuzztime $(FUZZTIME) ./internal/metrics/
	$(GO) test -run xxx -fuzz FuzzConcealEquiv -fuzztime $(FUZZTIME) ./internal/conceal/
	$(GO) test -run xxx -fuzz FuzzDCTEquiv -fuzztime $(FUZZTIME) ./internal/dct/
	$(GO) test -run xxx -fuzz FuzzBitstreamEquiv -fuzztime $(FUZZTIME) ./internal/bitstream/
	$(GO) test -run xxx -fuzz FuzzVLCDecodeEquiv -fuzztime $(FUZZTIME) ./internal/entropy/

check: build fmt vet test race soak-smoke docs-lint
