package metrics

import "math"

// Dist summarizes one metric across independent Monte-Carlo trials
// (the per-trial values of a batch simulation — see
// experiment.SimBatch). Std is the sample standard deviation (n−1
// denominator, 0 for fewer than two trials); CI95 is the
// normal-approximation 95% confidence half-width 1.96·Std/√N, which is
// what the figure emitters print as "mean ± ci95". The normal
// approximation is justified by the trial counts the batch engine
// targets (hundreds to tens of thousands), not by small-n samples.
type Dist struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
	Min  float64
	Max  float64
}

// StdErr returns the standard error of the mean, Std/√N (0 when N is
// zero).
func (d Dist) StdErr() float64 {
	if d.N == 0 {
		return 0
	}
	return d.Std / math.Sqrt(float64(d.N))
}

// Summarize reduces per-trial values to a Dist. The mean is the plain
// left-to-right sum over xs divided by len(xs), matching Series.Mean's
// accumulation order so a one-trial batch agrees bitwise with the
// scalar path.
func Summarize(xs []float64) Dist {
	d := Dist{N: len(xs)}
	if d.N == 0 {
		return d
	}
	sum := 0.0
	d.Min, d.Max = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	d.Mean = sum / float64(d.N)
	if d.N > 1 {
		ss := 0.0
		for _, x := range xs {
			dx := x - d.Mean
			ss += dx * dx
		}
		d.Std = math.Sqrt(ss / float64(d.N-1))
		d.CI95 = 1.96 * d.StdErr()
	}
	return d
}
