package metrics

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }

	d := Summarize(nil)
	if d.N != 0 || d.Mean != 0 || d.Std != 0 || d.CI95 != 0 {
		t.Fatalf("empty input: %+v", d)
	}

	d = Summarize([]float64{3.5})
	if d.N != 1 || d.Mean != 3.5 || d.Std != 0 || d.CI95 != 0 || d.Min != 3.5 || d.Max != 3.5 {
		t.Fatalf("single trial: %+v", d)
	}

	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	d = Summarize(xs)
	if d.N != 8 || !approx(d.Mean, 5) || d.Min != 2 || d.Max != 9 {
		t.Fatalf("known sample: %+v", d)
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if !approx(d.Std, wantStd) {
		t.Fatalf("std = %v, want %v", d.Std, wantStd)
	}
	if !approx(d.CI95, 1.96*wantStd/math.Sqrt(8)) {
		t.Fatalf("ci95 = %v, want %v", d.CI95, 1.96*wantStd/math.Sqrt(8))
	}
	if !approx(d.StdErr(), wantStd/math.Sqrt(8)) {
		t.Fatalf("stderr = %v", d.StdErr())
	}
}

// TestSummarizeMatchesSeriesMean pins the bitwise agreement contract
// with Series.Mean: same values, same accumulation order, identical
// float result.
func TestSummarizeMatchesSeriesMean(t *testing.T) {
	var s Series
	xs := make([]float64, 0, 100)
	x := 0.1
	for i := 0; i < 100; i++ {
		x = x*1.37 + 0.11
		s.Add(x)
		xs = append(xs, x)
	}
	if got, want := Summarize(xs).Mean, s.Mean(); got != want {
		t.Fatalf("Summarize mean %v != Series mean %v", got, want)
	}
}
