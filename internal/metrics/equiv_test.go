package metrics

import (
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// Differential harness: the word-parallel metrics must be bit-exact
// with the scalar *Ref originals — identical floats (not approximately
// equal; the kernels reorder only non-negative integer additions) and
// identical counts, for any frame contents and any threshold.

func randFrame(rng *rand.Rand, w, h int, extreme bool) *video.Frame {
	f := video.NewFrame(w, h)
	for i := range f.Y {
		if extreme {
			f.Y[i] = []byte{0, 1, 127, 128, 254, 255}[rng.Intn(6)]
		} else {
			f.Y[i] = byte(rng.Intn(256))
		}
	}
	return f
}

// nearCopy clones f and perturbs a few pixels, so the mse==0 and
// tiny-difference paths are exercised.
func nearCopy(rng *rand.Rand, f *video.Frame) *video.Frame {
	g := f.Clone()
	for k := rng.Intn(8); k > 0; k-- {
		g.Y[rng.Intn(len(g.Y))] ^= byte(1 << rng.Intn(8))
	}
	return g
}

func checkEquiv(t *testing.T, ref, rec *video.Frame, threshold int) {
	t.Helper()
	mse, err1 := MSE(ref, rec)
	mseRef, err2 := MSERef(ref, rec)
	if (err1 == nil) != (err2 == nil) || mse != mseRef {
		t.Fatalf("MSE = %v (err %v), MSERef = %v (err %v)", mse, err1, mseRef, err2)
	}
	psnr, _ := PSNR(ref, rec)
	psnrRef, _ := PSNRRef(ref, rec)
	if psnr != psnrRef {
		t.Fatalf("PSNR = %v, PSNRRef = %v", psnr, psnrRef)
	}
	bad, _ := BadPixels(ref, rec, threshold)
	badRef, _ := BadPixelsRef(ref, rec, threshold)
	if bad != badRef {
		t.Fatalf("BadPixels(th=%d) = %d, BadPixelsRef = %d", threshold, bad, badRef)
	}
	st, err := Stats(ref, rec, threshold)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Pixels != len(ref.Y) || st.MSE() != mseRef || st.PSNR() != psnrRef || st.Bad != badRef {
		t.Fatalf("Stats(th=%d) = %+v (MSE %v, PSNR %v), want MSE %v PSNR %v Bad %d",
			threshold, st, st.MSE(), st.PSNR(), mseRef, psnrRef, badRef)
	}
}

func TestMetricsEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	thresholds := []int{-1, 0, 1, 19, 20, 21, 127, 253, 254, 255, 1000}
	for iter := 0; iter < 300; iter++ {
		w := (1 + rng.Intn(4)) * video.MBSize
		h := (1 + rng.Intn(4)) * video.MBSize
		a := randFrame(rng, w, h, iter%3 == 0)
		var b *video.Frame
		switch iter % 4 {
		case 0:
			b = a.Clone() // identical: MSE 0, PSNR MaxPSNR
		case 1:
			b = nearCopy(rng, a)
		default:
			b = randFrame(rng, w, h, iter%5 == 0)
		}
		checkEquiv(t, a, b, thresholds[iter%len(thresholds)])
	}
}

func TestMetricsDimensionMismatch(t *testing.T) {
	a := video.NewFrame(16, 16)
	b := video.NewFrame(32, 16)
	if _, err := MSE(a, b); err == nil {
		t.Error("MSE: want dimension error")
	}
	if _, err := PSNR(a, b); err == nil {
		t.Error("PSNR: want dimension error")
	}
	if _, err := BadPixels(a, b, 0); err == nil {
		t.Error("BadPixels: want dimension error")
	}
	if _, err := Stats(a, b, 0); err == nil {
		t.Error("Stats: want dimension error")
	}
}

// FuzzMetricsEquiv feeds arbitrary plane bytes and thresholds through
// both implementations. Part of `make fuzz`.
func FuzzMetricsEquiv(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0, 255, 128, 20, 21}, 20)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 255)
	f.Fuzz(func(t *testing.T, data []byte, threshold int) {
		if threshold < -1000 || threshold > 1000 {
			return
		}
		w, h := video.MBSize, video.MBSize
		if len(data) > 256 {
			w = 2 * video.MBSize
		}
		a := video.NewFrame(w, h)
		b := video.NewFrame(w, h)
		for i := range a.Y {
			if len(data) > 0 {
				a.Y[i] = data[i%len(data)]
				b.Y[i] = data[(i*7+3)%len(data)]
			}
		}
		mse, _ := MSE(a, b)
		mseRef, _ := MSERef(a, b)
		if mse != mseRef {
			t.Fatalf("MSE = %v, MSERef = %v", mse, mseRef)
		}
		psnr, _ := PSNR(a, b)
		psnrRef, _ := PSNRRef(a, b)
		if psnr != psnrRef {
			t.Fatalf("PSNR = %v, PSNRRef = %v", psnr, psnrRef)
		}
		bad, _ := BadPixels(a, b, threshold)
		badRef, _ := BadPixelsRef(a, b, threshold)
		if bad != badRef {
			t.Fatalf("BadPixels(th=%d) = %d, BadPixelsRef = %d", threshold, bad, badRef)
		}
		st, _ := Stats(a, b, threshold)
		if st.MSE() != mseRef || st.PSNR() != psnrRef || st.Bad != badRef {
			t.Fatalf("Stats(th=%d) = %+v, want MSE %v PSNR %v Bad %d",
				threshold, st, mseRef, psnrRef, badRef)
		}
	})
}
