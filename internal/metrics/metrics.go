// Package metrics implements the image-quality measures used in the
// paper's evaluation (Section 4.4): peak signal-to-noise ratio (PSNR)
// and the bad-pixel count, which the authors argue is a better error-
// resiliency metric because it counts perceptually broken pixels
// instead of averaging their reconstruction error.
package metrics

import (
	"fmt"
	"math"

	"pbpair/internal/video"
)

// DefaultBadPixelThreshold is the absolute luma difference beyond
// which a pixel counts as "bad". The paper defines a bad pixel as one
// with "significant difference from the original pixel value" without
// publishing the constant; 20 (of 255) is a conventional visibility
// threshold and is what all experiments here use unless overridden.
const DefaultBadPixelThreshold = 20

// MaxPSNR is returned for identical images, where the true PSNR is
// unbounded. 99.99 dB is the customary sentinel in codec tooling.
const MaxPSNR = 99.99

// MSE returns the mean squared error between the luma planes of a and
// b. The frames must have identical dimensions.
func MSE(a, b *video.Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("metrics: MSE between %dx%d and %dx%d frames",
			a.Width, a.Height, b.Width, b.Height)
	}
	var sum uint64
	for i := range a.Y {
		d := int64(a.Y[i]) - int64(b.Y[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a.Y)), nil
}

// PSNR returns the luma peak signal-to-noise ratio in decibels between
// a reference frame and a reconstruction. Identical frames yield
// MaxPSNR.
func PSNR(ref, rec *video.Frame) (float64, error) {
	mse, err := MSE(ref, rec)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return MaxPSNR, nil
	}
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > MaxPSNR {
		psnr = MaxPSNR
	}
	return psnr, nil
}

// BadPixels returns the number of luma pixels whose absolute
// difference from the reference exceeds threshold. A threshold <= 0
// selects DefaultBadPixelThreshold.
func BadPixels(ref, rec *video.Frame, threshold int) (int, error) {
	if ref.Width != rec.Width || ref.Height != rec.Height {
		return 0, fmt.Errorf("metrics: BadPixels between %dx%d and %dx%d frames",
			ref.Width, ref.Height, rec.Width, rec.Height)
	}
	if threshold <= 0 {
		threshold = DefaultBadPixelThreshold
	}
	count := 0
	for i := range ref.Y {
		d := int(ref.Y[i]) - int(rec.Y[i])
		if d < 0 {
			d = -d
		}
		if d > threshold {
			count++
		}
	}
	return count, nil
}

// Series accumulates a per-frame metric and reports aggregate
// statistics. The zero value is ready to use.
type Series struct {
	values []float64
}

// Add appends one observation.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.values) }

// Values returns a copy of the observations in insertion order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation, or 0 for fewer
// than two observations.
func (s *Series) StdDev() float64 {
	if len(s.values) < 2 {
		return 0
	}
	mean := s.Mean()
	var sum float64
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}
