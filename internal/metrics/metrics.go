// Package metrics implements the image-quality measures used in the
// paper's evaluation (Section 4.4): peak signal-to-noise ratio (PSNR)
// and the bad-pixel count, which the authors argue is a better error-
// resiliency metric because it counts perceptually broken pixels
// instead of averaging their reconstruction error.
//
// The hot kernels are word-parallel (internal/swar): the luma planes
// are traversed 16 bytes at a time and the squared-error sum and the
// bad-pixel count come out of one shared set of |a−b| lane words
// (Stats). The scalar originals are kept as exported *Ref functions in
// metrics_ref.go; TestMetricsEquiv / FuzzMetricsEquiv pin bit-exact
// equivalence. The integer accumulators only reorder non-negative
// additions, so MSE/PSNR float results are identical to the reference,
// not merely close.
package metrics

import (
	"fmt"
	"math"

	"pbpair/internal/swar"
	"pbpair/internal/video"
)

// DefaultBadPixelThreshold is the absolute luma difference beyond
// which a pixel counts as "bad". The paper defines a bad pixel as one
// with "significant difference from the original pixel value" without
// publishing the constant; 20 (of 255) is a conventional visibility
// threshold and is what all experiments here use unless overridden.
const DefaultBadPixelThreshold = 20

// MaxPSNR is returned for identical images, where the true PSNR is
// unbounded. 99.99 dB is the customary sentinel in codec tooling.
const MaxPSNR = 99.99

// FrameStats carries everything the simulate loop needs about one
// decoded frame versus its original, gathered in a single traversal of
// the luma planes: the squared-error sum feeding MSE/PSNR and the
// bad-pixel count. Pixels is the luma sample count (the MSE divisor).
type FrameStats struct {
	SSD    uint64 // Σ(ref−rec)² over luma
	Pixels int    // luma samples compared
	Bad    int    // luma samples with |ref−rec| > threshold
}

// MSE returns the mean squared error the stats represent — identical
// to the float the two-argument MSE function returns.
func (s FrameStats) MSE() float64 { return float64(s.SSD) / float64(s.Pixels) }

// PSNR derives the PSNR in decibels from the stats, with the same
// MaxPSNR saturation as the two-argument PSNR function.
func (s FrameStats) PSNR() float64 {
	if s.SSD == 0 {
		return MaxPSNR
	}
	psnr := 10 * math.Log10(255*255/s.MSE())
	if psnr > MaxPSNR {
		psnr = MaxPSNR
	}
	return psnr
}

// Stats computes FrameStats between a reference frame and a
// reconstruction in one pass over the luma planes. A threshold <= 0
// selects DefaultBadPixelThreshold. Bit-exact with running MSERef and
// BadPixelsRef separately (TestMetricsEquiv).
func Stats(ref, rec *video.Frame, threshold int) (FrameStats, error) {
	if ref.Width != rec.Width || ref.Height != rec.Height {
		return FrameStats{}, fmt.Errorf("metrics: Stats between %dx%d and %dx%d frames",
			ref.Width, ref.Height, rec.Width, rec.Height)
	}
	if threshold <= 0 {
		threshold = DefaultBadPixelThreshold
	}
	st := FrameStats{Pixels: len(ref.Y)}
	if threshold > 254 {
		// No byte difference can exceed a threshold ≥ 255; SSD only.
		st.SSD = swar.SqDiffSum(ref.Y, rec.Y)
	} else {
		st.SSD, st.Bad = swar.SSDCount(ref.Y, rec.Y, threshold)
	}
	return st, nil
}

// MSE returns the mean squared error between the luma planes of a and
// b. The frames must have identical dimensions.
//
// The loop stays scalar on purpose: a pure squared-difference pass has
// one multiply per pixel either way, and the SWAR lane extraction it
// would need measured slightly slower than this loop on the target
// (the scalar form runs superscalar). The word-parallel win for the
// simulate loop is Stats, which shares one traversal — and one set of
// |a−b| lanes — between the SSD and the bad-pixel count.
func MSE(a, b *video.Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("metrics: MSE between %dx%d and %dx%d frames",
			a.Width, a.Height, b.Width, b.Height)
	}
	var sum uint64
	for i := range a.Y {
		d := int64(a.Y[i]) - int64(b.Y[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a.Y)), nil
}

// PSNR returns the luma peak signal-to-noise ratio in decibels between
// a reference frame and a reconstruction. Identical frames yield
// MaxPSNR. For the combined PSNR + bad-pixel traversal use Stats.
func PSNR(ref, rec *video.Frame) (float64, error) {
	mse, err := MSE(ref, rec)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return MaxPSNR, nil
	}
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > MaxPSNR {
		psnr = MaxPSNR
	}
	return psnr, nil
}

// BadPixels returns the number of luma pixels whose absolute
// difference from the reference exceeds threshold. A threshold <= 0
// selects DefaultBadPixelThreshold. Word-parallel; bit-exact with
// BadPixelsRef.
func BadPixels(ref, rec *video.Frame, threshold int) (int, error) {
	if ref.Width != rec.Width || ref.Height != rec.Height {
		return 0, fmt.Errorf("metrics: BadPixels between %dx%d and %dx%d frames",
			ref.Width, ref.Height, rec.Width, rec.Height)
	}
	if threshold <= 0 {
		threshold = DefaultBadPixelThreshold
	}
	if threshold > 254 {
		return 0, nil // |a−b| ≤ 255 can never exceed a threshold ≥ 255
	}
	return swar.CountGT(ref.Y, rec.Y, threshold), nil
}

// Series accumulates a per-frame metric and reports aggregate
// statistics. The zero value is ready to use.
type Series struct {
	values []float64
}

// Add appends one observation.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.values) }

// Values returns a copy of the observations in insertion order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation, or 0 for fewer
// than two observations.
func (s *Series) StdDev() float64 {
	if len(s.values) < 2 {
		return 0
	}
	mean := s.Mean()
	var sum float64
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}
