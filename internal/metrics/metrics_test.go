package metrics

import (
	"math"
	"testing"

	"pbpair/internal/video"
)

func flatFrame(v uint8) *video.Frame {
	f := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	f.Fill(v, 128, 128)
	return f
}

func TestMSE(t *testing.T) {
	a := flatFrame(100)
	b := flatFrame(110)
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 100 {
		t.Fatalf("MSE = %v, want 100", mse)
	}
	if mse, _ := MSE(a, a); mse != 0 {
		t.Fatalf("MSE(a,a) = %v, want 0", mse)
	}
}

func TestMSEDimensionMismatch(t *testing.T) {
	a := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	b := video.NewFrame(video.SQCIFWidth, video.SQCIFHeight)
	if _, err := MSE(a, b); err == nil {
		t.Fatal("MSE across dimensions succeeded")
	}
	if _, err := PSNR(a, b); err == nil {
		t.Fatal("PSNR across dimensions succeeded")
	}
	if _, err := BadPixels(a, b, 10); err == nil {
		t.Fatal("BadPixels across dimensions succeeded")
	}
}

func TestPSNR(t *testing.T) {
	a := flatFrame(100)

	// Identical frames: sentinel max.
	p, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p != MaxPSNR {
		t.Fatalf("PSNR(identical) = %v, want %v", p, MaxPSNR)
	}

	// Uniform +10 offset: PSNR = 10*log10(255^2/100) ≈ 28.13 dB.
	b := flatFrame(110)
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", p, want)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	a := flatFrame(100)
	prev := math.Inf(1)
	for _, off := range []uint8{1, 2, 5, 10, 50} {
		b := flatFrame(100 + off)
		p, err := PSNR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("PSNR not decreasing: offset %d gives %v >= %v", off, p, prev)
		}
		prev = p
	}
}

func TestBadPixels(t *testing.T) {
	a := flatFrame(100)
	b := flatFrame(100)

	// Corrupt 17 pixels beyond the threshold and 5 below it.
	for i := 0; i < 17; i++ {
		b.Y[i] = 160
	}
	for i := 17; i < 22; i++ {
		b.Y[i] = 110
	}
	got, err := BadPixels(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Fatalf("BadPixels = %d, want 17", got)
	}

	// Default threshold selection.
	got, err = BadPixels(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Fatalf("BadPixels(default) = %d, want 17", got)
	}

	// Exactly at threshold is not bad (strict inequality).
	c := flatFrame(120)
	got, err = BadPixels(a, c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("BadPixels(at threshold) = %d, want 0", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty series aggregates should be zero")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
}

func TestSeriesValuesIsCopy(t *testing.T) {
	var s Series
	s.Add(1)
	vals := s.Values()
	vals[0] = 42
	if s.Values()[0] != 1 {
		t.Fatal("Values exposes internal storage")
	}
}

func TestSeriesSingleValueStdDev(t *testing.T) {
	var s Series
	s.Add(3)
	if s.StdDev() != 0 {
		t.Fatal("single-value StdDev should be 0")
	}
	if s.Min() != 3 || s.Max() != 3 || s.Mean() != 3 {
		t.Fatal("single-value aggregates wrong")
	}
}
