package metrics

import (
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// Benchmark pairs for BENCH_sim.json (make bench-json): each fast
// kernel against its scalar *Ref original over a QCIF luma plane —
// the frame size every experiment in the paper reproduction uses.

func benchFrames() (*video.Frame, *video.Frame) {
	rng := rand.New(rand.NewSource(71))
	a := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	b := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	for i := range a.Y {
		a.Y[i] = byte(rng.Intn(256))
		// Mostly-similar reconstruction: realistic decode output, keeps
		// the bad-pixel branch in the scalar loop unpredictable.
		b.Y[i] = a.Y[i]
		if rng.Intn(4) == 0 {
			b.Y[i] = byte(rng.Intn(256))
		}
	}
	return a, b
}

func BenchmarkBadPixels(b *testing.B) {
	ref, rec := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BadPixels(ref, rec, DefaultBadPixelThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBadPixelsRef(b *testing.B) {
	ref, rec := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BadPixelsRef(ref, rec, DefaultBadPixelThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameStats(b *testing.B) {
	ref, rec := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Stats(ref, rec, DefaultBadPixelThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameStatsRef is the scalar equivalent of one simulate-loop
// metrics step: the separate MSE and bad-pixel passes Stats fused.
func BenchmarkFrameStatsRef(b *testing.B) {
	ref, rec := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PSNRRef(ref, rec); err != nil {
			b.Fatal(err)
		}
		if _, err := BadPixelsRef(ref, rec, DefaultBadPixelThreshold); err != nil {
			b.Fatal(err)
		}
	}
}
