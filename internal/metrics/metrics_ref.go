package metrics

import (
	"fmt"
	"math"

	"pbpair/internal/video"
)

// Scalar reference metrics — the per-pixel loops that define the
// semantics the word-parallel kernels (Stats, BadPixels) must
// reproduce bit-exactly. They are kept exported (not test-only) so the
// differential tests, the fuzz target and the benchmark pairs always
// compare against the exact originals. MSE/PSNR themselves stay
// scalar by measurement (see the MSE comment), so their refs double as
// a pin on the shipping code. Any change to the fast kernels must keep
// TestMetricsEquiv / FuzzMetricsEquiv passing against these.

// MSERef is the scalar original of MSE.
func MSERef(a, b *video.Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("metrics: MSE between %dx%d and %dx%d frames",
			a.Width, a.Height, b.Width, b.Height)
	}
	var sum uint64
	for i := range a.Y {
		d := int64(a.Y[i]) - int64(b.Y[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a.Y)), nil
}

// PSNRRef is the scalar original of PSNR.
func PSNRRef(ref, rec *video.Frame) (float64, error) {
	mse, err := MSERef(ref, rec)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return MaxPSNR, nil
	}
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > MaxPSNR {
		psnr = MaxPSNR
	}
	return psnr, nil
}

// BadPixelsRef is the scalar original of BadPixels.
func BadPixelsRef(ref, rec *video.Frame, threshold int) (int, error) {
	if ref.Width != rec.Width || ref.Height != rec.Height {
		return 0, fmt.Errorf("metrics: BadPixels between %dx%d and %dx%d frames",
			ref.Width, ref.Height, rec.Width, rec.Height)
	}
	if threshold <= 0 {
		threshold = DefaultBadPixelThreshold
	}
	count := 0
	for i := range ref.Y {
		d := int(ref.Y[i]) - int(rec.Y[i])
		if d < 0 {
			d = -d
		}
		if d > threshold {
			count++
		}
	}
	return count, nil
}
