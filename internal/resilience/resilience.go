// Package resilience implements the error-resilient coding schemes the
// paper compares PBPAIR against (Section 2): NO (no resilience), GOP-N
// (periodic I-frames), AIR-N (adaptive intra refresh of the N
// highest-SAD macroblocks, decided after motion estimation) and PGOP-N
// (progressive column-by-column refresh with stride-back).
//
// Each scheme is a codec.ModePlanner; the hook it uses reflects where
// the original algorithm makes its decision — which is exactly what
// determines its energy behaviour in Figure 5(d).
package resilience

import (
	"fmt"
	"sort"

	"pbpair/internal/codec"
	"pbpair/internal/motion"
	"pbpair/internal/video"
)

// None is the NO scheme: plain predictive coding with no refresh
// beyond the codec's built-in SAD fallback. The zero value is ready to
// use.
type None struct{}

// NewNone returns the NO planner.
func NewNone() *None { return &None{} }

// Name implements codec.ModePlanner.
func (*None) Name() string { return "NO" }

// PlanFrame implements codec.ModePlanner: every frame after the first
// is predicted.
func (*None) PlanFrame(int) codec.FrameType { return codec.PFrame }

// PreME implements codec.ModePlanner.
func (*None) PreME(*codec.MBContext) bool { return false }

// MEPenalty implements codec.ModePlanner.
func (*None) MEPenalty(*codec.MBContext) motion.PenaltyFunc { return nil }

// PostME implements codec.ModePlanner.
func (*None) PostME(*codec.FramePlan) {}

// Update implements codec.ModePlanner.
func (*None) Update(*codec.FrameResult) {}

// GOP inserts an I-frame every N+1 frames (I:P ratio 1:N), the
// group-of-picture structure of Section 2. Its weaknesses — bursty
// frame sizes and catastrophic I-frame loss — are what Figure 6
// demonstrates.
type GOP struct {
	n int
}

// NewGOP returns the GOP-n planner (n predicted frames per I-frame).
// n must be >= 1.
func NewGOP(n int) (*GOP, error) {
	if n < 1 {
		return nil, fmt.Errorf("resilience: GOP requires n >= 1, got %d", n)
	}
	return &GOP{n: n}, nil
}

// Name implements codec.ModePlanner.
func (g *GOP) Name() string { return fmt.Sprintf("GOP-%d", g.n) }

// PlanFrame implements codec.ModePlanner.
func (g *GOP) PlanFrame(frameNum int) codec.FrameType {
	if frameNum%(g.n+1) == 0 {
		return codec.IFrame
	}
	return codec.PFrame
}

// PreME implements codec.ModePlanner.
func (*GOP) PreME(*codec.MBContext) bool { return false }

// MEPenalty implements codec.ModePlanner.
func (*GOP) MEPenalty(*codec.MBContext) motion.PenaltyFunc { return nil }

// PostME implements codec.ModePlanner.
func (*GOP) PostME(*codec.FramePlan) {}

// Update implements codec.ModePlanner.
func (*GOP) Update(*codec.FrameResult) {}

// AIR is adaptive intra refresh: after motion estimation, the N
// macroblocks with the highest SAD (the most active content) are
// forced to intra. Because the decision comes after ME, AIR pays full
// ME energy for every macroblock — the paper's explanation for why
// "AIR consumes a similar amount of the encoding energy [to] no error
// resilient scheme" (Section 4.2).
type AIR struct {
	n int
}

// NewAIR returns the AIR-n planner (n refreshed macroblocks per
// frame). n must be >= 1.
func NewAIR(n int) (*AIR, error) {
	if n < 1 {
		return nil, fmt.Errorf("resilience: AIR requires n >= 1, got %d", n)
	}
	return &AIR{n: n}, nil
}

// Name implements codec.ModePlanner.
func (a *AIR) Name() string { return fmt.Sprintf("AIR-%d", a.n) }

// PlanFrame implements codec.ModePlanner.
func (*AIR) PlanFrame(int) codec.FrameType { return codec.PFrame }

// PreME implements codec.ModePlanner: AIR never skips motion
// estimation — that is its energy cost.
func (*AIR) PreME(*codec.MBContext) bool { return false }

// MEPenalty implements codec.ModePlanner.
func (*AIR) MEPenalty(*codec.MBContext) motion.PenaltyFunc { return nil }

// PostME promotes the n searched macroblocks with the highest SAD to
// intra. Ties break on lower index for determinism.
func (a *AIR) PostME(plan *codec.FramePlan) {
	type cand struct {
		idx int
		sad int32
	}
	cands := make([]cand, 0, len(plan.MBs))
	for i := range plan.MBs {
		mb := &plan.MBs[i]
		if mb.Searched && mb.Mode == codec.ModeInter {
			cands = append(cands, cand{idx: i, sad: mb.SAD})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sad != cands[j].sad {
			return cands[i].sad > cands[j].sad
		}
		return cands[i].idx < cands[j].idx
	})
	limit := a.n
	if limit > len(cands) {
		limit = len(cands)
	}
	for _, c := range cands[:limit] {
		plan.MBs[c.idx].Mode = codec.ModeIntra
	}
}

// Update implements codec.ModePlanner.
func (*AIR) Update(*codec.FrameResult) {}

// PGOP is the progressive group-of-picture scheme: every predicted
// frame refreshes the next N columns of macroblocks (intra, no ME —
// that part is cheap), sweeping left to right; when the sweep wraps, a
// new refresh cycle begins. To stop errors from re-entering refreshed
// territory, any inter macroblock in the already-refreshed region
// whose motion vector references not-yet-refreshed columns is forced
// intra — the "stride back" macroblocks, which do pay for their motion
// estimation (Section 3 footnote 2).
type PGOP struct {
	n         int
	mbCols    int
	refreshed []bool // columns refreshed in the current cycle
	start     int    // first refresh column of the current frame
	active    bool   // whether a refresh window applies to this frame
}

// NewPGOP returns the PGOP-n planner for a frame width of mbCols
// macroblock columns. n must be in [1, mbCols].
func NewPGOP(n, mbCols int) (*PGOP, error) {
	if mbCols < 1 {
		return nil, fmt.Errorf("resilience: PGOP requires mbCols >= 1, got %d", mbCols)
	}
	if n < 1 || n > mbCols {
		return nil, fmt.Errorf("resilience: PGOP refresh width %d outside [1, %d]", n, mbCols)
	}
	return &PGOP{n: n, mbCols: mbCols, refreshed: make([]bool, mbCols)}, nil
}

// Name implements codec.ModePlanner.
func (p *PGOP) Name() string { return fmt.Sprintf("PGOP-%d", p.n) }

// PlanFrame advances the refresh window. Frame 0 is an I-frame (full
// refresh); the sweep starts at column 0 on frame 1.
func (p *PGOP) PlanFrame(frameNum int) codec.FrameType {
	if frameNum == 0 {
		p.active = false
		for i := range p.refreshed {
			p.refreshed[i] = false
		}
		p.start = 0
		return codec.IFrame
	}
	if p.start >= p.mbCols {
		// New cycle.
		for i := range p.refreshed {
			p.refreshed[i] = false
		}
		p.start = 0
	}
	p.active = true
	return codec.PFrame
}

// windowEnd returns one past the last refresh column of this frame.
func (p *PGOP) windowEnd() int {
	end := p.start + p.n
	if end > p.mbCols {
		end = p.mbCols
	}
	return end
}

// PreME forces refresh-column macroblocks to intra before ME — the
// refresh itself is energy-cheap.
func (p *PGOP) PreME(ctx *codec.MBContext) bool {
	return p.active && ctx.Col >= p.start && ctx.Col < p.windowEnd()
}

// MEPenalty implements codec.ModePlanner.
func (*PGOP) MEPenalty(*codec.MBContext) motion.PenaltyFunc { return nil }

// PostME applies stride-back: inter macroblocks in already-refreshed
// columns whose reference block overlaps a column that has not been
// refreshed this cycle are promoted to intra.
func (p *PGOP) PostME(plan *codec.FramePlan) {
	if !p.active {
		return
	}
	end := p.windowEnd()
	for i := range plan.MBs {
		mb := &plan.MBs[i]
		if mb.Mode != codec.ModeInter {
			continue
		}
		col := i % plan.Cols
		if !p.refreshed[col] {
			continue // not in protected territory
		}
		refLeft := col*video.MBSize + mb.MV.X
		firstCol := refLeft / video.MBSize
		lastCol := (refLeft + video.MBSize - 1) / video.MBSize
		for c := firstCol; c <= lastCol; c++ {
			if c < 0 || c >= plan.Cols {
				continue
			}
			inWindow := c >= p.start && c < end
			if !p.refreshed[c] && !inWindow {
				mb.Mode = codec.ModeIntra // stride back
				break
			}
		}
	}
}

// Update commits the refresh window after the frame is encoded.
func (p *PGOP) Update(*codec.FrameResult) {
	if !p.active {
		return
	}
	end := p.windowEnd()
	for c := p.start; c < end; c++ {
		p.refreshed[c] = true
	}
	p.start = end
}
