package resilience_test

import (
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

func encode(t *testing.T, planner codec.ModePlanner, n int, counters *energy.Counters) []*codec.EncodedFrame {
	t.Helper()
	enc, err := codec.NewEncoder(codec.Config{
		Width:    video.QCIFWidth,
		Height:   video.QCIFHeight,
		QP:       8,
		Planner:  planner,
		Counters: counters,
	})
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	src := synth.New(synth.RegimeForeman)
	out := make([]*codec.EncodedFrame, 0, n)
	for k := 0; k < n; k++ {
		ef, err := enc.EncodeFrame(src.Frame(k))
		if err != nil {
			t.Fatalf("EncodeFrame %d: %v", k, err)
		}
		out = append(out, ef)
	}
	return out
}

func TestConstructorValidation(t *testing.T) {
	if _, err := resilience.NewGOP(0); err == nil {
		t.Error("GOP-0 accepted")
	}
	if _, err := resilience.NewAIR(0); err == nil {
		t.Error("AIR-0 accepted")
	}
	if _, err := resilience.NewPGOP(0, 11); err == nil {
		t.Error("PGOP-0 accepted")
	}
	if _, err := resilience.NewPGOP(12, 11); err == nil {
		t.Error("PGOP wider than frame accepted")
	}
	if _, err := resilience.NewPGOP(1, 0); err == nil {
		t.Error("PGOP with zero columns accepted")
	}
}

func TestNames(t *testing.T) {
	gop, _ := resilience.NewGOP(8)
	air, _ := resilience.NewAIR(24)
	pgop, _ := resilience.NewPGOP(3, 11)
	tests := []struct {
		p    codec.ModePlanner
		want string
	}{
		{resilience.NewNone(), "NO"},
		{gop, "GOP-8"},
		{air, "AIR-24"},
		{pgop, "PGOP-3"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestGOPCadence(t *testing.T) {
	gop, err := resilience.NewGOP(3)
	if err != nil {
		t.Fatal(err)
	}
	frames := encode(t, gop, 9, nil)
	for k, ef := range frames {
		want := codec.PFrame
		if k%4 == 0 {
			want = codec.IFrame
		}
		if ef.Type != want {
			t.Errorf("frame %d type %v, want %v", k, ef.Type, want)
		}
	}
}

func TestNoneNeverInsertsIFrames(t *testing.T) {
	frames := encode(t, resilience.NewNone(), 6, nil)
	for k, ef := range frames[1:] {
		if ef.Type != codec.PFrame {
			t.Errorf("frame %d type %v, want P", k+1, ef.Type)
		}
	}
}

func TestAIRForcesAtLeastN(t *testing.T) {
	air, err := resilience.NewAIR(10)
	if err != nil {
		t.Fatal(err)
	}
	frames := encode(t, air, 5, nil)
	for _, ef := range frames[1:] {
		if got := ef.Plan.IntraCount(); got < 10 {
			t.Errorf("frame %d: %d intra MBs, want >= 10", ef.FrameNum, got)
		}
	}
}

func TestAIRPicksHighestSAD(t *testing.T) {
	air, err := resilience.NewAIR(3)
	if err != nil {
		t.Fatal(err)
	}
	plan := &codec.FramePlan{Rows: 1, Cols: 6, MBs: make([]codec.MBPlan, 6)}
	sads := []int32{100, 900, 300, 900, 50, 700}
	for i := range plan.MBs {
		plan.MBs[i] = codec.MBPlan{Mode: codec.ModeInter, Searched: true, SAD: sads[i]}
	}
	plan.MBs[4].Mode = codec.ModeIntra // already intra: not a candidate
	air.PostME(plan)
	wantIntra := map[int]bool{1: true, 3: true, 5: true, 4: true}
	for i := range plan.MBs {
		isIntra := plan.MBs[i].Mode == codec.ModeIntra
		if isIntra != wantIntra[i] {
			t.Errorf("MB %d: intra=%v, want %v", i, isIntra, wantIntra[i])
		}
	}
}

func TestAIRPaysFullMEEnergy(t *testing.T) {
	// The paper's Section 4.2 point: AIR's ME work equals NO's, because
	// its decision comes after motion estimation.
	var noC, airC energy.Counters
	encode(t, resilience.NewNone(), 5, &noC)
	air, err := resilience.NewAIR(24)
	if err != nil {
		t.Fatal(err)
	}
	encode(t, air, 5, &airC)
	if airC.SADCalls != noC.SADCalls {
		t.Fatalf("AIR SAD calls %d != NO %d", airC.SADCalls, noC.SADCalls)
	}
}

func TestPGOPRefreshSweep(t *testing.T) {
	pgop, err := resilience.NewPGOP(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	frames := encode(t, pgop, 9, nil)
	// Frames 1..4 sweep columns [0,3), [3,6), [6,9), [9,11); frame 5
	// starts a new cycle at [0,3).
	wantWindows := map[int][2]int{1: {0, 3}, 2: {3, 6}, 3: {6, 9}, 4: {9, 11}, 5: {0, 3}}
	for k, win := range wantWindows {
		plan := frames[k].Plan
		for col := win[0]; col < win[1]; col++ {
			for row := 0; row < plan.Rows; row++ {
				if plan.At(row, col).Mode != codec.ModeIntra {
					t.Errorf("frame %d: MB (%d,%d) in refresh window not intra", k, row, col)
				}
				if plan.At(row, col).Searched {
					t.Errorf("frame %d: refresh MB (%d,%d) ran motion estimation", k, row, col)
				}
			}
		}
	}
}

func TestPGOPRefreshSkipsME(t *testing.T) {
	var pgopC, noC energy.Counters
	pgop, err := resilience.NewPGOP(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	encode(t, pgop, 6, &pgopC)
	encode(t, resilience.NewNone(), 6, &noC)
	if pgopC.SADCalls >= noC.SADCalls {
		t.Fatalf("PGOP SAD calls %d not below NO %d", pgopC.SADCalls, noC.SADCalls)
	}
}

func TestPGOPStrideBack(t *testing.T) {
	pgop, err := resilience.NewPGOP(2, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate: frame 0 I, frame 1 refreshes cols 0-1, frame 2
	// refreshes cols 2-3. In frame 2, an inter MB in column 1
	// (refreshed territory) whose vector reaches column 4+
	// (unrefreshed) must stride back to intra.
	pgop.PlanFrame(0)
	pgop.Update(nil)
	pgop.PlanFrame(1)
	plan1 := &codec.FramePlan{Rows: 1, Cols: 11, MBs: make([]codec.MBPlan, 11)}
	for i := range plan1.MBs {
		plan1.MBs[i].Mode = codec.ModeInter
	}
	pgop.PostME(plan1)
	pgop.Update(nil)

	if pgop.PlanFrame(2) != codec.PFrame {
		t.Fatal("frame 2 should be predicted")
	}
	plan2 := &codec.FramePlan{Rows: 1, Cols: 11, MBs: make([]codec.MBPlan, 11)}
	for i := range plan2.MBs {
		plan2.MBs[i].Mode = codec.ModeInter
	}
	// MB col 1 references rightward into unrefreshed col 4.
	plan2.MBs[1].MV.X = 3 * video.MBSize
	// MB col 0 references its own refreshed column.
	plan2.MBs[0].MV.X = 0
	pgop.PostME(plan2)
	if plan2.MBs[1].Mode != codec.ModeIntra {
		t.Fatal("rightward-referencing MB in refreshed area did not stride back")
	}
	if plan2.MBs[0].Mode != codec.ModeInter {
		t.Fatal("safe MB was needlessly forced intra")
	}
}

// TestEnergyOrdering is the qualitative Figure 5(d) shape. The paper
// compares schemes at matched robustness (Intra_Th "that gives similar
// compression ratio with PGOP-3, GOP-3, and AIR-24"); here PBPAIR's
// threshold is calibrated to a matched *intra-refresh budget* (~25
// intra MBs per frame, the GOP-3 / PGOP-3 average) and must then be
// the cheapest scheme, while AIR stays close to NO.
func TestEnergyOrdering(t *testing.T) {
	const frames = 10
	run := func(p codec.ModePlanner) (float64, float64) {
		var c energy.Counters
		encoded := encode(t, p, frames, &c)
		intra := 0
		for _, ef := range encoded {
			intra += ef.Plan.IntraCount()
		}
		return energy.IPAQ.Joules(c), float64(intra) / float64(len(encoded))
	}

	// Calibrate PBPAIR's threshold to the GOP-3 refresh budget.
	const wantIntraPerFrame = 99.0 / 4
	var ePB, pbRate float64
	found := false
	for _, th := range []float64{0.99, 0.97, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6} {
		pb, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: th, PLR: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		e, rate := run(pb)
		t.Logf("PBPAIR Th=%.2f: %.1f intra MBs/frame, %.3f J", th, rate, e)
		if rate >= wantIntraPerFrame*0.8 && rate <= wantIntraPerFrame*1.6 {
			ePB, pbRate = e, rate
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no Intra_Th matches the GOP-3 refresh budget; operating range broken")
	}

	gop, _ := resilience.NewGOP(3)
	air, _ := resilience.NewAIR(24)
	pgop, _ := resilience.NewPGOP(3, 11)

	eNo, _ := run(resilience.NewNone())
	eGOP, gopRate := run(gop)
	eAIR, airRate := run(air)
	ePGOP, pgopRate := run(pgop)
	t.Logf("energy (J): NO=%.3f PBPAIR=%.3f PGOP=%.3f GOP=%.3f AIR=%.3f", eNo, ePB, ePGOP, eGOP, eAIR)
	t.Logf("intra/frame: PBPAIR=%.1f PGOP=%.1f GOP=%.1f AIR=%.1f", pbRate, pgopRate, gopRate, airRate)

	if !(ePB < ePGOP && ePB < eGOP && ePB < eAIR) {
		t.Fatalf("PBPAIR not cheapest at matched refresh budget: PB=%.3f PGOP=%.3f GOP=%.3f AIR=%.3f",
			ePB, ePGOP, eGOP, eAIR)
	}
	// AIR ≈ NO (within 10%): it never skips ME.
	if diff := (eAIR - eNo) / eNo; diff < -0.05 || diff > 0.10 {
		t.Fatalf("AIR energy %.3f not close to NO %.3f", eAIR, eNo)
	}
}

// TestPBPAIRRefreshesUnderLoss: with PLR > 0 and a meaningful
// threshold, PBPAIR must keep inserting intra MBs frame after frame.
func TestPBPAIRIntraRefreshRate(t *testing.T) {
	pb, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.85, PLR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	frames := encode(t, pb, 12, nil)
	total := 0
	for _, ef := range frames[2:] {
		total += ef.Plan.IntraCount()
	}
	mean := float64(total) / float64(len(frames)-2)
	t.Logf("mean intra MBs/frame: %.1f", mean)
	if mean < 5 {
		t.Fatalf("PBPAIR refresh too weak: %.1f intra MBs/frame", mean)
	}
	if mean > 95 {
		t.Fatalf("PBPAIR degenerated to all-intra: %.1f intra MBs/frame", mean)
	}
}

// TestPBPAIRContentAwareRefresh: with a mostly static background, the
// refresh budget must concentrate where content actually moves — the
// content-awareness half of PBPAIR's claim. At a mid threshold the
// refresh rate on static content (akiyo) stays below the rate on
// active content (garden).
func TestPBPAIRContentAwareRefresh(t *testing.T) {
	rate := func(regime synth.Regime) float64 {
		pb, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.7, PLR: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := codec.NewEncoder(codec.Config{
			Width: video.QCIFWidth, Height: video.QCIFHeight, QP: 8, Planner: pb,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := synth.New(regime)
		total := 0
		const n = 10
		for k := 0; k < n; k++ {
			ef, err := enc.EncodeFrame(src.Frame(k))
			if err != nil {
				t.Fatal(err)
			}
			if k >= 2 {
				total += ef.Plan.IntraCount()
			}
		}
		return float64(total) / float64(n-2)
	}
	akiyo := rate(synth.RegimeAkiyo)
	garden := rate(synth.RegimeGarden)
	t.Logf("intra MBs/frame at Th=0.7: akiyo=%.1f garden=%.1f", akiyo, garden)
	if akiyo >= garden {
		t.Fatalf("refresh not content-aware: akiyo %.1f >= garden %.1f", akiyo, garden)
	}
}
