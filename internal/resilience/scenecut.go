package resilience

import (
	"fmt"

	"pbpair/internal/codec"
	"pbpair/internal/motion"
	"pbpair/internal/video"
)

// SceneCut wraps any planner with scene-change detection: when the
// current frame's mean absolute difference from the reference exceeds
// the threshold, every macroblock of the frame is forced intra (an
// all-intra predicted frame — the refresh of an I-frame without
// switching picture types, so the wrapped scheme's own frame typing is
// undisturbed). Real encoders do this because predicting across a cut
// wastes bits and, under loss, propagates garbage from an unrelated
// scene.
//
// SceneCut composes with every scheme, including PBPAIR — whose
// correctness matrix benefits directly: Formula 2 marks the whole
// frame refreshed.
type SceneCut struct {
	inner     codec.ModePlanner
	threshold float64
	cutFrame  int // frame number currently being forced intra (-1 none)
	cuts      int
}

var _ codec.ModePlanner = (*SceneCut)(nil)

// DefaultSceneCutThreshold is the mean absolute luma difference per
// pixel above which a frame counts as a scene change.
const DefaultSceneCutThreshold = 30

// NewSceneCut wraps inner. threshold <= 0 selects
// DefaultSceneCutThreshold.
func NewSceneCut(inner codec.ModePlanner, threshold float64) (*SceneCut, error) {
	if inner == nil {
		return nil, fmt.Errorf("resilience: SceneCut needs an inner planner")
	}
	if threshold <= 0 {
		threshold = DefaultSceneCutThreshold
	}
	return &SceneCut{inner: inner, threshold: threshold, cutFrame: -1}, nil
}

// Name implements codec.ModePlanner.
func (s *SceneCut) Name() string { return s.inner.Name() + "+cut" }

// Cuts returns how many scene cuts have been detected so far.
func (s *SceneCut) Cuts() int { return s.cuts }

// PlanFrame delegates to the wrapped scheme.
func (s *SceneCut) PlanFrame(frameNum int) codec.FrameType {
	return s.inner.PlanFrame(frameNum)
}

// PreME detects the cut on the first macroblock of each frame (the
// earliest hook with access to pixels) and forces intra for the whole
// frame when it fires; otherwise it delegates.
func (s *SceneCut) PreME(ctx *codec.MBContext) bool {
	if ctx.Index == 0 {
		s.cutFrame = -1
		if ctx.Ref != nil && meanAbsDiffLuma(ctx.Cur, ctx.Ref) > s.threshold {
			s.cutFrame = ctx.FrameNum
			s.cuts++
		}
	}
	if ctx.FrameNum == s.cutFrame {
		return true
	}
	return s.inner.PreME(ctx)
}

// MEPenalty delegates to the wrapped scheme.
func (s *SceneCut) MEPenalty(ctx *codec.MBContext) motion.PenaltyFunc {
	return s.inner.MEPenalty(ctx)
}

// PostME delegates to the wrapped scheme.
func (s *SceneCut) PostME(plan *codec.FramePlan) { s.inner.PostME(plan) }

// Update delegates to the wrapped scheme.
func (s *SceneCut) Update(result *codec.FrameResult) { s.inner.Update(result) }

// meanAbsDiffLuma is the scene-change measure: mean |Δ| over luma.
func meanAbsDiffLuma(a, b *video.Frame) float64 {
	var sum int64
	for i := range a.Y {
		d := int64(a.Y[i]) - int64(b.Y[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Y))
}
