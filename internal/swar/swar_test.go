package swar

import (
	"math/rand"
	"testing"
)

// scalar references for the packed primitives, used only by these
// property tests (the package-level consumers keep their own *Ref
// originals next to the kernels they replaced).

func sadRef(a, b []byte) int32 {
	var s int32
	for i := 0; i < 16; i++ {
		d := int32(a[i]) - int32(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func randRow(rng *rand.Rand, extreme bool) []byte {
	row := make([]byte, 17) // one spare byte for the n+1 half-pel loads
	for i := range row {
		if extreme {
			row[i] = []byte{0, 1, 127, 128, 254, 255}[rng.Intn(6)]
		} else {
			row[i] = byte(rng.Intn(256))
		}
	}
	return row
}

func TestRowKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 20000; iter++ {
		a := randRow(rng, iter%3 == 0)
		b := randRow(rng, iter%5 == 0)

		if got, want := SADRow16(a, b), sadRef(a, b); got != want {
			t.Fatalf("SADRow16(%v, %v) = %d, want %d", a, b, got, want)
		}

		m := byte(rng.Intn(256))
		mRow := make([]byte, 16)
		for i := range mRow {
			mRow[i] = m
		}
		if got, want := SADRow16Const(a, uint64(m)*LaneOnes), sadRef(a, mRow); got != want {
			t.Fatalf("SADRow16Const(%v, %d) = %d, want %d", a, m, got, want)
		}

		var sum int32
		for i := 0; i < 16; i++ {
			sum += int32(a[i])
		}
		if got := SumRow16(a); got != sum {
			t.Fatalf("SumRow16(%v) = %d, want %d", a, got, sum)
		}

		var ssd uint64
		for i := 0; i < 16; i++ {
			d := int64(a[i]) - int64(b[i])
			ssd += uint64(d * d)
		}
		if got := SqDiffSumRow16(a, b); got != ssd {
			t.Fatalf("SqDiffSumRow16(%v, %v) = %d, want %d", a, b, got, ssd)
		}

		th := rng.Intn(255)
		var cnt int32
		for i := 0; i < 16; i++ {
			d := int32(a[i]) - int32(b[i])
			if d < 0 {
				d = -d
			}
			if d > int32(th) {
				cnt++
			}
		}
		bias := GTBias(th)
		if got := CountGTRow16(a, b, bias); got != cnt {
			t.Fatalf("CountGTRow16(%v, %v, th=%d) = %d, want %d", a, b, th, got, cnt)
		}
		gotSSD, gotCnt := SSDCountRow16(a, b, bias)
		if gotSSD != ssd || gotCnt != cnt {
			t.Fatalf("SSDCountRow16(%v, %v, th=%d) = (%d, %d), want (%d, %d)",
				a, b, th, gotSSD, gotCnt, ssd, cnt)
		}
	}
}

func TestAveragers(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pack := func(b []byte) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
		return v
	}
	unpack := func(v uint64, b []byte) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
	got := make([]byte, 8)
	for iter := 0; iter < 20000; iter++ {
		a := randRow(rng, iter%3 == 0)[:8]
		b := randRow(rng, iter%5 == 0)[:8]
		c := randRow(rng, iter%7 == 0)[:8]
		d := randRow(rng, iter%2 == 0)[:8]

		unpack(AvgRound8(pack(a), pack(b)), got)
		for i := 0; i < 8; i++ {
			if want := byte((int(a[i]) + int(b[i]) + 1) >> 1); got[i] != want {
				t.Fatalf("AvgRound8 byte %d: a=%d b=%d got %d want %d", i, a[i], b[i], got[i], want)
			}
		}

		unpack(QuadAvg8(pack(a), pack(b), pack(c), pack(d)), got)
		for i := 0; i < 8; i++ {
			want := byte((int(a[i]) + int(b[i]) + int(c[i]) + int(d[i]) + 2) >> 2)
			if got[i] != want {
				t.Fatalf("QuadAvg8 byte %d: got %d want %d", i, got[i], want)
			}
		}
	}
}

func TestAbsDiff4Exhaustive(t *testing.T) {
	// One lane over the full [0,255]² domain proves every lane (they are
	// independent by construction).
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := a - b
			if want < 0 {
				want = -want
			}
			if got := AbsDiff4(uint64(a), uint64(b)); got != uint64(want) {
				t.Fatalf("AbsDiff4(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}
