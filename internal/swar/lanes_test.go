package swar

import "testing"

// laneRand is a tiny deterministic generator for test masks
// (splitMix64 constants, local to the test).
type laneRand uint64

func (r *laneRand) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestLaneCounterDifferential checks the bit-sliced counter against a
// naive per-lane tally across enough adds to force several spills,
// including the exact 255-add spill boundary.
func TestLaneCounterDifferential(t *testing.T) {
	for _, adds := range []int{0, 1, 254, 255, 256, 1000, 4 * 255} {
		var c LaneCounter
		var want [64]uint64
		rng := laneRand(uint64(adds) + 7)
		for i := 0; i < adds; i++ {
			mask := rng.next()
			c.Add(mask)
			for l := 0; l < 64; l++ {
				if mask&(1<<uint(l)) != 0 {
					want[l]++
				}
			}
		}
		if got := c.Counts(); got != want {
			t.Fatalf("adds=%d: counts diverge from naive tally\ngot  %v\nwant %v", adds, got, want)
		}
	}
}

// TestLaneCounterSaturatedLane pins the overflow-avoidance contract:
// a lane observing a one on every add must count exactly, past the
// 8-bit plane capacity.
func TestLaneCounterSaturatedLane(t *testing.T) {
	var c LaneCounter
	const n = 5000
	for i := 0; i < n; i++ {
		c.Add(^uint64(0))
	}
	for l, got := range c.Counts() {
		if got != n {
			t.Fatalf("lane %d: count %d, want %d", l, got, n)
		}
	}
}

// TestLaneCounterResumable checks Counts is a snapshot, not a drain:
// further adds keep accumulating.
func TestLaneCounterResumable(t *testing.T) {
	var c LaneCounter
	c.Add(1)
	if got := c.Counts()[0]; got != 1 {
		t.Fatalf("after one add: %d", got)
	}
	c.Add(1)
	if got := c.Counts()[0]; got != 2 {
		t.Fatalf("after two adds: %d", got)
	}
}
