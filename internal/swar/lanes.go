package swar

import "math/bits"

// LaneCounter accumulates per-lane totals of one-bit observations —
// e.g. "did lane l lose this packet?" words from a network.MaskSource
// — without a per-lane loop on the hot path. It is the package's
// word-parallel idiom applied across Monte-Carlo trials instead of
// pixels: eight bit-planes form a carry-save 8-bit counter per lane,
// and Add folds a 64-lane observation word in with a ripple-carry
// across the planes (at most 8 word ops, usually 1-2 since the carry
// chain stops at the first zero plane). Every 255 adds the planes are
// spilled into 64-bit per-lane totals, so the counter never overflows.
//
// The zero value is ready to use. Not safe for concurrent use.
type LaneCounter struct {
	planes [8]uint64 // bit-sliced per-lane count, plane i = bit i
	adds   int       // observations since the last spill (< 255)
	totals [64]uint64
}

// Add folds one observation word in: bit l set means lane l observed
// a one this step.
func (c *LaneCounter) Add(mask uint64) {
	carry := mask
	for i := 0; i < len(c.planes) && carry != 0; i++ {
		c.planes[i], carry = c.planes[i]^carry, c.planes[i]&carry
	}
	c.adds++
	if c.adds == 255 {
		c.spill()
	}
}

// spill drains the bit-planes into the 64-bit totals. A plane
// contributes 2^i to every lane whose bit is set; iterating set bits
// keeps the cost proportional to the live count.
func (c *LaneCounter) spill() {
	for i, plane := range c.planes {
		for plane != 0 {
			l := bits.TrailingZeros64(plane)
			c.totals[l] += 1 << uint(i)
			plane &= plane - 1
		}
		c.planes[i] = 0
	}
	c.adds = 0
}

// Counts spills any pending planes and returns the per-lane totals.
// The counter remains usable for further Adds.
func (c *LaneCounter) Counts() [64]uint64 {
	c.spill()
	return c.totals
}
