// Package swar holds the SIMD-within-a-register pixel primitives
// shared by the repository's hot kernels: the encoder's SAD search and
// half-pel interpolation (internal/motion), the decoder-side
// concealment costs (internal/conceal) and the quality metrics
// (internal/metrics). A 16-pixel macroblock row is two uint64 loads;
// per-byte arithmetic then runs 8 lanes at a time in ordinary integer
// registers — branch-free, no per-pixel loop.
//
// Every kernel built on these primitives is bit-exact with its scalar
// reference (the *Ref originals kept next to each fast kernel): only
// non-negative integer additions are reordered, which is exact.
//
// The |a−b| kernel widens bytes into four 16-bit lanes per word (even
// and odd bytes separately), biases by 0x8000 per lane so the
// subtraction cannot borrow across lanes, and resolves the absolute
// value with a computed per-lane sign mask. Lane sums are folded with
// a single multiply: x * 0x0001000100010001 accumulates all four
// 16-bit lanes into the top lane (partial sums stay < 2^16, so no
// carries cross lanes).
package swar

import "encoding/binary"

// Lane masks and constants for 16-bit-lane arithmetic over packed
// bytes. Exported so callers can pre-replicate constants into lanes
// (e.g. a mean or threshold byte value as v * LaneOnes).
const (
	// LaneMask selects the even-byte 16-bit lanes of a packed word.
	LaneMask = 0x00FF00FF00FF00FF
	// LaneBias adds 0x8000 to each 16-bit lane.
	LaneBias = 0x8000800080008000
	// LaneOnes holds 1 in each 16-bit lane; multiplying by it folds
	// lane values into the top lane, and multiplying a byte value by it
	// replicates that value into every lane.
	LaneOnes = 0x0001000100010001

	lane7FFF   = 0x7FFF7FFF7FFF7FFF
	avgLowMask = 0x7F7F7F7F7F7F7F7F // clears cross-byte carry bits after >>1
)

// AbsDiff4 returns per-lane |a−b| for four 16-bit lanes each holding a
// value in [0, 255]. biased = 0x8000 + (a−b) per lane never borrows;
// bit 15 of each lane is then the "a >= b" flag, from which a full
// 0xFFFF mask selects between biased−0x8000 and 0x8000−biased.
func AbsDiff4(a, b uint64) uint64 {
	biased := a + LaneBias - b
	pos := (biased >> 15) & LaneOnes
	neg := (pos ^ LaneOnes) * 0xFFFF
	return (biased ^ neg) - (lane7FFF + pos)
}

// SADRow16 returns Σ|c[i]−p[i]| over 16 bytes. c and p must have at
// least 16 bytes.
func SADRow16(c, p []byte) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	pa := binary.LittleEndian.Uint64(p[0:8])
	pb := binary.LittleEndian.Uint64(p[8:16])
	d := AbsDiff4(ca&LaneMask, pa&LaneMask) +
		AbsDiff4((ca>>8)&LaneMask, (pa>>8)&LaneMask) +
		AbsDiff4(cb&LaneMask, pb&LaneMask) +
		AbsDiff4((cb>>8)&LaneMask, (pb>>8)&LaneMask)
	return int32((d * LaneOnes) >> 48)
}

// SADRow16Const returns Σ|c[i]−m| over 16 bytes against a constant
// byte value m already replicated into 16-bit lanes (m * LaneOnes).
func SADRow16Const(c []byte, mLanes uint64) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	d := AbsDiff4(ca&LaneMask, mLanes) +
		AbsDiff4((ca>>8)&LaneMask, mLanes) +
		AbsDiff4(cb&LaneMask, mLanes) +
		AbsDiff4((cb>>8)&LaneMask, mLanes)
	return int32((d * LaneOnes) >> 48)
}

// SumRow16 returns Σc[i] over 16 bytes.
func SumRow16(c []byte) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	s := ca&LaneMask + (ca>>8)&LaneMask + cb&LaneMask + (cb>>8)&LaneMask
	return int32((s * LaneOnes) >> 48)
}

// AvgRound8 returns the per-byte rounded average (a+b+1)>>1 of two
// 8-byte words — H.263 two-point half-pel interpolation, 8 pixels at
// a time. Identity: (a+b+1)>>1 == (a|b) − ((a^b)>>1) per byte.
func AvgRound8(a, b uint64) uint64 {
	return (a | b) - ((a^b)>>1)&avgLowMask
}

// QuadAvg8 returns the per-byte (a+b+c+d+2)>>2 of four 8-byte words —
// the H.263 four-point half-pel position. Bytes widen into 16-bit
// lanes (max lane sum 4·255+2 = 1022 < 2^10, so lanes never carry),
// are averaged, and repack.
func QuadAvg8(a, b, c, d uint64) uint64 {
	even := a&LaneMask + b&LaneMask + c&LaneMask + d&LaneMask + 2*LaneOnes
	odd := (a>>8)&LaneMask + (b>>8)&LaneMask + (c>>8)&LaneMask + (d>>8)&LaneMask + 2*LaneOnes
	return (even>>2)&LaneMask | ((odd>>2)&LaneMask)<<8
}

// sqLanes4 accumulates the squares of the four 16-bit lanes of d into
// a scalar. Lane squares (≤ 255² = 65025) do not pack back into 16-bit
// lanes without overflowing the fold, so the four lanes are extracted
// and squared individually — still branch-free and bounds-check-free,
// which is where the win over the per-pixel reference comes from.
func sqLanes4(d uint64) uint64 {
	d0 := d & 0xFFFF
	d1 := (d >> 16) & 0xFFFF
	d2 := (d >> 32) & 0xFFFF
	d3 := d >> 48
	return d0*d0 + d1*d1 + d2*d2 + d3*d3
}

// SSDCountRow16 returns, over 16 bytes, the sum of squared differences
// Σ(a[i]−b[i])² and the number of positions where |a[i]−b[i]| exceeds
// the threshold replicated in thLanes ((th+1)·LaneOnes subtrahend form:
// pass gtBias = (0x8000 − th − 1)·LaneOnes... see GTBias). Both metrics
// come from one set of |a−b| lane words, so a caller measuring PSNR
// and bad pixels traverses the planes once.
func SSDCountRow16(a, b []byte, gtBias uint64) (ssd uint64, count int32) {
	aa := binary.LittleEndian.Uint64(a[0:8])
	ab := binary.LittleEndian.Uint64(a[8:16])
	ba := binary.LittleEndian.Uint64(b[0:8])
	bb := binary.LittleEndian.Uint64(b[8:16])
	d0 := AbsDiff4(aa&LaneMask, ba&LaneMask)
	d1 := AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask)
	d2 := AbsDiff4(ab&LaneMask, bb&LaneMask)
	d3 := AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask)
	ssd = sqLanes4(d0) + sqLanes4(d1) + sqLanes4(d2) + sqLanes4(d3)
	// |d| > th  ⇔  |d| + 0x8000 − th − 1 has lane bit 15 set
	// (|d| ≤ 255 and th ∈ [0, 254], so lanes cannot carry).
	gt := ((d0 + gtBias) >> 15) & LaneOnes
	gt += ((d1 + gtBias) >> 15) & LaneOnes
	gt += ((d2 + gtBias) >> 15) & LaneOnes
	gt += ((d3 + gtBias) >> 15) & LaneOnes
	// Each lane of gt holds ≤ 4; one fold sums them.
	return ssd, int32((gt * LaneOnes) >> 48)
}

// GTBias replicates the ">" comparison bias for threshold th
// (0 ≤ th ≤ 254) into 16-bit lanes for SSDCountRow16 / CountGTRow16:
// adding it to a lane holding |d| sets lane bit 15 exactly when
// |d| > th.
func GTBias(th int) uint64 {
	return uint64(0x8000-th-1) * LaneOnes
}

// CountGTRow16 returns the number of positions i in the 16-byte rows
// where |a[i]−b[i]| > th, with gtBias = GTBias(th).
func CountGTRow16(a, b []byte, gtBias uint64) int32 {
	aa := binary.LittleEndian.Uint64(a[0:8])
	ab := binary.LittleEndian.Uint64(a[8:16])
	ba := binary.LittleEndian.Uint64(b[0:8])
	bb := binary.LittleEndian.Uint64(b[8:16])
	gt := ((AbsDiff4(aa&LaneMask, ba&LaneMask) + gtBias) >> 15) & LaneOnes
	gt += ((AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask) + gtBias) >> 15) & LaneOnes
	gt += ((AbsDiff4(ab&LaneMask, bb&LaneMask) + gtBias) >> 15) & LaneOnes
	gt += ((AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask) + gtBias) >> 15) & LaneOnes
	return int32((gt * LaneOnes) >> 48)
}

// SqDiffSumRow16 returns Σ(a[i]−b[i])² over 16 bytes.
func SqDiffSumRow16(a, b []byte) uint64 {
	aa := binary.LittleEndian.Uint64(a[0:8])
	ab := binary.LittleEndian.Uint64(a[8:16])
	ba := binary.LittleEndian.Uint64(b[0:8])
	bb := binary.LittleEndian.Uint64(b[8:16])
	return sqLanes4(AbsDiff4(aa&LaneMask, ba&LaneMask)) +
		sqLanes4(AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask)) +
		sqLanes4(AbsDiff4(ab&LaneMask, bb&LaneMask)) +
		sqLanes4(AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask))
}

// Plane-level kernels. The per-row primitives above pay a function
// call and slice-header setup every 16 bytes, which swamps the lane
// arithmetic on whole-frame traversals (a QCIF luma plane is ~1.6k
// rows); these loop internally so the call overhead is paid once per
// plane. a and b must have equal length; a tail shorter than 16 bytes
// is handled scalar.

// SqDiffSum returns Σ(a[i]−b[i])² over the whole slice pair.
func SqDiffSum(a, b []byte) uint64 {
	var sum uint64
	n := len(a) &^ 15
	for i := 0; i < n; i += 16 {
		aa := binary.LittleEndian.Uint64(a[i : i+8 : i+8])
		ab := binary.LittleEndian.Uint64(a[i+8 : i+16 : i+16])
		ba := binary.LittleEndian.Uint64(b[i : i+8 : i+8])
		bb := binary.LittleEndian.Uint64(b[i+8 : i+16 : i+16])
		sum += sqLanes4(AbsDiff4(aa&LaneMask, ba&LaneMask)) +
			sqLanes4(AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask)) +
			sqLanes4(AbsDiff4(ab&LaneMask, bb&LaneMask)) +
			sqLanes4(AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask))
	}
	for i := n; i < len(a); i++ {
		d := int64(a[i]) - int64(b[i])
		sum += uint64(d * d)
	}
	return sum
}

// CountGT returns the number of positions where |a[i]−b[i]| > th over
// the whole slice pair. th must be in [0, 254] (see GTBias); a
// threshold ≥ 255 can never be exceeded by a byte difference, so
// callers handle it as a constant zero.
func CountGT(a, b []byte, th int) int {
	gtBias := GTBias(th)
	var count int64
	n := len(a) &^ 15
	for i := 0; i < n; i += 16 {
		aa := binary.LittleEndian.Uint64(a[i : i+8 : i+8])
		ab := binary.LittleEndian.Uint64(a[i+8 : i+16 : i+16])
		ba := binary.LittleEndian.Uint64(b[i : i+8 : i+8])
		bb := binary.LittleEndian.Uint64(b[i+8 : i+16 : i+16])
		gt := ((AbsDiff4(aa&LaneMask, ba&LaneMask) + gtBias) >> 15) & LaneOnes
		gt += ((AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask) + gtBias) >> 15) & LaneOnes
		gt += ((AbsDiff4(ab&LaneMask, bb&LaneMask) + gtBias) >> 15) & LaneOnes
		gt += ((AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask) + gtBias) >> 15) & LaneOnes
		count += int64((gt * LaneOnes) >> 48)
	}
	for i := n; i < len(a); i++ {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		if d > th {
			count++
		}
	}
	return int(count)
}

// SSDCount fuses SqDiffSum and CountGT into a single traversal: one
// set of |a−b| lane words feeds both the squared-error sum and the
// threshold count. th must be in [0, 254] (see GTBias).
func SSDCount(a, b []byte, th int) (ssd uint64, count int) {
	gtBias := GTBias(th)
	var cnt int64
	n := len(a) &^ 15
	for i := 0; i < n; i += 16 {
		aa := binary.LittleEndian.Uint64(a[i : i+8 : i+8])
		ab := binary.LittleEndian.Uint64(a[i+8 : i+16 : i+16])
		ba := binary.LittleEndian.Uint64(b[i : i+8 : i+8])
		bb := binary.LittleEndian.Uint64(b[i+8 : i+16 : i+16])
		d0 := AbsDiff4(aa&LaneMask, ba&LaneMask)
		d1 := AbsDiff4((aa>>8)&LaneMask, (ba>>8)&LaneMask)
		d2 := AbsDiff4(ab&LaneMask, bb&LaneMask)
		d3 := AbsDiff4((ab>>8)&LaneMask, (bb>>8)&LaneMask)
		ssd += sqLanes4(d0) + sqLanes4(d1) + sqLanes4(d2) + sqLanes4(d3)
		gt := ((d0 + gtBias) >> 15) & LaneOnes
		gt += ((d1 + gtBias) >> 15) & LaneOnes
		gt += ((d2 + gtBias) >> 15) & LaneOnes
		gt += ((d3 + gtBias) >> 15) & LaneOnes
		cnt += int64((gt * LaneOnes) >> 48)
	}
	for i := n; i < len(a); i++ {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		ssd += uint64(d * d)
		if d > th {
			cnt++
		}
	}
	return ssd, int(cnt)
}
