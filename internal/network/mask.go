package network

import "fmt"

// This file is the channel side of the bit-packed Monte-Carlo engine:
// instead of transmitting packets through one Channel at a time, a
// MaskSource draws the loss decision for many independent channel
// realizations ("lanes") per packet and packs them into uint64 words,
// one bit per lane. The experiment layer turns those words into
// per-trial loss patterns and decodes each distinct pattern once
// (see experiment.SimBatch).
//
// Determinism contract: lane l of a batch source reproduces, draw for
// draw, the scalar channel seeded with LaneSeed(seed, l). Lane 0 uses
// the base seed itself, so trial 0 of a batch run is the legacy
// single-seed simulation byte for byte.

// MaskSource draws per-packet loss decisions for a fixed number of
// independent channel realizations. Implementations are deterministic:
// the same seed yields the same mask sequence.
type MaskSource interface {
	// Lanes reports how many independent realizations the source draws.
	Lanes() int
	// NextMask advances every lane by one packet and fills dst with the
	// loss words: bit l of dst[w] is set iff lane 64·w+l LOSES the
	// packet. dst must have at least MaskWords(Lanes()) entries; bits at
	// or above Lanes() in the last word are left zero.
	NextMask(dst []uint64)
}

// MaskWords returns how many uint64 words hold one bit per lane.
func MaskWords(lanes int) int { return (lanes + 63) / 64 }

// LaneSeed derives the scalar-channel seed for one lane of a batch
// run. Lane 0 is the base seed itself (the trial-0 compatibility pin);
// higher lanes are decorrelated through the splitMix64 output mixer —
// a plain seed+lane·φ would put every lane on a shifted copy of lane
// 0's splitMix64 orbit (lane l ≡ lane 0 delayed by l draws), which the
// finalizer scramble prevents.
func LaneSeed(seed uint64, lane int) uint64 {
	if lane == 0 {
		return seed
	}
	z := seed + 0x9E3779B97F4A7C15*uint64(lane)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// BatchUniform is the batch counterpart of UniformLoss: every lane is
// an independent i.i.d. Bernoulli loss process. Draw order per lane
// matches UniformLoss.Transmit exactly (one uniform draw per packet).
type BatchUniform struct {
	rate  float64
	lanes int
	rngs  []splitMix64
}

// NewBatchUniform returns a lanes-wide i.i.d. loss source. The rate
// must be a probability in [0, 1] (NaN rejected).
func NewBatchUniform(rate float64, seed uint64, lanes int) (*BatchUniform, error) {
	if !(rate >= 0 && rate <= 1) {
		return nil, fmt.Errorf("network: loss rate %v outside [0, 1]", rate)
	}
	if lanes < 1 {
		return nil, fmt.Errorf("network: batch source needs at least 1 lane, got %d", lanes)
	}
	b := &BatchUniform{rate: rate, lanes: lanes, rngs: make([]splitMix64, lanes)}
	for l := range b.rngs {
		b.rngs[l] = splitMix64{state: LaneSeed(seed, l)}
	}
	return b, nil
}

// Lanes implements MaskSource.
func (b *BatchUniform) Lanes() int { return b.lanes }

// NextMask implements MaskSource.
func (b *BatchUniform) NextMask(dst []uint64) {
	for w := 0; w < MaskWords(b.lanes); w++ {
		dst[w] = 0
	}
	for l := range b.rngs {
		if b.rngs[l].float64() < b.rate {
			dst[l>>6] |= 1 << uint(l&63)
		}
	}
}

// Validate reports whether every probability of the configuration
// lies in [0, 1] (NaN rejected) — the same check NewGilbertElliott
// applies.
func (cfg GEConfig) Validate() error {
	for _, v := range []float64{cfg.PGoodToBad, cfg.PBadToGood, cfg.LossGood, cfg.LossBad} {
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("network: Gilbert–Elliott probability %v outside [0, 1]", v)
		}
	}
	return nil
}

// BatchGE is the batch counterpart of GilbertElliott: every lane is an
// independent two-state burst-loss chain with its own state. Per
// packet each lane draws the state transition first and then the loss,
// matching GilbertElliott.Transmit draw order.
type BatchGE struct {
	cfg   GEConfig
	lanes int
	rngs  []splitMix64
	bad   []bool
}

// NewBatchGE returns a lanes-wide Gilbert–Elliott source. All four
// probabilities must lie in [0, 1] (NaN rejected). Every lane starts
// in the good state, like NewGilbertElliott.
func NewBatchGE(cfg GEConfig, seed uint64, lanes int) (*BatchGE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lanes < 1 {
		return nil, fmt.Errorf("network: batch source needs at least 1 lane, got %d", lanes)
	}
	b := &BatchGE{
		cfg:   cfg,
		lanes: lanes,
		rngs:  make([]splitMix64, lanes),
		bad:   make([]bool, lanes),
	}
	for l := range b.rngs {
		b.rngs[l] = splitMix64{state: LaneSeed(seed, l)}
	}
	return b, nil
}

// Lanes implements MaskSource.
func (b *BatchGE) Lanes() int { return b.lanes }

// NextMask implements MaskSource.
func (b *BatchGE) NextMask(dst []uint64) {
	for w := 0; w < MaskWords(b.lanes); w++ {
		dst[w] = 0
	}
	for l := range b.rngs {
		rng := &b.rngs[l]
		if b.bad[l] {
			if rng.float64() < b.cfg.PBadToGood {
				b.bad[l] = false
			}
		} else {
			if rng.float64() < b.cfg.PGoodToBad {
				b.bad[l] = true
			}
		}
		rate := b.cfg.LossGood
		if b.bad[l] {
			rate = b.cfg.LossBad
		}
		if rng.float64() < rate {
			dst[l>>6] |= 1 << uint(l&63)
		}
	}
}
