package network

import (
	"math"
	"testing"
)

// TestChannelConstructorValidation table-tests the loss-parameter
// validation of the channel constructors: every probability outside
// [0, 1] — NaN included (both halves of a < || > check are false for
// NaN, so the constructors use the >= && <= form) — is rejected at
// construction with a descriptive error.
func TestChannelConstructorValidation(t *testing.T) {
	nan := math.NaN()

	t.Run("uniform", func(t *testing.T) {
		cases := []struct {
			rate float64
			ok   bool
		}{
			{0, true}, {0.1, true}, {1, true},
			{-0.001, false}, {1.001, false},
			{nan, false}, {math.Inf(1), false}, {math.Inf(-1), false},
		}
		for _, c := range cases {
			_, err := NewUniformLoss(c.rate, 1)
			if (err == nil) != c.ok {
				t.Errorf("NewUniformLoss(%v): err=%v, want ok=%v", c.rate, err, c.ok)
			}
		}
	})

	t.Run("gilbert-elliott", func(t *testing.T) {
		valid := GEConfig{PGoodToBad: 0.05, PBadToGood: 0.4, LossGood: 0.01, LossBad: 0.8}
		if _, err := NewGilbertElliott(valid, 1); err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		// Poison each field in turn with each invalid value.
		poison := []float64{-0.001, 1.001, nan, math.Inf(1)}
		for field := 0; field < 4; field++ {
			for _, v := range poison {
				cfg := valid
				switch field {
				case 0:
					cfg.PGoodToBad = v
				case 1:
					cfg.PBadToGood = v
				case 2:
					cfg.LossGood = v
				case 3:
					cfg.LossBad = v
				}
				if _, err := NewGilbertElliott(cfg, 1); err == nil {
					t.Errorf("field %d = %v accepted", field, v)
				}
			}
		}
	})
}
