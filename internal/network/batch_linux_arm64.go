//go:build linux && arm64

package network

import "syscall"

const (
	sysSENDMMSG = uintptr(syscall.SYS_SENDMMSG)
	sysRECVMMSG = uintptr(syscall.SYS_RECVMMSG)
)
