package network

import "pbpair/internal/codec"

// Interleaved packetisation: instead of cutting a frame into
// contiguous runs of GOBs, spread the GOBs round-robin over n packets
// (packet 0 carries the picture header plus GOBs 0, n, 2n, …; packet 1
// carries GOBs 1, n+1, …). Losing one packet then costs every n-th
// macroblock row rather than a contiguous band, which is exactly the
// damage pattern spatial concealment interpolates best — each lost row
// has intact neighbours above and below.
//
// The codec's GOB start codes make the non-contiguous payloads
// decodable as-is: the decoder locates each GOB by its header, in any
// order, with any gaps.

// PacketizeInterleaved splits one encoded frame into n interleaved
// packets. n < 2 (or a frame with too few GOBs) falls back to the
// plain packetiser. MTU is not enforced here: interleaving targets
// loss dispersion, not fragmentation; callers choose n so packets fit
// their path.
func (p *Packetizer) PacketizeInterleaved(frame *codec.EncodedFrame, n int) []Packet {
	if n < 2 || len(frame.GOBOffsets) < n {
		return p.Packetize(frame)
	}
	data := frame.Data

	// Byte range of GOB g: [offset[g], offset[g+1]) with the last GOB
	// running to the end of the frame.
	gobRange := func(g int) (int, int) {
		start := frame.GOBOffsets[g]
		end := len(data)
		if g+1 < len(frame.GOBOffsets) {
			end = frame.GOBOffsets[g+1]
		}
		return start, end
	}

	packets := make([]Packet, 0, n)
	for i := 0; i < n; i++ {
		var payload []byte
		if i == 0 {
			// Picture header precedes the first GOB.
			payload = append(payload, data[:frame.GOBOffsets[0]]...)
		}
		for g := i; g < len(frame.GOBOffsets); g += n {
			start, end := gobRange(g)
			payload = append(payload, data[start:end]...)
		}
		packets = append(packets, Packet{
			Seq:      p.seq,
			FrameNum: frame.FrameNum,
			Payload:  payload,
		})
		p.seq++
	}
	packets[len(packets)-1].Marker = true
	return packets
}
