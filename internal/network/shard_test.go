package network

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// runTailSenderTest fires a batch of two-segment datagrams (plus plain
// single-segment ones mixed in) through s and asserts every receiver
// sees the header and tail joined into one contiguous datagram — the
// scatter-gather contract of Datagram.Tail, run against both sender
// implementations so the sendmmsg iovec path is provably
// receiver-indistinguishable from the portable join.
func runTailSenderTest(t *testing.T, s BatchSender, label string) {
	t.Helper()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	addr := recv.LocalAddr().(*net.UDPAddr)

	// One shared tail across several headers — the serving layer's
	// lineage fanout shape — plus tail-less datagrams interleaved.
	tail := []byte("-shared-template-body")
	var dgrams []Datagram
	var want []string
	for i := 0; i < 40; i++ {
		hdr := []byte(fmt.Sprintf("%s-hdr-%03d", label, i))
		if i%4 == 3 {
			dgrams = append(dgrams, Datagram{Payload: hdr, Addr: addr})
			want = append(want, string(hdr))
			continue
		}
		dgrams = append(dgrams, Datagram{Payload: hdr, Tail: tail, Addr: addr})
		want = append(want, string(hdr)+string(tail))
	}
	sent, err := s.SendBatch(dgrams)
	if err != nil || sent != len(dgrams) {
		t.Fatalf("%s: SendBatch sent %d/%d: %v", label, sent, len(dgrams), err)
	}

	buf := make([]byte, 2048)
	for i, expect := range want {
		recv.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := recv.Read(buf)
		if err != nil {
			t.Fatalf("%s: datagram %d: %v", label, i, err)
		}
		if string(buf[:n]) != expect {
			t.Fatalf("%s: datagram %d = %q, want %q", label, i, buf[:n], expect)
		}
	}
}

func TestBatchSenderTailLoop(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runTailSenderTest(t, &loopSender{conn: conn}, "loop")
}

func TestBatchSenderTailPlatform(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runTailSenderTest(t, NewBatchSender(conn), "platform")
}

// TestWireLen pins the two-segment length accounting SendBatch's
// callers rely on for byte metrics.
func TestWireLen(t *testing.T) {
	d := Datagram{Payload: make([]byte, 13), Tail: make([]byte, 1387)}
	if got := d.wireLen(); got != 1400 {
		t.Fatalf("wireLen = %d, want 1400", got)
	}
}

// TestListenUDPReusePort pins the sharded-bind contract: on platforms
// reporting support, several sockets bind one UDP address and each can
// receive; elsewhere the constructor must refuse rather than silently
// losing the load-balancing property.
func TestListenUDPReusePort(t *testing.T) {
	if !ReusePortSupported() {
		if _, err := ListenUDPReusePort("udp", "127.0.0.1:0"); err == nil {
			t.Fatal("ListenUDPReusePort succeeded on a platform reporting no support")
		}
		return
	}
	first, err := ListenUDPReusePort("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	addr := first.LocalAddr().String()
	for i := 0; i < 3; i++ {
		c, err := ListenUDPReusePort("udp", addr)
		if err != nil {
			t.Fatalf("shard %d: %v", i+1, err)
		}
		defer c.Close()
		if c.LocalAddr().String() != addr {
			t.Fatalf("shard %d bound %s, want %s", i+1, c.LocalAddr(), addr)
		}
	}
}
