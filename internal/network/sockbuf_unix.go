//go:build unix

package network

import (
	"net"
	"syscall"
)

// SocketBuffers reads back a UDP socket's effective SO_RCVBUF and
// SO_SNDBUF. SetReadBuffer/SetWriteBuffer requests are best-effort —
// the kernel silently clamps them to its rmem_max/wmem_max ceilings
// (and on Linux reports double the stored value, bookkeeping overhead
// included) — so capacity planning must read back what the socket
// actually got rather than trust the request. ok is false when the
// socket's control interface is unavailable.
func SocketBuffers(conn *net.UDPConn) (rcvbuf, sndbuf int, ok bool) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0, 0, false
	}
	var rerr, serr error
	if err := rc.Control(func(fd uintptr) {
		rcvbuf, rerr = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
		sndbuf, serr = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF)
	}); err != nil {
		return 0, 0, false
	}
	if rerr != nil || serr != nil {
		return 0, 0, false
	}
	return rcvbuf, sndbuf, true
}
