//go:build linux && amd64

package network

import "syscall"

// sendmmsg's syscall number postdates the syscall package's frozen
// amd64 table, so it is spelled here; see arch_prctl(2) era tables —
// __NR_sendmmsg is 307 on x86-64. recvmmsg (299) made the frozen
// table, so its constant can come from the package.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = uintptr(syscall.SYS_RECVMMSG)
)
