//go:build linux && amd64

package network

// sendmmsg's syscall number postdates the syscall package's frozen
// amd64 table, so it is spelled here; see arch_prctl(2) era tables —
// __NR_sendmmsg is 307 on x86-64.
const sysSENDMMSG = 307
