package network

// LossMonitor is the receiver-side half of the paper's §3.2/§5
// "proper interfacing mechanisms between the codec and the network":
// it infers packet loss from sequence-number gaps (the way an RTCP
// receiver report is computed) so the sender's PLR estimate needs no
// oracle. Feed every received packet in arrival order; read Rate()
// whenever a report is due.
type LossMonitor struct {
	nextSeq  int
	received int64
	lost     int64
	started  bool
}

// Observe records one received packet. Gaps between the expected and
// actual sequence number count as losses; duplicates and reordering
// within a gap are counted conservatively (a late packet that was
// already declared lost is ignored rather than reclaimed — RTCP's
// cumulative counters behave the same way over short windows).
func (m *LossMonitor) Observe(seq int) {
	if !m.started {
		m.started = true
		m.nextSeq = seq
	}
	if seq < m.nextSeq {
		return // duplicate or late reordered packet
	}
	m.lost += int64(seq - m.nextSeq)
	m.received++
	m.nextSeq = seq + 1
}

// Received returns the number of packets seen.
func (m *LossMonitor) Received() int64 { return m.received }

// Lost returns the number of packets inferred lost.
func (m *LossMonitor) Lost() int64 { return m.lost }

// Rate returns the cumulative loss fraction in [0, 1].
func (m *LossMonitor) Rate() float64 {
	total := m.received + m.lost
	if total == 0 {
		return 0
	}
	return float64(m.lost) / float64(total)
}

// Reset starts a new measurement interval (RTCP-style per-interval
// fraction lost).
func (m *LossMonitor) Reset() {
	m.received, m.lost = 0, 0
	// nextSeq is retained: the interval boundary does not forget where
	// the stream is.
}
