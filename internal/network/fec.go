package network

import "fmt"

// Forward error correction — the paper's §5 extension ("Cooperation
// with error control channel coding can be another interesting
// research topic since PBPAIR is independent from any other encoder
// and/or decoder side control mechanisms").
//
// The scheme is RFC 2733-style XOR parity: after every group of K
// media packets the sender emits one parity packet whose payload is
// the XOR of the group's payloads (padded to the longest) and whose
// header fields carry the XOR of the group's lengths, frame numbers
// and marker bits. A receiver missing exactly one media packet of a
// group reconstructs it bit-exactly; two or more losses in a group are
// unrecoverable. Overhead is 1/K additional packets.

// Parity metadata carried by FEC packets. Media packets leave these
// fields zero.
type parityInfo struct {
	CoverFrom, CoverTo int // inclusive seq range covered
	LenXOR             int
	FrameXOR           int
	MarkerXOR          bool
}

// FECEncoder groups outgoing packets and appends parity.
type FECEncoder struct {
	k     int
	group []Packet
}

// NewFECEncoder returns an encoder emitting one parity packet per k
// media packets. k must be >= 1 (k = 1 duplicates every packet's
// information; larger k trades protection for overhead).
func NewFECEncoder(k int) (*FECEncoder, error) {
	if k < 1 {
		return nil, fmt.Errorf("network: FEC group size %d must be >= 1", k)
	}
	return &FECEncoder{k: k}, nil
}

// Protect appends packets to the current group, returning the packets
// to transmit (the inputs, plus a parity packet after each full
// group). Callers pass every media packet through Protect in seq
// order.
func (e *FECEncoder) Protect(packets []Packet) []Packet {
	out := make([]Packet, 0, len(packets)+len(packets)/e.k+1)
	for _, pkt := range packets {
		e.group = append(e.group, pkt)
		out = append(out, pkt)
		if len(e.group) == e.k {
			out = append(out, e.parity())
			e.group = e.group[:0]
		}
	}
	return out
}

// Flush emits a parity packet for a trailing partial group, if any.
func (e *FECEncoder) Flush() []Packet {
	if len(e.group) == 0 {
		return nil
	}
	p := e.parity()
	e.group = e.group[:0]
	return []Packet{p}
}

// parity builds the parity packet for the current group.
func (e *FECEncoder) parity() Packet {
	maxLen := 0
	for _, pkt := range e.group {
		if len(pkt.Payload) > maxLen {
			maxLen = len(pkt.Payload)
		}
	}
	payload := make([]byte, maxLen)
	info := parityInfo{
		CoverFrom: e.group[0].Seq,
		CoverTo:   e.group[len(e.group)-1].Seq,
	}
	for _, pkt := range e.group {
		for i, b := range pkt.Payload {
			payload[i] ^= b
		}
		info.LenXOR ^= len(pkt.Payload)
		info.FrameXOR ^= pkt.FrameNum
		if pkt.Marker {
			info.MarkerXOR = !info.MarkerXOR
		}
	}
	return Packet{
		Seq:      e.group[len(e.group)-1].Seq, // shares the last covered seq; Parity disambiguates
		FrameNum: e.group[len(e.group)-1].FrameNum,
		Payload:  payload,
		Parity:   &info,
	}
}

// RecoverFEC scans a received packet sequence (media and parity
// interleaved, order preserved) and reconstructs any media packet that
// is the single loss of its parity group. Parity packets are consumed;
// the result contains only media packets in seq order.
func RecoverFEC(received []Packet) []Packet {
	media := make(map[int]Packet)
	var order []int
	var parities []Packet
	for _, pkt := range received {
		if pkt.Parity != nil {
			parities = append(parities, pkt)
			continue
		}
		media[pkt.Seq] = pkt
		order = append(order, pkt.Seq)
	}

	for _, par := range parities {
		info := par.Parity
		missing := -1
		count := 0
		for seq := info.CoverFrom; seq <= info.CoverTo; seq++ {
			if _, ok := media[seq]; ok {
				count++
			} else if missing == -1 {
				missing = seq
			} else {
				missing = -2 // more than one loss: unrecoverable
			}
		}
		if missing < 0 || count != info.CoverTo-info.CoverFrom {
			continue // nothing missing, or too much
		}
		// XOR the surviving payloads into the parity to recover the
		// missing packet.
		payload := make([]byte, len(par.Payload))
		copy(payload, par.Payload)
		length := info.LenXOR
		frame := info.FrameXOR
		marker := info.MarkerXOR
		for seq := info.CoverFrom; seq <= info.CoverTo; seq++ {
			pkt, ok := media[seq]
			if !ok {
				continue
			}
			for i, b := range pkt.Payload {
				payload[i] ^= b
			}
			length ^= len(pkt.Payload)
			frame ^= pkt.FrameNum
			if pkt.Marker {
				marker = !marker
			}
		}
		if length < 0 || length > len(payload) {
			continue // inconsistent parity; drop rather than corrupt
		}
		media[missing] = Packet{
			Seq:      missing,
			FrameNum: frame,
			Marker:   marker,
			Payload:  payload[:length],
		}
		order = append(order, missing)
	}

	// Emit in seq order.
	sortInts(order)
	out := make([]Packet, 0, len(order))
	seen := make(map[int]bool, len(order))
	for _, seq := range order {
		if seen[seq] {
			continue
		}
		seen[seq] = true
		out = append(out, media[seq])
	}
	return out
}

// sortInts is insertion sort — packet groups are tiny and this avoids
// pulling sort into the hot path for a handful of elements.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
