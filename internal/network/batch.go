package network

import (
	"errors"
	"net"
	"net/netip"
)

// Batched datagram output. One streaming server shares a single UDP
// socket across every session; at thousands of sessions the per-packet
// sendto syscall becomes the send path's dominant fixed cost. A
// BatchSender flushes many datagrams per call — the sendmmsg(2) shape
// — behind a portable interface: on Linux the batch goes to the kernel
// in one syscall (batch_linux.go); elsewhere, and whenever the fast
// path is unavailable (seccomp filters, exotic sockets), a loop over
// WriteToUDP provides the identical receiver-visible behaviour.

// Datagram is one payload bound for one destination. A datagram may be
// split into two segments — Payload then Tail — that the kernel
// concatenates on the wire (scatter-gather): the sendmmsg path submits
// them as two iovecs, the portable path copies them together first.
// The split lets a sender fan one shared rendered body (Tail) out to
// thousands of destinations while rewriting only a small per-recipient
// header (Payload), instead of copying the whole datagram per
// recipient. A nil/empty Tail is the common single-segment case.
type Datagram struct {
	Payload []byte
	Tail    []byte
	Addr    *net.UDPAddr
}

// wireLen returns the on-the-wire datagram size.
func (d *Datagram) wireLen() int { return len(d.Payload) + len(d.Tail) }

// BatchSender transmits batches of datagrams on a single UDP socket.
// Implementations are NOT safe for concurrent use: the serving layer
// funnels all sends through one sender goroutine, which is what makes
// batching possible in the first place.
type BatchSender interface {
	// SendBatch transmits the datagrams in order and returns how many
	// were handed to the kernel. Per-datagram send failures are
	// counted, not fatal — UDP offers no delivery guarantee, so the
	// caller's loss accounting treats an unsent datagram exactly like
	// a lost one. A non-nil error reports a socket-level failure
	// (closed socket); the sender is then unusable.
	SendBatch(dgrams []Datagram) (sent int, err error)
}

// NewBatchSender returns the best BatchSender for conn on this
// platform: sendmmsg-backed on Linux with an automatic, permanent
// fallback to the portable loop if the first batch syscall is refused,
// the portable loop elsewhere.
func NewBatchSender(conn *net.UDPConn) BatchSender {
	return newPlatformBatchSender(conn)
}

// loopSender is the portable BatchSender: one WriteToUDP per datagram.
// Two-segment datagrams are joined in a reused scratch buffer first, so
// the receiver-visible bytes match the scatter-gather fast path.
type loopSender struct {
	conn    *net.UDPConn
	scratch []byte
}

// SendBatch implements BatchSender.
func (s *loopSender) SendBatch(dgrams []Datagram) (int, error) {
	sent := 0
	for _, d := range dgrams {
		buf := d.Payload
		if len(d.Tail) > 0 {
			s.scratch = append(append(s.scratch[:0], d.Payload...), d.Tail...)
			buf = s.scratch
		}
		if _, err := s.conn.WriteToUDP(buf, d.Addr); err != nil {
			if isFatalSendErr(err) {
				return sent, err
			}
			continue
		}
		sent++
	}
	return sent, nil
}

// isFatalSendErr reports whether a send error means the socket itself
// is gone (closed during shutdown) rather than one datagram failing
// (ICMP-derived unreachable errors, full socket buffers — transient
// conditions UDP callers treat as loss).
func isFatalSendErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// Batched datagram input, the receive-side mirror of BatchSender. At
// thousands of reporting sessions the per-datagram recvfrom syscall is
// the read path's dominant fixed cost; a BatchReceiver drains a burst
// per call — the recvmmsg(2) shape — behind the same portable
// interface and fallback contract as the send side.

// RecvSlot is one receive buffer and its fill results. The caller owns
// Buf and reuses slots across calls, so a steady-state receive loop
// allocates nothing: Addr is a netip.AddrPort value, not a pointer.
type RecvSlot struct {
	Buf  []byte         // caller-provided buffer, filled up to N
	N    int            // bytes of Buf filled by the last RecvBatch
	Addr netip.AddrPort // datagram source address
}

// BatchReceiver drains batches of datagrams from a single UDP socket.
// Implementations are NOT safe for concurrent use: the serving layer
// funnels all receives through one read-loop goroutine.
type BatchReceiver interface {
	// RecvBatch blocks until at least one datagram is available, fills
	// slots from the front (Buf contents, N, Addr) and returns how many
	// were filled. It never waits for the whole batch: one datagram is
	// enough to return, further slots are filled only from what is
	// already queued in the kernel. A non-nil error reports a
	// socket-level failure (closed socket); the receiver is then
	// unusable. Datagrams longer than a slot's Buf are truncated to it,
	// exactly as a plain UDP read would.
	RecvBatch(slots []RecvSlot) (int, error)
}

// NewBatchReceiver returns the best BatchReceiver for conn on this
// platform: recvmmsg-backed on Linux amd64/arm64 with an automatic,
// permanent fallback to the portable one-read loop if the batch
// syscall is ever refused, the portable receiver elsewhere.
func NewBatchReceiver(conn *net.UDPConn) BatchReceiver {
	return newPlatformBatchReceiver(conn)
}

// loopReceiver is the portable BatchReceiver: one blocking
// ReadFromUDPAddrPort filling the first slot. Callers see batches of
// size one — the pre-batching behaviour, datagram for datagram.
type loopReceiver struct {
	conn *net.UDPConn
}

// RecvBatch implements BatchReceiver.
func (r *loopReceiver) RecvBatch(slots []RecvSlot) (int, error) {
	if len(slots) == 0 {
		return 0, nil
	}
	n, addr, err := r.conn.ReadFromUDPAddrPort(slots[0].Buf)
	if err != nil {
		return 0, err
	}
	slots[0].N = n
	slots[0].Addr = addr
	return 1, nil
}
