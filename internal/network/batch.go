package network

import (
	"errors"
	"net"
)

// Batched datagram output. One streaming server shares a single UDP
// socket across every session; at thousands of sessions the per-packet
// sendto syscall becomes the send path's dominant fixed cost. A
// BatchSender flushes many datagrams per call — the sendmmsg(2) shape
// — behind a portable interface: on Linux the batch goes to the kernel
// in one syscall (batch_linux.go); elsewhere, and whenever the fast
// path is unavailable (seccomp filters, exotic sockets), a loop over
// WriteToUDP provides the identical receiver-visible behaviour.

// Datagram is one payload bound for one destination.
type Datagram struct {
	Payload []byte
	Addr    *net.UDPAddr
}

// BatchSender transmits batches of datagrams on a single UDP socket.
// Implementations are NOT safe for concurrent use: the serving layer
// funnels all sends through one sender goroutine, which is what makes
// batching possible in the first place.
type BatchSender interface {
	// SendBatch transmits the datagrams in order and returns how many
	// were handed to the kernel. Per-datagram send failures are
	// counted, not fatal — UDP offers no delivery guarantee, so the
	// caller's loss accounting treats an unsent datagram exactly like
	// a lost one. A non-nil error reports a socket-level failure
	// (closed socket); the sender is then unusable.
	SendBatch(dgrams []Datagram) (sent int, err error)
}

// NewBatchSender returns the best BatchSender for conn on this
// platform: sendmmsg-backed on Linux with an automatic, permanent
// fallback to the portable loop if the first batch syscall is refused,
// the portable loop elsewhere.
func NewBatchSender(conn *net.UDPConn) BatchSender {
	return newPlatformBatchSender(conn)
}

// loopSender is the portable BatchSender: one WriteToUDP per datagram.
type loopSender struct {
	conn *net.UDPConn
}

// SendBatch implements BatchSender.
func (s *loopSender) SendBatch(dgrams []Datagram) (int, error) {
	sent := 0
	for _, d := range dgrams {
		if _, err := s.conn.WriteToUDP(d.Payload, d.Addr); err != nil {
			if isFatalSendErr(err) {
				return sent, err
			}
			continue
		}
		sent++
	}
	return sent, nil
}

// isFatalSendErr reports whether a send error means the socket itself
// is gone (closed during shutdown) rather than one datagram failing
// (ICMP-derived unreachable errors, full socket buffers — transient
// conditions UDP callers treat as loss).
func isFatalSendErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
