package network

import (
	"bytes"
	"sort"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/metrics"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

func TestInterleaveFallsBackForSmallN(t *testing.T) {
	p := NewPacketizer(1500)
	frame := fakeFrame(0, 10, []int{50, 50, 50})
	pkts := p.PacketizeInterleaved(frame, 1)
	if len(pkts) != 1 {
		t.Fatalf("n=1 should fall back to plain packetisation, got %d packets", len(pkts))
	}
}

func TestInterleaveCoversAllBytes(t *testing.T) {
	p := NewPacketizer(1500)
	frame := fakeFrame(7, 12, []int{40, 55, 70, 85, 100, 115, 130, 145, 160})
	pkts := p.PacketizeInterleaved(frame, 3)
	if len(pkts) != 3 {
		t.Fatalf("got %d packets, want 3", len(pkts))
	}
	total := 0
	for i, pkt := range pkts {
		total += len(pkt.Payload)
		if pkt.FrameNum != 7 {
			t.Fatalf("packet %d frame %d", i, pkt.FrameNum)
		}
		if pkt.Marker != (i == len(pkts)-1) {
			t.Fatalf("marker wrong on packet %d", i)
		}
	}
	if total != len(frame.Data) {
		t.Fatalf("payloads cover %d bytes, frame has %d", total, len(frame.Data))
	}
	// Packet i must contain exactly GOBs i, i+3, i+6 (identifiable by
	// their fill bytes).
	for i, pkt := range pkts {
		for g := 0; g < 9; g++ {
			contains := bytes.Contains(pkt.Payload, bytes.Repeat([]byte{byte(g)}, 40))
			want := g%3 == i
			if contains != want {
				t.Fatalf("packet %d GOB %d presence=%v, want %v", i, g, contains, want)
			}
		}
	}
}

// TestInterleavedStreamDecodes: a real encoded frame split into
// interleaved packets must decode loss-free when all packets arrive.
func TestInterleavedStreamDecodes(t *testing.T) {
	enc, err := codec.NewEncoder(codec.Config{
		Width: video.QCIFWidth, Height: video.QCIFHeight,
		QP: 8, SearchRange: 7, Planner: resilience.NewNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewDecoder(video.QCIFWidth, video.QCIFHeight)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacketizer(1500)
	src := synth.New(synth.RegimeForeman)
	for k := 0; k < 3; k++ {
		ef, err := enc.EncodeFrame(src.Frame(k))
		if err != nil {
			t.Fatal(err)
		}
		pkts := p.PacketizeInterleaved(ef, 2)
		res, err := dec.DecodeFrame(Reassemble(pkts))
		if err != nil {
			t.Fatal(err)
		}
		if res.ConcealedMBs != 0 {
			t.Fatalf("frame %d: %d concealed MBs without loss", k, res.ConcealedMBs)
		}
		if !res.Frame.Equal(enc.ReconClone()) {
			t.Fatalf("frame %d: interleaved stream drifted", k)
		}
	}
}

// TestInterleaveDispersesLoss is the point of the technique: losing
// one of two interleaved packets conceals alternating rows, and with
// spatial concealment that beats losing the same number of contiguous
// rows.
func TestInterleaveDispersesLoss(t *testing.T) {
	src := synth.New(synth.RegimeGarden) // high detail: concealment differences show
	encode := func() []*codec.EncodedFrame {
		enc, err := codec.NewEncoder(codec.Config{
			Width: video.QCIFWidth, Height: video.QCIFHeight,
			QP: 8, SearchRange: 7, Planner: resilience.NewNone(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []*codec.EncodedFrame
		for k := 0; k < 2; k++ {
			ef, err := enc.EncodeFrame(src.Frame(k))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ef)
		}
		return out
	}

	decodeWithLoss := func(frames []*codec.EncodedFrame, interleaved bool) float64 {
		dec, err := codec.NewDecoder(video.QCIFWidth, video.QCIFHeight,
			codec.WithConcealer(spatialConcealer{}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeFrame(frames[0].Data); err != nil {
			t.Fatal(err)
		}
		p := NewPacketizer(1500)
		var pkts []Packet
		if interleaved {
			pkts = p.PacketizeInterleaved(frames[1], 2)
		} else {
			// Contiguous halves: split at the middle GOB boundary.
			mid := frames[1].GOBOffsets[len(frames[1].GOBOffsets)/2]
			pkts = []Packet{
				{Seq: 0, FrameNum: 1, Payload: frames[1].Data[:mid]},
				{Seq: 1, FrameNum: 1, Payload: frames[1].Data[mid:], Marker: true},
			}
		}
		// Lose the second packet either way.
		res, err := dec.DecodeFrame(Reassemble(pkts[:1]))
		if err != nil {
			t.Fatal(err)
		}
		if res.ConcealedMBs == 0 {
			t.Fatal("loss did not conceal anything")
		}
		psnr, err := metrics.PSNR(src.Frame(1), res.Frame)
		if err != nil {
			t.Fatal(err)
		}
		return psnr
	}

	frames := encode()
	contig := decodeWithLoss(frames, false)
	inter := decodeWithLoss(encode(), interTrue)
	t.Logf("half-frame loss with spatial concealment: contiguous %.2f dB, interleaved %.2f dB",
		contig, inter)
	if inter <= contig {
		t.Fatalf("interleaving %.2f dB not better than contiguous %.2f dB", inter, contig)
	}
}

const interTrue = true

// spatialConcealer adapts conceal.Spatial without importing it (avoids
// an import cycle in this package's tests? No cycle actually — but a
// local copy keeps the test self-contained): vertical interpolation
// between the rows above and below the lost macroblock.
type spatialConcealer struct{}

func (spatialConcealer) ConcealMB(dst, ref *video.Frame, mbRow, mbCol int) {
	x, y := mbCol*video.MBSize, mbRow*video.MBSize
	w := dst.Width
	hasTop := y > 0
	hasBottom := y+video.MBSize < dst.Height
	if !hasTop && !hasBottom {
		if ref != nil {
			video.CopyMB(dst, ref, mbRow, mbCol)
		}
		return
	}
	for c := 0; c < video.MBSize; c++ {
		var top, bottom int32
		switch {
		case hasTop && hasBottom:
			top = int32(dst.Y[(y-1)*w+x+c])
			bottom = int32(dst.Y[(y+video.MBSize)*w+x+c])
		case hasTop:
			top = int32(dst.Y[(y-1)*w+x+c])
			bottom = top
		default:
			bottom = int32(dst.Y[(y+video.MBSize)*w+x+c])
			top = bottom
		}
		for r := 0; r < video.MBSize; r++ {
			wb := int32(r + 1)
			wt := int32(video.MBSize - r)
			dst.Y[(y+r)*w+x+c] = video.ClampPixel((top*wt + bottom*wb) / int32(video.MBSize+1))
		}
	}
}

// TestInterleaveSeqNumbers: interleaved packets continue the shared
// sequence space.
func TestInterleaveSeqNumbers(t *testing.T) {
	p := NewPacketizer(1500)
	f1 := fakeFrame(0, 10, []int{30, 30, 30, 30})
	f2 := fakeFrame(1, 10, []int{30, 30, 30, 30})
	a := p.PacketizeInterleaved(f1, 2)
	b := p.PacketizeInterleaved(f2, 2)
	var seqs []int
	for _, pkt := range append(a, b...) {
		seqs = append(seqs, pkt.Seq)
	}
	if !sort.IntsAreSorted(seqs) {
		t.Fatalf("sequence numbers not monotone: %v", seqs)
	}
	if seqs[0] != 0 || seqs[len(seqs)-1] != 3 {
		t.Fatalf("sequence numbers %v", seqs)
	}
}
