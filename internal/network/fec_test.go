package network

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mediaPackets(n int, rng *rand.Rand) []Packet {
	pkts := make([]Packet, n)
	for i := range pkts {
		payload := make([]byte, rng.Intn(200)+1)
		rng.Read(payload)
		pkts[i] = Packet{
			Seq:      i,
			FrameNum: i / 2,
			Marker:   i%2 == 1,
			Payload:  payload,
		}
	}
	return pkts
}

func TestFECEncoderValidation(t *testing.T) {
	if _, err := NewFECEncoder(0); err == nil {
		t.Fatal("group size 0 accepted")
	}
}

func TestFECOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	enc, err := NewFECEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	out := enc.Protect(mediaPackets(12, rng))
	media, parity := 0, 0
	for _, pkt := range out {
		if pkt.Parity != nil {
			parity++
		} else {
			media++
		}
	}
	if media != 12 || parity != 3 {
		t.Fatalf("media %d parity %d, want 12/3", media, parity)
	}
}

func TestFECFlushPartialGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc, err := NewFECEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	enc.Protect(mediaPackets(2, rng))
	tail := enc.Flush()
	if len(tail) != 1 || tail[0].Parity == nil {
		t.Fatalf("Flush returned %v", tail)
	}
	if again := enc.Flush(); again != nil {
		t.Fatal("second Flush emitted another parity packet")
	}
}

func TestFECRecoversSingleLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := mediaPackets(8, rng)
	enc, err := NewFECEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	protected := enc.Protect(orig)

	// Drop one media packet per group.
	for _, victim := range []int{1, 6} {
		var received []Packet
		for _, pkt := range protected {
			if pkt.Parity == nil && pkt.Seq == victim {
				continue
			}
			received = append(received, pkt)
		}
		recovered := RecoverFEC(received)
		if len(recovered) != 8 {
			t.Fatalf("victim %d: recovered %d packets, want 8", victim, len(recovered))
		}
		for i, pkt := range recovered {
			want := orig[i]
			if pkt.Seq != want.Seq || pkt.FrameNum != want.FrameNum || pkt.Marker != want.Marker {
				t.Fatalf("victim %d: packet %d metadata %+v, want %+v", victim, i, pkt, want)
			}
			if !bytes.Equal(pkt.Payload, want.Payload) {
				t.Fatalf("victim %d: packet %d payload differs", victim, i)
			}
		}
	}
}

func TestFECCannotRecoverDoubleLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := mediaPackets(4, rng)
	enc, _ := NewFECEncoder(4)
	protected := enc.Protect(orig)
	var received []Packet
	for _, pkt := range protected {
		if pkt.Parity == nil && (pkt.Seq == 1 || pkt.Seq == 2) {
			continue
		}
		received = append(received, pkt)
	}
	recovered := RecoverFEC(received)
	if len(recovered) != 2 {
		t.Fatalf("recovered %d packets from a double loss, want 2 survivors", len(recovered))
	}
}

func TestFECLostParityIsHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := mediaPackets(4, rng)
	enc, _ := NewFECEncoder(4)
	protected := enc.Protect(orig)
	var received []Packet
	for _, pkt := range protected {
		if pkt.Parity != nil {
			continue
		}
		received = append(received, pkt)
	}
	recovered := RecoverFEC(received)
	if len(recovered) != 4 {
		t.Fatalf("recovered %d, want 4", len(recovered))
	}
}

// TestFECRoundTripProperty: for any payload sizes and any single
// victim, recovery is bit exact.
func TestFECRoundTripProperty(t *testing.T) {
	prop := func(seed int64, kRaw, victimRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%6) + 1
		n := k * 3
		orig := mediaPackets(n, rng)
		enc, err := NewFECEncoder(k)
		if err != nil {
			return false
		}
		protected := enc.Protect(orig)
		victim := int(victimRaw) % n
		var received []Packet
		for _, pkt := range protected {
			if pkt.Parity == nil && pkt.Seq == victim {
				continue
			}
			received = append(received, pkt)
		}
		recovered := RecoverFEC(received)
		if len(recovered) != n {
			return false
		}
		for i := range recovered {
			if !bytes.Equal(recovered[i].Payload, orig[i].Payload) ||
				recovered[i].FrameNum != orig[i].FrameNum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFECEndToEndLoss: FEC in front of a uniform-loss channel lowers
// the effective media loss rate roughly to the two-in-a-group regime.
func TestFECEndToEndLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 4000
	const k = 4
	orig := mediaPackets(n, rng)
	enc, _ := NewFECEncoder(k)
	protected := enc.Protect(orig)

	ch, err := NewUniformLoss(0.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	received := ch.Transmit(protected)
	recovered := RecoverFEC(received)

	effective := 1 - float64(len(recovered))/n
	if effective >= 0.06 {
		t.Fatalf("FEC effective loss %.4f, want well below the raw 0.10", effective)
	}
	if effective <= 0.001 {
		t.Fatalf("FEC effective loss %.4f suspiciously low for k=4 at 10%%", effective)
	}
}

func TestSortInts(t *testing.T) {
	a := []int{5, 2, 9, 2, 0}
	sortInts(a)
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("not sorted: %v", a)
		}
	}
}
