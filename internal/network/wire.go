package network

import (
	"encoding/binary"
	"fmt"
)

// Wire serialisation for Packet, used by the serving layer to carry
// packets over real UDP sockets. The layout is RTP-in-spirit and
// self-describing enough to round-trip FEC parity packets (whose
// recovery metadata would otherwise be lost at the socket boundary):
//
//	u32 seq | u32 frame | u8 flags | [parity header] | payload
//
// flags bit 0 is the RTP marker bit; bit 1 marks a parity packet, in
// which case a fixed 17-byte parity header follows:
//
//	u32 coverFrom | u32 coverTo | u32 lenXOR | u32 frameXOR | u8 markerXOR
//
// All integers are big-endian (network order).

const (
	wireHeaderLen       = 9
	wireParityHeaderLen = 17

	wireFlagMarker = 1 << 0
	wireFlagParity = 1 << 1
)

// AppendWire appends the wire encoding of p to buf and returns the
// extended slice.
func (p Packet) AppendWire(buf []byte) []byte {
	var hdr [wireHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(p.Seq))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(p.FrameNum))
	if p.Marker {
		hdr[8] |= wireFlagMarker
	}
	if p.Parity != nil {
		hdr[8] |= wireFlagParity
	}
	buf = append(buf, hdr[:]...)
	if p.Parity != nil {
		var ph [wireParityHeaderLen]byte
		binary.BigEndian.PutUint32(ph[0:4], uint32(p.Parity.CoverFrom))
		binary.BigEndian.PutUint32(ph[4:8], uint32(p.Parity.CoverTo))
		binary.BigEndian.PutUint32(ph[8:12], uint32(p.Parity.LenXOR))
		binary.BigEndian.PutUint32(ph[12:16], uint32(p.Parity.FrameXOR))
		if p.Parity.MarkerXOR {
			ph[16] = 1
		}
		buf = append(buf, ph[:]...)
	}
	return append(buf, p.Payload...)
}

// WireSize returns the encoded length of p in bytes.
func (p Packet) WireSize() int {
	n := wireHeaderLen + len(p.Payload)
	if p.Parity != nil {
		n += wireParityHeaderLen
	}
	return n
}

// ParseWire decodes one wire-encoded packet. The payload is copied, so
// the result does not alias buf (UDP read buffers are reused).
func ParseWire(buf []byte) (Packet, error) {
	if len(buf) < wireHeaderLen {
		return Packet{}, fmt.Errorf("network: wire packet truncated at %d bytes", len(buf))
	}
	p := Packet{
		Seq:      int(binary.BigEndian.Uint32(buf[0:4])),
		FrameNum: int(binary.BigEndian.Uint32(buf[4:8])),
		Marker:   buf[8]&wireFlagMarker != 0,
	}
	rest := buf[wireHeaderLen:]
	if buf[8]&wireFlagParity != 0 {
		if len(rest) < wireParityHeaderLen {
			return Packet{}, fmt.Errorf("network: parity header truncated at %d bytes", len(rest))
		}
		p.Parity = &parityInfo{
			CoverFrom: int(binary.BigEndian.Uint32(rest[0:4])),
			CoverTo:   int(binary.BigEndian.Uint32(rest[4:8])),
			LenXOR:    int(binary.BigEndian.Uint32(rest[8:12])),
			FrameXOR:  int(binary.BigEndian.Uint32(rest[12:16])),
			MarkerXOR: rest[16] == 1,
		}
		rest = rest[wireParityHeaderLen:]
	}
	p.Payload = append([]byte(nil), rest...)
	return p, nil
}

// IsParity reports whether p is an FEC parity packet. Receivers use it
// to keep parity packets out of sequence-gap loss accounting (a parity
// packet shares its last covered media packet's seq).
func (p Packet) IsParity() bool { return p.Parity != nil }

// Coalesced-batch wire format. The serving layer's batched send path
// packs several consecutive packets of one session into a single
// datagram per flush tick (fewer syscalls and UDP headers for the
// small packets a QCIF stream produces). The container is
// length-prefixed so parity packets — whose wire encoding is longer
// than media packets — round-trip intact:
//
//	u8 count | count × ( u16 len | packet wire encoding )
//
// Big-endian, like the rest of the wire layer.

// MaxBatchPackets is the most packets one coalesced batch can carry
// (the count rides in one byte).
const MaxBatchPackets = 255

// AppendWireBatch appends the coalesced encoding of pkts to buf. It
// panics if len(pkts) exceeds MaxBatchPackets or any packet's wire
// size exceeds 64 KiB — both are sender-side programming errors, not
// input errors (the sender sizes batches against the MTU, orders of
// magnitude below either bound).
func AppendWireBatch(buf []byte, pkts []Packet) []byte {
	if len(pkts) > MaxBatchPackets {
		panic(fmt.Sprintf("network: %d packets exceed the %d-packet batch bound", len(pkts), MaxBatchPackets))
	}
	buf = append(buf, byte(len(pkts)))
	for _, p := range pkts {
		n := p.WireSize()
		if n > 0xFFFF {
			panic(fmt.Sprintf("network: %d-byte packet exceeds the batch length prefix", n))
		}
		buf = append(buf, byte(n>>8), byte(n))
		buf = p.AppendWire(buf)
	}
	return buf
}

// WireBatchSize returns the encoded length of a coalesced batch of
// pkts in bytes.
func WireBatchSize(pkts []Packet) int {
	n := 1
	for _, p := range pkts {
		n += 2 + p.WireSize()
	}
	return n
}

// ParseWireBatch decodes one coalesced batch, appending the packets to
// dst (which may be nil). Packets are copied out, so the result does
// not alias buf.
func ParseWireBatch(dst []Packet, buf []byte) ([]Packet, error) {
	if len(buf) < 1 {
		return dst, fmt.Errorf("network: empty batch")
	}
	count := int(buf[0])
	buf = buf[1:]
	for i := 0; i < count; i++ {
		if len(buf) < 2 {
			return dst, fmt.Errorf("network: batch truncated at packet %d/%d", i, count)
		}
		n := int(buf[0])<<8 | int(buf[1])
		buf = buf[2:]
		if len(buf) < n {
			return dst, fmt.Errorf("network: batch packet %d/%d truncated (%d of %d bytes)", i, count, len(buf), n)
		}
		p, err := ParseWire(buf[:n])
		if err != nil {
			return dst, fmt.Errorf("network: batch packet %d/%d: %w", i, count, err)
		}
		dst = append(dst, p)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return dst, fmt.Errorf("network: %d trailing bytes after %d-packet batch", len(buf), count)
	}
	return dst, nil
}
