package network

import (
	"encoding/binary"
	"fmt"
)

// Wire serialisation for Packet, used by the serving layer to carry
// packets over real UDP sockets. The layout is RTP-in-spirit and
// self-describing enough to round-trip FEC parity packets (whose
// recovery metadata would otherwise be lost at the socket boundary):
//
//	u32 seq | u32 frame | u8 flags | [parity header] | payload
//
// flags bit 0 is the RTP marker bit; bit 1 marks a parity packet, in
// which case a fixed 17-byte parity header follows:
//
//	u32 coverFrom | u32 coverTo | u32 lenXOR | u32 frameXOR | u8 markerXOR
//
// All integers are big-endian (network order).

const (
	wireHeaderLen       = 9
	wireParityHeaderLen = 17

	wireFlagMarker = 1 << 0
	wireFlagParity = 1 << 1
)

// AppendWire appends the wire encoding of p to buf and returns the
// extended slice.
func (p Packet) AppendWire(buf []byte) []byte {
	var hdr [wireHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(p.Seq))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(p.FrameNum))
	if p.Marker {
		hdr[8] |= wireFlagMarker
	}
	if p.Parity != nil {
		hdr[8] |= wireFlagParity
	}
	buf = append(buf, hdr[:]...)
	if p.Parity != nil {
		var ph [wireParityHeaderLen]byte
		binary.BigEndian.PutUint32(ph[0:4], uint32(p.Parity.CoverFrom))
		binary.BigEndian.PutUint32(ph[4:8], uint32(p.Parity.CoverTo))
		binary.BigEndian.PutUint32(ph[8:12], uint32(p.Parity.LenXOR))
		binary.BigEndian.PutUint32(ph[12:16], uint32(p.Parity.FrameXOR))
		if p.Parity.MarkerXOR {
			ph[16] = 1
		}
		buf = append(buf, ph[:]...)
	}
	return append(buf, p.Payload...)
}

// WireSize returns the encoded length of p in bytes.
func (p Packet) WireSize() int {
	n := wireHeaderLen + len(p.Payload)
	if p.Parity != nil {
		n += wireParityHeaderLen
	}
	return n
}

// ParseWire decodes one wire-encoded packet. The payload is copied, so
// the result does not alias buf (UDP read buffers are reused).
func ParseWire(buf []byte) (Packet, error) {
	if len(buf) < wireHeaderLen {
		return Packet{}, fmt.Errorf("network: wire packet truncated at %d bytes", len(buf))
	}
	p := Packet{
		Seq:      int(binary.BigEndian.Uint32(buf[0:4])),
		FrameNum: int(binary.BigEndian.Uint32(buf[4:8])),
		Marker:   buf[8]&wireFlagMarker != 0,
	}
	rest := buf[wireHeaderLen:]
	if buf[8]&wireFlagParity != 0 {
		if len(rest) < wireParityHeaderLen {
			return Packet{}, fmt.Errorf("network: parity header truncated at %d bytes", len(rest))
		}
		p.Parity = &parityInfo{
			CoverFrom: int(binary.BigEndian.Uint32(rest[0:4])),
			CoverTo:   int(binary.BigEndian.Uint32(rest[4:8])),
			LenXOR:    int(binary.BigEndian.Uint32(rest[8:12])),
			FrameXOR:  int(binary.BigEndian.Uint32(rest[12:16])),
			MarkerXOR: rest[16] == 1,
		}
		rest = rest[wireParityHeaderLen:]
	}
	p.Payload = append([]byte(nil), rest...)
	return p, nil
}

// IsParity reports whether p is an FEC parity packet. Receivers use it
// to keep parity packets out of sequence-gap loss accounting (a parity
// packet shares its last covered media packet's seq).
func (p Packet) IsParity() bool { return p.Parity != nil }
