package network

import "testing"

// drainScalar runs one scalar channel over pkts packets, one packet
// per Transmit call (the draw order is per packet either way), and
// returns the loss decision per packet.
func drainScalar(t *testing.T, ch Channel, pkts int) []bool {
	t.Helper()
	lost := make([]bool, pkts)
	for i := range lost {
		kept := ch.Transmit([]Packet{{Seq: i}})
		lost[i] = len(kept) == 0
	}
	return lost
}

// drainBatch runs a mask source over pkts packets and returns the loss
// decision per packet for one lane.
func drainBatch(src MaskSource, lane, pkts int) []bool {
	dst := make([]uint64, MaskWords(src.Lanes()))
	lost := make([]bool, pkts)
	for i := range lost {
		src.NextMask(dst)
		lost[i] = dst[lane>>6]&(1<<uint(lane&63)) != 0
	}
	return lost
}

// TestBatchUniformMatchesScalar pins the determinism contract: lane l
// of BatchUniform draws exactly like UniformLoss seeded with
// LaneSeed(seed, l), across a multi-word lane count.
func TestBatchUniformMatchesScalar(t *testing.T) {
	const (
		seed  = uint64(2005)
		lanes = 130 // three words, last one partial
		pkts  = 400
		rate  = 0.17
	)
	src, err := NewBatchUniform(rate, seed, lanes)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]bool, lanes)
	dst := make([]uint64, MaskWords(lanes))
	for i := 0; i < pkts; i++ {
		src.NextMask(dst)
		if tail := dst[len(dst)-1] >> uint(lanes%64); tail != 0 {
			t.Fatalf("packet %d: bits set above lane count: %#x", i, tail)
		}
		for l := 0; l < lanes; l++ {
			batch[l] = append(batch[l], dst[l>>6]&(1<<uint(l&63)) != 0)
		}
	}
	for l := 0; l < lanes; l++ {
		ch, err := NewUniformLoss(rate, LaneSeed(seed, l))
		if err != nil {
			t.Fatal(err)
		}
		want := drainScalar(t, ch, pkts)
		for i := range want {
			if batch[l][i] != want[i] {
				t.Fatalf("lane %d packet %d: batch lost=%v scalar lost=%v", l, i, batch[l][i], want[i])
			}
		}
	}
}

// TestBatchGEMatchesScalar pins the same contract for the burst
// channel: per-lane state, transition-then-loss draw order.
func TestBatchGEMatchesScalar(t *testing.T) {
	const (
		seed  = uint64(909)
		lanes = 67 // crosses the one-word boundary
		pkts  = 600
	)
	cfg := GEConfig{PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.02, LossBad: 0.5}
	src, err := NewBatchGE(cfg, seed, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range []int{0, 1, 63, 64, 66} {
		ch, err := NewGilbertElliott(cfg, LaneSeed(seed, lane))
		if err != nil {
			t.Fatal(err)
		}
		want := drainScalar(t, ch, pkts)
		// Fresh source per lane probe: NextMask advances all lanes.
		src, err = NewBatchGE(cfg, seed, lanes)
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatch(src, lane, pkts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lane %d packet %d: batch lost=%v scalar lost=%v", lane, i, got[i], want[i])
			}
		}
	}
}

// TestLaneSeedContract pins lane 0 to the raw base seed (the trial-0
// compatibility anchor) and checks higher lanes are pairwise distinct
// scrambles.
func TestLaneSeedContract(t *testing.T) {
	const seed = uint64(0xDEADBEEF)
	if LaneSeed(seed, 0) != seed {
		t.Fatalf("lane 0 seed = %#x, want the base seed %#x", LaneSeed(seed, 0), seed)
	}
	seen := map[uint64]int{}
	for l := 0; l < 10000; l++ {
		s := LaneSeed(seed, l)
		if prev, dup := seen[s]; dup {
			t.Fatalf("lanes %d and %d collide on seed %#x", prev, l, s)
		}
		seen[s] = l
	}
}

// TestBatchSourceValidation rejects malformed rates, probabilities and
// lane counts, mirroring the scalar constructors.
func TestBatchSourceValidation(t *testing.T) {
	nan := func() float64 { z := 0.0; return z / z }()
	if _, err := NewBatchUniform(-0.1, 1, 4); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewBatchUniform(1.1, 1, 4); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewBatchUniform(nan, 1, 4); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := NewBatchUniform(0.5, 1, 0); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := NewBatchGE(GEConfig{PGoodToBad: nan}, 1, 4); err == nil {
		t.Error("NaN GE probability accepted")
	}
	if _, err := NewBatchGE(GEConfig{LossBad: 2}, 1, 4); err == nil {
		t.Error("GE probability > 1 accepted")
	}
	if _, err := NewBatchGE(GEConfig{}, 1, -1); err == nil {
		t.Error("negative lanes accepted")
	}
}
