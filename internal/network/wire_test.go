package network

import (
	"bytes"
	"testing"
)

func TestWireRoundTripMedia(t *testing.T) {
	in := Packet{Seq: 7, FrameNum: 3, Marker: true, Payload: []byte{1, 2, 3, 4}}
	buf := in.AppendWire(nil)
	if len(buf) != in.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), in.WireSize())
	}
	out, err := ParseWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.FrameNum != in.FrameNum || out.Marker != in.Marker ||
		!bytes.Equal(out.Payload, in.Payload) || out.Parity != nil {
		t.Fatalf("round trip mismatch: %+v → %+v", in, out)
	}
	// Parsed payload must not alias the wire buffer.
	buf[len(buf)-1] ^= 0xFF
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("parsed payload aliases the wire buffer")
	}
}

func TestWireRoundTripParity(t *testing.T) {
	enc, err := NewFECEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	media := []Packet{
		{Seq: 10, FrameNum: 5, Payload: []byte{0xAA, 0xBB}},
		{Seq: 11, FrameNum: 5, Marker: true, Payload: []byte{0xCC}},
	}
	out := enc.Protect(media)
	if len(out) != 3 || out[2].Parity == nil {
		t.Fatalf("expected 2 media + 1 parity, got %d packets", len(out))
	}
	parity := out[2]

	got, err := ParseWire(parity.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Parity == nil {
		t.Fatal("parity metadata lost on the wire")
	}
	if *got.Parity != *parity.Parity {
		t.Fatalf("parity metadata mismatch: %+v → %+v", *parity.Parity, *got.Parity)
	}
	if !bytes.Equal(got.Payload, parity.Payload) {
		t.Fatal("parity payload mismatch")
	}

	// The round-tripped parity packet must still recover a single loss.
	recovered := RecoverFEC([]Packet{out[0], got}) // out[1] lost
	if len(recovered) != 2 {
		t.Fatalf("recovered %d packets, want 2", len(recovered))
	}
	if !bytes.Equal(recovered[1].Payload, media[1].Payload) || !recovered[1].Marker {
		t.Fatalf("FEC recovery through the wire codec failed: %+v", recovered[1])
	}
}

func TestParseWireTruncated(t *testing.T) {
	if _, err := ParseWire([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for truncated header")
	}
	p := Packet{Seq: 1, Parity: &parityInfo{CoverFrom: 0, CoverTo: 1}}
	buf := p.AppendWire(nil)
	if _, err := ParseWire(buf[:10]); err == nil {
		t.Fatal("want error for truncated parity header")
	}
}
