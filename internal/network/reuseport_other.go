//go:build !linux

package network

import (
	"errors"
	"net"
)

// ReusePortSupported reports whether ListenUDPReusePort can bind
// several sockets to one address on this platform. Only the Linux
// SO_REUSEPORT semantics (kernel 4-tuple load balancing across the
// socket group) are what the receive sharding needs; BSD SO_REUSEPORT
// delivers each datagram to one arbitrary socket without the balanced
// steering, so everywhere but Linux the serving layer falls back to a
// single socket.
func ReusePortSupported() bool { return false }

// ListenUDPReusePort is unsupported off Linux; callers are expected to
// check ReusePortSupported and fall back to a single net.ListenUDP
// socket.
func ListenUDPReusePort(netw, addr string) (*net.UDPConn, error) {
	return nil, errors.New("network: SO_REUSEPORT sharding requires linux")
}
