package network

import (
	"bytes"
	"math"
	"testing"

	"pbpair/internal/codec"
)

// fakeFrame builds an EncodedFrame with n GOBs of the given sizes and
// a header of headerLen bytes. GOB i's payload is filled with byte i.
func fakeFrame(num, headerLen int, gobSizes []int) *codec.EncodedFrame {
	var data []byte
	data = append(data, bytes.Repeat([]byte{0xAA}, headerLen)...)
	offsets := make([]int, 0, len(gobSizes))
	for i, size := range gobSizes {
		offsets = append(offsets, len(data))
		data = append(data, bytes.Repeat([]byte{byte(i)}, size)...)
	}
	return &codec.EncodedFrame{FrameNum: num, Data: data, GOBOffsets: offsets}
}

func TestPacketizeSmallFrameSinglePacket(t *testing.T) {
	p := NewPacketizer(1500)
	frame := fakeFrame(3, 10, []int{100, 100, 100})
	pkts := p.Packetize(frame)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	if !pkts[0].Marker {
		t.Fatal("single packet must carry the marker bit")
	}
	if pkts[0].FrameNum != 3 {
		t.Fatalf("FrameNum = %d", pkts[0].FrameNum)
	}
	if !bytes.Equal(pkts[0].Payload, frame.Data) {
		t.Fatal("payload differs from frame data")
	}
}

func TestPacketizeSplitsAtGOBBoundaries(t *testing.T) {
	p := NewPacketizer(250)
	frame := fakeFrame(0, 20, []int{100, 100, 100, 100})
	pkts := p.Packetize(frame)
	if len(pkts) < 2 {
		t.Fatalf("oversized frame not split: %d packets", len(pkts))
	}
	// Every packet boundary after the first must coincide with a GOB
	// offset, every packet must respect the MTU, and the marker sits on
	// the last packet only.
	pos := 0
	for i, pkt := range pkts {
		if len(pkt.Payload) > 250 {
			t.Fatalf("packet %d is %d bytes > MTU", i, len(pkt.Payload))
		}
		if i > 0 {
			found := false
			for _, off := range frame.GOBOffsets {
				if off == pos {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("packet %d starts at %d, not a GOB boundary", i, pos)
			}
		}
		if pkt.Marker != (i == len(pkts)-1) {
			t.Fatalf("marker on packet %d wrong", i)
		}
		pos += len(pkt.Payload)
	}
	if got := Reassemble(pkts); !bytes.Equal(got, frame.Data) {
		t.Fatal("reassembled payload differs")
	}
}

func TestPacketizeTailNotSplitNeedlessly(t *testing.T) {
	p := NewPacketizer(250)
	// 20+100+100+100+100 = 420 bytes: should be 2 packets (240 + 180),
	// not more.
	frame := fakeFrame(0, 20, []int{100, 100, 100, 100})
	pkts := p.Packetize(frame)
	if len(pkts) != 2 {
		sizes := make([]int, len(pkts))
		for i := range pkts {
			sizes[i] = len(pkts[i].Payload)
		}
		t.Fatalf("got %d packets %v, want 2", len(pkts), sizes)
	}
}

func TestPacketizeOversizedGOB(t *testing.T) {
	p := NewPacketizer(100)
	frame := fakeFrame(0, 10, []int{300, 50})
	pkts := p.Packetize(frame)
	if got := Reassemble(pkts); !bytes.Equal(got, frame.Data) {
		t.Fatal("oversized-GOB frame did not reassemble")
	}
}

func TestPacketizeSequenceNumbersMonotone(t *testing.T) {
	p := NewPacketizer(120)
	last := -1
	for f := 0; f < 5; f++ {
		for _, pkt := range p.Packetize(fakeFrame(f, 10, []int{100, 100})) {
			if pkt.Seq != last+1 {
				t.Fatalf("sequence jumped from %d to %d", last, pkt.Seq)
			}
			last = pkt.Seq
		}
	}
}

func TestReassembleEmpty(t *testing.T) {
	if Reassemble(nil) != nil {
		t.Fatal("no packets should reassemble to nil")
	}
}

func TestPerfectChannel(t *testing.T) {
	pkts := []Packet{{Seq: 0}, {Seq: 1}}
	if got := (Perfect{}).Transmit(pkts); len(got) != 2 {
		t.Fatal("perfect channel dropped packets")
	}
}

func TestUniformLossValidation(t *testing.T) {
	if _, err := NewUniformLoss(-0.1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewUniformLoss(1.1, 1); err == nil {
		t.Fatal("rate above one accepted")
	}
}

func TestUniformLossRate(t *testing.T) {
	const n = 20000
	ch, err := NewUniformLoss(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i].Seq = i
	}
	kept := ch.Transmit(pkts)
	rate := 1 - float64(len(kept))/n
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("empirical loss rate %.4f, want ~0.10", rate)
	}
}

func TestUniformLossDeterministic(t *testing.T) {
	mk := func() []int {
		ch, err := NewUniformLoss(0.3, 7)
		if err != nil {
			t.Fatal(err)
		}
		pkts := make([]Packet, 100)
		for i := range pkts {
			pkts[i].Seq = i
		}
		var seqs []int
		for _, pkt := range ch.Transmit(pkts) {
			seqs = append(seqs, pkt.Seq)
		}
		return seqs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("same seed, different outcomes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different survivors")
		}
	}
}

func TestUniformLossZeroAndOne(t *testing.T) {
	pkts := make([]Packet, 50)
	none, _ := NewUniformLoss(0, 1)
	if got := none.Transmit(pkts); len(got) != 50 {
		t.Fatal("rate 0 dropped packets")
	}
	all, _ := NewUniformLoss(1, 1)
	if got := all.Transmit(pkts); len(got) != 0 {
		t.Fatal("rate 1 kept packets")
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(GEConfig{PGoodToBad: -1}, 1); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Same average loss as a uniform channel, but losses must cluster:
	// the mean run length of consecutive losses should exceed the
	// uniform channel's.
	cfg := GEConfig{PGoodToBad: 0.02, PBadToGood: 0.2, LossGood: 0.001, LossBad: 0.9}
	ge, err := NewGilbertElliott(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i].Seq = i
	}
	kept := ge.Transmit(pkts)
	surv := make([]bool, n)
	for _, pkt := range kept {
		surv[pkt.Seq] = true
	}
	var runs, lossTotal, cur int
	for i := 0; i < n; i++ {
		if !surv[i] {
			cur++
			lossTotal++
		} else if cur > 0 {
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		runs++
	}
	if lossTotal == 0 || runs == 0 {
		t.Fatal("burst channel produced no losses")
	}
	meanRun := float64(lossTotal) / float64(runs)
	if meanRun < 1.5 {
		t.Fatalf("mean loss-run length %.2f not bursty", meanRun)
	}
	// Steady state sanity.
	want := ge.SteadyStateLoss()
	got := float64(lossTotal) / n
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical loss %.3f far from steady state %.3f", got, want)
	}
}

func TestScheduleDropsExactFrames(t *testing.T) {
	s := NewSchedule(2, 5)
	if !s.Lost(2) || !s.Lost(5) || s.Lost(3) {
		t.Fatal("Lost() wrong")
	}
	var pkts []Packet
	for f := 0; f < 7; f++ {
		pkts = append(pkts, Packet{Seq: f, FrameNum: f})
	}
	kept := s.Transmit(pkts)
	for _, pkt := range kept {
		if pkt.FrameNum == 2 || pkt.FrameNum == 5 {
			t.Fatalf("scheduled-lost frame %d survived", pkt.FrameNum)
		}
	}
	if len(kept) != 5 {
		t.Fatalf("kept %d packets, want 5", len(kept))
	}
}

func TestDefaultMTU(t *testing.T) {
	p := NewPacketizer(0)
	frame := fakeFrame(0, 10, []int{400, 400, 400})
	if pkts := p.Packetize(frame); len(pkts) != 1 {
		t.Fatalf("default MTU should hold a 1210-byte frame in one packet, got %d", len(pkts))
	}
}
