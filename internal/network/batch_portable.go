//go:build !linux || !(amd64 || arm64)

package network

import "net"

func newPlatformBatchSender(conn *net.UDPConn) BatchSender {
	return &loopSender{conn: conn}
}

func newPlatformBatchReceiver(conn *net.UDPConn) BatchReceiver {
	return &loopReceiver{conn: conn}
}
