//go:build linux

package network

import (
	"context"
	"net"
	"syscall"
)

// soREUSEPORT is SO_REUSEPORT on Linux. The stdlib syscall package
// does not export it (it postdates the package freeze); the value has
// been 15 on every Linux arch since the option appeared in 3.9.
const soREUSEPORT = 0xf

// ReusePortSupported reports whether ListenUDPReusePort can bind
// several sockets to one address on this platform.
func ReusePortSupported() bool { return true }

// ListenUDPReusePort binds a UDP socket with SO_REUSEPORT set before
// bind, so N sockets can share one addr:port and the kernel load-
// balances inbound datagrams across them by 4-tuple hash — the
// receive-side sharding primitive. Callers bind the first socket
// (possibly to an ephemeral port), read back its concrete address and
// bind the remaining shards to that.
func ListenUDPReusePort(netw, addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soREUSEPORT, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), netw, addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
