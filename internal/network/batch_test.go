package network

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"
)

// randomPacket builds a deterministic pseudo-random packet; roughly a
// third are FEC parity packets so their longer wire encoding exercises
// the batch length prefixes.
func randomPacket(rng *splitMix64) Packet {
	p := Packet{
		Seq:      int(rng.next() % 1_000_000),
		FrameNum: int(rng.next() % 100_000),
		Marker:   rng.next()%2 == 0,
		Payload:  make([]byte, rng.next()%700),
	}
	for i := range p.Payload {
		p.Payload[i] = byte(rng.next())
	}
	if rng.next()%3 == 0 {
		p.Parity = &parityInfo{
			CoverFrom: int(rng.next() % 1000),
			CoverTo:   int(rng.next() % 1000),
			LenXOR:    int(rng.next() % 2000),
			FrameXOR:  int(rng.next() % 1000),
			MarkerXOR: rng.next()%2 == 0,
		}
	}
	return p
}

// TestWireBatchRoundTrip is the coalescing property test: any packet
// sequence — media and parity mixed, any payload sizes — split across
// batches at arbitrary boundaries must round-trip to the identical
// sequence, parity metadata included. This is the invariant that lets
// the serving layer coalesce datagrams without the receiver's FEC
// recovery or loss accounting noticing.
func TestWireBatchRoundTrip(t *testing.T) {
	rng := &splitMix64{state: 42}
	for trial := 0; trial < 200; trial++ {
		n := int(rng.next() % 40)
		pkts := make([]Packet, n)
		for i := range pkts {
			pkts[i] = randomPacket(rng)
		}

		// Split the sequence into batches at random boundaries (empty
		// batches allowed), encode each, parse them back in order.
		var got []Packet
		for start := 0; start <= len(pkts); {
			end := start + int(rng.next()%8)
			if end > len(pkts) {
				end = len(pkts)
			}
			buf := AppendWireBatch(nil, pkts[start:end])
			if want := WireBatchSize(pkts[start:end]); len(buf) != want {
				t.Fatalf("trial %d: WireBatchSize = %d, encoded %d bytes", trial, want, len(buf))
			}
			var err error
			got, err = ParseWireBatch(got, buf)
			if err != nil {
				t.Fatalf("trial %d: parse: %v", trial, err)
			}
			if end == len(pkts) {
				break
			}
			start = end
		}
		if len(got) != len(pkts) {
			t.Fatalf("trial %d: %d packets round-tripped, want %d", trial, len(got), len(pkts))
		}
		for i := range pkts {
			if !packetsEqual(pkts[i], got[i]) {
				t.Fatalf("trial %d: packet %d mutated in round trip:\nsent %+v\ngot  %+v", trial, i, pkts[i], got[i])
			}
		}
	}
}

func packetsEqual(a, b Packet) bool {
	if a.Seq != b.Seq || a.FrameNum != b.FrameNum || a.Marker != b.Marker {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	switch {
	case a.Parity == nil && b.Parity == nil:
		return true
	case a.Parity == nil || b.Parity == nil:
		return false
	}
	return reflect.DeepEqual(*a.Parity, *b.Parity)
}

// TestWireBatchTruncation pins that corrupt batches fail loudly
// instead of yielding phantom packets.
func TestWireBatchTruncation(t *testing.T) {
	rng := &splitMix64{state: 7}
	pkts := []Packet{randomPacket(rng), randomPacket(rng)}
	buf := AppendWireBatch(nil, pkts)
	for cut := 0; cut < len(buf); cut++ {
		if cut == 0 {
			if _, err := ParseWireBatch(nil, nil); err == nil {
				t.Fatal("empty batch parsed without error")
			}
			continue
		}
		if got, err := ParseWireBatch(nil, buf[:cut]); err == nil && len(got) == len(pkts) {
			t.Fatalf("truncation at %d/%d bytes parsed all %d packets", cut, len(buf), len(pkts))
		}
	}
	if _, err := ParseWireBatch(nil, append(append([]byte(nil), buf...), 0xEE)); err == nil {
		t.Fatal("trailing garbage parsed without error")
	}
}

// runSenderTest sends three batches through s and asserts every
// datagram arrives intact at the right receiver.
func runSenderTest(t *testing.T, s BatchSender, label string) {
	t.Helper()
	recvA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recvA.Close()
	recvB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recvB.Close()

	addrA := recvA.LocalAddr().(*net.UDPAddr)
	addrB := recvB.LocalAddr().(*net.UDPAddr)
	var dgrams []Datagram
	want := map[string][]string{} // receiver addr -> expected payloads in order
	for i := 0; i < 50; i++ {
		addr := addrA
		if i%3 == 0 {
			addr = addrB
		}
		payload := []byte(fmt.Sprintf("%s-dgram-%03d", label, i))
		dgrams = append(dgrams, Datagram{Payload: payload, Addr: addr})
		want[addr.String()] = append(want[addr.String()], string(payload))
	}
	// Exercise more than one SendBatch call, including a tiny batch.
	for _, span := range [][2]int{{0, 1}, {1, 30}, {30, len(dgrams)}} {
		sent, err := s.SendBatch(dgrams[span[0]:span[1]])
		if err != nil {
			t.Fatalf("%s: SendBatch: %v", label, err)
		}
		if sent != span[1]-span[0] {
			t.Fatalf("%s: sent %d/%d datagrams", label, sent, span[1]-span[0])
		}
	}

	for name, conn := range map[string]*net.UDPConn{addrA.String(): recvA, addrB.String(): recvB} {
		buf := make([]byte, 2048)
		for i, expect := range want[name] {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := conn.Read(buf)
			if err != nil {
				t.Fatalf("%s: receiver %s datagram %d: %v", label, name, i, err)
			}
			if string(buf[:n]) != expect {
				t.Fatalf("%s: receiver %s datagram %d = %q, want %q", label, name, i, buf[:n], expect)
			}
		}
	}
}

// TestBatchSenderLoop exercises the portable loop implementation.
func TestBatchSenderLoop(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runSenderTest(t, &loopSender{conn: conn}, "loop")
}

// TestBatchSenderPlatform exercises whatever NewBatchSender selects on
// this platform (sendmmsg on Linux), pinning that the fast path is
// receiver-indistinguishable from the loop.
func TestBatchSenderPlatform(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runSenderTest(t, NewBatchSender(conn), "platform")
}

// TestBatchSenderEmpty pins the trivial edge.
func TestBatchSenderEmpty(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if n, err := NewBatchSender(conn).SendBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: sent %d, err %v", n, err)
	}
}
