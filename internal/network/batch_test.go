package network

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"
)

// randomPacket builds a deterministic pseudo-random packet; roughly a
// third are FEC parity packets so their longer wire encoding exercises
// the batch length prefixes.
func randomPacket(rng *splitMix64) Packet {
	p := Packet{
		Seq:      int(rng.next() % 1_000_000),
		FrameNum: int(rng.next() % 100_000),
		Marker:   rng.next()%2 == 0,
		Payload:  make([]byte, rng.next()%700),
	}
	for i := range p.Payload {
		p.Payload[i] = byte(rng.next())
	}
	if rng.next()%3 == 0 {
		p.Parity = &parityInfo{
			CoverFrom: int(rng.next() % 1000),
			CoverTo:   int(rng.next() % 1000),
			LenXOR:    int(rng.next() % 2000),
			FrameXOR:  int(rng.next() % 1000),
			MarkerXOR: rng.next()%2 == 0,
		}
	}
	return p
}

// TestWireBatchRoundTrip is the coalescing property test: any packet
// sequence — media and parity mixed, any payload sizes — split across
// batches at arbitrary boundaries must round-trip to the identical
// sequence, parity metadata included. This is the invariant that lets
// the serving layer coalesce datagrams without the receiver's FEC
// recovery or loss accounting noticing.
func TestWireBatchRoundTrip(t *testing.T) {
	rng := &splitMix64{state: 42}
	for trial := 0; trial < 200; trial++ {
		n := int(rng.next() % 40)
		pkts := make([]Packet, n)
		for i := range pkts {
			pkts[i] = randomPacket(rng)
		}

		// Split the sequence into batches at random boundaries (empty
		// batches allowed), encode each, parse them back in order.
		var got []Packet
		for start := 0; start <= len(pkts); {
			end := start + int(rng.next()%8)
			if end > len(pkts) {
				end = len(pkts)
			}
			buf := AppendWireBatch(nil, pkts[start:end])
			if want := WireBatchSize(pkts[start:end]); len(buf) != want {
				t.Fatalf("trial %d: WireBatchSize = %d, encoded %d bytes", trial, want, len(buf))
			}
			var err error
			got, err = ParseWireBatch(got, buf)
			if err != nil {
				t.Fatalf("trial %d: parse: %v", trial, err)
			}
			if end == len(pkts) {
				break
			}
			start = end
		}
		if len(got) != len(pkts) {
			t.Fatalf("trial %d: %d packets round-tripped, want %d", trial, len(got), len(pkts))
		}
		for i := range pkts {
			if !packetsEqual(pkts[i], got[i]) {
				t.Fatalf("trial %d: packet %d mutated in round trip:\nsent %+v\ngot  %+v", trial, i, pkts[i], got[i])
			}
		}
	}
}

func packetsEqual(a, b Packet) bool {
	if a.Seq != b.Seq || a.FrameNum != b.FrameNum || a.Marker != b.Marker {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	switch {
	case a.Parity == nil && b.Parity == nil:
		return true
	case a.Parity == nil || b.Parity == nil:
		return false
	}
	return reflect.DeepEqual(*a.Parity, *b.Parity)
}

// TestWireBatchTruncation pins that corrupt batches fail loudly
// instead of yielding phantom packets.
func TestWireBatchTruncation(t *testing.T) {
	rng := &splitMix64{state: 7}
	pkts := []Packet{randomPacket(rng), randomPacket(rng)}
	buf := AppendWireBatch(nil, pkts)
	for cut := 0; cut < len(buf); cut++ {
		if cut == 0 {
			if _, err := ParseWireBatch(nil, nil); err == nil {
				t.Fatal("empty batch parsed without error")
			}
			continue
		}
		if got, err := ParseWireBatch(nil, buf[:cut]); err == nil && len(got) == len(pkts) {
			t.Fatalf("truncation at %d/%d bytes parsed all %d packets", cut, len(buf), len(pkts))
		}
	}
	if _, err := ParseWireBatch(nil, append(append([]byte(nil), buf...), 0xEE)); err == nil {
		t.Fatal("trailing garbage parsed without error")
	}
}

// runSenderTest sends three batches through s and asserts every
// datagram arrives intact at the right receiver.
func runSenderTest(t *testing.T, s BatchSender, label string) {
	t.Helper()
	recvA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recvA.Close()
	recvB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recvB.Close()

	addrA := recvA.LocalAddr().(*net.UDPAddr)
	addrB := recvB.LocalAddr().(*net.UDPAddr)
	var dgrams []Datagram
	want := map[string][]string{} // receiver addr -> expected payloads in order
	for i := 0; i < 50; i++ {
		addr := addrA
		if i%3 == 0 {
			addr = addrB
		}
		payload := []byte(fmt.Sprintf("%s-dgram-%03d", label, i))
		dgrams = append(dgrams, Datagram{Payload: payload, Addr: addr})
		want[addr.String()] = append(want[addr.String()], string(payload))
	}
	// Exercise more than one SendBatch call, including a tiny batch.
	for _, span := range [][2]int{{0, 1}, {1, 30}, {30, len(dgrams)}} {
		sent, err := s.SendBatch(dgrams[span[0]:span[1]])
		if err != nil {
			t.Fatalf("%s: SendBatch: %v", label, err)
		}
		if sent != span[1]-span[0] {
			t.Fatalf("%s: sent %d/%d datagrams", label, sent, span[1]-span[0])
		}
	}

	for name, conn := range map[string]*net.UDPConn{addrA.String(): recvA, addrB.String(): recvB} {
		buf := make([]byte, 2048)
		for i, expect := range want[name] {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := conn.Read(buf)
			if err != nil {
				t.Fatalf("%s: receiver %s datagram %d: %v", label, name, i, err)
			}
			if string(buf[:n]) != expect {
				t.Fatalf("%s: receiver %s datagram %d = %q, want %q", label, name, i, buf[:n], expect)
			}
		}
	}
}

// TestBatchSenderLoop exercises the portable loop implementation.
func TestBatchSenderLoop(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runSenderTest(t, &loopSender{conn: conn}, "loop")
}

// TestBatchSenderPlatform exercises whatever NewBatchSender selects on
// this platform (sendmmsg on Linux), pinning that the fast path is
// receiver-indistinguishable from the loop.
func TestBatchSenderPlatform(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runSenderTest(t, NewBatchSender(conn), "platform")
}

// TestBatchSenderEmpty pins the trivial edge.
func TestBatchSenderEmpty(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if n, err := NewBatchSender(conn).SendBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: sent %d, err %v", n, err)
	}
}

// recvDatagram is one received (payload, source) observation.
type recvDatagram struct {
	payload string
	addr    string
}

// drainReceiver reads exactly total datagrams through r using the
// given slot-batch size, reusing the slot ring across calls the way
// the serving layer's read loop does.
func drainReceiver(t *testing.T, r BatchReceiver, slotCount, total int, label string) []recvDatagram {
	t.Helper()
	slots := make([]RecvSlot, slotCount)
	for i := range slots {
		slots[i].Buf = make([]byte, 1500)
	}
	var got []recvDatagram
	for len(got) < total {
		n, err := r.RecvBatch(slots)
		if err != nil {
			t.Fatalf("%s: RecvBatch after %d datagrams: %v", label, len(got), err)
		}
		if n <= 0 || n > slotCount {
			t.Fatalf("%s: RecvBatch returned %d of %d slots", label, n, slotCount)
		}
		for i := 0; i < n; i++ {
			got = append(got, recvDatagram{
				payload: string(slots[i].Buf[:slots[i].N]),
				addr:    slots[i].Addr.String(),
			})
		}
	}
	return got
}

// sendSequence fires count datagrams at dst, alternating between two
// source sockets so the receivers see more than one peer address.
// Returns the expected (payload, source) sequence. Sends are
// sequential over loopback, so arrival order matches send order.
func sendSequence(t *testing.T, dst *net.UDPAddr, count int, label string) []recvDatagram {
	t.Helper()
	srcA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srcA.Close()
	srcB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srcB.Close()

	var want []recvDatagram
	for i := 0; i < count; i++ {
		src := srcA
		if i%3 == 0 {
			src = srcB
		}
		payload := fmt.Sprintf("%s-dgram-%03d", label, i)
		if _, err := src.WriteToUDP([]byte(payload), dst); err != nil {
			t.Fatalf("%s: send %d: %v", label, i, err)
		}
		want = append(want, recvDatagram{
			payload: payload,
			addr:    src.LocalAddr().(*net.UDPAddr).AddrPort().String(),
		})
	}
	return want
}

// runReceiverTest pushes a burst at the socket and asserts r delivers
// the identical (payload, source address) sequence — the differential
// harness run against both implementations, so the recvmmsg path is
// provably caller-indistinguishable from the portable loop.
func runReceiverTest(t *testing.T, conn *net.UDPConn, r BatchReceiver, slotCount int, label string) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	const count = 50
	want := sendSequence(t, conn.LocalAddr().(*net.UDPAddr), count, label)
	got := drainReceiver(t, r, slotCount, count, label)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: datagram %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestBatchReceiverLoop exercises the portable one-read fallback.
func TestBatchReceiverLoop(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runReceiverTest(t, conn, &loopReceiver{conn: conn}, 8, "loop")
}

// TestBatchReceiverPlatform exercises whatever NewBatchReceiver
// selects here (recvmmsg on Linux amd64/arm64) across several slot
// ring sizes, including a single-slot ring.
func TestBatchReceiverPlatform(t *testing.T) {
	for _, slots := range []int{1, 7, 64} {
		t.Run(fmt.Sprintf("slots%d", slots), func(t *testing.T) {
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			runReceiverTest(t, conn, NewBatchReceiver(conn), slots, "platform")
		})
	}
}

// TestBatchReceiverEmpty pins the no-slots edge.
func TestBatchReceiverEmpty(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if n, err := NewBatchReceiver(conn).RecvBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty slot ring: got %d, err %v", n, err)
	}
}

// TestBatchReceiverClosed pins that a closed socket surfaces as an
// error (the read loop's exit signal), not a hang.
func TestBatchReceiverClosed(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	r := NewBatchReceiver(conn)
	conn.Close()
	slots := []RecvSlot{{Buf: make([]byte, 64)}}
	if _, err := r.RecvBatch(slots); err == nil {
		t.Fatal("RecvBatch on a closed socket returned no error")
	}
}

// TestBatchReceiverAllocFree is the read-path allocation regression
// gate: once warmed up, receiving a datagram must not allocate — the
// slot ring is the buffer pool, and source addresses are value-typed
// netip.AddrPorts. This holds for both implementations, so the serving
// layer's per-datagram cost is syscall + copy on every platform.
func TestBatchReceiverAllocFree(t *testing.T) {
	for _, impl := range []string{"platform", "loop"} {
		t.Run(impl, func(t *testing.T) {
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			var r BatchReceiver
			if impl == "platform" {
				r = NewBatchReceiver(conn)
			} else {
				r = &loopReceiver{conn: conn}
			}
			src, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			dst := conn.LocalAddr().(*net.UDPAddr).AddrPort()
			payload := []byte("alloc-probe")
			slots := make([]RecvSlot, 4)
			for i := range slots {
				slots[i].Buf = make([]byte, 256)
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))

			recvOne := func() {
				if _, err := src.WriteToUDPAddrPort(payload, dst); err != nil {
					t.Fatal(err)
				}
				if _, err := r.RecvBatch(slots); err != nil {
					t.Fatal(err)
				}
			}
			recvOne() // warm up scratch arrays and the netpoller
			if avg := testing.AllocsPerRun(100, recvOne); avg > 0.5 {
				t.Fatalf("steady-state receive allocates %.2f allocs/datagram, want 0", avg)
			}
		})
	}
}
