// Package network simulates the paper's transport: RTP-style
// packetisation of encoded frames (Section 4.1 — "the variable-size
// encoded output of each frame is contained by a single packet as long
// as it does not exceed the maximum transfer unit") over a lossy
// channel. Loss models cover the paper's uniform frame-discard model,
// a Gilbert–Elliott burst model, and scripted loss schedules for the
// Figure 6 experiments (packet-loss events e1..e7).
package network

import (
	"fmt"

	"pbpair/internal/codec"
)

// DefaultMTU is the conventional Ethernet-payload MTU the paper's RTP
// setup implies.
const DefaultMTU = 1500

// Packet is one RTP-like transport unit.
type Packet struct {
	Seq      int  // transport sequence number, monotonically increasing
	FrameNum int  // timestamp analogue: which frame this payload belongs to
	Marker   bool // set on the last packet of a frame (RTP marker bit)
	Payload  []byte
	// Parity marks an FEC parity packet and carries its recovery
	// metadata; nil for media packets. See fec.go.
	Parity *parityInfo
}

// Packetizer turns encoded frames into packets.
type Packetizer struct {
	mtu int
	seq int
}

// NewPacketizer returns a packetiser with the given MTU (DefaultMTU if
// mtu <= 0).
func NewPacketizer(mtu int) *Packetizer {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	return &Packetizer{mtu: mtu}
}

// Clone returns an independent packetiser continuing this one's
// sequence space. The serving layer forks a stream's packetiser
// together with its encoder, so a receiver that diverges from a shared
// encode lineage sees an unbroken sequence number progression.
func (p *Packetizer) Clone() *Packetizer {
	cp := *p
	return &cp
}

// Seq returns the next transport sequence number this packetiser will
// assign — its entire mutable state. The serving layer compares Seq
// (along with encoder state) when deciding whether two forked lineages
// have reconverged and can be merged back together.
func (p *Packetizer) Seq() int { return p.seq }

// Packetize splits one encoded frame into packets. The whole frame
// rides in a single packet unless it exceeds the MTU, in which case it
// is split at GOB boundaries (so each fragment starts at a
// resynchronisation point and remains independently decodable).
// A fragment may still exceed the MTU if a single GOB does; real
// systems fragment at the IP layer in that case, and the split point
// choice preserves decodability either way.
func (p *Packetizer) Packetize(frame *codec.EncodedFrame) []Packet {
	data := frame.Data
	if len(data) <= p.mtu || len(frame.GOBOffsets) == 0 {
		pkt := Packet{Seq: p.seq, FrameNum: frame.FrameNum, Marker: true, Payload: data}
		p.seq++
		return []Packet{pkt}
	}

	// Greedy split: extend each fragment GOB by GOB while it fits.
	var packets []Packet
	start := 0
	for start < len(data) {
		var end int
		if len(data)-start <= p.mtu {
			end = len(data) // remainder fits whole
		} else {
			// Last GOB boundary that keeps the fragment within the MTU.
			end = 0
			for _, off := range frame.GOBOffsets {
				if off <= start {
					continue
				}
				if off-start > p.mtu {
					break
				}
				end = off
			}
			if end == 0 {
				// A single GOB exceeds the MTU: take it anyway.
				end = nextBoundary(frame.GOBOffsets, start, len(data))
			}
		}
		packets = append(packets, Packet{
			Seq:      p.seq,
			FrameNum: frame.FrameNum,
			Payload:  data[start:end],
		})
		p.seq++
		start = end
	}
	if len(packets) > 0 {
		packets[len(packets)-1].Marker = true
	}
	return packets
}

// nextBoundary returns the first GOB offset strictly after start, or
// max if none exists.
func nextBoundary(offsets []int, start, max int) int {
	for _, off := range offsets {
		if off > start {
			return off
		}
	}
	return max
}

// Reassemble concatenates the received packets of one frame (in
// sequence order) into a decoder payload. Missing fragments simply
// leave gaps; the decoder's start-code scan and GOB concealment handle
// them. A nil return means the frame was lost entirely.
func Reassemble(packets []Packet) []byte {
	if len(packets) == 0 {
		return nil
	}
	total := 0
	for _, pkt := range packets {
		total += len(pkt.Payload)
	}
	out := make([]byte, 0, total)
	for _, pkt := range packets {
		out = append(out, pkt.Payload...)
	}
	return out
}

// Channel decides the fate of each packet. Implementations must be
// deterministic given their construction parameters (seeded).
type Channel interface {
	// Transmit returns the packets that survive, preserving order.
	Transmit(packets []Packet) []Packet
}

// Perfect is a loss-free channel.
type Perfect struct{}

// Transmit implements Channel.
func (Perfect) Transmit(packets []Packet) []Packet { return packets }

// UniformLoss drops each packet independently with probability Rate —
// the paper's "uniform distribution of frame discard" model. The
// stream of decisions is a deterministic function of the seed.
type UniformLoss struct {
	rate float64
	rng  *splitMix64
}

// NewUniformLoss returns a uniform-loss channel. rate must lie in
// [0, 1]; NaN is rejected (the >= && <= form below is what catches it
// — every comparison against NaN is false).
func NewUniformLoss(rate float64, seed uint64) (*UniformLoss, error) {
	if !(rate >= 0 && rate <= 1) {
		return nil, fmt.Errorf("network: loss rate %v outside [0, 1]", rate)
	}
	return &UniformLoss{rate: rate, rng: newSplitMix64(seed)}, nil
}

// Transmit implements Channel.
func (u *UniformLoss) Transmit(packets []Packet) []Packet {
	kept := packets[:0:0]
	for _, pkt := range packets {
		if u.rng.float64() < u.rate {
			continue
		}
		kept = append(kept, pkt)
	}
	return kept
}

// GilbertElliott is a two-state burst-loss channel: a good state with
// low loss and a bad state with high loss, with configured transition
// probabilities. It models the bursty fading of wireless links the
// paper targets (an extension beyond the paper's uniform model).
type GilbertElliott struct {
	pGoodToBad, pBadToGood float64
	lossGood, lossBad      float64
	bad                    bool
	rng                    *splitMix64
}

// GEConfig configures a Gilbert–Elliott channel.
type GEConfig struct {
	PGoodToBad float64 // transition probability good→bad per packet
	PBadToGood float64 // transition probability bad→good per packet
	LossGood   float64 // loss probability in the good state
	LossBad    float64 // loss probability in the bad state
}

// NewGilbertElliott returns a burst-loss channel. Every probability of
// cfg must lie in [0, 1]; NaN is rejected.
func NewGilbertElliott(cfg GEConfig, seed uint64) (*GilbertElliott, error) {
	for _, v := range []float64{cfg.PGoodToBad, cfg.PBadToGood, cfg.LossGood, cfg.LossBad} {
		if !(v >= 0 && v <= 1) {
			return nil, fmt.Errorf("network: Gilbert–Elliott probability %v outside [0, 1]", v)
		}
	}
	return &GilbertElliott{
		pGoodToBad: cfg.PGoodToBad,
		pBadToGood: cfg.PBadToGood,
		lossGood:   cfg.LossGood,
		lossBad:    cfg.LossBad,
		rng:        newSplitMix64(seed),
	}, nil
}

// SteadyStateLoss returns the long-run average loss rate of the
// configured chain.
func (g *GilbertElliott) SteadyStateLoss() float64 {
	denom := g.pGoodToBad + g.pBadToGood
	if denom == 0 {
		if g.bad {
			return g.lossBad
		}
		return g.lossGood
	}
	pBad := g.pGoodToBad / denom
	return pBad*g.lossBad + (1-pBad)*g.lossGood
}

// Transmit implements Channel.
func (g *GilbertElliott) Transmit(packets []Packet) []Packet {
	kept := packets[:0:0]
	for _, pkt := range packets {
		// State transition per packet.
		if g.bad {
			if g.rng.float64() < g.pBadToGood {
				g.bad = false
			}
		} else {
			if g.rng.float64() < g.pGoodToBad {
				g.bad = true
			}
		}
		loss := g.lossGood
		if g.bad {
			loss = g.lossBad
		}
		if g.rng.float64() < loss {
			continue
		}
		kept = append(kept, pkt)
	}
	return kept
}

// Schedule drops exactly the frames named in its loss set — the
// scripted loss events (e1..e7) of Figure 6. Packets of a listed frame
// are all dropped.
type Schedule struct {
	lostFrames map[int]bool
}

// NewSchedule returns a scripted-loss channel dropping the given frame
// numbers.
func NewSchedule(lostFrames ...int) *Schedule {
	m := make(map[int]bool, len(lostFrames))
	for _, f := range lostFrames {
		m[f] = true
	}
	return &Schedule{lostFrames: m}
}

// Lost reports whether frame f is scheduled to be lost.
func (s *Schedule) Lost(f int) bool { return s.lostFrames[f] }

// Transmit implements Channel.
func (s *Schedule) Transmit(packets []Packet) []Packet {
	kept := packets[:0:0]
	for _, pkt := range packets {
		if s.lostFrames[pkt.FrameNum] {
			continue
		}
		kept = append(kept, pkt)
	}
	return kept
}

// splitMix64 is a tiny deterministic PRNG so channels do not depend on
// math/rand's global state and remain reproducible across runs.
type splitMix64 struct{ state uint64 }

func newSplitMix64(seed uint64) *splitMix64 { return &splitMix64{state: seed} }

func (s *splitMix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
