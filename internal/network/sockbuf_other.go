//go:build !unix

package network

import "net"

// SocketBuffers is unavailable off unix; callers treat ok == false as
// "trust the request" (no clamp warning, no gauge).
func SocketBuffers(conn *net.UDPConn) (rcvbuf, sndbuf int, ok bool) {
	return 0, 0, false
}
