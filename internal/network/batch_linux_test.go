//go:build linux && (amd64 || arm64)

package network

import (
	"net"
	"syscall"
	"testing"
	"time"
)

// TestMmsgReceiverBatches pins that the recvmmsg path actually
// batches: a queued burst must come back in fewer RecvBatch calls
// than datagrams (the syscalls/datagram ratio the serving layer's
// bench gate is built on).
func TestMmsgReceiverBatches(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r, ok := NewBatchReceiver(conn).(*mmsgReceiver)
	if !ok {
		t.Fatal("NewBatchReceiver did not select the mmsg path on linux")
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))

	const count = 32
	want := sendSequence(t, conn.LocalAddr().(*net.UDPAddr), count, "burst")
	// Give the loopback burst a moment to be fully queued, so the
	// batching assertion below is about recvmmsg, not send timing.
	time.Sleep(50 * time.Millisecond)

	slots := make([]RecvSlot, count)
	for i := range slots {
		slots[i].Buf = make([]byte, 256)
	}
	calls := 0
	var got []recvDatagram
	for len(got) < count {
		n, err := r.RecvBatch(slots)
		if err != nil {
			t.Fatal(err)
		}
		calls++
		for i := 0; i < n; i++ {
			got = append(got, recvDatagram{
				payload: string(slots[i].Buf[:slots[i].N]),
				addr:    slots[i].Addr.String(),
			})
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("datagram %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if calls >= count {
		t.Fatalf("%d RecvBatch calls for %d queued datagrams: no batching", calls, count)
	}
	if r.disabled.Load() {
		t.Fatal("healthy run disabled the fast path")
	}
}

// TestMmsgReceiverRefusalFallsBack is the fault-injection contract
// test: when the kernel refuses recvmmsg mid-run (a seccomp filter
// returning ENOSYS, or EOPNOTSUPP from an exotic socket), the receiver
// must flip — permanently — to the portable loop without dropping a
// single queued datagram. The refused syscall consumes nothing, so the
// stream continues exactly where the fast path left off.
func TestMmsgReceiverRefusalFallsBack(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.ENOSYS, syscall.EOPNOTSUPP} {
		t.Run(errno.Error(), func(t *testing.T) {
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r, ok := NewBatchReceiver(conn).(*mmsgReceiver)
			if !ok {
				t.Fatal("NewBatchReceiver did not select the mmsg path on linux")
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))

			const count = 24
			want := sendSequence(t, conn.LocalAddr().(*net.UDPAddr), count, "fault")

			// Healthy start: drain part of the stream through the real
			// syscall.
			got := drainReceiver(t, r, 4, 8, "pre-fault")

			// Mid-run refusal: every recvmmsg now "fails" without
			// touching the socket queue, exactly like a seccomp filter.
			realCall := recvmmsgCall
			recvmmsgCall = func(fd uintptr, msgs *mmsghdr, n int, flags uintptr) (int, syscall.Errno) {
				return 0, errno
			}
			defer func() { recvmmsgCall = realCall }()

			got = append(got, drainReceiver(t, r, 4, count-len(got), "post-fault")...)
			if !r.disabled.Load() {
				t.Fatal("refusal did not permanently disable the fast path")
			}
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("datagram %d lost or reordered across the fallback flip", i)
				}
			}

			// The flip is permanent: even with the syscall healthy again
			// the portable loop keeps serving (otherwise a flapping
			// filter would cost a refused syscall per batch forever).
			recvmmsgCall = realCall
			wantMore := sendSequence(t, conn.LocalAddr().(*net.UDPAddr), 4, "post-restore")
			gotMore := drainReceiver(t, r, 4, 4, "post-restore")
			for i := range wantMore {
				if gotMore[i] != wantMore[i] {
					t.Fatalf("post-restore datagram %d = %+v, want %+v", i, gotMore[i], wantMore[i])
				}
			}
			if !r.disabled.Load() {
				t.Fatal("fast path re-enabled itself")
			}
		})
	}
}
