package network

import (
	"math"
	"testing"
)

func TestLossMonitorNoLoss(t *testing.T) {
	var m LossMonitor
	for i := 0; i < 100; i++ {
		m.Observe(i)
	}
	if m.Rate() != 0 || m.Lost() != 0 || m.Received() != 100 {
		t.Fatalf("clean stream: rate %v lost %d received %d", m.Rate(), m.Lost(), m.Received())
	}
}

func TestLossMonitorDetectsGaps(t *testing.T) {
	var m LossMonitor
	for _, seq := range []int{0, 1, 3, 4, 8} { // 2, 5, 6, 7 missing
		m.Observe(seq)
	}
	if m.Lost() != 4 {
		t.Fatalf("Lost = %d, want 4", m.Lost())
	}
	if m.Received() != 5 {
		t.Fatalf("Received = %d, want 5", m.Received())
	}
	if want := 4.0 / 9.0; math.Abs(m.Rate()-want) > 1e-12 {
		t.Fatalf("Rate = %v, want %v", m.Rate(), want)
	}
}

func TestLossMonitorIgnoresDuplicatesAndLate(t *testing.T) {
	var m LossMonitor
	m.Observe(0)
	m.Observe(2) // 1 lost
	m.Observe(1) // late arrival: already counted lost, ignored
	m.Observe(2) // duplicate
	if m.Lost() != 1 || m.Received() != 2 {
		t.Fatalf("lost %d received %d", m.Lost(), m.Received())
	}
}

func TestLossMonitorStartsAtFirstSeq(t *testing.T) {
	var m LossMonitor
	m.Observe(1000) // mid-stream join: no phantom losses
	if m.Lost() != 0 {
		t.Fatalf("phantom losses %d at stream start", m.Lost())
	}
}

func TestLossMonitorReset(t *testing.T) {
	var m LossMonitor
	m.Observe(0)
	m.Observe(5)
	m.Reset()
	if m.Rate() != 0 || m.Received() != 0 || m.Lost() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// Continuity across the interval boundary: seq 6 is not a gap.
	m.Observe(6)
	if m.Lost() != 0 {
		t.Fatalf("interval boundary created %d phantom losses", m.Lost())
	}
	// But a real gap after reset still counts.
	m.Observe(9)
	if m.Lost() != 2 {
		t.Fatalf("post-reset gap lost %d, want 2", m.Lost())
	}
}

// TestLossMonitorMatchesChannel: against a seeded uniform channel the
// inferred rate must track the true rate (losses at the tail are
// invisible until a later packet arrives, so compare loosely).
func TestLossMonitorMatchesChannel(t *testing.T) {
	ch, err := NewUniformLoss(0.15, 4242)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]Packet, 10000)
	for i := range pkts {
		pkts[i].Seq = i
	}
	kept := ch.Transmit(pkts)
	var m LossMonitor
	for _, pkt := range kept {
		m.Observe(pkt.Seq)
	}
	if math.Abs(m.Rate()-0.15) > 0.02 {
		t.Fatalf("inferred rate %.4f, true 0.15", m.Rate())
	}
}
