//go:build linux && (amd64 || arm64)

package network

import (
	"net"
	"net/netip"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// sendmmsg(2) batching: every datagram of a batch crosses into the
// kernel in one syscall instead of one sendto per datagram. The
// syscall number comes from the syscall package (per-arch), and the
// mmsghdr layout below matches the 64-bit kernel ABI shared by amd64
// and arm64 — the two platforms this file builds for; everything else
// takes the portable loop.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count, padded to 8-byte alignment on LP64.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgSender is the sendmmsg-backed BatchSender. Scratch slices are
// reused across batches so a steady-state flush allocates nothing.
type mmsgSender struct {
	conn     *net.UDPConn
	rc       syscall.RawConn
	fallback loopSender
	disabled atomic.Bool // set permanently when sendmmsg is refused

	msgs []mmsghdr
	iovs []syscall.Iovec
	sa4  []syscall.RawSockaddrInet4
	sa6  []syscall.RawSockaddrInet6
}

func newPlatformBatchSender(conn *net.UDPConn) BatchSender {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &loopSender{conn: conn}
	}
	return &mmsgSender{conn: conn, rc: rc, fallback: loopSender{conn: conn}}
}

// SendBatch implements BatchSender.
func (s *mmsgSender) SendBatch(dgrams []Datagram) (int, error) {
	if len(dgrams) == 0 {
		return 0, nil
	}
	if s.disabled.Load() {
		return s.fallback.SendBatch(dgrams)
	}
	if !s.prepare(dgrams) {
		// An address the raw path cannot express; use the loop.
		return s.fallback.SendBatch(dgrams)
	}

	sent := 0
	var errno syscall.Errno
	werr := s.rc.Write(func(fd uintptr) bool {
		for sent < len(dgrams) {
			r1, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&s.msgs[sent])), uintptr(len(dgrams)-sent), 0, 0, 0)
			switch e {
			case 0:
				sent += int(r1)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait until writable, then retry
			default:
				errno = e
				return true
			}
		}
		return true
	})
	runtime.KeepAlive(dgrams)
	runtime.KeepAlive(s)
	if werr != nil {
		return sent, werr // socket closed under us
	}
	if errno != 0 {
		// A refused batch syscall (seccomp returning ENOSYS/EPERM, or
		// an unexpected socket condition): disable the fast path for
		// the life of this sender and finish the batch portably. The
		// receiver-visible stream is identical either way.
		s.disabled.Store(true)
		n, err := s.fallback.SendBatch(dgrams[sent:])
		return sent + n, err
	}
	return sent, nil
}

// prepare builds the mmsghdr/iovec/sockaddr arrays for dgrams in the
// reused scratch. Each datagram gets two iovec slots — header and an
// optional Tail segment (scatter-gather; see Datagram) — so a shared
// rendered body goes to the kernel without being copied per recipient.
// It reports false if any destination cannot be expressed as a raw
// IPv4/IPv6 sockaddr.
func (s *mmsgSender) prepare(dgrams []Datagram) bool {
	n := len(dgrams)
	if cap(s.msgs) < n {
		s.msgs = make([]mmsghdr, n)
		s.iovs = make([]syscall.Iovec, 2*n)
		s.sa4 = make([]syscall.RawSockaddrInet4, n)
		s.sa6 = make([]syscall.RawSockaddrInet6, n)
	}
	s.msgs = s.msgs[:n]
	s.iovs = s.iovs[:2*n]
	s.sa4 = s.sa4[:n]
	s.sa6 = s.sa6[:n]
	for i, d := range dgrams {
		if len(d.Payload) == 0 || d.Addr == nil {
			return false
		}
		iov := s.iovs[2*i : 2*i+2]
		iov[0] = syscall.Iovec{Base: &d.Payload[0]}
		iov[0].SetLen(len(d.Payload))
		m := &s.msgs[i]
		*m = mmsghdr{}
		m.hdr.Iov = &iov[0]
		m.hdr.Iovlen = 1 // uint64 on the LP64 arches this file builds for
		if len(d.Tail) > 0 {
			iov[1] = syscall.Iovec{Base: &d.Tail[0]}
			iov[1].SetLen(len(d.Tail))
			m.hdr.Iovlen = 2
		}
		port := uint16(d.Addr.Port)
		if ip4 := d.Addr.IP.To4(); ip4 != nil {
			sa := &s.sa4[i]
			sa.Family = syscall.AF_INET
			putPort(&sa.Port, port)
			copy(sa.Addr[:], ip4)
			m.hdr.Name = (*byte)(unsafe.Pointer(sa))
			m.hdr.Namelen = uint32(unsafe.Sizeof(*sa))
		} else if ip6 := d.Addr.IP.To16(); ip6 != nil {
			sa := &s.sa6[i]
			*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
			putPort(&sa.Port, port)
			copy(sa.Addr[:], ip6)
			if d.Addr.Zone != "" {
				ifi, err := net.InterfaceByName(d.Addr.Zone)
				if err != nil {
					return false
				}
				sa.Scope_id = uint32(ifi.Index)
			}
			m.hdr.Name = (*byte)(unsafe.Pointer(sa))
			m.hdr.Namelen = uint32(unsafe.Sizeof(*sa))
		} else {
			return false
		}
	}
	return true
}

// putPort stores a port in network byte order regardless of host
// endianness (the raw sockaddr field is uint16-typed kernel memory).
func putPort(dst *uint16, port uint16) {
	b := (*[2]byte)(unsafe.Pointer(dst))
	b[0] = byte(port >> 8)
	b[1] = byte(port)
}

// getPort reads a network-byte-order port out of a raw sockaddr.
func getPort(src *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(src))
	return uint16(b[0])<<8 | uint16(b[1])
}

// recvmmsgCall performs one recvmmsg(2). Indirected through a package
// variable so the fault-injection tests can make the kernel "refuse"
// the syscall mid-run and exercise the permanent-fallback contract.
var recvmmsgCall = func(fd uintptr, msgs *mmsghdr, n int, flags uintptr) (int, syscall.Errno) {
	r1, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(msgs)), uintptr(n), flags, 0, 0)
	return int(r1), e
}

// mmsgReceiver is the recvmmsg-backed BatchReceiver. Scratch arrays
// are reused across batches so a steady-state receive allocates
// nothing; source addresses land in RawSockaddrInet6 slots (large
// enough for either family) and are converted to netip values.
type mmsgReceiver struct {
	conn     *net.UDPConn
	rc       syscall.RawConn
	fallback loopReceiver
	disabled atomic.Bool // set permanently when recvmmsg is refused

	msgs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	// readFn is built once and reused, with its in/out state in the
	// fields below: a per-call closure (and its captured locals) would
	// escape to the heap, and the read path promises 0 allocs/datagram.
	readFn func(fd uintptr) bool
	want   int
	got    int
	errno  syscall.Errno
}

func newPlatformBatchReceiver(conn *net.UDPConn) BatchReceiver {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &loopReceiver{conn: conn}
	}
	r := &mmsgReceiver{conn: conn, rc: rc, fallback: loopReceiver{conn: conn}}
	r.readFn = r.readBatch
	return r
}

// readBatch is the RawConn.Read body: one recvmmsg attempt, retried
// through EINTR, parking in the netpoller on EAGAIN.
func (r *mmsgReceiver) readBatch(fd uintptr) bool {
	for {
		// MSG_DONTWAIT even though the fd is already non-blocking: the
		// batch must return with whatever is queued, never wait for a
		// full one. EAGAIN (nothing queued) parks the goroutine in the
		// netpoller until the socket is readable.
		n, e := recvmmsgCall(fd, &r.msgs[0], r.want, syscall.MSG_DONTWAIT)
		switch e {
		case 0:
			r.got = n
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			r.errno = e
			return true
		}
	}
}

// RecvBatch implements BatchReceiver.
func (r *mmsgReceiver) RecvBatch(slots []RecvSlot) (int, error) {
	if len(slots) == 0 {
		return 0, nil
	}
	if r.disabled.Load() {
		return r.fallback.RecvBatch(slots)
	}
	if !r.prepare(slots) {
		return r.fallback.RecvBatch(slots)
	}

	r.want, r.got, r.errno = len(slots), 0, 0
	rerr := r.rc.Read(r.readFn)
	runtime.KeepAlive(slots)
	runtime.KeepAlive(r)
	if rerr != nil {
		return 0, rerr // socket closed under us
	}
	if r.errno != 0 {
		// A refused batch syscall (seccomp returning ENOSYS/EPERM or
		// EOPNOTSUPP): disable the fast path for the life of this
		// receiver and carry on portably. No datagram is lost — the
		// refused call consumed nothing from the socket queue.
		r.disabled.Store(true)
		return r.fallback.RecvBatch(slots)
	}
	for i := 0; i < r.got; i++ {
		slots[i].N = int(r.msgs[i].n)
		slots[i].Addr = rawToAddrPort(&r.names[i])
	}
	return r.got, nil
}

// prepare points the mmsghdr/iovec scratch at the slots' buffers. It
// reports false if any slot has no buffer (the portable path handles
// that the way a plain zero-byte read would).
func (r *mmsgReceiver) prepare(slots []RecvSlot) bool {
	n := len(slots)
	if cap(r.msgs) < n {
		r.msgs = make([]mmsghdr, n)
		r.iovs = make([]syscall.Iovec, n)
		r.names = make([]syscall.RawSockaddrInet6, n)
	}
	r.msgs = r.msgs[:n]
	r.iovs = r.iovs[:n]
	r.names = r.names[:n]
	for i := range slots {
		if len(slots[i].Buf) == 0 {
			return false
		}
		r.iovs[i] = syscall.Iovec{Base: &slots[i].Buf[0]}
		r.iovs[i].SetLen(len(slots[i].Buf))
		m := &r.msgs[i]
		*m = mmsghdr{}
		m.hdr.Iov = &r.iovs[i]
		m.hdr.Iovlen = 1
		r.names[i] = syscall.RawSockaddrInet6{}
		m.hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		m.hdr.Namelen = uint32(unsafe.Sizeof(r.names[i]))
	}
	return true
}

// rawToAddrPort converts a kernel-filled raw sockaddr (IPv4 or IPv6 —
// the slot is sized for either) into a netip.AddrPort, mirroring the
// net package's own conversion so both receiver implementations report
// identical addresses. Link-local IPv6 zone indices are carried
// numerically; the serving layer only round-trips addresses back into
// sends, which is exactly what a scope id is for.
func rawToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), getPort(&sa4.Port))
	case syscall.AF_INET6:
		addr := netip.AddrFrom16(sa.Addr)
		if sa.Scope_id != 0 {
			if ifi, err := net.InterfaceByIndex(int(sa.Scope_id)); err == nil {
				addr = addr.WithZone(ifi.Name)
			}
		}
		return netip.AddrPortFrom(addr, getPort(&sa.Port))
	}
	return netip.AddrPort{}
}
