//go:build linux && (amd64 || arm64)

package network

import (
	"net"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// sendmmsg(2) batching: every datagram of a batch crosses into the
// kernel in one syscall instead of one sendto per datagram. The
// syscall number comes from the syscall package (per-arch), and the
// mmsghdr layout below matches the 64-bit kernel ABI shared by amd64
// and arm64 — the two platforms this file builds for; everything else
// takes the portable loop.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count, padded to 8-byte alignment on LP64.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgSender is the sendmmsg-backed BatchSender. Scratch slices are
// reused across batches so a steady-state flush allocates nothing.
type mmsgSender struct {
	conn     *net.UDPConn
	rc       syscall.RawConn
	fallback loopSender
	disabled atomic.Bool // set permanently when sendmmsg is refused

	msgs []mmsghdr
	iovs []syscall.Iovec
	sa4  []syscall.RawSockaddrInet4
	sa6  []syscall.RawSockaddrInet6
}

func newPlatformBatchSender(conn *net.UDPConn) BatchSender {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &loopSender{conn: conn}
	}
	return &mmsgSender{conn: conn, rc: rc, fallback: loopSender{conn: conn}}
}

// SendBatch implements BatchSender.
func (s *mmsgSender) SendBatch(dgrams []Datagram) (int, error) {
	if len(dgrams) == 0 {
		return 0, nil
	}
	if s.disabled.Load() {
		return s.fallback.SendBatch(dgrams)
	}
	if !s.prepare(dgrams) {
		// An address the raw path cannot express; use the loop.
		return s.fallback.SendBatch(dgrams)
	}

	sent := 0
	var errno syscall.Errno
	werr := s.rc.Write(func(fd uintptr) bool {
		for sent < len(dgrams) {
			r1, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&s.msgs[sent])), uintptr(len(dgrams)-sent), 0, 0, 0)
			switch e {
			case 0:
				sent += int(r1)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait until writable, then retry
			default:
				errno = e
				return true
			}
		}
		return true
	})
	runtime.KeepAlive(dgrams)
	runtime.KeepAlive(s)
	if werr != nil {
		return sent, werr // socket closed under us
	}
	if errno != 0 {
		// A refused batch syscall (seccomp returning ENOSYS/EPERM, or
		// an unexpected socket condition): disable the fast path for
		// the life of this sender and finish the batch portably. The
		// receiver-visible stream is identical either way.
		s.disabled.Store(true)
		n, err := s.fallback.SendBatch(dgrams[sent:])
		return sent + n, err
	}
	return sent, nil
}

// prepare builds the mmsghdr/iovec/sockaddr arrays for dgrams in the
// reused scratch. It reports false if any destination cannot be
// expressed as a raw IPv4/IPv6 sockaddr.
func (s *mmsgSender) prepare(dgrams []Datagram) bool {
	n := len(dgrams)
	if cap(s.msgs) < n {
		s.msgs = make([]mmsghdr, n)
		s.iovs = make([]syscall.Iovec, n)
		s.sa4 = make([]syscall.RawSockaddrInet4, n)
		s.sa6 = make([]syscall.RawSockaddrInet6, n)
	}
	s.msgs = s.msgs[:n]
	s.iovs = s.iovs[:n]
	s.sa4 = s.sa4[:n]
	s.sa6 = s.sa6[:n]
	for i, d := range dgrams {
		if len(d.Payload) == 0 || d.Addr == nil {
			return false
		}
		s.iovs[i] = syscall.Iovec{Base: &d.Payload[0]}
		s.iovs[i].SetLen(len(d.Payload))
		m := &s.msgs[i]
		*m = mmsghdr{}
		m.hdr.Iov = &s.iovs[i]
		m.hdr.Iovlen = 1 // uint64 on the LP64 arches this file builds for
		port := uint16(d.Addr.Port)
		if ip4 := d.Addr.IP.To4(); ip4 != nil {
			sa := &s.sa4[i]
			sa.Family = syscall.AF_INET
			putPort(&sa.Port, port)
			copy(sa.Addr[:], ip4)
			m.hdr.Name = (*byte)(unsafe.Pointer(sa))
			m.hdr.Namelen = uint32(unsafe.Sizeof(*sa))
		} else if ip6 := d.Addr.IP.To16(); ip6 != nil {
			sa := &s.sa6[i]
			*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
			putPort(&sa.Port, port)
			copy(sa.Addr[:], ip6)
			if d.Addr.Zone != "" {
				ifi, err := net.InterfaceByName(d.Addr.Zone)
				if err != nil {
					return false
				}
				sa.Scope_id = uint32(ifi.Index)
			}
			m.hdr.Name = (*byte)(unsafe.Pointer(sa))
			m.hdr.Namelen = uint32(unsafe.Sizeof(*sa))
		} else {
			return false
		}
	}
	return true
}

// putPort stores a port in network byte order regardless of host
// endianness (the raw sockaddr field is uint16-typed kernel memory).
func putPort(dst *uint16, port uint16) {
	b := (*[2]byte)(unsafe.Pointer(dst))
	b[0] = byte(port >> 8)
	b[1] = byte(port)
}
