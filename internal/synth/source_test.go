package synth

import (
	"testing"

	"pbpair/internal/video"
)

func TestRegimeString(t *testing.T) {
	tests := []struct {
		r    Regime
		want string
	}{
		{RegimeAkiyo, "akiyo"},
		{RegimeForeman, "foreman"},
		{RegimeGarden, "garden"},
		{Regime(0), "Regime(0)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Regime(%d).String() = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	for _, r := range []Regime{RegimeAkiyo, RegimeForeman, RegimeGarden} {
		t.Run(r.String(), func(t *testing.T) {
			a := New(r)
			b := New(r)
			for _, k := range []int{0, 1, 7, 42} {
				if !a.Frame(k).Equal(b.Frame(k)) {
					t.Fatalf("frame %d differs between identical sources", k)
				}
			}
			if !a.Frame(3).Equal(a.Frame(3)) {
				t.Fatal("same source, same index, different pixels")
			}
		})
	}
}

func TestSourceDims(t *testing.T) {
	s := New(RegimeForeman)
	w, h := s.Dims()
	if w != video.QCIFWidth || h != video.QCIFHeight {
		t.Fatalf("Dims() = %dx%d, want QCIF", w, h)
	}
	f := s.Frame(0)
	if f.Width != w || f.Height != h {
		t.Fatalf("frame dims %dx%d mismatch source dims %dx%d", f.Width, f.Height, w, h)
	}
}

func TestSourceNames(t *testing.T) {
	for _, r := range []Regime{RegimeAkiyo, RegimeForeman, RegimeGarden} {
		if got := New(r).Name(); got != r.String() {
			t.Errorf("Name() = %q, want %q", got, r.String())
		}
	}
}

// meanAbsDiff is the mean absolute luma difference between consecutive
// frames — a direct proxy for temporal activity.
func meanAbsDiff(a, b *video.Frame) float64 {
	var sum int64
	for i := range a.Y {
		d := int(a.Y[i]) - int(b.Y[i])
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	return float64(sum) / float64(len(a.Y))
}

func activity(s Source, frames int) float64 {
	prev := s.Frame(0)
	var total float64
	for k := 1; k < frames; k++ {
		cur := s.Frame(k)
		total += meanAbsDiff(prev, cur)
		prev = cur
	}
	return total / float64(frames-1)
}

// TestRegimeActivityOrdering checks the substitution's central claim:
// the three regimes reproduce the relative temporal activity of the
// paper's clips (akiyo << foreman < garden).
func TestRegimeActivityOrdering(t *testing.T) {
	const n = 12
	akiyo := activity(New(RegimeAkiyo), n)
	foreman := activity(New(RegimeForeman), n)
	garden := activity(New(RegimeGarden), n)
	t.Logf("temporal activity: akiyo=%.2f foreman=%.2f garden=%.2f", akiyo, foreman, garden)
	if !(akiyo < foreman && foreman < garden) {
		t.Fatalf("activity ordering violated: akiyo=%.2f foreman=%.2f garden=%.2f",
			akiyo, foreman, garden)
	}
	if akiyo*2 > foreman {
		t.Errorf("akiyo (%.2f) not clearly calmer than foreman (%.2f)", akiyo, foreman)
	}
}

// TestAkiyoBackgroundStatic verifies the akiyo regime has a truly
// static background: corner macroblocks are identical across frames,
// so a predictive coder can skip them.
func TestAkiyoBackgroundStatic(t *testing.T) {
	s := New(RegimeAkiyo)
	f0 := s.Frame(0)
	f9 := s.Frame(9)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if f0.Y[y*f0.Width+x] != f9.Y[y*f9.Width+x] {
				t.Fatalf("akiyo corner pixel (%d,%d) moved", x, y)
			}
		}
	}
}

// TestGardenGlobalPan verifies the garden regime is a translation:
// frame k+1 shifted by the pan matches frame k in the overlapping
// interior (within interpolation error).
func TestGardenGlobalPan(t *testing.T) {
	p := DefaultParams(RegimeGarden)
	if p.PanX%fixedOne != 0 {
		t.Skip("pan not integral; shift comparison undefined")
	}
	shift := int(p.PanX / fixedOne)
	s := NewWithParams(p)
	f0 := s.Frame(0)
	f1 := s.Frame(1)
	// f1(x) == f0(x + shift) exactly, since sampling offsets are exact.
	for y := 0; y < f0.Height; y++ {
		for x := 0; x < f0.Width-shift; x++ {
			a := f1.Y[y*f0.Width+x]
			b := f0.Y[y*f0.Width+x+shift]
			if a != b {
				t.Fatalf("garden pan mismatch at (%d,%d): %d vs %d", x, y, a, b)
			}
		}
	}
}

func TestChromaCompressed(t *testing.T) {
	f := New(RegimeGarden).Frame(0)
	for i, v := range f.Cb {
		if v < 128-50 || v > 128+50 {
			t.Fatalf("Cb[%d] = %d outside compressed range", i, v)
		}
	}
}

func TestClip(t *testing.T) {
	frames := Clip(New(RegimeAkiyo), 4)
	if len(frames) != 4 {
		t.Fatalf("Clip returned %d frames", len(frames))
	}
	for i, f := range frames {
		if f == nil {
			t.Fatalf("frame %d is nil", i)
		}
	}
	// Mutating one frame must not affect regeneration.
	frames[1].Y[0] ^= 0xFF
	if New(RegimeAkiyo).Frame(1).Y[0] == frames[1].Y[0] {
		t.Fatal("clip frames share state with the generator")
	}
}

func TestNewWithParamsPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad dims")
		}
	}()
	p := DefaultParams(RegimeAkiyo)
	p.Width = 17
	NewWithParams(p)
}

func TestTriangleWave(t *testing.T) {
	// Period 8, amplitude 4: ramps -4..+4..-4 over a period.
	got := make([]int, 8)
	for k := range got {
		got[k] = triangle(k, 8, 4)
	}
	want := []int{-4, -2, 0, 2, 4, 2, 0, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triangle(%d) = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if triangle(5, 0, 4) != 0 || triangle(5, 8, 0) != 0 {
		t.Fatal("degenerate triangle params should return 0")
	}
}

func TestHash2Avalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits
	// on average; loosely check it's at least 8 of 32.
	base := hash2(12345, 678, 0xABCD)
	flipped := hash2(12345^1, 678, 0xABCD)
	diff := base ^ flipped
	bits := 0
	for d := diff; d != 0; d &= d - 1 {
		bits++
	}
	if bits < 8 {
		t.Fatalf("hash2 avalanche too weak: %d differing bits", bits)
	}
}

func TestFbmRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := fbm(int64(i)*12345, int64(i)*54321, 0x1234, 3)
		_ = v // uint8 can't escape [0,255]; this loop guards against panics
	}
}
