package synth

import (
	"sync"
	"testing"
)

// TestMemoizeIdenticalFrames pins the memo's only job: serving exactly
// the frames the underlying generator renders, without aliasing the
// cache to callers.
func TestMemoizeIdenticalFrames(t *testing.T) {
	plain := New(RegimeForeman)
	memo := Memoize(New(RegimeForeman))
	if memo.Name() != plain.Name() {
		t.Fatalf("memo name %q, want %q", memo.Name(), plain.Name())
	}
	for _, k := range []int{0, 3, 7, 3, 0} {
		want := plain.Frame(k)
		got := memo.Frame(k)
		if !got.Equal(want) {
			t.Fatalf("memoised frame %d differs from direct render", k)
		}
		// Mutating the returned frame must not poison the cache.
		got.Y[0] ^= 0xFF
		if again := memo.Frame(k); !again.Equal(want) {
			t.Fatalf("cache corrupted by caller mutation of frame %d", k)
		}
	}
	if m := Memoize(memo); m != memo {
		t.Fatal("Memoize of a memoised source should be a no-op")
	}
}

func TestSharedIsStableAndConcurrent(t *testing.T) {
	if Shared(RegimeAkiyo) != Shared(RegimeAkiyo) {
		t.Fatal("Shared returned distinct sources for one regime")
	}
	want := New(RegimeAkiyo).Frame(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				f := Shared(RegimeAkiyo).Frame(2)
				if !f.Equal(want) {
					t.Error("shared frame differs from direct render")
					return
				}
				f.Y[k] = 0 // returned copies are caller-owned
			}
		}()
	}
	wg.Wait()
}
