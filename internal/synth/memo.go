package synth

import (
	"sync"

	"pbpair/internal/video"
)

// Frame memoisation. Rendering a synthetic frame is fractal-noise
// sampling over every pixel — by far the most expensive step of a
// cached experiment run, and one that repeats identically across the
// (scheme, loss-rate, seed) grid cells that share a source. A memo
// renders each frame index once and serves copies afterwards.

// memoSource wraps a Source with a per-index frame cache. It
// preserves the Source contract (every Frame call returns a frame the
// caller may mutate) by cloning out of the cache: a clone is a flat
// ~38 KB copy, two orders of magnitude cheaper than the render.
type memoSource struct {
	src Source

	mu     sync.RWMutex
	frames map[int]*video.Frame
}

// Memoize returns a source backed by s that renders each frame index
// at most once. The cache grows monotonically (experiments use tens of
// frames; a QCIF frame is ~38 KB). Safe for concurrent use.
func Memoize(s Source) Source {
	if _, ok := s.(*memoSource); ok {
		return s
	}
	return &memoSource{src: s, frames: make(map[int]*video.Frame)}
}

// Name implements Source.
func (m *memoSource) Name() string { return m.src.Name() }

// Dims implements Source.
func (m *memoSource) Dims() (int, int) { return m.src.Dims() }

// Frame implements Source, serving renders from the cache.
func (m *memoSource) Frame(k int) *video.Frame {
	m.mu.RLock()
	f := m.frames[k]
	m.mu.RUnlock()
	if f != nil {
		return f.Clone()
	}
	m.mu.Lock()
	f = m.frames[k]
	if f == nil {
		f = m.src.Frame(k)
		m.frames[k] = f
	}
	m.mu.Unlock()
	return f.Clone()
}

// windowMemo is a bounded variant of memoSource for unbounded streams:
// it keeps at most capacity rendered frames, evicting in insertion
// order. Streaming access patterns are near-monotone in frame index —
// several encode lineages of the same regime advance within a few
// frames of each other — so FIFO eviction behaves like LRU without the
// bookkeeping. Safe for concurrent use.
type windowMemo struct {
	src Source
	cap int

	mu     sync.RWMutex
	frames map[int]*video.Frame
	order  []int // insertion order, for FIFO eviction
}

// MemoizeWindow returns a source backed by s that caches the most
// recently rendered capacity frames (insertion order). Unlike Memoize,
// memory stays bounded no matter how long the stream runs, which is
// what a serving layer sharing one source across many live sessions
// needs. capacity < 1 selects 1.
func MemoizeWindow(s Source, capacity int) Source {
	if capacity < 1 {
		capacity = 1
	}
	return &windowMemo{src: s, cap: capacity, frames: make(map[int]*video.Frame, capacity)}
}

// Name implements Source.
func (m *windowMemo) Name() string { return m.src.Name() }

// Dims implements Source.
func (m *windowMemo) Dims() (int, int) { return m.src.Dims() }

// Frame implements Source, serving renders from the bounded cache.
// Callers may mutate the returned frame (clone-on-return, as Memoize).
func (m *windowMemo) Frame(k int) *video.Frame {
	m.mu.RLock()
	f := m.frames[k]
	m.mu.RUnlock()
	if f != nil {
		return f.Clone()
	}
	m.mu.Lock()
	f = m.frames[k]
	if f == nil {
		f = m.src.Frame(k)
		m.frames[k] = f
		m.order = append(m.order, k)
		if len(m.order) > m.cap {
			delete(m.frames, m.order[0])
			m.order = m.order[1:]
		}
	}
	m.mu.Unlock()
	return f.Clone()
}

var (
	sharedMu  sync.Mutex
	sharedSrc map[Regime]Source
)

// Shared returns the process-wide memoised canonical source for a
// regime — the same frames New(r) renders, cached once per process.
// Every experiment cell, seed and phase that uses a regime's default
// source shares one render of each frame. Safe for concurrent use.
func Shared(r Regime) Source {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedSrc == nil {
		sharedSrc = make(map[Regime]Source)
	}
	s, ok := sharedSrc[r]
	if !ok {
		s = Memoize(New(r))
		sharedSrc[r] = s
	}
	return s
}
