package synth

import (
	"testing"

	"pbpair/internal/video"
)

func TestExtensionRegimeNames(t *testing.T) {
	if RegimeHall.String() != "hall" || RegimeMobile.String() != "mobile" {
		t.Fatal("extension regime names wrong")
	}
}

func TestHallBackgroundStatic(t *testing.T) {
	s := New(RegimeHall)
	f0 := s.Frame(0)
	f9 := s.Frame(9)
	// Top-left corner is far from the pedestrian's path: identical.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if f0.Y[y*f0.Width+x] != f9.Y[y*f9.Width+x] {
				t.Fatalf("hall corner moved at (%d,%d)", x, y)
			}
		}
	}
}

// TestHallWalkerCrosses: the pedestrian must actually move — the
// activity pocket's horizontal centre of mass advances over time.
func TestHallWalkerCrosses(t *testing.T) {
	s := New(RegimeHall)
	centre := func(a, b *video.Frame) float64 {
		var sum, weight float64
		for y := 0; y < a.Height; y++ {
			for x := 0; x < a.Width; x++ {
				d := int(a.Y[y*a.Width+x]) - int(b.Y[y*b.Width+x])
				if d < 0 {
					d = -d
				}
				if d > 8 {
					sum += float64(x) * float64(d)
					weight += float64(d)
				}
			}
		}
		if weight == 0 {
			return -1
		}
		return sum / weight
	}
	early := centre(s.Frame(0), s.Frame(2))
	late := centre(s.Frame(20), s.Frame(22))
	if early < 0 || late < 0 {
		t.Fatal("no motion detected in hall sequence")
	}
	t.Logf("activity centre: frames 0-2 at x=%.0f, frames 20-22 at x=%.0f", early, late)
	if late <= early+20 {
		t.Fatalf("pedestrian did not advance: %.0f -> %.0f", early, late)
	}
}

// TestMobileMultipleMotions: mobile's walkers move in different
// directions, so activity spreads over a wide area rather than one
// pocket.
func TestMobileMultipleMotions(t *testing.T) {
	s := New(RegimeMobile)
	a, b := s.Frame(0), s.Frame(3)
	activeMBs := 0
	for row := 0; row < 9; row++ {
		for col := 0; col < 11; col++ {
			var sad int
			for y := row * 16; y < row*16+16; y++ {
				for x := col * 16; x < col*16+16; x++ {
					d := int(a.Y[y*a.Width+x]) - int(b.Y[y*b.Width+x])
					if d < 0 {
						d = -d
					}
					sad += d
				}
			}
			if sad > 2560 { // mean |Δ| > 10
				activeMBs++
			}
		}
	}
	t.Logf("mobile: %d/99 active macroblocks over 3 frames", activeMBs)
	if activeMBs < 8 {
		t.Fatalf("mobile has only %d active MBs; want dispersed motion", activeMBs)
	}
}

// TestActivitySpectrum: the five regimes order as hall ≈ akiyo <
// foreman ≤ mobile < garden in temporal activity, giving experiments a
// spread of content difficulty.
func TestActivitySpectrum(t *testing.T) {
	const n = 10
	act := map[Regime]float64{}
	for _, r := range []Regime{RegimeAkiyo, RegimeForeman, RegimeGarden, RegimeHall, RegimeMobile} {
		act[r] = activity(New(r), n)
	}
	t.Logf("activity: hall=%.2f akiyo=%.2f foreman=%.2f mobile=%.2f garden=%.2f",
		act[RegimeHall], act[RegimeAkiyo], act[RegimeForeman], act[RegimeMobile], act[RegimeGarden])
	if act[RegimeHall] >= act[RegimeForeman] {
		t.Fatal("hall should be calmer than foreman")
	}
	if act[RegimeMobile] >= act[RegimeGarden] {
		t.Fatal("mobile should be calmer than garden (no global pan of fine texture)")
	}
	if act[RegimeMobile] <= act[RegimeAkiyo] {
		t.Fatal("mobile should be busier than akiyo")
	}
}

func TestWalkerDeterminism(t *testing.T) {
	a, b := New(RegimeMobile), New(RegimeMobile)
	for _, k := range []int{0, 5, 17} {
		if !a.Frame(k).Equal(b.Frame(k)) {
			t.Fatalf("mobile frame %d not deterministic", k)
		}
	}
}
