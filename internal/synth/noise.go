// Package synth generates deterministic synthetic QCIF test sequences
// standing in for the FOREMAN, AKIYO and GARDEN clips the paper
// evaluates on (the originals are copyrighted test material that cannot
// be shipped). Each generator reproduces the *coding-relevant* regime
// of its namesake:
//
//   - Akiyo: a static, detailed background with a small slowly moving
//     foreground region (a news reader) — very low temporal activity,
//     so few intra refreshes are content-driven.
//   - Foreman: moderate local motion plus intermittent camera pan and
//     shake — mid activity.
//   - Garden (flower garden): a continuous global pan across
//     high-frequency texture — high residual energy everywhere, the
//     hardest sequence to predict temporally.
//
// Frames are pure functions of (sequence parameters, frame index), so
// any frame can be regenerated independently and tests are exactly
// reproducible. The purity also makes every Source safe for concurrent
// use: the experiment fan-out (internal/parallel) calls Frame from many
// goroutines without synchronisation.
package synth

// Value-noise texture sampling. A 2-D lattice of pseudo-random values
// is derived from an integer hash of the lattice coordinates and a
// seed; samples between lattice points are bilinearly interpolated and
// several octaves are summed. This gives natural-looking band-limited
// texture with no stored tables and no package-level state.

// hash2 mixes lattice coordinates and a seed into 32 pseudo-random
// bits. It is a xorshift-multiply finalizer (splitmix-style), chosen
// for good avalanche behaviour with trivially verifiable determinism.
func hash2(x, y int32, seed uint32) uint32 {
	h := uint32(x)*0x9E3779B1 ^ uint32(y)*0x85EBCA77 ^ seed*0xC2B2AE3D
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	h *= 0x297A2D39
	h ^= h >> 15
	return h
}

// latticeValue returns the lattice sample at integer coordinates,
// scaled to [0, 65535].
func latticeValue(x, y int32, seed uint32) int32 {
	return int32(hash2(x, y, seed) >> 16)
}

// fixedOne is the fixed-point unit for sub-pixel sampling positions
// (16.16 fixed point).
const fixedOne = 1 << 16

// sampleNoise evaluates one octave of value noise at fixed-point
// position (fx, fy), returning a value in [0, 65535].
func sampleNoise(fx, fy int64, seed uint32) int32 {
	x0 := int32(fx >> 16)
	y0 := int32(fy >> 16)
	tx := int32(fx & (fixedOne - 1))
	ty := int32(fy & (fixedOne - 1))

	// Smoothstep the interpolants to avoid visible lattice creases.
	tx = smooth(tx)
	ty = smooth(ty)

	v00 := latticeValue(x0, y0, seed)
	v10 := latticeValue(x0+1, y0, seed)
	v01 := latticeValue(x0, y0+1, seed)
	v11 := latticeValue(x0+1, y0+1, seed)

	top := v00 + int32((int64(v10-v00)*int64(tx))>>16)
	bot := v01 + int32((int64(v11-v01)*int64(tx))>>16)
	return top + int32((int64(bot-top)*int64(ty))>>16)
}

// smooth applies the cubic smoothstep 3t^2 - 2t^3 to a 0.16 fixed-point
// interpolant.
func smooth(t int32) int32 {
	tt := int32((int64(t) * int64(t)) >> 16)
	ttt := int32((int64(tt) * int64(t)) >> 16)
	return 3*tt - 2*ttt
}

// fbm sums octaves of value noise with halving amplitude and doubling
// frequency, returning a value in [0, 255]. octaves must be >= 1.
func fbm(fx, fy int64, seed uint32, octaves int) uint8 {
	var sum, norm int64
	amp := int64(1 << 8)
	for o := 0; o < octaves; o++ {
		sum += amp * int64(sampleNoise(fx, fy, seed+uint32(o)*0x51ED2709))
		norm += amp
		amp >>= 1
		fx *= 2
		fy *= 2
	}
	v := sum / (norm * 257) // 65535/257 ≈ 255
	if v > 255 {
		v = 255
	}
	if v < 0 {
		v = 0
	}
	return uint8(v)
}
