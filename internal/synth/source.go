package synth

import (
	"fmt"

	"pbpair/internal/video"
)

// Source produces frames of a deterministic synthetic sequence. Frame
// returns frame k (k >= 0); calling it twice with the same k yields
// identical pixels.
type Source interface {
	// Name identifies the sequence (used in experiment reports).
	Name() string
	// Dims returns the luma dimensions of generated frames.
	Dims() (width, height int)
	// Frame generates frame k into a freshly allocated Frame.
	Frame(k int) *video.Frame
}

// Regime selects the motion/texture profile of a generated sequence.
type Regime int

// Regimes named after the paper's three QCIF inputs.
const (
	RegimeAkiyo   Regime = iota + 1 // low motion: static scene, small moving head
	RegimeForeman                   // medium motion: local motion + pan + shake
	RegimeGarden                    // high motion: constant global pan over fine texture

	// RegimeHall is surveillance-style content (like the HALL MONITOR
	// clip): a completely static scene with a small object crossing the
	// frame — skip-dominated coding with a travelling pocket of
	// activity, the best case for content-aware refresh.
	RegimeHall
	// RegimeMobile is a calendar-and-mobile-style stress case: several
	// objects moving independently over detailed texture, so motion is
	// incoherent across the frame (hard for a single global vector,
	// moderate for per-MB search).
	RegimeMobile
)

// String returns the sequence name used by the paper (or the
// conventional clip name for the extension regimes).
func (r Regime) String() string {
	switch r {
	case RegimeAkiyo:
		return "akiyo"
	case RegimeForeman:
		return "foreman"
	case RegimeGarden:
		return "garden"
	case RegimeHall:
		return "hall"
	case RegimeMobile:
		return "mobile"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Params configures a generator. The zero value is not useful; use
// DefaultParams or New with a Regime.
type Params struct {
	Width, Height int    // luma dimensions, MB aligned
	Seed          uint32 // texture seed; sequences with equal params are identical

	// PanX/PanY is the per-frame global translation in 16.16
	// fixed-point luma pixels. Garden pans hard; Akiyo not at all.
	PanX, PanY int64

	// TextureScale is the base noise frequency in 16.16 fixed point per
	// pixel; higher means finer texture (more residual energy under
	// motion).
	TextureScale int64

	// Octaves is the number of noise octaves (>= 1).
	Octaves int

	// Actor enables a synthetic foreground object (the "head"):
	// an elliptical region whose centre oscillates around the frame
	// middle and whose texture evolves over time.
	Actor        bool
	ActorRadiusX int // semi-axis in pixels
	ActorRadiusY int
	ActorAmpX    int // oscillation amplitude in pixels
	ActorAmpY    int
	ActorPeriod  int    // oscillation period in frames
	ActorChurn   uint32 // how fast actor texture changes (0 = static)

	// Shake adds pseudo-random camera displacement of up to ShakeAmp
	// (16.16 fixed-point pixels) on every ShakePeriod-th frame —
	// foreman's intermittent handheld jolts. ShakePeriod 0 with a
	// non-zero amplitude shakes every frame.
	ShakeAmp    int64
	ShakePeriod int

	// Walkers are additional foreground objects on straight-line paths
	// (wrapping at the frame edges) — the hall-monitor pedestrian, the
	// mobile's independently moving pieces.
	Walkers []Walker

	name string
}

// Walker is a foreground ellipse translating at constant velocity,
// wrapping around the frame.
type Walker struct {
	RadiusX, RadiusY int
	StartX, StartY   int   // initial centre in pixels
	VelX, VelY       int64 // velocity in 16.16 fixed-point pixels/frame
	Seed             uint32
	Churn            uint32 // texture evolution speed (0 = rigid object)
}

// DefaultParams returns the canonical parameter set for a regime at
// QCIF resolution.
func DefaultParams(r Regime) Params {
	p := Params{
		Width:        video.QCIFWidth,
		Height:       video.QCIFHeight,
		Octaves:      3,
		TextureScale: fixedOne / 16,
		name:         r.String(),
	}
	switch r {
	case RegimeAkiyo:
		p.Seed = 0xA1C1_0001
		p.Actor = true
		p.ActorRadiusX, p.ActorRadiusY = 28, 38
		p.ActorAmpX, p.ActorAmpY = 3, 2
		p.ActorPeriod = 40
		p.ActorChurn = 9
	case RegimeForeman:
		p.Seed = 0xF0_4E4D
		// Mostly static background (like the clip's wall) with
		// intermittent handheld jolts; the motion lives in the actor.
		p.ShakeAmp = 2 * fixedOne
		p.ShakePeriod = 6
		p.Actor = true
		p.ActorRadiusX, p.ActorRadiusY = 34, 44
		p.ActorAmpX, p.ActorAmpY = 10, 6
		p.ActorPeriod = 24
		p.ActorChurn = 33
	case RegimeGarden:
		p.Seed = 0x6A2D_EA11
		p.PanX = 3 * fixedOne // fast pan: 3 px/frame
		p.TextureScale = fixedOne / 6
		p.Octaves = 4
	case RegimeHall:
		p.Seed = 0x0411_0411
		// Static scene; one pedestrian crossing left to right at
		// 2 px/frame.
		p.Walkers = []Walker{{
			RadiusX: 10, RadiusY: 22,
			StartX: 20, StartY: 96,
			VelX: 2 * fixedOne,
			Seed: 0x9ED0, Churn: 21,
		}}
	case RegimeMobile:
		p.Seed = 0x3073_113A
		p.TextureScale = fixedOne / 8
		p.PanX = fixedOne / 4 // slow drift under the objects
		p.Walkers = []Walker{
			{RadiusX: 14, RadiusY: 14, StartX: 40, StartY: 40,
				VelX: 3 * fixedOne / 2, VelY: fixedOne / 2, Seed: 0x1111, Churn: 15},
			{RadiusX: 11, RadiusY: 18, StartX: 120, StartY: 90,
				VelX: -fixedOne, VelY: fixedOne, Seed: 0x2222, Churn: 27},
			{RadiusX: 8, RadiusY: 8, StartX: 88, StartY: 30,
				VelX: fixedOne / 2, VelY: -3 * fixedOne / 2, Seed: 0x3333, Churn: 9},
		}
	default:
		panic(fmt.Sprintf("synth: unknown regime %d", int(r)))
	}
	return p
}

// New returns the canonical generator for a regime at QCIF resolution.
func New(r Regime) Source { return NewWithParams(DefaultParams(r)) }

// NewWithParams returns a generator for an explicit parameter set. It
// panics if the dimensions are not macroblock aligned (programming
// error).
func NewWithParams(p Params) Source {
	if err := video.ValidateDims(p.Width, p.Height); err != nil {
		panic(err)
	}
	if p.Octaves < 1 {
		p.Octaves = 1
	}
	if p.name == "" {
		p.name = "custom"
	}
	return &generator{p: p}
}

type generator struct {
	p Params
}

// Name implements Source.
func (g *generator) Name() string { return g.p.name }

// Dims implements Source.
func (g *generator) Dims() (int, int) { return g.p.Width, g.p.Height }

// Frame renders frame k. The background is a noise texture sampled at
// an offset that advances with the pan (and shake) so motion is true
// sub-pixel translation — exactly the content a motion-compensated
// coder exploits. The optional actor overwrites an elliptical region
// with independently evolving texture.
func (g *generator) Frame(k int) *video.Frame {
	p := &g.p
	f := video.NewFrame(p.Width, p.Height)

	offX := p.PanX * int64(k)
	offY := p.PanY * int64(k)
	if p.ShakeAmp > 0 && (p.ShakePeriod <= 1 || (k > 0 && k%p.ShakePeriod == 0)) {
		// Deterministic shake from the frame index.
		hx := hash2(int32(k), 77, p.Seed^0xDEAD)
		hy := hash2(int32(k), 131, p.Seed^0xBEEF)
		offX += int64(hx%uint32(2*p.ShakeAmp+1)) - p.ShakeAmp
		offY += int64(hy%uint32(2*p.ShakeAmp+1)) - p.ShakeAmp
	}

	// Luma background.
	for y := 0; y < p.Height; y++ {
		fy := (int64(y)*fixedOne + offY) * p.TextureScale / fixedOne
		for x := 0; x < p.Width; x++ {
			fx := (int64(x)*fixedOne + offX) * p.TextureScale / fixedOne
			f.Y[y*p.Width+x] = fbm(fx, fy, p.Seed, p.Octaves)
		}
	}

	// Chroma background: coarser texture with distinct seeds, sampled
	// at half resolution (4:2:0).
	cw, ch := f.ChromaWidth(), f.ChromaHeight()
	cScale := p.TextureScale / 2
	if cScale == 0 {
		cScale = 1
	}
	for y := 0; y < ch; y++ {
		fy := (int64(2*y)*fixedOne + offY) * cScale / fixedOne
		for x := 0; x < cw; x++ {
			fx := (int64(2*x)*fixedOne + offX) * cScale / fixedOne
			f.Cb[y*cw+x] = scaleChroma(fbm(fx, fy, p.Seed^0x0B0B, 2))
			f.Cr[y*cw+x] = scaleChroma(fbm(fx, fy, p.Seed^0x0C0C, 2))
		}
	}

	if p.Actor {
		g.renderActor(f, k)
	}
	for i := range p.Walkers {
		g.renderWalker(f, &p.Walkers[i], k)
	}
	return f
}

// renderWalker draws one straight-line foreground ellipse at frame k.
func (g *generator) renderWalker(f *video.Frame, wk *Walker, k int) {
	p := &g.p
	cx := wk.StartX + int((wk.VelX*int64(k))>>16)
	cy := wk.StartY + int((wk.VelY*int64(k))>>16)
	// Wrap into the frame.
	cx = ((cx % p.Width) + p.Width) % p.Width
	cy = ((cy % p.Height) + p.Height) % p.Height
	churn := int64(k) * int64(wk.Churn)
	g.paintEllipse(f, cx, cy, wk.RadiusX, wk.RadiusY, wk.Seed, churn)
}

// paintEllipse textures the ellipse at (cx, cy) — shared by the actor
// and the walkers.
func (g *generator) paintEllipse(f *video.Frame, cx, cy, rx, ry int, seed uint32, churn int64) {
	p := &g.p
	scale := p.TextureScale * 2
	for y := cy - ry; y <= cy+ry; y++ {
		if y < 0 || y >= p.Height {
			continue
		}
		dy := y - cy
		for x := cx - rx; x <= cx+rx; x++ {
			if x < 0 || x >= p.Width {
				continue
			}
			dx := x - cx
			if dx*dx*ry*ry+dy*dy*rx*rx > rx*rx*ry*ry {
				continue
			}
			fx := (int64(dx)*fixedOne + churn*97) * scale / fixedOne
			fy := (int64(dy)*fixedOne + churn*61) * scale / fixedOne
			f.Y[y*p.Width+x] = fbm(fx, fy, p.Seed^seed, p.Octaves)
		}
	}
}

// scaleChroma compresses chroma excursions toward 128 so synthetic
// frames have natural-video-like chroma energy (chroma residuals are
// much smaller than luma in real content).
func scaleChroma(v uint8) uint8 {
	return uint8(128 + (int(v)-128)/3)
}

// renderActor draws the moving elliptical foreground region.
func (g *generator) renderActor(f *video.Frame, k int) {
	p := &g.p
	cx := p.Width / 2
	cy := p.Height/2 + p.Height/8

	// Smooth oscillation via a triangle wave of the configured period,
	// avoiding math.Sin to keep everything integral and portable.
	cx += triangle(k, p.ActorPeriod, p.ActorAmpX)
	cy += triangle(k+p.ActorPeriod/4, p.ActorPeriod, p.ActorAmpY)

	churn := int64(0)
	if p.ActorChurn > 0 {
		churn = int64(k) * int64(p.ActorChurn)
	}

	rx, ry := p.ActorRadiusX, p.ActorRadiusY
	g.paintEllipse(f, cx, cy, rx, ry, 0xAC70, churn)
	// Actor chroma: flat skin-like offset over the ellipse at half res.
	cw := f.ChromaWidth()
	for y := (cy - ry) / 2; y <= (cy+ry)/2; y++ {
		if y < 0 || y >= f.ChromaHeight() {
			continue
		}
		dy := 2*y - cy
		for x := (cx - rx) / 2; x <= (cx+rx)/2; x++ {
			if x < 0 || x >= cw {
				continue
			}
			dx := 2*x - cx
			if dx*dx*ry*ry+dy*dy*rx*rx > rx*rx*ry*ry {
				continue
			}
			f.Cb[y*cw+x] = 118
			f.Cr[y*cw+x] = 142
		}
	}
}

// triangle returns a triangle wave of the given period and amplitude
// evaluated at k: ramps from -amp to +amp and back.
func triangle(k, period, amp int) int {
	if period <= 0 || amp == 0 {
		return 0
	}
	phase := k % period
	half := period / 2
	if half == 0 {
		return 0
	}
	var t int
	if phase < half {
		t = phase
	} else {
		t = period - phase
	}
	return -amp + (2*amp*t)/half
}

// Clip materialises n frames of a source into a slice. Frames are
// independent copies safe to mutate.
func Clip(s Source, n int) []*video.Frame {
	frames := make([]*video.Frame, n)
	for k := range frames {
		frames[k] = s.Frame(k)
	}
	return frames
}
