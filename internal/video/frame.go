// Package video provides the raw-video substrate for the PBPAIR
// reproduction: planar YUV 4:2:0 frames, macroblock geometry, and
// sequence containers.
//
// All pixel data is stored as 8-bit samples in planar order (Y, then
// Cb, then Cr). Luma dimensions must be multiples of the macroblock
// size (16) so every frame tiles exactly into macroblocks, matching the
// QCIF layout the paper evaluates (176x144 luma = 11x9 macroblocks).
package video

import (
	"fmt"
)

// MBSize is the luma macroblock edge length in pixels. H.263 (and every
// codec in the paper) uses 16x16 luma macroblocks with two 8x8 chroma
// blocks per macroblock in 4:2:0 sampling.
const MBSize = 16

// BlockSize is the transform block edge length. The DCT stage operates
// on 8x8 blocks: four luma and two chroma blocks per macroblock.
const BlockSize = 8

// Standard picture formats from H.263 Table 1.
const (
	SQCIFWidth  = 128
	SQCIFHeight = 96
	QCIFWidth   = 176
	QCIFHeight  = 144
	CIFWidth    = 352
	CIFHeight   = 288
)

// Frame is a planar YUV 4:2:0 picture. Y has Width x Height samples;
// Cb and Cr each have (Width/2) x (Height/2).
type Frame struct {
	Width  int // luma width in pixels; multiple of MBSize
	Height int // luma height in pixels; multiple of MBSize
	Y      []uint8
	Cb     []uint8
	Cr     []uint8
}

// NewFrame allocates a zeroed frame. Width and height must be positive
// multiples of MBSize and even (for 4:2:0 chroma); NewFrame panics
// otherwise, since frame geometry is a programming error rather than a
// runtime condition.
func NewFrame(width, height int) *Frame {
	if err := ValidateDims(width, height); err != nil {
		panic(err)
	}
	return &Frame{
		Width:  width,
		Height: height,
		Y:      make([]uint8, width*height),
		Cb:     make([]uint8, (width/2)*(height/2)),
		Cr:     make([]uint8, (width/2)*(height/2)),
	}
}

// ValidateDims reports whether (width, height) is a legal 4:2:0
// macroblock-aligned frame geometry.
func ValidateDims(width, height int) error {
	switch {
	case width <= 0 || height <= 0:
		return fmt.Errorf("video: non-positive dimensions %dx%d", width, height)
	case width%MBSize != 0 || height%MBSize != 0:
		return fmt.Errorf("video: dimensions %dx%d not multiples of macroblock size %d", width, height, MBSize)
	default:
		return nil
	}
}

// MBCols returns the number of macroblock columns (11 for QCIF).
func (f *Frame) MBCols() int { return f.Width / MBSize }

// MBRows returns the number of macroblock rows (9 for QCIF).
func (f *Frame) MBRows() int { return f.Height / MBSize }

// NumMBs returns the total macroblock count (99 for QCIF).
func (f *Frame) NumMBs() int { return f.MBCols() * f.MBRows() }

// ChromaWidth returns the chroma plane width.
func (f *Frame) ChromaWidth() int { return f.Width / 2 }

// ChromaHeight returns the chroma plane height.
func (f *Frame) ChromaHeight() int { return f.Height / 2 }

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.Width, f.Height)
	copy(g.Y, f.Y)
	copy(g.Cb, f.Cb)
	copy(g.Cr, f.Cr)
	return g
}

// CopyFrom copies the pixel content of src into f. The two frames must
// have identical dimensions.
func (f *Frame) CopyFrom(src *Frame) error {
	if f.Width != src.Width || f.Height != src.Height {
		return fmt.Errorf("video: copy between mismatched frames %dx%d and %dx%d",
			f.Width, f.Height, src.Width, src.Height)
	}
	copy(f.Y, src.Y)
	copy(f.Cb, src.Cb)
	copy(f.Cr, src.Cr)
	return nil
}

// Fill sets every luma sample to y and every chroma sample to cb / cr.
func (f *Frame) Fill(y, cb, cr uint8) {
	for i := range f.Y {
		f.Y[i] = y
	}
	for i := range f.Cb {
		f.Cb[i] = cb
		f.Cr[i] = cr
	}
}

// Equal reports whether two frames have identical dimensions and pixel
// content.
func (f *Frame) Equal(g *Frame) bool {
	if f.Width != g.Width || f.Height != g.Height {
		return false
	}
	if len(f.Y) != len(g.Y) {
		return false
	}
	for i := range f.Y {
		if f.Y[i] != g.Y[i] {
			return false
		}
	}
	for i := range f.Cb {
		if f.Cb[i] != g.Cb[i] || f.Cr[i] != g.Cr[i] {
			return false
		}
	}
	return true
}

// MBIndex converts a macroblock (row, col) pair to a linear index in
// raster order.
func (f *Frame) MBIndex(row, col int) int { return row*f.MBCols() + col }

// MBCoord converts a linear macroblock index back to (row, col).
func (f *Frame) MBCoord(index int) (row, col int) {
	return index / f.MBCols(), index % f.MBCols()
}

// Plane identifies one of the three sample planes of a frame.
type Plane int

// Plane constants, starting at one per the style guide so the zero
// value is invalid and cannot be mistaken for luma.
const (
	PlaneY Plane = iota + 1
	PlaneCb
	PlaneCr
)

// String returns the conventional plane abbreviation.
func (p Plane) String() string {
	switch p {
	case PlaneY:
		return "Y"
	case PlaneCb:
		return "Cb"
	case PlaneCr:
		return "Cr"
	default:
		return fmt.Sprintf("Plane(%d)", int(p))
	}
}

// Data returns the sample slice and stride for plane p of f.
func (f *Frame) Data(p Plane) (samples []uint8, stride int) {
	switch p {
	case PlaneY:
		return f.Y, f.Width
	case PlaneCb:
		return f.Cb, f.ChromaWidth()
	case PlaneCr:
		return f.Cr, f.ChromaWidth()
	default:
		panic(fmt.Sprintf("video: invalid plane %d", int(p)))
	}
}

// Block is an 8x8 block of samples promoted to int32 for the transform
// pipeline. Values are row-major.
type Block [BlockSize * BlockSize]int32

// LoadBlock copies the 8x8 block whose top-left corner is (x, y) in
// plane p into dst. The block must lie fully inside the plane.
func (f *Frame) LoadBlock(p Plane, x, y int, dst *Block) {
	samples, stride := f.Data(p)
	for r := 0; r < BlockSize; r++ {
		base := (y+r)*stride + x
		for c := 0; c < BlockSize; c++ {
			dst[r*BlockSize+c] = int32(samples[base+c])
		}
	}
}

// StoreBlock writes src into the 8x8 block at (x, y) of plane p,
// clamping each value to the 8-bit sample range.
func (f *Frame) StoreBlock(p Plane, x, y int, src *Block) {
	samples, stride := f.Data(p)
	for r := 0; r < BlockSize; r++ {
		base := (y+r)*stride + x
		for c := 0; c < BlockSize; c++ {
			samples[base+c] = ClampPixel(src[r*BlockSize+c])
		}
	}
}

// ClampPixel clamps v to the [0, 255] sample range.
func ClampPixel(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// CopyMB copies macroblock (mbRow, mbCol) — 16x16 luma plus the two
// co-sited 8x8 chroma blocks — from src to dst. Frames must share
// dimensions; callers guarantee the macroblock coordinates are valid.
func CopyMB(dst, src *Frame, mbRow, mbCol int) {
	x := mbCol * MBSize
	y := mbRow * MBSize
	for r := 0; r < MBSize; r++ {
		d := (y+r)*dst.Width + x
		copy(dst.Y[d:d+MBSize], src.Y[d:d+MBSize])
	}
	cw := dst.ChromaWidth()
	cx := mbCol * (MBSize / 2)
	cy := mbRow * (MBSize / 2)
	for r := 0; r < MBSize/2; r++ {
		d := (cy+r)*cw + cx
		copy(dst.Cb[d:d+MBSize/2], src.Cb[d:d+MBSize/2])
		copy(dst.Cr[d:d+MBSize/2], src.Cr[d:d+MBSize/2])
	}
}
