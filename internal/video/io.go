package video

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Raw 4:2:0 sequence I/O.
//
// Two on-disk layouts are supported:
//
//   - Headerless raw planar 4:2:0 (".yuv"): concatenated Y, Cb, Cr
//     planes per frame, dimensions supplied out of band. This is the
//     format the original H.263 reference software (and the paper's
//     FOREMAN.QCIF / AKIYO.QCIF / GARDEN.QCIF inputs) used.
//   - A minimal self-describing container ("PBPV"): a 16-byte header
//     carrying magic, dimensions and frame count, followed by the same
//     planar payload. Tools in cmd/ default to this so files round-trip
//     without external metadata.

// pbpvMagic identifies the self-describing container.
var pbpvMagic = [4]byte{'P', 'B', 'P', 'V'}

// ErrBadMagic reports that a stream does not begin with the PBPV magic.
var ErrBadMagic = errors.New("video: not a PBPV stream")

// FrameBytes returns the encoded size in bytes of one raw 4:2:0 frame
// of the given luma dimensions.
func FrameBytes(width, height int) int {
	return width*height + 2*(width/2)*(height/2)
}

// WriteRawFrame writes the planar payload of f to w.
func WriteRawFrame(w io.Writer, f *Frame) error {
	for _, plane := range [][]uint8{f.Y, f.Cb, f.Cr} {
		if _, err := w.Write(plane); err != nil {
			return fmt.Errorf("video: write raw frame: %w", err)
		}
	}
	return nil
}

// ReadRawFrame reads one planar frame of the given dimensions from r
// into a new Frame. It returns io.EOF (unwrapped) when no bytes remain,
// so callers can use it as a sequence iterator.
func ReadRawFrame(r io.Reader, width, height int) (*Frame, error) {
	f := NewFrame(width, height)
	if _, err := io.ReadFull(r, f.Y); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("video: read raw frame luma: %w", err)
	}
	if _, err := io.ReadFull(r, f.Cb); err != nil {
		return nil, fmt.Errorf("video: read raw frame Cb: %w", err)
	}
	if _, err := io.ReadFull(r, f.Cr); err != nil {
		return nil, fmt.Errorf("video: read raw frame Cr: %w", err)
	}
	return f, nil
}

// SequenceWriter writes a PBPV container incrementally.
type SequenceWriter struct {
	w             *bufio.Writer
	width, height int
	frames        int
	headerDone    bool
}

// NewSequenceWriter returns a writer that emits a PBPV stream with the
// given dimensions to w. The header is written on the first frame.
func NewSequenceWriter(w io.Writer, width, height int) (*SequenceWriter, error) {
	if err := ValidateDims(width, height); err != nil {
		return nil, err
	}
	return &SequenceWriter{w: bufio.NewWriter(w), width: width, height: height}, nil
}

// WriteFrame appends f to the sequence.
func (sw *SequenceWriter) WriteFrame(f *Frame) error {
	if f.Width != sw.width || f.Height != sw.height {
		return fmt.Errorf("video: sequence is %dx%d, frame is %dx%d",
			sw.width, sw.height, f.Width, f.Height)
	}
	if !sw.headerDone {
		var hdr [16]byte
		copy(hdr[:4], pbpvMagic[:])
		binary.BigEndian.PutUint32(hdr[4:8], uint32(sw.width))
		binary.BigEndian.PutUint32(hdr[8:12], uint32(sw.height))
		// Frame count is left zero: the stream is length-delimited by EOF.
		if _, err := sw.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("video: write PBPV header: %w", err)
		}
		sw.headerDone = true
	}
	if err := WriteRawFrame(sw.w, f); err != nil {
		return err
	}
	sw.frames++
	return nil
}

// Frames returns the number of frames written so far.
func (sw *SequenceWriter) Frames() int { return sw.frames }

// Flush flushes buffered output. It must be called before the
// underlying writer is closed.
func (sw *SequenceWriter) Flush() error {
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("video: flush sequence: %w", err)
	}
	return nil
}

// SequenceReader reads a PBPV container incrementally.
type SequenceReader struct {
	r             *bufio.Reader
	width, height int
}

// NewSequenceReader parses the PBPV header from r and returns a reader
// positioned at the first frame.
func NewSequenceReader(r io.Reader) (*SequenceReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("video: read PBPV header: %w", err)
	}
	if [4]byte(hdr[:4]) != pbpvMagic {
		return nil, ErrBadMagic
	}
	width := int(binary.BigEndian.Uint32(hdr[4:8]))
	height := int(binary.BigEndian.Uint32(hdr[8:12]))
	if err := ValidateDims(width, height); err != nil {
		return nil, fmt.Errorf("video: PBPV header: %w", err)
	}
	return &SequenceReader{r: br, width: width, height: height}, nil
}

// Dims returns the sequence's luma dimensions.
func (sr *SequenceReader) Dims() (width, height int) { return sr.width, sr.height }

// ReadFrame returns the next frame, or io.EOF after the last one.
func (sr *SequenceReader) ReadFrame() (*Frame, error) {
	return ReadRawFrame(sr.r, sr.width, sr.height)
}
