package video

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestFrameBytes(t *testing.T) {
	if got := FrameBytes(QCIFWidth, QCIFHeight); got != 176*144*3/2 {
		t.Fatalf("FrameBytes(QCIF) = %d, want %d", got, 176*144*3/2)
	}
}

func TestRawFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := randomFrame(rng, QCIFWidth, QCIFHeight)
	var buf bytes.Buffer
	if err := WriteRawFrame(&buf, f); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	if buf.Len() != FrameBytes(QCIFWidth, QCIFHeight) {
		t.Fatalf("raw frame is %d bytes, want %d", buf.Len(), FrameBytes(QCIFWidth, QCIFHeight))
	}
	g, err := ReadRawFrame(&buf, QCIFWidth, QCIFHeight)
	if err != nil {
		t.Fatalf("ReadRawFrame: %v", err)
	}
	if !f.Equal(g) {
		t.Fatal("raw round trip changed pixels")
	}
	if _, err := ReadRawFrame(&buf, QCIFWidth, QCIFHeight); err != io.EOF {
		t.Fatalf("read past end: err = %v, want io.EOF", err)
	}
}

func TestReadRawFrameTruncated(t *testing.T) {
	data := make([]byte, FrameBytes(QCIFWidth, QCIFHeight)-1)
	if _, err := ReadRawFrame(bytes.NewReader(data), QCIFWidth, QCIFHeight); err == nil {
		t.Fatal("truncated frame read succeeded")
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 5
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = randomFrame(rng, SQCIFWidth, SQCIFHeight)
	}

	var buf bytes.Buffer
	sw, err := NewSequenceWriter(&buf, SQCIFWidth, SQCIFHeight)
	if err != nil {
		t.Fatalf("NewSequenceWriter: %v", err)
	}
	for _, f := range frames {
		if err := sw.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if sw.Frames() != n {
		t.Fatalf("Frames() = %d, want %d", sw.Frames(), n)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	sr, err := NewSequenceReader(&buf)
	if err != nil {
		t.Fatalf("NewSequenceReader: %v", err)
	}
	w, h := sr.Dims()
	if w != SQCIFWidth || h != SQCIFHeight {
		t.Fatalf("Dims() = %dx%d", w, h)
	}
	for i := 0; i < n; i++ {
		g, err := sr.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !g.Equal(frames[i]) {
			t.Fatalf("frame %d differs after round trip", i)
		}
	}
	if _, err := sr.ReadFrame(); err != io.EOF {
		t.Fatalf("read past end: err = %v, want io.EOF", err)
	}
}

func TestSequenceWriterRejectsMismatchedFrame(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSequenceWriter(&buf, QCIFWidth, QCIFHeight)
	if err != nil {
		t.Fatalf("NewSequenceWriter: %v", err)
	}
	if err := sw.WriteFrame(NewFrame(SQCIFWidth, SQCIFHeight)); err == nil {
		t.Fatal("mismatched frame accepted")
	}
}

func TestSequenceWriterRejectsBadDims(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewSequenceWriter(&buf, 17, 16); err == nil {
		t.Fatal("bad dimensions accepted")
	}
}

func TestSequenceReaderBadMagic(t *testing.T) {
	data := append([]byte("NOPE"), make([]byte, 12)...)
	if _, err := NewSequenceReader(bytes.NewReader(data)); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestSequenceReaderShortHeader(t *testing.T) {
	if _, err := NewSequenceReader(bytes.NewReader([]byte("PB"))); err == nil {
		t.Fatal("short header accepted")
	}
}
