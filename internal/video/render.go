package video

import (
	"fmt"
	"image"
	"image/png"
	"io"
)

// ToRGBA converts a frame to an RGBA image using the BT.601 full-range
// matrix (the convention of the QCIF-era conferencing codecs). Chroma
// is upsampled by sample replication.
func (f *Frame) ToRGBA() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.Width, f.Height))
	cw := f.ChromaWidth()
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			yy := int32(f.Y[y*f.Width+x])
			cb := int32(f.Cb[(y/2)*cw+x/2]) - 128
			cr := int32(f.Cr[(y/2)*cw+x/2]) - 128
			// BT.601: R = Y + 1.402 Cr, G = Y − 0.344 Cb − 0.714 Cr,
			// B = Y + 1.772 Cb, in 16.16 fixed point.
			r := yy + (91881*cr)>>16
			g := yy - (22554*cb)>>16 - (46802*cr)>>16
			b := yy + (116130*cb)>>16
			off := img.PixOffset(x, y)
			img.Pix[off] = ClampPixel(r)
			img.Pix[off+1] = ClampPixel(g)
			img.Pix[off+2] = ClampPixel(b)
			img.Pix[off+3] = 255
		}
	}
	return img
}

// WritePNG encodes the frame as a PNG image.
func (f *Frame) WritePNG(w io.Writer) error {
	if err := png.Encode(w, f.ToRGBA()); err != nil {
		return fmt.Errorf("video: encode PNG: %w", err)
	}
	return nil
}
