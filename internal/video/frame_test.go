package video

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFrameGeometry(t *testing.T) {
	tests := []struct {
		name                   string
		width, height          int
		mbCols, mbRows, numMBs int
	}{
		{"QCIF", QCIFWidth, QCIFHeight, 11, 9, 99},
		{"SQCIF", SQCIFWidth, SQCIFHeight, 8, 6, 48},
		{"CIF", CIFWidth, CIFHeight, 22, 18, 396},
		{"single MB", 16, 16, 1, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := NewFrame(tt.width, tt.height)
			if got := f.MBCols(); got != tt.mbCols {
				t.Errorf("MBCols() = %d, want %d", got, tt.mbCols)
			}
			if got := f.MBRows(); got != tt.mbRows {
				t.Errorf("MBRows() = %d, want %d", got, tt.mbRows)
			}
			if got := f.NumMBs(); got != tt.numMBs {
				t.Errorf("NumMBs() = %d, want %d", got, tt.numMBs)
			}
			if len(f.Y) != tt.width*tt.height {
				t.Errorf("len(Y) = %d, want %d", len(f.Y), tt.width*tt.height)
			}
			if len(f.Cb) != tt.width*tt.height/4 || len(f.Cr) != tt.width*tt.height/4 {
				t.Errorf("chroma plane sizes %d/%d, want %d", len(f.Cb), len(f.Cr), tt.width*tt.height/4)
			}
		})
	}
}

func TestValidateDims(t *testing.T) {
	tests := []struct {
		name          string
		width, height int
		wantErr       bool
	}{
		{"QCIF ok", 176, 144, false},
		{"zero width", 0, 144, true},
		{"negative height", 176, -16, true},
		{"not MB aligned width", 180, 144, true},
		{"not MB aligned height", 176, 150, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateDims(tt.width, tt.height)
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateDims(%d, %d) error = %v, wantErr %v", tt.width, tt.height, err, tt.wantErr)
			}
		})
	}
}

func TestNewFramePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFrame(17, 16) did not panic")
		}
	}()
	NewFrame(17, 16)
}

func TestMBIndexCoordRoundTrip(t *testing.T) {
	f := NewFrame(QCIFWidth, QCIFHeight)
	for i := 0; i < f.NumMBs(); i++ {
		row, col := f.MBCoord(i)
		if got := f.MBIndex(row, col); got != i {
			t.Fatalf("MBIndex(MBCoord(%d)) = %d", i, got)
		}
		if row < 0 || row >= f.MBRows() || col < 0 || col >= f.MBCols() {
			t.Fatalf("MBCoord(%d) = (%d, %d) out of range", i, row, col)
		}
	}
}

func randomFrame(rng *rand.Rand, width, height int) *Frame {
	f := NewFrame(width, height)
	for i := range f.Y {
		f.Y[i] = uint8(rng.Intn(256))
	}
	for i := range f.Cb {
		f.Cb[i] = uint8(rng.Intn(256))
		f.Cr[i] = uint8(rng.Intn(256))
	}
	return f
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randomFrame(rng, QCIFWidth, QCIFHeight)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal to original")
	}
	g.Y[0]++
	if f.Equal(g) {
		t.Fatal("Equal true after luma mutation")
	}
	g = f.Clone()
	g.Cr[5]++
	if f.Equal(g) {
		t.Fatal("Equal true after chroma mutation")
	}
	if f.Equal(NewFrame(SQCIFWidth, SQCIFHeight)) {
		t.Fatal("Equal true across dimensions")
	}
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomFrame(rng, QCIFWidth, QCIFHeight)
	dst := NewFrame(QCIFWidth, QCIFHeight)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !dst.Equal(src) {
		t.Fatal("CopyFrom result differs from source")
	}
	bad := NewFrame(SQCIFWidth, SQCIFHeight)
	if err := bad.CopyFrom(src); err == nil {
		t.Fatal("CopyFrom across dimensions succeeded")
	}
}

func TestFill(t *testing.T) {
	f := NewFrame(32, 32)
	f.Fill(10, 20, 30)
	for i := range f.Y {
		if f.Y[i] != 10 {
			t.Fatalf("Y[%d] = %d, want 10", i, f.Y[i])
		}
	}
	for i := range f.Cb {
		if f.Cb[i] != 20 || f.Cr[i] != 30 {
			t.Fatalf("chroma[%d] = (%d, %d), want (20, 30)", i, f.Cb[i], f.Cr[i])
		}
	}
}

func TestLoadStoreBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomFrame(rng, 48, 48)
	for _, p := range []Plane{PlaneY, PlaneCb, PlaneCr} {
		var b Block
		f.LoadBlock(p, 8, 8, &b)
		g := f.Clone()
		g.StoreBlock(p, 8, 8, &b)
		if !f.Equal(g) {
			t.Fatalf("plane %v: store(load) changed frame", p)
		}
	}
}

func TestStoreBlockClamps(t *testing.T) {
	f := NewFrame(16, 16)
	var b Block
	for i := range b {
		if i%2 == 0 {
			b[i] = -1000
		} else {
			b[i] = 1000
		}
	}
	f.StoreBlock(PlaneY, 0, 0, &b)
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			got := f.Y[r*f.Width+c]
			want := uint8(0)
			if (r*BlockSize+c)%2 == 1 {
				want = 255
			}
			if got != want {
				t.Fatalf("Y[%d,%d] = %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestClampPixelProperty(t *testing.T) {
	prop := func(v int32) bool {
		got := ClampPixel(v)
		switch {
		case v < 0:
			return got == 0
		case v > 255:
			return got == 255
		default:
			return int32(got) == v
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyMB(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randomFrame(rng, QCIFWidth, QCIFHeight)
	dst := NewFrame(QCIFWidth, QCIFHeight)
	dst.Fill(99, 99, 99)
	CopyMB(dst, src, 2, 3)

	// Every pixel inside MB (2,3) matches src; everything else is untouched.
	for yy := 0; yy < QCIFHeight; yy++ {
		for xx := 0; xx < QCIFWidth; xx++ {
			inside := yy >= 32 && yy < 48 && xx >= 48 && xx < 64
			got := dst.Y[yy*QCIFWidth+xx]
			if inside && got != src.Y[yy*QCIFWidth+xx] {
				t.Fatalf("luma inside MB not copied at (%d,%d)", xx, yy)
			}
			if !inside && got != 99 {
				t.Fatalf("luma outside MB modified at (%d,%d)", xx, yy)
			}
		}
	}
	cw := dst.ChromaWidth()
	for yy := 0; yy < dst.ChromaHeight(); yy++ {
		for xx := 0; xx < cw; xx++ {
			inside := yy >= 16 && yy < 24 && xx >= 24 && xx < 32
			if inside {
				if dst.Cb[yy*cw+xx] != src.Cb[yy*cw+xx] || dst.Cr[yy*cw+xx] != src.Cr[yy*cw+xx] {
					t.Fatalf("chroma inside MB not copied at (%d,%d)", xx, yy)
				}
			} else if dst.Cb[yy*cw+xx] != 99 || dst.Cr[yy*cw+xx] != 99 {
				t.Fatalf("chroma outside MB modified at (%d,%d)", xx, yy)
			}
		}
	}
}

func TestPlaneString(t *testing.T) {
	if PlaneY.String() != "Y" || PlaneCb.String() != "Cb" || PlaneCr.String() != "Cr" {
		t.Fatal("plane names wrong")
	}
	if Plane(0).String() != "Plane(0)" {
		t.Fatalf("zero plane string = %q", Plane(0).String())
	}
}

func TestDataStride(t *testing.T) {
	f := NewFrame(QCIFWidth, QCIFHeight)
	if _, stride := f.Data(PlaneY); stride != QCIFWidth {
		t.Fatalf("luma stride %d", stride)
	}
	if _, stride := f.Data(PlaneCb); stride != QCIFWidth/2 {
		t.Fatalf("Cb stride %d", stride)
	}
}
