package video

import (
	"bytes"
	"image/png"
	"testing"
)

func TestToRGBAGrey(t *testing.T) {
	f := NewFrame(32, 32)
	f.Fill(128, 128, 128) // neutral grey
	img := f.ToRGBA()
	r, g, b, a := img.At(10, 10).RGBA()
	if a != 0xFFFF {
		t.Fatal("alpha not opaque")
	}
	// Neutral chroma: R≈G≈B≈Y.
	for _, v := range []uint32{r, g, b} {
		v8 := v >> 8
		if v8 < 126 || v8 > 130 {
			t.Fatalf("grey pixel channel %d, want ~128", v8)
		}
	}
}

func TestToRGBAColourDirections(t *testing.T) {
	f := NewFrame(32, 32)
	f.Fill(128, 128, 220) // strong Cr: red shift
	img := f.ToRGBA()
	r, g, b, _ := img.At(5, 5).RGBA()
	if !(r > g && r > b) {
		t.Fatalf("high Cr should be reddish: r=%d g=%d b=%d", r>>8, g>>8, b>>8)
	}
	f.Fill(128, 220, 128) // strong Cb: blue shift
	img = f.ToRGBA()
	r, g, b, _ = img.At(5, 5).RGBA()
	if !(b > r && b > g) {
		t.Fatalf("high Cb should be bluish: r=%d g=%d b=%d", r>>8, g>>8, b>>8)
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	f := NewFrame(48, 48)
	f.Fill(90, 110, 150)
	var buf bytes.Buffer
	if err := f.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("written PNG does not decode: %v", err)
	}
	if img.Bounds().Dx() != 48 || img.Bounds().Dy() != 48 {
		t.Fatalf("PNG bounds %v", img.Bounds())
	}
}
