package adapt

import (
	"fmt"

	"pbpair/internal/core"
)

// Predictor maps a loss-rate estimate α̂ to an Intra_Th
// recommendation. The analytic engine's candidate bank
// (analytic.Bank.BestIntraTh) satisfies this interface: it evaluates
// every pre-extracted candidate's expected distortion under α̂ in
// closed form and returns the cheapest one within the quality margin.
// The interface lives here so the adaptation loop stays free of the
// model plumbing — anything that can rank thresholds by loss rate
// plugs in.
type Predictor interface {
	BestIntraTh(plr float64) (float64, error)
}

// PredictiveQuality is a QualityController with a model-driven inner
// loop: each retune asks the Predictor for the threshold whose
// predicted distortion/energy trade is best at the current α̂, and
// falls back to the Formula 3 closed form when the predictor declines
// (out-of-range estimate, empty bank). The closed form keeps the
// refresh *interval* constant; the predictor instead picks the point
// the model says is best, which also prices energy — the §3.2
// interfacing mechanism with the guesswork replaced by expectation.
type PredictiveQuality struct {
	pred      Predictor
	closed    *QualityController
	fallbacks int
}

// NewPredictiveQuality wires a predictor in front of a closed-form
// fallback controller. Both must be non-nil: the predictor is the
// point of the type, and the fallback is what keeps the encoder tuned
// when the predictor cannot answer.
func NewPredictiveQuality(pred Predictor, fallback *QualityController) (*PredictiveQuality, error) {
	if pred == nil {
		return nil, fmt.Errorf("adapt: predictive quality needs a predictor")
	}
	if fallback == nil {
		return nil, fmt.Errorf("adapt: predictive quality needs a fallback controller")
	}
	return &PredictiveQuality{pred: pred, closed: fallback}, nil
}

// IntraTh returns the predictor's threshold for loss estimate plr, or
// the closed-form fallback's when the predictor errors.
func (q *PredictiveQuality) IntraTh(plr float64) float64 {
	th, err := q.pred.BestIntraTh(plr)
	if err != nil {
		q.fallbacks++
		return q.closed.IntraTh(plr)
	}
	return th
}

// Fallbacks reports how many retunes were answered by the closed form
// because the predictor errored — nonzero values mean the bank does
// not cover the loss range the estimator is reporting.
func (q *PredictiveQuality) Fallbacks() int { return q.fallbacks }

// Apply pushes a new loss estimate into a PBPAIR planner: the α used
// by its update formulas and the predicted threshold.
func (q *PredictiveQuality) Apply(p *core.PBPAIR, plr float64) {
	p.SetPLR(plr)
	p.SetIntraTh(q.IntraTh(plr))
}
