package adapt_test

// Integration of the two halves of the paper's §3.2 feedback loop that
// are otherwise only tested in isolation: the receiver-side
// network.LossMonitor (sequence-gap loss inference) feeding the
// sender-side adapt.PLREstimator (smoothed α̂) through RTCP-style
// interval reports — exactly the dataflow internal/serve runs over a
// real socket.

import (
	"math"
	"testing"

	"pbpair/internal/adapt"
	"pbpair/internal/network"
)

// lossRNG is a tiny deterministic splitmix64 so the injected loss
// pattern is a pure function of the seed.
type lossRNG struct{ s uint64 }

func (r *lossRNG) float64() float64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// runLoop pushes packets seq in [from, to) through a lossy wire into
// the monitor, folding an interval report into the estimator every
// reportEvery received-or-lost packets.
func runLoop(t *testing.T, mon *network.LossMonitor, est *adapt.PLREstimator,
	rng *lossRNG, alpha float64, from, to, reportEvery int) {
	t.Helper()
	for seq := from; seq < to; seq++ {
		if rng.float64() < alpha {
			continue // lost on the wire: the monitor sees only a gap
		}
		mon.Observe(seq)
		if seq%reportEvery == reportEvery-1 {
			est.ObserveReport(mon.Rate())
			mon.Reset()
		}
	}
}

func TestMonitorFeedsEstimatorConverges(t *testing.T) {
	const (
		alpha       = 0.2
		packets     = 5000
		reportEvery = 50
	)
	est, err := adapt.NewPLREstimator(0.3)
	if err != nil {
		t.Fatal(err)
	}
	var mon network.LossMonitor
	rng := &lossRNG{s: 42}

	runLoop(t, &mon, est, rng, alpha, 0, packets, reportEvery)

	if got := est.Rate(); math.Abs(got-alpha) > 0.08 {
		t.Fatalf("α̂ = %.4f after %d packets at α = %.2f; want within 0.08", got, packets, alpha)
	}
}

func TestMonitorFeedsEstimatorTracksStep(t *testing.T) {
	const (
		alphaLow    = 0.05
		alphaHigh   = 0.30
		half        = 3000
		reportEvery = 50
	)
	est, err := adapt.NewPLREstimator(0.3)
	if err != nil {
		t.Fatal(err)
	}
	var mon network.LossMonitor
	rng := &lossRNG{s: 7}

	runLoop(t, &mon, est, rng, alphaLow, 0, half, reportEvery)
	before := est.Rate()
	if math.Abs(before-alphaLow) > 0.06 {
		t.Fatalf("pre-step α̂ = %.4f, want near %.2f", before, alphaLow)
	}

	runLoop(t, &mon, est, rng, alphaHigh, half, 2*half, reportEvery)
	after := est.Rate()
	if after <= before {
		t.Fatalf("α̂ did not rise across the loss step: %.4f → %.4f", before, after)
	}
	if math.Abs(after-alphaHigh) > 0.08 {
		t.Fatalf("post-step α̂ = %.4f, want within 0.08 of %.2f", after, alphaHigh)
	}
}

// TestMonitorFeedsController closes the remaining link: the converged
// α̂ drives QualityController.IntraTh in the controller's direction —
// higher loss means faster σ decay, so holding the refresh interval
// requires a *lower* threshold Th = (1−α)^{n*} (the §3.2 rule the
// adaptive example prints).
func TestMonitorFeedsController(t *testing.T) {
	ctl, err := adapt.NewQualityController(6)
	if err != nil {
		t.Fatal(err)
	}
	var ths []float64
	for _, alpha := range []float64{0.02, 0.1, 0.3} {
		est, err := adapt.NewPLREstimator(0.3)
		if err != nil {
			t.Fatal(err)
		}
		var mon network.LossMonitor
		rng := &lossRNG{s: 99}
		runLoop(t, &mon, est, rng, alpha, 0, 4000, 50)
		ths = append(ths, ctl.IntraTh(est.Rate()))
	}
	if !(ths[0] > ths[1] && ths[1] > ths[2]) {
		t.Fatalf("Intra_Th not monotone decreasing in measured loss: %v", ths)
	}
}
