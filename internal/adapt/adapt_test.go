package adapt

import (
	"math"
	"testing"

	"pbpair/internal/core"
)

func TestPLREstimatorValidation(t *testing.T) {
	if _, err := NewPLREstimator(0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewPLREstimator(1.5); err == nil {
		t.Fatal("weight above one accepted")
	}
}

func TestPLREstimatorConverges(t *testing.T) {
	e, err := NewPLREstimator(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 10% loss pattern: every 10th packet lost.
	for i := 0; i < 2000; i++ {
		e.Observe(i%10 == 0)
	}
	if got := e.Rate(); math.Abs(got-0.1) > 0.05 {
		t.Fatalf("estimate %.3f, want ~0.10", got)
	}
}

func TestPLREstimatorSeedsFromFirstObservation(t *testing.T) {
	e, err := NewPLREstimator(0.1)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(true)
	if e.Rate() != 1 {
		t.Fatalf("first observation should seed: %v", e.Rate())
	}
}

func TestPLREstimatorTracksChange(t *testing.T) {
	e, _ := NewPLREstimator(0.1)
	for i := 0; i < 300; i++ {
		e.Observe(false)
	}
	low := e.Rate()
	for i := 0; i < 300; i++ {
		e.Observe(i%3 == 0)
	}
	if e.Rate() <= low+0.1 {
		t.Fatalf("estimator failed to track loss increase: %.3f -> %.3f", low, e.Rate())
	}
}

func TestQualityControllerValidation(t *testing.T) {
	if _, err := NewQualityController(0.5); err == nil {
		t.Fatal("sub-frame interval accepted")
	}
}

func TestQualityControllerClosedForm(t *testing.T) {
	c, err := NewQualityController(6)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		plr  float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{0.1, math.Pow(0.9, 6)},
		{0.3, math.Pow(0.7, 6)},
	}
	for _, tt := range tests {
		if got := c.IntraTh(tt.plr); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("IntraTh(%v) = %v, want %v", tt.plr, got, tt.want)
		}
	}
}

// TestQualityControllerHoldsInterval: the point of the closed form —
// under the Formula 3 model, the number of frames until σ crosses the
// threshold is the target interval, independent of α.
func TestQualityControllerHoldsInterval(t *testing.T) {
	const interval = 6
	c, err := NewQualityController(interval)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.4} {
		th := c.IntraTh(alpha)
		sigma := 1.0
		frames := 0
		for sigma >= th && frames < 1000 {
			sigma *= 1 - alpha // Formula 3 decay
			frames++
		}
		// σ = (1-α)^n crosses (1-α)^interval at n = interval (+1 for the
		// strict inequality edge).
		if frames < interval || frames > interval+1 {
			t.Errorf("α=%v: refresh after %d frames, want %d", alpha, frames, interval)
		}
	}
}

func TestQualityControllerIntraThDecreasesWithPLR(t *testing.T) {
	// The paper's §3.2 rule: "if PLR decreases, we can increase the
	// Intra_Th to encode with similar number of intra macro blocks" —
	// so for a constant refresh budget, Th is non-increasing in α over
	// (0, 1). The endpoints are modal: α=0 disables refresh entirely
	// (Th=0) and α=1 forces all-intra (Th=1).
	c, _ := NewQualityController(8)
	prev := 2.0
	for _, plr := range []float64{0.01, 0.05, 0.1, 0.2, 0.5, 0.9, 0.99} {
		th := c.IntraTh(plr)
		if th > prev {
			t.Fatalf("IntraTh increased at plr=%v", plr)
		}
		prev = th
	}
	if c.IntraTh(0) != 0 || c.IntraTh(1) != 1 {
		t.Fatal("endpoint thresholds wrong")
	}
}

func TestQualityControllerApply(t *testing.T) {
	p, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.5, PLR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewQualityController(6)
	c.Apply(p, 0.25)
	if p.PLR() != 0.25 {
		t.Fatalf("PLR not applied: %v", p.PLR())
	}
	if want := c.IntraTh(0.25); p.IntraTh() != want {
		t.Fatalf("IntraTh = %v, want %v", p.IntraTh(), want)
	}
}

func TestEnergyControllerValidation(t *testing.T) {
	if _, err := NewEnergyController(0, 0.5, 0.5); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewEnergyController(1, 1.5, 0.5); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func TestEnergyControllerRaisesThresholdOverBudget(t *testing.T) {
	c, err := NewEnergyController(1.0, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	th := c.Observe(2.0) // 100% over budget
	if th <= 0.5 {
		t.Fatalf("threshold %v did not rise when over budget", th)
	}
	c2, _ := NewEnergyController(1.0, 0.5, 0.5)
	th2 := c2.Observe(0.5) // under budget
	if th2 >= 0.5 {
		t.Fatalf("threshold %v did not fall when under budget", th2)
	}
}

func TestEnergyControllerClamps(t *testing.T) {
	c, _ := NewEnergyController(1.0, 0.9, 1.0)
	for i := 0; i < 10; i++ {
		c.Observe(100)
	}
	if c.IntraTh() != 1 {
		t.Fatalf("threshold %v escaped [0,1]", c.IntraTh())
	}
	for i := 0; i < 10; i++ {
		c.Observe(0.0001)
	}
	if c.IntraTh() != 0 {
		t.Fatalf("threshold %v escaped [0,1]", c.IntraTh())
	}
}

func TestEnergyControllerApply(t *testing.T) {
	p, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.2, PLR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewEnergyController(1.0, 0.7, 0.5)
	c.Apply(p)
	if p.IntraTh() != 0.7 {
		t.Fatalf("Apply did not set threshold: %v", p.IntraTh())
	}
}
