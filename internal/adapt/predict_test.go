package adapt_test

import (
	"errors"
	"math"
	"testing"

	"pbpair/internal/adapt"
	"pbpair/internal/core"
	"pbpair/internal/experiment"
	"pbpair/internal/synth"
)

// fakePredictor answers with a fixed threshold inside its loss range
// and errors outside it.
type fakePredictor struct {
	th       float64
	maxPLR   float64
	queries  int
	lastPLR  float64
	failNext bool
}

func (p *fakePredictor) BestIntraTh(plr float64) (float64, error) {
	p.queries++
	p.lastPLR = plr
	if p.failNext || plr > p.maxPLR {
		return 0, errors.New("out of range")
	}
	return p.th, nil
}

func TestPredictiveQuality(t *testing.T) {
	closed, err := adapt.NewQualityController(10)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := adapt.NewPredictiveQuality(nil, closed); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := adapt.NewPredictiveQuality(&fakePredictor{}, nil); err == nil {
		t.Error("nil fallback accepted")
	}

	pred := &fakePredictor{th: 0.42, maxPLR: 0.5}
	pq, err := adapt.NewPredictiveQuality(pred, closed)
	if err != nil {
		t.Fatal(err)
	}

	if got := pq.IntraTh(0.2); got != 0.42 {
		t.Errorf("IntraTh(0.2) = %v, want predictor's 0.42", got)
	}
	if pred.lastPLR != 0.2 {
		t.Errorf("predictor saw plr %v, want 0.2", pred.lastPLR)
	}
	if pq.Fallbacks() != 0 {
		t.Errorf("fallbacks = %d before any predictor error", pq.Fallbacks())
	}

	// Out-of-range estimate: the closed form must answer instead.
	if got, want := pq.IntraTh(0.8), closed.IntraTh(0.8); got != want {
		t.Errorf("IntraTh(0.8) = %v, want closed-form %v", got, want)
	}
	if pq.Fallbacks() != 1 {
		t.Errorf("fallbacks = %d, want 1", pq.Fallbacks())
	}

	// Apply pushes both α and the predicted threshold into the planner.
	plan, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0, PLR: 0})
	if err != nil {
		t.Fatal(err)
	}
	pq.Apply(plan, 0.3)
	if got := plan.IntraTh(); got != 0.42 {
		t.Errorf("planner IntraTh = %v after Apply, want 0.42", got)
	}
	if got := plan.PLR(); got != 0.3 {
		t.Errorf("planner PLR = %v after Apply, want 0.3", got)
	}
}

// TestPredictiveQualityWithAnalyticBank closes the loop with the real
// model: a bank of analytic candidates serves as the predictor. The
// invariants — thresholds come from the candidate set, loss-free
// queries pick the cheapest candidate (no refresh needed means the
// lowest-energy stream wins within the margin), and the controller
// never falls back inside [0, 1] — hold for any content.
func TestPredictiveQualityWithAnalyticBank(t *testing.T) {
	bank, err := experiment.BuildAnalyticBank(experiment.AnalyticBankConfig{
		Regime:      synth.RegimeForeman,
		Frames:      8,
		SearchRange: 4,
		IntraThs:    []float64{0.1, 0.5, 0.9},
	})
	if err != nil {
		t.Fatalf("bank: %v", err)
	}
	closed, err := adapt.NewQualityController(10)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := adapt.NewPredictiveQuality(bank, closed)
	if err != nil {
		t.Fatal(err)
	}

	cands := bank.Candidates()
	valid := map[float64]bool{}
	minEnergyTh := cands[0].IntraTh
	minEnergy := cands[0].EnergyJ
	for _, c := range cands {
		valid[c.IntraTh] = true
		if c.EnergyJ < minEnergy {
			minEnergy, minEnergyTh = c.EnergyJ, c.IntraTh
		}
	}

	for _, plr := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5} {
		th := pq.IntraTh(plr)
		if !valid[th] {
			t.Errorf("IntraTh(%v) = %v, not a bank candidate", plr, th)
		}
	}
	if pq.Fallbacks() != 0 {
		t.Errorf("bank-backed controller fell back %d times", pq.Fallbacks())
	}

	// Loss-free, every candidate decodes perfectly (identical expected
	// PSNR), so the margin rule must pick the cheapest encode.
	if th := pq.IntraTh(0); th != minEnergyTh {
		t.Errorf("IntraTh(0) = %v, want cheapest candidate %v", th, minEnergyTh)
	}

	// A NaN estimate is refused by the bank and answered by Formula 3
	// (which also yields NaN — the estimator clamps, so this only
	// documents that the bank does not mask a broken input).
	got, want := pq.IntraTh(math.NaN()), closed.IntraTh(math.NaN())
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Errorf("IntraTh(NaN) = %v, want closed-form %v", got, want)
	}
	if pq.Fallbacks() != 1 {
		t.Errorf("fallbacks = %d after NaN query, want 1", pq.Fallbacks())
	}
}
