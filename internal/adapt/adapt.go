// Package adapt implements the paper's §3.2 power-awareness extension:
// "with proper interfacing mechanisms between the codec and the
// network, PBPAIR can be easily modified to adjust its operations
// based on the network conditions and user expectation."
//
// Three pieces:
//
//   - PLREstimator turns per-packet delivery feedback into a smoothed
//     packet-loss-rate estimate α̂.
//   - QualityController holds the error-resilience level constant as α
//     moves, using the Formula 3 closed form: a macroblock refreshes
//     after n ≈ ln(Th)/ln(1−α) inter frames, so keeping the refresh
//     interval at n* requires Th(α) = (1−α)^{n*} — "adapting the
//     Intra_Th by the amount of the PLR increase can generate [a]
//     similar number of intra macro blocks".
//   - EnergyController trades resilience for power: an integral
//     controller that raises Intra_Th (more intra, less motion
//     estimation) while the measured per-frame energy exceeds the
//     budget, and lowers it when there is headroom.
package adapt

import (
	"fmt"
	"math"

	"pbpair/internal/core"
)

// PLREstimator is an exponentially weighted moving average over
// per-packet delivery outcomes. The zero value is not useful; use
// NewPLREstimator.
type PLREstimator struct {
	weight float64
	rate   float64
	seeded bool
}

// NewPLREstimator returns an estimator with the given smoothing weight
// in (0, 1]: the weight given to each new observation. RTP receiver
// reports arrive in batches; weights near 0.05 smooth over ~20
// packets.
func NewPLREstimator(weight float64) (*PLREstimator, error) {
	if weight <= 0 || weight > 1 {
		return nil, fmt.Errorf("adapt: smoothing weight %v outside (0, 1]", weight)
	}
	return &PLREstimator{weight: weight}, nil
}

// Observe records one packet outcome.
func (e *PLREstimator) Observe(lost bool) {
	v := 0.0
	if lost {
		v = 1
	}
	if !e.seeded {
		e.rate = v
		e.seeded = true
		return
	}
	e.rate += e.weight * (v - e.rate)
}

// ObserveReport folds one interval report — the fraction of packets
// lost over a receiver's report window, the quantity an RTCP receiver
// report carries — into the estimate with the same smoothing weight as
// a single Observe. Because each report summarises many packets,
// estimators fed by reports want a much larger weight than estimators
// fed per-packet (0.3–0.5 versus 0.05); choose it at construction.
// Fractions outside [0, 1] are clamped.
func (e *PLREstimator) ObserveReport(fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	if !e.seeded {
		e.rate = fraction
		e.seeded = true
		return
	}
	e.rate += e.weight * (fraction - e.rate)
}

// Rate returns the current loss-rate estimate α̂ in [0, 1].
func (e *PLREstimator) Rate() float64 { return e.rate }

// QualityController keeps PBPAIR's refresh interval constant across
// PLR changes.
type QualityController struct {
	interval   float64 // target refresh interval n* in frames
	similarity float64 // assumed mean similarity factor (0 = Formula 3)
}

// NewQualityController returns a controller targeting a refresh
// interval of n* frames (each macroblock intra-refreshed about once
// every n* frames). interval must be >= 1.
func NewQualityController(interval float64) (*QualityController, error) {
	if interval < 1 {
		return nil, fmt.Errorf("adapt: refresh interval %v must be >= 1 frame", interval)
	}
	return &QualityController{interval: interval}, nil
}

// SetSimilarity tells the controller the content's expected mean
// similarity factor s ∈ [0, 1). The pure Formula 3 model (s = 0)
// assumes σ decays by (1−α) per frame, but with the similarity term
// active the per-frame decay is d = (1−α)·σmin/σ + α·s ≈ (1−α) + α·s
// for chained prediction, so holding the interval requires
// Th = d^{n*}. Without this correction the controller under-refreshes
// on high-similarity content. Values outside [0, 1) are clamped.
func (c *QualityController) SetSimilarity(s float64) {
	if s < 0 {
		s = 0
	}
	if s > 0.99 {
		s = 0.99
	}
	c.similarity = s
}

// IntraTh returns the threshold holding the target interval at loss
// rate plr: Th = d^{n*} with d = (1−α) + α·s. At α = 0 no refresh is
// needed (Th = 0 — the paper: "PLR equals to zero means we can encode
// whole frames as P-frames"); as α → 1 the threshold approaches 1
// (all intra) for s = 0.
func (c *QualityController) IntraTh(plr float64) float64 {
	if plr <= 0 {
		return 0
	}
	if plr >= 1 {
		return 1
	}
	d := (1 - plr) + plr*c.similarity
	return math.Pow(d, c.interval)
}

// Apply pushes a new loss estimate into a PBPAIR planner: both the α
// used by its update formulas and the threshold holding the target
// resilience level.
func (c *QualityController) Apply(p *core.PBPAIR, plr float64) {
	p.SetPLR(plr)
	p.SetIntraTh(c.IntraTh(plr))
}

// EnergyController adapts Intra_Th to a per-frame energy budget: more
// intra macroblocks mean less motion estimation and therefore less
// energy (at the cost of a larger bitstream). It is a clamped integral
// controller.
type EnergyController struct {
	budget float64 // joules per frame
	gain   float64 // threshold step per unit of relative energy error
	th     float64
}

// NewEnergyController returns a controller targeting budget joules per
// frame, starting from threshold start. gain <= 0 selects the default
// of 0.5.
func NewEnergyController(budget, start, gain float64) (*EnergyController, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("adapt: energy budget %v must be positive", budget)
	}
	if start < 0 || start > 1 {
		return nil, fmt.Errorf("adapt: starting threshold %v outside [0, 1]", start)
	}
	if gain <= 0 {
		gain = 0.5
	}
	return &EnergyController{budget: budget, gain: gain, th: start}, nil
}

// Observe feeds the measured energy of the last frame and returns the
// updated threshold.
func (c *EnergyController) Observe(joules float64) float64 {
	relErr := (joules - c.budget) / c.budget
	c.th += c.gain * relErr
	if c.th < 0 {
		c.th = 0
	}
	if c.th > 1 {
		c.th = 1
	}
	return c.th
}

// IntraTh returns the controller's current threshold.
func (c *EnergyController) IntraTh() float64 { return c.th }

// Apply pushes the current threshold into a PBPAIR planner.
func (c *EnergyController) Apply(p *core.PBPAIR) { p.SetIntraTh(c.th) }
