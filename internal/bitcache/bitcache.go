// Package bitcache is a concurrency-safe, content-addressed store for
// encoded bitstreams: it maps a canonical fingerprint of the encode
// inputs (sequence, frame count, scheme, every bitstream-affecting
// codec knob) to the immutable codec.EncodedSequence those inputs
// produce. It exists because the encoder never sees the channel, so
// every (seed, PLR) simulation of an experiment grid can share one
// encode — the store is the memo between the experiment layer's
// encode and simulate phases (see ARCHITECTURE.md, "Two-phase
// experiment pipeline").
//
// Properties:
//
//   - Single-flight: concurrent GetOrCompute calls for the same key
//     run the compute function once; the others block and share the
//     result. This is what deduplicates the seed axis when Fig5Multi
//     fans seeds out concurrently.
//   - Bounded: entries are evicted least-recently-used once the byte
//     budget (sized by EncodedSequence.SizeBytes) is exceeded. An
//     eviction only costs a recompute — results never depend on cache
//     state, because the encode they memoize is deterministic.
//   - Observable: hit/miss/evict/spill counters are kept internally
//     and, when a registry is supplied, mirrored through internal/obs
//     under the "bitcache." prefix.
//   - Spillable: with a Dir configured, computed sequences are also
//     written to disk keyed by the same fingerprint, and misses try
//     the disk before encoding — cross-process reuse for the cmd
//     tools. Spill I/O is best-effort: a corrupt or unreadable file
//     falls back to recomputing.
package bitcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pbpair/internal/codec"
	"pbpair/internal/obs"
)

// Key is the content address of an encoded sequence: the SHA-256 of
// the canonical serialization of its encode inputs.
type Key [sha256.Size]byte

// KeyOf hashes a canonical encode-input serialization into a Key.
// Callers are responsible for canonicalisation (equal inputs must
// serialize equal — see codec.Config.BitstreamKey).
func KeyOf(canonical string) Key { return sha256.Sum256([]byte(canonical)) }

// String renders the key as lowercase hex (also the spill file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// DefaultMaxBytes is the in-memory byte budget when Config.MaxBytes
// is unset: 256 MiB, roomy enough for every experiment in this
// repository at paper scale.
const DefaultMaxBytes = 256 << 20

// Config parameterises a Store.
type Config struct {
	// MaxBytes is the in-memory byte budget (default DefaultMaxBytes).
	MaxBytes int64
	// Dir, when non-empty, enables the on-disk spill: one file per
	// key, shared across processes.
	Dir string
	// Metrics, when non-nil, receives "bitcache.*" counters and gauges.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits        int64 // GetOrCompute served from memory (incl. coalesced waiters)
	Misses      int64 // GetOrCompute had to load or compute
	Evictions   int64 // entries dropped to respect the byte budget
	SpillHits   int64 // misses served from the on-disk spill
	SpillWrites int64 // sequences written to the spill
	Entries     int   // resident entries
	Bytes       int64 // resident bytes (SizeBytes sum)
}

// Store is the cache. Safe for concurrent use.
type Store struct {
	maxBytes int64
	dir      string

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // *entry values; front = most recently used
	bytes   int64

	hits, misses, evictions, spillHits, spillWrites atomic.Int64

	// obs mirrors (nil when no registry was configured).
	mHits, mMisses, mEvictions, mSpillHits, mSpillWrites *obs.Counter
	gBytes, gEntries                                     *obs.Gauge
}

// entry is one cache slot. ready is closed once seq/err are final;
// elem is the entry's LRU position, nil while the compute is pending
// and after eviction. seq and err are written before ready closes and
// only read after it, so waiters need no lock for them.
type entry struct {
	ready chan struct{}
	seq   *codec.EncodedSequence
	err   error
	key   Key
	size  int64
	elem  *list.Element
}

// New builds a store. It fails only when a spill directory is
// configured but cannot be created.
func New(cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("bitcache: spill dir: %w", err)
		}
	}
	s := &Store{
		maxBytes: cfg.MaxBytes,
		dir:      cfg.Dir,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
	}
	if cfg.Metrics != nil {
		s.mHits = cfg.Metrics.Counter("bitcache.hits")
		s.mMisses = cfg.Metrics.Counter("bitcache.misses")
		s.mEvictions = cfg.Metrics.Counter("bitcache.evictions")
		s.mSpillHits = cfg.Metrics.Counter("bitcache.spill_hits")
		s.mSpillWrites = cfg.Metrics.Counter("bitcache.spill_writes")
		s.gBytes = cfg.Metrics.Gauge("bitcache.bytes")
		s.gEntries = cfg.Metrics.Gauge("bitcache.entries")
	}
	return s, nil
}

// GetOrCompute returns the sequence stored under key, computing (or
// loading from the spill) and storing it on a miss. Concurrent calls
// for the same key coalesce onto one compute; callers must treat the
// returned sequence as immutable. A failed compute is not cached —
// waiters coalesced onto it receive the error, later calls retry.
func (s *Store) GetOrCompute(key Key, compute func() (*codec.EncodedSequence, error)) (*codec.EncodedSequence, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		s.count(&s.hits, s.mHits)
		s.mu.Lock()
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.mu.Unlock()
		return e.seq, nil
	}
	e := &entry{ready: make(chan struct{}), key: key}
	s.entries[key] = e
	s.mu.Unlock()
	s.count(&s.misses, s.mMisses)

	seq, err := s.loadOrCompute(key, compute)
	if err == nil && seq == nil {
		err = fmt.Errorf("bitcache: compute for %s returned no sequence", key)
	}
	e.seq, e.err = seq, err

	s.mu.Lock()
	if err != nil {
		delete(s.entries, key)
	} else {
		e.size = seq.SizeBytes()
		e.elem = s.lru.PushFront(e)
		s.bytes += e.size
		s.evictLocked()
		s.updateGaugesLocked()
	}
	s.mu.Unlock()
	close(e.ready)
	return seq, err
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		SpillHits:   s.spillHits.Load(),
		SpillWrites: s.spillWrites.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// String renders the stats in the form the cmd tools print.
func (st Stats) String() string {
	return fmt.Sprintf("bitcache: %d hits, %d misses, %d evictions, %d spill hits, %d spill writes, %d entries (%d bytes) resident",
		st.Hits, st.Misses, st.Evictions, st.SpillHits, st.SpillWrites, st.Entries, st.Bytes)
}

func (s *Store) count(c *atomic.Int64, m *obs.Counter) {
	c.Add(1)
	if m != nil {
		m.Add(1)
	}
}

// evictLocked drops least-recently-used entries until the resident
// bytes fit the budget. Pending entries are never in the LRU list, so
// only finished sequences are evicted; an oversized sequence may be
// evicted immediately after insertion, which callers never observe
// (they already hold the pointer) — it simply is not retained.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		victim.elem = nil
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.count(&s.evictions, s.mEvictions)
	}
}

func (s *Store) updateGaugesLocked() {
	if s.gBytes != nil {
		s.gBytes.Set(float64(s.bytes))
		s.gEntries.Set(float64(len(s.entries)))
	}
}

// loadOrCompute tries the disk spill, then the compute function, and
// writes freshly computed sequences back to the spill.
func (s *Store) loadOrCompute(key Key, compute func() (*codec.EncodedSequence, error)) (*codec.EncodedSequence, error) {
	if s.dir != "" {
		if data, err := os.ReadFile(s.spillPath(key)); err == nil {
			var seq codec.EncodedSequence
			if err := seq.UnmarshalBinary(data); err == nil {
				s.count(&s.spillHits, s.mSpillHits)
				return &seq, nil
			}
			// Corrupt spill: recompute (and overwrite it below).
		}
	}
	seq, err := compute()
	if err != nil || seq == nil {
		return seq, err
	}
	if s.dir != "" && s.writeSpill(key, seq) {
		s.count(&s.spillWrites, s.mSpillWrites)
	}
	return seq, nil
}

// writeSpill persists a sequence via a temp file + rename, so a
// concurrent process never reads a half-written spill. Failures are
// swallowed: the spill is an optimisation, never a correctness
// dependency.
func (s *Store) writeSpill(key Key, seq *codec.EncodedSequence) bool {
	data, err := seq.MarshalBinary()
	if err != nil {
		return false
	}
	tmp, err := os.CreateTemp(s.dir, key.String()+".tmp*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), s.spillPath(key)); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}

func (s *Store) spillPath(key Key) string {
	return filepath.Join(s.dir, key.String()+".pbseq")
}
