package bitcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/obs"
)

// testSeq builds a small distinguishable sequence; payload controls
// both identity and size.
func testSeq(payload byte, size int) *codec.EncodedSequence {
	data := make([]byte, size)
	for i := range data {
		data[i] = payload
	}
	return &codec.EncodedSequence{
		Scheme: fmt.Sprintf("seq-%d", payload),
		Width:  16, Height: 16,
		TotalBytes: size,
		Frames: []codec.SeqFrame{{
			FrameNum: 0, Type: codec.IFrame,
			Data: data, GOBOffsets: []int{0}, IntraMBs: 1,
		}},
	}
}

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestKeyOfDeterministicAndDistinct(t *testing.T) {
	a, b := KeyOf("canonical-a"), KeyOf("canonical-a")
	if a != b {
		t.Fatal("equal canonicals hashed differently")
	}
	if KeyOf("canonical-b") == a {
		t.Fatal("distinct canonicals collided")
	}
	if len(a.String()) != 64 {
		t.Fatalf("key hex length = %d, want 64", len(a.String()))
	}
}

func TestGetOrComputeHitMiss(t *testing.T) {
	s := mustStore(t, Config{})
	key := KeyOf("k")
	var computes atomic.Int64
	get := func() (*codec.EncodedSequence, error) {
		return s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
			computes.Add(1)
			return testSeq(1, 100), nil
		})
	}
	first, err := get()
	if err != nil {
		t.Fatalf("first get: %v", err)
	}
	second, err := get()
	if err != nil {
		t.Fatalf("second get: %v", err)
	}
	if first != second {
		t.Fatal("hit returned a different pointer than the computed sequence")
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes != first.SizeBytes() {
		t.Fatalf("resident bytes = %d, want SizeBytes %d", st.Bytes, first.SizeBytes())
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s := mustStore(t, Config{})
	key := KeyOf("contended")
	var computes atomic.Int64
	release := make(chan struct{})

	const callers = 8
	results := make([]*codec.EncodedSequence, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seq, err := s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
				computes.Add(1)
				<-release // hold every concurrent caller on one compute
				return testSeq(2, 64), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			results[c] = seq
		}(c)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for c := 1; c < callers; c++ {
		if results[c] != results[0] {
			t.Fatalf("caller %d got a different sequence pointer", c)
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Misses != callers {
		t.Fatalf("hits+misses = %d, want %d callers accounted", st.Hits+st.Misses, callers)
	}
}

func TestLRUEviction(t *testing.T) {
	one := testSeq(1, 1000)
	budget := 2 * one.SizeBytes() // room for two entries, not three
	s := mustStore(t, Config{MaxBytes: budget})

	put := func(p byte) {
		t.Helper()
		if _, err := s.GetOrCompute(KeyOf(fmt.Sprintf("k%d", p)), func() (*codec.EncodedSequence, error) {
			return testSeq(p, 1000), nil
		}); err != nil {
			t.Fatalf("put %d: %v", p, err)
		}
	}
	recompute := func(p byte) bool {
		t.Helper()
		ran := false
		if _, err := s.GetOrCompute(KeyOf(fmt.Sprintf("k%d", p)), func() (*codec.EncodedSequence, error) {
			ran = true
			return testSeq(p, 1000), nil
		}); err != nil {
			t.Fatalf("get %d: %v", p, err)
		}
		return ran
	}

	put(1)
	put(2)
	if recompute(1) { // touch 1 so 2 becomes the LRU victim
		t.Fatal("entry 1 evicted prematurely")
	}
	put(3) // exceeds the budget: 2 must go
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after overflow = %+v, want 1 eviction / 2 entries", st)
	}
	if st.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	if recompute(1) {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if !recompute(2) {
		t.Fatal("LRU entry 2 was not evicted")
	}
}

func TestFailedComputeNotCached(t *testing.T) {
	s := mustStore(t, Config{})
	key := KeyOf("flaky")
	boom := errors.New("boom")
	if _, err := s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want %v", err, boom)
	}
	seq, err := s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
		return testSeq(3, 10), nil
	})
	if err != nil || seq == nil {
		t.Fatalf("retry after failure: seq=%v err=%v", seq, err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 entry", st)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("spilled")
	want := testSeq(4, 256)

	first := mustStore(t, Config{Dir: dir})
	if _, err := first.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
		return want, nil
	}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	if st := first.Stats(); st.SpillWrites != 1 {
		t.Fatalf("spill writes = %d, want 1", st.SpillWrites)
	}

	// A second store sharing the dir must load from disk, not compute.
	second := mustStore(t, Config{Dir: dir})
	got, err := second.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
		t.Fatal("compute ran despite a valid spill")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("spill load: %v", err)
	}
	if st := second.Stats(); st.SpillHits != 1 {
		t.Fatalf("spill hits = %d, want 1", st.SpillHits)
	}
	if got.Scheme != want.Scheme || got.TotalBytes != want.TotalBytes ||
		len(got.Frames) != 1 || string(got.Frames[0].Data) != string(want.Frames[0].Data) {
		t.Fatalf("spill round-trip mismatch: got %+v", got)
	}
	if got.Counters != want.Counters {
		t.Fatal("counters did not survive the spill")
	}
}

func TestCorruptSpillRecomputes(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("corrupt")
	path := filepath.Join(dir, key.String()+".pbseq")
	if err := os.WriteFile(path, []byte("not a sequence"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustStore(t, Config{Dir: dir})
	ran := false
	seq, err := s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
		ran = true
		return testSeq(5, 32), nil
	})
	if err != nil || seq == nil {
		t.Fatalf("GetOrCompute: seq=%v err=%v", seq, err)
	}
	if !ran {
		t.Fatal("corrupt spill was served instead of recomputing")
	}
	if st := s.Stats(); st.SpillHits != 0 || st.SpillWrites != 1 {
		t.Fatalf("stats = %+v, want 0 spill hits / 1 spill write (overwrite)", st)
	}
	// The rewritten spill must now be valid.
	var round codec.EncodedSequence
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := round.UnmarshalBinary(data); err != nil {
		t.Fatalf("rewritten spill is invalid: %v", err)
	}
}

func TestObsMirrors(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustStore(t, Config{Metrics: reg})
	key := KeyOf("observed")
	for i := 0; i < 3; i++ {
		if _, err := s.GetOrCompute(key, func() (*codec.EncodedSequence, error) {
			return testSeq(6, 50), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["bitcache.hits"] != 2 || snap["bitcache.misses"] != 1 {
		t.Fatalf("snapshot = %v, want 2 hits / 1 miss", snap)
	}
	if snap["bitcache.entries"] != 1 || snap["bitcache.bytes"] <= 0 {
		t.Fatalf("snapshot gauges = %v, want 1 entry and positive bytes", snap)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Hits: 3, Misses: 2, Evictions: 1, Entries: 4, Bytes: 99}
	want := "bitcache: 3 hits, 2 misses, 1 evictions, 0 spill hits, 0 spill writes, 4 entries (99 bytes) resident"
	if got := st.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
