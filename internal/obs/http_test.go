package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMuxPprofSmoke pins the profiling endpoint's wiring: with pprof
// enabled the index page responds at /debug/pprof/ alongside /metrics;
// without it the path 404s (profiling stays opt-in).
func TestMuxPprofSmoke(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke.hits").Add(3)

	srv := httptest.NewServer(Mux(reg, true))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "smoke.hits") {
		t.Fatalf("GET /metrics = %d %q, want the registry snapshot", resp.StatusCode, body)
	}

	plain := httptest.NewServer(Mux(reg, false))
	defer plain.Close()
	resp, err = plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET /debug/pprof/ without -pprof = %d, want 404", resp.StatusCode)
	}
}
