package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSnapshotLockScope pins the copy-on-read contract: Snapshot's
// value-reading phase must not touch the registry lock. The test
// collects the metric table, then holds the registry mutex while
// reading values from the copy — if snapshotValues (re)acquired the
// lock this would deadlock, and the test would fail its timeout
// instead of completing. At 1k serving sessions the metrics endpoint
// walks thousands of histogram quantiles per scrape; holding the lock
// across that walk would stall session registration and removal.
func TestSnapshotLockScope(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Counter(fmt.Sprintf("s%d.frames", i)).Add(int64(i))
		r.Histogram(fmt.Sprintf("s%d.lat", i)).Observe(time.Duration(i) * time.Millisecond)
	}
	table := r.collect()

	done := make(chan map[string]float64, 1)
	r.mu.Lock()
	go func() { done <- snapshotValues(table) }()
	var snap map[string]float64
	select {
	case snap = <-done:
	case <-time.After(2 * time.Second):
		r.mu.Unlock()
		t.Fatal("snapshot value reading blocked on the registry lock")
	}
	r.mu.Unlock()

	if snap["s7.frames"] != 7 {
		t.Fatalf("s7.frames = %v, want 7", snap["s7.frames"])
	}
	if snap["s10.lat.count"] != 1 {
		t.Fatalf("s10.lat.count = %v, want 1", snap["s10.lat.count"])
	}

	// The collected table stays readable even after the entries are
	// unregistered: the copy owns its view, mutation of the registry
	// map cannot invalidate an in-flight scrape.
	r.RemovePrefix("s")
	late := snapshotValues(table)
	if late["s7.frames"] != 7 {
		t.Fatalf("post-removal read of collected table: s7.frames = %v, want 7", late["s7.frames"])
	}
}

// TestSnapshotConcurrentChurn hammers Snapshot against concurrent
// registration, mutation and removal — the serving layer's steady
// state with sessions starting and finishing during scrapes. Run under
// -race this pins that copy-on-read introduced no unsynchronised
// access.
func TestSnapshotConcurrentChurn(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			prefix := fmt.Sprintf("s%d.", i%8)
			r.Counter(prefix + "frames").Add(1)
			r.Histogram(prefix + "lat").Observe(time.Millisecond)
			if i%5 == 4 {
				r.RemovePrefix(prefix)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
