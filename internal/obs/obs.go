// Package obs is the repository's small observability layer: named
// counters, gauges and latency histograms collected in a Registry and
// exported as JSON over HTTP (the role expvar plays in larger
// systems, kept in-tree so the metric set stays typed and testable).
//
// All metric mutations are lock-free atomics, safe from any goroutine;
// the registry lock is taken only on metric registration, snapshot and
// removal — never on the hot path. The serving layer registers
// per-session metrics under a "s<id>." prefix and removes them when
// the session ends, so a long-lived server's registry stays bounded by
// its concurrent-session cap, not its lifetime session count.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 level (a value that can go
// up and down: queue depth, α̂, Intra_Th).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current level.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations in [2^i, 2^(i+1)) microseconds, bucket 0 also
// absorbs sub-microsecond values. 2^39 µs ≈ 6.4 days caps the range.
const histBuckets = 40

// Histogram is a fixed power-of-two-bucket latency histogram. All
// methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveValue(d.Microseconds())
}

// ObserveValue records one dimensionless value (a batch size, a queue
// depth sample) into the same power-of-two buckets. A histogram fed
// through ObserveValue exports the usual count/mean_us/p50_us/p95_us/
// p99_us snapshot fields; consumers read the _us-suffixed ones as
// plain units
// (the suffix names the field, not the quantity).
func (h *Histogram) ObserveValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sumUS.Add(v)
	b := 0
	for x := v; x > 1 && b < histBuckets-1; x >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/n) * time.Microsecond
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the upper edge of the bucket containing it. Bucket edges are powers
// of two, so the bound is within 2x of the true value.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<histBuckets) * time.Microsecond
}

// Merge folds another histogram's observations into h (bucket-wise
// sums). Reads and adds are individually atomic but the merge is not a
// consistent cut; callers merge quiescent histograms (a finished
// client's latency record into a run aggregate), where that is exact.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sumUS.Add(other.sumUS.Load())
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Registry is a named collection of metrics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on
// first use. It panics if name is already registered as another kind —
// metric names are code-chosen constants, so a clash is a programming
// error, not an input error.
func (r *Registry) Counter(name string) *Counter {
	return register(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return register(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return register(r, name, func() *Histogram { return &Histogram{} })
}

func register[T any](r *Registry, name string, make func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return t
	}
	m := make()
	r.metrics[name] = m
	return m
}

// RemovePrefix unregisters every metric whose name starts with prefix
// and returns how many were removed. The serving layer calls this as
// sessions end so the registry does not grow without bound.
func (r *Registry) RemovePrefix(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.metrics {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			delete(r.metrics, name)
			n++
		}
	}
	return n
}

// namedMetric is one entry of a collected metric table.
type namedMetric struct {
	name   string
	metric any
}

// collect copies the name→metric table under the registry lock. The
// returned slice references the live metric objects, whose reads are
// all atomic — so value reading happens outside the lock.
func (r *Registry) collect() []namedMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]namedMetric, 0, len(r.metrics))
	for name, m := range r.metrics {
		out = append(out, namedMetric{name, m})
	}
	return out
}

// snapshotValues reads every collected metric into the flat snapshot
// form. It takes no locks: metric reads are atomics, and the slice is
// a private copy of the table. Keeping this phase lock-free is what
// stops a slow metrics scrape (thousands of per-session metrics, each
// histogram a 40-bucket quantile walk) from stalling registration and
// removal on the serving layer's session start/finish path.
func snapshotValues(ms []namedMetric) map[string]float64 {
	out := make(map[string]float64, len(ms))
	for _, nm := range ms {
		switch m := nm.metric.(type) {
		case *Counter:
			out[nm.name] = float64(m.Value())
		case *Gauge:
			out[nm.name] = m.Value()
		case *Histogram:
			out[nm.name+".count"] = float64(m.Count())
			out[nm.name+".mean_us"] = float64(m.Mean().Microseconds())
			out[nm.name+".p50_us"] = float64(m.Quantile(0.50).Microseconds())
			out[nm.name+".p95_us"] = float64(m.Quantile(0.95).Microseconds())
			out[nm.name+".p99_us"] = float64(m.Quantile(0.99).Microseconds())
		}
	}
	return out
}

// Snapshot returns a point-in-time flat view of every metric, with
// histograms expanded into count/mean_us/p50_us/p95_us/p99_us fields. The
// registry lock is held only while copying the metric table, never
// while reading values (copy-on-read — see snapshotValues), so the
// observability endpoint cannot stall metric registration no matter
// how many sessions are live. Values are read per metric without a
// global atomic cut, exactly as before.
func (r *Registry) Snapshot() map[string]float64 {
	return snapshotValues(r.collect())
}

// ServeHTTP implements http.Handler: the snapshot as a sorted,
// indented JSON object — the server's observability endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	// Hand-rolled object so keys stay sorted (encoding/json sorts map
	// keys too, but building explicitly keeps float formatting stable).
	fmt.Fprintln(w, "{")
	for i, k := range keys {
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		kb, _ := json.Marshal(k)
		fmt.Fprintf(w, "  %s: %s%s\n", kb, formatValue(snap[k]), comma)
	}
	fmt.Fprintln(w, "}")
}

// formatValue renders integral values without an exponent or trailing
// zeros so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
