package obs

import (
	"net/http"
	"net/http/pprof"
)

// Mux builds the observability HTTP mux: the registry's JSON snapshot
// at /metrics and, when withPprof is set, the standard runtime
// profiling handlers under /debug/pprof/ (CPU, heap, goroutine, trace
// — everything `go tool pprof` consumes). Profiling is opt-in because
// the endpoint exposes process internals and a CPU profile costs real
// cycles; the serving binary gates it behind its -pprof flag.
func Mux(reg *Registry, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	if withPprof {
		// net/http/pprof self-registers on DefaultServeMux, which this
		// server never serves; mount its handlers here explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
