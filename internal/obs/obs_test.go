package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets")
	c.Add(3)
	r.Counter("packets").Add(2) // same instance on re-lookup
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("alpha")
	g.Set(0.25)
	if got := r.Gauge("alpha").Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket [64µs, 128µs)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond) // bucket [4096µs, 8192µs)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 != 128*time.Microsecond {
		t.Fatalf("p50 = %v, want 128µs bucket edge", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 8192*time.Microsecond {
		t.Fatalf("p99 = %v, want 8192µs bucket edge", p99)
	}
	if mean := h.Mean(); mean < 400*time.Microsecond || mean > 800*time.Microsecond {
		t.Fatalf("mean = %v, want ≈ 590µs", mean)
	}
}

func TestHistogramP95Snapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 94 fast + 6 slow: p50 in the fast bucket, p95 and p99 in the slow.
	for i := 0; i < 94; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 6; i++ {
		h.Observe(5 * time.Millisecond)
	}
	snap := r.Snapshot()
	if got := snap["lat.p50_us"]; got != 128 {
		t.Fatalf("p50_us = %v, want 128", got)
	}
	if got := snap["lat.p95_us"]; got != 8192 {
		t.Fatalf("p95_us = %v, want 8192", got)
	}
	if got := snap["lat.p99_us"]; got != 8192 {
		t.Fatalf("p99_us = %v, want 8192", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 60; i++ {
		a.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 40; i++ {
		b.Observe(5 * time.Millisecond)
	}
	var all Histogram
	all.Merge(&a)
	all.Merge(&b)
	all.Merge(nil) // no-op
	if all.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", all.Count())
	}
	if p50 := all.Quantile(0.50); p50 != 128*time.Microsecond {
		t.Fatalf("merged p50 = %v, want the fast bucket edge", p50)
	}
	if p99 := all.Quantile(0.99); p99 != 8192*time.Microsecond {
		t.Fatalf("merged p99 = %v, want the slow bucket edge", p99)
	}
	// The merge must sum means too, not just bucket counts.
	want := (60*100 + 40*5000) / 100
	if mean := all.Mean(); mean != time.Duration(want)*time.Microsecond {
		t.Fatalf("merged mean = %v, want %dµs", mean, want)
	}
}

func TestRemovePrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("s1.frames")
	r.Gauge("s1.alpha")
	r.Counter("s2.frames")
	r.Counter("server.sessions")
	if n := r.RemovePrefix("s1."); n != 2 {
		t.Fatalf("removed %d metrics, want 2", n)
	}
	snap := r.Snapshot()
	if _, ok := snap["s1.frames"]; ok {
		t.Fatal("s1.frames survived RemovePrefix")
	}
	if _, ok := snap["s2.frames"]; !ok {
		t.Fatal("s2.frames removed by mistake")
	}
}

func TestServeHTTPValidSortedJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.level").Set(1.5)
	r.Histogram("lat").Observe(time.Millisecond)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var decoded map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("endpoint emitted invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if decoded["b.count"] != 7 || decoded["a.level"] != 1.5 {
		t.Fatalf("unexpected values: %v", decoded)
	}
	if decoded["lat.count"] != 1 {
		t.Fatalf("histogram not expanded: %v", decoded)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("hits").Add(1)
				r.Gauge("depth").Set(float64(i))
				r.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 2000 {
		t.Fatalf("hits = %d, want 2000", got)
	}
}
