// Package entropy implements the VLC / VLD stage of the codec: zigzag
// scanning, (last, run, level) event coding with a static Huffman-style
// table plus escape codes, and Exp-Golomb codes for headers and motion
// vectors.
//
// The structure mirrors H.263's TCOEF coding — a static variable-length
// table over the common (last, run, level) events with a fixed-length
// escape for the rest — but the code table itself is derived from a
// synthetic frequency model rather than copied from the H.263 Annex
// (see DESIGN.md, substitution 3). Every property the paper relies on
// is preserved: common events cost few bits, rare ones more, and the
// stream is uniquely decodable.
package entropy

import (
	"fmt"
	"math/bits"

	"pbpair/internal/bitstream"
)

// maxUE is the largest value WriteUE accepts; codes stay within 61 bits
// and comfortably inside the reader's 32-bit field unit.
const maxUE = 1<<30 - 2

// WriteUE writes v as an unsigned Exp-Golomb code: for v+1 with bit
// length n, it emits n-1 zero bits followed by the n bits of v+1.
func WriteUE(w *bitstream.Writer, v uint32) error {
	if v > maxUE {
		return fmt.Errorf("entropy: ue value %d out of range", v)
	}
	n := uint(bits.Len32(v + 1))
	w.WriteBits(0, n-1)
	w.WriteBits(v+1, n)
	return nil
}

// ReadUE reads an unsigned Exp-Golomb code.
func ReadUE(r *bitstream.Reader) (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		// WriteUE never emits more than 29 zeros (v+1 < 2^30), so a
		// longer prefix is corruption; accepting it would also let the
		// decoded value overflow maxUE.
		if zeros > 29 {
			return 0, fmt.Errorf("entropy: ue prefix too long (corrupt stream)")
		}
	}
	if zeros == 0 {
		return 0, nil
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<zeros | rest) - 1, nil
}

// WriteSE writes v as a signed Exp-Golomb code using the standard
// zigzag mapping: positive v maps to 2v−1, non-positive v to −2v.
func WriteSE(w *bitstream.Writer, v int32) error {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	return WriteUE(w, u)
}

// ReadSE reads a signed Exp-Golomb code.
func ReadSE(r *bitstream.Reader) (int32, error) {
	u, err := ReadUE(r)
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}
