package entropy

import (
	"fmt"
	"sort"

	"pbpair/internal/bitstream"
)

// TCOEF-style variable-length coding of events.
//
// A static Huffman code covers the common region of the event space
// (run 0..10, |level| 1..6, both LAST values), with a fixed-length
// escape for everything else — the same shape as H.263's TCOEF table.
// The code is built once at init from a synthetic frequency model
// (geometric decay in run and level, LAST events 4x rarer) and is
// immutable afterwards.

const (
	tcoefMaxRun   = 10
	tcoefMaxLevel = 6

	// escBits is the escape payload: LAST(1) + RUN(6) + LEVEL(12,
	// two's complement, nonzero).
	escLastBits  = 1
	escRunBits   = 6
	escLevelBits = 12
)

// symbolKey packs (last, run, |level|) for table lookup. |level| == 0
// denotes the escape symbol.
func symbolKey(last bool, run int, absLevel int32) uint32 {
	k := uint32(run)<<8 | uint32(absLevel)
	if last {
		k |= 1 << 16
	}
	return k
}

// vlcCode is one assigned codeword.
type vlcCode struct {
	bits uint32
	n    uint
}

// treeNode is a decode-tree node; children index into the node slice,
// -1 when absent. sym >= 0 marks a leaf (index into symbols).
type treeNode struct {
	child [2]int32
	sym   int32
}

var (
	tcoefEncode map[uint32]vlcCode
	tcoefTree   []treeNode
	tcoefSyms   []tcoefSymbol
	escapeKey   = symbolKey(false, 0, 0)
)

type tcoefSymbol struct {
	last     bool
	run      int
	absLevel int32 // 0 = escape
}

func init() {
	buildTCOEFTable()
}

// buildTCOEFTable constructs the static Huffman code. Deterministic:
// symbol order, integer frequencies and tie-breaking by first-created
// node are all fixed.
func buildTCOEFTable() {
	// Enumerate symbols with synthetic integer frequencies.
	type weighted struct {
		sym  tcoefSymbol
		freq int64
	}
	var ws []weighted
	for _, last := range []bool{false, true} {
		for run := 0; run <= tcoefMaxRun; run++ {
			for lvl := int32(1); lvl <= tcoefMaxLevel; lvl++ {
				// Geometric-ish decay: halve per 2 runs, quarter per
				// level step; LAST events 4x rarer. Integer math keeps
				// the table platform-independent.
				f := int64(1) << 40
				f >>= uint(run) // halve per run step
				f /= int64(lvl * lvl * lvl)
				if last {
					f >>= 2
				}
				if f < 1 {
					f = 1
				}
				ws = append(ws, weighted{tcoefSymbol{last, run, lvl}, f})
			}
		}
	}
	// Escape: roughly the mass of the uncovered tail.
	ws = append(ws, weighted{tcoefSymbol{false, 0, 0}, int64(1) << 33})

	tcoefSyms = make([]tcoefSymbol, len(ws))
	for i, w := range ws {
		tcoefSyms[i] = w.sym
	}

	// Huffman merge. Nodes are kept in a slice; each round merges the
	// two smallest (freq, id) nodes. O(n² log n) worst case is fine for
	// 133 symbols at init.
	type hnode struct {
		freq  int64
		id    int
		sym   int32 // leaf symbol index or -1
		l, r  int   // children ids or -1
		alive bool
	}
	nodes := make([]hnode, 0, 2*len(ws))
	for i, w := range ws {
		nodes = append(nodes, hnode{freq: w.freq, id: i, sym: int32(i), l: -1, r: -1, alive: true})
	}
	lessNode := func(i, j int) bool {
		if nodes[i].freq != nodes[j].freq {
			return nodes[i].freq < nodes[j].freq
		}
		return nodes[i].id < nodes[j].id
	}
	alive := len(nodes)
	for alive > 1 {
		// Find two smallest alive nodes (freq, then id).
		a, b := -1, -1
		for i := range nodes {
			if !nodes[i].alive {
				continue
			}
			if a == -1 || lessNode(i, a) {
				b = a
				a = i
			} else if b == -1 || lessNode(i, b) {
				b = i
			}
		}
		nodes[a].alive = false
		nodes[b].alive = false
		nodes = append(nodes, hnode{
			freq: nodes[a].freq + nodes[b].freq,
			id:   len(nodes), sym: -1, l: a, r: b, alive: true,
		})
		alive--
	}
	root := -1
	for i := range nodes {
		if nodes[i].alive {
			root = i
			break
		}
	}

	// Assign canonical codes by code length (shorter first, then symbol
	// order) so the table is reproducible regardless of merge details,
	// and build the decode tree from the canonical codes.
	depths := make(map[int32]uint, len(ws))
	var walk func(id int, depth uint)
	walk = func(id int, depth uint) {
		n := &nodes[id]
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1 // degenerate single-symbol tree
			}
			depths[n.sym] = depth
			return
		}
		walk(n.l, depth+1)
		walk(n.r, depth+1)
	}
	walk(root, 0)

	order := make([]int32, 0, len(ws))
	for s := range ws {
		order = append(order, int32(s))
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := depths[order[i]], depths[order[j]]
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	tcoefEncode = make(map[uint32]vlcCode, len(ws))
	tcoefTree = []treeNode{{child: [2]int32{-1, -1}, sym: -1}}
	var code uint32
	var prevLen uint
	for _, s := range order {
		length := depths[s]
		code <<= length - prevLen
		prevLen = length
		sym := tcoefSyms[s]
		tcoefEncode[symbolKey(sym.last, sym.run, sym.absLevel)] = vlcCode{bits: code, n: length}
		insertCode(code, length, s)
		code++
	}
}

// insertCode adds a canonical codeword to the decode tree.
func insertCode(code uint32, length uint, sym int32) {
	cur := int32(0)
	for i := int(length) - 1; i >= 0; i-- {
		bit := (code >> uint(i)) & 1
		next := tcoefTree[cur].child[bit]
		if next == -1 {
			tcoefTree = append(tcoefTree, treeNode{child: [2]int32{-1, -1}, sym: -1})
			next = int32(len(tcoefTree) - 1)
			tcoefTree[cur].child[bit] = next
		}
		cur = next
	}
	tcoefTree[cur].sym = sym
}

// WriteEvent encodes one event. In-table events cost their Huffman code
// plus a sign bit; out-of-table events cost the escape code plus 19
// fixed bits.
func WriteEvent(w *bitstream.Writer, e Event) error {
	if !e.Valid() {
		return fmt.Errorf("entropy: cannot encode invalid event %+v", e)
	}
	abs := e.Level
	sign := uint32(0)
	if abs < 0 {
		abs = -abs
		sign = 1
	}
	if e.Run <= tcoefMaxRun && abs <= tcoefMaxLevel {
		c := tcoefEncode[symbolKey(e.Last, e.Run, abs)]
		w.WriteBits(c.bits, c.n)
		w.WriteBits(sign, 1)
		return nil
	}
	esc := tcoefEncode[escapeKey]
	w.WriteBits(esc.bits, esc.n)
	last := uint32(0)
	if e.Last {
		last = 1
	}
	w.WriteBits(last, escLastBits)
	w.WriteBits(uint32(e.Run), escRunBits)
	w.WriteBits(uint32(e.Level)&(1<<escLevelBits-1), escLevelBits)
	return nil
}

// EventBits returns the exact cost in bits of encoding e, without
// touching a writer. Used by rate-estimation paths.
func EventBits(e Event) int {
	abs := e.Level
	if abs < 0 {
		abs = -abs
	}
	if e.Run <= tcoefMaxRun && abs <= tcoefMaxLevel {
		return int(tcoefEncode[symbolKey(e.Last, e.Run, abs)].n) + 1
	}
	return int(tcoefEncode[escapeKey].n) + escLastBits + escRunBits + escLevelBits
}

// ReadEvent decodes one event.
func ReadEvent(r *bitstream.Reader) (Event, error) {
	cur := int32(0)
	for tcoefTree[cur].sym < 0 {
		bit, err := r.ReadBit()
		if err != nil {
			return Event{}, err
		}
		next := tcoefTree[cur].child[bit]
		if next == -1 {
			return Event{}, fmt.Errorf("entropy: invalid TCOEF code")
		}
		cur = next
	}
	sym := tcoefSyms[tcoefTree[cur].sym]
	if sym.absLevel == 0 {
		// Escape.
		lastBit, err := r.ReadBits(escLastBits)
		if err != nil {
			return Event{}, err
		}
		run, err := r.ReadBits(escRunBits)
		if err != nil {
			return Event{}, err
		}
		raw, err := r.ReadBits(escLevelBits)
		if err != nil {
			return Event{}, err
		}
		level := int32(raw)
		if level >= 1<<(escLevelBits-1) {
			level -= 1 << escLevelBits
		}
		e := Event{Last: lastBit == 1, Run: int(run), Level: level}
		if !e.Valid() {
			return Event{}, fmt.Errorf("entropy: invalid escaped event %+v", e)
		}
		return e, nil
	}
	sign, err := r.ReadBits(1)
	if err != nil {
		return Event{}, err
	}
	level := sym.absLevel
	if sign == 1 {
		level = -level
	}
	return Event{Last: sym.last, Run: sym.run, Level: level}, nil
}
