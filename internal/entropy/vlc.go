package entropy

import (
	"fmt"
	"sort"

	"pbpair/internal/bitstream"
)

// TCOEF-style variable-length coding of events.
//
// A static Huffman code covers the common region of the event space
// (run 0..10, |level| 1..6, both LAST values), with a fixed-length
// escape for everything else — the same shape as H.263's TCOEF table.
// The code is built once at init from a synthetic frequency model
// (geometric decay in run and level, LAST events 4x rarer) and is
// immutable afterwards.

const (
	tcoefMaxRun   = 10
	tcoefMaxLevel = 6

	// escBits is the escape payload: LAST(1) + RUN(6) + LEVEL(12,
	// two's complement, nonzero).
	escLastBits  = 1
	escRunBits   = 6
	escLevelBits = 12
)

// symbolKey packs (last, run, |level|) for table lookup. |level| == 0
// denotes the escape symbol.
func symbolKey(last bool, run int, absLevel int32) uint32 {
	k := uint32(run)<<8 | uint32(absLevel)
	if last {
		k |= 1 << 16
	}
	return k
}

// vlcCode is one assigned codeword.
type vlcCode struct {
	bits uint32
	n    uint
}

// treeNode is a decode-tree node; children index into the node slice,
// -1 when absent. sym >= 0 marks a leaf (index into symbols).
type treeNode struct {
	child [2]int32
	sym   int32
}

var (
	tcoefEncode map[uint32]vlcCode
	tcoefTree   []treeNode
	tcoefSyms   []tcoefSymbol
	escapeKey   = symbolKey(false, 0, 0)
)

type tcoefSymbol struct {
	last     bool
	run      int
	absLevel int32 // 0 = escape
}

func init() {
	buildTCOEFTable()
	buildTCOEFLookup()
}

// buildTCOEFTable constructs the static Huffman code. Deterministic:
// symbol order, integer frequencies and tie-breaking by first-created
// node are all fixed.
func buildTCOEFTable() {
	// Enumerate symbols with synthetic integer frequencies.
	type weighted struct {
		sym  tcoefSymbol
		freq int64
	}
	var ws []weighted
	for _, last := range []bool{false, true} {
		for run := 0; run <= tcoefMaxRun; run++ {
			for lvl := int32(1); lvl <= tcoefMaxLevel; lvl++ {
				// Geometric-ish decay: halve per 2 runs, quarter per
				// level step; LAST events 4x rarer. Integer math keeps
				// the table platform-independent.
				f := int64(1) << 40
				f >>= uint(run) // halve per run step
				f /= int64(lvl * lvl * lvl)
				if last {
					f >>= 2
				}
				if f < 1 {
					f = 1
				}
				ws = append(ws, weighted{tcoefSymbol{last, run, lvl}, f})
			}
		}
	}
	// Escape: roughly the mass of the uncovered tail.
	ws = append(ws, weighted{tcoefSymbol{false, 0, 0}, int64(1) << 33})

	tcoefSyms = make([]tcoefSymbol, len(ws))
	for i, w := range ws {
		tcoefSyms[i] = w.sym
	}

	// Huffman merge. Nodes are kept in a slice; each round merges the
	// two smallest (freq, id) nodes. O(n² log n) worst case is fine for
	// 133 symbols at init.
	type hnode struct {
		freq  int64
		id    int
		sym   int32 // leaf symbol index or -1
		l, r  int   // children ids or -1
		alive bool
	}
	nodes := make([]hnode, 0, 2*len(ws))
	for i, w := range ws {
		nodes = append(nodes, hnode{freq: w.freq, id: i, sym: int32(i), l: -1, r: -1, alive: true})
	}
	lessNode := func(i, j int) bool {
		if nodes[i].freq != nodes[j].freq {
			return nodes[i].freq < nodes[j].freq
		}
		return nodes[i].id < nodes[j].id
	}
	alive := len(nodes)
	for alive > 1 {
		// Find two smallest alive nodes (freq, then id).
		a, b := -1, -1
		for i := range nodes {
			if !nodes[i].alive {
				continue
			}
			if a == -1 || lessNode(i, a) {
				b = a
				a = i
			} else if b == -1 || lessNode(i, b) {
				b = i
			}
		}
		nodes[a].alive = false
		nodes[b].alive = false
		nodes = append(nodes, hnode{
			freq: nodes[a].freq + nodes[b].freq,
			id:   len(nodes), sym: -1, l: a, r: b, alive: true,
		})
		alive--
	}
	root := -1
	for i := range nodes {
		if nodes[i].alive {
			root = i
			break
		}
	}

	// Assign canonical codes by code length (shorter first, then symbol
	// order) so the table is reproducible regardless of merge details,
	// and build the decode tree from the canonical codes.
	depths := make(map[int32]uint, len(ws))
	var walk func(id int, depth uint)
	walk = func(id int, depth uint) {
		n := &nodes[id]
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1 // degenerate single-symbol tree
			}
			depths[n.sym] = depth
			return
		}
		walk(n.l, depth+1)
		walk(n.r, depth+1)
	}
	walk(root, 0)

	order := make([]int32, 0, len(ws))
	for s := range ws {
		order = append(order, int32(s))
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := depths[order[i]], depths[order[j]]
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	tcoefEncode = make(map[uint32]vlcCode, len(ws))
	tcoefTree = []treeNode{{child: [2]int32{-1, -1}, sym: -1}}
	var code uint32
	var prevLen uint
	for _, s := range order {
		length := depths[s]
		code <<= length - prevLen
		prevLen = length
		sym := tcoefSyms[s]
		tcoefEncode[symbolKey(sym.last, sym.run, sym.absLevel)] = vlcCode{bits: code, n: length}
		insertCode(code, length, s)
		code++
	}
}

// insertCode adds a canonical codeword to the decode tree.
func insertCode(code uint32, length uint, sym int32) {
	cur := int32(0)
	for i := int(length) - 1; i >= 0; i-- {
		bit := (code >> uint(i)) & 1
		next := tcoefTree[cur].child[bit]
		if next == -1 {
			tcoefTree = append(tcoefTree, treeNode{child: [2]int32{-1, -1}, sym: -1})
			next = int32(len(tcoefTree) - 1)
			tcoefTree[cur].child[bit] = next
		}
		cur = next
	}
	tcoefTree[cur].sym = sym
}

// WriteEvent encodes one event. In-table events cost their Huffman code
// plus a sign bit; out-of-table events cost the escape code plus 19
// fixed bits.
func WriteEvent(w *bitstream.Writer, e Event) error {
	if !e.Valid() {
		return fmt.Errorf("entropy: cannot encode invalid event %+v", e)
	}
	abs := e.Level
	sign := uint32(0)
	if abs < 0 {
		abs = -abs
		sign = 1
	}
	if e.Run <= tcoefMaxRun && abs <= tcoefMaxLevel {
		c := tcoefEncode[symbolKey(e.Last, e.Run, abs)]
		w.WriteBits(c.bits, c.n)
		w.WriteBits(sign, 1)
		return nil
	}
	esc := tcoefEncode[escapeKey]
	w.WriteBits(esc.bits, esc.n)
	last := uint32(0)
	if e.Last {
		last = 1
	}
	w.WriteBits(last, escLastBits)
	w.WriteBits(uint32(e.Run), escRunBits)
	w.WriteBits(uint32(e.Level)&(1<<escLevelBits-1), escLevelBits)
	return nil
}

// EventBits returns the exact cost in bits of encoding e, without
// touching a writer. Used by rate-estimation paths.
func EventBits(e Event) int {
	abs := e.Level
	if abs < 0 {
		abs = -abs
	}
	if e.Run <= tcoefMaxRun && abs <= tcoefMaxLevel {
		return int(tcoefEncode[symbolKey(e.Last, e.Run, abs)].n) + 1
	}
	return int(tcoefEncode[escapeKey].n) + escLastBits + escRunBits + escLevelBits
}

// vlcLookupBits is the peek width of the table-driven decoder: one
// lookup resolves any codeword of up to this many bits. Longer (rarer)
// codewords and invalid prefixes fall back to the tree walk.
const vlcLookupBits = 8

// vlcEntry is one prefix-lookup slot. n > 0 means the lookahead starts
// with a complete codeword: sym is the symbol index and n its length.
// n == 0 with sym >= 0 means the codeword is longer than the window:
// sym is the decode-tree node reached after consuming all
// vlcLookupBits bits, so decoding resumes mid-tree instead of
// restarting from the root. n == 0 with sym < 0 marks an invalid
// prefix (corrupt stream).
type vlcEntry struct {
	sym int16
	n   uint8
}

// tcoefLookup maps every possible vlcLookupBits-wide lookahead to the
// codeword it starts with (or the tree node it descends to). Built at
// init by walking the decode tree for each possible window.
var tcoefLookup [1 << vlcLookupBits]vlcEntry

// vlcFastEntry resolves a codeword AND its trailing sign bit in one
// lookup: level is already signed, run carries the LAST flag in its
// high bit, n is the total consumed width (codeword + sign). n == 0
// marks a miss. Only non-escape codewords with n+1 ≤ vlcLookupBits
// qualify; everything else goes through tcoefLookup or the tree walk.
type vlcFastEntry struct {
	level int16
	run   uint8 // run | vlcFastLast when LAST
	n     uint8
}

const vlcFastLast = 0x80

var tcoefFast [1 << vlcLookupBits]vlcFastEntry

// buildTCOEFLookup populates tcoefLookup and tcoefFast from the decode
// tree and canonical codes. Called from init after buildTCOEFTable.
func buildTCOEFLookup() {
	// tcoefLookup: walk the tree once per possible window.
	for i := range tcoefLookup {
		cur := int32(0)
		entry := vlcEntry{sym: -1, n: 0} // dead end unless the walk says otherwise
		for d := 0; d < vlcLookupBits; d++ {
			bit := i >> (vlcLookupBits - 1 - d) & 1
			next := tcoefTree[cur].child[bit]
			if next == -1 {
				break
			}
			cur = next
			if s := tcoefTree[cur].sym; s >= 0 {
				entry = vlcEntry{sym: int16(s), n: uint8(d) + 1}
				break
			}
			if d == vlcLookupBits-1 {
				entry = vlcEntry{sym: int16(cur), n: 0} // still inside the tree
			}
		}
		tcoefLookup[i] = entry
	}

	// tcoefFast: codeword + sign resolved together, for short
	// non-escape codewords.
	for _, sym := range tcoefSyms {
		c := tcoefEncode[symbolKey(sym.last, sym.run, sym.absLevel)]
		if sym.absLevel == 0 || c.n+1 > vlcLookupBits {
			continue
		}
		run := uint8(sym.run)
		if sym.last {
			run |= vlcFastLast
		}
		for sign := uint32(0); sign < 2; sign++ {
			lvl := int16(sym.absLevel)
			if sign == 1 {
				lvl = -lvl
			}
			sbase := (c.bits<<1 | sign) << (vlcLookupBits - c.n - 1)
			for i := uint32(0); i < 1<<(vlcLookupBits-c.n-1); i++ {
				tcoefFast[sbase|i] = vlcFastEntry{level: lvl, run: run, n: uint8(c.n) + 1}
			}
		}
	}
}

// ReadEvent decodes one event.
//
// Fast path: peek vlcLookupBits of lookahead, resolve the codeword
// with a single table access, and consume exactly its length. When the
// lookahead is too short (near end of stream), the prefix is invalid,
// or the codeword is longer than the table covers, it falls back to
// the bit-by-bit tree walk, which reproduces the reference error
// behavior exactly. Equivalence with ReadEventRef — same events, same
// errors, same reader position — is pinned by TestVLCDecodeEquiv and
// FuzzVLCDecodeEquiv.
func ReadEvent(r *bitstream.Reader) (Event, error) {
	if look, ok := r.Peek8(); ok {
		if e := tcoefFast[look]; e.n > 0 {
			r.ReadBits(uint(e.n)) // cannot fail: the peek saw these bits
			return Event{Last: e.run&vlcFastLast != 0, Run: int(e.run &^ vlcFastLast), Level: int32(e.level)}, nil
		}
		if e := tcoefLookup[look]; e.n > 0 {
			r.ReadBits(uint(e.n))
			return readEventTail(r, int32(e.sym))
		} else if e.sym >= 0 {
			// Codeword longer than the window: consume the peeked bits
			// and resume the tree walk mid-tree.
			r.ReadBits(vlcLookupBits)
			return readEventWalk(r, int32(e.sym))
		}
		return ReadEventRef(r) // invalid prefix: reproduce the reference error path
	}
	look, got := r.PeekBits(vlcLookupBits)
	if got == vlcLookupBits {
		if e := tcoefLookup[look]; e.n > 0 {
			r.ReadBits(uint(e.n)) // cannot fail: the peek saw these bits
			return readEventTail(r, int32(e.sym))
		}
	} else if got > 0 {
		// Short lookahead: left-align and only trust a hit whose
		// codeword fits in the bits actually present.
		if e := tcoefLookup[look<<(vlcLookupBits-got)]; e.n > 0 && uint(e.n) <= got {
			r.ReadBits(uint(e.n))
			return readEventTail(r, int32(e.sym))
		}
	}
	return ReadEventRef(r)
}

// readEventWalk finishes decoding a codeword from an interior decode-
// tree node, bit by bit — the continuation of ReadEventRef's loop for
// codewords longer than the lookup window. Behavior past the node is
// identical to the reference walk by construction: same bits, same
// error, same tail.
func readEventWalk(r *bitstream.Reader, cur int32) (Event, error) {
	for tcoefTree[cur].sym < 0 {
		bit, err := r.ReadBit()
		if err != nil {
			return Event{}, err
		}
		next := tcoefTree[cur].child[bit]
		if next == -1 {
			return Event{}, fmt.Errorf("entropy: invalid TCOEF code")
		}
		cur = next
	}
	return readEventTail(r, tcoefTree[cur].sym)
}

// readEventTail finishes decoding after the codeword for symbol index
// sym has been consumed: the escape payload for the escape symbol, the
// sign bit otherwise. Shared by the table-driven and reference
// decoders so their post-codeword behavior is identical by
// construction.
func readEventTail(r *bitstream.Reader, sym int32) (Event, error) {
	s := tcoefSyms[sym]
	if s.absLevel == 0 {
		// Escape.
		lastBit, err := r.ReadBits(escLastBits)
		if err != nil {
			return Event{}, err
		}
		run, err := r.ReadBits(escRunBits)
		if err != nil {
			return Event{}, err
		}
		raw, err := r.ReadBits(escLevelBits)
		if err != nil {
			return Event{}, err
		}
		level := int32(raw)
		if level >= 1<<(escLevelBits-1) {
			level -= 1 << escLevelBits
		}
		e := Event{Last: lastBit == 1, Run: int(run), Level: level}
		if !e.Valid() {
			return Event{}, fmt.Errorf("entropy: invalid escaped event %+v", e)
		}
		return e, nil
	}
	sign, err := r.ReadBits(1)
	if err != nil {
		return Event{}, err
	}
	level := s.absLevel
	if sign == 1 {
		level = -level
	}
	return Event{Last: s.last, Run: s.run, Level: level}, nil
}
