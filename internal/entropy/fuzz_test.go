package entropy

import (
	"testing"

	"pbpair/internal/bitstream"
)

// FuzzReadEvent: arbitrary bit streams must either decode into valid
// events or fail with an error — never panic, never emit an invalid
// event.
func FuzzReadEvent(f *testing.F) {
	var w bitstream.Writer
	for _, e := range []Event{
		{Run: 0, Level: 1},
		{Run: 5, Level: -3, Last: true},
		{Run: 40, Level: 900},
	} {
		w.Reset()
		if err := WriteEvent(&w, e); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), w.Bytes()...))
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bitstream.NewReader(data)
		for i := 0; i < 64; i++ {
			ev, err := ReadEvent(r)
			if err != nil {
				return // expected for corrupt input
			}
			if !ev.Valid() {
				t.Fatalf("decoded invalid event %+v", ev)
			}
		}
	})
}

// FuzzReadUE: Exp-Golomb decoding over arbitrary data never panics and
// never returns out-of-range values.
func FuzzReadUE(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0x04, 0x20})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bitstream.NewReader(data)
		for i := 0; i < 64; i++ {
			v, err := ReadUE(r)
			if err != nil {
				return
			}
			if v > maxUE {
				t.Fatalf("ue decoded out-of-range %d", v)
			}
		}
	})
}
