package entropy

import (
	"fmt"

	"pbpair/internal/video"
)

// Event is one (LAST, RUN, LEVEL) symbol of the TCOEF-style block
// coding: RUN zero coefficients in zigzag order followed by a nonzero
// coefficient of value LEVEL; LAST marks the final event of the block.
type Event struct {
	Last  bool
	Run   int   // zero-run length before the coefficient, 0..63
	Level int32 // nonzero coefficient level, ±1..±1024
}

// Valid reports whether the event is encodable.
func (e Event) Valid() bool {
	return e.Run >= 0 && e.Run < video.BlockSize*video.BlockSize &&
		e.Level != 0 && e.Level >= -1024 && e.Level <= 1024
}

// BlockEvents converts a quantised block into its event sequence in
// zigzag order, appending to dst. If skipDC is true, scan position 0
// (the intra DC, coded separately as a fixed-length field) is excluded.
// An all-zero (after skipping) block yields no events; callers signal
// that through the coded-block pattern instead.
func BlockEvents(levels *video.Block, skipDC bool, dst []Event) []Event {
	start := 0
	if skipDC {
		start = 1
	}
	run := 0
	first := len(dst)
	for i := start; i < len(levels); i++ {
		v := levels[zigzag[i]]
		if v == 0 {
			run++
			continue
		}
		dst = append(dst, Event{Run: run, Level: v})
		run = 0
	}
	if len(dst) > first {
		dst[len(dst)-1].Last = true
	}
	return dst
}

// EventsToBlock expands an event sequence back into a block in zigzag
// order. If skipDC is true, expansion starts at scan position 1 and
// position 0 is left untouched. Positions not covered by events are
// zeroed.
func EventsToBlock(events []Event, skipDC bool, dst *video.Block) error {
	start := 0
	if skipDC {
		start = 1
	}
	for i := start; i < len(dst); i++ {
		dst[zigzag[i]] = 0
	}
	pos := start
	for n, e := range events {
		if !e.Valid() {
			return fmt.Errorf("entropy: invalid event %+v", e)
		}
		pos += e.Run
		if pos >= len(dst) {
			return fmt.Errorf("entropy: events overflow block at event %d (pos %d)", n, pos)
		}
		dst[zigzag[pos]] = e.Level
		pos++
		if e.Last && n != len(events)-1 {
			return fmt.Errorf("entropy: LAST set on non-final event %d", n)
		}
	}
	if len(events) > 0 && !events[len(events)-1].Last {
		return fmt.Errorf("entropy: final event missing LAST flag")
	}
	return nil
}
