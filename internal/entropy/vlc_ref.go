package entropy

import (
	"fmt"

	"pbpair/internal/bitstream"
)

// ReadEventRef is the reference (bit-by-bit tree walk) TCOEF decoder —
// the original implementation of ReadEvent, kept exported as ground
// truth for the differential harness (TestVLCDecodeEquiv /
// FuzzVLCDecodeEquiv). The table-driven ReadEvent must match it on
// every observable: decoded event, error, and reader position, for
// arbitrary (including corrupt and truncated) input.
func ReadEventRef(r *bitstream.Reader) (Event, error) {
	cur := int32(0)
	for tcoefTree[cur].sym < 0 {
		bit, err := r.ReadBit()
		if err != nil {
			return Event{}, err
		}
		next := tcoefTree[cur].child[bit]
		if next == -1 {
			return Event{}, fmt.Errorf("entropy: invalid TCOEF code")
		}
		cur = next
	}
	return readEventTail(r, tcoefTree[cur].sym)
}
