package entropy

import (
	"math/rand"
	"testing"

	"pbpair/internal/bitstream"
)

// Differential harness: the table-driven ReadEvent must match the
// bit-by-bit tree walk ReadEventRef on every observable — decoded
// event, error presence, and reader position — for valid streams,
// corrupt streams, and truncations.

// TestVLCTableCoversAllCodes sanity-checks the lookup build: every
// codeword short enough for the table must resolve through it with the
// right symbol and length.
func TestVLCTableCoversAllCodes(t *testing.T) {
	covered := 0
	for s, sym := range tcoefSyms {
		c := tcoefEncode[symbolKey(sym.last, sym.run, sym.absLevel)]
		if c.n > vlcLookupBits {
			continue
		}
		covered++
		idx := c.bits << (vlcLookupBits - c.n)
		e := tcoefLookup[idx]
		if int(e.sym) != s || uint(e.n) != c.n {
			t.Errorf("symbol %d (len %d): lookup gives sym %d len %d", s, c.n, e.sym, e.n)
		}
	}
	if covered == 0 {
		t.Fatal("no codewords covered by the lookup table; fast path dead")
	}
	t.Logf("lookup covers %d/%d symbols (≤ %d bits)", covered, len(tcoefSyms), vlcLookupBits)
}

func TestVLCDecodeEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Valid streams: random event sequences round-tripped.
	for trial := 0; trial < 200; trial++ {
		var w bitstream.Writer
		nEvents := rng.Intn(40) + 1
		for i := 0; i < nEvents; i++ {
			e := Event{
				Run:   rng.Intn(64),
				Level: int32(rng.Intn(2049) - 1024),
				Last:  rng.Intn(4) == 0,
			}
			if e.Level == 0 {
				e.Level = 1
			}
			if err := WriteEvent(&w, e); err != nil {
				t.Fatal(err)
			}
		}
		data := w.Bytes()
		compareDecoders(t, data, 2*nEvents)
	}

	// Corrupt/truncated streams: random bytes.
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.Intn(48))
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		compareDecoders(t, data, 64)
	}
}

// compareDecoders runs both decoders over data until first error and
// asserts identical events, errors and positions at every step.
func compareDecoders(t *testing.T, data []byte, maxEvents int) {
	t.Helper()
	fast := bitstream.NewReader(data)
	ref := bitstream.NewReader(data)
	for i := 0; i < maxEvents; i++ {
		ev, err := ReadEvent(fast)
		rv, rerr := ReadEventRef(ref)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("event %d: error diverges: fast %v ref %v (data %x)", i, err, rerr, data)
		}
		if err == nil && ev != rv {
			t.Fatalf("event %d: fast %+v ref %+v (data %x)", i, ev, rv, data)
		}
		if fast.BitPos() != ref.BitPos() {
			t.Fatalf("event %d: BitPos fast %d ref %d (data %x)", i, fast.BitPos(), ref.BitPos(), data)
		}
		if err != nil {
			return
		}
	}
}

// FuzzVLCDecodeEquiv extends the same comparison to fuzzer-chosen byte
// streams — the fuzzer is free to construct valid prefixes, escapes,
// emulation-prevention patterns and truncations.
func FuzzVLCDecodeEquiv(f *testing.F) {
	var w bitstream.Writer
	for _, e := range []Event{
		{Run: 0, Level: 1},
		{Run: 5, Level: -3, Last: true},
		{Run: 40, Level: 900},
		{Run: 63, Level: -1024, Last: true},
	} {
		w.Reset()
		if err := WriteEvent(&w, e); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), w.Bytes()...))
	}
	f.Add([]byte{0x00, 0x00, 0x03, 0x01})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		compareDecoders(t, data, 64)
	})
}
