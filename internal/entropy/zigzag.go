package entropy

import "pbpair/internal/video"

// zigzag[i] is the raster index of the i-th coefficient in zigzag scan
// order; inverseZigzag is its inverse permutation. Both are derived at
// init by walking the anti-diagonals, which is equivalent to the
// classic hard-coded 8x8 table (verified by tests).
var (
	zigzag        [video.BlockSize * video.BlockSize]int
	inverseZigzag [video.BlockSize * video.BlockSize]int
)

func init() {
	const n = video.BlockSize
	i := 0
	for d := 0; d < 2*n-1; d++ {
		// Walk each anti-diagonal, alternating direction: even
		// diagonals go up-right, odd go down-left.
		if d%2 == 0 {
			r := d
			if r > n-1 {
				r = n - 1
			}
			c := d - r
			for r >= 0 && c < n {
				zigzag[i] = r*n + c
				i++
				r--
				c++
			}
		} else {
			c := d
			if c > n-1 {
				c = n - 1
			}
			r := d - c
			for c >= 0 && r < n {
				zigzag[i] = r*n + c
				i++
				r++
				c--
			}
		}
	}
	for idx, raster := range zigzag {
		inverseZigzag[raster] = idx
	}
}

// ZigzagIndex returns the raster index of scan position i.
func ZigzagIndex(i int) int { return zigzag[i] }

// ScanPosition returns the zigzag scan position of raster index r.
func ScanPosition(r int) int { return inverseZigzag[r] }
