package entropy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbpair/internal/bitstream"
	"pbpair/internal/video"
)

// Known first and last entries of the classic 8x8 zigzag order.
func TestZigzagKnownValues(t *testing.T) {
	want := []int{0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5}
	for i, w := range want {
		if got := ZigzagIndex(i); got != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, got, w)
		}
	}
	if got := ZigzagIndex(63); got != 63 {
		t.Fatalf("zigzag[63] = %d, want 63", got)
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := make(map[int]bool, 64)
	for i := 0; i < 64; i++ {
		r := ZigzagIndex(i)
		if r < 0 || r >= 64 || seen[r] {
			t.Fatalf("zigzag[%d] = %d invalid or duplicate", i, r)
		}
		seen[r] = true
		if ScanPosition(r) != i {
			t.Fatalf("ScanPosition(ZigzagIndex(%d)) = %d", i, ScanPosition(r))
		}
	}
}

func TestEventValid(t *testing.T) {
	tests := []struct {
		name string
		e    Event
		want bool
	}{
		{"simple", Event{Run: 0, Level: 1}, true},
		{"max run", Event{Run: 63, Level: -1024}, true},
		{"zero level", Event{Run: 0, Level: 0}, false},
		{"negative run", Event{Run: -1, Level: 1}, false},
		{"run too long", Event{Run: 64, Level: 1}, false},
		{"level too big", Event{Run: 0, Level: 1025}, false},
		{"level too small", Event{Run: 0, Level: -1025}, false},
	}
	for _, tt := range tests {
		if got := tt.e.Valid(); got != tt.want {
			t.Errorf("%s: Valid() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestBlockEventsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, skipDC := range []bool{false, true} {
		for trial := 0; trial < 200; trial++ {
			var src video.Block
			// Sparse blocks with a few nonzero levels, codec-like.
			n := rng.Intn(12)
			for i := 0; i < n; i++ {
				src[rng.Intn(64)] = int32(rng.Intn(2049) - 1024)
			}
			events := BlockEvents(&src, skipDC, nil)
			var dst video.Block
			if skipDC {
				dst[0] = src[0] // DC carried out of band
			}
			if err := EventsToBlock(events, skipDC, &dst); err != nil {
				t.Fatalf("skipDC=%v trial %d: EventsToBlock: %v", skipDC, trial, err)
			}
			if dst != src {
				t.Fatalf("skipDC=%v trial %d: block mismatch\nsrc: %v\ndst: %v", skipDC, trial, src, dst)
			}
		}
	}
}

func TestBlockEventsEmptyBlock(t *testing.T) {
	var src video.Block
	if events := BlockEvents(&src, false, nil); len(events) != 0 {
		t.Fatalf("empty block produced %d events", len(events))
	}
	src[0] = 5 // only DC
	if events := BlockEvents(&src, true, nil); len(events) != 0 {
		t.Fatalf("DC-only block with skipDC produced %d events", len(events))
	}
}

func TestBlockEventsLastFlag(t *testing.T) {
	var src video.Block
	src[0] = 3
	src[63] = -7
	events := BlockEvents(&src, false, nil)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Last || !events[1].Last {
		t.Fatalf("LAST flags wrong: %+v", events)
	}
}

func TestEventsToBlockRejectsCorrupt(t *testing.T) {
	var dst video.Block
	tests := []struct {
		name   string
		events []Event
	}{
		{"missing last", []Event{{Run: 0, Level: 1}}},
		{"early last", []Event{{Run: 0, Level: 1, Last: true}, {Run: 0, Level: 2, Last: true}}},
		{"overflow", []Event{{Run: 63, Level: 1}, {Run: 5, Level: 2, Last: true}}},
		{"invalid event", []Event{{Run: 0, Level: 0, Last: true}}},
	}
	for _, tt := range tests {
		if err := EventsToBlock(tt.events, false, &dst); err == nil {
			t.Errorf("%s: corrupt events accepted", tt.name)
		}
	}
}

func TestUERoundTrip(t *testing.T) {
	var w bitstream.Writer
	vals := []uint32{0, 1, 2, 3, 7, 8, 100, 65535, maxUE}
	for _, v := range vals {
		if err := WriteUE(&w, v); err != nil {
			t.Fatalf("WriteUE(%d): %v", v, err)
		}
	}
	r := bitstream.NewReader(w.Bytes())
	for _, want := range vals {
		got, err := ReadUE(r)
		if err != nil {
			t.Fatalf("ReadUE: %v", err)
		}
		if got != want {
			t.Fatalf("ue round trip: got %d, want %d", got, want)
		}
	}
}

func TestUEKnownCodes(t *testing.T) {
	// ue(0) = "1", ue(1) = "010", ue(2) = "011".
	var w bitstream.Writer
	if err := WriteUE(&w, 0); err != nil {
		t.Fatal(err)
	}
	if w.BitLen() != 1 {
		t.Fatalf("ue(0) is %d bits, want 1", w.BitLen())
	}
	w.Reset()
	if err := WriteUE(&w, 1); err != nil {
		t.Fatal(err)
	}
	if w.BitLen() != 3 {
		t.Fatalf("ue(1) is %d bits, want 3", w.BitLen())
	}
}

func TestUERejectsHuge(t *testing.T) {
	var w bitstream.Writer
	if err := WriteUE(&w, maxUE+1); err == nil {
		t.Fatal("oversized ue accepted")
	}
}

func TestSERoundTripProperty(t *testing.T) {
	prop := func(v int32) bool {
		v %= 1 << 20
		var w bitstream.Writer
		if err := WriteSE(&w, v); err != nil {
			return false
		}
		got, err := ReadSE(bitstream.NewReader(w.Bytes()))
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadUECorrupt(t *testing.T) {
	// 40 zero bits: prefix longer than any legal code.
	r := bitstream.NewReader([]byte{0, 0, 0, 0, 0})
	if _, err := ReadUE(r); err == nil {
		t.Fatal("corrupt ue accepted")
	}
}

func TestEventVLCRoundTripExhaustiveTable(t *testing.T) {
	// Every in-table symbol round-trips, both signs.
	for _, last := range []bool{false, true} {
		for run := 0; run <= tcoefMaxRun; run++ {
			for lvl := int32(1); lvl <= tcoefMaxLevel; lvl++ {
				for _, sign := range []int32{1, -1} {
					e := Event{Last: last, Run: run, Level: lvl * sign}
					var w bitstream.Writer
					if err := WriteEvent(&w, e); err != nil {
						t.Fatalf("WriteEvent(%+v): %v", e, err)
					}
					got, err := ReadEvent(bitstream.NewReader(w.Bytes()))
					if err != nil {
						t.Fatalf("ReadEvent(%+v): %v", e, err)
					}
					if got != e {
						t.Fatalf("round trip %+v -> %+v", e, got)
					}
				}
			}
		}
	}
}

func TestEventVLCRoundTripEscapes(t *testing.T) {
	events := []Event{
		{Run: 11, Level: 1},
		{Run: 63, Level: -1024, Last: true},
		{Run: 0, Level: 7},
		{Run: 0, Level: -7, Last: true},
		{Run: 30, Level: 1024},
	}
	for _, e := range events {
		var w bitstream.Writer
		if err := WriteEvent(&w, e); err != nil {
			t.Fatalf("WriteEvent(%+v): %v", e, err)
		}
		got, err := ReadEvent(bitstream.NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("ReadEvent(%+v): %v", e, err)
		}
		if got != e {
			t.Fatalf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestEventVLCRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		events := make([]Event, count)
		var w bitstream.Writer
		for i := range events {
			lvl := int32(rng.Intn(2048) - 1024)
			if lvl == 0 {
				lvl = 1
			}
			events[i] = Event{
				Last:  rng.Intn(2) == 0,
				Run:   rng.Intn(64),
				Level: lvl,
			}
			if err := WriteEvent(&w, events[i]); err != nil {
				return false
			}
		}
		r := bitstream.NewReader(w.Bytes())
		for _, want := range events {
			got, err := ReadEvent(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteEventRejectsInvalid(t *testing.T) {
	var w bitstream.Writer
	if err := WriteEvent(&w, Event{Run: 0, Level: 0}); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestEventBitsMatchesWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		lvl := int32(rng.Intn(2048) - 1024)
		if lvl == 0 {
			lvl = -3
		}
		e := Event{Last: rng.Intn(2) == 0, Run: rng.Intn(64), Level: lvl}
		var w bitstream.Writer
		if err := WriteEvent(&w, e); err != nil {
			t.Fatal(err)
		}
		if got := EventBits(e); got != w.BitLen() {
			t.Fatalf("EventBits(%+v) = %d, writer emitted %d", e, got, w.BitLen())
		}
	}
}

// TestVLCShortCodesForCommonEvents: the whole point of a VLC — the
// most common event (run 0, level ±1, not last) must cost fewer bits
// than rare ones.
func TestVLCShortCodesForCommonEvents(t *testing.T) {
	common := EventBits(Event{Run: 0, Level: 1})
	rare := EventBits(Event{Run: 10, Level: 6, Last: true})
	escape := EventBits(Event{Run: 40, Level: 500})
	if common >= rare {
		t.Fatalf("common event %d bits >= rare event %d bits", common, rare)
	}
	if rare >= escape {
		t.Fatalf("rare in-table event %d bits >= escape %d bits", rare, escape)
	}
	if common > 6 {
		t.Fatalf("most common event costs %d bits; table is badly skewed", common)
	}
}

func TestReadEventCorrupt(t *testing.T) {
	// Empty stream.
	if _, err := ReadEvent(bitstream.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDecodeTreeComplete(t *testing.T) {
	// Every internal node must have both children (Huffman trees are
	// full), so any bit sequence either decodes or hits EOF — no dead
	// ends that would mask corrupt streams.
	for i, n := range tcoefTree {
		if n.sym >= 0 {
			continue
		}
		if n.child[0] == -1 || n.child[1] == -1 {
			t.Fatalf("decode tree node %d has a missing child", i)
		}
	}
}

func BenchmarkWriteEvent(b *testing.B) {
	var w bitstream.Writer
	e := Event{Run: 2, Level: -3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			w.Reset()
		}
		if err := WriteEvent(&w, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadEvent(b *testing.B) {
	var w bitstream.Writer
	for i := 0; i < 1024; i++ {
		if err := WriteEvent(&w, Event{Run: i % 11, Level: int32(i%6 + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	data := w.Bytes()
	b.ReportAllocs()
	r := bitstream.NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			r = bitstream.NewReader(data)
		}
		if _, err := ReadEvent(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadEventRef(b *testing.B) {
	var w bitstream.Writer
	for i := 0; i < 1024; i++ {
		if err := WriteEvent(&w, Event{Run: i % 11, Level: int32(i%6 + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	data := w.Bytes()
	b.ReportAllocs()
	r := bitstream.NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			r = bitstream.NewReader(data)
		}
		if _, err := ReadEventRef(r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVLCTableStability pins the derived Huffman table: the bit cost
// of a probe set of events must never change silently, because the
// table is part of the bitstream format (see also the codec package's
// golden bitstream test). Update these values only for a deliberate,
// documented format change.
func TestVLCTableStability(t *testing.T) {
	probes := []struct {
		e    Event
		bits int
	}{
		{Event{Run: 0, Level: 1}, 0},
		{Event{Run: 0, Level: -1}, 0},
		{Event{Run: 1, Level: 1}, 0},
		{Event{Run: 0, Level: 2}, 0},
		{Event{Run: 10, Level: 6, Last: true}, 0},
		{Event{Run: 40, Level: 500}, 0},
	}
	// First run: print the actual costs so a deliberate change can
	// copy them; the assertions below are against the recorded values.
	want := []int{3, 3, 4, 6, 22, 27}
	for i, p := range probes {
		got := EventBits(p.e)
		if got != want[i] {
			t.Errorf("EventBits(%+v) = %d, want %d (table drifted)", p.e, got, want[i])
		}
	}
}
