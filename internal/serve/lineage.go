package serve

import (
	"fmt"
	"math"
	"time"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// The serving layer's central observation: the encoder is
// deterministic. Two sessions with the same cohort key (content
// regime, QP, FEC group, interleave — everything the client's hello
// can vary that reaches the encoder or packetiser) and the same
// applied (α̂, Intra_Th) trajectory produce bit-identical packet
// streams. The farm therefore encodes once per *lineage* — a group of
// sessions whose streams are still provably identical — and fans the
// packets out to every member. The moment a member's feedback moves
// its knobs away from its lineage-mates (a lossy receiver raising α̂),
// it forks: the encoder, planner and packetiser are cloned
// copy-on-divergence and the member continues on its own lineage with
// an unbroken bitstream and sequence space.
//
// Forking is reversible. A transient loss blip forks a session off its
// cohort, but once its α̂ decays back to exactly 0 (reachable because
// the applied knob is quantised — Config.AlphaQuantum) the forked
// lineage's stream re-synchronises with its cohort-mates': at knobs
// (0, 0) the planner's σ history is provably output-irrelevant, so two
// lineages with equal encoder state (reference frame, frame number,
// configuration) and equal packetiser sequence position produce
// bit-identical futures. The scheduler detects this — digest prefilter,
// then a deep state comparison — and folds the fork back into its
// cohort-mate (lineage re-merge), so a recovered receiver goes back to
// costing a packet fanout instead of a private encode per frame.
//
// On a machine where encode dominates the frame budget this is what
// makes thousands-of-session serving possible at all: N no-loss
// sessions of one cohort cost one encode per frame plus N packet
// fanouts, not N encodes.

// cohortKey is the encode-affecting part of a client's hello. Sessions
// can share a lineage only when their keys are equal (server-side
// settings — MTU, search kind, worker count — are process-wide and so
// never split a cohort).
type cohortKey struct {
	regime     synth.Regime
	qp         int
	fec        int
	interleave int
}

func keyOf(h hello) cohortKey {
	return cohortKey{regime: h.Regime, qp: h.QP, fec: h.FECGroup, interleave: h.Interleave}
}

// name renders the key as a metric-name segment (the per-cohort
// shared-fraction gauges live under "server.cohort.<name>.").
func (k cohortKey) name() string {
	return fmt.Sprintf("%s_q%d_f%d_i%d", k.regime, k.qp, k.fec, k.interleave)
}

// lineageKnobs is one frame's applied control state. Partitioning
// compares bit patterns, not values: two applied knob sets that differ
// in the last ulp have genuinely diverged and must fork (an
// approximate match would silently desynchronise planner σ state from
// what the receiver decodes against). The α̂ reaching here is already
// quantised (session.knobs), so estimator noise below the quantum
// never splits a cohort — exact comparison and coarse partitioning
// compose instead of fighting.
type lineageKnobs struct {
	plr float64
	th  float64
}

// bits returns the exact-equality partition key.
func (k lineageKnobs) bits() [2]uint64 {
	return [2]uint64{math.Float64bits(k.plr), math.Float64bits(k.th)}
}

// lineage is a group of sessions advancing in lockstep through one
// shared encoder. All fields are scheduler-owned; the encode worker
// borrows enc/planner/src/pktz/fec/counters only while inflight is
// true, during which the scheduler keeps its hands off.
type lineage struct {
	id      uint32
	key     cohortKey
	members []*session

	// home is the receive-shard index of the lineage's founding member:
	// the sticky key for the farm's per-worker job queues (see
	// scheduler.enqueue). Keying by receive shard instead of lineage id
	// aligns a session's inbound datagram stream, its lineage's encodes
	// and its outbound sender on one worker index — soft core affinity
	// for the whole per-session datapath.
	home int

	frame    int       // next frame index to encode
	due      time.Time // pacing: earliest next dispatch
	formed   time.Time // first member's admission (cohort window gate)
	started  bool      // frame 0 dispatched; no more joins
	inflight bool      // an encode job is out for this lineage

	src          synth.Source
	planner      *core.PBPAIR
	enc          *codec.Encoder
	counters     energy.Counters // written by the worker during encode
	prevCounters energy.Counters // worker-owned between jobs
	pktz         *network.Packetizer
	fec          *network.FECEncoder
}

// oldestMember returns the smallest member session id — the lineage's
// scheduling priority. Load shedding defers lineages with the largest
// value first, so the newest sessions degrade before anyone else.
func (l *lineage) oldestMember() uint32 {
	oldest := ^uint32(0)
	for _, m := range l.members {
		if m.id < oldest {
			oldest = m.id
		}
	}
	return oldest
}

// stateMatches reports whether two same-cohort lineages have
// bit-identical forward-looking encode state: same next frame, same
// transport sequence position, and encoders whose output-relevant
// state (configuration, frame number, reference frame) is equal. The
// cheap fields and a digest run first; the full reference-frame
// comparison only confirms what the digest already said. Planner σ is
// deliberately not compared — the caller guarantees both lineages are
// quiescent (applied knobs exactly (0, 0)), and at (0, 0) σ cannot
// influence any mode decision: the intra-refresh comparison σ < Th is
// unsatisfiable at Th = 0, and the ME σ-penalty carries a factor of
// α̂ = 0. Divergent σ histories therefore produce identical bytes.
func (l *lineage) stateMatches(o *lineage) bool {
	return l.frame == o.frame &&
		l.pktz.Seq() == o.pktz.Seq() &&
		l.enc.StateDigest() == o.enc.StateDigest() &&
		l.enc.StateEqual(o.enc)
}

// removeMember drops m from the member list (order preserved —
// fan-out order is stable for determinism of tests and traces).
func (l *lineage) removeMember(m *session) {
	for i, x := range l.members {
		if x == m {
			l.members = append(l.members[:i], l.members[i+1:]...)
			return
		}
	}
}

// fork clones the lineage's encode state for a group of diverging
// members. Called by the scheduler before the parent's next dispatch,
// so parent and fork share every encoded frame up to — but not
// including — the frame about to be encoded. The clone is cheap
// relative to one encode: a reference frame copy plus planner σ state.
func (l *lineage) fork(id uint32, members []*session) (*lineage, error) {
	nl := &lineage{
		id:      id,
		key:     l.key,
		members: members,
		home:    shardIdx(members[0]),
		frame:   l.frame,
		due:     l.due,
		formed:  l.formed,
		started: l.started,
		src:     l.src, // sources are concurrency-safe and read-only
		planner: l.planner.Clone(),
		pktz:    l.pktz.Clone(),
	}
	nl.counters = l.counters
	nl.prevCounters = l.prevCounters
	var err error
	if nl.enc, err = l.enc.Clone(nl.planner, &nl.counters); err != nil {
		return nil, err
	}
	if l.fec != nil {
		// FEC group state is flushed at every frame boundary, so a
		// fresh encoder with the same group size is an exact clone.
		if nl.fec, err = network.NewFECEncoder(l.key.fec); err != nil {
			return nil, err
		}
	}
	for _, m := range members {
		m.lin = nl
		l.removeMember(m)
	}
	return nl, nil
}

// newPlanner builds a fresh PBPAIR planner for a w×h stream (frame 0
// state: error-free σ matrix, α = Th = 0).
func newPlanner(w, h int) (*core.PBPAIR, error) {
	return core.New(core.Config{
		Rows: h / 16, Cols: w / 16,
		IntraTh: 0, PLR: 0,
	})
}

// newLineageEncoder builds a lineage's encoder from its cohort key and
// the server-wide codec settings.
func newLineageEncoder(cfg *Config, key cohortKey, w, h int, planner *core.PBPAIR, counters *energy.Counters) (*codec.Encoder, error) {
	return codec.NewEncoder(codec.Config{
		Width: w, Height: h,
		QP:       key.qp,
		Search:   cfg.Search,
		Planner:  planner,
		Counters: counters,
		Workers:  cfg.Workers,
	})
}
