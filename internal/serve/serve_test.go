package serve

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"pbpair/internal/codec"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// waitGoroutines polls until the goroutine count settles back to at
// most want, failing the test otherwise. A couple of runtime-internal
// goroutines (netpoll, timer) may appear once per process; the slack
// absorbs them.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", n, want, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// meanWindow averages trace fields over points [lo, hi), skipping
// frames encoded before any feedback arrived (α̂ still exactly 0):
// IntraTh is discontinuous at α=0 (0 there, ≈1 just above), so mixing
// pre-feedback points into a window mean would be meaningless.
func meanWindow(trace []TracePoint, lo, hi int) (alpha, th float64, n int) {
	for _, p := range trace {
		if p.Frame >= lo && p.Frame < hi && p.Alpha > 0 {
			alpha += p.Alpha
			th += p.IntraTh
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return alpha / float64(n), th / float64(n), n
}

// runSoak drives sessions concurrent clients against one server, each
// with a seeded loss step at frame stepAt, and checks the closed loop
// end to end: clean finishes, feedback consumed, α̂ tracking the
// injected loss, Intra_Th retuned in the controller's direction
// (higher α̂ ⇒ lower threshold, holding the refresh interval), no
// goroutine leaks, clean shutdown.
func runSoak(t *testing.T, sessions, frames, stepAt int, interval time.Duration) {
	t.Helper()
	before := runtime.NumGoroutine()

	// Small MTU and a gentle estimator weight keep the statistics
	// honest: each report then covers ~16 packets instead of ~5, so a
	// report's binomial noise (σ ≈ √(p(1−p)/n)) stays well inside the
	// assertion margins below. The frame interval must comfortably
	// exceed sessions × encode-time so pacing binds even on one core —
	// otherwise the encoders free-run, the receiver goroutines starve,
	// and feedback arrives in bursts that lag by tens of frames.
	srv, err := New(Config{
		Addr:            "127.0.0.1:0",
		MaxSessions:     sessions,
		FrameInterval:   interval,
		QueueFrames:     64,
		MTU:             500,
		EstimatorWeight: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	const lossLow, lossHigh = 0.10, 0.40

	type result struct {
		sum *ClientSummary
		err error
	}
	results := make(chan result, sessions)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for c := 0; c < sessions; c++ {
		cfg := ClientConfig{
			Server:      srv.Addr().String(),
			Frames:      frames,
			Regime:      synth.RegimeForeman,
			ReportEvery: 2, // frequent reports keep feedback lag well under a window
			Drop:        StepLoss{Before: lossLow, After: lossHigh, At: stepAt},
			Seed:        uint64(1000 + c),
		}
		go func() {
			sum, err := RunClient(ctx, cfg)
			results <- result{sum, err}
		}()
	}
	for i := 0; i < sessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("client error: %v", r.err)
		}
		if r.sum.FramesFlushed != frames {
			t.Errorf("client flushed %d/%d frames", r.sum.FramesFlushed, frames)
		}
		if r.sum.Reports == 0 {
			t.Error("client sent no reports")
		}
		if r.sum.InjectedDrops == 0 {
			t.Error("loss schedule injected nothing")
		}
	}

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	sums := srv.Summaries()
	if len(sums) != sessions {
		t.Fatalf("server recorded %d summaries, want %d", len(sums), sessions)
	}
	for _, sum := range sums {
		if sum.Err != "" {
			t.Errorf("session %d finished with error: %s", sum.ID, sum.Err)
		}
		if sum.FramesEncoded != frames {
			t.Errorf("session %d encoded %d/%d frames", sum.ID, sum.FramesEncoded, frames)
		}
		if sum.Reports == 0 {
			t.Errorf("session %d consumed no receiver reports", sum.ID)
		}

		// The loss step must move the loop the right way: α̂ up toward
		// the injected rate, and Intra_Th down — the §3.2 rule holds
		// the refresh interval as σ decays faster (see the adaptive
		// example). Averaged windows keep the binomial report noise out.
		window := stepAt / 2
		earlyAlpha, earlyTh, earlyN := meanWindow(sum.Trace, stepAt-window, stepAt)
		lateAlpha, lateTh, lateN := meanWindow(sum.Trace, frames-window, frames)
		if earlyN < window/3 || lateN < window/3 {
			t.Fatalf("session %d: feedback too sparse to judge the loop (%d/%d usable early points, %d/%d late)",
				sum.ID, earlyN, window, lateN, window)
		}
		if lateAlpha <= earlyAlpha {
			t.Errorf("session %d: α̂ did not rise across the loss step: %.3f → %.3f",
				sum.ID, earlyAlpha, lateAlpha)
		}
		if lateAlpha < 0.15 {
			t.Errorf("session %d: α̂ = %.3f not tracking injected %.2f", sum.ID, lateAlpha, lossHigh)
		}
		if earlyAlpha > 0.25 {
			t.Errorf("session %d: pre-step α̂ = %.3f too high for injected %.2f", sum.ID, earlyAlpha, lossLow)
		}
		if lateTh >= earlyTh {
			t.Errorf("session %d: Intra_Th did not fall as α̂ rose: %.3f → %.3f (α̂ %.3f → %.3f)",
				sum.ID, earlyTh, lateTh, earlyAlpha, lateAlpha)
		}
	}

	// Per-session metrics must be gone from the registry; server-level
	// aggregates must survive.
	snap := srv.Registry().Snapshot()
	for name := range snap {
		if strings.HasPrefix(name, "s") && !strings.HasPrefix(name, "server.") {
			t.Errorf("per-session metric %q leaked past session end", name)
		}
	}
	if snap["server.sessions_completed"] != float64(sessions) {
		t.Errorf("server.sessions_completed = %v, want %d", snap["server.sessions_completed"], sessions)
	}

	waitGoroutines(t, before+2)
}

func TestSoakSingleSession(t *testing.T) {
	runSoak(t, 1, 120, 60, 3*time.Millisecond)
}

func TestSoakFourSessions(t *testing.T) {
	runSoak(t, 4, 100, 50, 10*time.Millisecond)
}

func TestAdmissionControl(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   1,
		FrameInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Occupy the only slot with a long-running client.
	occupied := make(chan struct{})
	holder := make(chan error, 1)
	go func() {
		sum, err := RunClient(ctx, ClientConfig{
			Server: srv.Addr().String(), Frames: 400, ReportEvery: 4,
		})
		_ = sum
		holder <- err
	}()
	for i := 0; i < 200; i++ {
		if srv.ActiveSessions() == 1 {
			close(occupied)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-occupied:
	default:
		t.Fatal("first session never became active")
	}

	_, err = RunClient(ctx, ClientConfig{Server: srv.Addr().String(), Frames: 10})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("second client: want RejectedError, got %v", err)
	}
	if !strings.Contains(rej.Reason, "capacity") {
		t.Fatalf("rejection reason %q does not mention capacity", rej.Reason)
	}

	// Invalid requests are rejected with their own reasons.
	if _, err := RunClient(ctx, ClientConfig{Server: srv.Addr().String(), Frames: 5, Regime: synth.Regime(99)}); !errors.As(err, &rej) {
		t.Fatalf("bad regime: want RejectedError, got %v", err)
	}

	// Graceful shutdown mid-stream: the holder's stream ends early but
	// cleanly — the client sees an End, not a timeout.
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-holder; err != nil {
		t.Fatalf("holder client after graceful shutdown: %v", err)
	}
	sums := srv.Summaries()
	if len(sums) != 1 {
		t.Fatalf("want 1 summary, got %d", len(sums))
	}
	if sums[0].Err != "" {
		t.Fatalf("graceful shutdown recorded an error: %s", sums[0].Err)
	}
	if sums[0].FramesEncoded >= 400 {
		t.Fatal("session ran to completion; shutdown was not mid-stream")
	}
	waitGoroutines(t, before+2)
}

func TestRejectAfterShutdown(t *testing.T) {
	srv, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if _, err := RunClient(ctx, ClientConfig{Server: addr, Frames: 5, HandshakeTimeout: 300 * time.Millisecond}); err == nil {
		t.Fatal("client connected to a shut-down server")
	}
}

func TestFECAndInterleaveSession(t *testing.T) {
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		FrameInterval: time.Millisecond,
		MTU:           400, // force multi-packet frames so interleave/FEC matter
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sum, err := RunClient(ctx, ClientConfig{
		Server:      srv.Addr().String(),
		Frames:      30,
		Regime:      synth.RegimeForeman,
		ReportEvery: 4,
		FECGroup:    4,
		Interleave:  2,
		Drop:        ConstLoss(0.15),
		Seed:        7,
		Decode:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.FramesFlushed != 30 {
		t.Fatalf("flushed %d/30 frames", sum.FramesFlushed)
	}
	if sum.PacketsRecovered == 0 {
		t.Error("FEC recovered nothing at 15% injected loss over 4-packet groups")
	}
	if sum.FramesDecoded != 30 {
		t.Fatalf("decoded %d/30 frames", sum.FramesDecoded)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := newFrameQueue(2)
	q.push(queuedFrame{frame: 0})
	q.push(queuedFrame{frame: 1})
	q.push(queuedFrame{frame: 2}) // evicts frame 0
	q.push(queuedFrame{frame: 3}) // evicts frame 1
	if got := q.droppedFrames(); got != 2 {
		t.Fatalf("dropped %d frames, want 2", got)
	}
	if got := (<-q.ch).frame; got != 2 {
		t.Fatalf("oldest surviving frame = %d, want 2", got)
	}
	if got := (<-q.ch).frame; got != 3 {
		t.Fatalf("next frame = %d, want 3", got)
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.depth())
	}
}

func TestLossSchedules(t *testing.T) {
	s := StepLoss{Before: 0.1, After: 0.4, At: 10}
	if s.Rate(9) != 0.1 || s.Rate(10) != 0.4 {
		t.Fatal("StepLoss edges wrong")
	}
	r := RampLoss{From: 0, To: 0.4, Start: 10, End: 20}
	if r.Rate(0) != 0 || r.Rate(15) != 0.2 || r.Rate(25) != 0.4 {
		t.Fatalf("RampLoss interpolation wrong: %v %v %v", r.Rate(0), r.Rate(15), r.Rate(25))
	}
	if ConstLoss(0.3).Rate(123) != 0.3 {
		t.Fatal("ConstLoss wrong")
	}
}

// TestWireNetworkLoss pins that a queue eviction is indistinguishable
// from wire loss at the receiver: evicted packets appear as sequence
// gaps, which is exactly how backpressure is supposed to surface in
// the feedback loop (no silent re-numbering).
func TestWireNetworkLoss(t *testing.T) {
	stub := func(k int) *codec.EncodedFrame {
		return &codec.EncodedFrame{FrameNum: k, Data: make([]byte, 50)}
	}
	pktz := network.NewPacketizer(100)
	frameA := pktz.Packetize(stub(0))
	frameB := pktz.Packetize(stub(1))
	var mon network.LossMonitor
	for _, p := range frameA {
		mon.Observe(p.Seq)
	}
	// frameB evicted: its seq range never observed.
	frameC := pktz.Packetize(stub(2))
	for _, p := range frameC {
		mon.Observe(p.Seq)
	}
	if mon.Lost() != int64(len(frameB)) {
		t.Fatalf("monitor inferred %d lost, want %d", mon.Lost(), len(frameB))
	}
}
