package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// TestShardedStreamByteIdentical is the sharded datapath's correctness
// proof: a session served through N SO_REUSEPORT sockets — its media
// flowing through whichever shard's sender admission pinned it to —
// receives the byte-for-byte same packet stream as one served by a
// single-socket server. Media packet hashes ignore the datagram header
// (session id, send stamp), so the comparison is exactly the paper's
// deliverable: the encoded, packetised, FEC-protected stream.
func TestShardedStreamByteIdentical(t *testing.T) {
	if !network.ReusePortSupported() {
		t.Skip("SO_REUSEPORT sharding requires linux")
	}
	const frames = 20

	single, err := New(Config{Addr: "127.0.0.1:0", MaxSessions: 1, RecvShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	singleHashes, err := hashedStream(single.Addr().String(), frames)
	if err != nil {
		t.Fatalf("single-socket stream: %v", err)
	}
	if err := single.Shutdown(context.Background()); err != nil {
		t.Fatalf("single-socket server shutdown: %v", err)
	}

	for _, shards := range []int{2, 4} {
		srv, err := New(Config{
			Addr:         "127.0.0.1:0",
			MaxSessions:  8,
			RecvShards:   shards,
			CohortWindow: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		// Several concurrent members: their distinct source ports steer
		// them to different shards, so the shared lineage's fanout spans
		// shard senders.
		type run struct {
			hashes []string
			err    error
		}
		streams := make(chan run, 3)
		for c := 0; c < 3; c++ {
			go func() {
				hashes, err := hashedStream(srv.Addr().String(), frames)
				streams <- run{hashes, err}
			}()
		}
		var runs [][]string
		for i := 0; i < 3; i++ {
			r := <-streams
			if r.err != nil {
				t.Fatalf("%d shards: member stream: %v", shards, r.err)
			}
			runs = append(runs, r.hashes)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("%d shards: shutdown: %v", shards, err)
		}
		for f := 0; f < frames; f++ {
			for i, r := range runs {
				if r[f] != singleHashes[f] {
					t.Fatalf("%d shards: frame %d: member %d stream diverges from single-socket stream",
						shards, f, i)
				}
			}
		}
	}
}

// handoffStream is the cross-shard fault injector: it receives media on
// its connected hello socket — the one the kernel's 4-tuple steering
// pins to the session's shard — but sends every report and the bye from
// a second, unconnected socket whose distinct source port steers them
// to an arbitrary (usually different) shard. The server must handle
// those on whichever shard they land: reports reach the session's
// feedback channel in place, never forwarded, never lost to a
// wrong-shard check. Reports carry a real e2e sample so the server's
// latency histogram proves they were consumed.
func handoffStream(server string, frames int) (got int, err error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return 0, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	side, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer side.Close()

	h := hello{Frames: frames, Regime: synth.RegimeForeman, ReportEvery: 2}
	var id uint32
	buf := make([]byte, 65536)
handshake:
	for attempt := 0; ; attempt++ {
		if attempt == 15 {
			return 0, errors.New("handoff client: no accept after 15 hellos")
		}
		if _, err := conn.Write(appendHello(nil, h)); err != nil {
			return 0, err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				continue handshake
			}
			if n > 0 && buf[0] == msgAccept {
				if id, _, err = parseAccept(buf[:n]); err != nil {
					return 0, err
				}
				break handshake
			}
			if n > 0 && buf[0] == msgReject {
				reason, _ := parseReject(buf[:n])
				return 0, fmt.Errorf("handoff client rejected: %s", reason)
			}
		}
	}
	defer side.WriteToUDP(appendBye(nil, id), raddr)

	var scratch []network.Packet
	maxFrame := -1
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return got, fmt.Errorf("handoff client %d read (last frame %d): %w", id, maxFrame, err)
		}
		if n == 0 {
			continue
		}
		e2e := uint32(1)
		if stamp := mediaStamp(buf[:n]); stamp > 0 {
			if d := time.Now().UnixMicro() - stamp; d > 0 {
				e2e = uint32(d)
			}
		}
		bump := func(f int) {
			if f <= maxFrame {
				return
			}
			maxFrame = f
			if f%2 == 0 {
				side.WriteToUDP(appendReport(nil, report{
					Session: id, Received: 100, E2EMicros: e2e,
				}), raddr)
			}
		}
		switch buf[0] {
		case msgMedia:
			sid, pkt, err := parseMedia(buf[:n])
			if err == nil && sid == id {
				got++
				bump(pkt.FrameNum)
			}
		case msgCoalesced:
			sid, pkts, err := parseCoalesced(scratch[:0], buf[:n])
			if err == nil && sid == id {
				got += len(pkts)
				for _, pkt := range pkts {
					bump(pkt.FrameNum)
				}
			}
			scratch = pkts
		case msgEnd:
			if sid, _, ok := parseEnd(buf[:n]); ok && sid == id {
				return got, nil
			}
		}
	}
}

// TestCrossShardHandoff churns sessions against a 4-shard server while
// every report and bye arrives on a socket the session was *not*
// admitted on. All sessions must finish their streams, the reports must
// demonstrably reach their sessions (the server-side e2e latency
// histogram fills from report echoes alone), and receive work must have
// spread across shards.
func TestCrossShardHandoff(t *testing.T) {
	if !network.ReusePortSupported() {
		t.Skip("SO_REUSEPORT sharding requires linux")
	}
	const (
		slots  = 8
		cycles = 4
		frames = 6
	)
	before := runtime.NumGoroutine()
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   64,
		RecvShards:    4,
		FrameInterval: 0,
		CohortWindow:  40 * time.Millisecond,
		QueueFrames:   16,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, slots*cycles)
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				got, err := handoffStream(srv.Addr().String(), frames)
				if err != nil {
					errs <- err
					return
				}
				if got == 0 {
					errs <- errors.New("handoff client received no packets")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := srv.Registry().Snapshot()
	if got := snap["server.sessions_completed"]; got != float64(slots*cycles) {
		t.Errorf("server.sessions_completed = %v, want %d", got, slots*cycles)
	}
	// The latency histogram fills only from report echoes; with every
	// report arriving on an arbitrary shard, a non-empty histogram is
	// the proof that wrong-shard reports were consumed, not dropped.
	if got := snap["server.e2e_latency.count"]; got <= 0 {
		t.Errorf("server.e2e_latency.count = %v — cross-shard reports were lost", got)
	}
	busy := 0
	for i := 0; i < 4; i++ {
		if snap[fmt.Sprintf("server.shard%d.recv_datagrams", i)] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d/4 shards received datagrams — kernel steering never spread the load", busy)
	}
	if bal, ok := snap["server.shard_rx_balance"]; !ok || bal <= 0 || bal > 1 {
		t.Errorf("server.shard_rx_balance = %v (present=%v), want in (0, 1]", bal, ok)
	}
	waitGoroutines(t, before+2)
}
