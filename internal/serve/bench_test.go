package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// BenchmarkServeThroughput measures end-to-end served frames per second
// through the full stack — encode, packetise, UDP loopback, receiver
// reports, controller retune — with pacing off so the pipeline runs at
// CPU speed. One session per iteration batch; the number is what a
// single unpaced session can sustain, not an aggregate across sessions.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		FrameInterval: 0, // unpaced: measure the pipeline, not the clock
		QueueFrames:   256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	b.ResetTimer()
	sum, err := RunClient(ctx, ClientConfig{
		Server:      srv.Addr().String(),
		Frames:      b.N,
		Regime:      synth.RegimeForeman,
		ReportEvery: 8,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if sum.FramesFlushed != b.N {
		b.Fatalf("flushed %d/%d frames", sum.FramesFlushed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(sum.Bytes)/b.Elapsed().Seconds()/1e6, "MB/s")
}

// BenchmarkServeFarm measures aggregate served frames per second with
// eight identical no-loss receivers sharing one lineage — the farm's
// headline configuration: one encode per frame fanned out eight ways
// over the batched send path. The p50/p99 figures are the server's
// scheduling→wire frame-latency histogram over the run. Compare with
// BenchmarkServeThroughput (one session, same pipeline) for the
// sharing multiplier; BENCH_serve.json commits both.
func BenchmarkServeFarm(b *testing.B) {
	const clients = 8
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   clients,
		FrameInterval: 0, // unpaced: measure the pipeline, not the clock
		QueueFrames:   256,
		CohortWindow:  100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	type result struct {
		sum *ClientSummary
		err error
	}
	results := make(chan result, clients)
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		go func() {
			sum, err := RunClient(ctx, ClientConfig{
				Server:      srv.Addr().String(),
				Frames:      b.N,
				Regime:      synth.RegimeForeman,
				ReportEvery: 8,
			})
			results <- result{sum, err}
		}()
	}
	var bytes int64
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			b.Fatal(r.err)
		}
		if r.sum.FramesFlushed != b.N {
			b.Fatalf("client flushed %d/%d frames", r.sum.FramesFlushed, b.N)
		}
		bytes += r.sum.Bytes
	}
	b.StopTimer()

	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(clients*b.N)/sec, "frames/s")
	b.ReportMetric(float64(bytes)/sec/1e6, "MB/s")
	snap := srv.Registry().Snapshot()
	b.ReportMetric(snap["server.frame_latency.p50_us"], "p50_us")
	b.ReportMetric(snap["server.frame_latency.p99_us"], "p99_us")
}

// BenchmarkServeFarm10k is the scale figure: ten thousand reporting
// receivers (plus blip clients that fork off and re-merge mid-run)
// against one four-worker farm. Every client sends a loss report per
// frame, so the receive path sees the full feedback torrent of a real
// fleet — which is what the datagrams_per_syscall figure measures:
// inbound datagrams per recvmmsg(2) wakeup. frames/s is End-confirmed
// frames across the whole fleet over the wall clock of the complete
// run (launch, cohort formation, streaming, teardown) — the honest
// aggregate, not a steady-state cherry-pick. The committed floors in
// the Makefile gate frames/s, batching and the fork→re-merge
// lifecycle (lineage_merges ≥ 1).
//
// The lineage_merges gate is driven by a small dedicated choreography
// cohort (distinct cohort key, so it never shares a lineage with the
// fleet) that streams while the fleet is still in its hello wave:
// under the full report storm the server's receive buffer sheds
// datagrams, and a blip whose reports ride the storm forks only
// probabilistically — fine as extra load, useless as a pass/fail
// gate. The in-storm blipStream clients stay in the run for exactly
// that reason: they hammer fork admission under overload, and any
// forks/merges they land are gravy on top of the choreography
// cohort's guaranteed ones.
// blipStream is the 10k benchmark's fork-and-recover client: a drain
// receiver that reports a loss blip (α̂ seeds to one quantum → its
// lineage forks) and then reports recovery on a timer so the fork goes
// quiescent within one frame window and re-merges. Timer-based zeros
// matter: under full fanout load the *delivery* of the next frame can
// lag the 60ms pacing by worse than a window, and a recovery keyed to
// reception would arrive after the fork had already encoded a second
// divergent frame, making the merge impossible. Every report is also
// retransmitted — the server's receive buffer sheds datagrams under
// the fleet's report storm, and a lost blip (or recovery) quietly
// kills the fork→re-merge choreography this client exists to drive.
//
// trigger is the received frame that fires the blip, and delay
// staggers it relative to that frame's arrival. Every member of a
// lineage is fanned a frame in the same batch, so without spreading,
// all the fork-eligible windows coincide — one unlucky partition-pass
// alignment (or one receive-buffer overflow burst, which arrives in
// lockstep with each frame's report wave) silences every blip at
// once. Spread across trigger frames and sub-frame offsets, the
// windows tile several frame intervals and some client always forks.
func blipStream(server string, frames, trigger int, delay time.Duration) (int, error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return 0, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()

	var id uint32
	buf := make([]byte, 2048)
handshake:
	for attempt := 0; ; attempt++ {
		if attempt == 15 {
			return 0, errors.New("blip client: no accept after 15 hellos")
		}
		if _, err := conn.Write(appendHello(nil, hello{Frames: frames, Regime: synth.RegimeForeman})); err != nil {
			return 0, err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				continue handshake
			}
			if n > 0 && buf[0] == msgAccept {
				if id, _, err = parseAccept(buf[:n]); err != nil {
					return 0, err
				}
				break handshake
			}
			if n > 0 && buf[0] == msgReject {
				reason, _ := parseReject(buf[:n])
				return 0, fmt.Errorf("blip client rejected: %s", reason)
			}
		}
	}
	defer conn.Write(appendBye(nil, id))

	send := func(fraction float64) {
		conn.Write(appendReport(nil, report{
			Session: id, Fraction: fraction, Received: 100, Lost: int64(fraction * 100),
		}))
	}
	blipped := false
	blip := func() {
		blipped = true
		// Seed the blip as a burst of four copies (idempotent: the EMA
		// of a repeated value is the value) spread across the first
		// frame window — the fleet's report wave arrives in lockstep
		// with each fanout and overflows the receive buffer for a few
		// milliseconds, so a single copy is a coin flip. Then recover
		// with zeros every 30ms, starting late enough that a fork at
		// any partition pass inside the blip window still sees a zero
		// before it would encode a second divergent frame.
		for _, after := range []time.Duration{0, 12, 24, 36} {
			time.AfterFunc(delay+after*time.Millisecond, func() { send(0.01) })
		}
		for _, after := range []time.Duration{50, 80, 110, 140, 170} {
			time.AfterFunc(delay+after*time.Millisecond, func() { send(0) })
		}
	}

	var scratch []network.Packet
	maxFrame := -1
	bump := func(f int) {
		if f <= maxFrame {
			return
		}
		maxFrame = f
		if f >= trigger && !blipped {
			blip()
		}
	}
	conn.SetReadDeadline(time.Now().Add(120 * time.Second))
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return 0, fmt.Errorf("blip client %d read (last frame %d): %w", id, maxFrame, err)
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case msgMedia:
			if sid, pkt, err := parseMedia(buf[:n]); err == nil && sid == id {
				bump(pkt.FrameNum)
			}
		case msgCoalesced:
			sid, pkts, err := parseCoalesced(scratch[:0], buf[:n])
			if err == nil && sid == id {
				for _, pkt := range pkts {
					bump(pkt.FrameNum)
				}
			}
			scratch = pkts
		case msgEnd:
			if sid, fr, ok := parseEnd(buf[:n]); ok && sid == id {
				return fr, nil
			}
		}
	}
}

func BenchmarkServeFarm10k(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const (
		quiet  = 10000
		blips  = 32
		frames = 20
		choreo = 4 // choreography cohort: one quiet member + three blips
	)

	var served int64
	var forks, merges, dgramsPerCall, p50, p99, balance float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		srv, err := New(Config{
			Addr:        "127.0.0.1:0",
			MaxSessions: quiet + blips + 64,
			// Lightly paced: the floor keeps frame boundaries wide enough
			// for the blip clients' fork→re-merge choreography — the blip
			// report and its recovery report must land in separate
			// partition passes; fanout to ten thousand members dominates
			// the cost regardless.
			FrameInterval: 60 * time.Millisecond,
			CohortWindow:  2 * time.Second,
			QueueFrames:   32,
			FarmWorkers:   4,
			FarmBacklog:   64,
			RecvBatch:     64,
		})
		if err != nil {
			b.Fatal(err)
		}

		type outcome struct {
			frames int
			err    error
		}
		results := make(chan outcome, quiet+blips+choreo)
		// The choreography cohort goes out first: akiyo against the
		// fleet's foreman, so the cohort key isolates it in its own
		// lineage, and its quiet member is admitted before its blip
		// members so the fork keeps the parent lineage. Its scripted
		// blips (seed α̂ one quantum → fork; one zero → quantise back to
		// 0 → quiesce → merge) land between its own frame boundaries
		// while the fleet is still doing hellos — reliable delivery, so
		// the lineage_merges floor holds every run.
		go func() {
			fr, _, err := drainStream(srv.Addr().String(), hello{
				Frames: frames,
				Regime: synth.RegimeAkiyo,
			}, 1)
			results <- outcome{fr, err}
		}()
		time.Sleep(50 * time.Millisecond)
		for _, script := range []map[int]float64{
			{3: 0.01, 4: 0, 6: 0},
			{5: 0.01, 6: 0, 8: 0},
			{7: 0.01, 8: 0, 10: 0},
		} {
			go func() {
				pkts, err := reportingStream(srv.Addr().String(), frames, synth.RegimeAkiyo, script)
				results <- outcome{len(pkts), err}
			}()
		}
		// Hold the fleet back so its cohort window closes — and its
		// report storm begins — only after the choreography cohort's
		// scripted reports are all on the wire (its stream spans roughly
		// [window, window+frames×interval] from now).
		time.Sleep(850 * time.Millisecond)

		// Stagger the launch (like the 10k soak) so the hello storm
		// arrives as a sustained wave rather than one socket-overflowing
		// spike. The blip clients go out early so they land inside the
		// mega-lineage's cohort window.
		stagger := 1500 * time.Millisecond / time.Duration(quiet+blips)
		for i := 0; i < blips; i++ {
			// Spread the blips across three trigger frames and eight
			// sub-frame offsets so their fork-eligible windows tile
			// several hundred milliseconds of the stream — no single
			// partition-pass alignment or receive-buffer overflow burst
			// can silence all of them (see blipStream).
			trigger := 2 + (i%3)*2
			delay := time.Duration(i%8) * 8 * time.Millisecond
			go func() {
				fr, err := blipStream(srv.Addr().String(), frames, trigger, delay)
				results <- outcome{fr, err}
			}()
			time.Sleep(stagger)
		}
		for i := 0; i < quiet; i++ {
			go func() {
				fr, _, err := drainStream(srv.Addr().String(), hello{
					Frames: frames,
					Regime: synth.RegimeForeman,
				}, 1)
				results <- outcome{fr, err}
			}()
			time.Sleep(stagger)
		}
		for i := 0; i < quiet+blips+choreo; i++ {
			r := <-results
			if r.err != nil {
				b.Fatal(r.err)
			}
			if r.frames != frames {
				b.Fatalf("client finished %d/%d frames", r.frames, frames)
			}
			served += int64(r.frames)
		}

		snap := srv.Registry().Snapshot()
		forks = snap["server.lineage_forks"]
		merges = snap["server.lineage_merges"]
		if batches := snap["server.recv_batches"]; batches > 0 {
			dgramsPerCall = snap["server.recv_datagrams"] / batches
		}
		p50 = snap["server.frame_latency.p50_us"]
		p99 = snap["server.frame_latency.p99_us"]
		balance = snap["server.shard_rx_balance"]
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
	b.StopTimer()

	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(dgramsPerCall, "datagrams_per_syscall")
	b.ReportMetric(forks, "lineage_forks")
	b.ReportMetric(merges, "lineage_merges")
	b.ReportMetric(p50, "p50_us")
	b.ReportMetric(p99, "p99_us")
	// Min/max ratio of per-shard receive counters: 1 is perfect
	// SO_REUSEPORT spread, 0 means a shard sat idle all run.
	b.ReportMetric(balance, "shard_rx_balance")
}
