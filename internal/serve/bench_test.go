package serve

import (
	"context"
	"testing"
	"time"

	"pbpair/internal/synth"
)

// BenchmarkServeThroughput measures end-to-end served frames per second
// through the full stack — encode, packetise, UDP loopback, receiver
// reports, controller retune — with pacing off so the pipeline runs at
// CPU speed. One session per iteration batch; the number is what a
// single unpaced session can sustain, not an aggregate across sessions.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		FrameInterval: 0, // unpaced: measure the pipeline, not the clock
		QueueFrames:   256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	b.ResetTimer()
	sum, err := RunClient(ctx, ClientConfig{
		Server:      srv.Addr().String(),
		Frames:      b.N,
		Regime:      synth.RegimeForeman,
		ReportEvery: 8,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if sum.FramesFlushed != b.N {
		b.Fatalf("flushed %d/%d frames", sum.FramesFlushed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(sum.Bytes)/b.Elapsed().Seconds()/1e6, "MB/s")
}

// BenchmarkServeFarm measures aggregate served frames per second with
// eight identical no-loss receivers sharing one lineage — the farm's
// headline configuration: one encode per frame fanned out eight ways
// over the batched send path. The p50/p99 figures are the server's
// scheduling→wire frame-latency histogram over the run. Compare with
// BenchmarkServeThroughput (one session, same pipeline) for the
// sharing multiplier; BENCH_serve.json commits both.
func BenchmarkServeFarm(b *testing.B) {
	const clients = 8
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   clients,
		FrameInterval: 0, // unpaced: measure the pipeline, not the clock
		QueueFrames:   256,
		CohortWindow:  100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	type result struct {
		sum *ClientSummary
		err error
	}
	results := make(chan result, clients)
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		go func() {
			sum, err := RunClient(ctx, ClientConfig{
				Server:      srv.Addr().String(),
				Frames:      b.N,
				Regime:      synth.RegimeForeman,
				ReportEvery: 8,
			})
			results <- result{sum, err}
		}()
	}
	var bytes int64
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			b.Fatal(r.err)
		}
		if r.sum.FramesFlushed != b.N {
			b.Fatalf("client flushed %d/%d frames", r.sum.FramesFlushed, b.N)
		}
		bytes += r.sum.Bytes
	}
	b.StopTimer()

	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(clients*b.N)/sec, "frames/s")
	b.ReportMetric(float64(bytes)/sec/1e6, "MB/s")
	snap := srv.Registry().Snapshot()
	b.ReportMetric(snap["server.frame_latency.p50_us"], "p50_us")
	b.ReportMetric(snap["server.frame_latency.p99_us"], "p99_us")
}
