package serve

import (
	"context"
	"testing"

	"pbpair/internal/synth"
)

// BenchmarkServeThroughput measures end-to-end served frames per second
// through the full stack — encode, packetise, UDP loopback, receiver
// reports, controller retune — with pacing off so the pipeline runs at
// CPU speed. One session per iteration batch; the number is what a
// single unpaced session can sustain, not an aggregate across sessions.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		FrameInterval: 0, // unpaced: measure the pipeline, not the clock
		QueueFrames:   256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	b.ResetTimer()
	sum, err := RunClient(ctx, ClientConfig{
		Server:      srv.Addr().String(),
		Frames:      b.N,
		Regime:      synth.RegimeForeman,
		ReportEvery: 8,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if sum.FramesFlushed != b.N {
		b.Fatalf("flushed %d/%d frames", sum.FramesFlushed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(sum.Bytes)/b.Elapsed().Seconds()/1e6, "MB/s")
}
