package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// drainStream is the 10k-soak's featherweight receiver: handshake, read
// until the End datagram, count — no packet retention (ten thousand
// recorded streams would swamp the test's memory). reportEvery > 0
// sends a clean loss report at every Nth frame boundary, which is how
// the scale benchmarks model the steady feedback torrent of a real
// receiver fleet. The handshake retries harder than rawStream's
// because an admission storm of ten thousand simultaneous hellos
// legitimately overflows the server's socket buffer; a dropped hello
// is retransmitted, not fatal.
func drainStream(server string, h hello, reportEvery int) (frames, packets int, err error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return 0, 0, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()

	var id uint32
	buf := make([]byte, 2048)
handshake:
	for attempt := 0; ; attempt++ {
		if attempt == 15 {
			return 0, 0, errors.New("drain client: no accept after 15 hellos")
		}
		if _, err := conn.Write(appendHello(nil, h)); err != nil {
			return 0, 0, err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				continue handshake
			}
			if n > 0 && buf[0] == msgAccept {
				if id, _, err = parseAccept(buf[:n]); err != nil {
					return 0, 0, err
				}
				break handshake
			}
			if n > 0 && buf[0] == msgReject {
				reason, _ := parseReject(buf[:n])
				return 0, 0, fmt.Errorf("drain client rejected: %s", reason)
			}
		}
	}
	defer conn.Write(appendBye(nil, id))

	var scratch []network.Packet
	maxFrame := -1
	bump := func(f int) {
		if f <= maxFrame {
			return
		}
		maxFrame = f
		if reportEvery > 0 && f%reportEvery == 0 {
			conn.Write(appendReport(nil, report{Session: id, Received: 100}))
		}
	}
	// Batched reads: at ten thousand concurrent receivers the harness
	// itself is a syscall load on the benchmark machine, so the drain
	// clients use the same recvmmsg path as the server — a burst of
	// coalesced media costs one wakeup, not one read per datagram.
	rcv := network.NewBatchReceiver(conn)
	slots := make([]network.RecvSlot, 8)
	for i := range slots {
		slots[i].Buf = make([]byte, 2048)
	}
	conn.SetReadDeadline(time.Now().Add(120 * time.Second))
	for {
		k, err := rcv.RecvBatch(slots)
		if err != nil {
			return 0, packets, fmt.Errorf("drain client %d read (last frame %d, %d pkts): %w",
				id, maxFrame, packets, err)
		}
		for si := 0; si < k; si++ {
			b := slots[si].Buf[:slots[si].N]
			if len(b) == 0 {
				continue
			}
			switch b[0] {
			case msgMedia:
				sid, pkt, err := parseMedia(b)
				if err == nil && sid == id {
					packets++
					bump(pkt.FrameNum)
				}
			case msgCoalesced:
				sid, pkts, err := parseCoalesced(scratch[:0], b)
				if err == nil && sid == id {
					packets += len(pkts)
					for _, pkt := range pkts {
						bump(pkt.FrameNum)
					}
				}
				scratch = pkts
			case msgEnd:
				if sid, fr, ok := parseEnd(b); ok && sid == id {
					return fr, packets, nil
				}
			}
		}
	}
}

// TestSoakTenThousandSessions is the multi-core farm's scale-out proof:
// ten thousand sessions (two thousand under -race) split across four
// cohorts against one server with sharded worker queues. Every session
// must finish its full frame count — and the cohorts must finish
// *fairly*: identical per-cohort completion totals, no cohort starved
// by another's fanout. Along the way it pins heavy encode sharing, the
// per-cohort shared-fraction gauges (present and high mid-run, removed
// after), genuinely batched receives, metric cleanup and zero goroutine
// leaks.
func TestSoakTenThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-session soak: tens of seconds of loopback traffic")
	}
	sessions := 10000
	if raceEnabled {
		sessions = 2000 // same topology, -race-sized
	}
	const (
		cohorts = 4
		frames  = 8
		baseQP  = 8
	)
	perCohort := sessions / cohorts
	before := runtime.NumGoroutine()

	srv, err := New(Config{
		Addr:        "127.0.0.1:0",
		MaxSessions: sessions + 64,
		// Unpaced: each lineage streams at farm speed; the cohort window
		// is what groups the admission storm into mega-lineages (it
		// comfortably covers the staggered launch below, so most of a
		// cohort rides its first wave).
		FrameInterval: 0,
		CohortWindow:  3 * time.Second,
		QueueFrames:   32,
		FarmWorkers:   4,
		FarmBacklog:   64,
		RecvBatch:     64,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Poll the per-cohort shared-fraction gauges while the run is live:
	// they exist only while their cohort has members, so the assertion
	// has to watch mid-run. Track the maximum each cohort ever reports.
	pollCtx, stopPoll := context.WithCancel(context.Background())
	var pollWG sync.WaitGroup
	maxShared := make(map[string]float64, cohorts)
	var mu sync.Mutex
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			snap := srv.Registry().Snapshot()
			mu.Lock()
			for name, v := range snap {
				if strings.HasPrefix(name, "server.cohort.") && v > maxShared[name] {
					maxShared[name] = v
				}
			}
			mu.Unlock()
		}
	}()

	type result struct {
		cohort  int
		frames  int
		packets int
		err     error
	}
	// Launch staggered (~2s across the full fleet): ten thousand hellos
	// in one instant would overflow the listen socket faster than the
	// admission path can drain it, and the retransmit budget exists for
	// packet loss, not for a self-inflicted synchronised storm.
	results := make(chan result, sessions)
	stagger := 2 * time.Second / time.Duration(sessions)
	for i := 0; i < sessions; i++ {
		cohort := i % cohorts
		time.Sleep(stagger)
		go func() {
			fr, pk, err := drainStream(srv.Addr().String(), hello{
				Frames: frames,
				Regime: synth.RegimeForeman,
				QP:     baseQP + cohort,
			}, 0)
			results <- result{cohort, fr, pk, err}
		}()
	}

	var done [cohorts]int
	var flushed [cohorts]int
	for i := 0; i < sessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("cohort %d client: %v", r.cohort, r.err)
		}
		if r.frames != frames {
			t.Errorf("cohort %d client finished %d/%d frames", r.cohort, r.frames, frames)
		}
		if r.packets == 0 {
			t.Errorf("cohort %d client received no packets", r.cohort)
		}
		done[r.cohort]++
		flushed[r.cohort] += r.frames
	}
	stopPoll()
	pollWG.Wait()

	// Fairness: every cohort completed in full — equal session counts
	// and equal frame totals, no cohort starved by the others' fanout.
	for c := 0; c < cohorts; c++ {
		if done[c] != perCohort {
			t.Errorf("cohort %d: %d/%d sessions completed", c, done[c], perCohort)
		}
		if flushed[c] != perCohort*frames {
			t.Errorf("cohort %d: %d/%d frames served", c, flushed[c], perCohort*frames)
		}
	}

	// Every cohort's shared-fraction gauge must have been live and high:
	// thousands of members per cohort riding a handful of lineages.
	mu.Lock()
	for c := 0; c < cohorts; c++ {
		name := fmt.Sprintf("server.cohort.foreman_q%d_f0_i0.shared_fraction", baseQP+c)
		got, ok := maxShared[name]
		if !ok {
			t.Errorf("gauge %s never appeared during the run", name)
		} else if got < 0.5 {
			t.Errorf("gauge %s peaked at %.3f — cohort barely shared", name, got)
		}
	}
	mu.Unlock()

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := srv.Registry().Snapshot()
	if got := snap["server.sessions_completed"]; got != float64(sessions) {
		t.Errorf("server.sessions_completed = %v, want %d", got, sessions)
	}
	// Scale only works because encodes are shared: the farm must have
	// encoded an order of magnitude fewer frames than it served.
	total := float64(sessions * frames)
	if enc := snap["server.encodes"]; enc <= 0 || enc > total/10 {
		t.Errorf("server.encodes = %v for %v served frames — sharing collapsed", enc, total)
	}
	if shared := snap["server.encode_shared_frames"]; shared < total/2 {
		t.Errorf("server.encode_shared_frames = %v, want ≥ %v", shared, total/2)
	}
	// An admission storm of this size must actually exercise receive
	// batching: strictly more datagrams than recvmmsg calls.
	if b, d := snap["server.recv_batches"], snap["server.recv_datagrams"]; !(d > b && b > 0) {
		t.Errorf("receive path never batched: batches=%v datagrams=%v", b, d)
	}
	for name := range snap {
		if strings.HasPrefix(name, "server.cohort.") {
			t.Errorf("cohort gauge %q outlived its cohort", name)
		}
		if strings.HasPrefix(name, "s") && !strings.HasPrefix(name, "server.") {
			t.Errorf("per-session metric %q leaked past session end", name)
		}
	}

	waitGoroutines(t, before+2)
}
