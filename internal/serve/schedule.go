package serve

import "fmt"

// Loss schedules drive pbpair-load's receiver-side loss injection: the
// client discards arriving datagrams with probability Rate(frame)
// before they reach the loss monitor, so the monitor's sequence-gap
// accounting — and therefore the reports the server adapts to — sees
// them exactly as wire loss. Step and ramp shapes script the
// "raise the loss, watch the controller retune" experiments.

// LossSchedule maps a frame number to an injected loss probability.
// Implementations must be pure functions of the frame number so runs
// are reproducible given the injection seed.
type LossSchedule interface {
	Rate(frame int) float64
}

// validRate rejects NaN and out-of-range probabilities: every
// comparison against NaN is false, so the >= && <= form fails it.
func validRate(p float64) bool { return p >= 0 && p <= 1 }

// ConstLoss injects a fixed loss probability.
type ConstLoss float64

// NewConstLoss returns a constant schedule. rate must lie in [0, 1]
// (NaN rejected).
func NewConstLoss(rate float64) (ConstLoss, error) {
	if !validRate(rate) {
		return 0, fmt.Errorf("serve: loss rate %v outside [0, 1]", rate)
	}
	return ConstLoss(rate), nil
}

// Rate implements LossSchedule.
func (c ConstLoss) Rate(int) float64 { return float64(c) }

// StepLoss injects Before until frame At, then After — the §3.2 fade
// experiment as a schedule.
type StepLoss struct {
	Before, After float64
	At            int
}

// NewStepLoss returns a step schedule. Both probabilities must lie in
// [0, 1] (NaN rejected).
func NewStepLoss(before, after float64, at int) (StepLoss, error) {
	if !validRate(before) {
		return StepLoss{}, fmt.Errorf("serve: step loss before-rate %v outside [0, 1]", before)
	}
	if !validRate(after) {
		return StepLoss{}, fmt.Errorf("serve: step loss after-rate %v outside [0, 1]", after)
	}
	return StepLoss{Before: before, After: after, At: at}, nil
}

// Rate implements LossSchedule.
func (s StepLoss) Rate(frame int) float64 {
	if frame >= s.At {
		return s.After
	}
	return s.Before
}

// RampLoss interpolates linearly from From at frame Start to To at
// frame End (constant outside the ramp).
type RampLoss struct {
	From, To   float64
	Start, End int
}

// NewRampLoss returns a ramp schedule. Both probabilities must lie in
// [0, 1] (NaN rejected) and the ramp must not run backwards.
func NewRampLoss(from, to float64, start, end int) (RampLoss, error) {
	if !validRate(from) {
		return RampLoss{}, fmt.Errorf("serve: ramp loss from-rate %v outside [0, 1]", from)
	}
	if !validRate(to) {
		return RampLoss{}, fmt.Errorf("serve: ramp loss to-rate %v outside [0, 1]", to)
	}
	if end < start {
		return RampLoss{}, fmt.Errorf("serve: ramp loss ends (frame %d) before it starts (frame %d)", end, start)
	}
	return RampLoss{From: from, To: to, Start: start, End: end}, nil
}

// Rate implements LossSchedule.
func (r RampLoss) Rate(frame int) float64 {
	if frame <= r.Start || r.End <= r.Start {
		return r.From
	}
	if frame >= r.End {
		return r.To
	}
	t := float64(frame-r.Start) / float64(r.End-r.Start)
	return r.From + t*(r.To-r.From)
}

// splitmix64 is the repository's standard tiny deterministic PRNG
// (same finaliser as internal/network's channels), so injected loss is
// a pure function of the seed.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) float64() float64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
