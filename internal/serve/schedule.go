package serve

// Loss schedules drive pbpair-load's receiver-side loss injection: the
// client discards arriving datagrams with probability Rate(frame)
// before they reach the loss monitor, so the monitor's sequence-gap
// accounting — and therefore the reports the server adapts to — sees
// them exactly as wire loss. Step and ramp shapes script the
// "raise the loss, watch the controller retune" experiments.

// LossSchedule maps a frame number to an injected loss probability.
// Implementations must be pure functions of the frame number so runs
// are reproducible given the injection seed.
type LossSchedule interface {
	Rate(frame int) float64
}

// ConstLoss injects a fixed loss probability.
type ConstLoss float64

// Rate implements LossSchedule.
func (c ConstLoss) Rate(int) float64 { return float64(c) }

// StepLoss injects Before until frame At, then After — the §3.2 fade
// experiment as a schedule.
type StepLoss struct {
	Before, After float64
	At            int
}

// Rate implements LossSchedule.
func (s StepLoss) Rate(frame int) float64 {
	if frame >= s.At {
		return s.After
	}
	return s.Before
}

// RampLoss interpolates linearly from From at frame Start to To at
// frame End (constant outside the ramp).
type RampLoss struct {
	From, To   float64
	Start, End int
}

// Rate implements LossSchedule.
func (r RampLoss) Rate(frame int) float64 {
	if frame <= r.Start || r.End <= r.Start {
		return r.From
	}
	if frame >= r.End {
		return r.To
	}
	t := float64(frame-r.Start) / float64(r.End-r.Start)
	return r.From + t*(r.To-r.From)
}

// splitmix64 is the repository's standard tiny deterministic PRNG
// (same finaliser as internal/network's channels), so injected loss is
// a pure function of the seed.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) float64() float64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
