//go:build !race

package serve

// raceEnabled is false in normal builds; see race_on.go.
const raceEnabled = false
