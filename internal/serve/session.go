package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbpair/internal/adapt"
	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/network"
	"pbpair/internal/obs"
)

// TracePoint is one frame's worth of control-loop state, recorded into
// the session summary so tests and operators can replay how the
// feedback loop moved.
type TracePoint struct {
	Frame    int
	Alpha    float64 // α̂ applied to this frame
	IntraTh  float64 // Intra_Th applied to this frame
	IntraMBs int     // intra macroblocks the frame actually coded
}

// SessionSummary is the server-side record of one finished session.
type SessionSummary struct {
	ID                 uint32
	Client             string
	FramesRequested    int
	FramesEncoded      int
	PacketsSent        int64
	BytesSent          int64
	QueueDroppedFrames int64 // frames evicted by drop-oldest backpressure
	Reports            int   // receiver reports consumed
	IntraMBs           int64
	FinalAlpha         float64
	FinalIntraTh       float64
	EnergyJoules       float64 // total modelled encode energy
	Trace              []TracePoint
	Err                string // "" on a clean finish
}

// session is one live stream: an encoder goroutine feeding a bounded
// send queue drained by a sender goroutine, with receiver reports
// arriving on the feedback channel. See ARCHITECTURE.md for the
// lifecycle diagram.
type session struct {
	id     uint32
	srv    *Server
	client *net.UDPAddr
	req    hello

	// Lifecycle: quit asks the encode loop to stop producing (graceful
	// — queued frames still drain and the client gets an End); ctx is
	// the hard stop that abandons the queue. done closes when run has
	// fully finished and the summary is recorded.
	ctx      context.Context
	cancel   context.CancelFunc
	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}

	feedback chan report
	queue    *frameQueue

	// framesEncoded is written by the encode loop and read by the
	// sender when it emits the End datagram.
	framesEncoded atomic.Int64

	// shared publishes per-frame energy counter snapshots for
	// observers; the live tally belongs to the encode goroutine alone
	// (see energy.SharedCounters).
	shared energy.SharedCounters
}

// stop requests a graceful stop: finish the current frame, drain the
// queue, tell the client the stream ended.
func (s *session) stop() {
	s.quitOnce.Do(func() { close(s.quit) })
}

// metricPrefix namespaces this session's metrics in the registry.
func (s *session) metricPrefix() string { return fmt.Sprintf("s%d.", s.id) }

// run executes the session to completion and hands the summary back to
// the server. It owns every per-session resource.
func (s *session) run() {
	defer close(s.done)
	defer s.cancel()
	sum := SessionSummary{
		ID:              s.id,
		Client:          s.client.String(),
		FramesRequested: s.req.Frames,
	}
	if err := s.stream(&sum); err != nil {
		sum.Err = err.Error()
	}
	s.srv.finishSession(s, sum)
}

// stream runs the closed loop: encode → packetise → queue → (sender) →
// socket, feedback → estimator → controllers → planner.
func (s *session) stream(sum *SessionSummary) error {
	cfg := &s.srv.cfg
	reg := s.srv.reg
	prefix := s.metricPrefix()

	mFrames := reg.Counter(prefix + "frames_encoded")
	mPackets := reg.Counter(prefix + "packets_sent")
	mBytes := reg.Counter(prefix + "bytes_sent")
	mQueueDrop := reg.Counter(prefix + "queue_dropped_frames")
	mReports := reg.Counter(prefix + "reports")
	mIntra := reg.Counter(prefix + "intra_mbs")
	mAlpha := reg.Gauge(prefix + "alpha_hat")
	mTh := reg.Gauge(prefix + "intra_th")
	mDepth := reg.Gauge(prefix + "queue_depth")
	mJoules := reg.Gauge(prefix + "energy_joules")
	mEncode := reg.Histogram(prefix + "encode_latency")

	src := cfg.newSource(s.req.Regime)
	w, h := src.Dims()
	planner, err := core.New(core.Config{
		Rows: h / 16, Cols: w / 16,
		IntraTh: 0, PLR: 0,
	})
	if err != nil {
		return err
	}
	var counters energy.Counters
	enc, err := codec.NewEncoder(codec.Config{
		Width: w, Height: h,
		QP:       s.req.QP,
		Search:   cfg.Search,
		Planner:  planner,
		Counters: &counters,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return err
	}
	est, err := adapt.NewPLREstimator(cfg.EstimatorWeight)
	if err != nil {
		return err
	}
	qctl, err := adapt.NewQualityController(cfg.RefreshInterval)
	if err != nil {
		return err
	}
	qctl.SetSimilarity(cfg.Similarity)
	var ectl *adapt.EnergyController
	if cfg.EnergyBudget > 0 {
		if ectl, err = adapt.NewEnergyController(cfg.EnergyBudget, 0, 0); err != nil {
			return err
		}
	}
	pktz := network.NewPacketizer(cfg.MTU)
	var fec *network.FECEncoder
	if s.req.FECGroup > 0 {
		if fec, err = network.NewFECEncoder(s.req.FECGroup); err != nil {
			return err
		}
	}

	var sendWG sync.WaitGroup
	sendWG.Add(1)
	go func() {
		defer sendWG.Done()
		s.sendLoop(mPackets, mBytes)
	}()
	// However the encode loop exits, close the queue so the sender
	// drains and announces the end of the stream, wait for it, then
	// fold what it sent into the summary (defers run in LIFO order).
	defer func() {
		sum.PacketsSent = mPackets.Value()
		sum.BytesSent = mBytes.Value()
	}()
	defer sendWG.Wait()
	defer s.queue.close()

	// The encode loop is paced, not the sender: a live encoder is
	// driven by the capture clock, and pacing here is what gives
	// receiver feedback time to steer frames that are still in the
	// future. The sender transmits as soon as frames are queued.
	var tick <-chan time.Time
	if cfg.FrameInterval > 0 {
		ticker := time.NewTicker(cfg.FrameInterval)
		defer ticker.Stop()
		tick = ticker.C
	}

	lastFeedback := time.Now()
	var prevCounters energy.Counters
	var encodeErr error

encode:
	for k := 0; k < s.req.Frames; k++ {
		if tick != nil && k > 0 {
			select {
			case <-s.ctx.Done():
				encodeErr = s.ctx.Err()
				break encode
			case <-s.quit:
				break encode
			case <-tick:
			}
		}
		select {
		case <-s.ctx.Done():
			encodeErr = s.ctx.Err()
			break encode
		case <-s.quit:
			break encode // graceful: stop producing, drain below
		default:
		}

		// Fold in every pending receiver report, then retune. The
		// quality controller tracks α̂; the energy controller may push
		// the threshold higher still when the frame energy is over
		// budget (more intra ⇒ less motion estimation).
	drain:
		for {
			select {
			case r := <-s.feedback:
				est.ObserveReport(r.Fraction)
				sum.Reports++
				mReports.Add(1)
				lastFeedback = time.Now()
			default:
				break drain
			}
		}
		if cfg.ReportTimeout > 0 && s.req.ReportEvery > 0 && time.Since(lastFeedback) > cfg.ReportTimeout {
			encodeErr = fmt.Errorf("serve: no receiver feedback for %v", cfg.ReportTimeout)
			break encode
		}
		alpha := est.Rate()
		qctl.Apply(planner, alpha)
		if ectl != nil {
			if th := ectl.IntraTh(); th > planner.IntraTh() {
				planner.SetIntraTh(th)
			}
		}

		start := time.Now()
		ef, err := enc.EncodeFrame(src.Frame(k))
		if err != nil {
			encodeErr = err
			break encode
		}
		mEncode.Observe(time.Since(start))

		var pkts []network.Packet
		if s.req.Interleave > 1 {
			pkts = pktz.PacketizeInterleaved(ef, s.req.Interleave)
		} else {
			pkts = pktz.Packetize(ef)
		}
		if fec != nil {
			pkts = append(fec.Protect(pkts), fec.Flush()...)
		}
		s.queue.push(queuedFrame{frame: k, pkts: pkts})
		s.framesEncoded.Store(int64(k + 1))

		frameEnergy := cfg.Profile.Joules(counters.Sub(prevCounters))
		prevCounters = counters
		if ectl != nil {
			ectl.Observe(frameEnergy)
		}
		intra := ef.Plan.IntraCount()

		sum.FramesEncoded = k + 1
		sum.IntraMBs += int64(intra)
		sum.FinalAlpha = alpha
		sum.FinalIntraTh = planner.IntraTh()
		sum.EnergyJoules = cfg.Profile.Joules(counters)
		sum.Trace = append(sum.Trace, TracePoint{
			Frame: k, Alpha: alpha, IntraTh: planner.IntraTh(), IntraMBs: intra,
		})

		mFrames.Add(1)
		mIntra.Add(int64(intra))
		mAlpha.Set(alpha)
		mTh.Set(planner.IntraTh())
		mDepth.Set(float64(s.queue.depth()))
		mJoules.Set(sum.EnergyJoules)
		if d := s.queue.droppedFrames() - sum.QueueDroppedFrames; d > 0 {
			mQueueDrop.Add(d)
			sum.QueueDroppedFrames += d
		}
		s.shared.Publish(counters)
	}

	// Late feedback that arrived after the last frame still counts in
	// the books (the soak test's final report races the last frame).
	for {
		select {
		case <-s.feedback:
			sum.Reports++
			mReports.Add(1)
			continue
		default:
		}
		break
	}
	if d := s.queue.droppedFrames() - sum.QueueDroppedFrames; d > 0 {
		mQueueDrop.Add(d)
		sum.QueueDroppedFrames += d
	}
	return encodeErr
}

// sendLoop drains the queue onto the socket, paced at the configured
// frame interval, and announces the end of the stream. It exits on a
// closed queue (normal or graceful path) or on hard cancellation.
func (s *session) sendLoop(mPackets, mBytes *obs.Counter) {
	cfg := &s.srv.cfg
	buf := make([]byte, 0, cfg.MTU+64)
	for {
		select {
		case <-s.ctx.Done():
			return
		case item, ok := <-s.queue.ch:
			if !ok {
				// End of stream: repeat the End datagram a few times so a
				// lossy path is unlikely to strand the client until its
				// idle timeout.
				frames := int(s.framesEncoded.Load())
				for i := 0; i < 3; i++ {
					buf = appendEnd(buf[:0], s.id, frames)
					s.srv.writeTo(buf, s.client)
				}
				return
			}
			for _, pkt := range item.pkts {
				buf = appendMedia(buf[:0], s.id, pkt)
				if s.srv.writeTo(buf, s.client) {
					mPackets.Add(1)
					mBytes.Add(int64(len(buf)))
				}
			}
		}
	}
}
