package serve

import (
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"

	"pbpair/internal/adapt"
	"pbpair/internal/obs"
)

// TracePoint is one frame's worth of control-loop state, recorded into
// the session summary so tests and operators can replay how the
// feedback loop moved.
type TracePoint struct {
	Frame    int
	Alpha    float64 // α̂ applied to this frame
	IntraTh  float64 // Intra_Th applied to this frame
	IntraMBs int     // intra macroblocks the frame actually coded
}

// SessionSummary is the server-side record of one finished session.
type SessionSummary struct {
	ID                 uint32
	Client             string
	FramesRequested    int
	FramesEncoded      int
	PacketsSent        int64
	BytesSent          int64
	QueueDroppedFrames int64 // frames evicted by drop-oldest backpressure
	Reports            int   // receiver reports consumed
	IntraMBs           int64
	FinalAlpha         float64
	FinalIntraTh       float64
	EnergyJoules       float64 // total modelled encode energy
	Trace              []TracePoint
	Err                string // "" on a clean finish
}

// session is one live stream's state machine. Unlike the previous
// serving layer — which ran two goroutines per session — a session
// owns no goroutine at all: the scheduler advances its control state
// (estimator, controllers, trace), the encode farm produces its frames
// (shared with every other member of its lineage; see lineage.go), and
// the sender drains its queue onto the socket.
//
// Ownership/concurrency contract:
//   - readLoop writes: feedback (bounded, lossy), stopReq.
//   - scheduler owns: est, ectl, sum, trace, lineage membership, queue
//     production and close. Nothing else touches these.
//   - sender owns: queue consumption; it updates the atomic packet and
//     byte counters and confirms Ends back to the scheduler once the
//     End burst is on the wire (sender.takeEnded).
//   - framesEncoded is the only cross-goroutine scalar: the scheduler
//     stores it at fanout, the sender reads it for the End datagram.
type session struct {
	id     uint32
	client *net.UDPAddr
	req    hello
	// sh is the receive shard whose socket saw this session's hello —
	// the kernel's 4-tuple steering keeps the client's datagrams on it —
	// and therefore the shard whose sender carries the session's media:
	// admission pins the session here so its whole datapath (receive,
	// encode stickiness via lineage.home, send) rides one shard. Set
	// once at admission, immutable after.
	sh *shard

	// feedback carries receiver reports from the read loop to the
	// scheduler; bounded and lossy by design (a dropped report is
	// indistinguishable from a lost datagram, and the next report
	// carries fresher information anyway).
	feedback chan report
	// stopReq asks for a graceful stop: stop producing frames, drain
	// the queue, announce the end of the stream. Set by a client bye
	// or by Shutdown; the scheduler acts on it at its next pass.
	stopReq atomic.Bool
	// endSent flips when the sender puts the End burst on the wire.
	// From that moment the client may read the End, close its socket
	// and surrender its ephemeral port, so a hello from this address
	// must be treated as a brand-new client, never as a retransmit —
	// see handleHello's duplicate suppression.
	endSent atomic.Bool
	// done closes when the session is fully finished and its summary
	// recorded. Shutdown waits on it.
	done chan struct{}

	queue *frameQueue

	// framesEncoded is written by the scheduler at fanout and read by
	// the sender when it emits the End datagram.
	framesEncoded atomic.Int64

	// --- scheduler-owned state below ---

	est          *adapt.PLREstimator
	ectl         *adapt.EnergyController
	lastFeedback time.Time
	deadline     time.Time // admission + SessionTimeout
	sum          SessionSummary
	lin          *lineage
	closing      bool // queue closed, awaiting the sender's End
	finished     bool // summary recorded, metrics removed

	// Per-session metrics, registered at admission under "s<id>." and
	// removed when the session finishes.
	mFrames    *obs.Counter
	mPackets   *obs.Counter
	mBytes     *obs.Counter
	mQueueDrop *obs.Counter
	mReports   *obs.Counter
	mIntra     *obs.Counter
	mAlpha     *obs.Gauge
	mTh        *obs.Gauge
	mDepth     *obs.Gauge
	mJoules    *obs.Gauge
	mEncode    *obs.Histogram
}

// shardIdx returns the index of the session's receive shard (0 for
// sessions constructed without one, as some unit tests do).
func shardIdx(s *session) int {
	if s.sh != nil {
		return s.sh.idx
	}
	return 0
}

// metricPrefix namespaces this session's metrics in the registry.
func (s *session) metricPrefix() string { return fmt.Sprintf("s%d.", s.id) }

// registerMetrics creates the per-session metric set. Scheduler-only.
func (s *session) registerMetrics(reg *obs.Registry) {
	prefix := s.metricPrefix()
	s.mFrames = reg.Counter(prefix + "frames_encoded")
	s.mPackets = reg.Counter(prefix + "packets_sent")
	s.mBytes = reg.Counter(prefix + "bytes_sent")
	s.mQueueDrop = reg.Counter(prefix + "queue_dropped_frames")
	s.mReports = reg.Counter(prefix + "reports")
	s.mIntra = reg.Counter(prefix + "intra_mbs")
	s.mAlpha = reg.Gauge(prefix + "alpha_hat")
	s.mTh = reg.Gauge(prefix + "intra_th")
	s.mDepth = reg.Gauge(prefix + "queue_depth")
	s.mJoules = reg.Gauge(prefix + "energy_joules")
	s.mEncode = reg.Histogram(prefix + "encode_latency")
}

// drainFeedback folds every pending receiver report into the
// estimator. Scheduler-only.
func (s *session) drainFeedback(now time.Time) {
	for {
		select {
		case r := <-s.feedback:
			s.est.ObserveReport(r.Fraction)
			s.sum.Reports++
			s.mReports.Add(1)
			s.lastFeedback = now
		default:
			return
		}
	}
}

// knobs returns the control values this session wants applied to its
// next frame: α̂ from its estimator — quantised to the configured
// quantum, see Config.AlphaQuantum — and the Intra_Th resulting from
// the quality controller (and the energy controller's floor, when one
// is configured). Sessions with bit-identical knob trajectories are
// exactly the ones whose encodes can be shared — see lineage.partition.
// Quantisation rounds to nearest, so an EMA that has decayed below
// quantum/2 snaps back to exactly 0: the lineage re-merge precondition.
func (s *session) knobs(qctl *adapt.QualityController, quantum float64) lineageKnobs {
	alpha := s.est.Rate()
	if quantum > 0 {
		alpha = math.Round(alpha/quantum) * quantum
	}
	th := qctl.IntraTh(alpha)
	if s.ectl != nil {
		if et := s.ectl.IntraTh(); et > th {
			th = et
		}
	}
	return lineageKnobs{plr: alpha, th: th}
}
