package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// reportingStream is rawStream plus scripted feedback: reports[f] is a
// loss fraction sent the first time a packet of frame f is observed
// (loopback delivery is in order, so "first packet of frame f" is a
// reliable frame boundary). It records the exact media packets like
// rawStream does, so a reporting receiver's stream can be compared
// byte-for-byte against a silent one.
func reportingStream(server string, frames int, regime synth.Regime, reports map[int]float64) (map[int][]network.Packet, error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// ReportEvery stays 0: the server consumes reports from any session,
	// and not promising a cadence keeps the sparse script clear of the
	// feedback-timeout reaper.
	h := hello{Frames: frames, Regime: regime, ReportEvery: 0}
	var id uint32
	buf := make([]byte, 65536)
handshake:
	for attempt := 0; ; attempt++ {
		if attempt == 3 {
			return nil, errors.New("reporting client: no accept after 3 hellos")
		}
		if _, err := conn.Write(appendHello(nil, h)); err != nil {
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				continue handshake
			}
			if n > 0 && buf[0] == msgAccept {
				if id, _, err = parseAccept(buf[:n]); err != nil {
					return nil, err
				}
				break handshake
			}
			if n > 0 && buf[0] == msgReject {
				reason, _ := parseReject(buf[:n])
				return nil, fmt.Errorf("reporting client rejected: %s", reason)
			}
		}
	}
	defer conn.Write(appendBye(nil, id))

	got := make(map[int][]network.Packet)
	cur := -1
	record := func(pkt network.Packet) {
		if pkt.FrameNum > cur {
			cur = pkt.FrameNum
			if fr, ok := reports[cur]; ok {
				conn.Write(appendReport(nil, report{
					Session: id, Fraction: fr, Received: 100, Lost: int64(fr * 100),
				}))
			}
		}
		got[pkt.FrameNum] = append(got[pkt.FrameNum], pkt)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("reporting client read: %w", err)
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case msgMedia:
			sid, pkt, err := parseMedia(buf[:n])
			if err == nil && sid == id {
				record(pkt)
			}
		case msgCoalesced:
			sid, pkts, err := parseCoalesced(nil, buf[:n])
			if err == nil && sid == id {
				for _, pkt := range pkts {
					record(pkt)
				}
			}
		case msgEnd:
			if sid, _, ok := parseEnd(buf[:n]); ok && sid == id {
				return got, nil
			}
		}
	}
}

// TestLineageRemergeAfterBlip is the re-merge proof: a transient loss
// blip forks a session off its cohort, its estimator decays back
// through the α̂ quantum to exactly 0, and the scheduler folds the fork
// back into the cohort lineage — after which the pair share encodes
// again and both receivers hold bit-identical streams end to end.
//
// The report script is built on the estimator's seeding semantics: the
// first report a session ever sends seeds α̂ directly (no EMA weight),
// so a 0.01 blip lands exactly on α̂ = 0.01, which quantises to 1/64
// and forks. One zero report then decays it to 0.0065, which quantises
// back to 0 — the quiescence precondition. The blip must be separated
// from the zero by a frame boundary so they are drained in different
// scheduling passes (drained together they cancel before any fork);
// the generous FrameInterval against a ~3ms encode makes that ordering
// robust. Byte identity across the fork is what makes the merge legal:
// the single frame encoded at α̂ = 1/64 still has σ ≡ 1 everywhere, so
// the motion penalty λ·α·(1−σ) is exactly 0 and σ < Th cannot fire —
// the forked frame is bit-identical and the encoder states reconverge.
func TestLineageRemergeAfterBlip(t *testing.T) {
	const frames = 30

	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   4,
		FrameInterval: 40 * time.Millisecond,
		CohortWindow:  400 * time.Millisecond,
		QueueFrames:   64,
	})
	if err != nil {
		t.Fatal(err)
	}

	type run struct {
		pkts map[int][]network.Packet
		err  error
	}
	quiet := make(chan run, 1)
	blip := make(chan run, 1)
	go func() {
		pkts, err := rawStream(srv.Addr().String(), frames)
		quiet <- run{pkts, err}
	}()
	// The quiet session must be admitted first (the fork keeps the
	// parent lineage with the oldest member, so the blip session is the
	// one that forks off and later merges back).
	time.Sleep(100 * time.Millisecond)
	go func() {
		pkts, err := reportingStream(srv.Addr().String(), frames, synth.RegimeForeman, map[int]float64{
			3: 0.01, // transient blip: seeds α̂ = 0.01 → quantises to 1/64 → fork
			4: 0,    // recovery: decays α̂ to 0.0065 → quantises to 0 → quiesce
			6: 0,    // belt and braces: keeps decaying toward 0
		})
		blip <- run{pkts, err}
	}()
	rq, rb := <-quiet, <-blip
	if rq.err != nil {
		t.Fatalf("quiet stream: %v", rq.err)
	}
	if rb.err != nil {
		t.Fatalf("blip stream: %v", rb.err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := srv.Registry().Snapshot()
	if snap["server.lineage_forks"] < 1 {
		t.Fatal("the blip report forced no lineage fork")
	}
	if snap["server.lineage_merges"] < 1 {
		t.Fatalf("the recovered lineage never merged back (forks=%v encodes=%v)",
			snap["server.lineage_forks"], snap["server.encodes"])
	}
	// Sharing must have resumed after the merge: only the few frames
	// encoded while forked cost a second encode.
	if enc := snap["server.encodes"]; enc > frames+8 {
		t.Errorf("server.encodes = %v for %d frames × 2 members — sharing never resumed", enc, frames)
	}
	// The batched receive path carried all of this session's inbound
	// traffic (hellos, reports, byes).
	if snap["server.recv_batches"] < 1 || snap["server.recv_datagrams"] < snap["server.recv_batches"] {
		t.Errorf("implausible receive accounting: batches=%v datagrams=%v",
			snap["server.recv_batches"], snap["server.recv_datagrams"])
	}
	if snap["server.recv_batch_size.count"] != snap["server.recv_batches"] {
		t.Errorf("recv_batch_size.count = %v, want %v (one observation per batch)",
			snap["server.recv_batch_size.count"], snap["server.recv_batches"])
	}

	// Byte identity end to end: through fork, forked frames, and merge,
	// the blip receiver saw exactly the quiet receiver's stream.
	qh, err := frameHashes(frames, rq.pkts)
	if err != nil {
		t.Fatalf("quiet stream hashes: %v", err)
	}
	bh, err := frameHashes(frames, rb.pkts)
	if err != nil {
		t.Fatalf("blip stream hashes: %v", err)
	}
	for f := 0; f < frames; f++ {
		if qh[f] != bh[f] {
			t.Fatalf("frame %d: blip stream diverges from quiet stream across fork/merge", f)
		}
	}
}

// TestMergeDisabled pins the DisableMerge knob: the same blip script
// forks, but with merging off the lineages stay split to the end.
func TestMergeDisabled(t *testing.T) {
	const frames = 16
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		MaxSessions:   4,
		FrameInterval: 40 * time.Millisecond,
		CohortWindow:  400 * time.Millisecond,
		QueueFrames:   64,
		DisableMerge:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet := make(chan error, 1)
	go func() {
		_, err := rawStream(srv.Addr().String(), frames)
		quiet <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := reportingStream(srv.Addr().String(), frames, synth.RegimeForeman, map[int]float64{3: 0.01, 4: 0}); err != nil {
		t.Fatalf("blip stream: %v", err)
	}
	if err := <-quiet; err != nil {
		t.Fatalf("quiet stream: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := srv.Registry().Snapshot()
	if snap["server.lineage_forks"] < 1 {
		t.Fatal("the blip report forced no lineage fork")
	}
	if snap["server.lineage_merges"] != 0 {
		t.Errorf("server.lineage_merges = %v with DisableMerge set", snap["server.lineage_merges"])
	}
}
