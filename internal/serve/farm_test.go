package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// TestSoakThousandSessions is the farm's scale proof: a thousand
// no-loss receivers plus a handful of lossy ones against one server.
// The no-loss thousand all present bit-identical (α̂, Intra_Th)
// trajectories, so the farm serves them from a shared lineage — one
// encode per frame fanned out a thousand ways — while the lossy
// sessions' feedback forks them onto private lineages whose control
// loops must still move in the §3.2 direction. The test asserts clean
// finishes all round, heavy encode sharing, at least one
// copy-on-divergence fork, live latency histograms, metric cleanup and
// zero goroutine leaks.
func TestSoakThousandSessions(t *testing.T) {
	const (
		quietSessions = 1000
		quietFrames   = 25
		lossySessions = 8
		lossyFrames   = 60
		lossRate      = 0.30
	)
	before := runtime.NumGoroutine()

	srv, err := New(Config{
		Addr:            "127.0.0.1:0",
		MaxSessions:     quietSessions + lossySessions + 8,
		FrameInterval:   5 * time.Millisecond,
		QueueFrames:     128,
		CohortWindow:    1500 * time.Millisecond,
		EstimatorWeight: 0.25,
		// Provision the farm for the expected lineage count (the quiet
		// mega-cohort plus one fork per lossy session plus straggler
		// waves): with backlog headroom the scheduler absorbs the
		// admission burst instead of shedding it.
		FarmBacklog: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		sum *ClientSummary
		err error
	}
	total := quietSessions + lossySessions
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: the quiet thousand, all at once. They must all be
	// admitted, share the cohort lineages, and finish clean.
	results := make(chan result, total)
	for c := 0; c < quietSessions; c++ {
		cfg := ClientConfig{
			Server:      srv.Addr().String(),
			Frames:      quietFrames,
			Regime:      synth.RegimeForeman,
			ReportEvery: 4,
			IdleTimeout: 30 * time.Second,
		}
		go func() {
			sum, err := RunClient(ctx, cfg)
			results <- result{sum, err}
		}()
	}
	for i := 0; i < quietSessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("quiet client error: %v", r.err)
		}
		if r.sum.FramesFlushed != quietFrames {
			t.Errorf("quiet client flushed %d/%d frames", r.sum.FramesFlushed, quietFrames)
		}
		if r.sum.PacketsReceived == 0 {
			t.Error("quiet client received no packets")
		}
	}

	// Phase 2: the lossy batch, launched after the quiet wave so their
	// summaries land inside the kept window. They form one cohort at
	// frame 0, then their divergent feedback forks them apart.
	for c := 0; c < lossySessions; c++ {
		cfg := ClientConfig{
			Server:      srv.Addr().String(),
			Frames:      lossyFrames,
			Regime:      synth.RegimeForeman,
			ReportEvery: 2,
			Drop:        ConstLoss(lossRate),
			Seed:        uint64(7000 + c),
			IdleTimeout: 30 * time.Second,
		}
		go func() {
			sum, err := RunClient(ctx, cfg)
			results <- result{sum, err}
		}()
	}
	for i := 0; i < lossySessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("lossy client error: %v", r.err)
		}
		if r.sum.FramesFlushed != lossyFrames {
			t.Errorf("lossy client flushed %d/%d frames", r.sum.FramesFlushed, lossyFrames)
		}
		if r.sum.InjectedDrops == 0 {
			t.Error("lossy client injected no drops")
		}
	}

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	sums := srv.Summaries()
	// Summaries() keeps only the most recent maxKeptSummaries, so
	// per-session assertions run over what survived the cap.
	if len(sums) != maxKeptSummaries {
		t.Fatalf("kept %d summaries, want cap %d", len(sums), maxKeptSummaries)
	}
	lossySeen := 0
	for _, sum := range sums {
		if sum.Err != "" {
			t.Errorf("session %d finished with error: %s", sum.ID, sum.Err)
		}
		if sum.FramesEncoded != sum.FramesRequested {
			t.Errorf("session %d encoded %d/%d frames", sum.ID, sum.FramesEncoded, sum.FramesRequested)
		}
		if sum.FramesRequested != lossyFrames {
			continue
		}
		lossySeen++
		// The lossy receivers' control loops must have engaged: α̂
		// pulled toward the injected rate and Intra_Th retuned off the
		// no-loss operating point into (0, 1). Windowed means over the
		// second half of the trace keep the per-report binomial noise
		// out (a single end-of-stream report covers only a handful of
		// packets).
		alpha, th, n := meanWindow(sum.Trace, lossyFrames/2, lossyFrames)
		if n == 0 {
			t.Errorf("lossy session %d: no post-feedback trace points in the late window", sum.ID)
			continue
		}
		if alpha < 0.12 {
			t.Errorf("lossy session %d: late-window α̂ = %.3f not tracking injected %.2f",
				sum.ID, alpha, lossRate)
		}
		if th <= 0 || th >= 1 {
			t.Errorf("lossy session %d: late-window Intra_Th = %.3f outside (0, 1)", sum.ID, th)
		}
	}
	if lossySeen != lossySessions {
		t.Errorf("found %d lossy summaries, want %d", lossySeen, lossySessions)
	}

	snap := srv.Registry().Snapshot()
	if got := snap["server.sessions_completed"]; got != float64(total) {
		t.Errorf("server.sessions_completed = %v, want %d", got, total)
	}
	// The thousand quiet sessions must overwhelmingly share encodes:
	// far more fanned-out frames than encodes.
	shared := snap["server.encode_shared_frames"]
	if shared < float64(quietSessions*quietFrames)/2 {
		t.Errorf("server.encode_shared_frames = %v — the quiet cohort did not share encodes", shared)
	}
	encodes := snap["server.encodes"]
	if encodes <= 0 || encodes > float64(total*quietFrames) {
		t.Errorf("server.encodes = %v implausible for %d shared sessions", encodes, total)
	}
	if snap["server.lineage_forks"] < 1 {
		t.Error("no lineage forks despite diverging lossy feedback")
	}
	if snap["server.frame_latency.count"] <= 0 {
		t.Error("server.frame_latency histogram recorded nothing")
	}
	if _, ok := snap["server.frame_latency.p99_us"]; !ok {
		t.Error("server.frame_latency.p99_us missing from snapshot")
	}
	for name := range snap {
		if strings.HasPrefix(name, "s") && !strings.HasPrefix(name, "server.") {
			t.Errorf("per-session metric %q leaked past session end", name)
		}
	}

	waitGoroutines(t, before+2)
}

// TestLoadShedOverload drives the farm past its backlog — one worker,
// a one-job backlog and many unshareable lineages — and asserts the
// shedding contract: deferrals are counted, the overloaded flag trips,
// and new hellos are rejected with an overload reason while admitted
// sessions keep streaming.
func TestLoadShedOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := New(Config{
		Addr:        "127.0.0.1:0",
		MaxSessions: 32,
		FarmWorkers: 1,
		FarmBacklog: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Eight distinct QPs → eight lineages that cannot share, all
	// unpaced, against a one-deep farm: every scheduling pass defers.
	const streams = 8
	done := make(chan error, streams)
	for c := 0; c < streams; c++ {
		cfg := ClientConfig{
			Server:      srv.Addr().String(),
			Frames:      100000,
			QP:          8 + c,
			ReportEvery: 8,
			IdleTimeout: 30 * time.Second,
		}
		go func() {
			_, err := RunClient(ctx, cfg)
			done <- err
		}()
	}
	for i := 0; i < 200; i++ {
		if srv.ActiveSessions() == streams {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.ActiveSessions(); got != streams {
		t.Fatalf("only %d/%d streams admitted", got, streams)
	}

	// The farm is now saturated; a new hello must be shed with the
	// overload reason (not capacity — the session table has room).
	var rej *RejectedError
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, err := RunClient(ctx, ClientConfig{Server: srv.Addr().String(), Frames: 5})
		if errors.As(err, &rej) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe client was never rejected (last: %v)", err)
		}
	}
	if !strings.Contains(rej.Reason, "overloaded") {
		t.Fatalf("rejection reason %q does not mention overload", rej.Reason)
	}

	snap := srv.Registry().Snapshot()
	if snap["server.loadshed_deferrals"] < 1 {
		t.Error("no load-shed deferrals counted under saturation")
	}
	if snap["server.loadshed_rejects"] < 1 {
		t.Error("no load-shed rejects counted")
	}
	if snap["server.overloaded"] != 1 {
		t.Errorf("server.overloaded = %v, want 1 while saturated", snap["server.overloaded"])
	}
	// Admitted sessions must still be making progress while shedding.
	progressed := false
	for i := 0; i < 100 && !progressed; i++ {
		s := srv.Registry().Snapshot()
		if s["server.encodes"] > 20 {
			progressed = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !progressed {
		t.Error("admitted sessions stalled while shedding")
	}

	cancel() // clients send byes and drain
	for i := 0; i < streams; i++ {
		<-done
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutines(t, before+2)
}

// rawStream is a minimal in-package receiver that records the exact
// media packets of one session, keyed by frame — the instrument for
// proving shared-lineage streams are bit-identical to solo ones. It
// sends no reports, so its session's knob trajectory stays at the
// frame-0 values. Safe to call from helper goroutines (errors are
// returned, not asserted).
func rawStream(server string, frames int) (map[int][]network.Packet, error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	h := hello{Frames: frames, Regime: synth.RegimeForeman, ReportEvery: 0}
	var id uint32
	buf := make([]byte, 65536)
handshake:
	for attempt := 0; ; attempt++ {
		if attempt == 3 {
			return nil, errors.New("raw client: no accept after 3 hellos")
		}
		if _, err := conn.Write(appendHello(nil, h)); err != nil {
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				continue handshake
			}
			if n > 0 && buf[0] == msgAccept {
				if id, _, err = parseAccept(buf[:n]); err != nil {
					return nil, err
				}
				break handshake
			}
			if n > 0 && buf[0] == msgReject {
				reason, _ := parseReject(buf[:n])
				return nil, fmt.Errorf("raw client rejected: %s", reason)
			}
		}
	}
	defer conn.Write(appendBye(nil, id))

	got := make(map[int][]network.Packet)
	record := func(pkt network.Packet) { got[pkt.FrameNum] = append(got[pkt.FrameNum], pkt) }
	conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("raw client read: %w", err)
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case msgMedia:
			sid, pkt, err := parseMedia(buf[:n])
			if err == nil && sid == id {
				record(pkt)
			}
		case msgCoalesced:
			sid, pkts, err := parseCoalesced(nil, buf[:n])
			if err == nil && sid == id {
				for _, pkt := range pkts {
					record(pkt)
				}
			}
		case msgEnd:
			if sid, _, ok := parseEnd(buf[:n]); ok && sid == id {
				return got, nil
			}
		}
	}
}

// frameHashes reduces a recorded stream to one hash per frame over the
// canonical wire encodings, sorted by sequence number so arrival
// interleaving cannot affect the digest.
func frameHashes(frames int, got map[int][]network.Packet) ([]string, error) {
	out := make([]string, frames)
	for f := 0; f < frames; f++ {
		pkts := got[f]
		if len(pkts) == 0 {
			return nil, fmt.Errorf("frame %d: no packets recorded (loopback dropped?)", f)
		}
		sort.Slice(pkts, func(i, j int) bool { return pkts[i].Seq < pkts[j].Seq })
		h := sha256.New()
		for _, p := range pkts {
			h.Write(p.AppendWire(nil))
		}
		out[f] = fmt.Sprintf("%x", h.Sum(nil))
	}
	return out, nil
}

// hashedStream runs rawStream + frameHashes as one step.
func hashedStream(server string, frames int) ([]string, error) {
	got, err := rawStream(server, frames)
	if err != nil {
		return nil, err
	}
	return frameHashes(frames, got)
}

// TestSharedLineageByteIdentical is the correctness proof behind the
// farm's whole premise: a receiver served from a three-member shared
// lineage gets the byte-for-byte same stream — packet payloads, FECless
// sequence numbering, frame boundaries — as a receiver served solo by a
// fresh server. It also pins that the shared run actually shared
// (encodes ≈ frames, not members × frames).
func TestSharedLineageByteIdentical(t *testing.T) {
	const frames = 20

	shared, err := New(Config{
		Addr:         "127.0.0.1:0",
		MaxSessions:  8,
		CohortWindow: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		hashes []string
		err    error
	}
	streams := make(chan run, 3)
	for c := 0; c < 3; c++ {
		go func() {
			hashes, err := hashedStream(shared.Addr().String(), frames)
			streams <- run{hashes, err}
		}()
	}
	var sharedRuns [][]string
	for i := 0; i < 3; i++ {
		r := <-streams
		if r.err != nil {
			t.Fatalf("shared member stream: %v", r.err)
		}
		sharedRuns = append(sharedRuns, r.hashes)
	}
	ctx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := shared.Shutdown(ctx); err != nil {
		t.Fatalf("shared server shutdown: %v", err)
	}
	snap := shared.Registry().Snapshot()
	if enc := snap["server.encodes"]; enc != frames {
		t.Errorf("shared run used %v encodes for %d frames × 3 members — lineage did not share", enc, frames)
	}
	if snap["server.encode_shared_frames"] != float64(2*frames) {
		t.Errorf("server.encode_shared_frames = %v, want %d", snap["server.encode_shared_frames"], 2*frames)
	}

	solo, err := New(Config{Addr: "127.0.0.1:0", MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	soloHashes, err := hashedStream(solo.Addr().String(), frames)
	if err != nil {
		t.Fatalf("solo stream: %v", err)
	}
	if err := solo.Shutdown(context.Background()); err != nil {
		t.Fatalf("solo server shutdown: %v", err)
	}

	for f := 0; f < frames; f++ {
		for i, r := range sharedRuns {
			if r[f] != soloHashes[f] {
				t.Fatalf("frame %d: shared member %d stream diverges from solo stream", f, i)
			}
		}
	}
}
