package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"

	"pbpair/internal/codec"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/obs"
	"pbpair/internal/synth"
)

// ClientConfig parameterises one receiver client (pbpair-load runs M
// of them concurrently).
type ClientConfig struct {
	// Server is the server's UDP address ("127.0.0.1:9800").
	Server string
	// Frames requests the stream length.
	Frames int
	// Regime selects the content (default RegimeForeman).
	Regime synth.Regime
	// QP requests a quantiser (0 = server default).
	QP int
	// ReportEvery sends a receiver report every N flushed frames
	// (default 8; 0 disables feedback — the open-loop ablation).
	ReportEvery int
	// FECGroup asks the server for XOR parity every N media packets
	// (0 = off); the client runs recovery on what arrives.
	FECGroup int
	// Interleave asks for n-way GOB interleaving (<= 1 = off).
	Interleave int

	// Drop injects receiver-side loss: each arriving datagram is
	// discarded with probability Drop.Rate(frame) before it reaches
	// the loss monitor, so reports see it as wire loss. nil = none.
	Drop LossSchedule
	// Seed makes the injected loss pattern reproducible.
	Seed uint64

	// Decode runs the real decoder over what arrives and scores PSNR
	// against the regenerated originals. Costs CPU; off by default.
	Decode bool

	// IdleTimeout gives up when no datagram arrives for this long
	// (default 10s).
	IdleTimeout time.Duration
	// HandshakeTimeout bounds each hello/accept attempt (default 2s,
	// 3 attempts).
	HandshakeTimeout time.Duration
}

// ClientSummary is what one client measured.
type ClientSummary struct {
	Session          uint32
	FramesRequested  int
	FramesFlushed    int   // frames delivered to the reassembly stage
	FramesDecoded    int   // frames run through the decoder (Decode only)
	PacketsReceived  int64 // datagrams that survived injected loss (incl. parity)
	PacketsRecovered int64 // media packets reconstructed by FEC
	InjectedDrops    int64
	WireLost         int64 // loss monitor's cumulative count (injected + real)
	Bytes            int64 // payload bytes received
	Reports          int
	PSNRSum          float64 // sum over decoded frames (Decode only)
	Elapsed          time.Duration
	// E2E holds one sample per media datagram: receive clock minus the
	// media header's send stamp. Same-clock caveat applies — see the
	// protocol doc in wire.go. Never nil after RunClient; mergeable
	// across clients with obs.(*Histogram).Merge.
	E2E *obs.Histogram
}

// MeanPSNR returns the mean luma PSNR over decoded frames, or 0 when
// decoding was off.
func (s *ClientSummary) MeanPSNR() float64 {
	if s.FramesDecoded == 0 {
		return 0
	}
	return s.PSNRSum / float64(s.FramesDecoded)
}

// RejectedError is returned when the server refuses admission; Reason
// is the server's explanation.
type RejectedError struct{ Reason string }

func (e *RejectedError) Error() string { return "serve: rejected: " + e.Reason }

// RunClient connects to a server, receives one full session and
// returns the measurements. It is the receiver half of the closed
// loop: loss monitor → interval reports → (server-side) estimator and
// controllers. Cancelling ctx sends the server a bye and returns the
// partial summary with ctx's error.
func RunClient(ctx context.Context, cfg ClientConfig) (*ClientSummary, error) {
	if cfg.Frames <= 0 {
		return nil, errors.New("serve: client must request at least one frame")
	}
	if cfg.Regime == 0 {
		cfg.Regime = synth.RegimeForeman
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 8
	}
	if cfg.ReportEvery < 0 {
		cfg.ReportEvery = 0 // explicit opt-out
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 2 * time.Second
	}

	raddr, err := net.ResolveUDPAddr("udp", cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("serve: resolve %q: %w", cfg.Server, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	defer conn.Close()

	start := time.Now()
	sum := &ClientSummary{FramesRequested: cfg.Frames, E2E: &obs.Histogram{}}
	id, err := handshake(ctx, conn, cfg)
	if err != nil {
		return nil, err
	}
	sum.Session = id
	defer func() {
		conn.Write(appendBye(nil, id))
		sum.Elapsed = time.Since(start)
	}()

	err = receive(ctx, conn, cfg, id, sum)
	return sum, err
}

// handshake sends hellos until an accept or reject arrives.
func handshake(ctx context.Context, conn *net.UDPConn, cfg ClientConfig) (uint32, error) {
	h := hello{
		Frames:      cfg.Frames,
		Regime:      cfg.Regime,
		QP:          cfg.QP,
		ReportEvery: cfg.ReportEvery,
		FECGroup:    cfg.FECGroup,
		Interleave:  cfg.Interleave,
	}
	buf := make([]byte, 2048)
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if _, err := conn.Write(appendHello(nil, h)); err != nil {
			return 0, fmt.Errorf("serve: hello: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(cfg.HandshakeTimeout))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout: retransmit the hello
			}
			if n == 0 {
				continue
			}
			switch buf[0] {
			case msgAccept:
				id, _, err := parseAccept(buf[:n])
				return id, err
			case msgReject:
				if reason, ok := parseReject(buf[:n]); ok {
					return 0, &RejectedError{Reason: reason}
				}
			default:
				continue // early media; keep waiting for the accept
			}
		}
	}
	return 0, fmt.Errorf("serve: no response from %s after 3 hellos", cfg.Server)
}

// receive runs the media/report loop until the stream ends.
func receive(ctx context.Context, conn *net.UDPConn, cfg ClientConfig, id uint32, sum *ClientSummary) error {
	var dec *codec.Decoder
	var src synth.Source
	if cfg.Decode {
		src = synth.New(cfg.Regime)
		w, h := src.Dims()
		var err error
		if dec, err = codec.NewDecoder(w, h); err != nil {
			return err
		}
	}
	rng := &splitmix64{state: cfg.Seed}
	var monitor network.LossMonitor

	cur := -1
	var pending []network.Packet
	// lastE2E is the freshest end-to-end latency sample (µs) since the
	// previous report; echoed in the next report and reset, so the
	// server's server.e2e_latency histogram sees at most one sample per
	// report interval per session (0 = none this interval).
	var lastE2E uint32
	sendReport := func() {
		r := report{
			Session:   id,
			Fraction:  monitor.Rate(),
			Received:  monitor.Received(),
			Lost:      monitor.Lost(),
			E2EMicros: lastE2E,
		}
		lastE2E = 0
		sum.WireLost += monitor.Lost()
		monitor.Reset()
		if _, err := conn.Write(appendReport(nil, r)); err == nil {
			sum.Reports++
		}
	}
	// flush advances the current frame to next, running FEC recovery,
	// reassembly and (optionally) decode + PSNR on each frame passed.
	flush := func(next int) error {
		if cur < 0 {
			cur = next
			return nil
		}
		for cur < next {
			media := pending
			if cfg.FECGroup > 0 {
				received := 0
				for _, p := range pending {
					if !p.IsParity() {
						received++
					}
				}
				media = network.RecoverFEC(pending)
				if rec := len(media) - received; rec > 0 {
					sum.PacketsRecovered += int64(rec)
				}
			}
			pending = pending[:0]
			sum.FramesFlushed++
			if dec != nil {
				var res *codec.DecodeResult
				if payload := network.Reassemble(media); payload == nil {
					res = dec.ConcealLostFrame()
				} else {
					var err error
					if res, err = dec.DecodeFrame(payload); err != nil {
						return fmt.Errorf("serve: decode frame %d: %w", cur, err)
					}
				}
				if p, err := metrics.PSNR(src.Frame(cur), res.Frame); err == nil {
					sum.PSNRSum += p
					sum.FramesDecoded++
				}
			}
			cur++
			if cfg.ReportEvery > 0 && sum.FramesFlushed%cfg.ReportEvery == 0 {
				sendReport()
			}
		}
		return nil
	}

	// handlePkt applies the per-packet pipeline — injected loss, loss
	// monitoring, frame-boundary flush — identically whether the packet
	// arrived in its own 'M' datagram or inside a coalesced 'C' batch.
	handlePkt := func(pkt network.Packet) error {
		// Injected receiver-side loss: discard before the monitor
		// sees it, so it is indistinguishable from wire loss.
		if cfg.Drop != nil && rng.float64() < cfg.Drop.Rate(pkt.FrameNum) {
			sum.InjectedDrops++
			return nil
		}
		sum.PacketsReceived++
		sum.Bytes += int64(len(pkt.Payload))
		if !pkt.IsParity() {
			monitor.Observe(pkt.Seq)
		}
		if pkt.FrameNum != cur {
			if err := flush(pkt.FrameNum); err != nil {
				return err
			}
		}
		pending = append(pending, pkt)
		return nil
	}

	buf := make([]byte, 65536)
	var batch []network.Packet
	deadline := time.Now().Add(cfg.IdleTimeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: no media for %v (flushed %d/%d frames)",
				cfg.IdleTimeout, sum.FramesFlushed, cfg.Frames)
		}
		// Short poll deadline so ctx cancellation is honoured promptly
		// even when the server goes quiet.
		poll := time.Now().Add(250 * time.Millisecond)
		if poll.After(deadline) {
			poll = deadline
		}
		conn.SetReadDeadline(poll)
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// A connected UDP socket surfaces ICMP port-unreachable as
			// ECONNREFUSED on the next read — *before* datagrams already
			// buffered (such as the server's final End burst). The ICMP
			// is advisory; keep reading and let the idle timeout decide
			// whether the server is really gone.
			if errors.Is(err, syscall.ECONNREFUSED) {
				continue
			}
			return fmt.Errorf("serve: read: %w", err)
		}
		if n == 0 {
			continue
		}
		deadline = time.Now().Add(cfg.IdleTimeout)
		// End-to-end latency sample: receive clock minus the media
		// header's send stamp. Negative differences (clock skew across
		// hosts) are discarded rather than clamped into fake zeros.
		if stamp := mediaStamp(buf[:n]); stamp > 0 {
			if d := time.Now().UnixMicro() - stamp; d >= 0 {
				sum.E2E.ObserveValue(d)
				switch {
				case d == 0:
					d = 1 // 0 means "no sample" on the wire
				case d > int64(^uint32(0)):
					d = int64(^uint32(0))
				}
				lastE2E = uint32(d)
			}
		}
		switch buf[0] {
		case msgMedia:
			sid, pkt, err := parseMedia(buf[:n])
			if err != nil || sid != id {
				continue
			}
			if err := handlePkt(pkt); err != nil {
				return err
			}
		case msgCoalesced:
			sid, pkts, err := parseCoalesced(batch[:0], buf[:n])
			batch = pkts
			if err != nil || sid != id {
				continue
			}
			for _, pkt := range pkts {
				if err := handlePkt(pkt); err != nil {
					return err
				}
			}
		case msgEnd:
			sid, frames, ok := parseEnd(buf[:n])
			if !ok || sid != id {
				continue
			}
			if err := flush(frames); err != nil {
				return err
			}
			if cfg.ReportEvery > 0 {
				sendReport() // final interval, so the books balance
			}
			return nil
		case msgAccept:
			continue // duplicate accept from a retransmitted hello
		default:
			continue
		}
	}
}
