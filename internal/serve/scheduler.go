package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pbpair/internal/adapt"
	"pbpair/internal/network"
	"pbpair/internal/obs"
	"pbpair/internal/parallel"
)

// encodeJob is one unit of farm work: encode frame `frame` of lineage
// `lin` with the knobs its members agreed on, packetise and protect
// it. The scheduler fills the top half, a farm worker the bottom.
type encodeJob struct {
	lin   *lineage
	frame int
	knob  lineageKnobs
	start time.Time // dispatch stamp; end-to-end frame latency baseline

	pkts        []network.Packet
	intraMBs    int
	frameEnergy float64
	encodeTime  time.Duration
	err         error
}

// scheduler is the serving layer's single control goroutine: it owns
// every lineage and every session's control state, so no lock guards
// any of it. Work arrives on channels (admissions from the read loop,
// completed jobs from the farm, End confirmations from the sender,
// wake pokes) and leaves as encode jobs on a bounded queue.
//
// Load shedding: the job queue bound is the overload signal. When a
// dispatch pass cannot enqueue every due lineage, the newest lineages
// (largest oldest-member id) are deferred first and the server is
// flagged overloaded, which makes admission reject new hellos until
// the backlog drains. Deferral costs a session nothing but added frame
// latency — and if its queue then overflows, drop-oldest eviction
// surfaces as wire loss, which is exactly the signal the §3.2 loop is
// built to absorb.
type scheduler struct {
	srv *Server

	admit chan *session
	wake  chan struct{}
	// jobs is sharded per worker: each worker owns one queue, and
	// dispatch assigns a lineage to the queue at lin.home — the
	// founder's receive-shard index — modulo the worker count (sticky,
	// so a lineage's cache-warm encode state keeps landing on the same
	// core, and aligned with the shard whose socket and sender carry
	// the founder's datagrams), spilling to the next queues when the
	// sticky one is full. Past GOMAXPROCS=1 this partitions the
	// dispatch fan-in instead of funnelling every worker through one
	// contended channel.
	jobs    []chan *encodeJob
	results chan *encodeJob

	qctl       *adapt.QualityController
	lineages   []*lineage
	pendingEnd map[uint32]*session // queue closed, awaiting sender End
	endScratch []*session          // scratch for sender.takeEnded
	nextLinID  uint32
	overloaded bool

	// orderDirty elides the dispatch-order sort: lineages are sorted by
	// oldest member only after membership or the lineage set changed,
	// not on every pass (at thousands of paced sessions, most passes
	// change nothing).
	orderDirty bool
	// cohortGauges tracks the per-cohort shared-fraction gauges
	// ("server.cohort.<name>.shared_fraction"); entries are removed
	// from the registry when their cohort has no members left.
	cohortGauges map[cohortKey]*obs.Gauge
	cohortCounts map[cohortKey][2]int // scratch: members, lineages
}

func newScheduler(srv *Server, qctl *adapt.QualityController) *scheduler {
	// FarmBacklog stays the total job bound; each worker queue gets an
	// equal share (rounded up so every queue can hold at least one job).
	perQueue := (srv.cfg.FarmBacklog + srv.cfg.FarmWorkers - 1) / srv.cfg.FarmWorkers
	if perQueue < 1 {
		perQueue = 1
	}
	jobs := make([]chan *encodeJob, srv.cfg.FarmWorkers)
	for i := range jobs {
		jobs[i] = make(chan *encodeJob, perQueue)
	}
	return &scheduler{
		srv:          srv,
		admit:        make(chan *session, 256),
		wake:         make(chan struct{}, 1),
		jobs:         jobs,
		results:      make(chan *encodeJob, srv.cfg.FarmBacklog+srv.cfg.FarmWorkers),
		qctl:         qctl,
		pendingEnd:   make(map[uint32]*session),
		cohortGauges: make(map[cohortKey]*obs.Gauge),
		cohortCounts: make(map[cohortKey][2]int),
	}
}

// poke nudges the scheduler without blocking (coalescing is fine: one
// pass services everything pending).
func (sc *scheduler) poke() {
	select {
	case sc.wake <- struct{}{}:
	default:
	}
}

// run is the scheduler goroutine body.
func (sc *scheduler) run(ctx context.Context) {
	defer sc.srv.farmWG.Done()
	for {
		var timerC <-chan time.Time
		var timer *time.Timer
		if d, ok := sc.nextDue(); ok {
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			sc.hardStop(ctx)
			return
		case s := <-sc.admit:
			sc.place(s, time.Now())
		case job := <-sc.results:
			sc.complete(job, time.Now())
		case <-sc.wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
		// Fold any burst into this pass before dispatching.
	drain:
		for {
			select {
			case s := <-sc.admit:
				sc.place(s, time.Now())
			case job := <-sc.results:
				sc.complete(job, time.Now())
			default:
				break drain
			}
		}
		// Collect every shard sender's End confirmations (a sender pokes
		// wake when new ones land, so none linger past the pass they
		// arrived in).
		for _, sh := range sc.srv.shards {
			sc.endScratch = sh.snd.takeEnded(sc.endScratch[:0])
			for _, m := range sc.endScratch {
				sc.finalize(m, nil)
			}
		}
		clear(sc.endScratch)
		now := time.Now()
		sc.reap(now)
		sc.dispatch(now)
	}
}

// nextDue returns how long until the earliest lineage becomes
// dispatchable, clamped to >= 1ms so a deferred-due lineage cannot
// spin the loop.
func (sc *scheduler) nextDue() (time.Duration, bool) {
	var earliest time.Time
	for _, l := range sc.lineages {
		if l.inflight || len(l.members) == 0 {
			continue
		}
		t := l.due
		if !l.started && sc.srv.cfg.CohortWindow > 0 {
			if g := l.formed.Add(sc.srv.cfg.CohortWindow); g.After(t) {
				t = g
			}
		}
		if earliest.IsZero() || t.Before(earliest) {
			earliest = t
		}
	}
	if earliest.IsZero() {
		return 0, false
	}
	d := time.Until(earliest)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, true
}

// place admits a session into the farm: controller state, metrics, and
// a lineage — joining an existing frame-0 lineage of its cohort when
// one exists (encode sharing), otherwise founding a new one.
func (sc *scheduler) place(s *session, now time.Time) {
	cfg := &sc.srv.cfg
	var err error
	if s.est, err = adapt.NewPLREstimator(cfg.EstimatorWeight); err != nil {
		sc.admitFailed(s, err)
		return
	}
	if cfg.EnergyBudget > 0 {
		if s.ectl, err = adapt.NewEnergyController(cfg.EnergyBudget, 0, 0); err != nil {
			sc.admitFailed(s, err)
			return
		}
	}
	s.lastFeedback = now
	s.deadline = now.Add(cfg.SessionTimeout)
	s.sum = SessionSummary{ID: s.id, Client: s.client.String(), FramesRequested: s.req.Frames}
	s.registerMetrics(sc.srv.reg)

	key := keyOf(s.req)
	for _, l := range sc.lineages {
		// Joinable while still at frame 0: every frame-0 dispatch uses
		// knobs (0, 0) — no feedback can have arrived yet — so a joiner
		// is bit-identical to the founders by construction.
		if l.key == key && l.frame == 0 {
			l.members = append(l.members, s)
			s.lin = l
			sc.orderDirty = true
			sc.srv.shards[shardIdx(s)].snd.enroll(s)
			return
		}
	}
	l, err := sc.newLineage(key, s, now)
	if err != nil {
		sc.admitFailed(s, err)
		return
	}
	sc.lineages = append(sc.lineages, l)
	sc.orderDirty = true
	sc.srv.mLineages.Set(float64(len(sc.lineages)))
	sc.srv.shards[shardIdx(s)].snd.enroll(s)
}

// admitFailed finishes a session that never got encode state (the
// accept was already sent, so the client is left to its idle timeout —
// this path needs a construction error, which no valid hello produces).
func (sc *scheduler) admitFailed(s *session, err error) {
	s.sum.Err = err.Error()
	s.finished = true
	sc.srv.finishSession(s)
}

// newLineage builds the encode state for a founding member.
func (sc *scheduler) newLineage(key cohortKey, s *session, now time.Time) (*lineage, error) {
	cfg := &sc.srv.cfg
	src := sc.srv.sourceFor(key.regime)
	w, h := src.Dims()
	planner, err := newPlanner(w, h)
	if err != nil {
		return nil, err
	}
	sc.nextLinID++
	l := &lineage{
		id:      sc.nextLinID,
		key:     key,
		members: []*session{s},
		home:    shardIdx(s),
		formed:  now,
		due:     now,
		src:     src,
		planner: planner,
		pktz:    network.NewPacketizer(cfg.MTU),
	}
	if l.enc, err = newLineageEncoder(cfg, key, w, h, planner, &l.counters); err != nil {
		return nil, err
	}
	if key.fec > 0 {
		if l.fec, err = network.NewFECEncoder(key.fec); err != nil {
			return nil, err
		}
	}
	s.lin = l
	return l, nil
}

// reap handles graceful stops, session deadlines and feedback
// timeouts. Runs every pass so a bye or Shutdown acts promptly even on
// a lineage that is not due.
func (sc *scheduler) reap(now time.Time) {
	cfg := &sc.srv.cfg
	for _, l := range append([]*lineage(nil), sc.lineages...) {
		for _, m := range append([]*session(nil), l.members...) {
			if m.closing {
				continue
			}
			if m.stopReq.Load() {
				sc.closeMember(m)
				continue
			}
			if now.After(m.deadline) {
				m.sum.Err = "serve: session deadline exceeded"
				sc.closeMember(m)
				continue
			}
			if cfg.ReportTimeout > 0 && m.req.ReportEvery > 0 {
				m.drainFeedback(now)
				if now.Sub(m.lastFeedback) > cfg.ReportTimeout {
					m.sum.Err = fmt.Sprintf("serve: no receiver feedback for %v", cfg.ReportTimeout)
					sc.closeMember(m)
				}
			}
		}
	}
}

// dispatch runs one scheduling pass: oldest-member-first over due
// lineages, partitioning each by the knobs its members want (forking
// divergers) and handing encode jobs to the farm until the backlog is
// full. Everything left over is load-shed: deferred, counted, and —
// via the overloaded flag — admission-gated.
func (sc *scheduler) dispatch(now time.Time) {
	if sc.orderDirty {
		sort.Slice(sc.lineages, func(i, j int) bool {
			return sc.lineages[i].oldestMember() < sc.lineages[j].oldestMember()
		})
		sc.orderDirty = false
		sc.updateCohortShared()
	}
	overloaded := false
	// Partitioning may append forked lineages; they inherit the parent's
	// due time and are picked up by the index loop.
	for i := 0; i < len(sc.lineages); i++ {
		l := sc.lineages[i]
		if l.inflight || len(l.members) == 0 {
			continue
		}
		if !l.started && now.Before(l.formed.Add(sc.srv.cfg.CohortWindow)) {
			continue
		}
		if now.Before(l.due) {
			continue
		}
		if overloaded {
			sc.srv.mShedDeferrals.Add(1)
			continue
		}
		knob, ok := sc.partition(l, now)
		if !ok {
			continue // lineage dissolved (fork error path)
		}
		job := &encodeJob{lin: l, frame: l.frame, knob: knob, start: now}
		if sc.enqueue(l, job) {
			l.inflight = true
			l.started = true
			if sc.srv.cfg.FrameInterval > 0 {
				l.due = now.Add(sc.srv.cfg.FrameInterval)
			}
		} else {
			overloaded = true
			sc.srv.mShedDeferrals.Add(1)
		}
	}
	depth := 0
	for _, q := range sc.jobs {
		depth += len(q)
	}
	sc.srv.mFarmDepth.Set(float64(depth))
	sc.setOverloaded(overloaded)
}

// enqueue offers a job to the lineage's sticky worker queue first, then
// spills to the others; false means every queue is full (overload).
func (sc *scheduler) enqueue(l *lineage, job *encodeJob) bool {
	qi := l.home % len(sc.jobs)
	for k := 0; k < len(sc.jobs); k++ {
		select {
		case sc.jobs[(qi+k)%len(sc.jobs)] <- job:
			return true
		default:
		}
	}
	return false
}

// updateCohortShared refreshes the per-cohort shared-fraction gauges:
// 1 − lineages/members per cohort (1 would mean every member rides one
// lineage for free; 0 means every member encodes privately). Gauges of
// emptied cohorts are unregistered so the registry tracks the live set.
func (sc *scheduler) updateCohortShared() {
	counts := sc.cohortCounts
	clear(counts)
	for _, l := range sc.lineages {
		if len(l.members) == 0 {
			continue
		}
		c := counts[l.key]
		c[0] += len(l.members)
		c[1]++
		counts[l.key] = c
	}
	for key := range sc.cohortGauges {
		if _, live := counts[key]; !live {
			sc.srv.reg.RemovePrefix("server.cohort." + key.name() + ".")
			delete(sc.cohortGauges, key)
		}
	}
	for key, c := range counts {
		g := sc.cohortGauges[key]
		if g == nil {
			g = sc.srv.reg.Gauge("server.cohort." + key.name() + ".shared_fraction")
			sc.cohortGauges[key] = g
		}
		g.Set(1 - float64(c[1])/float64(c[0]))
	}
}

func (sc *scheduler) setOverloaded(v bool) {
	if v == sc.overloaded {
		return
	}
	sc.overloaded = v
	sc.srv.overloaded.Store(v)
	if v {
		sc.srv.mOverloaded.Set(1)
	} else {
		sc.srv.mOverloaded.Set(0)
	}
}

// partition drains every member's feedback, groups members by the
// knobs they want applied next, forks every group that diverged from
// the one holding the oldest member, and returns the knobs for the
// lineage l itself. Forked lineages keep l's due time, so divergence
// never costs a frame of pacing.
func (sc *scheduler) partition(l *lineage, now time.Time) (lineageKnobs, bool) {
	type group struct {
		knob    lineageKnobs
		members []*session
	}
	groups := make(map[[2]uint64]*group)
	var order [][2]uint64
	for _, m := range l.members {
		m.drainFeedback(now)
		k := m.knobs(sc.qctl, sc.srv.cfg.AlphaQuantum)
		bits := k.bits()
		g := groups[bits]
		if g == nil {
			g = &group{knob: k}
			groups[bits] = g
			order = append(order, bits)
		}
		g.members = append(g.members, m)
	}
	// The group holding the oldest member keeps the parent lineage (and
	// with it the parent's scheduling priority).
	keeper := order[0]
	oldest := ^uint32(0)
	for _, bits := range order {
		for _, m := range groups[bits].members {
			if m.id < oldest {
				oldest = m.id
				keeper = bits
			}
		}
	}
	for _, bits := range order {
		if bits == keeper {
			continue
		}
		g := groups[bits]
		sc.nextLinID++
		nl, err := l.fork(sc.nextLinID, g.members)
		if err != nil {
			for _, m := range g.members {
				m.sum.Err = err.Error()
				sc.closeMember(m)
			}
			continue
		}
		sc.lineages = append(sc.lineages, nl)
		sc.orderDirty = true
		sc.srv.mForks.Add(1)
	}
	sc.srv.mLineages.Set(float64(len(sc.lineages)))
	if len(l.members) == 0 {
		sc.dropLineage(l)
		return lineageKnobs{}, false
	}
	return groups[keeper].knob, true
}

// complete fans a finished encode out to every member of its lineage,
// advances their books, and retires members that reached their
// requested frame count.
func (sc *scheduler) complete(job *encodeJob, now time.Time) {
	l := job.lin
	l.inflight = false
	if job.err != nil {
		for _, m := range append([]*session(nil), l.members...) {
			m.sum.Err = job.err.Error()
			sc.closeMember(m)
		}
		sc.dropLineage(l)
		return
	}
	l.frame = job.frame + 1
	profile := sc.srv.cfg.Profile
	totalJoules := profile.Joules(l.counters)
	fanout := 0
	for _, m := range l.members {
		if !m.closing {
			fanout++
		}
	}
	// Fan the frame out to every live member. Members are independent
	// (each owns its queue, books and metrics), so a mega-lineage's
	// fanout parallelises across cores; small lineages stay serial —
	// parallel.ForEach degrades to an inline loop at workers==1, and
	// below the threshold the goroutine round-trip costs more than the
	// bookkeeping it would spread out.
	members := l.members
	fan := func(i int) {
		m := members[i]
		if m.closing {
			return
		}
		sc.fanoutMember(m, job, totalJoules)
	}
	if fanout >= parallelFanoutMin {
		parallel.ForEach(0, len(members), fan)
	} else {
		for i := range members {
			fan(i)
		}
	}
	sc.srv.mEncodes.Add(1)
	if fanout > 1 {
		sc.srv.mSharedFrames.Add(int64(fanout - 1))
	}
	sc.srv.mEncodeLat.Observe(job.encodeTime)
	sc.srv.pokeSenders()

	for _, m := range append([]*session(nil), l.members...) {
		if !m.closing && m.sum.FramesEncoded >= m.req.Frames {
			sc.closeMember(m)
		}
	}
	if len(l.members) == 0 {
		sc.dropLineage(l)
		return
	}
	sc.tryMerge(l)
}

// parallelFanoutMin is the member count above which complete() fans a
// frame out with parallel workers instead of a serial loop.
const parallelFanoutMin = 64

// fanoutMember delivers one encoded frame to one member: queue push,
// summary books, trace point, per-session metrics. Safe to run for
// different members concurrently — every touched field belongs to m
// alone (the frameQueue's single-producer contract holds per queue:
// the scheduler is the only producer, whether it pushes inline or via
// the joined fanout workers).
func (sc *scheduler) fanoutMember(m *session, job *encodeJob, totalJoules float64) {
	m.queue.push(queuedFrame{frame: job.frame, pkts: job.pkts, enqueued: job.start})
	m.framesEncoded.Store(int64(job.frame + 1))
	m.sum.FramesEncoded = job.frame + 1
	m.sum.IntraMBs += int64(job.intraMBs)
	m.sum.FinalAlpha = job.knob.plr
	m.sum.FinalIntraTh = job.knob.th
	m.sum.EnergyJoules = totalJoules
	m.sum.Trace = append(m.sum.Trace, TracePoint{
		Frame: job.frame, Alpha: job.knob.plr, IntraTh: job.knob.th, IntraMBs: job.intraMBs,
	})
	if m.ectl != nil {
		m.ectl.Observe(job.frameEnergy)
	}
	m.mFrames.Add(1)
	m.mIntra.Add(int64(job.intraMBs))
	m.mAlpha.Set(job.knob.plr)
	m.mTh.Set(job.knob.th)
	m.mDepth.Set(float64(m.queue.depth()))
	m.mJoules.Set(totalJoules)
	m.mEncode.Observe(job.encodeTime)
	if d := m.queue.droppedFrames() - m.sum.QueueDroppedFrames; d > 0 {
		m.mQueueDrop.Add(d)
		m.sum.QueueDroppedFrames += d
	}
}

// tryMerge folds lineage l back into a cohort-mate when their streams
// have provably reconverged — the inverse of the partition fork. The
// preconditions mirror the correctness argument in lineage.go: both
// lineages quiescent (every member's applied knobs exactly (0, 0), so
// divergent planner σ histories cannot reach the bitstream), neither
// inflight, and bit-identical encoder + packetiser state. Cheap
// filters run first; the reference-frame digest and deep comparison
// only happen for genuine reconvergence candidates. At most one merge
// per call — the next completion retries, so chains of forks still
// collapse, just one completion apart.
func (sc *scheduler) tryMerge(l *lineage) {
	if sc.srv.cfg.DisableMerge || l.inflight || !l.started || len(l.members) == 0 {
		return
	}
	if !sc.quiescent(l) {
		return
	}
	for _, p := range sc.lineages {
		if p == l || p.inflight || !p.started || len(p.members) == 0 || p.key != l.key {
			continue
		}
		if !sc.quiescent(p) || !l.stateMatches(p) {
			continue
		}
		// Fold the younger lineage into the older so the merged lineage
		// keeps the older scheduling priority (and the members that have
		// been waiting longest keep their place in line).
		keep, drop := l, p
		if p.oldestMember() < l.oldestMember() {
			keep, drop = p, l
		}
		for _, m := range drop.members {
			m.lin = keep
		}
		keep.members = append(keep.members, drop.members...)
		drop.members = nil
		if drop.due.Before(keep.due) {
			keep.due = drop.due
		}
		sc.dropLineage(drop)
		sc.srv.mMerges.Add(1)
		sc.srv.cfg.logf("lineage %d: merged into lineage %d at frame %d (%d members)",
			drop.id, keep.id, keep.frame, len(keep.members))
		return
	}
}

// quiescent reports whether every member of l currently wants the
// frame-0 operating point — applied knobs exactly (0, 0).
func (sc *scheduler) quiescent(l *lineage) bool {
	for _, m := range l.members {
		if m.closing {
			continue
		}
		if m.knobs(sc.qctl, sc.srv.cfg.AlphaQuantum).bits() != [2]uint64{} {
			return false
		}
	}
	return true
}

// closeMember ends a member's production: its queue closes (the sender
// drains what is queued and announces the end of the stream) and it
// leaves its lineage. Finalisation waits for the sender's End
// confirmation so packet/byte counts are complete.
func (sc *scheduler) closeMember(m *session) {
	if m.closing || m.finished {
		return
	}
	m.closing = true
	m.queue.close()
	if m.lin != nil {
		m.lin.removeMember(m)
		sc.orderDirty = true
		if len(m.lin.members) == 0 && !m.lin.inflight {
			sc.dropLineage(m.lin)
		}
		m.lin = nil
	}
	sc.pendingEnd[m.id] = m
	sc.srv.pokeSenders()
}

func (sc *scheduler) dropLineage(l *lineage) {
	for i, x := range sc.lineages {
		if x == l {
			sc.lineages = append(sc.lineages[:i], sc.lineages[i+1:]...)
			break
		}
	}
	sc.orderDirty = true
	sc.srv.mLineages.Set(float64(len(sc.lineages)))
}

// finalize records a session's summary once its End is on the wire (or
// once a hard stop abandons it, err non-nil).
func (sc *scheduler) finalize(m *session, err error) {
	if m.finished {
		return
	}
	m.finished = true
	delete(sc.pendingEnd, m.id)
	// Late feedback that arrived after the last frame still counts in
	// the books (a final report races the End datagram).
	for {
		select {
		case <-m.feedback:
			m.sum.Reports++
			m.mReports.Add(1)
			continue
		default:
		}
		break
	}
	m.sum.PacketsSent = m.mPackets.Value()
	m.sum.BytesSent = m.mBytes.Value()
	if d := m.queue.droppedFrames() - m.sum.QueueDroppedFrames; d > 0 {
		m.mQueueDrop.Add(d)
		m.sum.QueueDroppedFrames += d
	}
	if err != nil && m.sum.Err == "" {
		m.sum.Err = err.Error()
	}
	sc.srv.finishSession(m)
}

// hardStop abandons every live session when the root context is
// cancelled (Close, or Shutdown's drain budget expiring). Summaries
// are still recorded — with the cancellation as their error — so no
// session ever vanishes from the books.
func (sc *scheduler) hardStop(ctx context.Context) {
	err := ctx.Err()
	for _, l := range append([]*lineage(nil), sc.lineages...) {
		for _, m := range append([]*session(nil), l.members...) {
			if !m.closing {
				m.closing = true
				m.queue.close()
			}
			m.lin = nil
			sc.finalize(m, err)
		}
	}
	sc.lineages = nil
	for _, m := range sc.pendingEnd {
		sc.finalize(m, err)
	}
	// Admissions racing the cancellation still need their books closed.
	for {
		select {
		case s := <-sc.admit:
			s.sum = SessionSummary{ID: s.id, Client: s.client.String(), FramesRequested: s.req.Frames, Err: err.Error()}
			s.finished = true
			sc.srv.finishSession(s)
		default:
			return
		}
	}
}

// worker is one farm goroutine: it borrows a lineage's encode state
// for the duration of a job (the scheduler guarantees exclusivity via
// the inflight flag) and hands the result back. Worker i owns job
// queue i — see the scheduler.jobs field and enqueue for the sticky
// sharding.
func (sc *scheduler) worker(ctx context.Context, i int) {
	defer sc.srv.farmWG.Done()
	queue := sc.jobs[i]
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-queue:
			sc.encode(job)
			select {
			case sc.results <- job:
			case <-ctx.Done():
				return
			}
		}
	}
}

// encode runs the job: retune the planner, encode, packetise, protect.
func (sc *scheduler) encode(job *encodeJob) {
	l := job.lin
	l.planner.SetPLR(job.knob.plr)
	l.planner.SetIntraTh(job.knob.th)
	t0 := time.Now()
	ef, err := l.enc.EncodeFrame(l.src.Frame(job.frame))
	job.encodeTime = time.Since(t0)
	if err != nil {
		job.err = err
		return
	}
	var pkts []network.Packet
	if l.key.interleave > 1 {
		pkts = l.pktz.PacketizeInterleaved(ef, l.key.interleave)
	} else {
		pkts = l.pktz.Packetize(ef)
	}
	if l.fec != nil {
		pkts = append(l.fec.Protect(pkts), l.fec.Flush()...)
	}
	job.pkts = pkts
	job.intraMBs = ef.Plan.IntraCount()
	job.frameEnergy = sc.srv.cfg.Profile.Joules(l.counters.Sub(l.prevCounters))
	l.prevCounters = l.counters
}
