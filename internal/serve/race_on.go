//go:build race

package serve

// raceEnabled reports whether this binary was built with the race
// detector. The big soaks scale their session counts down under -race
// (each goroutine costs roughly an order of magnitude more memory and
// CPU there) so race runs still finish inside CI budgets while
// exercising the same concurrency structure.
const raceEnabled = true
