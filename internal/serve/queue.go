package serve

import (
	"sync/atomic"
	"time"

	"pbpair/internal/network"
)

// queuedFrame is one encoded frame's packet burst, queued for the
// sender. enqueued is the scheduler's dispatch stamp, so the sender
// can observe the full scheduling→wire frame latency.
type queuedFrame struct {
	frame    int
	pkts     []network.Packet
	enqueued time.Time
}

// frameQueue is the bounded per-session send queue with the serving
// layer's explicit backpressure policy: drop-oldest. When the encoder
// outruns the sender (slow pacing, a stalled socket), pushing a new
// frame evicts the oldest queued frame instead of blocking the encoder
// or growing without bound. Old video is the right thing to lose — a
// late frame is a useless frame, and the receiver's loss monitor
// counts the evicted packets as wire loss, which feeds back into the
// controller exactly like congestion should.
//
// Concurrency contract: exactly one producer (the scheduler, which
// also calls close) and one consumer (the sender goroutine).
// Single-producer is what makes the evict-then-retry loop below
// race-free: nobody else can fill the slot the producer just freed.
type frameQueue struct {
	ch      chan queuedFrame
	dropped atomic.Int64
}

func newFrameQueue(capacity int) *frameQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &frameQueue{ch: make(chan queuedFrame, capacity)}
}

// push enqueues item, evicting oldest entries as needed. It never
// blocks for longer than the eviction takes.
func (q *frameQueue) push(item queuedFrame) {
	for {
		select {
		case q.ch <- item:
			return
		default:
		}
		select {
		case <-q.ch:
			q.dropped.Add(1)
		default:
			// Consumer drained the queue between our two selects; the
			// next push attempt will succeed.
		}
	}
}

// close marks the end of the stream; the consumer drains what remains.
func (q *frameQueue) close() { close(q.ch) }

// depth returns the current number of queued frames.
func (q *frameQueue) depth() int { return len(q.ch) }

// droppedFrames returns how many frames backpressure evicted.
func (q *frameQueue) droppedFrames() int64 { return q.dropped.Load() }
