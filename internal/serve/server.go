package serve

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pbpair/internal/adapt"
	"pbpair/internal/energy"
	"pbpair/internal/motion"
	"pbpair/internal/network"
	"pbpair/internal/obs"
	"pbpair/internal/parallel"
	"pbpair/internal/synth"
)

// Config parameterises a Server. The zero value plus an Addr is
// usable; withDefaults fills the rest.
type Config struct {
	// Addr is the UDP address to listen on ("127.0.0.1:0" for an
	// ephemeral loopback port).
	Addr string

	// MaxSessions is the admission cap: hellos beyond it are rejected
	// with a reason. Default 8.
	MaxSessions int
	// MaxFrames caps a single session's requested frame count.
	// Default 100000.
	MaxFrames int
	// QueueFrames is the per-session send-queue capacity in frames;
	// beyond it the drop-oldest backpressure policy evicts. Default 32.
	QueueFrames int
	// MTU bounds media packet payloads. Default 1400.
	MTU int
	// FrameInterval paces each lineage between frames (0 = unpaced, as
	// fast as the farm allows). Default 0.
	FrameInterval time.Duration
	// SessionTimeout is the hard per-session deadline. Default 10m.
	SessionTimeout time.Duration
	// ReportTimeout aborts a session whose client promised reports
	// (ReportEvery > 0 in its hello) but has sent none for this long.
	// 0 disables the check.
	ReportTimeout time.Duration

	// Workers is codec.Config.Workers for each lineage's encoder
	// (intra-frame sharding). Default 1: the farm already runs
	// FarmWorkers encodes concurrently.
	Workers int
	// Search selects the motion search. Default ThreeStep — the
	// serving layer favours latency over the exhaustive reference
	// search the offline experiments use.
	Search motion.SearchKind

	// FarmWorkers is the encode farm size: how many frame encodes run
	// concurrently, across all sessions. Default GOMAXPROCS. The farm
	// is the server's fixed goroutine budget — session count does not
	// change the goroutine topology.
	FarmWorkers int
	// FarmBacklog bounds the farm's job queue. When a scheduling pass
	// cannot enqueue every due lineage, the newest lineages are
	// deferred first (load shedding) and admission rejects new hellos
	// until the backlog drains. Default 2 × FarmWorkers.
	FarmBacklog int
	// CohortWindow is how long a newly formed lineage lingers at frame
	// 0 so that compatible sessions arriving within the window join it
	// and share its encodes. 0 (the default) starts lineages
	// immediately; sessions admitted while frame 0 is still pending
	// can join regardless.
	CohortWindow time.Duration
	// CoalesceBytes bounds a coalesced 'C' media datagram's payload:
	// consecutive small packets for one session are packed together up
	// to this size, cutting per-datagram overhead. 0 selects MTU + 64
	// (coalescing within the path MTU); negative disables coalescing
	// (every packet rides its own 'M' datagram).
	CoalesceBytes int
	// RecvBatch is how many datagrams the read loop asks the kernel for
	// per receive pass (recvmmsg(2) batching on Linux; elsewhere the
	// portable one-read path fills one slot per pass and the rest of the
	// ring is just headroom). Default 32.
	RecvBatch int
	// RecvShards shards the datapath across N SO_REUSEPORT sockets,
	// each with its own read loop and its own batched sender, so
	// neither direction of the socket serialises through one goroutine.
	// The kernel steers each client's datagrams to one shard by 4-tuple
	// hash; admission pins the session's send path to that same shard.
	// 0 selects FarmWorkers shards on Linux and 1 elsewhere; values > 1
	// are clamped to 1 on platforms without Linux SO_REUSEPORT
	// semantics (single-socket fallback, identical receiver-visible
	// behaviour).
	RecvShards int

	// AlphaQuantum quantises each session's α̂ to the nearest multiple
	// before the controllers and the lineage partition see it. The
	// estimator keeps full precision internally; quantisation only
	// coarsens the *applied* knob, which (a) stops two sessions whose
	// EMAs differ by a few ulps from forking onto separate lineages and
	// (b) gives a recovered session a reachable way back to exactly
	// α̂ = 0, the precondition for lineage re-merge. Default 1/64;
	// negative disables quantisation (every ulp forks, nothing merges).
	AlphaQuantum float64
	// DisableMerge turns off lineage re-merging: forked lineages that
	// return to bit-identical encoder/packetiser state are normally
	// folded back into their cohort-mates so they share encodes again.
	DisableMerge bool

	// EstimatorWeight smooths receiver reports into α̂ (report-level
	// EMA weight; see adapt.PLREstimator.ObserveReport). Default 0.35.
	EstimatorWeight float64
	// RefreshInterval is the quality controller's target refresh
	// interval n* in frames. Default 6.
	RefreshInterval float64
	// Similarity is the controller's assumed content similarity factor.
	// Default 0.75.
	Similarity float64
	// EnergyBudget, if positive, adds an energy controller that raises
	// Intra_Th above the quality controller's value while the modelled
	// per-frame encode energy exceeds the budget (joules per frame).
	EnergyBudget float64
	// Profile is the energy model device profile. Default energy.IPAQ.
	Profile energy.Profile

	// Registry receives the server's metrics; one is created if nil.
	Registry *obs.Registry
	// Logf, if set, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = 100000
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 32
	}
	if c.MTU <= 0 {
		c.MTU = 1400
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 10 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.FarmWorkers <= 0 {
		c.FarmWorkers = runtime.GOMAXPROCS(0)
	}
	if c.FarmBacklog <= 0 {
		c.FarmBacklog = 2 * c.FarmWorkers
	}
	if c.CoalesceBytes == 0 {
		c.CoalesceBytes = c.MTU + 64
	}
	if c.RecvBatch <= 0 {
		c.RecvBatch = 32
	}
	if c.RecvShards == 0 {
		if network.ReusePortSupported() {
			c.RecvShards = c.FarmWorkers
		} else {
			c.RecvShards = 1
		}
	}
	if c.RecvShards < 1 || !network.ReusePortSupported() {
		c.RecvShards = 1
	}
	if c.AlphaQuantum == 0 {
		c.AlphaQuantum = 1.0 / 64
	}
	if c.Search == 0 {
		c.Search = motion.ThreeStep
	}
	if c.EstimatorWeight <= 0 || c.EstimatorWeight > 1 {
		c.EstimatorWeight = 0.35
	}
	if c.RefreshInterval < 1 {
		c.RefreshInterval = 6
	}
	if c.Similarity <= 0 {
		c.Similarity = 0.75
	}
	if c.Profile.Name == "" {
		c.Profile = energy.IPAQ
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// maxKeptSummaries bounds the completed-session history.
const maxKeptSummaries = 256

// shard is one slice of the sharded datapath: a socket (bound with
// SO_REUSEPORT alongside its peers when RecvShards > 1), the read loop
// state draining it, and the sender goroutine transmitting on it. The
// kernel's 4-tuple steering keeps each client's inbound datagrams on
// one shard's socket; admission pins the session's outbound media to
// the same shard's sender. Control datagrams that land on another
// shard anyway (steering is only hash-stable, not contractual) are
// handled in place — session lookup is global and the feedback channel
// accepts sends from any goroutine, so the cross-shard hand-off costs
// no forwarding hop and takes no lock beyond the session-table lookup
// every datagram already pays.
type shard struct {
	idx  int
	srv  *Server
	conn *net.UDPConn
	snd  *sender

	// mRecvDatagrams is this shard's inbound datagram count
	// ("server.shard<idx>.recv_datagrams"): the balance evidence for
	// server.shard_rx_balance and the operator's view of how evenly the
	// kernel is steering flows.
	mRecvDatagrams *obs.Counter
}

// writeTo sends one datagram on this shard's socket, reporting success.
func (sh *shard) writeTo(buf []byte, addr *net.UDPAddr) bool {
	_, err := sh.conn.WriteToUDP(buf, addr)
	return err == nil
}

// Server runs the serving layer: RecvShards UDP sockets sharing one
// addr:port (SO_REUSEPORT) carrying every session's media, feedback
// and control datagrams, a shared encode farm behind a single
// scheduler goroutine, one batched sender per shard, and an
// obs.Registry exporting the lot. The goroutine topology is fixed —
// RecvShards read loops + scheduler + RecvShards senders + FarmWorkers
// farm workers — no matter how many sessions are live; sessions are
// state machines, not goroutines. See ARCHITECTURE.md, "Serving layer"
// and "Receive sharding".
type Server struct {
	cfg    Config
	shards []*shard
	reg    *obs.Registry

	rootCtx context.Context
	cancel  context.CancelFunc
	readWG  sync.WaitGroup
	farmWG  sync.WaitGroup

	sched *scheduler

	// overloaded mirrors the scheduler's load-shed state for the
	// admission path (readLoop), which must not touch scheduler state.
	overloaded atomic.Bool

	mu        sync.Mutex
	accepting bool
	sessions  map[uint32]*session
	byAddr    map[string]*session
	nextID    uint32
	summaries []SessionSummary
	sources   map[synth.Regime]synth.Source

	mActive        *obs.Gauge
	mStarted       *obs.Counter
	mRejected      *obs.Counter
	mCompleted     *obs.Counter
	mBadDatagrams  *obs.Counter
	mLostFeedback  *obs.Counter
	mEncodes       *obs.Counter
	mSharedFrames  *obs.Counter
	mForks         *obs.Counter
	mMerges        *obs.Counter
	mLineages      *obs.Gauge
	mFarmDepth     *obs.Gauge
	mShedDeferrals *obs.Counter
	mShedRejects   *obs.Counter
	mOverloaded    *obs.Gauge
	mSendBatches   *obs.Counter
	mSendDatagrams *obs.Counter
	mRecvBatches   *obs.Counter
	mRecvDatagrams *obs.Counter
	mRecvBatchSize *obs.Histogram
	mCoalesced     *obs.Counter
	mFrameLat      *obs.Histogram
	mEncodeLat     *obs.Histogram
	mE2ELat        *obs.Histogram
	mShardBalance  *obs.Gauge
	mRcvbufBytes   *obs.Gauge
	mSndbufBytes   *obs.Gauge
}

// sockBufRequest is the socket buffer size asked of every shard
// socket in both directions. Scale-out serving floods the sockets: an
// admission storm of hellos inbound, every member's media outbound.
// The kernel default (~208KB) holds only a few thousand datagrams, so
// a 10k-client launch wave overflows it before the read loops can
// drain. The request is best-effort — the kernel silently clamps to
// its rmem_max/wmem_max ceilings — which is why New reads the
// effective sizes back rather than trusting the ask.
const sockBufRequest = 4 << 20

// listenShards binds the server's socket set: one plain socket, or
// RecvShards SO_REUSEPORT sockets sharing cfg.Addr so the kernel
// load-balances inbound flows across them. The first socket may bind
// an ephemeral port; the rest bind its resolved concrete address.
func listenShards(cfg *Config) ([]*net.UDPConn, error) {
	if cfg.RecvShards <= 1 {
		addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("serve: resolve %q: %w", cfg.Addr, err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("serve: listen: %w", err)
		}
		return []*net.UDPConn{conn}, nil
	}
	first, err := network.ListenUDPReusePort("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen (reuseport): %w", err)
	}
	conns := []*net.UDPConn{first}
	bound := first.LocalAddr().String()
	for i := 1; i < cfg.RecvShards; i++ {
		c, err := network.ListenUDPReusePort("udp", bound)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("serve: listen shard %d (reuseport): %w", i, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// New binds the shard socket set and starts the farm: the
// demultiplexing read loops, the scheduler, the per-shard batched
// senders and the encode workers. The caller must eventually Shutdown
// or Close.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	conns, err := listenShards(&cfg)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for _, c := range conns {
		c.SetReadBuffer(sockBufRequest)
		c.SetWriteBuffer(sockBufRequest)
	}
	qctl, err := adapt.NewQualityController(cfg.RefreshInterval)
	if err != nil {
		closeAll()
		return nil, err
	}
	qctl.SetSimilarity(cfg.Similarity)

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Registry,
		rootCtx:   ctx,
		cancel:    cancel,
		accepting: true,
		sessions:  make(map[uint32]*session),
		byAddr:    make(map[string]*session),
		sources:   make(map[synth.Regime]synth.Source),

		mActive:        cfg.Registry.Gauge("server.sessions_active"),
		mStarted:       cfg.Registry.Counter("server.sessions_started"),
		mRejected:      cfg.Registry.Counter("server.sessions_rejected"),
		mCompleted:     cfg.Registry.Counter("server.sessions_completed"),
		mBadDatagrams:  cfg.Registry.Counter("server.bad_datagrams"),
		mLostFeedback:  cfg.Registry.Counter("server.feedback_dropped"),
		mEncodes:       cfg.Registry.Counter("server.encodes"),
		mSharedFrames:  cfg.Registry.Counter("server.encode_shared_frames"),
		mForks:         cfg.Registry.Counter("server.lineage_forks"),
		mMerges:        cfg.Registry.Counter("server.lineage_merges"),
		mLineages:      cfg.Registry.Gauge("server.lineages_active"),
		mFarmDepth:     cfg.Registry.Gauge("server.farm_queue_depth"),
		mShedDeferrals: cfg.Registry.Counter("server.loadshed_deferrals"),
		mShedRejects:   cfg.Registry.Counter("server.loadshed_rejects"),
		mOverloaded:    cfg.Registry.Gauge("server.overloaded"),
		mSendBatches:   cfg.Registry.Counter("server.send_batches"),
		mSendDatagrams: cfg.Registry.Counter("server.send_datagrams"),
		mRecvBatches:   cfg.Registry.Counter("server.recv_batches"),
		mRecvDatagrams: cfg.Registry.Counter("server.recv_datagrams"),
		mRecvBatchSize: cfg.Registry.Histogram("server.recv_batch_size"),
		mCoalesced:     cfg.Registry.Counter("server.coalesced_packets"),
		mFrameLat:      cfg.Registry.Histogram("server.frame_latency"),
		mEncodeLat:     cfg.Registry.Histogram("server.encode_latency"),
		mE2ELat:        cfg.Registry.Histogram("server.e2e_latency"),
		mShardBalance:  cfg.Registry.Gauge("server.shard_rx_balance"),
		mRcvbufBytes:   cfg.Registry.Gauge("server.rcvbuf_bytes"),
		mSndbufBytes:   cfg.Registry.Gauge("server.sndbuf_bytes"),
	}
	s.mShardBalance.Set(1) // no traffic yet: trivially balanced
	s.checkSocketBuffers(conns)
	for i, c := range conns {
		sh := &shard{
			idx:            i,
			srv:            s,
			conn:           c,
			mRecvDatagrams: cfg.Registry.Counter(fmt.Sprintf("server.shard%d.recv_datagrams", i)),
		}
		sh.snd = newSender(s, sh)
		s.shards = append(s.shards, sh)
	}
	s.sched = newScheduler(s, qctl)

	s.readWG.Add(len(s.shards))
	for _, sh := range s.shards {
		go s.readLoop(sh)
	}
	s.farmWG.Add(1 + len(s.shards) + cfg.FarmWorkers)
	go s.sched.run(ctx)
	for _, sh := range s.shards {
		go sh.snd.run(ctx)
	}
	for i := 0; i < cfg.FarmWorkers; i++ {
		go s.sched.worker(ctx, i)
	}
	return s, nil
}

// checkSocketBuffers verifies the sockBufRequest actually took: the
// kernel clamps SetReadBuffer/SetWriteBuffer to rmem_max/wmem_max
// without reporting it, and an operator sizing a fleet off the request
// would plan for queue capacity the sockets don't have. The effective
// minima across shards are exported as gauges and a clamp is logged
// once with the sysctl to raise.
func (s *Server) checkSocketBuffers(conns []*net.UDPConn) {
	minRcv, minSnd := -1, -1
	for _, c := range conns {
		rcv, snd, ok := network.SocketBuffers(c)
		if !ok {
			return // no readback on this platform: trust the request
		}
		if minRcv < 0 || rcv < minRcv {
			minRcv = rcv
		}
		if minSnd < 0 || snd < minSnd {
			minSnd = snd
		}
	}
	if minRcv < 0 {
		return
	}
	s.mRcvbufBytes.Set(float64(minRcv))
	s.mSndbufBytes.Set(float64(minSnd))
	// Linux reports double the usable request (bookkeeping overhead is
	// billed to the buffer), so effective < requested means the request
	// was genuinely clamped, not just accounted differently.
	if minRcv < sockBufRequest {
		s.cfg.logf("socket rcvbuf clamped to %d bytes (asked %d; raise net.core.rmem_max)",
			minRcv, sockBufRequest)
	}
	if minSnd < sockBufRequest {
		s.cfg.logf("socket sndbuf clamped to %d bytes (asked %d; raise net.core.wmem_max)",
			minSnd, sockBufRequest)
	}
}

// Addr returns the bound UDP address (shared by every shard socket).
func (s *Server) Addr() *net.UDPAddr { return s.shards[0].conn.LocalAddr().(*net.UDPAddr) }

// Registry returns the server's metric registry (mount it on an HTTP
// mux for the observability endpoint — it implements http.Handler).
func (s *Server) Registry() *obs.Registry { return s.reg }

// ActiveSessions returns the number of live sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Summaries returns the completed-session history, oldest first (most
// recent maxKeptSummaries).
func (s *Server) Summaries() []SessionSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionSummary, len(s.summaries))
	copy(out, s.summaries)
	return out
}

// sourceFor returns the regime's shared frame source: one bounded
// window memo per regime, so every lineage of a regime shares frame
// renders while memory stays bounded on unbounded streams.
func (s *Server) sourceFor(r synth.Regime) synth.Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.sources[r]
	if !ok {
		src = synth.MemoizeWindow(synth.New(r), 2*s.cfg.QueueFrames)
		s.sources[r] = src
	}
	return src
}

// pokeSenders nudges every shard's sender (all pokes are non-blocking
// one-slot channel sends, so this is a handful of atomic operations).
// The scheduler uses it after fanout and close passes: a lineage's
// members can span shards, so the frame completion must wake each
// shard that might now have queued media.
func (s *Server) pokeSenders() {
	for _, sh := range s.shards {
		sh.snd.poke()
	}
}

// updateShardBalance refreshes server.shard_rx_balance: the min/max
// ratio of per-shard received datagram counts (1.0 = perfectly even,
// and by convention also the single-shard value). Called from the read
// loops once per batch — a few atomic loads — so the gauge tracks the
// kernel's live flow steering without a sampler goroutine.
func (s *Server) updateShardBalance() {
	var minN, maxN int64 = -1, 0
	for _, sh := range s.shards {
		n := sh.mRecvDatagrams.Value()
		if minN < 0 || n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN > 0 {
		s.mShardBalance.Set(float64(minN) / float64(maxN))
	}
}

// recvBufBytes sizes each receive-ring buffer. Every inbound datagram
// type — hello, report, bye — is tens of bytes; an oversized datagram
// truncates (standard UDP read semantics) and fails its parse, which
// is exactly how a corrupt datagram is handled anyway.
const recvBufBytes = 2048

// readLoop demultiplexes one shard's inbound datagrams until its
// socket closes; with RecvShards > 1 the kernel fans the client
// population across the loops, so the receive path scales with cores
// instead of serialising through one goroutine. Each loop reads
// through its own network.BatchReceiver, so a burst of feedback from
// thousands of receivers drains in one recvmmsg(2) per RecvBatch
// datagrams on Linux rather than one syscall each. The slot ring is
// the read path's buffer pool: allocated once here and reused for
// every batch by whichever receiver implementation is active (recvmmsg
// or the portable fallback), keeping the steady state allocation-free.
func (s *Server) readLoop(sh *shard) {
	defer s.readWG.Done()
	recv := network.NewBatchReceiver(sh.conn)
	slots := make([]network.RecvSlot, s.cfg.RecvBatch)
	for i := range slots {
		slots[i].Buf = make([]byte, recvBufBytes)
	}
	for {
		n, err := recv.RecvBatch(slots)
		if err != nil {
			return // socket closed by Shutdown/Close
		}
		if n == 0 {
			continue
		}
		s.mRecvBatches.Add(1)
		s.mRecvDatagrams.Add(int64(n))
		s.mRecvBatchSize.ObserveValue(int64(n))
		sh.mRecvDatagrams.Add(int64(n))
		s.updateShardBalance()
		for i := 0; i < n; i++ {
			s.handleDatagram(sh, slots[i].Buf[:slots[i].N], slots[i].Addr)
		}
	}
}

// handleDatagram dispatches one inbound datagram that arrived on shard
// sh. The report path — the hot one at scale, every receiver sends
// them continuously — must stay allocation-free (pinned by
// TestHandleDatagramAllocFree); the hello path converts the address to
// *net.UDPAddr and may allocate, which a once-per-session event can
// afford. The shard matters only for replies (accepts and rejects go
// back out the socket the datagram came in on) and for pinning new
// sessions; reports and byes for sessions pinned elsewhere are handled
// right here — the cross-shard hand-off — because the session table is
// shared and the feedback channel takes sends from any goroutine.
func (s *Server) handleDatagram(sh *shard, buf []byte, from netip.AddrPort) {
	if len(buf) == 0 {
		return
	}
	switch buf[0] {
	case msgHello:
		s.handleHello(sh, buf, net.UDPAddrFromAddrPort(from))
	case msgReport:
		r, err := parseReport(buf)
		if err != nil {
			s.mBadDatagrams.Add(1)
			return
		}
		if r.E2EMicros > 0 {
			s.mE2ELat.ObserveValue(int64(r.E2EMicros))
		}
		s.mu.Lock()
		sess := s.sessions[r.Session]
		s.mu.Unlock()
		if sess == nil {
			return // stale report for a finished session
		}
		select {
		case sess.feedback <- r:
		default:
			s.mLostFeedback.Add(1)
		}
	case msgBye:
		id, ok := parseBye(buf)
		if !ok {
			s.mBadDatagrams.Add(1)
			return
		}
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess != nil {
			s.cfg.logf("session %d: client bye", id)
			sess.stopReq.Store(true)
			s.sched.poke()
		}
	default:
		s.mBadDatagrams.Add(1)
	}
}

// handleHello is admission control: duplicate hellos re-accept the
// existing session (UDP retransmits); capacity, overload and
// validation failures reject with a reason the client can print.
// Load shedding starts here — an overloaded farm rejects the newest
// would-be sessions so that admitted ones keep their service level.
// The accepted session is pinned to sh, the shard whose socket saw the
// hello: the kernel's flow steering will keep routing this client
// there, so pinning aligns the session's send path with its receive
// path (and, via lineage.home, its encode worker).
func (s *Server) handleHello(sh *shard, buf []byte, addr *net.UDPAddr) {
	h, err := parseHello(buf)
	if err != nil {
		s.mBadDatagrams.Add(1)
		s.reject(sh, addr, err.Error())
		return
	}
	if h.QP == 0 {
		h.QP = 8
	}
	reason := ""
	switch {
	case h.Frames <= 0:
		reason = "session must request at least one frame"
	case h.Frames > s.cfg.MaxFrames:
		reason = fmt.Sprintf("requested %d frames exceeds limit %d", h.Frames, s.cfg.MaxFrames)
	case !validRegime(h.Regime):
		reason = fmt.Sprintf("unknown content regime %d", h.Regime)
	}
	if reason != "" {
		s.mRejected.Add(1)
		s.reject(sh, addr, reason)
		return
	}

	s.mu.Lock()
	// Duplicate-hello suppression applies only while the session is
	// live: once the client has said bye — or once the End burst is on
	// the wire (endSent), which is the moment the old client can read
	// it, close, and surrender its ephemeral port — the address may
	// already belong to a brand-new client, and re-accepting that
	// newcomer onto the dead stream would strand it until its idle
	// timeout. A stopped-or-ended mapping falls through to fresh
	// admission below, which re-points byAddr at the newcomer.
	if existing := s.byAddr[addr.String()]; existing != nil &&
		!existing.stopReq.Load() && !existing.endSent.Load() {
		id, frames := existing.id, existing.req.Frames
		s.mu.Unlock()
		sh.writeTo(appendAccept(nil, id, frames), addr)
		return
	}
	if !s.accepting {
		s.mu.Unlock()
		s.mRejected.Add(1)
		s.reject(sh, addr, "server is shutting down")
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		n := len(s.sessions)
		s.mu.Unlock()
		s.mRejected.Add(1)
		s.reject(sh, addr, fmt.Sprintf("server at capacity (%d/%d sessions)", n, s.cfg.MaxSessions))
		return
	}
	if s.overloaded.Load() {
		s.mu.Unlock()
		s.mRejected.Add(1)
		s.mShedRejects.Add(1)
		s.reject(sh, addr, "server overloaded, shedding new sessions")
		return
	}
	s.nextID++
	sess := &session{
		id:       s.nextID,
		client:   copyAddr(addr),
		req:      h,
		sh:       sh,
		feedback: make(chan report, 16),
		done:     make(chan struct{}),
		queue:    newFrameQueue(s.cfg.QueueFrames),
	}
	s.sessions[sess.id] = sess
	s.byAddr[addr.String()] = sess
	active := len(s.sessions)
	s.mu.Unlock()

	s.mStarted.Add(1)
	s.mActive.Set(float64(active))
	s.cfg.logf("session %d: accepted %s (%d frames, regime %s, qp %d, fec %d, interleave %d)",
		sess.id, sess.client, h.Frames, h.Regime, h.QP, h.FECGroup, h.Interleave)
	sh.writeTo(appendAccept(nil, sess.id, h.Frames), addr)
	select {
	case s.sched.admit <- sess:
	case <-s.rootCtx.Done():
	}
}

func (s *Server) reject(sh *shard, addr *net.UDPAddr, reason string) {
	s.cfg.logf("rejected %s: %s", addr, reason)
	sh.writeTo(appendReject(nil, reason), addr)
}

// finishSession records the summary, releases the session's registry
// slice and closes its done channel. Called from the scheduler only.
func (s *Server) finishSession(sess *session) {
	sum := sess.sum
	s.reg.RemovePrefix(sess.metricPrefix())
	s.mu.Lock()
	delete(s.sessions, sess.id)
	// The address may have been re-registered by a successor session
	// (port reuse between this session's stop and its finalisation);
	// only remove the mapping while this session still owns it.
	if s.byAddr[sess.client.String()] == sess {
		delete(s.byAddr, sess.client.String())
	}
	s.summaries = append(s.summaries, sum)
	if len(s.summaries) > maxKeptSummaries {
		s.summaries = s.summaries[len(s.summaries)-maxKeptSummaries:]
	}
	active := len(s.sessions)
	s.mu.Unlock()
	s.mCompleted.Add(1)
	s.mActive.Set(float64(active))
	outcome := "ok"
	if sum.Err != "" {
		outcome = sum.Err
	}
	s.cfg.logf("session %d: finished %d/%d frames, %d pkts, %d queue-dropped, α̂=%.3f Th=%.3f (%s)",
		sum.ID, sum.FramesEncoded, sum.FramesRequested, sum.PacketsSent,
		sum.QueueDroppedFrames, sum.FinalAlpha, sum.FinalIntraTh, outcome)
	close(sess.done)
}

// Shutdown stops admitting, asks every session to stop gracefully and
// waits — via parallel.ForEachCtx, so the wait itself honours ctx —
// for queued frames to drain and Ends to reach the wire. Sessions
// still alive when ctx expires are hard-cancelled (their summaries
// record the cancellation). The socket closes last.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.accepting = false
	draining := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		draining = append(draining, sess)
	}
	s.mu.Unlock()

	for _, sess := range draining {
		sess.stopReq.Store(true)
	}
	s.sched.poke()
	var err error
	if len(draining) > 0 {
		err = parallel.ForEachCtx(ctx, len(draining), len(draining), func(i int) {
			select {
			case <-draining[i].done:
			case <-ctx.Done():
			}
		})
	}
	s.cancel() // hard-stop stragglers (no-op if everything drained)
	for _, sh := range s.shards {
		sh.conn.Close()
	}
	s.readWG.Wait()
	s.farmWG.Wait()
	if err != nil {
		return fmt.Errorf("serve: shutdown abandoned undrained sessions: %w", err)
	}
	return nil
}

// Close hard-stops the server without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	s.accepting = false
	s.mu.Unlock()
	s.cancel()
	for _, sh := range s.shards {
		sh.conn.Close()
	}
	s.readWG.Wait()
	s.farmWG.Wait()
	return nil
}

func validRegime(r synth.Regime) bool {
	switch r {
	case synth.RegimeAkiyo, synth.RegimeForeman, synth.RegimeGarden,
		synth.RegimeHall, synth.RegimeMobile:
		return true
	}
	return false
}

func copyAddr(a *net.UDPAddr) *net.UDPAddr {
	cp := *a
	cp.IP = append(net.IP(nil), a.IP...)
	return &cp
}
