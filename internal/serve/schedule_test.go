package serve

import (
	"math"
	"testing"
)

// TestScheduleConstructorValidation table-tests the loss-schedule
// constructors: every probability outside [0, 1] — NaN included — is
// rejected at construction.
func TestScheduleConstructorValidation(t *testing.T) {
	nan := math.NaN()

	t.Run("const", func(t *testing.T) {
		cases := []struct {
			rate float64
			ok   bool
		}{
			{0, true}, {0.5, true}, {1, true},
			{-0.001, false}, {1.001, false}, {nan, false}, {math.Inf(1), false},
		}
		for _, c := range cases {
			got, err := NewConstLoss(c.rate)
			if (err == nil) != c.ok {
				t.Errorf("NewConstLoss(%v): err=%v, want ok=%v", c.rate, err, c.ok)
			}
			if err == nil && got.Rate(0) != c.rate {
				t.Errorf("NewConstLoss(%v).Rate = %v", c.rate, got.Rate(0))
			}
		}
	})

	t.Run("step", func(t *testing.T) {
		cases := []struct {
			before, after float64
			ok            bool
		}{
			{0, 1, true}, {0.05, 0.3, true},
			{-0.1, 0.3, false}, {0.05, 1.5, false},
			{nan, 0.3, false}, {0.05, nan, false},
		}
		for _, c := range cases {
			s, err := NewStepLoss(c.before, c.after, 100)
			if (err == nil) != c.ok {
				t.Errorf("NewStepLoss(%v,%v): err=%v, want ok=%v", c.before, c.after, err, c.ok)
			}
			if err == nil {
				if s.Rate(99) != c.before || s.Rate(100) != c.after {
					t.Errorf("NewStepLoss(%v,%v,100): rates %v/%v", c.before, c.after, s.Rate(99), s.Rate(100))
				}
			}
		}
	})

	t.Run("ramp", func(t *testing.T) {
		cases := []struct {
			from, to   float64
			start, end int
			ok         bool
		}{
			{0, 0.4, 100, 200, true},
			{0.4, 0, 100, 200, true},
			{0.2, 0.2, 50, 50, true}, // degenerate ramp is a constant
			{-0.1, 0.4, 100, 200, false},
			{0, 1.4, 100, 200, false},
			{nan, 0.4, 100, 200, false},
			{0, nan, 100, 200, false},
			{0, 0.4, 200, 100, false}, // backwards ramp
		}
		for _, c := range cases {
			r, err := NewRampLoss(c.from, c.to, c.start, c.end)
			if (err == nil) != c.ok {
				t.Errorf("NewRampLoss(%v,%v,%d,%d): err=%v, want ok=%v", c.from, c.to, c.start, c.end, err, c.ok)
			}
			if err == nil {
				if r.Rate(c.start) != c.from {
					t.Errorf("ramp Rate(start) = %v, want %v", r.Rate(c.start), c.from)
				}
				if r.Rate(c.end+1) != c.to {
					t.Errorf("ramp Rate(end+1) = %v, want %v", r.Rate(c.end+1), c.to)
				}
			}
		}
	})
}
