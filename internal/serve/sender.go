package serve

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"pbpair/internal/network"
)

// sender is the serving layer's single transmit goroutine. It drains
// every session's frame queue per flush pass, coalesces small packets
// into 'C' datagrams (bounded by the coalesce limit so the path MTU is
// respected), and pushes the whole pass to the kernel through a
// network.BatchSender — one sendmmsg(2) per flush on Linux instead of
// one sendto per packet. Datagram buffers and the batch slice are
// recycled across flushes, so a steady-state flush allocates nothing.
//
// Shared-lineage fanout reuses wire templates: the members of one
// lineage queue the *same* packet slice for a frame, so the sender
// renders the datagram payloads once per (frame, lineage) — with a
// zero session-id placeholder — and per member only copies the
// template and patches the 4 id bytes, instead of re-walking the
// packet coalescing for each of thousands of members.
type sender struct {
	srv  *Server
	wake chan struct{}

	// Both cross-goroutine hand-offs — scheduler→sender registrations
	// and sender→scheduler End confirmations — are mutex-guarded slices,
	// never bounded channels. A mega-lineage can end thousands of
	// members in one flush; with bounded channels on both edges the
	// sender blocks handing Ends to the scheduler while the scheduler
	// blocks handing registrations to the sender, and the read loop
	// piles up behind admission — a whole-server deadlock.
	mu     sync.Mutex
	joined []*session // enrolled, not yet folded into members
	ended  []*session // End burst on the wire, awaiting scheduler finalize

	members []*session
	batch   network.BatchSender

	dgrams []network.Datagram
	bufs   [][]byte
	nbuf   int

	// Per-flush template cache, keyed by the identity of a queued
	// frame's first packet (members of a lineage share the exact
	// slice, so the pointer is the frame's identity within a flush).
	// Cleared each flush; entries and their buffers are recycled.
	tmpl  map[*network.Packet]*frameTemplate
	tents []*frameTemplate
	nent  int
	tbufs [][]byte
	ntbuf int
}

// frameTemplate is one frame's rendered datagram payloads with a zero
// session id at bytes 1–5 of each, plus the packet/coalesce accounting
// shared by every member that sends it.
type frameTemplate struct {
	bufs      [][]byte
	npkts     int64
	coalesced int64
}

// enroll hands a newly admitted session to the sender. Called by the
// scheduler; the sender folds registrations in at its next pass.
// Never blocks — see the sender.mu comment.
func (sn *sender) enroll(m *session) {
	sn.mu.Lock()
	sn.joined = append(sn.joined, m)
	sn.mu.Unlock()
	sn.poke()
}

// takeEnded hands the scheduler every member whose End burst is on the
// wire, reusing the caller's scratch slice. Never blocks.
func (sn *sender) takeEnded(scratch []*session) []*session {
	sn.mu.Lock()
	scratch = append(scratch[:0], sn.ended...)
	clear(sn.ended)
	sn.ended = sn.ended[:0]
	sn.mu.Unlock()
	return scratch
}

// poke nudges the sender without blocking.
func (sn *sender) poke() {
	select {
	case sn.wake <- struct{}{}:
	default:
	}
}

// buf returns a recycled datagram buffer.
func (sn *sender) buf() []byte {
	if sn.nbuf < len(sn.bufs) {
		b := sn.bufs[sn.nbuf][:0]
		sn.nbuf++
		return b
	}
	b := make([]byte, 0, sn.srv.cfg.MTU+64)
	sn.bufs = append(sn.bufs, b)
	sn.nbuf++
	return b
}

// run is the sender goroutine body.
func (sn *sender) run(ctx context.Context) {
	defer sn.srv.farmWG.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sn.wake:
		}
		sn.mu.Lock()
		sn.members = append(sn.members, sn.joined...)
		clear(sn.joined)
		sn.joined = sn.joined[:0]
		sn.mu.Unlock()
		sn.flush()
	}
}

// flush drains every member queue into one batched send. Members whose
// queues closed get their End burst appended to the same batch; their
// confirmations go to the scheduler only after the batch is on the
// wire, so finalised packet counts are complete.
func (sn *sender) flush() {
	sn.dgrams = sn.dgrams[:0]
	sn.nbuf = 0
	sn.nent = 0
	sn.ntbuf = 0
	clear(sn.tmpl)
	var ended []*session
	live := sn.members[:0]
	for _, m := range sn.members {
		closed := false
	memberDrain:
		for {
			select {
			case item, ok := <-m.queue.ch:
				if !ok {
					closed = true
					break memberDrain
				}
				sn.appendFrame(m, item)
			default:
				break memberDrain
			}
		}
		if closed {
			// End of stream: repeat the End datagram a few times so a
			// lossy path is unlikely to strand the client until its
			// idle timeout. Flip endSent first — the instant the burst
			// is on the wire the client can close and its port can be
			// reused, so duplicate-hello suppression must already be off
			// for this address (see handleHello).
			m.endSent.Store(true)
			frames := int(m.framesEncoded.Load())
			for i := 0; i < 3; i++ {
				buf := appendEnd(sn.buf(), m.id, frames)
				sn.dgrams = append(sn.dgrams, network.Datagram{Payload: buf, Addr: m.client})
			}
			ended = append(ended, m)
		} else {
			live = append(live, m)
		}
	}
	sn.members = live
	if len(sn.dgrams) > 0 {
		sent, err := sn.batch.SendBatch(sn.dgrams)
		sn.srv.mSendBatches.Add(1)
		sn.srv.mSendDatagrams.Add(int64(sent))
		if sent != len(sn.dgrams) {
			sn.srv.cfg.logf("sender: short batch %d/%d (%v)", sent, len(sn.dgrams), err)
		}
	}
	if len(ended) > 0 {
		sn.mu.Lock()
		sn.ended = append(sn.ended, ended...)
		sn.mu.Unlock()
		sn.srv.sched.poke()
	}
}

// appendFrame turns one queued frame into datagrams for member m by
// stamping m's session id into the frame's wire template (rendered
// once per lineage per flush — see template), and accounts the frame's
// scheduling→wire latency.
func (sn *sender) appendFrame(m *session, item queuedFrame) {
	if len(item.pkts) == 0 {
		sn.srv.mFrameLat.Observe(time.Since(item.enqueued))
		return
	}
	te := sn.template(item.pkts)
	var nbytes int64
	for _, tb := range te.bufs {
		buf := append(sn.buf(), tb...)
		binary.BigEndian.PutUint32(buf[1:5], m.id)
		sn.dgrams = append(sn.dgrams, network.Datagram{Payload: buf, Addr: m.client})
		nbytes += int64(len(buf))
	}
	if te.coalesced > 0 {
		sn.srv.mCoalesced.Add(te.coalesced)
	}
	m.mPackets.Add(te.npkts)
	m.mBytes.Add(nbytes)
	sn.srv.mFrameLat.Observe(time.Since(item.enqueued))
}

// template returns the flush-scoped wire template for a queued packet
// slice, rendering it on first sight: the packets coalesced into 'C'
// datagrams (or one-packet 'M's when coalescing is disabled) with a
// zero session id placeholder at bytes 1–5 — both media datagram types
// carry the id there, which is what makes the per-member patch work.
func (sn *sender) template(pkts []network.Packet) *frameTemplate {
	key := &pkts[0]
	if te := sn.tmpl[key]; te != nil {
		return te
	}
	te := sn.tent()
	limit := sn.srv.cfg.CoalesceBytes
	for start := 0; start < len(pkts); {
		end := start + 1
		size := 5 + 1 + 2 + pkts[start].WireSize()
		for end < len(pkts) && end-start < network.MaxBatchPackets {
			next := size + 2 + pkts[end].WireSize()
			if next > limit {
				break
			}
			size = next
			end++
		}
		var buf []byte
		if end == start+1 && limit <= 0 {
			// Coalescing disabled: classic one-packet 'M' datagrams.
			buf = appendMedia(sn.tbuf(), 0, pkts[start])
		} else {
			buf = appendCoalesced(sn.tbuf(), 0, pkts[start:end])
		}
		te.bufs = append(te.bufs, buf)
		te.npkts += int64(end - start)
		if end-start > 1 {
			te.coalesced += int64(end - start)
		}
		start = end
	}
	sn.tmpl[key] = te
	return te
}

// tent returns a recycled template entry.
func (sn *sender) tent() *frameTemplate {
	if sn.nent < len(sn.tents) {
		te := sn.tents[sn.nent]
		sn.nent++
		te.bufs = te.bufs[:0]
		te.npkts, te.coalesced = 0, 0
		return te
	}
	te := &frameTemplate{}
	sn.tents = append(sn.tents, te)
	sn.nent++
	return te
}

// tbuf returns a recycled template payload buffer (the templates'
// analogue of buf; separate pools because template buffers must stay
// intact for the whole flush while datagram buffers are per-datagram).
func (sn *sender) tbuf() []byte {
	if sn.ntbuf < len(sn.tbufs) {
		b := sn.tbufs[sn.ntbuf][:0]
		sn.ntbuf++
		return b
	}
	b := make([]byte, 0, sn.srv.cfg.MTU+64)
	sn.tbufs = append(sn.tbufs, b)
	sn.ntbuf++
	return b
}
