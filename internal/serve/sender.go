package serve

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"pbpair/internal/network"
)

// sender is one shard's transmit goroutine (single-socket servers have
// exactly one). It drains its enrolled sessions' frame queues per
// flush pass, coalesces small packets into 'C' datagrams (bounded by
// the coalesce limit so the path MTU is respected), and pushes the
// whole pass to the kernel through a network.BatchSender — one
// sendmmsg(2) per flush on Linux instead of one sendto per packet.
// Datagram buffers and the batch slice are recycled across flushes, so
// a steady-state flush allocates nothing. With RecvShards > 1 each
// shard's sender owns that shard's socket, so send-side coalescing no
// longer serialises every session through one goroutine: admission
// pins each session to the shard that received its hello (session.sh)
// and the scheduler enrolls it with that shard's sender.
//
// Shared-lineage fanout reuses wire templates: the members of one
// lineage queue the *same* packet slice for a frame, so the sender
// renders the datagram payloads once per (frame, lineage) — with a
// zero session-id/timestamp placeholder — and per member emits
// two-segment datagrams (network.Datagram.Tail): a 13-byte header
// carrying the member's id and the send stamp, plus the shared
// template body, submitted to the kernel as two iovecs. Fanning a
// frame out to a thousand members costs a thousand header patches, not
// a thousand ~MTU-sized template copies.
type sender struct {
	srv *Server
	sh  *shard

	wake chan struct{}

	// Both cross-goroutine hand-offs — scheduler→sender registrations
	// and sender→scheduler End confirmations — are mutex-guarded slices,
	// never bounded channels. A mega-lineage can end thousands of
	// members in one flush; with bounded channels on both edges the
	// sender blocks handing Ends to the scheduler while the scheduler
	// blocks handing registrations to the sender, and the read loop
	// piles up behind admission — a whole-server deadlock.
	mu     sync.Mutex
	joined []*session // enrolled, not yet folded into members
	ended  []*session // End burst on the wire, awaiting scheduler finalize

	members []*session
	batch   network.BatchSender

	// stamp is the flush's send timestamp (unix µs), patched into every
	// media header of the pass: one clock read per flush, not per
	// datagram, and well within the power-of-two latency buckets the
	// other end feeds.
	stamp uint64

	dgrams []network.Datagram
	bufs   [][]byte
	nbuf   int

	// hbufs pools the per-member media header segments (13 bytes each;
	// pooled separately from bufs so the fanout path doesn't burn
	// MTU-sized buffers on headers).
	hbufs [][]byte
	nhbuf int

	// Per-flush template cache, keyed by the identity of a queued
	// frame's first packet (members of a lineage share the exact
	// slice, so the pointer is the frame's identity within a flush).
	// Cleared each flush; entries and their buffers are recycled.
	tmpl  map[*network.Packet]*frameTemplate
	tents []*frameTemplate
	nent  int
	tbufs [][]byte
	ntbuf int
}

// frameTemplate is one frame's rendered datagram payloads with a zero
// session id and timestamp in the media header of each, plus the
// packet/coalesce accounting shared by every member that sends it.
type frameTemplate struct {
	bufs      [][]byte
	npkts     int64
	coalesced int64
}

func newSender(srv *Server, sh *shard) *sender {
	return &sender{
		srv:   srv,
		sh:    sh,
		wake:  make(chan struct{}, 1),
		batch: network.NewBatchSender(sh.conn),
		tmpl:  make(map[*network.Packet]*frameTemplate),
	}
}

// enroll hands a newly admitted session to the sender. Called by the
// scheduler; the sender folds registrations in at its next pass.
// Never blocks — see the sender.mu comment.
func (sn *sender) enroll(m *session) {
	sn.mu.Lock()
	sn.joined = append(sn.joined, m)
	sn.mu.Unlock()
	sn.poke()
}

// takeEnded hands the scheduler every member whose End burst is on the
// wire, reusing the caller's scratch slice. Never blocks.
func (sn *sender) takeEnded(scratch []*session) []*session {
	sn.mu.Lock()
	scratch = append(scratch[:0], sn.ended...)
	clear(sn.ended)
	sn.ended = sn.ended[:0]
	sn.mu.Unlock()
	return scratch
}

// poke nudges the sender without blocking.
func (sn *sender) poke() {
	select {
	case sn.wake <- struct{}{}:
	default:
	}
}

// buf returns a recycled datagram buffer.
func (sn *sender) buf() []byte {
	if sn.nbuf < len(sn.bufs) {
		b := sn.bufs[sn.nbuf][:0]
		sn.nbuf++
		return b
	}
	b := make([]byte, 0, sn.srv.cfg.MTU+64)
	sn.bufs = append(sn.bufs, b)
	sn.nbuf++
	return b
}

// hbuf returns a recycled media header segment buffer.
func (sn *sender) hbuf() []byte {
	if sn.nhbuf < len(sn.hbufs) {
		b := sn.hbufs[sn.nhbuf][:0]
		sn.nhbuf++
		return b
	}
	b := make([]byte, 0, mediaHeaderLen)
	sn.hbufs = append(sn.hbufs, b)
	sn.nhbuf++
	return b
}

// run is the sender goroutine body.
func (sn *sender) run(ctx context.Context) {
	defer sn.srv.farmWG.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sn.wake:
		}
		sn.mu.Lock()
		sn.members = append(sn.members, sn.joined...)
		clear(sn.joined)
		sn.joined = sn.joined[:0]
		sn.mu.Unlock()
		sn.flush()
	}
}

// flush drains every member queue into one batched send. Members whose
// queues closed get their End burst appended to the same batch; their
// confirmations go to the scheduler only after the batch is on the
// wire, so finalised packet counts are complete.
func (sn *sender) flush() {
	sn.dgrams = sn.dgrams[:0]
	sn.nbuf = 0
	sn.nhbuf = 0
	sn.nent = 0
	sn.ntbuf = 0
	clear(sn.tmpl)
	sn.stamp = uint64(time.Now().UnixMicro())
	var ended []*session
	live := sn.members[:0]
	for _, m := range sn.members {
		closed := false
		var hdr []byte // m's media header this flush, built on first use
	memberDrain:
		for {
			select {
			case item, ok := <-m.queue.ch:
				if !ok {
					closed = true
					break memberDrain
				}
				hdr = sn.appendFrame(m, item, hdr)
			default:
				break memberDrain
			}
		}
		if closed {
			// End of stream: repeat the End datagram a few times so a
			// lossy path is unlikely to strand the client until its
			// idle timeout. Flip endSent first — the instant the burst
			// is on the wire the client can close and its port can be
			// reused, so duplicate-hello suppression must already be off
			// for this address (see handleHello).
			m.endSent.Store(true)
			frames := int(m.framesEncoded.Load())
			for i := 0; i < 3; i++ {
				buf := appendEnd(sn.buf(), m.id, frames)
				sn.dgrams = append(sn.dgrams, network.Datagram{Payload: buf, Addr: m.client})
			}
			ended = append(ended, m)
		} else {
			live = append(live, m)
		}
	}
	sn.members = live
	if len(sn.dgrams) > 0 {
		sent, err := sn.batch.SendBatch(sn.dgrams)
		sn.srv.mSendBatches.Add(1)
		sn.srv.mSendDatagrams.Add(int64(sent))
		if sent != len(sn.dgrams) {
			sn.srv.cfg.logf("sender: short batch %d/%d (%v)", sent, len(sn.dgrams), err)
		}
	}
	if len(ended) > 0 {
		sn.mu.Lock()
		sn.ended = append(sn.ended, ended...)
		sn.mu.Unlock()
		sn.srv.sched.poke()
	}
}

// appendFrame turns one queued frame into datagrams for member m and
// accounts the frame's scheduling→wire latency. Each datagram is the
// member's patched 13-byte header (hdr, built once per member per
// flush — every media datagram of a flush shares the member's id, the
// flush stamp and the config-determined type byte) plus the frame
// template's shared body as the scatter-gather tail. It returns hdr so
// the caller can thread it through the member's drain.
func (sn *sender) appendFrame(m *session, item queuedFrame, hdr []byte) []byte {
	if len(item.pkts) == 0 {
		sn.srv.mFrameLat.Observe(time.Since(item.enqueued))
		return hdr
	}
	te := sn.template(item.pkts)
	if hdr == nil {
		hdr = sn.hbuf()
		hdr = append(hdr, te.bufs[0][:mediaHeaderLen]...)
		binary.BigEndian.PutUint32(hdr[1:5], m.id)
		binary.BigEndian.PutUint64(hdr[5:13], sn.stamp)
	}
	var nbytes int64
	for _, tb := range te.bufs {
		sn.dgrams = append(sn.dgrams, network.Datagram{
			Payload: hdr,
			Tail:    tb[mediaHeaderLen:],
			Addr:    m.client,
		})
		nbytes += int64(len(tb))
	}
	if te.coalesced > 0 {
		sn.srv.mCoalesced.Add(te.coalesced)
	}
	m.mPackets.Add(te.npkts)
	m.mBytes.Add(nbytes)
	sn.srv.mFrameLat.Observe(time.Since(item.enqueued))
	return hdr
}

// template returns the flush-scoped wire template for a queued packet
// slice, rendering it on first sight: the packets coalesced into 'C'
// datagrams (or one-packet 'M's when coalescing is disabled) with zero
// session id and timestamp placeholders in the media header — both
// media datagram types share the header layout, which is what makes
// the per-member patch work.
func (sn *sender) template(pkts []network.Packet) *frameTemplate {
	key := &pkts[0]
	if te := sn.tmpl[key]; te != nil {
		return te
	}
	te := sn.tent()
	limit := sn.srv.cfg.CoalesceBytes
	for start := 0; start < len(pkts); {
		end := start + 1
		size := mediaHeaderLen + 1 + 2 + pkts[start].WireSize()
		for end < len(pkts) && end-start < network.MaxBatchPackets {
			next := size + 2 + pkts[end].WireSize()
			if next > limit {
				break
			}
			size = next
			end++
		}
		var buf []byte
		if end == start+1 && limit <= 0 {
			// Coalescing disabled: classic one-packet 'M' datagrams.
			buf = appendMedia(sn.tbuf(), 0, pkts[start])
		} else {
			buf = appendCoalesced(sn.tbuf(), 0, pkts[start:end])
		}
		te.bufs = append(te.bufs, buf)
		te.npkts += int64(end - start)
		if end-start > 1 {
			te.coalesced += int64(end - start)
		}
		start = end
	}
	sn.tmpl[key] = te
	return te
}

// tent returns a recycled template entry.
func (sn *sender) tent() *frameTemplate {
	if sn.nent < len(sn.tents) {
		te := sn.tents[sn.nent]
		sn.nent++
		te.bufs = te.bufs[:0]
		te.npkts, te.coalesced = 0, 0
		return te
	}
	te := &frameTemplate{}
	sn.tents = append(sn.tents, te)
	sn.nent++
	return te
}

// tbuf returns a recycled template payload buffer (the templates'
// analogue of buf; separate pools because template buffers must stay
// intact for the whole flush while datagram buffers are per-datagram).
func (sn *sender) tbuf() []byte {
	if sn.ntbuf < len(sn.tbufs) {
		b := sn.tbufs[sn.ntbuf][:0]
		sn.ntbuf++
		return b
	}
	b := make([]byte, 0, sn.srv.cfg.MTU+64)
	sn.tbufs = append(sn.tbufs, b)
	sn.ntbuf++
	return b
}
