package serve

import (
	"context"
	"time"

	"pbpair/internal/network"
)

// sender is the serving layer's single transmit goroutine. It drains
// every session's frame queue per flush pass, coalesces small packets
// into 'C' datagrams (bounded by the coalesce limit so the path MTU is
// respected), and pushes the whole pass to the kernel through a
// network.BatchSender — one sendmmsg(2) per flush on Linux instead of
// one sendto per packet. Datagram buffers and the batch slice are
// recycled across flushes, so a steady-state flush allocates nothing.
type sender struct {
	srv      *Server
	register chan *session
	wake     chan struct{}
	sentEnd  chan *session

	members []*session
	batch   network.BatchSender

	dgrams []network.Datagram
	bufs   [][]byte
	nbuf   int
}

// enroll hands a newly admitted session to the sender. Called by the
// scheduler; the sender folds registrations in at its next pass.
func (sn *sender) enroll(m *session) {
	select {
	case sn.register <- m:
	case <-sn.srv.rootCtx.Done():
	}
}

// poke nudges the sender without blocking.
func (sn *sender) poke() {
	select {
	case sn.wake <- struct{}{}:
	default:
	}
}

// buf returns a recycled datagram buffer.
func (sn *sender) buf() []byte {
	if sn.nbuf < len(sn.bufs) {
		b := sn.bufs[sn.nbuf][:0]
		sn.nbuf++
		return b
	}
	b := make([]byte, 0, sn.srv.cfg.MTU+64)
	sn.bufs = append(sn.bufs, b)
	sn.nbuf++
	return b
}

// run is the sender goroutine body.
func (sn *sender) run(ctx context.Context) {
	defer sn.srv.farmWG.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-sn.register:
			sn.members = append(sn.members, m)
		case <-sn.wake:
		}
	drain:
		for {
			select {
			case m := <-sn.register:
				sn.members = append(sn.members, m)
			default:
				break drain
			}
		}
		if !sn.flush(ctx) {
			return
		}
	}
}

// flush drains every member queue into one batched send. Members whose
// queues closed get their End burst appended to the same batch; their
// confirmations go to the scheduler only after the batch is on the
// wire, so finalised packet counts are complete. Returns false when
// ctx died mid-flush.
func (sn *sender) flush(ctx context.Context) bool {
	sn.dgrams = sn.dgrams[:0]
	sn.nbuf = 0
	var ended []*session
	live := sn.members[:0]
	for _, m := range sn.members {
		closed := false
	memberDrain:
		for {
			select {
			case item, ok := <-m.queue.ch:
				if !ok {
					closed = true
					break memberDrain
				}
				sn.appendFrame(m, item)
			default:
				break memberDrain
			}
		}
		if closed {
			// End of stream: repeat the End datagram a few times so a
			// lossy path is unlikely to strand the client until its
			// idle timeout.
			frames := int(m.framesEncoded.Load())
			for i := 0; i < 3; i++ {
				buf := appendEnd(sn.buf(), m.id, frames)
				sn.dgrams = append(sn.dgrams, network.Datagram{Payload: buf, Addr: m.client})
			}
			ended = append(ended, m)
		} else {
			live = append(live, m)
		}
	}
	sn.members = live
	if len(sn.dgrams) > 0 {
		sent, _ := sn.batch.SendBatch(sn.dgrams)
		sn.srv.mSendBatches.Add(1)
		sn.srv.mSendDatagrams.Add(int64(sent))
	}
	for _, m := range ended {
		select {
		case sn.sentEnd <- m:
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// appendFrame turns one queued frame into datagrams for member m,
// coalescing consecutive packets while they fit the coalesce limit,
// and accounts the frame's scheduling→wire latency.
func (sn *sender) appendFrame(m *session, item queuedFrame) {
	limit := sn.srv.cfg.CoalesceBytes
	pkts := item.pkts
	var npkts, nbytes int64
	for start := 0; start < len(pkts); {
		end := start + 1
		size := 5 + 1 + 2 + pkts[start].WireSize()
		for end < len(pkts) && end-start < network.MaxBatchPackets {
			next := size + 2 + pkts[end].WireSize()
			if next > limit {
				break
			}
			size = next
			end++
		}
		var buf []byte
		if end == start+1 && limit <= 0 {
			// Coalescing disabled: classic one-packet 'M' datagrams.
			buf = appendMedia(sn.buf(), m.id, pkts[start])
		} else {
			buf = appendCoalesced(sn.buf(), m.id, pkts[start:end])
		}
		sn.dgrams = append(sn.dgrams, network.Datagram{Payload: buf, Addr: m.client})
		npkts += int64(end - start)
		nbytes += int64(len(buf))
		if end-start > 1 {
			sn.srv.mCoalesced.Add(int64(end - start))
		}
		start = end
	}
	m.mPackets.Add(npkts)
	m.mBytes.Add(nbytes)
	sn.srv.mFrameLat.Observe(time.Since(item.enqueued))
}
