package serve

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChurnSoak is the session-lifecycle stress: a fixed pool of client
// slots where every slot finishes a session and immediately rejoins as
// a brand-new one, over and over. Steady churn is what exposes
// lifecycle races a fixed fleet never hits — ephemeral-port reuse
// between a dying session and its successor, metric teardown racing
// admission, lineage membership folding while members leave. It is
// deliberately small and fast so it runs under -race inside `make
// check` (see the soak-smoke target).
func TestChurnSoak(t *testing.T) {
	const (
		slots  = 32
		cycles = 8
		frames = 6
	)
	before := runtime.NumGoroutine()

	srv, err := New(Config{
		Addr:        "127.0.0.1:0",
		MaxSessions: 64,
		// Unpaced with a short cohort window: sessions start and end as
		// fast as the farm allows, maximising lifecycle turnover.
		FrameInterval: 0,
		CohortWindow:  40 * time.Millisecond,
		QueueFrames:   16,
		RecvBatch:     32,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		slot, cycle int
		sum         *ClientSummary
		err         error
	}
	results := make(chan outcome, slots*cycles)
	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				sum, err := RunClient(context.Background(), ClientConfig{
					Server:      srv.Addr().String(),
					Frames:      frames,
					ReportEvery: 3,
				})
				results <- outcome{slot, c, sum, err}
				if err != nil {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(results)

	completed := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("slot %d cycle %d: %v", r.slot, r.cycle, r.err)
		}
		if r.sum.FramesFlushed != frames {
			t.Errorf("slot %d cycle %d: %d/%d frames flushed", r.slot, r.cycle, r.sum.FramesFlushed, frames)
		}
		completed++
	}
	if completed != slots*cycles {
		t.Fatalf("%d/%d sessions completed", completed, slots*cycles)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := srv.Registry().Snapshot()
	if got := snap["server.sessions_completed"]; got != float64(slots*cycles) {
		t.Errorf("server.sessions_completed = %v, want %d", got, slots*cycles)
	}
	if got := snap["server.sessions_active"]; got != 0 {
		t.Errorf("server.sessions_active = %v after churn drained", got)
	}
	// Per-session and per-cohort metrics must not survive their owners:
	// churn leaks, if any, show up as an ever-growing registry.
	for name := range snap {
		if strings.HasPrefix(name, "server.cohort.") {
			t.Errorf("cohort gauge %q outlived its cohort", name)
		}
		if strings.HasPrefix(name, "s") && !strings.HasPrefix(name, "server.") {
			t.Errorf("per-session metric %q leaked past session end", name)
		}
	}
	waitGoroutines(t, before+2)
}
