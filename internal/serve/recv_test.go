package serve

import (
	"net/netip"
	"testing"
)

// TestHandleDatagramAllocFree pins the receive hot path: at 10k
// sessions the server consumes a continuous stream of receiver reports,
// and handleDatagram must process one — parse, session lookup, feedback
// hand-off — without allocating. The read loop above it reuses the
// RecvSlot ring (pinned by the network package's own alloc test), so
// this keeps the whole datagram→estimator path allocation-free.
func TestHandleDatagramAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	srv, err := New(Config{Addr: "127.0.0.1:0", MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A hand-placed session skips the hello path: the report path needs
	// only the id → session table entry and the feedback channel.
	sess := &session{id: 42, feedback: make(chan report, 4)}
	srv.mu.Lock()
	srv.sessions[sess.id] = sess
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.sessions, sess.id)
		srv.mu.Unlock()
	}()

	buf := append([]byte(nil), appendReport(nil, report{
		Session: sess.id, Fraction: 0.1, Received: 100, Lost: 11,
	})...)
	from := netip.MustParseAddrPort("127.0.0.1:9999")

	// Covers both branches of the hand-off: the channel fills after four
	// reports, after which the drop-with-counter path must be just as
	// allocation-free (that is the steady state under feedback overload).
	if allocs := testing.AllocsPerRun(1000, func() {
		srv.handleDatagram(srv.shards[0], buf, from)
	}); allocs > 0 {
		t.Fatalf("handleDatagram allocates %.2f times per report, want 0", allocs)
	}
	if lost := srv.Registry().Snapshot()["server.feedback_dropped"]; lost <= 0 {
		t.Errorf("overflow path never exercised (feedback_dropped = %v)", lost)
	}
}
