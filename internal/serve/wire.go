// Package serve is the closed-loop streaming layer: a UDP server that
// runs the paper's §3.2 codec/network interfacing loop live, per
// session — encoder goroutine → packetiser (optional interleave + FEC)
// → bounded send queue → socket, with receiver reports flowing back
// into a PLR estimator and quality/energy controllers that retune
// PBPAIR's Intra_Th mid-stream. See ARCHITECTURE.md, "Serving layer".
//
// This file defines the datagram protocol between pbpair-serve and
// pbpair-load. Every datagram starts with a one-byte type:
//
//	client → server
//	  'H' hello:  ver u8 | frames u32 | regime u8 | qp u8 |
//	              reportEvery u8 | fecGroup u8 | interleave u8
//	  'R' report: session u32 | fractionLost per-mille u16 |
//	              received u32 | lost u32 | e2eMicros u32
//	  'B' bye:    session u32
//
//	server → client
//	  'A' accept: session u32 | frames u32
//	  'J' reject: reasonLen u8 | reason bytes
//	  'M' media:  session u32 | sendMicros u64 | network.Packet wire encoding
//	  'C' media:  session u32 | sendMicros u64 | network wire batch (coalesced)
//	  'E' end:    session u32 | framesEncoded u32
//
// sendMicros is the server's transmit timestamp (unix µs, stamped as
// the datagram leaves the sender); a client subtracts it from its
// receive clock and echoes the freshest difference in its reports'
// e2eMicros field (0 = no sample yet), closing the end-to-end latency
// SLO loop. The subtraction mixes two clocks, so on distinct hosts the
// figure includes their offset — meaningful for same-host harnesses
// and NTP-disciplined fleets, a relative signal otherwise.
//
// Multi-byte integers are big-endian. Media payloads reuse
// network.(Packet).AppendWire / network.ParseWire (one packet per 'M')
// and network.AppendWireBatch / network.ParseWireBatch (several small
// packets coalesced into one 'C' datagram), so FEC parity metadata
// survives the socket boundary and receivers can run network.RecoverFEC
// on what arrives. Receivers treat each packet inside a 'C' exactly as
// if it had arrived in its own 'M' — coalescing is a transport
// optimisation, invisible to loss accounting and FEC recovery.
package serve

import (
	"encoding/binary"
	"fmt"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// protocolVersion gates hellos: a server rejects clients speaking a
// different version rather than mis-parsing them. Version 2 added the
// 'C' coalesced media datagram; version 3 added the media send
// timestamp and the report's end-to-end latency echo.
const protocolVersion = 3

// mediaHeaderLen is the 'M'/'C' datagram header: type byte, session
// id, send timestamp. Both media types share the layout, which is what
// lets the sender fan one rendered template out to a whole lineage by
// rewriting only this header per member (see sender.appendFrame).
const mediaHeaderLen = 1 + 4 + 8

// Datagram type bytes.
const (
	msgHello     = 'H'
	msgReport    = 'R'
	msgBye       = 'B'
	msgAccept    = 'A'
	msgReject    = 'J'
	msgMedia     = 'M'
	msgCoalesced = 'C'
	msgEnd       = 'E'
)

// hello is a client's session request.
type hello struct {
	Frames      int
	Regime      synth.Regime
	QP          int
	ReportEvery int
	FECGroup    int // 0 = no FEC, else parity every FECGroup media packets
	Interleave  int // <= 1 = contiguous packetisation, else n-way GOB interleave
}

func appendHello(buf []byte, h hello) []byte {
	var b [10]byte
	b[0] = msgHello
	b[1] = protocolVersion
	binary.BigEndian.PutUint32(b[2:6], uint32(h.Frames))
	b[6] = byte(h.Regime)
	b[7] = byte(h.QP)
	b[8] = byte(h.ReportEvery)
	// Pack FEC and interleave into one byte each at the end.
	buf = append(buf, b[:9]...)
	return append(buf, byte(h.FECGroup), byte(h.Interleave))
}

func parseHello(b []byte) (hello, error) {
	if len(b) < 11 || b[0] != msgHello {
		return hello{}, fmt.Errorf("serve: malformed hello (%d bytes)", len(b))
	}
	if b[1] != protocolVersion {
		return hello{}, fmt.Errorf("serve: protocol version %d, want %d", b[1], protocolVersion)
	}
	return hello{
		Frames:      int(binary.BigEndian.Uint32(b[2:6])),
		Regime:      synth.Regime(b[6]),
		QP:          int(b[7]),
		ReportEvery: int(b[8]),
		FECGroup:    int(b[9]),
		Interleave:  int(b[10]),
	}, nil
}

func appendAccept(buf []byte, id uint32, frames int) []byte {
	var b [9]byte
	b[0] = msgAccept
	binary.BigEndian.PutUint32(b[1:5], id)
	binary.BigEndian.PutUint32(b[5:9], uint32(frames))
	return append(buf, b[:]...)
}

func parseAccept(b []byte) (id uint32, frames int, err error) {
	if len(b) < 9 || b[0] != msgAccept {
		return 0, 0, fmt.Errorf("serve: malformed accept (%d bytes)", len(b))
	}
	return binary.BigEndian.Uint32(b[1:5]), int(binary.BigEndian.Uint32(b[5:9])), nil
}

func appendReject(buf []byte, reason string) []byte {
	if len(reason) > 255 {
		reason = reason[:255]
	}
	buf = append(buf, msgReject, byte(len(reason)))
	return append(buf, reason...)
}

func parseReject(b []byte) (string, bool) {
	if len(b) < 2 || b[0] != msgReject || len(b) < 2+int(b[1]) {
		return "", false
	}
	return string(b[2 : 2+int(b[1])]), true
}

// appendMedia encodes one packet as an 'M' datagram. The session id
// and send timestamp are written as zero placeholders; the sender
// patches both into the header as the datagram leaves (template reuse
// across a lineage's members — see sender.appendFrame).
func appendMedia(buf []byte, id uint32, pkt network.Packet) []byte {
	var b [mediaHeaderLen]byte
	b[0] = msgMedia
	binary.BigEndian.PutUint32(b[1:5], id)
	buf = append(buf, b[:]...)
	return pkt.AppendWire(buf)
}

func parseMedia(b []byte) (id uint32, pkt network.Packet, err error) {
	if len(b) < mediaHeaderLen || b[0] != msgMedia {
		return 0, network.Packet{}, fmt.Errorf("serve: malformed media (%d bytes)", len(b))
	}
	id = binary.BigEndian.Uint32(b[1:5])
	pkt, err = network.ParseWire(b[mediaHeaderLen:])
	return id, pkt, err
}

// mediaStamp reads the send timestamp (unix µs) out of an 'M' or 'C'
// datagram header; 0 when the datagram is too short to carry one.
func mediaStamp(b []byte) int64 {
	if len(b) < mediaHeaderLen || (b[0] != msgMedia && b[0] != msgCoalesced) {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b[5:13]))
}

// appendCoalesced encodes several packets for one session into a
// single 'C' datagram (the sender's per-flush coalescing; see
// network.AppendWireBatch for the container format). Like appendMedia,
// id and timestamp are placeholders the sender patches.
func appendCoalesced(buf []byte, id uint32, pkts []network.Packet) []byte {
	var b [mediaHeaderLen]byte
	b[0] = msgCoalesced
	binary.BigEndian.PutUint32(b[1:5], id)
	buf = append(buf, b[:]...)
	return network.AppendWireBatch(buf, pkts)
}

// parseCoalesced appends the datagram's packets to dst, mirroring
// network.ParseWireBatch's strictness: a truncated or trailing-bytes
// container is an error, never phantom packets.
func parseCoalesced(dst []network.Packet, b []byte) (id uint32, pkts []network.Packet, err error) {
	if len(b) < mediaHeaderLen || b[0] != msgCoalesced {
		return 0, dst, fmt.Errorf("serve: malformed coalesced media (%d bytes)", len(b))
	}
	id = binary.BigEndian.Uint32(b[1:5])
	pkts, err = network.ParseWireBatch(dst, b[mediaHeaderLen:])
	return id, pkts, err
}

// report is one receiver feedback datagram: the interval fraction lost
// (what adapt.PLREstimator.ObserveReport consumes), cumulative-interval
// receive/loss counts for the server's books, and the client's
// freshest end-to-end latency sample (receive clock minus the media
// header's send stamp, µs; 0 = no sample this interval).
type report struct {
	Session   uint32
	Fraction  float64
	Received  int64
	Lost      int64
	E2EMicros uint32
}

func appendReport(buf []byte, r report) []byte {
	var b [19]byte
	b[0] = msgReport
	binary.BigEndian.PutUint32(b[1:5], r.Session)
	perMille := int(r.Fraction * 1000)
	if perMille < 0 {
		perMille = 0
	}
	if perMille > 1000 {
		perMille = 1000
	}
	binary.BigEndian.PutUint16(b[5:7], uint16(perMille))
	binary.BigEndian.PutUint32(b[7:11], uint32(r.Received))
	binary.BigEndian.PutUint32(b[11:15], uint32(r.Lost))
	binary.BigEndian.PutUint32(b[15:19], r.E2EMicros)
	return append(buf, b[:]...)
}

func parseReport(b []byte) (report, error) {
	if len(b) < 19 || b[0] != msgReport {
		return report{}, fmt.Errorf("serve: malformed report (%d bytes)", len(b))
	}
	return report{
		Session:   binary.BigEndian.Uint32(b[1:5]),
		Fraction:  float64(binary.BigEndian.Uint16(b[5:7])) / 1000,
		Received:  int64(binary.BigEndian.Uint32(b[7:11])),
		Lost:      int64(binary.BigEndian.Uint32(b[11:15])),
		E2EMicros: binary.BigEndian.Uint32(b[15:19]),
	}, nil
}

func appendBye(buf []byte, id uint32) []byte {
	var b [5]byte
	b[0] = msgBye
	binary.BigEndian.PutUint32(b[1:5], id)
	return append(buf, b[:]...)
}

func parseBye(b []byte) (uint32, bool) {
	if len(b) < 5 || b[0] != msgBye {
		return 0, false
	}
	return binary.BigEndian.Uint32(b[1:5]), true
}

func appendEnd(buf []byte, id uint32, frames int) []byte {
	var b [9]byte
	b[0] = msgEnd
	binary.BigEndian.PutUint32(b[1:5], id)
	binary.BigEndian.PutUint32(b[5:9], uint32(frames))
	return append(buf, b[:]...)
}

func parseEnd(b []byte) (id uint32, frames int, ok bool) {
	if len(b) < 9 || b[0] != msgEnd {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(b[1:5]), int(binary.BigEndian.Uint32(b[5:9])), true
}
