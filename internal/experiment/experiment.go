// Package experiment is the evaluation harness: it wires encoder,
// packetiser, lossy channel, decoder and metrics into reproducible
// scenario runs, and provides the size-matching calibration and
// recovery measurement the paper's Section 4 experiments need.
//
// The grid experiments (Sweep, Fig5, Fig6, ContentTable, RDCurve,
// Fig5Multi) fan independent runs out across a bounded worker pool
// (internal/parallel) controlled by each config's Workers knob;
// results land in index-addressed slots in the serial iteration order,
// so every table, trace and CSV is byte-identical for any worker
// count. A Scenario additionally exposes Workers for the encoder's
// intra-frame sharding — the second concurrency level, equally
// deterministic (see ARCHITECTURE.md).
package experiment

import (
	"fmt"

	"pbpair/internal/codec"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/motion"
	"pbpair/internal/network"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

// Scenario describes one end-to-end run: a source sequence encoded
// under a scheme, transmitted over a channel, decoded with
// concealment, and measured against the original.
type Scenario struct {
	Name   string
	Source synth.Source
	Frames int

	// Codec parameters. Zero values select QP 8 and SearchRange 15 —
	// the H.263 test-model's full-search window, which gives motion
	// estimation the energy share the paper's analysis assumes.
	QP           int
	SearchRange  int
	Search       motion.SearchKind
	SADThreshold int32
	HalfPel      bool

	// Planner is the resilience scheme under test. Required.
	Planner codec.ModePlanner

	// Workers bounds the encoder's intra-frame sharding (codec.Config
	// Workers): <= 1 encodes serially. Results are bit-identical for
	// every value; this knob changes only wall-clock time.
	Workers int

	// Channel models the network; nil means loss-free.
	Channel network.Channel
	// MTU for packetisation (default network.DefaultMTU).
	MTU int

	// Concealer overrides the decoder's copy concealment.
	Concealer codec.Concealer

	// FECGroup enables XOR-parity forward error correction spanning
	// this many consecutive frames per group (0 = off) — the §5
	// channel-coding cooperation. The receiver buffers a full group
	// before decoding (the usual FEC latency trade), so any single
	// packet loss inside a group is recovered bit-exactly.
	FECGroup int

	// Profile is the energy model device (default energy.IPAQ).
	Profile energy.Profile

	// BadPixelThreshold for the bad-pixel metric (default
	// metrics.DefaultBadPixelThreshold).
	BadPixelThreshold int
}

// Result aggregates a scenario run.
type Result struct {
	Name   string
	Scheme string
	Frames int

	PSNR       metrics.Series // per-frame luma PSNR (dB) vs original
	BadPixels  metrics.Series // per-frame bad-pixel counts
	FrameBytes metrics.Series // per-frame encoded sizes
	IntraMBs   metrics.Series // per-frame intra macroblock counts

	TotalBytes    int
	FECBytes      int // parity payload bytes when FECGroup is on
	TotalBadPix   int
	ConcealedMBs  int
	LostFrames    int
	PacketsSent   int
	PacketsLost   int
	Counters      energy.Counters
	Joules        float64
	Breakdown     energy.Breakdown
	DecodedFrames []*video.Frame // retained only when KeepFrames was set
	keepFrames    bool
}

// Option customises a run.
type Option func(*runner)

// KeepFrames retains each decoded frame in the result (memory-heavy;
// for tests and visual dumps).
func KeepFrames() Option {
	return func(r *runner) { r.keep = true }
}

type runner struct {
	keep bool
}

// Run executes a scenario: the encode phase followed by the simulate
// phase (see pipeline.go). The split is invisible here — Run produces
// exactly what the single-loop implementation did, because the encoder
// never sees the channel — but it lets a Plan share the encode across
// many simulations.
func Run(s Scenario, opts ...Option) (*Result, error) {
	seq, err := encodeScenario(s)
	if err != nil {
		return nil, err
	}
	res, err := Simulate(seq, s.Source, SimSpec{
		Name:              s.Name,
		Channel:           s.Channel,
		MTU:               s.MTU,
		Concealer:         s.Concealer,
		FECGroup:          s.FECGroup,
		Profile:           s.Profile,
		BadPixelThreshold: s.BadPixelThreshold,
	}, opts...)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// encodeScenario runs a scenario's encode phase.
func encodeScenario(s Scenario) (*codec.EncodedSequence, error) {
	if s.Source == nil {
		return nil, fmt.Errorf("experiment: scenario %q has no source", s.Name)
	}
	if s.Planner == nil {
		return nil, fmt.Errorf("experiment: scenario %q has no planner", s.Name)
	}
	if s.Frames <= 0 {
		return nil, fmt.Errorf("experiment: scenario %q has %d frames", s.Name, s.Frames)
	}
	if s.QP == 0 {
		s.QP = 8
	}
	if s.SearchRange == 0 {
		s.SearchRange = 15
	}
	width, height := s.Source.Dims()
	return encodeSequence(s.Name, s.Source, s.Frames, codec.Config{
		Width: width, Height: height,
		QP:           s.QP,
		SearchRange:  s.SearchRange,
		Search:       s.Search,
		SADThreshold: s.SADThreshold,
		HalfPel:      s.HalfPel,
		Planner:      s.Planner,
		Workers:      s.Workers,
	})
}

// CalibrateIntraTh finds the Intra_Th at which probe's encoded size
// best matches targetBytes, by bisection. probe(th) must be a
// monotone-ish non-decreasing function of th (more intra macroblocks
// produce more bits); it is typically a short PBPAIR encode. iters
// rounds of bisection are performed (12 is plenty for 3 decimals).
func CalibrateIntraTh(probe func(th float64) (bytes int, err error), targetBytes, iters int) (float64, error) {
	if iters <= 0 {
		iters = 12
	}
	lo, hi := 0.0, 1.0
	loBytes, err := probe(lo)
	if err != nil {
		return 0, fmt.Errorf("experiment: calibration probe at %v: %w", lo, err)
	}
	hiBytes, err := probe(hi)
	if err != nil {
		return 0, fmt.Errorf("experiment: calibration probe at %v: %w", hi, err)
	}
	if targetBytes <= loBytes {
		return lo, nil
	}
	if targetBytes >= hiBytes {
		return hi, nil
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		midBytes, err := probe(mid)
		if err != nil {
			return 0, fmt.Errorf("experiment: calibration probe at %v: %w", mid, err)
		}
		if midBytes < targetBytes {
			lo, loBytes = mid, midBytes
		} else {
			hi, hiBytes = mid, midBytes
		}
	}
	// Return whichever endpoint is closer in size.
	if targetBytes-loBytes <= hiBytes-targetBytes {
		return lo, nil
	}
	return hi, nil
}

// RecoveryFrames measures how fast a lossy run recovers after each
// loss event: for each event frame, the number of frames until the
// lossy PSNR returns within tolDB of the loss-free PSNR for the same
// frame (and stays the event's own frame counts as 0). A value of -1
// means the run never recovered before the next event or end of
// sequence.
func RecoveryFrames(clean, lossy []float64, events []int, tolDB float64) []int {
	out := make([]int, len(events))
	for i, ev := range events {
		out[i] = -1
		if ev < 0 || ev >= len(lossy) {
			continue
		}
		// Recovery window ends at the next event (or sequence end).
		end := len(lossy)
		if i+1 < len(events) && events[i+1] < end {
			end = events[i+1]
		}
		for k := ev; k < end; k++ {
			if clean[k]-lossy[k] <= tolDB {
				out[i] = k - ev
				break
			}
		}
	}
	return out
}
