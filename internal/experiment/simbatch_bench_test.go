package experiment

import (
	"testing"
	"time"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// BenchmarkSimBatch measures the bit-packed Monte-Carlo engine on its
// design point: one cached bitstream, 1024 loss realizations at 5%
// i.i.d. loss. Reported custom metrics (required by the bench-json
// gate):
//
//   - trials/s: channel realizations fully evaluated per second
//   - speedup_x: batch trials/s over the scalar Simulate loop's
//     trials/s, measured in the same process (the dedup win; the
//     BENCH_mc.json gate requires >= 20)
//   - lanes_per_decode: lane-frames served per group decode — the
//     dedup ratio behind the speedup
func BenchmarkSimBatch(b *testing.B) {
	const (
		frames = 48
		trials = 1024
		rate   = 0.05
	)
	seq, src := encodeForBatch(b, synth.RegimeForeman, frames)
	sim := SimSpec{Name: "bench-batch"}
	batch := BatchSpec{Trials: trials, Seed: 11, LossRate: rate}

	var lanesPerDecode float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mtr, err := SimBatch(seq, src, sim, batch)
		if err != nil {
			b.Fatal(err)
		}
		if mtr.Batch.GroupDecodes > 0 {
			lanesPerDecode = float64(mtr.Batch.LaneFrames) / float64(mtr.Batch.GroupDecodes)
		}
	}
	b.StopTimer()
	batchPerTrial := b.Elapsed() / time.Duration(b.N*trials)
	b.ReportMetric(float64(time.Second)/float64(batchPerTrial), "trials/s")
	b.ReportMetric(lanesPerDecode, "lanes_per_decode")

	// Scalar baseline: the legacy one-channel-per-trial loop, timed
	// once outside the benchmark loop (it is far too slow to run b.N
	// times at any realistic trial count).
	const scalarTrials = 4
	start := time.Now()
	for lane := 0; lane < scalarTrials; lane++ {
		ch, err := network.NewUniformLoss(rate, network.LaneSeed(batch.Seed, lane))
		if err != nil {
			b.Fatal(err)
		}
		s := sim
		s.Channel = ch
		if _, err := Simulate(seq, src, s); err != nil {
			b.Fatal(err)
		}
	}
	scalarPerTrial := time.Since(start) / scalarTrials
	b.ReportMetric(float64(scalarPerTrial)/float64(batchPerTrial), "speedup_x")
}

// BenchmarkFig5BatchPoint prices the figure-level acceptance bar: the
// Figure 5 error-rate point (the full grid at PLR 10%) evaluated at
// 10 000 trials per cell through Fig5Batch, against today's 5-seed
// Fig5Multi baseline. Both run end to end and uncached — calibration,
// encodes, simulation — which is the CLI reality the bar prices:
// Fig5Multi re-runs the whole pipeline per seed, while Fig5Batch pays
// it once and amortises the channel axis inside the batch engine.
// SearchRange is the real default (15) so the encode/simulate
// proportions match production runs. Reported custom metrics:
//
//   - trials/s: lane-sequences evaluated per second across the grid
//   - vs_5seed_x: 5-seed Fig5Multi wall-clock over one 10k-trial
//     Fig5Batch run; the acceptance bar "10k trials cost at most 2x
//     the 5-seed baseline" is vs_5seed_x >= 0.5 (gated in
//     BENCH_mc.json)
func BenchmarkFig5BatchPoint(b *testing.B) {
	const trials = 10000
	cfg := Fig5Config{Frames: 12, ProbeFrames: 8, SearchRange: 15}
	seeds := []uint64{1, 2, 3, 4, 5}

	var cells int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Fig5Batch(cfg, trials)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(stats)
	}
	b.StopTimer()
	batchTime := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(cells*trials)/batchTime.Seconds(), "trials/s")

	start := time.Now()
	if _, err := Fig5Multi(cfg, seeds); err != nil {
		b.Fatal(err)
	}
	multiTime := time.Since(start)
	b.ReportMetric(float64(multiTime)/float64(batchTime), "vs_5seed_x")
}
