package experiment

import (
	"math"
	"testing"

	"pbpair/internal/network"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

// TestSimBatchAgreesWithAnalytic cross-validates the batch engine
// against the closed-form expectations of internal/analytic at a
// sample size the scalar loop could never afford in a test: 10 000
// lanes, where standard errors are tight enough to catch per-mille
// biases — more than an order of magnitude sharper than PR 7's
// 32-seed gate.
//
// The tight three-counter gates run under single-packet framing
// (jumbo MTU), where the closed form is exact: every row of a frame
// rides the frame's only packet, so losing it is exactly a lost frame
// and concealment is linear in the per-packet loss indicators. Under
// multi-packet framing the concealment expectation is only a lower
// bound — losing the packet that carries the picture header makes the
// surviving GOBs of an intra frame parse under the sticky inter
// default, and the resulting parse-error concealment has no term in
// the model (see the Report docs) — so the default-MTU point gates
// the two exact counters tightly and pins the concealment bias to its
// provable one-sided envelope.
func TestSimBatchAgreesWithAnalytic(t *testing.T) {
	const (
		frames   = 18
		trials   = 10000
		jumboMTU = 16000 // > any QP-8 QCIF frame: one packet per frame
	)
	seq, src := encodeForBatch(t, synth.RegimeForeman, frames)
	exact, err := ExtractModel(seq, src, AnalyticSpec{MTU: jumboMTU})
	if err != nil {
		t.Fatalf("extract (jumbo): %v", err)
	}
	splice, err := ExtractModel(seq, src, AnalyticSpec{})
	if err != nil {
		t.Fatalf("extract (default MTU): %v", err)
	}

	burst := network.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.45, LossGood: 0, LossBad: 1}
	points := []struct {
		name  string
		spec  AnalyticSpec
		batch BatchSpec
	}{
		{"iid-0.05", AnalyticSpec{LossRate: 0.05, MTU: jumboMTU},
			BatchSpec{Trials: trials, Seed: 909, LossRate: 0.05}},
		{"iid-0.20", AnalyticSpec{LossRate: 0.20, MTU: jumboMTU},
			BatchSpec{Trials: trials, Seed: 910, LossRate: 0.20}},
		{"ge-burst", AnalyticSpec{GE: &burst, MTU: jumboMTU},
			BatchSpec{Trials: trials, Seed: 911, GE: &burst}},
	}
	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			an, err := AnalyzeModel(exact, pt.spec)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if an.PacketsSent != frames {
				t.Fatalf("jumbo MTU still split frames: %d packets for %d frames — the exact-gate premise (one packet per frame) is broken", an.PacketsSent, frames)
			}
			mtr, err := SimBatch(seq, src, SimSpec{Name: pt.name, MTU: jumboMTU}, pt.batch)
			if err != nil {
				t.Fatalf("simbatch: %v", err)
			}
			for _, m := range []struct {
				name string
				an   float64
				mc   interface{ StdErr() float64 }
				mean float64
			}{
				{"packets lost", an.ExpPacketsLost, mtr.PacketsLost, mtr.PacketsLost.Mean},
				{"lost frames", an.ExpLostFrames, mtr.LostFrames, mtr.LostFrames.Mean},
				{"concealed MBs", an.ExpConcealedMBs, mtr.ConcealedMBs, mtr.ConcealedMBs.Mean},
			} {
				tol := 5*m.mc.StdErr() + 0.02
				diff := math.Abs(m.an - m.mean)
				t.Logf("%s: analytic %.4f, batch mean %.4f ± %.4f (diff %.4f, tol %.4f)",
					m.name, m.an, m.mean, m.mc.StdErr(), diff, tol)
				if diff > tol {
					t.Errorf("%s: analytic %.4f vs 10k-lane mean %.4f exceeds gate %.4f",
						m.name, m.an, m.mean, tol)
				}
			}
		})
	}

	// Multi-packet framing: packets lost and lost frames stay exact
	// (still linear in loss indicators); concealment is a strict lower
	// bound, and the cascade excess cannot exceed a full frame of
	// concealment per lost header packet — bounded by rows × cols ×
	// E[packets lost], since header packets are a subset of all packets.
	t.Run("iid-0.20-splice", func(t *testing.T) {
		spec := AnalyticSpec{LossRate: 0.20}
		an, err := AnalyzeModel(splice, spec)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		if an.PacketsSent <= frames {
			t.Fatalf("default MTU produced single-packet frames (%d packets); the splice point is not exercising multi-packet payloads", an.PacketsSent)
		}
		mtr, err := SimBatch(seq, src, SimSpec{Name: "splice"},
			BatchSpec{Trials: trials, Seed: 912, LossRate: 0.20})
		if err != nil {
			t.Fatalf("simbatch: %v", err)
		}
		for _, m := range []struct {
			name string
			an   float64
			mc   interface{ StdErr() float64 }
			mean float64
		}{
			{"packets lost", an.ExpPacketsLost, mtr.PacketsLost, mtr.PacketsLost.Mean},
			{"lost frames", an.ExpLostFrames, mtr.LostFrames, mtr.LostFrames.Mean},
		} {
			tol := 5*m.mc.StdErr() + 0.02
			diff := math.Abs(m.an - m.mean)
			t.Logf("%s: analytic %.4f, batch mean %.4f ± %.4f (diff %.4f, tol %.4f)",
				m.name, m.an, m.mean, m.mc.StdErr(), diff, tol)
			if diff > tol {
				t.Errorf("%s: analytic %.4f vs 10k-lane mean %.4f exceeds gate %.4f",
					m.name, m.an, m.mean, tol)
			}
		}
		mbs := float64(seq.Width/video.MBSize) * float64(seq.Height/video.MBSize)
		lo := an.ExpConcealedMBs - 5*mtr.ConcealedMBs.StdErr() - 0.02
		hi := an.ExpConcealedMBs + mbs*an.ExpPacketsLost + 5*mtr.ConcealedMBs.StdErr()
		t.Logf("concealed MBs: analytic lower bound %.4f, batch mean %.4f ± %.4f (cascade envelope hi %.4f)",
			an.ExpConcealedMBs, mtr.ConcealedMBs.Mean, mtr.ConcealedMBs.StdErr(), hi)
		if mtr.ConcealedMBs.Mean < lo {
			t.Errorf("concealed MBs mean %.4f below the analytic lower bound %.4f — the model should never overcount",
				mtr.ConcealedMBs.Mean, an.ExpConcealedMBs)
		}
		if mtr.ConcealedMBs.Mean > hi {
			t.Errorf("concealed MBs mean %.4f exceeds the header-cascade envelope %.4f",
				mtr.ConcealedMBs.Mean, hi)
		}
	})
}
