package experiment

import (
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/synth"
)

func mustPBPAIR(t *testing.T, th, plr float64) codec.ModePlanner {
	t.Helper()
	src := synth.New(synth.RegimeForeman)
	rows, cols := mbGrid(src)
	p, err := core.New(core.Config{Rows: rows, Cols: cols, IntraTh: th, PLR: plr})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The fan-out determinism tests pin the tentpole guarantee at the
// experiment level: every harness entry point produces byte- (or
// value-) identical results for any worker count.

func TestSweepCSVByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := SweepConfig{
		Frames:   6,
		IntraThs: []float64{0.2, 0.9},
		PLRs:     []float64{0, 0.1},
		Regime:   synth.RegimeForeman,
	}

	cfg.Workers = 1
	serialPoints, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := SweepCSV(serialPoints)

	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		points, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := SweepCSV(points); got != serial {
			t.Errorf("workers=%d: CSV differs from serial\nserial:\n%s\nworkers=%d:\n%s",
				workers, serial, workers, got)
		}
	}
}

func TestFig6IdenticalAcrossWorkers(t *testing.T) {
	cfg := Fig6Config{Frames: 12, ProbeFrames: 10, LossEvents: []int{3, 7}}

	cfg.Workers = 1
	serial, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Workers = 8
	par, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(par) {
		t.Fatalf("series count differs: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Scheme != par[i].Scheme {
			t.Fatalf("series %d: scheme %q vs %q", i, serial[i].Scheme, par[i].Scheme)
		}
		for k := range serial[i].PSNR {
			if serial[i].PSNR[k] != par[i].PSNR[k] || serial[i].FrameBytes[k] != par[i].FrameBytes[k] {
				t.Fatalf("series %d (%s): frame %d differs from serial", i, serial[i].Scheme, k)
			}
		}
	}
}

func TestContentTableIdenticalAcrossWorkers(t *testing.T) {
	cfg := ContentConfig{
		Frames:  5,
		Regimes: []synth.Regime{synth.RegimeAkiyo, synth.RegimeForeman},
	}

	cfg.Workers = 1
	serial, err := ContentTable(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Workers = 4
	par, err := ContentTable(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(par) {
		t.Fatalf("row count differs: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("row %d differs:\nserial: %+v\nworkers=4: %+v", i, serial[i], par[i])
		}
	}
}

// TestScenarioWorkersIdentical checks the intra-frame sharding level
// through the harness: a Scenario run with encoder sharding reports
// the same metrics as a serial encode.
func TestScenarioWorkersIdentical(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(Scenario{
			Name:    "workers",
			Source:  synth.New(synth.RegimeForeman),
			Frames:  5,
			Planner: mustPBPAIR(t, 0.8, 0.1),
			Workers: workers,
			HalfPel: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := run(1), run(8)
	if serial.TotalBytes != par.TotalBytes || serial.Counters != par.Counters {
		t.Errorf("sharded run differs: serial %d bytes %+v, workers=8 %d bytes %+v",
			serial.TotalBytes, serial.Counters, par.TotalBytes, par.Counters)
	}
	for i, v := range serial.PSNR.Values() {
		if par.PSNR.Values()[i] != v {
			t.Fatalf("frame %d PSNR differs", i)
		}
	}
}
