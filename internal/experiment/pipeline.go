package experiment

import (
	"fmt"

	"pbpair/internal/bitcache"
	"pbpair/internal/codec"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/motion"
	"pbpair/internal/network"
	"pbpair/internal/parallel"
	"pbpair/internal/synth"
)

// Two-phase experiment pipeline. Every run in this package factors
// into an encode phase (source → bitstream + energy tally; fully
// deterministic, never sees the channel) and a simulate phase
// (bitstream → packets → lossy channel → decode → metrics). EncodeSpec
// describes the first phase canonically enough to fingerprint, SimSpec
// the second, and Plan wires N encodes to M ≥ N simulations so that
// loss-independent grid axes (seeds, PLR columns, clean/lossy pairs)
// share one encode instead of re-running it. See ARCHITECTURE.md,
// "Two-phase experiment pipeline".

// EncodeSpec canonically describes one encode job: the synthetic
// source, the frame count and every bitstream-affecting codec knob,
// with the resilience scheme as a buildable value (SchemeSpec) rather
// than a live planner, so equal specs can be recognised by content.
// Workers only shards the encoder and is excluded from the
// fingerprint (sharding is bit-exact).
type EncodeSpec struct {
	Regime synth.Regime
	Frames int

	// Codec parameters; zero values select QP 8 and SearchRange 15,
	// the same defaults a Scenario applies.
	QP           int
	SearchRange  int
	Search       motion.SearchKind
	SADThreshold int32
	HalfPel      bool
	Deblock      bool

	Scheme SchemeSpec

	Workers int
}

// withDefaults mirrors Scenario's codec defaults so a spec and the
// scenario it replaces fingerprint (and encode) identically.
func (s EncodeSpec) withDefaults() EncodeSpec {
	if s.QP == 0 {
		s.QP = 8
	}
	if s.SearchRange == 0 {
		s.SearchRange = 15
	}
	return s
}

// codecConfig builds the encoder configuration (sans planner) for the
// spec's source dimensions.
func (s EncodeSpec) codecConfig(width, height int) codec.Config {
	return codec.Config{
		Width: width, Height: height,
		QP:           s.QP,
		SearchRange:  s.SearchRange,
		Search:       s.Search,
		SADThreshold: s.SADThreshold,
		HalfPel:      s.HalfPel,
		Deblock:      s.Deblock,
		Workers:      s.Workers,
	}
}

// Canonical returns the canonical serialization of every input that
// determines the encoded bitstream — the preimage of the cache key.
// Two specs that encode identical sequences serialize equal (defaults
// are applied first); flipping any bitstream-affecting field changes
// the serialization, a property pinned by FuzzEncodeSpecFingerprint.
func (s EncodeSpec) Canonical() string {
	s = s.withDefaults()
	params := synth.DefaultParams(s.Regime)
	return fmt.Sprintf("pbpair/encode/v1|src=synth:%s|frames=%d|%s",
		s.Regime, s.Frames, s.codecConfig(params.Width, params.Height).BitstreamKey(s.Scheme.Key()))
}

// Fingerprint returns the spec's content address in the bitstream
// cache.
func (s EncodeSpec) Fingerprint() bitcache.Key {
	return bitcache.KeyOf(s.Canonical())
}

// validate rejects specs that cannot encode.
func (s EncodeSpec) validate() error {
	if s.Regime < synth.RegimeAkiyo || s.Regime > synth.RegimeMobile {
		return fmt.Errorf("experiment: encode spec has unknown regime %d", s.Regime)
	}
	if s.Frames <= 0 {
		return fmt.Errorf("experiment: encode spec has %d frames", s.Frames)
	}
	if s.Scheme.Kind == 0 {
		return fmt.Errorf("experiment: encode spec has no scheme")
	}
	return nil
}

// encode runs the spec: shared (memoised) source, fresh planner, full
// encode.
func (s EncodeSpec) encode() (*codec.EncodedSequence, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	planner, err := s.Scheme.Build()
	if err != nil {
		return nil, err
	}
	src := synth.Shared(s.Regime)
	width, height := src.Dims()
	cfg := s.codecConfig(width, height)
	cfg.Planner = planner
	name := fmt.Sprintf("%s/%s", s.Regime, s.Scheme.Key())
	return encodeSequence(name, src, s.Frames, cfg)
}

// Encode returns the spec's encoded sequence, through the cache when
// one is given (nil runs the encode directly). The returned sequence
// may be shared with other callers and must not be mutated.
func Encode(cache *bitcache.Store, spec EncodeSpec) (*codec.EncodedSequence, error) {
	if cache == nil {
		return spec.encode()
	}
	return cache.GetOrCompute(spec.Fingerprint(), spec.encode)
}

// encodeSequence drives the encoder over frames [0, n) and collects
// the bitstreams plus the energy tally — the encode phase shared by
// spec-based jobs and Scenario runs.
func encodeSequence(name string, src synth.Source, frames int, cfg codec.Config) (*codec.EncodedSequence, error) {
	var counters energy.Counters
	cfg.Counters = &counters
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: encode %q: %w", name, err)
	}
	seq := &codec.EncodedSequence{
		Scheme: cfg.Planner.Name(),
		Width:  cfg.Width, Height: cfg.Height,
		Frames: make([]codec.SeqFrame, 0, frames),
	}
	for f := 0; f < frames; f++ {
		ef, err := enc.EncodeFrame(src.Frame(f))
		if err != nil {
			return nil, fmt.Errorf("experiment: encode %q frame %d: %w", name, f, err)
		}
		seq.Frames = append(seq.Frames, codec.SeqFrame{
			FrameNum:   ef.FrameNum,
			Type:       ef.Type,
			Data:       ef.Data,
			GOBOffsets: ef.GOBOffsets,
			IntraMBs:   ef.Plan.IntraCount(),
		})
		seq.TotalBytes += ef.Bytes()
	}
	seq.Counters = counters
	return seq, nil
}

// SimSpec describes the channel-and-decode half of a run: everything
// a Scenario configures downstream of the encoder. The zero value
// simulates loss-free transmission with default MTU, concealment,
// device profile and bad-pixel threshold.
type SimSpec struct {
	Name string
	// Channel models the network; nil means loss-free. Stateful
	// channels (UniformLoss advances an RNG) must not be shared
	// between simulations — give each SimSpec its own instance.
	Channel network.Channel
	// MTU for packetisation (default network.DefaultMTU).
	MTU int
	// Concealer overrides the decoder's copy concealment.
	Concealer codec.Concealer
	// FECGroup enables XOR-parity FEC spanning this many consecutive
	// frames per group (0 = off); see Scenario.FECGroup.
	FECGroup int
	// Profile is the energy model device (default energy.IPAQ). It
	// prices the sequence's counters; the tally itself comes from the
	// encode phase.
	Profile energy.Profile
	// BadPixelThreshold for the bad-pixel metric (default
	// metrics.DefaultBadPixelThreshold).
	BadPixelThreshold int
	// DecoderWorkers sets how many goroutines reconstruct GOB rows of
	// each decoded frame (codec.WithDecoderWorkers). <= 1 decodes
	// serially; the decoded frames are bit-identical for every value.
	DecoderWorkers int
	// KeepFrames retains a clone of every decoded frame in the result
	// (memory-heavy; off by default). Equivalent to passing the
	// KeepFrames option, but usable through Plan.Simulate.
	KeepFrames bool
}

// Validate rejects simulation specs whose numeric knobs are negative.
// Zero values remain valid (they select the documented defaults), so
// existing zero-SimSpec call sites are unaffected. Channel loss rates
// are validated where the channel is constructed
// (network.NewUniformLoss / NewGilbertElliott reject anything outside
// [0, 1], NaN included).
func (s SimSpec) Validate() error {
	if s.MTU < 0 {
		return fmt.Errorf("experiment: sim spec %q: MTU %d negative", s.Name, s.MTU)
	}
	if s.FECGroup < 0 {
		return fmt.Errorf("experiment: sim spec %q: FEC group %d negative", s.Name, s.FECGroup)
	}
	if s.BadPixelThreshold < 0 {
		return fmt.Errorf("experiment: sim spec %q: bad-pixel threshold %d negative", s.Name, s.BadPixelThreshold)
	}
	if s.DecoderWorkers < 0 {
		return fmt.Errorf("experiment: sim spec %q: decoder workers %d negative", s.Name, s.DecoderWorkers)
	}
	return nil
}

// Simulate transmits an encoded sequence over the spec's channel and
// measures the decode against src (which must be the source the
// sequence was encoded from; frames are regenerated on the fly —
// synthetic sources are deterministic). It is the simulate phase of
// every run in this package: Run(scenario) is exactly one encode
// followed by one Simulate, and a Plan fans many Simulates out
// against shared sequences.
func Simulate(seq *codec.EncodedSequence, src synth.Source, sim SimSpec, opts ...Option) (*Result, error) {
	var r runner
	for _, opt := range opts {
		opt(&r)
	}
	if seq == nil || len(seq.Frames) == 0 {
		return nil, fmt.Errorf("experiment: simulate %q: empty sequence", sim.Name)
	}
	if src == nil {
		return nil, fmt.Errorf("experiment: simulate %q: no source", sim.Name)
	}
	if err := sim.Validate(); err != nil {
		return nil, err
	}

	var decOpts []codec.DecoderOption
	if sim.Concealer != nil {
		decOpts = append(decOpts, codec.WithConcealer(sim.Concealer))
	}
	if sim.DecoderWorkers > 1 {
		decOpts = append(decOpts, codec.WithDecoderWorkers(sim.DecoderWorkers))
	}
	dec, err := codec.NewDecoder(seq.Width, seq.Height, decOpts...)
	if err != nil {
		return nil, fmt.Errorf("experiment: simulate %q: %w", sim.Name, err)
	}

	pktz := network.NewPacketizer(sim.MTU)
	channel := sim.Channel
	if channel == nil {
		channel = network.Perfect{}
	}
	profile := sim.Profile
	if profile.Name == "" {
		profile = energy.IPAQ
	}

	keep := r.keep || sim.KeepFrames
	frames := len(seq.Frames)
	res := &Result{Name: sim.Name, Scheme: seq.Scheme, Frames: frames, keepFrames: keep}

	// Frames are processed in blocks: one frame at a time normally, or
	// FECGroup frames per block when FEC is on (the receiver buffers a
	// full parity group before decoding).
	blockFrames := 1
	var fecEnc *network.FECEncoder
	if sim.FECGroup > 0 {
		blockFrames = sim.FECGroup
		var err error
		if fecEnc, err = network.NewFECEncoder(sim.FECGroup); err != nil {
			return nil, fmt.Errorf("experiment: simulate %q: %w", sim.Name, err)
		}
	}

	for k := 0; k < frames; k += blockFrames {
		end := k + blockFrames
		if end > frames {
			end = frames
		}
		var blockPackets []network.Packet
		for f := k; f < end; f++ {
			ef := &seq.Frames[f]
			res.FrameBytes.Add(float64(len(ef.Data)))
			res.IntraMBs.Add(float64(ef.IntraMBs))
			res.TotalBytes += len(ef.Data)

			packets := pktz.Packetize(ef.AsEncodedFrame())
			if fecEnc != nil {
				packets = fecEnc.Protect(packets)
			}
			blockPackets = append(blockPackets, packets...)
		}
		if fecEnc != nil {
			blockPackets = append(blockPackets, fecEnc.Flush()...)
		}

		for _, pkt := range blockPackets {
			if pkt.Parity != nil {
				res.FECBytes += len(pkt.Payload)
			}
		}
		res.PacketsSent += len(blockPackets)
		kept := channel.Transmit(blockPackets)
		res.PacketsLost += len(blockPackets) - len(kept)
		if fecEnc != nil {
			kept = network.RecoverFEC(kept)
		}

		// Group surviving media packets by frame and decode in order.
		byFrame := make(map[int][]network.Packet, end-k)
		for _, pkt := range kept {
			byFrame[pkt.FrameNum] = append(byFrame[pkt.FrameNum], pkt)
		}
		for f := k; f < end; f++ {
			original := src.Frame(f)
			var decoded *codec.DecodeResult
			var err error
			if payload := network.Reassemble(byFrame[f]); payload == nil {
				decoded = dec.ConcealLostFrame()
				res.LostFrames++
			} else {
				decoded, err = dec.DecodeFrame(payload)
				if err != nil {
					return nil, fmt.Errorf("experiment: simulate %q frame %d decode: %w", sim.Name, f, err)
				}
			}
			res.ConcealedMBs += decoded.ConcealedMBs

			// One fused traversal for PSNR and bad pixels; the values are
			// identical to the separate metrics.PSNR / metrics.BadPixels
			// calls (pinned by TestMetricsEquiv).
			st, err := metrics.Stats(original, decoded.Frame, sim.BadPixelThreshold)
			if err != nil {
				return nil, fmt.Errorf("experiment: simulate %q frame %d metrics: %w", sim.Name, f, err)
			}
			res.PSNR.Add(st.PSNR())
			res.BadPixels.Add(float64(st.Bad))
			res.TotalBadPix += st.Bad

			if keep {
				res.DecodedFrames = append(res.DecodedFrames, decoded.Frame.Clone())
			}
		}
	}
	res.Counters = seq.Counters
	res.Breakdown = profile.Decompose(seq.Counters)
	res.Joules = res.Breakdown.Total()
	return res, nil
}

// Plan collects an experiment's encode jobs and the simulations that
// consume them, then runs both phases through the worker pool. Encode
// jobs added by spec are deduplicated by fingerprint — the second
// Encode of an equal spec returns the first job's handle — and served
// through the bitstream cache when one is set, so equal encodes are
// also shared across plans (and, with a spill directory, across
// processes).
//
// Determinism: distinct encodes run first (parallel.Map, one slot per
// job), then all simulations (one slot per Simulate call, in add
// order). Both phases inherit parallel's index-addressed slots and
// lowest-index error selection, so Run's result slice is identical
// for every worker count and any cache state.
type Plan struct {
	workers int
	cache   *bitcache.Store

	encodes []planEncode
	byKey   map[bitcache.Key]int
	sims    []planSim
}

type planEncode struct {
	src synth.Source
	run func() (*codec.EncodedSequence, error)
}

type planSim struct {
	enc  int
	spec SimSpec
}

// NewPlan builds an empty plan. workers bounds both phases' fan-out
// (<= 0 selects parallel.DefaultWorkers); cache may be nil.
func NewPlan(workers int, cache *bitcache.Store) *Plan {
	return &Plan{workers: workers, cache: cache, byKey: make(map[bitcache.Key]int)}
}

// Encode registers a spec-based encode job and returns its handle,
// deduplicating against previously added equal specs.
func (p *Plan) Encode(spec EncodeSpec) int {
	spec = spec.withDefaults()
	key := spec.Fingerprint()
	if i, ok := p.byKey[key]; ok {
		return i
	}
	i := len(p.encodes)
	p.byKey[key] = i
	p.encodes = append(p.encodes, planEncode{
		src: synth.Shared(spec.Regime),
		run: func() (*codec.EncodedSequence, error) { return Encode(p.cache, spec) },
	})
	return i
}

// EncodeScenario registers an encode job described by a Scenario —
// for callers holding a live planner rather than a canonical
// SchemeSpec. Such jobs cannot be fingerprinted, so they bypass the
// cache and are never deduplicated; the scenario's channel, FEC and
// metric settings are ignored (those belong to SimSpec).
func (p *Plan) EncodeScenario(s Scenario) int {
	i := len(p.encodes)
	p.encodes = append(p.encodes, planEncode{
		src: s.Source,
		run: func() (*codec.EncodedSequence, error) { return encodeScenario(s) },
	})
	return i
}

// Simulate registers a simulation of encode job enc (a handle from
// Encode or EncodeScenario) and returns its result index in Run's
// output.
func (p *Plan) Simulate(enc int, spec SimSpec) int {
	if enc < 0 || enc >= len(p.encodes) {
		panic(fmt.Sprintf("experiment: plan simulate references encode %d of %d", enc, len(p.encodes)))
	}
	p.sims = append(p.sims, planSim{enc: enc, spec: spec})
	return len(p.sims) - 1
}

// Run executes the encode phase, then the simulate phase, and returns
// one Result per Simulate call in add order.
func (p *Plan) Run() ([]*Result, error) {
	seqs, err := parallel.Map(p.workers, len(p.encodes), func(i int) (*codec.EncodedSequence, error) {
		return p.encodes[i].run()
	})
	if err != nil {
		return nil, err
	}
	return parallel.Map(p.workers, len(p.sims), func(i int) (*Result, error) {
		job := p.sims[i]
		return Simulate(seqs[job.enc], p.encodes[job.enc].src, job.spec)
	})
}
