package experiment

import (
	"fmt"
	"reflect"
	"testing"

	"pbpair/internal/bitcache"
	"pbpair/internal/codec"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

func newCache(t *testing.T) *bitcache.Store {
	t.Helper()
	s, err := bitcache.New(bitcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec EncodeSpec
	}{
		{"no regime", EncodeSpec{Frames: 4, Scheme: SchemeNO()}},
		{"bad regime", EncodeSpec{Regime: synth.Regime(99), Frames: 4, Scheme: SchemeNO()}},
		{"no frames", EncodeSpec{Regime: synth.RegimeAkiyo, Scheme: SchemeNO()}},
		{"no scheme", EncodeSpec{Regime: synth.RegimeAkiyo, Frames: 4}},
	}
	for _, tc := range cases {
		if _, err := Encode(nil, tc.spec); err == nil {
			t.Errorf("%s: encode accepted", tc.name)
		}
	}
}

// TestEncodeMatchesScenario pins the refactor's central identity: a
// spec-based encode and the equivalent Scenario encode produce the
// same sequence, so Plan-based experiments inherit every byte of the
// pre-pipeline outputs.
func TestEncodeMatchesScenario(t *testing.T) {
	spec := EncodeSpec{
		Regime: synth.RegimeForeman, Frames: 5,
		SearchRange: 7, Scheme: SchemeGOP(3),
	}
	fromSpec, err := Encode(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := SchemeGOP(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	fromScenario, err := encodeScenario(Scenario{
		Name: "x", Source: synth.New(synth.RegimeForeman), Frames: 5,
		SearchRange: 7, Planner: planner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSpec, fromScenario) {
		t.Fatal("spec encode and scenario encode diverged")
	}
}

// TestRunMatchesPlan pins that a Plan produces exactly what Run does
// for the same configuration, cache on or off, at several worker
// counts.
func TestRunMatchesPlan(t *testing.T) {
	const frames = 5
	channelAt := func(seed uint64) network.Channel {
		ch, err := network.NewUniformLoss(0.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	planner, err := SchemeAIR(9).Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Scenario{
		Name: "pipe", Source: synth.New(synth.RegimeAkiyo), Frames: frames,
		SearchRange: 7, Planner: planner, Channel: channelAt(5),
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		for _, cached := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/cached=%t", workers, cached), func(t *testing.T) {
				var cache *bitcache.Store
				if cached {
					cache = newCache(t)
				}
				plan := NewPlan(workers, cache)
				enc := plan.Encode(EncodeSpec{
					Regime: synth.RegimeAkiyo, Frames: frames,
					SearchRange: 7, Scheme: SchemeAIR(9),
				})
				plan.Simulate(enc, SimSpec{Name: "pipe", Channel: channelAt(5)})
				got, err := plan.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
					t.Fatal("plan result diverged from Run")
				}
			})
		}
	}
}

// TestPlanDeduplicatesEncodes verifies the dedupe and single-encode
// sharing: N simulations of one spec run one encode.
func TestPlanDeduplicatesEncodes(t *testing.T) {
	cache := newCache(t)
	plan := NewPlan(1, cache)
	spec := EncodeSpec{Regime: synth.RegimeAkiyo, Frames: 3, SearchRange: 7, Scheme: SchemeNO()}
	a := plan.Encode(spec)
	b := plan.Encode(spec)
	if a != b {
		t.Fatalf("equal specs got distinct handles %d, %d", a, b)
	}
	// The same spec with a different Workers knob is the same encode.
	c := plan.Encode(EncodeSpec{Regime: synth.RegimeAkiyo, Frames: 3, SearchRange: 7, Scheme: SchemeNO(), Workers: 4})
	if c != a {
		t.Fatal("Workers knob broke encode dedupe")
	}
	d := plan.Encode(EncodeSpec{Regime: synth.RegimeAkiyo, Frames: 4, SearchRange: 7, Scheme: SchemeNO()})
	if d == a {
		t.Fatal("distinct specs shared a handle")
	}
	for seed := uint64(0); seed < 3; seed++ {
		ch, err := network.NewUniformLoss(0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		plan.Simulate(a, SimSpec{Name: "s", Channel: ch})
	}
	plan.Simulate(d, SimSpec{Name: "d"})
	results, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	st := cache.Stats()
	if st.Misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (one per distinct spec)", st.Misses)
	}
}

func TestPlanSimulatePanicsOnBadHandle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range handle")
		}
	}()
	NewPlan(1, nil).Simulate(0, SimSpec{})
}

// TestFig5IdenticalCacheOnOff pins the headline acceptance property on
// Fig5: byte-identical rows with the cache on or off, workers 1 or 4,
// and across repeated runs against a warm cache.
func TestFig5IdenticalCacheOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig5 grid in -short mode")
	}
	cfg := Fig5Config{Frames: 8, ProbeFrames: 8, SearchRange: 7, Workers: 1}
	want, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := newCache(t)
	for _, workers := range []int{1, 4} {
		for run := 0; run < 2; run++ { // run 2 hits the warm cache
			c := cfg
			c.Workers = workers
			c.Cache = cache
			got, err := Fig5(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d run=%d: cached rows diverged", workers, run)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("repeated Fig5 never hit the cache: %+v", st)
	}
}

// TestSweepIdenticalCacheOnOff does the same for the sweep CSV — the
// exact bytes the CLI emits.
func TestSweepIdenticalCacheOnOff(t *testing.T) {
	cfg := SweepConfig{
		Frames: 4, SearchRange: 7,
		IntraThs: []float64{0, 0.9}, PLRs: []float64{0, 0.2},
		Workers: 1,
	}
	base, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := SweepCSV(base)
	cache := newCache(t)
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		c.Cache = cache
		got, err := Sweep(c)
		if err != nil {
			t.Fatal(err)
		}
		if SweepCSV(got) != wantCSV {
			t.Fatalf("workers=%d: cached sweep CSV diverged", workers)
		}
	}
}

// TestRDCurveSchemeMatchesMakePlanner pins that the cacheable Scheme
// path and the legacy MakePlanner path produce the same curve.
func TestRDCurveSchemeMatchesMakePlanner(t *testing.T) {
	base := RDConfig{
		Regime: synth.RegimeAkiyo, Frames: 4, SearchRange: 7,
		QPs: []int{4, 16}, Workers: 1,
	}
	legacy := base
	legacy.MakePlanner = func() (codec.ModePlanner, error) { return SchemeGOP(3).Build() }
	want, err := RDCurve(legacy)
	if err != nil {
		t.Fatal(err)
	}
	viaScheme := base
	viaScheme.Scheme = SchemeGOP(3)
	viaScheme.Cache = newCache(t)
	got, err := RDCurve(viaScheme)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Scheme path diverged from MakePlanner path")
	}
	if st := viaScheme.Cache.Stats(); st.Misses != int64(len(base.QPs)) {
		t.Fatalf("cache misses = %d, want %d", st.Misses, len(base.QPs))
	}
}

// TestFig5MultiSeedIndependenceCheck exercises satellite invariant:
// Fig5Multi enforces identical per-seed size/energy, and a healthy run
// passes it with the cache both off and shared.
func TestFig5MultiSeedIndependenceCheck(t *testing.T) {
	cfg := Fig5Config{Frames: 6, ProbeFrames: 6, SearchRange: 7, Workers: 2, Cache: newCache(t)}
	stats, err := Fig5Multi(cfg, []uint64{3, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	for _, s := range stats {
		if s.Seeds != 3 {
			t.Fatalf("%s/%s aggregated %d seeds, want 3", s.Sequence, s.Scheme, s.Seeds)
		}
	}
	// With a shared cache the three seeds must coalesce onto one encode
	// per distinct spec: every seed re-requests the same grid.
	st := cfg.Cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("seed axis never hit the shared cache: %+v", st)
	}
}
