package experiment

import (
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/network"
	"pbpair/internal/obs"
	"pbpair/internal/synth"
)

// encodeForBatch builds a GOP-3 test sequence: periodic full intra
// refresh gives lineages a natural re-merge point, which is the state
// shape the batch engine is designed around.
func encodeForBatch(t testing.TB, regime synth.Regime, frames int) (*codec.EncodedSequence, synth.Source) {
	t.Helper()
	src := synth.Shared(regime)
	seq, err := Encode(nil, EncodeSpec{
		Regime: regime, Frames: frames, QP: 8, SearchRange: 7,
		Scheme: SchemeGOP(3),
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return seq, src
}

// scalarTrial runs the legacy scalar Simulate for one lane of a batch
// spec: same sequence, channel seeded with LaneSeed(seed, lane).
func scalarTrial(t testing.TB, seq *codec.EncodedSequence, src synth.Source, sim SimSpec, batch BatchSpec, lane int) *Result {
	t.Helper()
	var ch network.Channel
	var err error
	if batch.GE != nil {
		ch, err = network.NewGilbertElliott(*batch.GE, network.LaneSeed(batch.Seed, lane))
	} else {
		ch, err = network.NewUniformLoss(batch.LossRate, network.LaneSeed(batch.Seed, lane))
	}
	if err != nil {
		t.Fatal(err)
	}
	sim.Channel = ch
	res, err := Simulate(seq, src, sim)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareScalar checks one batch lane against its scalar twin with
// exact equality — the batch engine accumulates per-frame values in
// the same order the scalar loop does, so even the floating-point
// results must be bitwise identical.
func compareScalar(t *testing.T, label string, mtr *MultiTrialResult, lane int, want *Result) {
	t.Helper()
	if got := mtr.LanePSNR[lane]; got != want.PSNR.Mean() {
		t.Errorf("%s lane %d: PSNR mean %v, scalar %v", label, lane, got, want.PSNR.Mean())
	}
	if got := int(mtr.LaneBadPixels[lane]); got != want.TotalBadPix {
		t.Errorf("%s lane %d: bad pixels %d, scalar %d", label, lane, got, want.TotalBadPix)
	}
	if got := int(mtr.LaneConcealedMBs[lane]); got != want.ConcealedMBs {
		t.Errorf("%s lane %d: concealed MBs %d, scalar %d", label, lane, got, want.ConcealedMBs)
	}
	if got := int(mtr.LaneLostFrames[lane]); got != want.LostFrames {
		t.Errorf("%s lane %d: lost frames %d, scalar %d", label, lane, got, want.LostFrames)
	}
	if got := int(mtr.LanePacketsLost[lane]); got != want.PacketsLost {
		t.Errorf("%s lane %d: packets lost %d, scalar %d", label, lane, got, want.PacketsLost)
	}
}

// TestSimBatchLane0Golden pins the trial-0 compatibility contract:
// lane 0 of a batch run reproduces the legacy single-seed Simulate
// byte for byte — the full per-frame series, every counter — over
// lossy and truncation-heavy configurations (small MTU forces
// multi-packet frames, so losses splice partial payloads).
func TestSimBatchLane0Golden(t *testing.T) {
	ge := &network.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.4, LossGood: 0.05, LossBad: 0.6}
	cases := []struct {
		name  string
		sim   SimSpec
		batch BatchSpec
	}{
		{
			name:  "uniform20-small-mtu",
			sim:   SimSpec{Name: "b/u20", MTU: 300},
			batch: BatchSpec{Trials: 5, Seed: 2005, LossRate: 0.2, Lane0Result: true},
		},
		{
			name:  "uniform40-heavy",
			sim:   SimSpec{Name: "b/u40", MTU: 256},
			batch: BatchSpec{Trials: 3, Seed: 17, LossRate: 0.4, Lane0Result: true},
		},
		{
			name:  "gilbert-elliott",
			sim:   SimSpec{Name: "b/ge", MTU: 300},
			batch: BatchSpec{Trials: 4, Seed: 99, GE: ge, Lane0Result: true},
		},
		{
			name:  "loss-free",
			sim:   SimSpec{Name: "b/clean", MTU: 1500},
			batch: BatchSpec{Trials: 2, Seed: 1, LossRate: 0, Lane0Result: true},
		},
	}
	seq, src := encodeForBatch(t, synth.RegimeForeman, 12)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mtr, err := SimBatch(seq, src, tc.sim, tc.batch)
			if err != nil {
				t.Fatal(err)
			}
			want := scalarTrial(t, seq, src, tc.sim, tc.batch, 0)
			got := mtr.Lane0
			if got == nil {
				t.Fatal("Lane0Result set but Lane0 is nil")
			}
			// Full per-frame series, bitwise.
			for _, s := range []struct {
				name      string
				got, want []float64
			}{
				{"PSNR", got.PSNR.Values(), want.PSNR.Values()},
				{"BadPixels", got.BadPixels.Values(), want.BadPixels.Values()},
				{"FrameBytes", got.FrameBytes.Values(), want.FrameBytes.Values()},
				{"IntraMBs", got.IntraMBs.Values(), want.IntraMBs.Values()},
			} {
				if len(s.got) != len(s.want) {
					t.Fatalf("%s series length %d vs %d", s.name, len(s.got), len(s.want))
				}
				for i := range s.want {
					if s.got[i] != s.want[i] {
						t.Fatalf("%s[%d] = %v, scalar %v", s.name, i, s.got[i], s.want[i])
					}
				}
			}
			if got.TotalBytes != want.TotalBytes || got.TotalBadPix != want.TotalBadPix ||
				got.ConcealedMBs != want.ConcealedMBs || got.LostFrames != want.LostFrames ||
				got.PacketsSent != want.PacketsSent || got.PacketsLost != want.PacketsLost ||
				got.Joules != want.Joules || got.Counters != want.Counters {
				t.Fatalf("lane-0 counters diverge:\nbatch  %+v\nscalar %+v", got, want)
			}
			compareScalar(t, tc.name, mtr, 0, want)
		})
	}
}

// TestSimBatchAllLanesMatchScalar checks every lane — not just lane 0
// — against its scalar twin, across the 64-lane word boundary, for
// both channel families.
func TestSimBatchAllLanesMatchScalar(t *testing.T) {
	seq, src := encodeForBatch(t, synth.RegimeForeman, 8)
	ge := &network.GEConfig{PGoodToBad: 0.08, PBadToGood: 0.35, LossGood: 0.03, LossBad: 0.5}
	for _, tc := range []struct {
		name  string
		batch BatchSpec
	}{
		{"uniform", BatchSpec{Trials: 67, Seed: 4242, LossRate: 0.15}},
		{"ge", BatchSpec{Trials: 67, Seed: 31, GE: ge}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim := SimSpec{Name: "b/all", MTU: 512}
			mtr, err := SimBatch(seq, src, sim, tc.batch)
			if err != nil {
				t.Fatal(err)
			}
			for lane := 0; lane < tc.batch.Trials; lane++ {
				want := scalarTrial(t, seq, src, sim, tc.batch, lane)
				compareScalar(t, tc.name, mtr, lane, want)
			}
			if t.Failed() {
				t.FailNow()
			}
		})
	}
}

// TestSimBatchDeterministicAcrossWorkers pins the engine's worker
// invariance (and, under `make race`, its race-cleanness): identical
// results at every Workers value.
func TestSimBatchDeterministicAcrossWorkers(t *testing.T) {
	seq, src := encodeForBatch(t, synth.RegimeForeman, 10)
	run := func(workers int) *MultiTrialResult {
		mtr, err := SimBatch(seq, src, SimSpec{Name: "b/det", MTU: 400},
			BatchSpec{Trials: 130, Seed: 7, LossRate: 0.25, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return mtr
	}
	want := run(1)
	for _, workers := range []int{2, 4, 0} {
		got := run(workers)
		for l := 0; l < want.Trials; l++ {
			if got.LanePSNR[l] != want.LanePSNR[l] ||
				got.LaneBadPixels[l] != want.LaneBadPixels[l] ||
				got.LaneConcealedMBs[l] != want.LaneConcealedMBs[l] ||
				got.LaneLostFrames[l] != want.LaneLostFrames[l] ||
				got.LanePacketsLost[l] != want.LanePacketsLost[l] {
				t.Fatalf("workers=%d lane %d diverges from serial run", workers, l)
			}
		}
		if got.Batch != want.Batch {
			t.Fatalf("workers=%d: batch stats diverge: %+v vs %+v", workers, got.Batch, want.Batch)
		}
	}
}

// TestSimBatchObsCounters checks the dedup observability surface: the
// engine decodes far fewer groups than lane-frames at realistic loss,
// the all-received fast path dominates, and the counters land in the
// registry.
func TestSimBatchObsCounters(t *testing.T) {
	seq, src := encodeForBatch(t, synth.RegimeForeman, 12)
	reg := obs.NewRegistry()
	mtr, err := SimBatch(seq, src, SimSpec{Name: "b/obs", MTU: 1500},
		BatchSpec{Trials: 1000, Seed: 3, LossRate: 0.05, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	st := mtr.Batch
	if st.LaneFrames != 12*1000 {
		t.Fatalf("lane frames %d", st.LaneFrames)
	}
	if st.GroupDecodes >= st.LaneFrames/10 {
		t.Fatalf("dedup ineffective: %d group decodes for %d lane frames", st.GroupDecodes, st.LaneFrames)
	}
	if st.AllReceived == 0 || st.MaxLiveGroups < 1 {
		t.Fatalf("implausible stats: %+v", st)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"sim.batch_lane_frames", "sim.batch_group_decodes", "sim.batch_parsed_frames",
		"sim.batch_all_received_fast", "sim.batch_forks", "sim.batch_merges",
		"sim.batch_lanes_per_decode", "sim.batch_max_live_groups",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("registry missing %s", name)
		}
	}
	if got := snap["sim.batch_lane_frames"]; got != float64(st.LaneFrames) {
		t.Errorf("registry lane frames %v, stats %d", got, st.LaneFrames)
	}
}

// TestSimBatchRejects pins the explicit mode boundaries.
func TestSimBatchRejects(t *testing.T) {
	seq, src := encodeForBatch(t, synth.RegimeForeman, 2)
	ok := BatchSpec{Trials: 2, LossRate: 0.1}
	if _, err := SimBatch(seq, src, SimSpec{FECGroup: 2}, ok); err == nil {
		t.Error("FEC accepted in batch mode")
	}
	if _, err := SimBatch(seq, src, SimSpec{KeepFrames: true}, ok); err == nil {
		t.Error("KeepFrames accepted in batch mode")
	}
	ch, _ := network.NewUniformLoss(0.1, 1)
	if _, err := SimBatch(seq, src, SimSpec{Channel: ch}, ok); err == nil {
		t.Error("sim.Channel accepted in batch mode")
	}
	if _, err := SimBatch(seq, src, SimSpec{}, BatchSpec{Trials: 0}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimBatch(seq, src, SimSpec{}, BatchSpec{Trials: 2, LossRate: 1.5}); err == nil {
		t.Error("loss rate 1.5 accepted")
	}
	nan := func() float64 { z := 0.0; return z / z }()
	if _, err := SimBatch(seq, src, SimSpec{}, BatchSpec{Trials: 2, LossRate: nan}); err == nil {
		t.Error("NaN loss rate accepted")
	}
	if _, err := SimBatch(seq, src, SimSpec{}, BatchSpec{Trials: 2, GE: &network.GEConfig{LossBad: 2}}); err == nil {
		t.Error("bad GE config accepted")
	}
	if _, err := SimBatch(nil, src, SimSpec{}, ok); err == nil {
		t.Error("nil sequence accepted")
	}
}
