package experiment

import (
	"testing"

	"pbpair/internal/synth"
)

// TestContentTableSmall runs the cross-content study at reduced scale
// and checks the content-adaptation claims it exists to demonstrate.
func TestContentTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-content table is slow; skipped in -short mode")
	}
	rows, err := ContentTable(ContentConfig{
		Frames:      36,
		SearchRange: 7,
		Regimes:     []synth.Regime{synth.RegimeHall, synth.RegimeGarden},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 2 regimes x 5 schemes
		t.Fatalf("got %d rows", len(rows))
	}
	cell := func(seq, scheme string) ContentRow {
		for _, r := range rows {
			if r.Sequence == seq && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", seq, scheme)
		return ContentRow{}
	}

	// Content adaptation: on the static hall scene PBPAIR spends far
	// fewer intra MBs than PGOP-3's fixed sweep, at a fraction of the
	// bits.
	pbHall := cell("hall", "PBPAIR")
	pgopHall := cell("hall", "PGOP-3")
	t.Logf("hall: PBPAIR %.1f intra/frame %.1f KB, PGOP-3 %.1f intra/frame %.1f KB",
		pbHall.IntraRate, pbHall.FileKB, pgopHall.IntraRate, pgopHall.FileKB)
	if pbHall.IntraRate >= pgopHall.IntraRate {
		t.Fatal("PBPAIR did not adapt its refresh down on static content")
	}
	if pbHall.FileKB >= pgopHall.FileKB {
		t.Fatal("PBPAIR's adaptive refresh should cost fewer bits on static content")
	}

	// And on garden it must scale the refresh up, not stay minimal.
	pbGarden := cell("garden", "PBPAIR")
	if pbGarden.IntraRate <= pbHall.IntraRate {
		t.Fatalf("refresh rate did not scale with content: hall %.1f vs garden %.1f",
			pbHall.IntraRate, pbGarden.IntraRate)
	}
	// Quality on hall: PBPAIR within range of the much more expensive
	// fixed schemes.
	if pbHall.AvgPSNR < pgopHall.AvgPSNR-3 {
		t.Fatalf("PBPAIR hall quality %.2f collapsed vs PGOP %.2f",
			pbHall.AvgPSNR, pgopHall.AvgPSNR)
	}
}
