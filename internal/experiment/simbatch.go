package experiment

import (
	"fmt"
	"math/bits"

	"pbpair/internal/codec"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/obs"
	"pbpair/internal/parallel"
	"pbpair/internal/swar"
	"pbpair/internal/synth"
)

// This file is the bit-packed Monte-Carlo channel engine: one cached
// bitstream evaluated against Trials independent loss realizations
// ("lanes") in a single pass. Per packet, a network.MaskSource draws
// every lane's loss decision into uint64 words; per frame, lanes are
// grouped by (decoder lineage, loss pattern) and each distinct group
// is decoded once — at realistic loss rates almost all lanes collapse
// onto a handful of groups (the all-received fast path dominates), so
// the decode work per frame is bounded by the number of distinct
// recent loss histories, not by the trial count. Lineages whose
// decoder state re-converges (intra refresh heals concealment drift)
// are detected by digest + exact state comparison and merged back,
// which is what keeps the live group count flat over long runs.
//
// Determinism contract: lane l reproduces the scalar Simulate run
// whose channel is seeded with network.LaneSeed(batch.Seed, l), bit
// for bit; lane 0 is the legacy single-seed run itself. Output is
// identical at any BatchSpec.Workers value (pattern groups are
// formed, decoded into independent decoders, and reduced in
// deterministic lane order).

// BatchSpec describes the Monte-Carlo axis of a SimBatch run: how
// many channel realizations to simulate and how the loss process is
// drawn. The channel lives here, not in SimSpec.Channel — the batch
// engine owns packet loss.
type BatchSpec struct {
	// Trials is the number of independent channel realizations (>= 1).
	Trials int
	// Seed is the base channel seed. Lane l uses
	// network.LaneSeed(Seed, l); lane 0 is Seed itself, reproducing
	// the scalar Simulate run with that seed.
	Seed uint64
	// LossRate is the i.i.d. per-packet loss probability in [0, 1],
	// used when GE is nil. Zero means loss-free lanes (the engine then
	// performs exactly one decode per frame).
	LossRate float64
	// GE selects a Gilbert–Elliott burst channel instead of i.i.d.
	// loss. All four probabilities must lie in [0, 1].
	GE *network.GEConfig
	// Workers bounds how many pattern groups decode concurrently
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for every
	// value.
	Workers int
	// Obs, when non-nil, receives the engine's observability counters
	// (sim.batch_* — lane frames, group decodes, fast-path hits,
	// forks, merges, parses).
	Obs *obs.Registry
	// Lane0Result, when set, additionally builds the full per-frame
	// Result for lane 0 — the legacy scalar run — in
	// MultiTrialResult.Lane0.
	Lane0Result bool
}

// Validate rejects malformed batch specs.
func (b BatchSpec) Validate() error {
	if b.Trials < 1 {
		return fmt.Errorf("experiment: batch spec: trials %d < 1", b.Trials)
	}
	if b.GE != nil {
		if err := b.GE.Validate(); err != nil {
			return fmt.Errorf("experiment: batch spec: %w", err)
		}
	} else if !(b.LossRate >= 0 && b.LossRate <= 1) {
		return fmt.Errorf("experiment: batch spec: loss rate %v outside [0, 1]", b.LossRate)
	}
	if b.Workers < 0 {
		return fmt.Errorf("experiment: batch spec: workers %d negative", b.Workers)
	}
	return nil
}

func (b BatchSpec) maskSource() (network.MaskSource, error) {
	if b.GE != nil {
		return network.NewBatchGE(*b.GE, b.Seed, b.Trials)
	}
	return network.NewBatchUniform(b.LossRate, b.Seed, b.Trials)
}

// BatchStats reports how much work the pattern-dedup engine actually
// performed — the observability behind the trials/s numbers.
type BatchStats struct {
	LaneFrames    int64 // Trials × Frames: what a scalar loop would decode
	GroupDecodes  int64 // decodes actually performed
	ParsedFrames  int64 // distinct payload parses (ParsePayload runs)
	AllReceived   int64 // lane-frames served by the all-received clean lineage
	LostLaneFrame int64 // lane-frames whose whole payload was lost
	Forks         int64 // decoder lineage forks (state copies)
	Merges        int64 // lineages re-merged after state convergence
	MaxLiveGroups int   // peak concurrent lineage count
}

// MultiTrialResult is the batch counterpart of Result: per-trial
// metric distributions over one simulated sequence, plus the
// loss-independent encode-side quantities Result carries.
type MultiTrialResult struct {
	Name   string
	Scheme string
	Frames int
	Trials int

	// Distributions across trials. PSNR summarizes each trial's mean
	// per-frame PSNR (matching Result.PSNR.Mean()); the others
	// summarize per-trial totals.
	PSNR         metrics.Dist
	BadPixels    metrics.Dist
	ConcealedMBs metrics.Dist
	LostFrames   metrics.Dist
	PacketsLost  metrics.Dist

	// Per-lane values behind the distributions, index = lane. Lane l
	// equals the scalar Simulate run seeded network.LaneSeed(Seed, l).
	LanePSNR         []float64
	LaneBadPixels    []int64
	LaneConcealedMBs []int64
	LaneLostFrames   []int64
	LanePacketsLost  []int64

	// Loss-independent quantities (identical in every trial).
	PacketsSent int
	TotalBytes  int
	Counters    energy.Counters
	Joules      float64
	Breakdown   energy.Breakdown

	Batch BatchStats

	// Lane0 is the full per-frame Result of lane 0 when
	// BatchSpec.Lane0Result was set (nil otherwise).
	Lane0 *Result
}

// batchChild is one (parent lineage, frame loss pattern) group during
// a frame step.
type batchChild struct {
	parent  int32
	pattern uint64
	dec     *codec.Decoder
	lanes   []int32
	payload []byte
	pf      *codec.ParsedFrame
	lost    bool // whole payload lost: conceal, count a lost frame
}

// pfKey keys the per-frame parse cache: groups whose decoders agree on
// the sticky header state parse a given loss pattern identically
// (frame count and reference existence are lockstep-equal across all
// lineages by construction).
type pfKey struct {
	pattern          uint64
	lastQP           int
	halfPel, deblock bool
}

type decOut struct {
	psnr      float64
	bad       int
	concealed int
	digest    uint64
}

// SimBatch evaluates one encoded sequence against batch.Trials
// independent loss realizations and returns the cross-trial metric
// distributions. sim follows the Simulate contract except that the
// channel must be described by batch (sim.Channel set is an error),
// and FEC grouping and frame retention are not supported in batch
// mode.
func SimBatch(seq *codec.EncodedSequence, src synth.Source, sim SimSpec, batch BatchSpec) (*MultiTrialResult, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, fmt.Errorf("experiment: simbatch %q: empty sequence", sim.Name)
	}
	if src == nil {
		return nil, fmt.Errorf("experiment: simbatch %q: no source", sim.Name)
	}
	if err := sim.Validate(); err != nil {
		return nil, err
	}
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	if sim.Channel != nil {
		return nil, fmt.Errorf("experiment: simbatch %q: sim.Channel must be nil — the batch spec owns the channel", sim.Name)
	}
	if sim.FECGroup > 0 {
		return nil, fmt.Errorf("experiment: simbatch %q: FEC grouping is not supported in batch mode", sim.Name)
	}
	if sim.KeepFrames {
		return nil, fmt.Errorf("experiment: simbatch %q: KeepFrames is not supported in batch mode", sim.Name)
	}

	maskSrc, err := batch.maskSource()
	if err != nil {
		return nil, fmt.Errorf("experiment: simbatch %q: %w", sim.Name, err)
	}

	var decOpts []codec.DecoderOption
	if sim.Concealer != nil {
		decOpts = append(decOpts, codec.WithConcealer(sim.Concealer))
	}
	// GOB-row fan-out stays off inside each decoder: the engine's
	// parallelism is across pattern groups (batch.Workers).
	newDecoder := func() (*codec.Decoder, error) {
		return codec.NewDecoder(seq.Width, seq.Height, decOpts...)
	}
	clean, err := newDecoder()
	if err != nil {
		return nil, fmt.Errorf("experiment: simbatch %q: %w", sim.Name, err)
	}

	profile := sim.Profile
	if profile.Name == "" {
		profile = energy.IPAQ
	}

	T := batch.Trials
	W := network.MaskWords(T)
	frames := len(seq.Frames)
	workers := parallel.Workers(batch.Workers, 1<<30)

	res := &MultiTrialResult{
		Name: sim.Name, Scheme: seq.Scheme, Frames: frames, Trials: T,
		LanePSNR:         make([]float64, T),
		LaneBadPixels:    make([]int64, T),
		LaneConcealedMBs: make([]int64, T),
		LaneLostFrames:   make([]int64, T),
		LanePacketsLost:  make([]int64, T),
	}
	var res0 *Result
	if batch.Lane0Result {
		res0 = &Result{Name: sim.Name, Scheme: seq.Scheme, Frames: frames}
	}
	stats := &res.Batch
	stats.LaneFrames = int64(T) * int64(frames)

	pktz := network.NewPacketizer(sim.MTU)
	lostCounters := make([]swar.LaneCounter, W)

	// Persistent lineage state.
	groups := []*batchChild{{dec: clean, lanes: make([]int32, 0, T)}}
	for l := 0; l < T; l++ {
		groups[0].lanes = append(groups[0].lanes, int32(l))
	}
	laneOf := make([]int32, T)
	psnrSum := make([]float64, T)

	// Reused per-frame scratch.
	maskBuf := make([][]uint64, 0, 8)
	pat := make([]uint64, T)
	var decFree []*codec.Decoder
	var pfFree []*codec.ParsedFrame
	getDec := func() (*codec.Decoder, error) {
		if n := len(decFree); n > 0 {
			d := decFree[n-1]
			decFree = decFree[:n-1]
			return d, nil
		}
		return newDecoder()
	}
	getPF := func() *codec.ParsedFrame {
		if n := len(pfFree); n > 0 {
			pf := pfFree[n-1]
			pfFree = pfFree[:n-1]
			return pf
		}
		return &codec.ParsedFrame{}
	}
	var recvScratch []network.Packet

	for f := 0; f < frames; f++ {
		ef := &seq.Frames[f]
		res.TotalBytes += len(ef.Data)
		if res0 != nil {
			res0.FrameBytes.Add(float64(len(ef.Data)))
			res0.IntraMBs.Add(float64(ef.IntraMBs))
			res0.TotalBytes += len(ef.Data)
		}

		packets := pktz.Packetize(ef.AsEncodedFrame())
		P := len(packets)
		if P > 64 {
			return nil, fmt.Errorf("experiment: simbatch %q: frame %d packetizes to %d packets; batch mode packs loss patterns into one word and supports at most 64 per frame (raise MTU)", sim.Name, f, P)
		}
		res.PacketsSent += P
		fullMask := ^uint64(0)
		if P < 64 {
			fullMask = (uint64(1) << uint(P)) - 1
		}

		// Draw every lane's loss word per packet, feed the per-lane
		// packet-loss counters, and build per-lane frame patterns (bit
		// p set = packet p lost). The bit-scan keeps pattern building
		// proportional to the number of losses, not lanes × packets.
		for len(maskBuf) < P {
			maskBuf = append(maskBuf, make([]uint64, W))
		}
		for l := range pat {
			pat[l] = 0
		}
		for p := 0; p < P; p++ {
			maskSrc.NextMask(maskBuf[p])
			for w := 0; w < W; w++ {
				word := maskBuf[p][w]
				lostCounters[w].Add(word)
				for word != 0 {
					l := 64*w + bits.TrailingZeros64(word)
					pat[l] |= uint64(1) << uint(p)
					word &= word - 1
				}
			}
		}

		// Group lanes by (parent lineage, pattern) in lane order; the
		// clean-lineage child (parent 0, pattern 0) always exists so
		// the all-received state advances even when every lane lost
		// something.
		type groupKey struct {
			parent  int32
			pattern uint64
		}
		children := []*batchChild{{parent: 0, pattern: 0}}
		childIdx := map[groupKey]int32{{0, 0}: 0}
		for l := 0; l < T; l++ {
			k := groupKey{parent: laneOf[l], pattern: pat[l]}
			ci, ok := childIdx[k]
			if !ok {
				ci = int32(len(children))
				children = append(children, &batchChild{parent: laneOf[l], pattern: pat[l]})
				childIdx[k] = ci
			}
			ch := children[ci]
			ch.lanes = append(ch.lanes, int32(l))
			laneOf[l] = ci
		}

		// Assign decoders: the first child of each damaged parent
		// inherits its decoder; every other child forks from the
		// parent's pre-decode state. The clean decoder is pinned to
		// child 0 and never given away.
		inherited := make([]bool, len(groups))
		inherited[0] = true
		children[0].dec = clean
		for _, ch := range children[1:] {
			if !inherited[ch.parent] {
				ch.dec = groups[ch.parent].dec
				inherited[ch.parent] = true
				continue
			}
			d, err := getDec()
			if err != nil {
				return nil, fmt.Errorf("experiment: simbatch %q: %w", sim.Name, err)
			}
			if err := d.CopyStateFrom(groups[ch.parent].dec); err != nil {
				return nil, fmt.Errorf("experiment: simbatch %q: %w", sim.Name, err)
			}
			ch.dec = d
			stats.Forks++
		}

		// Splice payloads and parse each distinct (pattern, carry
		// state) once. Payloads depend only on the pattern; parses
		// additionally on the decoder's sticky header state.
		payloadByPattern := map[uint64][]byte{}
		pfCache := map[pfKey]*codec.ParsedFrame{}
		var pfUsed []*codec.ParsedFrame
		for _, ch := range children {
			if ch.pattern == fullMask {
				ch.lost = true
				continue
			}
			payload, ok := payloadByPattern[ch.pattern]
			if !ok {
				recvScratch = recvScratch[:0]
				for p := 0; p < P; p++ {
					if ch.pattern&(uint64(1)<<uint(p)) == 0 {
						recvScratch = append(recvScratch, packets[p])
					}
				}
				payload = network.Reassemble(recvScratch)
				payloadByPattern[ch.pattern] = payload
			}
			if payload == nil {
				// Received packets carried no payload bytes: the scalar
				// path treats this as a wholly lost frame.
				ch.lost = true
				continue
			}
			ch.payload = payload
			lastQP, halfPel, deblock := ch.dec.CarryKey()
			k := pfKey{pattern: ch.pattern, lastQP: lastQP, halfPel: halfPel, deblock: deblock}
			pf, ok := pfCache[k]
			if !ok {
				pf = getPF()
				ch.dec.ParsePayload(payload, pf)
				pfCache[k] = pf
				pfUsed = append(pfUsed, pf)
				stats.ParsedFrames++
			}
			ch.pf = pf
		}

		// Decode each group once, fanned across the worker pool. Every
		// goroutine touches only its own decoder; shared ParsedFrames
		// and payloads are read-only.
		original := src.Frame(f)
		outs, err := parallel.Map(workers, len(children), func(i int) (decOut, error) {
			ch := children[i]
			var dr *codec.DecodeResult
			var err error
			switch {
			case ch.lost:
				dr = ch.dec.ConcealLostFrame()
			case ch.pf.Overflow():
				// Record-cap overflow (crafted streams): the replay path
				// cannot represent it, DecodeFrame's incremental flush can.
				dr, err = ch.dec.DecodeFrame(ch.payload)
			default:
				dr, err = ch.dec.DecodeParsed(ch.pf)
			}
			if err != nil {
				return decOut{}, fmt.Errorf("experiment: simbatch %q frame %d decode: %w", sim.Name, f, err)
			}
			st, err := metrics.Stats(original, dr.Frame, sim.BadPixelThreshold)
			if err != nil {
				return decOut{}, fmt.Errorf("experiment: simbatch %q frame %d metrics: %w", sim.Name, f, err)
			}
			return decOut{
				psnr:      st.PSNR(),
				bad:       st.Bad,
				concealed: dr.ConcealedMBs,
				digest:    ch.dec.StateDigest(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		stats.GroupDecodes += int64(len(children))
		stats.AllReceived += int64(len(children[0].lanes))

		// Reduce per lane (slot-independent sums, deterministic values).
		for i, ch := range children {
			out := outs[i]
			for _, l := range ch.lanes {
				psnrSum[l] += out.psnr
				res.LaneBadPixels[l] += int64(out.bad)
				res.LaneConcealedMBs[l] += int64(out.concealed)
				if ch.lost {
					res.LaneLostFrames[l]++
				}
			}
			if ch.lost {
				stats.LostLaneFrame += int64(len(ch.lanes))
			}
		}
		if res0 != nil {
			ch := children[laneOf[0]]
			out := outs[laneOf[0]]
			if ch.lost {
				res0.LostFrames++
			}
			res0.ConcealedMBs += out.concealed
			res0.PSNR.Add(out.psnr)
			res0.BadPixels.Add(float64(out.bad))
			res0.TotalBadPix += out.bad
		}

		// Merge lineages whose decode state re-converged (digest
		// bucket, then exact comparison — merges happen only on true
		// state equality, so the partition is deterministic).
		survivor := map[uint64]int32{outs[0].digest: 0}
		kept := make([]*batchChild, 1, len(children))
		kept[0] = children[0]
		for i := 1; i < len(children); i++ {
			ch := children[i]
			if si, ok := survivor[outs[i].digest]; ok && ch.dec.StateEqual(children[si].dec) {
				children[si].lanes = append(children[si].lanes, ch.lanes...)
				decFree = append(decFree, ch.dec)
				stats.Merges++
				continue
			}
			if _, ok := survivor[outs[i].digest]; !ok {
				survivor[outs[i].digest] = int32(i)
			}
			kept = append(kept, ch)
		}
		groups = groups[:0]
		groups = append(groups, kept...)
		for gi, g := range groups {
			for _, l := range g.lanes {
				laneOf[l] = int32(gi)
			}
		}
		if len(groups) > stats.MaxLiveGroups {
			stats.MaxLiveGroups = len(groups)
		}
		pfFree = append(pfFree, pfUsed...)
	}

	// Per-trial reductions. The per-trial PSNR mean divides the
	// frame-ordered sum by the frame count, matching Result.PSNR.Mean.
	for w := 0; w < W; w++ {
		counts := lostCounters[w].Counts()
		for j := 0; j < 64; j++ {
			l := 64*w + j
			if l < T {
				res.LanePacketsLost[l] = int64(counts[j])
			}
		}
	}
	lostF := make([]float64, T)
	badF := make([]float64, T)
	concF := make([]float64, T)
	pktF := make([]float64, T)
	for l := 0; l < T; l++ {
		res.LanePSNR[l] = psnrSum[l] / float64(frames)
		lostF[l] = float64(res.LaneLostFrames[l])
		badF[l] = float64(res.LaneBadPixels[l])
		concF[l] = float64(res.LaneConcealedMBs[l])
		pktF[l] = float64(res.LanePacketsLost[l])
	}
	res.PSNR = metrics.Summarize(res.LanePSNR)
	res.BadPixels = metrics.Summarize(badF)
	res.ConcealedMBs = metrics.Summarize(concF)
	res.LostFrames = metrics.Summarize(lostF)
	res.PacketsLost = metrics.Summarize(pktF)

	res.Counters = seq.Counters
	res.Breakdown = profile.Decompose(seq.Counters)
	res.Joules = res.Breakdown.Total()
	if res0 != nil {
		res0.PacketsSent = res.PacketsSent
		res0.PacketsLost = int(res.LanePacketsLost[0])
		res0.Counters = seq.Counters
		res0.Breakdown = res.Breakdown
		res0.Joules = res.Joules
		res.Lane0 = res0
	}

	if batch.Obs != nil {
		batch.Obs.Counter("sim.batch_lane_frames").Add(stats.LaneFrames)
		batch.Obs.Counter("sim.batch_group_decodes").Add(stats.GroupDecodes)
		batch.Obs.Counter("sim.batch_parsed_frames").Add(stats.ParsedFrames)
		batch.Obs.Counter("sim.batch_all_received_fast").Add(stats.AllReceived)
		batch.Obs.Counter("sim.batch_lost_lane_frames").Add(stats.LostLaneFrame)
		batch.Obs.Counter("sim.batch_forks").Add(stats.Forks)
		batch.Obs.Counter("sim.batch_merges").Add(stats.Merges)
		if stats.GroupDecodes > 0 {
			batch.Obs.Gauge("sim.batch_lanes_per_decode").Set(float64(stats.LaneFrames) / float64(stats.GroupDecodes))
		}
		batch.Obs.Gauge("sim.batch_max_live_groups").Set(float64(stats.MaxLiveGroups))
	}
	return res, nil
}
