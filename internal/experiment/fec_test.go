package experiment

import (
	"testing"

	"pbpair/internal/network"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
)

// TestFECScenarioRecoversLosses: with single-frame packets and a
// 4-frame FEC group, a scripted single loss inside a group must decode
// loss-free (recovered by parity), at the cost of parity overhead.
func TestFECScenarioRecoversLosses(t *testing.T) {
	base := Scenario{
		Name:    "fec",
		Source:  synth.New(synth.RegimeForeman),
		Frames:  12,
		Planner: resilience.NewNone(),
		Channel: network.NewSchedule(5),
	}

	noFEC, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if noFEC.LostFrames != 1 {
		t.Fatalf("without FEC: %d lost frames, want 1", noFEC.LostFrames)
	}

	withFEC := base
	withFEC.Planner = resilience.NewNone()
	withFEC.FECGroup = 4
	fec, err := Run(withFEC)
	if err != nil {
		t.Fatal(err)
	}
	if fec.LostFrames != 0 || fec.ConcealedMBs != 0 {
		t.Fatalf("with FEC: %d lost frames, %d concealed MBs, want 0/0",
			fec.LostFrames, fec.ConcealedMBs)
	}
	if fec.FECBytes <= 0 {
		t.Fatal("FEC reported no parity overhead")
	}
	if fec.PSNR.Mean() <= noFEC.PSNR.Mean() {
		t.Fatalf("FEC PSNR %.2f not above unprotected %.2f",
			fec.PSNR.Mean(), noFEC.PSNR.Mean())
	}
}

// TestFECScenarioDoubleLossStillConceals: two losses in one group
// exceed XOR parity's budget; the decoder's concealment must take over
// without error.
func TestFECScenarioDoubleLossStillConceals(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "fec-double",
		Source:   synth.New(synth.RegimeForeman),
		Frames:   8,
		Planner:  resilience.NewNone(),
		Channel:  network.NewSchedule(4, 5), // same 4-frame group
		FECGroup: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostFrames != 2 {
		t.Fatalf("double loss: %d lost frames, want 2", res.LostFrames)
	}
}

// TestFECOverheadProportional: parity bytes scale like 1/k of the
// media bytes when packets are uniform.
func TestFECOverheadProportional(t *testing.T) {
	run := func(group int) (media, fec int) {
		res, err := Run(Scenario{
			Name:     "fec-overhead",
			Source:   synth.New(synth.RegimeAkiyo),
			Frames:   12,
			Planner:  resilience.NewNone(),
			FECGroup: group,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes, res.FECBytes
	}
	media2, fec2 := run(2)
	media4, fec4 := run(4)
	if media2 != media4 {
		t.Fatalf("media bytes changed with FEC group: %d vs %d", media2, media4)
	}
	if fec4 >= fec2 {
		t.Fatalf("larger group should cost less parity: k=2 %d B vs k=4 %d B", fec2, fec4)
	}
}
