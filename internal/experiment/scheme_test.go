package experiment

import "testing"

func TestParseScheme(t *testing.T) {
	tests := []struct {
		in       string
		wantName string
	}{
		{"NO", "NO"},
		{"none", "NO"},
		{"GOP-3", "GOP-3"},
		{"gop-8", "GOP-8"},
		{"AIR-24", "AIR-24"},
		{"PGOP-3", "PGOP-3"},
		{"PBPAIR", "PBPAIR"},
		{"pbpair", "PBPAIR"},
		{" GOP-3 ", "GOP-3"},
	}
	for _, tt := range tests {
		p, err := ParseScheme(tt.in, 9, 11, 0.8, 0.1)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", tt.in, err)
			continue
		}
		if p.Name() != tt.wantName {
			t.Errorf("ParseScheme(%q).Name() = %q, want %q", tt.in, p.Name(), tt.wantName)
		}
	}
}

func TestParseSchemeErrors(t *testing.T) {
	bad := []string{"", "WAT", "GOP-", "GOP-x", "AIR-0", "PGOP-99", "PBPAIR-3"}
	for _, in := range bad {
		if _, err := ParseScheme(in, 9, 11, 0.8, 0.1); err == nil {
			t.Errorf("ParseScheme(%q) accepted", in)
		}
	}
}
