package experiment

import (
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
)

func TestRDCurveValidation(t *testing.T) {
	if _, err := RDCurve(RDConfig{}); err == nil {
		t.Fatal("missing MakePlanner accepted")
	}
}

func TestRDCurveMonotone(t *testing.T) {
	points, err := RDCurve(RDConfig{
		Regime:      synth.RegimeForeman,
		Frames:      8,
		SearchRange: 7,
		QPs:         []int{2, 8, 20, 31},
		MakePlanner: func() (codec.ModePlanner, error) { return resilience.NewNone(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].KBytes >= points[i-1].KBytes {
			t.Fatalf("rate not decreasing with QP: %+v", points)
		}
		if points[i].PSNR >= points[i-1].PSNR {
			t.Fatalf("quality not decreasing with QP: %+v", points)
		}
	}
}

// TestResilienceCostsBits: at equal quality PBPAIR's curve sits right
// of NO's — robustness is paid in rate, the §4.3 trade-off.
func TestResilienceCostsBits(t *testing.T) {
	cfg := RDConfig{
		Regime:      synth.RegimeForeman,
		Frames:      10,
		SearchRange: 7,
		QPs:         []int{4, 8, 14, 22},
	}
	cfg.MakePlanner = func() (codec.ModePlanner, error) { return resilience.NewNone(), nil }
	noCurve, err := RDCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MakePlanner = func() (codec.ModePlanner, error) {
		return core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.9, PLR: 0.1})
	}
	pbCurve, err := RDCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := BDRateGap(noCurve, pbCurve)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PBPAIR rate overhead at equal quality: %.2fx", gap)
	if gap <= 1.0 {
		t.Fatalf("resilience came for free (gap %.2f); bits must be paid somewhere", gap)
	}
	if gap > 6 {
		t.Fatalf("rate overhead %.2fx absurdly high", gap)
	}
}

func TestBDRateGapErrors(t *testing.T) {
	if _, err := BDRateGap(nil, nil); err == nil {
		t.Fatal("short curves accepted")
	}
	a := []RDPoint{{QP: 2, KBytes: 100, PSNR: 40}, {QP: 31, KBytes: 10, PSNR: 25}}
	b := []RDPoint{{QP: 2, KBytes: 100, PSNR: 60}, {QP: 31, KBytes: 10, PSNR: 55}}
	if _, err := BDRateGap(a, b); err == nil {
		t.Fatal("non-overlapping curves accepted")
	}
}

func TestInterpolateRate(t *testing.T) {
	curve := []RDPoint{{QP: 2, KBytes: 100, PSNR: 40}, {QP: 8, KBytes: 50, PSNR: 35}}
	if r, ok := interpolateRate(curve, 37.5); !ok || r != 75 {
		t.Fatalf("interpolate mid = %v, %v", r, ok)
	}
	if _, ok := interpolateRate(curve, 50); ok {
		t.Fatal("out-of-range PSNR interpolated")
	}
	if r, ok := interpolateRate(curve, 40); !ok || r != 100 {
		t.Fatalf("endpoint = %v, %v", r, ok)
	}
}
