package experiment

import (
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/resilience"
)

func TestPropagationValidation(t *testing.T) {
	if _, err := Propagation(PropagationConfig{}); err == nil {
		t.Fatal("missing MakePlanner accepted")
	}
	if _, err := Propagation(PropagationConfig{
		Frames: 10, Event: 20,
		MakePlanner: func() (codec.ModePlanner, error) { return resilience.NewNone(), nil },
	}); err == nil {
		t.Fatal("event outside window accepted")
	}
}

// TestPropagationShapes verifies the central propagation physics:
// without refresh the damage persists (long or infinite half-life,
// big residual); with PBPAIR refresh the gap decays.
func TestPropagationShapes(t *testing.T) {
	base := PropagationConfig{Frames: 30, Event: 8, SearchRange: 7}

	noCfg := base
	noCfg.MakePlanner = func() (codec.ModePlanner, error) { return resilience.NewNone(), nil }
	no, err := Propagation(noCfg)
	if err != nil {
		t.Fatal(err)
	}

	pbCfg := base
	pbCfg.MakePlanner = func() (codec.ModePlanner, error) {
		return core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.9, PLR: 0.1})
	}
	pb, err := Propagation(pbCfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("NO: peak %.2f dB, half-life %d, residual %.2f dB", no.PeakGapDB, no.HalfLife, no.ResidualDB)
	t.Logf("PBPAIR: peak %.2f dB, half-life %d, residual %.2f dB", pb.PeakGapDB, pb.HalfLife, pb.ResidualDB)

	if no.PeakGapDB < 1 || pb.PeakGapDB < 1 {
		t.Fatal("a whole-frame loss should open a clear gap")
	}
	if len(no.GapDB) != 30-8 {
		t.Fatalf("gap series length %d", len(no.GapDB))
	}
	// PBPAIR repairs; NO does not (or far more slowly).
	if pb.ResidualDB >= no.ResidualDB {
		t.Fatalf("PBPAIR residual %.2f not below NO %.2f", pb.ResidualDB, no.ResidualDB)
	}
	pbHL, noHL := pb.HalfLife, no.HalfLife
	if pbHL < 0 {
		t.Fatal("PBPAIR never halved the gap")
	}
	if noHL >= 0 && noHL < pbHL {
		t.Fatalf("NO (half-life %d) repaired faster than PBPAIR (%d)", noHL, pbHL)
	}
}

// TestPropagationGOPStep: GOP's repair is a step at the next I-frame —
// the gap stays high, then collapses to ~0 in one frame.
func TestPropagationGOPStep(t *testing.T) {
	cfg := PropagationConfig{Frames: 30, Event: 10, SearchRange: 7}
	cfg.MakePlanner = func() (codec.ModePlanner, error) { return resilience.NewGOP(8) }
	res, err := Propagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Event at 10; next I-frame at 18 (multiples of 9): gap index 8.
	idx := 18 - 10
	before := res.GapDB[idx-1]
	after := res.GapDB[idx]
	t.Logf("GOP-8 gap around the I-frame: %.2f -> %.2f dB", before, after)
	if after >= before/2 {
		t.Fatalf("I-frame did not collapse the gap: %.2f -> %.2f", before, after)
	}
	if after > 1.0 {
		t.Fatalf("post-I-frame residual %.2f dB too large", after)
	}
}
