package experiment

import (
	"testing"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// TestSimulateRetentionOff pins the frame-retention contract: with
// retention off, Simulate must not hold decoded frames (they would pin
// ~38 KB per frame per cell across a whole experiment grid), and every
// metric must be identical to a retaining run — retention is pure
// observation.
func TestSimulateRetentionOff(t *testing.T) {
	spec := EncodeSpec{
		Regime: synth.RegimeForeman, Frames: 6,
		SearchRange: 7,
		Scheme:      SchemeNO(),
	}
	seq, err := Encode(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	src := synth.Shared(synth.RegimeForeman)

	sim := func(keep bool) *Result {
		ch, err := network.NewUniformLoss(0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(seq, src, SimSpec{
			Name:       "retention",
			Channel:    ch,
			KeepFrames: keep,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	kept := sim(true)
	plain := sim(false)

	if len(kept.DecodedFrames) != 6 {
		t.Fatalf("retaining run kept %d frames, want 6", len(kept.DecodedFrames))
	}
	if plain.DecodedFrames != nil {
		t.Fatalf("non-retaining run kept %d frames, want none", len(plain.DecodedFrames))
	}
	if kp, pp := kept.PSNR.Values(), plain.PSNR.Values(); len(kp) != len(pp) {
		t.Fatalf("PSNR trace lengths differ: %d vs %d", len(kp), len(pp))
	} else {
		for i := range kp {
			if kp[i] != pp[i] {
				t.Fatalf("frame %d PSNR differs with retention: %v vs %v", i, kp[i], pp[i])
			}
		}
	}
	if kept.TotalBadPix != plain.TotalBadPix || kept.ConcealedMBs != plain.ConcealedMBs ||
		kept.LostFrames != plain.LostFrames || kept.PacketsLost != plain.PacketsLost {
		t.Fatal("loss/metric counters differ between retaining and non-retaining runs")
	}
}

// TestSimulateDecoderWorkersBitExact extends the decoder's parallelism
// guarantee through the simulate phase: a lossy simulation produces
// identical metrics at every decoder worker count.
func TestSimulateDecoderWorkersBitExact(t *testing.T) {
	spec := EncodeSpec{
		Regime: synth.RegimeForeman, Frames: 6,
		SearchRange: 7, HalfPel: true,
		Scheme: SchemeGOP(3),
	}
	seq, err := Encode(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	src := synth.Shared(synth.RegimeForeman)

	sim := func(workers int) *Result {
		ch, err := network.NewUniformLoss(0.15, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(seq, src, SimSpec{
			Name:           "dec-workers",
			Channel:        ch,
			DecoderWorkers: workers,
			KeepFrames:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := sim(1)
	for _, workers := range []int{2, 4} {
		got := sim(workers)
		wp, gp := want.PSNR.Values(), got.PSNR.Values()
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("workers=%d frame %d PSNR differs: %v vs %v", workers, i, gp[i], wp[i])
			}
		}
		if got.TotalBadPix != want.TotalBadPix || got.ConcealedMBs != want.ConcealedMBs {
			t.Fatalf("workers=%d counters differ from serial decode", workers)
		}
		for i := range want.DecodedFrames {
			if !got.DecodedFrames[i].Equal(want.DecodedFrames[i]) {
				t.Fatalf("workers=%d decoded frame %d differs from serial decode", workers, i)
			}
		}
	}
}
