package experiment

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean %v", m)
	}
	// Sample std dev of that set is ~2.138.
	if math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	if m, s := meanStd([]float64{3}); m != 3 || s != 0 {
		t.Fatal("single input")
	}
}

func TestSplitKey(t *testing.T) {
	seq, scheme := splitKey("foreman\x00PBPAIR")
	if seq != "foreman" || scheme != "PBPAIR" {
		t.Fatalf("split = %q/%q", seq, scheme)
	}
}

func TestFig5MultiValidation(t *testing.T) {
	if _, err := Fig5Multi(Fig5Config{}, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

// TestFig5MultiSmall runs the multi-seed pipeline at tiny scale and
// checks the aggregation invariants: loss-independent columns have no
// spread, quality columns usually do, and PBPAIR's win over NO is
// separated beyond noise.
func TestFig5MultiSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed Fig5 is slow; skipped in -short mode")
	}
	cfg := Fig5Config{Frames: 16, ProbeFrames: 8, SearchRange: 7, PLR: 0.12}
	stats, err := Fig5Multi(cfg, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 { // 3 sequences x 5 schemes
		t.Fatalf("got %d cells, want 15", len(stats))
	}
	anyPSNRSpread := false
	for _, s := range stats {
		if s.Seeds != 5 {
			t.Fatalf("%s/%s aggregated %d seeds", s.Sequence, s.Scheme, s.Seeds)
		}
		if s.PSNRStd > 0 {
			anyPSNRSpread = true
		}
		if s.FileKBMean <= 0 || s.EnergyJMean <= 0 {
			t.Fatalf("%s/%s: non-positive size/energy", s.Sequence, s.Scheme)
		}
	}
	if !anyPSNRSpread {
		t.Fatal("no PSNR spread across seeds; loss seeding broken")
	}

	// PBPAIR must beat NO beyond the seed noise on the active foreman
	// content (the weakest form of the paper's Figure 5 claim).
	ok, err := SeparationVerdict(stats, "foreman", "PBPAIR", "NO")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		for _, s := range stats {
			if s.Sequence == "foreman" {
				t.Logf("%s: %.2f ± %.2f dB", s.Scheme, s.PSNRMean, s.PSNRStd)
			}
		}
		t.Fatal("PBPAIR vs NO not separated beyond noise")
	}
}

func TestSeparationVerdictErrors(t *testing.T) {
	if _, err := SeparationVerdict(nil, "foreman", "A", "B"); err == nil {
		t.Fatal("missing schemes accepted")
	}
}
