package experiment

import (
	"fmt"

	"pbpair/internal/bitcache"
	"pbpair/internal/core"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// Content-sensitivity study: the paper evaluates three sequences; this
// table extends the same comparison to the two extension regimes
// (hall-monitor surveillance and mobile-style multi-object motion),
// probing where each scheme's assumptions break. PGOP's fixed sweep
// wastes refresh on hall's static scene; AIR's fixed budget drowns on
// garden; PBPAIR's content term adapts to both.

// ContentRow is one (regime, scheme) cell.
type ContentRow struct {
	Sequence  string
	Scheme    string
	AvgPSNR   float64
	BadPixels int
	FileKB    float64
	EnergyJ   float64
	IntraRate float64 // intra MBs per frame
}

// ContentConfig parameterises the study.
type ContentConfig struct {
	Frames      int
	PLR         float64
	QP          int
	SearchRange int
	Seed        uint64
	IntraTh     float64 // PBPAIR threshold (no size calibration here)
	Paranoia    float64 // PBPAIR staleness bound (see core.Config.Paranoia)
	Regimes     []synth.Regime
	// Workers bounds the experiment fan-out across (regime, scheme)
	// cells: <= 0 selects parallel.DefaultWorkers, 1 runs serially.
	Workers int
	// DecoderWorkers sets the per-frame GOB-row reconstruction
	// goroutines of every simulation's decoder (<= 1 decodes
	// serially). Output is bit-identical for every value.
	DecoderWorkers int
	// Cache, when non-nil, memoizes encodes by content fingerprint.
	Cache *bitcache.Store
}

// WithDefaults fills zero fields.
func (c ContentConfig) WithDefaults() ContentConfig {
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.PLR == 0 {
		c.PLR = 0.10
	}
	if c.QP == 0 {
		c.QP = 8
	}
	if c.Seed == 0 {
		c.Seed = 808
	}
	if c.IntraTh == 0 {
		// Just above 1−PLR: for perfectly-concealable static content σ
		// holds steady at its startup value of 1−α, so a threshold of
		// exactly 1−α never refreshes it — and a lost first frame then
		// stays grey forever. A threshold slightly above forces exactly
		// one repair round after startup (σ rises to ≈1−α+α·sim and
		// stays there), which is the intended operating point.
		c.IntraTh = 1 - c.PLR + 0.02
	}
	if c.Paranoia == 0 {
		// Without it, a static region whose initial coding and repair
		// are both lost stays damaged forever (see core.Config.Paranoia)
		// — at 10% loss over static regimes that tail is common enough
		// to dominate a small study.
		c.Paranoia = 0.01
	}
	if len(c.Regimes) == 0 {
		c.Regimes = []synth.Regime{
			synth.RegimeHall, synth.RegimeAkiyo, synth.RegimeForeman,
			synth.RegimeMobile, synth.RegimeGarden,
		}
	}
	return c
}

// ContentTable runs the five schemes over the configured regimes. The
// (regime, scheme) cells become one encode plus one simulation each,
// flattened in the serial iteration order (regime outer, scheme inner);
// the row order is identical for every worker count.
func ContentTable(cfg ContentConfig) ([]ContentRow, error) {
	cfg = cfg.WithDefaults()
	plan := NewPlan(cfg.Workers, cfg.Cache)
	var names []string
	for _, regime := range cfg.Regimes {
		src := synth.Shared(regime)
		gridRows, gridCols := mbGrid(src)
		schemes := []SchemeSpec{
			SchemeNO(),
			SchemePBPAIR(core.Config{
				Rows: gridRows, Cols: gridCols,
				IntraTh: cfg.IntraTh, PLR: cfg.PLR,
				Paranoia: cfg.Paranoia,
			}),
			SchemePGOP(3, gridCols),
			SchemeGOP(3),
			SchemeAIR(24),
		}
		for _, scheme := range schemes {
			enc := plan.Encode(EncodeSpec{
				Regime: regime, Frames: cfg.Frames,
				QP: cfg.QP, SearchRange: cfg.SearchRange,
				Scheme: scheme,
			})
			channel, err := network.NewUniformLoss(cfg.PLR, cfg.Seed+uint64(regime))
			if err != nil {
				return nil, err
			}
			plan.Simulate(enc, SimSpec{
				Name:           fmt.Sprintf("content/%s/%s", src.Name(), scheme.Key()),
				Channel:        channel,
				DecoderWorkers: cfg.DecoderWorkers,
			})
			names = append(names, src.Name())
		}
	}
	results, err := plan.Run()
	if err != nil {
		return nil, err
	}
	rows := make([]ContentRow, 0, len(results))
	for i, res := range results {
		rows = append(rows, ContentRow{
			Sequence:  names[i],
			Scheme:    res.Scheme,
			AvgPSNR:   res.PSNR.Mean(),
			BadPixels: res.TotalBadPix,
			FileKB:    float64(res.TotalBytes) / 1024,
			EnergyJ:   res.Joules,
			IntraRate: res.IntraMBs.Mean(),
		})
	}
	return rows, nil
}
