package experiment

import (
	"fmt"

	"pbpair/internal/codec"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// Error-propagation profiling: the quantity behind every figure in the
// paper is how a single loss decays over the following frames under
// each refresh scheme. Propagation runs the same encode twice — clean
// and with exactly one lost frame — and characterises the PSNR gap's
// decay.

// PropagationResult characterises one scheme's response to a single
// frame loss.
type PropagationResult struct {
	Scheme string
	// GapDB[k] is clean PSNR − lossy PSNR at k frames after the event
	// (index 0 = the lost frame itself).
	GapDB []float64
	// PeakGapDB is the largest gap observed.
	PeakGapDB float64
	// HalfLife is the number of frames after the event until the gap
	// first drops below half its peak (-1 if never within the window).
	HalfLife int
	// ResidualDB is the gap at the end of the window — how much damage
	// the scheme never repaired.
	ResidualDB float64
}

// PropagationConfig parameterises a profile run.
type PropagationConfig struct {
	Regime      synth.Regime
	Frames      int // total encode length
	Event       int // frame lost (must be >= 1, < Frames)
	QP          int
	SearchRange int
	MakePlanner func() (codec.ModePlanner, error) // fresh planner per encode
}

// Propagation measures one scheme's single-loss decay profile.
func Propagation(cfg PropagationConfig) (*PropagationResult, error) {
	if cfg.MakePlanner == nil {
		return nil, fmt.Errorf("experiment: Propagation needs MakePlanner")
	}
	if cfg.Regime == 0 {
		cfg.Regime = synth.RegimeForeman
	}
	if cfg.Frames == 0 {
		cfg.Frames = 40
	}
	if cfg.Event <= 0 {
		cfg.Event = cfg.Frames / 4
	}
	if cfg.Event >= cfg.Frames {
		return nil, fmt.Errorf("experiment: loss event %d outside the %d-frame window", cfg.Event, cfg.Frames)
	}
	src := synth.Shared(cfg.Regime)

	// One encode, two simulations: the clean and lossy traces come from
	// the same bitstream, which is exactly the paper's premise (the
	// encoder never sees the channel). The pre-pipeline implementation
	// encoded twice with two fresh planners; planners are deterministic,
	// so the two bitstreams were identical and so are the results.
	planner, err := cfg.MakePlanner()
	if err != nil {
		return nil, err
	}
	seq, err := encodeScenario(Scenario{
		Name:        "propagation",
		Source:      src,
		Frames:      cfg.Frames,
		QP:          cfg.QP,
		SearchRange: cfg.SearchRange,
		Planner:     planner,
	})
	if err != nil {
		return nil, err
	}
	clean, err := Simulate(seq, src, SimSpec{Name: "propagation"})
	if err != nil {
		return nil, err
	}
	lossy, err := Simulate(seq, src, SimSpec{Name: "propagation", Channel: network.NewSchedule(cfg.Event)})
	if err != nil {
		return nil, err
	}

	cp, lp := clean.PSNR.Values(), lossy.PSNR.Values()
	res := &PropagationResult{Scheme: lossy.Scheme, HalfLife: -1}
	for k := cfg.Event; k < cfg.Frames; k++ {
		gap := cp[k] - lp[k]
		if gap < 0 {
			gap = 0
		}
		res.GapDB = append(res.GapDB, gap)
		if gap > res.PeakGapDB {
			res.PeakGapDB = gap
		}
	}
	for k, gap := range res.GapDB {
		if gap <= res.PeakGapDB/2 && res.PeakGapDB > 0 && k > 0 {
			res.HalfLife = k
			break
		}
	}
	res.ResidualDB = res.GapDB[len(res.GapDB)-1]
	return res, nil
}
