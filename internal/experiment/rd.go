package experiment

import (
	"fmt"

	"pbpair/internal/bitcache"
	"pbpair/internal/codec"
	"pbpair/internal/synth"
)

// Rate–distortion analysis: sweeping QP maps out each scheme's
// compression frontier. Resilience costs bits, so at equal QP a
// refresh scheme sits right of the NO curve; the horizontal gap is the
// price of robustness the paper's §4.3 trade-off discussion describes.

// RDPoint is one (rate, distortion) sample of a scheme's curve.
type RDPoint struct {
	QP     int
	KBytes float64 // total encoded size
	PSNR   float64 // loss-free decoded quality (encoder reconstruction fidelity)
}

// RDConfig parameterises an RD sweep.
type RDConfig struct {
	Regime      synth.Regime
	Frames      int
	SearchRange int
	QPs         []int
	// Scheme, when set (Kind != 0), describes the resilience scheme as
	// a canonical value, which makes each QP point fingerprintable and
	// therefore cacheable. Preferred over MakePlanner.
	Scheme SchemeSpec
	// MakePlanner builds a fresh planner per QP point (planners are
	// stateful) — the escape hatch for custom planners with no
	// SchemeSpec spelling. Such encodes cannot be fingerprinted and
	// bypass the cache. Ignored when Scheme is set; one of the two is
	// required. When Workers > 1 it is called concurrently, so it must
	// not share mutable state between the planners it returns.
	MakePlanner func() (codec.ModePlanner, error)
	// Workers bounds the experiment fan-out across QP points: <= 0
	// selects parallel.DefaultWorkers, 1 runs serially. The curve is
	// identical for every value.
	Workers int
	// Cache, when non-nil, memoizes Scheme-described encodes by
	// content fingerprint (MakePlanner points always re-encode).
	Cache *bitcache.Store
}

// RDCurve encodes the sequence at each QP (loss-free) and returns the
// curve in QP order; the QP points are independent encodes and fan out
// across cfg.Workers goroutines.
func RDCurve(cfg RDConfig) ([]RDPoint, error) {
	if cfg.Scheme.Kind == 0 && cfg.MakePlanner == nil {
		return nil, fmt.Errorf("experiment: RDCurve needs MakePlanner")
	}
	if cfg.Regime == 0 {
		cfg.Regime = synth.RegimeForeman
	}
	if cfg.Frames == 0 {
		cfg.Frames = 30
	}
	if len(cfg.QPs) == 0 {
		cfg.QPs = []int{2, 4, 8, 12, 16, 24, 31}
	}
	src := synth.Shared(cfg.Regime)
	plan := NewPlan(cfg.Workers, cfg.Cache)
	for _, qp := range cfg.QPs {
		var enc int
		if cfg.Scheme.Kind != 0 {
			enc = plan.Encode(EncodeSpec{
				Regime: cfg.Regime, Frames: cfg.Frames,
				QP: qp, SearchRange: cfg.SearchRange,
				Scheme: cfg.Scheme,
			})
		} else {
			planner, err := cfg.MakePlanner()
			if err != nil {
				return nil, err
			}
			enc = plan.EncodeScenario(Scenario{
				Name:        fmt.Sprintf("rd/qp%d", qp),
				Source:      src,
				Frames:      cfg.Frames,
				QP:          qp,
				SearchRange: cfg.SearchRange,
				Planner:     planner,
			})
		}
		plan.Simulate(enc, SimSpec{Name: fmt.Sprintf("rd/qp%d", qp)})
	}
	results, err := plan.Run()
	if err != nil {
		return nil, err
	}
	out := make([]RDPoint, 0, len(results))
	for i, res := range results {
		out = append(out, RDPoint{
			QP:     cfg.QPs[i],
			KBytes: float64(res.TotalBytes) / 1024,
			PSNR:   res.PSNR.Mean(),
		})
	}
	return out, nil
}

// BDRateGap is a coarse Bjøntegaard-style comparison: the mean
// horizontal (rate) ratio between two curves at equal quality,
// computed by linear interpolation of curve b onto curve a's PSNR
// samples. A value of 1.3 means b needs ~30% more bits for the same
// quality. Points outside b's PSNR range are skipped; if nothing
// overlaps, an error is returned.
func BDRateGap(a, b []RDPoint) (float64, error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, fmt.Errorf("experiment: BD rate gap needs >= 2 points per curve")
	}
	var ratios []float64
	for _, pa := range a {
		rb, ok := interpolateRate(b, pa.PSNR)
		if !ok {
			continue
		}
		if pa.KBytes > 0 {
			ratios = append(ratios, rb/pa.KBytes)
		}
	}
	if len(ratios) == 0 {
		return 0, fmt.Errorf("experiment: RD curves do not overlap in quality")
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	return sum / float64(len(ratios)), nil
}

// interpolateRate returns curve's rate at the given PSNR via linear
// interpolation between bracketing points (curves are monotone:
// lower QP → more bits, higher PSNR).
func interpolateRate(curve []RDPoint, psnr float64) (float64, bool) {
	for i := 0; i+1 < len(curve); i++ {
		p1, p2 := curve[i], curve[i+1]
		lo, hi := p1, p2
		if lo.PSNR > hi.PSNR {
			lo, hi = hi, lo
		}
		if psnr < lo.PSNR || psnr > hi.PSNR {
			continue
		}
		if hi.PSNR == lo.PSNR {
			return lo.KBytes, true
		}
		t := (psnr - lo.PSNR) / (hi.PSNR - lo.PSNR)
		return lo.KBytes + t*(hi.KBytes-lo.KBytes), true
	}
	return 0, false
}
