package experiment

import (
	"math"
	"sync"
	"testing"

	"pbpair/internal/bitcache"
	"pbpair/internal/core"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// fuzzCache memoizes encodes across fuzz executions: the fuzzer
// quantizes the grid knobs (see below), so most mutated inputs hit a
// previously-encoded (regime, frames, Intra_Th, PLR) cell and the
// iteration budget goes into the comparison, not the encoder.
var (
	fuzzCacheOnce sync.Once
	fuzzCache     *bitcache.Store
)

func sharedFuzzCache(f *testing.F) *bitcache.Store {
	fuzzCacheOnce.Do(func() {
		var err error
		fuzzCache, err = bitcache.New(bitcache.Config{})
		if err != nil {
			f.Fatalf("bitcache: %v", err)
		}
	})
	return fuzzCache
}

// FuzzAnalyticVsMC cross-validates the closed-form engine against the
// Monte-Carlo simulate phase on fuzzer-chosen grid cells: random
// content regime, frame count, Intra_Th, encoder loss estimate and
// channel rate. The exactly-modelled counters (packets lost, lost
// frames, concealed MBs) must bracket the N-seed MC mean within five
// conservative standard errors; the bound uses the analytic variance
// ceiling (Var[Σ w_i B_i] ≤ w_max · min(E, W − E) for Bernoulli sums),
// never the sample variance, so it cannot be fooled by an unlucky
// draw. Divergent inputs become regression seeds in testdata/fuzz.
//
// The distortion proxies carry modelling bias by design (documented in
// analytic.Report), so here they are only gated by physical
// invariants: PSNR within (0, MaxPSNR], expected bad pixels within
// [0, pixels], both finite, and correctness MeanSigma within [0, 1].
// The tight proxy windows live in TestAnalyticAgreesWithMonteCarlo.
func FuzzAnalyticVsMC(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(6), uint8(2), uint8(2))
	f.Add(uint8(2), uint8(4), uint8(9), uint8(1), uint8(0))   // rate 0.2, th 0.9
	f.Add(uint8(3), uint8(0), uint8(0), uint8(0), uint8(1))   // loss-free, all-inter
	f.Add(uint8(4), uint8(20), uint8(10), uint8(3), uint8(2)) // rate 1, all-intra
	f.Add(uint8(0), uint8(10), uint8(5), uint8(2), uint8(0))  // rate 0.5 midpoint

	regimes := []synth.Regime{
		synth.RegimeAkiyo, synth.RegimeForeman, synth.RegimeGarden,
		synth.RegimeHall, synth.RegimeMobile,
	}

	f.Fuzz(func(t *testing.T, regimeB, rateB, thB, plrB, framesB uint8) {
		// Quantize every knob so the shared encode cache can do its job:
		// rates in 0.05 steps, thresholds in 0.1 steps, 2–4 frames.
		regime := regimes[int(regimeB)%len(regimes)]
		rate := float64(rateB%21) / 20
		th := float64(thB%11) / 10
		plr := float64(plrB%4) / 10
		frames := 2 + int(framesB%3)

		src := synth.Shared(regime)
		gridRows, gridCols := mbGrid(src)
		seq, err := Encode(sharedFuzzCache(f), EncodeSpec{
			Regime: regime, Frames: frames, QP: 8, SearchRange: 4,
			Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: plr}),
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		model, err := ExtractModel(seq, src, AnalyticSpec{})
		if err != nil {
			t.Fatalf("extract: %v", err)
		}
		an, err := AnalyzeModel(model, AnalyticSpec{LossRate: rate})
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}

		// Physical invariants of the analytic outputs.
		pixels := src.Frame(0).Width * src.Frame(0).Height
		if an.MeanSigma < 0 || an.MeanSigma > 1 || math.IsNaN(an.MeanSigma) {
			t.Fatalf("MeanSigma %v outside [0, 1]", an.MeanSigma)
		}
		for fi, db := range an.ExpPSNR.Values() {
			if !(db > 0 && db <= metrics.MaxPSNR) {
				t.Fatalf("frame %d: ExpPSNR %v outside (0, %v]", fi, db, metrics.MaxPSNR)
			}
		}
		for fi, bad := range an.ExpBadPixels.Values() {
			if !(bad >= 0 && bad <= float64(pixels)) {
				t.Fatalf("frame %d: ExpBadPixels %v outside [0, %d]", fi, bad, pixels)
			}
		}

		const seeds = 12
		var pktLost, lostFrames, concealed float64
		for seed := uint64(1); seed <= seeds; seed++ {
			ch, err := network.NewUniformLoss(rate, seed)
			if err != nil {
				t.Fatalf("channel: %v", err)
			}
			res, err := Simulate(seq, src, SimSpec{Name: "fuzz", Channel: ch})
			if err != nil {
				t.Fatalf("simulate seed %d: %v", seed, err)
			}
			pktLost += float64(res.PacketsLost)
			lostFrames += float64(res.LostFrames)
			concealed += float64(res.ConcealedMBs)
		}
		pktLost /= seeds
		lostFrames /= seeds
		concealed /= seeds

		// Conservative 5-standard-error gates from the variance ceilings:
		// packets and frames are plain Bernoulli sums (w_max = 1), each
		// concealed-MB packet weighs at most one GOB-row grid of MBs.
		gate := func(name string, analytic, mc, total, wMax float64) {
			varCeil := wMax * math.Min(analytic, total-analytic)
			tol := 5*math.Sqrt(varCeil/seeds) + 1.0
			if diff := math.Abs(analytic - mc); diff > tol {
				t.Errorf("%s: analytic %.3f vs MC mean %.3f over %d seeds exceeds tol %.3f",
					name, analytic, mc, seeds, tol)
			}
		}
		gate("packets lost", an.ExpPacketsLost, pktLost, float64(an.PacketsSent), 1)
		gate("lost frames", an.ExpLostFrames, lostFrames, float64(frames), 1)
		totalMBs := float64(frames * gridRows * gridCols)
		gate("concealed MBs", an.ExpConcealedMBs, concealed, totalMBs, float64(gridRows*gridCols))
	})
}
