package experiment

import (
	"math"
	"strings"
	"testing"

	"pbpair/internal/synth"
)

// TestFig5BatchSingleTrialMatchesFig5 pins the figure-level trial-0
// contract: Fig5Batch at trials=1 reproduces the scalar Fig5 rows
// exactly — same calibration, same encodes, and lane 0's channel is
// the Fig5 channel, so every reported number must be identical.
func TestFig5BatchSingleTrialMatchesFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig5 grid is slow; skipped in -short mode")
	}
	cfg := Fig5Config{Frames: 10, ProbeFrames: 8, SearchRange: 7, PLR: 0.15, Seed: 404}
	rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Fig5Batch(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(rows) {
		t.Fatalf("%d batch cells vs %d scalar rows", len(stats), len(rows))
	}
	for i, r := range rows {
		s := stats[i]
		if s.Sequence != r.Sequence || s.Scheme != r.Scheme {
			t.Fatalf("cell %d: %s/%s vs scalar %s/%s", i, s.Sequence, s.Scheme, r.Sequence, r.Scheme)
		}
		if s.PSNRMean != r.AvgPSNR {
			t.Errorf("%s/%s: PSNR %v vs scalar %v", s.Sequence, s.Scheme, s.PSNRMean, r.AvgPSNR)
		}
		if s.BadPixMean != float64(r.BadPixels) {
			t.Errorf("%s/%s: bad pixels %v vs scalar %d", s.Sequence, s.Scheme, s.BadPixMean, r.BadPixels)
		}
		if s.FileKBMean != r.FileKB || s.EnergyJMean != r.EnergyJ {
			t.Errorf("%s/%s: size/energy diverge from scalar", s.Sequence, s.Scheme)
		}
		if s.Seeds != 1 || s.PSNRCI95 != 0 || s.BadPixCI95 != 0 {
			t.Errorf("%s/%s: single-trial cell reports spread: %+v", s.Sequence, s.Scheme, s)
		}
	}
}

// TestSweepTrialsAxis pins the multi-trial sweep: the grid shape and
// loss-independent columns match the single-trial sweep exactly, the
// lossy points carry real confidence intervals, and the loss-free
// points have zero spread (every lane decodes the same clean stream).
func TestSweepTrialsAxis(t *testing.T) {
	base := SweepConfig{
		Frames: 6, SearchRange: 4, Regime: synth.RegimeForeman,
		IntraThs: []float64{0.4, 0.9}, PLRs: []float64{0, 0.2}, Seed: 5,
	}
	single, err := Sweep(base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Trials = 64
	got, err := Sweep(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(single) {
		t.Fatalf("%d multi-trial points vs %d single", len(got), len(single))
	}
	for i, p := range got {
		s := single[i]
		if p.IntraTh != s.IntraTh || p.PLR != s.PLR {
			t.Fatalf("point %d: grid order diverged", i)
		}
		if p.FileKB != s.FileKB || p.EnergyJ != s.EnergyJ || p.IntraMBsPerFrame != s.IntraMBsPerFrame {
			t.Errorf("point %d: loss-independent columns diverge from single-trial sweep", i)
		}
		if p.Trials != 64 {
			t.Errorf("point %d: trials %d", i, p.Trials)
		}
		if p.PLR == 0 {
			// Every lane decodes the same clean stream; the only play in
			// the mean and CI is the rounding of the 64-term summation.
			if p.PSNRCI95 > 1e-10 || math.Abs(p.AvgPSNR-s.AvgPSNR) > 1e-10 || p.BadPixels != s.BadPixels {
				t.Errorf("loss-free point %d: lanes diverged: %+v vs %+v", i, p, s)
			}
		} else if p.PSNRCI95 <= 0 {
			t.Errorf("lossy point %d: no PSNR confidence interval", i)
		}
	}

	// CSV schema regression: the legacy single-trial schema is
	// byte-stable, and the multi-trial schema appends exactly the
	// confidence columns.
	singleCSV := SweepCSV(single)
	if !strings.HasPrefix(singleCSV, "intra_th,plr,intra_mbs_per_frame,file_kb,energy_j,avg_psnr_db,bad_pixels\n") {
		t.Fatalf("single-trial CSV header changed:\n%s", singleCSV)
	}
	if n := strings.Count(strings.TrimSpace(strings.SplitN(singleCSV, "\n", 2)[0]), ","); n != 6 {
		t.Fatalf("single-trial CSV has %d commas in header, want 6", n)
	}
	multiCSV := SweepCSV(got)
	wantHeader := "intra_th,plr,intra_mbs_per_frame,file_kb,energy_j,avg_psnr_db,bad_pixels,psnr_ci95,bad_pixels_ci95,trials\n"
	if !strings.HasPrefix(multiCSV, wantHeader) {
		t.Fatalf("multi-trial CSV header:\n%s", multiCSV)
	}
	lines := strings.Split(strings.TrimSpace(multiCSV), "\n")
	if len(lines) != 1+len(got) {
		t.Fatalf("multi-trial CSV has %d lines, want %d", len(lines), 1+len(got))
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != 9 {
			t.Fatalf("multi-trial CSV row has %d commas, want 9: %s", n, line)
		}
	}
}
