package experiment

import (
	"math"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

func TestSimSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec SimSpec
		ok   bool
	}{
		{"zero value", SimSpec{}, true},
		{"populated", SimSpec{MTU: 512, FECGroup: 4, BadPixelThreshold: 10, DecoderWorkers: 2}, true},
		{"negative MTU", SimSpec{MTU: -1}, false},
		{"negative FEC group", SimSpec{FECGroup: -1}, false},
		{"negative bad-pixel threshold", SimSpec{BadPixelThreshold: -1}, false},
		{"negative decoder workers", SimSpec{DecoderWorkers: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestAnalyticSpecValidate(t *testing.T) {
	nan := math.NaN()
	ge := func(mut func(*network.GEConfig)) *network.GEConfig {
		cfg := network.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.4, LossGood: 0.01, LossBad: 0.8}
		if mut != nil {
			mut(&cfg)
		}
		return &cfg
	}
	cases := []struct {
		name string
		spec AnalyticSpec
		ok   bool
	}{
		{"zero value", AnalyticSpec{}, true},
		{"iid", AnalyticSpec{LossRate: 0.2, MTU: 512, BadPixelThreshold: 10, SimilarityScale: 16}, true},
		{"ge", AnalyticSpec{GE: ge(nil)}, true},
		{"negative rate", AnalyticSpec{LossRate: -0.1}, false},
		{"rate above one", AnalyticSpec{LossRate: 1.1}, false},
		{"NaN rate", AnalyticSpec{LossRate: nan}, false},
		{"ge bad transition", AnalyticSpec{GE: ge(func(c *network.GEConfig) { c.PGoodToBad = 1.5 })}, false},
		{"ge NaN loss", AnalyticSpec{GE: ge(func(c *network.GEConfig) { c.LossBad = nan })}, false},
		{"ge masks iid rate", AnalyticSpec{LossRate: 7, GE: ge(nil)}, true},
		{"negative MTU", AnalyticSpec{MTU: -1}, false},
		{"negative threshold", AnalyticSpec{BadPixelThreshold: -1}, false},
		{"negative scale", AnalyticSpec{SimilarityScale: -1}, false},
		{"NaN scale", AnalyticSpec{SimilarityScale: nan}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

// encodeForAnalytic encodes a short PBPAIR stream for the agreement
// tests (no cache: the sequences are small and the tests mutate
// nothing).
func encodeForAnalytic(t *testing.T, regime synth.Regime, frames int, th, plr float64) (*codec.EncodedSequence, synth.Source) {
	t.Helper()
	src := synth.Shared(regime)
	gridRows, gridCols := mbGrid(src)
	seq, err := Encode(nil, EncodeSpec{
		Regime: regime, Frames: frames, QP: 8, SearchRange: 7,
		Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: plr}),
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return seq, src
}

// mcStats accumulates per-seed Monte-Carlo outcomes of one metric.
type mcStats struct{ xs []float64 }

func (s *mcStats) add(x float64) { s.xs = append(s.xs, x) }

func (s *mcStats) mean() float64 {
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// stderr is the standard error of the mean (sample sd over √N).
func (s *mcStats) stderr() float64 {
	m := s.mean()
	ss := 0.0
	for _, x := range s.xs {
		ss += (x - m) * (x - m)
	}
	if len(s.xs) < 2 {
		return 0
	}
	return math.Sqrt(ss/float64(len(s.xs)-1)) / math.Sqrt(float64(len(s.xs)))
}

// TestAnalyticAgreesWithMonteCarlo cross-validates the closed-form
// engine against the Monte-Carlo simulate phase on a small seeded
// grid: one PBPAIR encode, three loss processes (two i.i.d. rates and
// one bursty Gilbert–Elliott chain), N seeded channel draws each.
//
// Confidence rationale for the gates. The exactly-modelled counters
// (packets lost, lost frames, concealed MBs) are compared against the
// MC sample mean, whose standard error is sd/√N; the gate allows five
// standard errors plus a one-count absolute floor (covers the noise of
// estimating sd itself and any zero-variance corner). Under a normal
// approximation — these are sums of hundreds of near-independent
// packet indicators, so the CLT applies — a correct analytic value
// fails with probability well under 1e-5 per metric, and since the
// seeds are fixed the test is fully deterministic: it either passes
// forever or flags a real regression.
//
// The distortion outputs are proxies, so their gates combine the same
// sampling term with a documented modelling slack. ExpPSNR is the PSNR
// of the expected SSE, so it is compared against the matching MC
// statistic — the per-seed mean frame SSE (recovered by inverting each
// seed's per-frame PSNR), averaged over seeds — in the linear SSE
// domain, where sample means are meaningful: the gate is five standard
// errors plus 35% of the MC mean (the documented model-bias budget for
// ignoring loss correlations and error cross terms). Against the plain
// MC mean-of-PSNR the analytic value is additionally required to sit
// below within 1.0 dB (Jensen: PSNR of the mean SSE lower-bounds the
// mean PSNR). The expected bad-pixel total gets the identical
// five-standard-errors + 35% gate. Measured slack on the pinned seeds
// is well inside all three; the windows are what EXPERIMENTS.md
// advertises.
func TestAnalyticAgreesWithMonteCarlo(t *testing.T) {
	const frames = 12
	const seeds = 32
	seq, src := encodeForAnalytic(t, synth.RegimeForeman, frames, 0.6, 0.1)
	model, err := ExtractModel(seq, src, AnalyticSpec{})
	if err != nil {
		t.Fatalf("extract: %v", err)
	}

	burst := network.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.45, LossGood: 0, LossBad: 1}
	points := []struct {
		name    string
		spec    AnalyticSpec
		channel func(seed uint64) (network.Channel, error)
	}{
		{"iid-0.05", AnalyticSpec{LossRate: 0.05}, func(seed uint64) (network.Channel, error) {
			return network.NewUniformLoss(0.05, seed)
		}},
		{"iid-0.20", AnalyticSpec{LossRate: 0.20}, func(seed uint64) (network.Channel, error) {
			return network.NewUniformLoss(0.20, seed)
		}},
		{"ge-burst", AnalyticSpec{GE: &burst}, func(seed uint64) (network.Channel, error) {
			return network.NewGilbertElliott(burst, seed)
		}},
	}

	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			an, err := AnalyzeModel(model, pt.spec)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}

			pixels := src.Frame(0).Width * src.Frame(0).Height
			var pktLost, lostFrames, concealed, psnr, badPix, meanSSE mcStats
			for seed := uint64(1); seed <= seeds; seed++ {
				ch, err := pt.channel(seed)
				if err != nil {
					t.Fatalf("channel: %v", err)
				}
				res, err := Simulate(seq, src, SimSpec{Name: pt.name, Channel: ch})
				if err != nil {
					t.Fatalf("simulate seed %d: %v", seed, err)
				}
				pktLost.add(float64(res.PacketsLost))
				lostFrames.add(float64(res.LostFrames))
				concealed.add(float64(res.ConcealedMBs))
				psnr.add(res.PSNR.Mean())
				badPix.add(float64(res.TotalBadPix))
				seedSSE := 0.0
				for _, db := range res.PSNR.Values() {
					seedSSE += sseFromPSNR(db, pixels)
				}
				meanSSE.add(seedSSE / float64(frames))
			}

			exact := []struct {
				name string
				an   float64
				mc   *mcStats
			}{
				{"packets lost", an.ExpPacketsLost, &pktLost},
				{"lost frames", an.ExpLostFrames, &lostFrames},
				{"concealed MBs", an.ExpConcealedMBs, &concealed},
			}
			for _, m := range exact {
				tol := 5*m.mc.stderr() + 1.0
				diff := math.Abs(m.an - m.mc.mean())
				t.Logf("%s: analytic %.3f, MC mean %.3f ± %.3f (diff %.3f, tol %.3f)",
					m.name, m.an, m.mc.mean(), m.mc.stderr(), diff, tol)
				if diff > tol {
					t.Errorf("%s: analytic %.3f vs MC mean %.3f exceeds 5σ gate %.3f",
						m.name, m.an, m.mc.mean(), tol)
				}
			}

			anPSNR := an.ExpPSNR.Mean()
			anSSE := 0.0
			for _, db := range an.ExpPSNR.Values() {
				anSSE += sseFromPSNR(db, pixels)
			}
			anSSE /= float64(frames)
			sseDiff := math.Abs(anSSE - meanSSE.mean())
			sseTol := 5*meanSSE.stderr() + 0.35*meanSSE.mean()
			t.Logf("mean frame SSE: analytic %.3e, MC %.3e ± %.2e (diff %.2e, tol %.2e); analytic PSNR %.2f dB, MC mean-of-PSNR %.2f dB",
				anSSE, meanSSE.mean(), meanSSE.stderr(), sseDiff, sseTol, anPSNR, psnr.mean())
			if sseDiff > sseTol {
				t.Errorf("expected-SSE proxy off by %.3e (analytic %.3e, MC %.3e), tol %.3e",
					sseDiff, anSSE, meanSSE.mean(), sseTol)
			}
			if anPSNR > psnr.mean()+1.0 {
				t.Errorf("analytic PSNR %.2f dB exceeds MC mean-of-PSNR %.2f dB beyond the 1.0 dB Jensen slack",
					anPSNR, psnr.mean())
			}

			badDiff := math.Abs(an.ExpBadPixTotal - badPix.mean())
			badTol := 5*badPix.stderr() + 0.35*badPix.mean()
			t.Logf("bad pixels: analytic %.0f, MC %.0f ± %.0f (diff %.0f, tol %.0f)",
				an.ExpBadPixTotal, badPix.mean(), badPix.stderr(), badDiff, badTol)
			if badDiff > badTol {
				t.Errorf("bad-pixel proxy off by %.0f (analytic %.0f, MC %.0f), tol %.0f",
					badDiff, an.ExpBadPixTotal, badPix.mean(), badTol)
			}
		})
	}
}

// sseFromPSNR inverts the metrics package's PSNR formula back to a
// luma SSE so seeds can be averaged in the linear domain.
func sseFromPSNR(db float64, pixels int) float64 {
	if db >= metrics.MaxPSNR {
		return 0
	}
	mse := 255 * 255 / math.Pow(10, db/10)
	return mse * float64(pixels)
}

// TestAnalyticSweepGrid exercises the four-axis sweep end to end on a
// tiny grid: deterministic ordering, CSV shape, and the free loss-rate
// axis (two loss points per encode without re-extraction).
func TestAnalyticSweepGrid(t *testing.T) {
	cfg := AnalyticSweepConfig{
		Frames:   6,
		IntraThs: []float64{0.2, 0.8},
		PLRs:     []float64{0.1},
		LossRates: []float64{
			0, 0.2,
		},
		Regimes: []synth.Regime{synth.RegimeAkiyo},
	}
	points, err := AnalyticSweep(cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// Order: (regime, plr, th, loss) nested loops.
	want := []struct{ th, loss float64 }{{0.2, 0}, {0.2, 0.2}, {0.8, 0}, {0.8, 0.2}}
	for i, w := range want {
		if points[i].IntraTh != w.th || points[i].LossRate != w.loss {
			t.Errorf("point %d: th=%v loss=%v, want th=%v loss=%v",
				i, points[i].IntraTh, points[i].LossRate, w.th, w.loss)
		}
	}
	for _, p := range points {
		if p.LossRate == 0 && (p.ExpLostFrames != 0 || p.ExpConcealedMBs != 0) {
			t.Errorf("loss-free point has ExpLostFrames=%v ExpConcealedMBs=%v", p.ExpLostFrames, p.ExpConcealedMBs)
		}
		if p.LossRate > 0 && p.ExpConcealedMBs <= 0 {
			t.Errorf("lossy point has ExpConcealedMBs=%v", p.ExpConcealedMBs)
		}
	}
	csv := AnalyticSweepCSV(points)
	if lines := len(splitLines(csv)); lines != 5 {
		t.Errorf("CSV has %d lines, want 5 (header + 4 points):\n%s", lines, csv)
	}

	if _, err := AnalyticSweep(AnalyticSweepConfig{LossRates: []float64{1.5}}); err == nil {
		t.Error("sweep accepted loss rate 1.5")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
