package experiment

import (
	"testing"
	"time"

	"pbpair/internal/analytic"
	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// BenchmarkAnalyticGrid measures the analytic engine's marginal
// grid-point cost: with the per-(regime, α, Intra_Th) extraction paid
// once up front — exactly how AnalyticSweep amortises it — each
// additional loss-rate cell is one closed-form evaluation. Reported
// custom metrics (required by the bench-json gate):
//
//   - points/s: analytic grid cells evaluated per second
//   - mc_speedup_x: how many times faster one analytic cell is than
//     the equivalent Monte-Carlo cell (5-seed Simulate mean, the
//     EXPERIMENTS.md convention), measured in the same process
//
// The acceptance bar from the issue is mc_speedup_x >= 100; measured
// values land around four orders of magnitude.
func BenchmarkAnalyticGrid(b *testing.B) {
	const frames = 60
	regime := synth.RegimeForeman
	src := synth.Shared(regime)
	gridRows, gridCols := mbGrid(src)
	ths := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1}
	lossRates := []float64{0, 0.05, 0.1, 0.2, 0.3}

	type prepared struct {
		seq   *codec.EncodedSequence
		model *analytic.Model
	}
	var seqs []prepared
	for _, th := range ths {
		seq, err := Encode(nil, EncodeSpec{
			Regime: regime, Frames: frames, QP: 8, SearchRange: 7,
			Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: 0.1}),
		})
		if err != nil {
			b.Fatalf("encode: %v", err)
		}
		model, err := ExtractModel(seq, src, AnalyticSpec{})
		if err != nil {
			b.Fatalf("extract: %v", err)
		}
		seqs = append(seqs, prepared{seq: seq, model: model})
	}

	cells := len(seqs) * len(lossRates)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sm := range seqs {
			for _, rate := range lossRates {
				res, err := AnalyzeModel(sm.model, AnalyticSpec{LossRate: rate})
				if err != nil {
					b.Fatalf("analyze: %v", err)
				}
				if res.ExpPSNR.Len() != frames {
					b.Fatalf("short report: %d frames", res.ExpPSNR.Len())
				}
			}
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	b.ReportMetric(float64(b.N*cells)/elapsed.Seconds(), "points/s")

	// Equivalent Monte-Carlo cell: a 5-seed Simulate of the same
	// sequence at the middle loss rate, timed once outside the
	// benchmark loop (it is far too slow to run b.N times).
	const mcSeeds = 5
	start := time.Now()
	for seed := uint64(1); seed <= mcSeeds; seed++ {
		ch, err := network.NewUniformLoss(0.1, seed)
		if err != nil {
			b.Fatalf("channel: %v", err)
		}
		if _, err := Simulate(seqs[0].seq, src, SimSpec{Name: "bench-mc", Channel: ch}); err != nil {
			b.Fatalf("simulate: %v", err)
		}
	}
	mcPerCell := time.Since(start)
	anPerCell := elapsed / time.Duration(b.N*cells)
	if anPerCell <= 0 {
		anPerCell = time.Nanosecond
	}
	b.ReportMetric(float64(mcPerCell)/float64(anPerCell), "mc_speedup_x")
}
