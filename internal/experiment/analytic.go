package experiment

import (
	"fmt"
	"math"
	"strings"

	"pbpair/internal/analytic"
	"pbpair/internal/bitcache"
	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/parallel"
	"pbpair/internal/synth"
)

// AnalyticSpec describes the closed-form counterpart of a SimSpec: the
// loss process to integrate over and the measurement knobs, with no
// channel instance and no seed — the analytic engine has nothing to
// sample. The zero value evaluates loss-free transmission with default
// MTU, device profile and thresholds.
type AnalyticSpec struct {
	Name string
	// LossRate is the i.i.d. packet-loss probability, the analytic twin
	// of a network.UniformLoss channel. Ignored when GE is set.
	LossRate float64
	// GE, when non-nil, integrates over a Gilbert–Elliott chain with
	// these parameters instead (the twin of network.GilbertElliott).
	GE *network.GEConfig
	// MTU for packetisation (default network.DefaultMTU); must match
	// the simulate phase it is compared against.
	MTU int
	// Profile is the energy model device (default energy.IPAQ).
	Profile energy.Profile
	// BadPixelThreshold for the expected bad-pixel metric (default
	// metrics.DefaultBadPixelThreshold).
	BadPixelThreshold int
	// SimilarityScale for the recurrence's concealment-similarity term
	// (default core.DefaultSimilarityScale).
	SimilarityScale float64
}

// Validate rejects specs whose probabilities or measurement knobs are
// out of range (NaN included). The zero value is valid.
func (s AnalyticSpec) Validate() error {
	if s.GE == nil {
		if !(s.LossRate >= 0 && s.LossRate <= 1) {
			return fmt.Errorf("experiment: analytic spec %q: loss rate %v outside [0, 1]", s.Name, s.LossRate)
		}
	} else {
		for _, p := range []float64{s.GE.PGoodToBad, s.GE.PBadToGood, s.GE.LossGood, s.GE.LossBad} {
			if !(p >= 0 && p <= 1) {
				return fmt.Errorf("experiment: analytic spec %q: Gilbert–Elliott probability %v outside [0, 1]", s.Name, p)
			}
		}
	}
	if s.MTU < 0 {
		return fmt.Errorf("experiment: analytic spec %q: MTU %d negative", s.Name, s.MTU)
	}
	if s.BadPixelThreshold < 0 {
		return fmt.Errorf("experiment: analytic spec %q: bad-pixel threshold %d negative", s.Name, s.BadPixelThreshold)
	}
	if math.IsNaN(s.SimilarityScale) || s.SimilarityScale < 0 {
		return fmt.Errorf("experiment: analytic spec %q: similarity scale %v invalid", s.Name, s.SimilarityScale)
	}
	return nil
}

// loss builds the analytic loss process the spec describes.
func (s AnalyticSpec) loss() (analytic.Loss, error) {
	if s.GE != nil {
		return analytic.NewGE(*s.GE)
	}
	return analytic.NewIID(s.LossRate)
}

// modelConfig maps the spec's measurement knobs onto the extraction
// config.
func (s AnalyticSpec) modelConfig() analytic.Config {
	return analytic.Config{
		MTU:               s.MTU,
		SimilarityScale:   s.SimilarityScale,
		BadPixelThreshold: s.BadPixelThreshold,
	}
}

// AnalyticResult mirrors Result for the analytic backend: expectations
// in place of sampled outcomes, plus the same energy pricing (the
// encode-phase tally is loss-independent, so Joules is exact, not an
// expectation).
type AnalyticResult struct {
	Name   string
	Scheme string
	Frames int

	ExpPSNR      metrics.Series // per-frame PSNR of the expected SSE
	ExpBadPixels metrics.Series // per-frame expected bad pixels

	ExpBadPixTotal  float64
	ExpConcealedMBs float64
	ExpPacketsLost  float64
	ExpLostFrames   float64

	PacketsSent      int
	TotalBytes       int
	IntraMBsPerFrame float64
	MeanSigma        float64

	Counters  energy.Counters
	Breakdown energy.Breakdown
	Joules    float64
}

// ExtractModel builds the analytic model of an encoded sequence with
// the spec's measurement knobs. Extract once, then AnalyzeModel per
// loss point — the split the sweep drivers use to amortise the decode.
func ExtractModel(seq *codec.EncodedSequence, src synth.Source, spec AnalyticSpec) (*analytic.Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return analytic.Extract(seq, src, spec.modelConfig())
}

// AnalyzeModel evaluates an extracted model under the spec's loss
// process and prices it under the spec's device profile.
func AnalyzeModel(m *analytic.Model, spec AnalyticSpec) (*AnalyticResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	loss, err := spec.loss()
	if err != nil {
		return nil, err
	}
	rep, err := m.Evaluate(loss)
	if err != nil {
		return nil, err
	}
	profile := spec.Profile
	if profile.Name == "" {
		profile = energy.IPAQ
	}
	res := &AnalyticResult{
		Name:             spec.Name,
		Scheme:           rep.Scheme,
		Frames:           rep.Frames,
		ExpPSNR:          rep.ExpPSNR,
		ExpBadPixels:     rep.ExpBadPixels,
		ExpBadPixTotal:   rep.ExpBadPixTotal,
		ExpConcealedMBs:  rep.ExpConcealedMBs,
		ExpPacketsLost:   rep.ExpPacketsLost,
		ExpLostFrames:    rep.ExpLostFrames,
		PacketsSent:      rep.PacketsSent,
		TotalBytes:       rep.TotalBytes,
		IntraMBsPerFrame: m.IntraMBsPerFrame(),
		MeanSigma:        rep.MeanSigma,
		Counters:         rep.Counters,
	}
	res.Breakdown = profile.Decompose(rep.Counters)
	res.Joules = res.Breakdown.Total()
	return res, nil
}

// Analyze is the analytic backend's Simulate: one extraction plus one
// evaluation. For grids over many loss points of one encode, use
// ExtractModel + AnalyzeModel to pay the extraction once.
func Analyze(seq *codec.EncodedSequence, src synth.Source, spec AnalyticSpec) (*AnalyticResult, error) {
	m, err := ExtractModel(seq, src, spec)
	if err != nil {
		return nil, err
	}
	return AnalyzeModel(m, spec)
}

// AnalyticSweepConfig parameterises the closed-form operating-point
// grid: the full Intra_Th × α (encoder loss estimate) × loss-rate ×
// content cross product. One encode+extraction is paid per
// (regime, α, Intra_Th); every loss rate then costs microseconds,
// which is what makes the four-axis grid tractable where the
// Monte-Carlo sweep stops at two axes.
type AnalyticSweepConfig struct {
	Frames      int
	QP          int
	SearchRange int
	IntraThs    []float64
	// PLRs are the encoder-side loss estimates (the recurrence's α at
	// encode time) — a PBPAIR planner input, hence an encode axis.
	PLRs []float64
	// LossRates are the channel-side i.i.d. loss rates the models are
	// evaluated under — a free axis (default: the PLRs list), so the
	// grid exposes mismatch between the encoder's estimate and the
	// channel's truth.
	LossRates []float64
	// Regimes lists the content axis (default: foreman).
	Regimes []synth.Regime
	Profile energy.Profile
	MTU     int
	// Workers bounds the encode+extraction fan-out. <= 0 selects
	// parallel.DefaultWorkers; results are identical for every value.
	Workers int
	// Cache, when non-nil, memoizes encodes by content fingerprint.
	Cache *bitcache.Store
}

// WithDefaults fills zero fields with their documented defaults.
func (c AnalyticSweepConfig) WithDefaults() AnalyticSweepConfig {
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.QP == 0 {
		c.QP = 8
	}
	if len(c.IntraThs) == 0 {
		c.IntraThs = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1}
	}
	if len(c.PLRs) == 0 {
		c.PLRs = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if len(c.LossRates) == 0 {
		c.LossRates = c.PLRs
	}
	if len(c.Regimes) == 0 {
		c.Regimes = []synth.Regime{synth.RegimeForeman}
	}
	if c.Profile.Name == "" {
		c.Profile = energy.IPAQ
	}
	return c
}

// AnalyticPoint is one cell of the four-axis analytic grid.
type AnalyticPoint struct {
	Regime           string
	IntraTh          float64
	PLR              float64 // encoder's loss estimate α
	LossRate         float64 // channel's i.i.d. loss rate
	IntraMBsPerFrame float64
	FileKB           float64
	EnergyJ          float64
	ExpPSNR          float64 // mean over frames
	ExpBadPixels     float64 // total over frames
	ExpConcealedMBs  float64
	ExpLostFrames    float64
}

// AnalyticSweep runs the full four-axis grid. Encodes (and their
// extractions) fan out in parallel, deduplicated by (regime, α,
// Intra_Th); evaluations run serially — they are three orders of
// magnitude cheaper than either phase. The returned order matches the
// serial nested loops (regime, α, Intra_Th, loss rate), identical for
// every worker count.
func AnalyticSweep(cfg AnalyticSweepConfig) ([]AnalyticPoint, error) {
	cfg = cfg.WithDefaults()
	for _, rate := range cfg.LossRates {
		if !(rate >= 0 && rate <= 1) {
			return nil, fmt.Errorf("experiment: analytic sweep loss rate %v outside [0, 1]", rate)
		}
	}

	// One encode+extraction per (regime, α, Intra_Th).
	type encodeJob struct {
		regime synth.Regime
		plr    float64
		th     float64
	}
	var jobs []encodeJob
	for _, regime := range cfg.Regimes {
		for _, plr := range cfg.PLRs {
			for _, th := range cfg.IntraThs {
				jobs = append(jobs, encodeJob{regime: regime, plr: plr, th: th})
			}
		}
	}
	baseSpec := AnalyticSpec{MTU: cfg.MTU, Profile: cfg.Profile}
	models, err := parallel.Map(cfg.Workers, len(jobs), func(i int) (*analytic.Model, error) {
		job := jobs[i]
		src := synth.Shared(job.regime)
		gridRows, gridCols := mbGrid(src)
		seq, err := Encode(cfg.Cache, EncodeSpec{
			Regime: job.regime, Frames: cfg.Frames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: job.th, PLR: job.plr}),
		})
		if err != nil {
			return nil, err
		}
		return ExtractModel(seq, src, baseSpec)
	})
	if err != nil {
		return nil, err
	}

	out := make([]AnalyticPoint, 0, len(jobs)*len(cfg.LossRates))
	for i, job := range jobs {
		src := synth.Shared(job.regime)
		for _, rate := range cfg.LossRates {
			spec := baseSpec
			spec.Name = fmt.Sprintf("analytic/%s/th%.2f/plr%.2f/loss%.2f", src.Name(), job.th, job.plr, rate)
			spec.LossRate = rate
			res, err := AnalyzeModel(models[i], spec)
			if err != nil {
				return nil, err
			}
			out = append(out, AnalyticPoint{
				Regime:           src.Name(),
				IntraTh:          job.th,
				PLR:              job.plr,
				LossRate:         rate,
				IntraMBsPerFrame: res.IntraMBsPerFrame,
				FileKB:           float64(res.TotalBytes) / 1024,
				EnergyJ:          res.Joules,
				ExpPSNR:          res.ExpPSNR.Mean(),
				ExpBadPixels:     res.ExpBadPixTotal,
				ExpConcealedMBs:  res.ExpConcealedMBs,
				ExpLostFrames:    res.ExpLostFrames,
			})
		}
	}
	return out, nil
}

// AnalyticSweepCSV renders analytic grid points in the CSV layout of
// cmd/pbpair-sweep's -analytic mode.
func AnalyticSweepCSV(points []AnalyticPoint) string {
	var b strings.Builder
	b.WriteString("regime,intra_th,plr,loss_rate,intra_mbs_per_frame,file_kb,energy_j,exp_psnr_db,exp_bad_pixels,exp_concealed_mbs,exp_lost_frames\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f,%.2f,%.1f,%.4f,%.2f,%.1f,%.1f,%.3f\n",
			p.Regime, p.IntraTh, p.PLR, p.LossRate, p.IntraMBsPerFrame,
			p.FileKB, p.EnergyJ, p.ExpPSNR, p.ExpBadPixels, p.ExpConcealedMBs, p.ExpLostFrames)
	}
	return b.String()
}

// AnalyticBankConfig parameterises BuildAnalyticBank: one candidate
// encode per Intra_Th, all sharing the content, frame budget and codec
// knobs, priced under one device profile.
type AnalyticBankConfig struct {
	Regime      synth.Regime
	Frames      int
	QP          int
	SearchRange int
	// IntraThs lists the candidate thresholds (default: the analytic
	// sweep's threshold axis).
	IntraThs []float64
	// PLR is the encoder-side loss estimate the candidates are encoded
	// with. The bank re-evaluates every candidate at each queried
	// channel rate, so this only shapes the refresh pattern baked into
	// the bitstreams (default 0.1, the paper's midpoint).
	PLR float64
	// MarginDB is the bank's quality margin (<= 0 selects
	// analytic.DefaultQualityMarginDB).
	MarginDB float64
	Profile  energy.Profile
	MTU      int
	// Workers bounds the encode+extraction fan-out (<= 0 selects
	// parallel.DefaultWorkers).
	Workers int
	// Cache, when non-nil, memoizes the candidate encodes.
	Cache *bitcache.Store
}

// BuildAnalyticBank encodes one PBPAIR candidate per threshold,
// extracts its analytic model and prices its encode energy, returning
// the bank that serves adapt.PredictiveQuality as the model-driven
// inner loop: Bank.BestIntraTh evaluates every candidate's expected
// distortion at the queried loss rate in closed form — microseconds
// per retune, no channel simulation.
func BuildAnalyticBank(cfg AnalyticBankConfig) (*analytic.Bank, error) {
	if cfg.Regime == 0 {
		cfg.Regime = synth.RegimeForeman
	}
	if cfg.Frames == 0 {
		cfg.Frames = 30
	}
	if cfg.QP == 0 {
		cfg.QP = 8
	}
	if len(cfg.IntraThs) == 0 {
		cfg.IntraThs = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1}
	}
	profile := cfg.Profile
	if profile.Name == "" {
		profile = energy.IPAQ
	}
	if !(cfg.PLR >= 0 && cfg.PLR <= 1) {
		return nil, fmt.Errorf("experiment: analytic bank PLR %v outside [0, 1]", cfg.PLR)
	}

	src := synth.Shared(cfg.Regime)
	gridRows, gridCols := mbGrid(src)
	spec := AnalyticSpec{MTU: cfg.MTU, Profile: profile}
	cands, err := parallel.Map(cfg.Workers, len(cfg.IntraThs), func(i int) (analytic.Candidate, error) {
		th := cfg.IntraThs[i]
		seq, err := Encode(cfg.Cache, EncodeSpec{
			Regime: cfg.Regime, Frames: cfg.Frames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: cfg.PLR}),
		})
		if err != nil {
			return analytic.Candidate{}, err
		}
		model, err := ExtractModel(seq, src, spec)
		if err != nil {
			return analytic.Candidate{}, err
		}
		return analytic.Candidate{
			IntraTh: th,
			EnergyJ: profile.Decompose(model.Counters()).Total(),
			Model:   model,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return analytic.NewBank(cands, cfg.MarginDB)
}

// Fig5Analytic reproduces Figure 5's four panels from the analytic
// engine: same calibration, same encodes, but expected metrics under
// i.i.d. loss at cfg.PLR instead of one seeded channel draw. Rows come
// back in the same order as Fig5, so the two tables diff cell by cell
// (the agreement tests bound how far any cell may drift).
func Fig5Analytic(cfg Fig5Config) ([]Fig5Row, error) {
	cfg = cfg.WithDefaults()
	regimes := []synth.Regime{synth.RegimeForeman, synth.RegimeAkiyo, synth.RegimeGarden}
	ths, err := fig5Thresholds(cfg, regimes)
	if err != nil {
		return nil, err
	}

	type cell struct {
		regime synth.Regime
		scheme SchemeSpec
		th     float64
	}
	var cells []cell
	for si, regime := range regimes {
		src := synth.Shared(regime)
		gridRows, gridCols := mbGrid(src)
		th := ths[si]
		schemes := fig5Schemes(gridRows, gridCols, th, cfg.PLR)
		for _, sc := range schemes {
			c := cell{regime: regime, scheme: sc.spec}
			if sc.intraTh {
				c.th = th
			}
			cells = append(cells, c)
		}
	}

	rows, err := parallel.Map(cfg.Workers, len(cells), func(i int) (Fig5Row, error) {
		c := cells[i]
		src := synth.Shared(c.regime)
		seq, err := Encode(cfg.Cache, EncodeSpec{
			Regime: c.regime, Frames: cfg.Frames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: c.scheme,
		})
		if err != nil {
			return Fig5Row{}, err
		}
		res, err := Analyze(seq, src, AnalyticSpec{
			Name:     fmt.Sprintf("fig5a/%s/%s", src.Name(), c.scheme.Key()),
			LossRate: cfg.PLR,
			Profile:  cfg.Profile,
		})
		if err != nil {
			return Fig5Row{}, err
		}
		return Fig5Row{
			Sequence:  src.Name(),
			Scheme:    res.Scheme,
			AvgPSNR:   res.ExpPSNR.Mean(),
			BadPixels: int(res.ExpBadPixTotal + 0.5),
			FileKB:    float64(res.TotalBytes) / 1024,
			EnergyJ:   res.Joules,
			IntraTh:   c.th,
			Counters:  res.Counters,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
