package experiment

import (
	"math"
	"testing"

	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// FuzzBatchVsScalar is the differential fuzzer behind the batch
// engine's exactness contract: for fuzzer-chosen content, framing and
// channel parameters, EVERY lane of a SimBatch run must equal — not
// approximate — the scalar Simulate run seeded with the lane's
// network.LaneSeed. The knobs are quantized so the shared encode
// cache absorbs the encoder cost and the iteration budget goes into
// batch-vs-scalar comparisons; trial counts straddle the 64-lane word
// boundary so multi-word masks and tail-lane handling stay covered.
func FuzzBatchVsScalar(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint8(1), uint8(0), uint8(7))   // 5 lanes, iid 5%
	f.Add(uint8(0), uint8(63), uint8(4), uint8(1), uint8(2), uint8(1), uint8(1))  // 65 lanes: word boundary, GE
	f.Add(uint8(2), uint8(0), uint8(8), uint8(0), uint8(0), uint8(2), uint8(9))   // 2 lanes, iid 40%, tiny MTU
	f.Add(uint8(4), uint8(10), uint8(20), uint8(0), uint8(3), uint8(0), uint8(3)) // rate 1: every frame lost
	f.Add(uint8(3), uint8(7), uint8(0), uint8(1), uint8(1), uint8(3), uint8(0))   // loss-free GE good state

	regimes := []synth.Regime{
		synth.RegimeAkiyo, synth.RegimeForeman, synth.RegimeGarden,
		synth.RegimeHall, synth.RegimeMobile,
	}
	mtus := []int{0, 300, 512, 1500}

	f.Fuzz(func(t *testing.T, regimeB, trialsB, rateB, geB, framesB, mtuB, seedB uint8) {
		regime := regimes[int(regimeB)%len(regimes)]
		trials := 2 + int(trialsB%66) // 2..67: crosses the 64-lane word boundary
		rate := float64(rateB%21) / 20
		frames := 3 + int(framesB%4)
		mtu := mtus[int(mtuB)%len(mtus)]
		seed := 1 + uint64(seedB)

		batch := BatchSpec{Trials: trials, Seed: seed, LossRate: rate}
		if geB%2 == 1 {
			batch.LossRate = 0
			batch.GE = &network.GEConfig{
				PGoodToBad: 0.05 + float64(geB%8)*0.1,
				PBadToGood: 0.3,
				LossGood:   rate / 4,
				LossBad:    math.Min(1, rate*2+0.1),
			}
		}

		src := synth.Shared(regime)
		seq, err := Encode(sharedFuzzCache(f), EncodeSpec{
			Regime: regime, Frames: frames, QP: 8, SearchRange: 4,
			Scheme: SchemeGOP(3),
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}

		sim := SimSpec{Name: "fuzz-batch", MTU: mtu}
		mtr, err := SimBatch(seq, src, sim, batch)
		if err != nil {
			t.Fatalf("simbatch: %v", err)
		}
		for lane := 0; lane < trials; lane++ {
			want := scalarTrial(t, seq, src, sim, batch, lane)
			compareScalar(t, "fuzz", mtr, lane, want)
			if t.Failed() {
				t.Fatalf("lane %d diverges from scalar Simulate (trials=%d rate=%v ge=%v frames=%d mtu=%d seed=%d)",
					lane, trials, rate, batch.GE, frames, mtu, seed)
			}
		}
	})
}
