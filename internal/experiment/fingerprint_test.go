package experiment

import (
	"testing"

	"pbpair/internal/core"
	"pbpair/internal/motion"
	"pbpair/internal/synth"
)

// fuzzSpec builds a valid EncodeSpec from raw fuzz bytes, clamping
// every field into its legal range so the properties below hold for
// the whole input space.
func fuzzSpec(regime, frames, qp, sr, kind, n uint8, search bool, sadth int32, halfpel, deblock bool, th, plr float64) EncodeSpec {
	spec := EncodeSpec{
		Regime:       synth.Regime(int(regime)%5 + 1), // RegimeAkiyo..RegimeMobile
		Frames:       int(frames)%64 + 1,
		QP:           int(qp) % 32,  // 0 exercises the default
		SearchRange:  int(sr) % 32,  // 0 exercises the default
		SADThreshold: sadth % 10000, // 0 exercises the default
		HalfPel:      halfpel,
		Deblock:      deblock,
	}
	if search {
		spec.Search = motion.ThreeStep
	}
	if spec.SADThreshold < 0 {
		spec.SADThreshold = -spec.SADThreshold
	}
	switch int(kind) % 5 {
	case 0:
		spec.Scheme = SchemeNO()
	case 1:
		spec.Scheme = SchemeGOP(int(n)%30 + 1)
	case 2:
		spec.Scheme = SchemeAIR(int(n)%99 + 1)
	case 3:
		spec.Scheme = SchemePGOP(int(n)%11+1, 11)
	case 4:
		th, plr = clamp01(th), clamp01(plr)
		spec.Scheme = SchemePBPAIR(core.Config{Rows: 9, Cols: 11, IntraTh: th, PLR: plr})
	}
	return spec
}

func clamp01(v float64) float64 {
	if !(v >= 0) { // NaN and negatives
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// FuzzEncodeSpecFingerprint pins the canonicalizer's two contracts:
// specs that encode identical bitstreams hash equal (defaults and
// normalization are applied before hashing; Workers never
// participates), and flipping any bitstream-affecting field changes
// the hash.
func FuzzEncodeSpecFingerprint(f *testing.F) {
	f.Add(uint8(2), uint8(8), uint8(8), uint8(15), uint8(0), uint8(3), false, int32(500), false, false, 0.85, 0.1)
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(4), uint8(0), true, int32(0), true, true, 0.0, 0.0)
	f.Add(uint8(4), uint8(49), uint8(31), uint8(7), uint8(2), uint8(24), false, int32(-77), true, false, 1.5, -0.2)
	f.Fuzz(func(t *testing.T, regime, frames, qp, sr, kind, n uint8, search bool, sadth int32, halfpel, deblock bool, th, plr float64) {
		spec := fuzzSpec(regime, frames, qp, sr, kind, n, search, sadth, halfpel, deblock, th, plr)
		fp := spec.Fingerprint()

		// Equal after normalization: applying the documented defaults
		// by hand must not change the hash.
		norm := spec
		if norm.QP == 0 {
			norm.QP = 8
		}
		if norm.SearchRange == 0 {
			norm.SearchRange = 15
		}
		if norm.SADThreshold == 0 {
			norm.SADThreshold = 500
		}
		if norm.Search == 0 {
			norm.Search = motion.FullSearch
		}
		if norm.Scheme.Kind == SchemeKindPBPAIR {
			norm.Scheme.PBPAIR = norm.Scheme.PBPAIR.Normalized()
		}
		if norm.Fingerprint() != fp {
			t.Fatalf("normalization changed the hash:\n  raw  %s\n  norm %s", spec.Canonical(), norm.Canonical())
		}

		// Workers is not bitstream-affecting (sharding is bit-exact).
		w := spec
		w.Workers = spec.Workers + 3
		if w.Fingerprint() != fp {
			t.Fatal("Workers changed the hash")
		}

		// Every bitstream-affecting flip must change the hash.
		flips := map[string]EncodeSpec{}
		flip := func(name string, mut func(*EncodeSpec)) {
			s := spec
			mut(&s)
			flips[name] = s
		}
		flip("Regime", func(s *EncodeSpec) {
			if s.Regime == synth.RegimeAkiyo {
				s.Regime = synth.RegimeForeman
			} else {
				s.Regime = synth.RegimeAkiyo
			}
		})
		flip("Frames", func(s *EncodeSpec) { s.Frames++ })
		flip("QP", func(s *EncodeSpec) { s.QP = alt(s.QP, 8, 9, 0) })
		flip("SearchRange", func(s *EncodeSpec) { s.SearchRange = alt(s.SearchRange, 15, 14, 0) })
		flip("Search", func(s *EncodeSpec) {
			if s.Search == motion.ThreeStep {
				s.Search = motion.FullSearch
			} else {
				s.Search = motion.ThreeStep
			}
		})
		flip("SADThreshold", func(s *EncodeSpec) { s.SADThreshold = int32(alt(int(s.SADThreshold), 500, 501, 0)) })
		flip("HalfPel", func(s *EncodeSpec) { s.HalfPel = !s.HalfPel })
		flip("Deblock", func(s *EncodeSpec) { s.Deblock = !s.Deblock })
		flip("Scheme", func(s *EncodeSpec) {
			if s.Scheme.Kind == SchemeKindGOP {
				s.Scheme = SchemeGOP(s.Scheme.N + 1)
			} else {
				s.Scheme = SchemeGOP(3)
			}
		})
		if spec.Scheme.Kind == SchemeKindPBPAIR {
			flip("PBPAIR.IntraTh", func(s *EncodeSpec) {
				s.Scheme.PBPAIR.IntraTh = alt01(s.Scheme.PBPAIR.IntraTh)
			})
			flip("PBPAIR.PLR", func(s *EncodeSpec) {
				s.Scheme.PBPAIR.PLR = alt01(s.Scheme.PBPAIR.PLR)
			})
			flip("PBPAIR.Lambda", func(s *EncodeSpec) {
				// 0 normalizes to DefaultLambda, so flip to a distinct
				// non-default value.
				s.Scheme.PBPAIR.Lambda = s.Scheme.PBPAIR.Normalized().Lambda + 1
			})
		}
		for name, mutated := range flips {
			if mutated.Fingerprint() == fp {
				t.Fatalf("flipping %s did not change the hash: %s", name, spec.Canonical())
			}
		}

		// And the canonical string itself must be deterministic.
		if spec.Canonical() != spec.Canonical() {
			t.Fatal("Canonical is nondeterministic")
		}
	})
}

// alt returns a value different from v after normalization: v
// normalizing to def flips to other; anything else flips to def.
// zero must normalize to def for the caller's field.
func alt(v, def, other, zero int) int {
	if v == zero || v == def {
		return other
	}
	return def
}

// alt01 returns a [0,1] value distinct from v.
func alt01(v float64) float64 {
	if v == 0.5 {
		return 0.25
	}
	return 0.5
}
