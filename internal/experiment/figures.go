package experiment

import (
	"fmt"
	"math"
	"strings"

	"pbpair/internal/bitcache"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/network"
	"pbpair/internal/parallel"
	"pbpair/internal/synth"
)

// The experiments below regenerate the paper's evaluation (Section 4).
// Frame counts are parameters: the paper uses 300 frames (Figure 5)
// and 50 frames (Figure 6); benchmarks shrink them to keep runtimes
// sane while preserving every qualitative relationship.
//
// Each experiment is phrased as a Plan — encode jobs deduplicated by
// content, then the simulation grid against the shared bitstreams —
// so loss-independent axes never re-encode (see pipeline.go).

// Fig5Config parameterises the Figure 5 reproduction.
type Fig5Config struct {
	Frames      int     // paper: 300
	ProbeFrames int     // calibration probe length (default: Frames/5, min 10)
	PLR         float64 // paper: 0.10
	QP          int     // default 8
	SearchRange int     // motion search range (default 15; benches shrink it)
	Seed        uint64  // loss-pattern seed
	Profile     energy.Profile
	// Workers bounds the experiment fan-out: the three per-sequence
	// calibrations run concurrently, then all distinct encodes, then
	// all (sequence, scheme) cells. <= 0 selects
	// parallel.DefaultWorkers, 1 runs serially; the result is identical
	// for every value.
	Workers int
	// DecoderWorkers sets the per-frame GOB-row reconstruction
	// goroutines of every simulation's decoder (<= 1 decodes
	// serially). Output is bit-identical for every value.
	DecoderWorkers int
	// Cache, when non-nil, memoizes encodes (calibration probes
	// included) by content fingerprint, sharing them across seeds and
	// repeated calls. Results are identical with or without it.
	Cache *bitcache.Store
}

// WithDefaults fills zero fields with their documented defaults.
func (c Fig5Config) WithDefaults() Fig5Config {
	if c.Frames == 0 {
		c.Frames = 300
	}
	if c.ProbeFrames == 0 {
		c.ProbeFrames = c.Frames / 5
		if c.ProbeFrames < 10 {
			c.ProbeFrames = 10
		}
	}
	if c.PLR == 0 {
		c.PLR = 0.10
	}
	if c.QP == 0 {
		c.QP = 8
	}
	if c.Seed == 0 {
		c.Seed = 2005
	}
	if c.Profile.Name == "" {
		c.Profile = energy.IPAQ
	}
	return c
}

// Fig5Row is one (sequence, scheme) cell of Figure 5's four panels.
type Fig5Row struct {
	Sequence  string
	Scheme    string
	AvgPSNR   float64 // panel (a)
	BadPixels int     // panel (b)
	FileKB    float64 // panel (c)
	EnergyJ   float64 // panel (d)
	IntraTh   float64 // PBPAIR's calibrated threshold (0 for others)
	// Counters holds the raw work tally, so the same run can be
	// re-priced under another device profile (the iPAQ/Zaurus
	// comparison of §4.1).
	Counters energy.Counters
}

// HeadlineSavings summarises the paper's headline result from Fig5
// rows: PBPAIR's energy saving relative to each other scheme, averaged
// across sequences (paper: −34% vs AIR, −24% vs GOP, −17% vs PGOP).
// Keys are scheme names; values are fractional savings (0.34 = 34%).
func HeadlineSavings(rows []Fig5Row) map[string]float64 {
	type acc struct{ pb, other float64 }
	sums := map[string]*acc{}
	pbBySeq := map[string]float64{}
	for _, r := range rows {
		if r.Scheme == "PBPAIR" {
			pbBySeq[r.Sequence] = r.EnergyJ
		}
	}
	for _, r := range rows {
		if r.Scheme == "PBPAIR" || r.Scheme == "NO" {
			continue
		}
		pb, ok := pbBySeq[r.Sequence]
		if !ok {
			continue
		}
		a := sums[r.Scheme]
		if a == nil {
			a = &acc{}
			sums[r.Scheme] = a
		}
		a.pb += pb
		a.other += r.EnergyJ
	}
	out := make(map[string]float64, len(sums))
	for scheme, a := range sums {
		if a.other > 0 {
			out[scheme] = 1 - a.pb/a.other
		}
	}
	return out
}

// mbGrid returns the macroblock grid of a source.
func mbGrid(src synth.Source) (rows, cols int) {
	w, h := src.Dims()
	return h / 16, w / 16
}

// probeBytes encodes ProbeFrames frames loss-free and returns the
// total size — the calibration probe. Probes go through the cache,
// so a bisection repeated across seeds (Fig5Multi) or processes (the
// cmd tools with a spill dir) encodes each probe once.
func probeBytes(cache *bitcache.Store, spec EncodeSpec) (int, error) {
	seq, err := Encode(cache, spec)
	if err != nil {
		return 0, err
	}
	return seq.TotalBytes, nil
}

// fig5Thresholds runs Figure 5's calibration phase: one Intra_Th per
// sequence, bisected so PBPAIR's probe size matches PGOP-3's (the
// paper's size-matching rule). Each bisection is inherently sequential
// (every probe depends on the previous bracket), but the sequences are
// independent, and every probe is a cacheable loss-free encode. Shared
// by the Monte-Carlo (Fig5) and analytic (Fig5Analytic) backends, so
// the two tables compare the same operating points.
func fig5Thresholds(cfg Fig5Config, regimes []synth.Regime) ([]float64, error) {
	probeSpec := func(regime synth.Regime, scheme SchemeSpec) EncodeSpec {
		return EncodeSpec{
			Regime: regime, Frames: cfg.ProbeFrames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: scheme,
		}
	}
	return parallel.Map(cfg.Workers, len(regimes), func(i int) (float64, error) {
		src := synth.Shared(regimes[i])
		gridRows, gridCols := mbGrid(src)
		pgopProbe, err := probeBytes(cfg.Cache, probeSpec(regimes[i], SchemePGOP(3, gridCols)))
		if err != nil {
			return 0, err
		}
		return CalibrateIntraTh(func(t float64) (int, error) {
			return probeBytes(cfg.Cache, probeSpec(regimes[i],
				SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: t, PLR: cfg.PLR})))
		}, pgopProbe, 10)
	})
}

// fig5Scheme is one entry of Figure 5's scheme list.
type fig5Scheme struct {
	spec    SchemeSpec
	intraTh bool // report the calibrated threshold for this row
}

// fig5Schemes lists Figure 5's five schemes for one sequence's grid,
// with PBPAIR at the calibrated threshold.
func fig5Schemes(gridRows, gridCols int, th, plr float64) []fig5Scheme {
	return []fig5Scheme{
		{spec: SchemeNO()},
		{spec: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: plr}), intraTh: true},
		{spec: SchemePGOP(3, gridCols)},
		{spec: SchemeGOP(3)},
		{spec: SchemeAIR(24)},
	}
}

// Fig5 reproduces Figure 5: NO, PBPAIR, PGOP-3, GOP-3 and AIR-24 on
// the three sequences at PLR 10%, reporting average PSNR, bad pixels,
// encoded size and encoding energy. PBPAIR's Intra_Th is calibrated to
// match PGOP-3's encoded size, as in the paper ("We choose Intra_Th
// that gives similar compression ratio with PGOP-3, GOP-3, and
// AIR-24").
func Fig5(cfg Fig5Config) ([]Fig5Row, error) {
	cfg = cfg.WithDefaults()
	regimes := []synth.Regime{synth.RegimeForeman, synth.RegimeAkiyo, synth.RegimeGarden}
	ths, err := fig5Thresholds(cfg, regimes)
	if err != nil {
		return nil, err
	}

	// Phases 1+2 — one encode per (sequence, scheme), then the
	// simulation grid, flattened in the serial iteration order
	// (sequence outer, scheme inner) so the returned rows are
	// identical for every worker count.
	plan := NewPlan(cfg.Workers, cfg.Cache)
	type cell struct {
		sequence string
		th       float64 // reported threshold (PBPAIR only)
	}
	var cells []cell
	for si, regime := range regimes {
		src := synth.Shared(regime)
		gridRows, gridCols := mbGrid(src)
		th := ths[si]
		schemes := fig5Schemes(gridRows, gridCols, th, cfg.PLR)
		for _, sc := range schemes {
			enc := plan.Encode(EncodeSpec{
				Regime: regime, Frames: cfg.Frames,
				QP: cfg.QP, SearchRange: cfg.SearchRange,
				Scheme: sc.spec,
			})
			channel, err := network.NewUniformLoss(cfg.PLR, cfg.Seed+uint64(regime))
			if err != nil {
				return nil, err
			}
			plan.Simulate(enc, SimSpec{
				Name:           fmt.Sprintf("fig5/%s/%s", src.Name(), sc.spec.Key()),
				Channel:        channel,
				Profile:        cfg.Profile,
				DecoderWorkers: cfg.DecoderWorkers,
			})
			c := cell{sequence: src.Name()}
			if sc.intraTh {
				c.th = th
			}
			cells = append(cells, c)
		}
	}
	results, err := plan.Run()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, len(results))
	for i, res := range results {
		rows = append(rows, Fig5Row{
			Sequence:  cells[i].sequence,
			Scheme:    res.Scheme,
			AvgPSNR:   res.PSNR.Mean(),
			BadPixels: res.TotalBadPix,
			FileKB:    float64(res.TotalBytes) / 1024,
			EnergyJ:   res.Joules,
			IntraTh:   cells[i].th,
			Counters:  res.Counters,
		})
	}
	return rows, nil
}

// Fig6Config parameterises the Figure 6 reproduction.
type Fig6Config struct {
	Frames      int   // paper: 50
	QP          int   // default 8
	SearchRange int   // motion search range (default 15)
	LossEvents  []int // frames lost (e1..e7); defaults include a GOP-8 I-frame
	ProbeFrames int
	// Workers bounds the experiment fan-out across the scheme traces.
	// <= 0 selects parallel.DefaultWorkers, 1 runs serially.
	Workers int
	// DecoderWorkers sets the per-frame GOB-row reconstruction
	// goroutines of every simulation's decoder (<= 1 decodes
	// serially). Output is bit-identical for every value.
	DecoderWorkers int
	// Cache, when non-nil, memoizes encodes by content fingerprint.
	Cache *bitcache.Store
}

// WithDefaults fills zero fields with their documented defaults.
func (c Fig6Config) WithDefaults() Fig6Config {
	if c.Frames == 0 {
		c.Frames = 50
	}
	if c.QP == 0 {
		c.QP = 8
	}
	if len(c.LossEvents) == 0 {
		// Seven loss events; e7 = frame 36 is a GOP-8 I-frame (multiples
		// of 9), demonstrating the paper's I-frame-loss failure mode.
		c.LossEvents = []int{4, 7, 13, 17, 23, 29, 36}
	}
	if c.ProbeFrames == 0 {
		c.ProbeFrames = 25
	}
	return c
}

// Fig6Series is one scheme's per-frame trace for Figure 6.
type Fig6Series struct {
	Scheme     string
	PSNR       []float64 // panel (a)
	FrameBytes []float64 // panel (b)
	CleanPSNR  []float64 // same encode without loss (recovery baseline)
	Recovery   []int     // frames to recover per loss event (E11)
	IntraTh    float64   // PBPAIR only
}

// Fig6 reproduces Figure 6: per-frame PSNR and frame-size traces for
// PBPAIR, PGOP-1, GOP-8 and AIR-10 (size-matched per the paper) on the
// foreman sequence under scripted loss events. Each scheme's clean and
// lossy traces are two simulations of one shared encode — the
// structural form of "the encoder never sees the channel".
func Fig6(cfg Fig6Config) ([]Fig6Series, error) {
	cfg = cfg.WithDefaults()
	src := synth.Shared(synth.RegimeForeman)
	gridRows, gridCols := mbGrid(src)
	const plr = 0.10 // PBPAIR's assumed network estimate

	probeSpec := func(scheme SchemeSpec) EncodeSpec {
		return EncodeSpec{
			Regime: synth.RegimeForeman, Frames: cfg.ProbeFrames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: scheme,
		}
	}

	// Size-match PBPAIR to GOP-8's probe size (the paper: "we choose
	// PGOP-1, GOP-8, and AIR-10 since those schemes generate a similar
	// size of encoded bitstream").
	gopProbe, err := probeBytes(cfg.Cache, probeSpec(SchemeGOP(8)))
	if err != nil {
		return nil, err
	}
	th, err := CalibrateIntraTh(func(t float64) (int, error) {
		return probeBytes(cfg.Cache, probeSpec(
			SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: t, PLR: plr})))
	}, gopProbe, 10)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		spec    SchemeSpec
		intraTh float64
	}{
		{spec: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: plr}), intraTh: th},
		{spec: SchemePGOP(1, gridCols)},
		{spec: SchemeGOP(8)},
		{spec: SchemeAIR(10)},
	}

	plan := NewPlan(cfg.Workers, cfg.Cache)
	for _, c := range cases {
		enc := plan.Encode(EncodeSpec{
			Regime: synth.RegimeForeman, Frames: cfg.Frames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: c.spec,
		})
		plan.Simulate(enc, SimSpec{Name: "fig6-clean", DecoderWorkers: cfg.DecoderWorkers})
		plan.Simulate(enc, SimSpec{
			Name:           "fig6-lossy",
			Channel:        network.NewSchedule(cfg.LossEvents...),
			DecoderWorkers: cfg.DecoderWorkers,
		})
	}
	runs, err := plan.Run()
	if err != nil {
		return nil, err
	}

	out := make([]Fig6Series, 0, len(cases))
	for i, c := range cases {
		clean, lossy := runs[2*i], runs[2*i+1]
		out = append(out, Fig6Series{
			Scheme:     lossy.Scheme,
			PSNR:       lossy.PSNR.Values(),
			FrameBytes: lossy.FrameBytes.Values(),
			CleanPSNR:  clean.PSNR.Values(),
			Recovery:   RecoveryFrames(clean.PSNR.Values(), lossy.PSNR.Values(), cfg.LossEvents, 1.0),
			IntraTh:    c.intraTh,
		})
	}
	return out, nil
}

// SweepConfig parameterises the §4.3 / §4.4 operating-point sweeps.
type SweepConfig struct {
	Frames      int
	QP          int
	SearchRange int
	Seed        uint64
	IntraThs    []float64
	PLRs        []float64
	Regime      synth.Regime
	Profile     energy.Profile
	// Workers bounds the goroutines running encodes and grid points
	// concurrently (the experiment fan-out level): <= 0 selects
	// parallel.DefaultWorkers, 1 runs serially. Every grid point is an
	// independent pipeline keyed by its grid index, so the returned
	// slice — and any CSV rendered from it — is byte-identical for
	// every worker count.
	Workers int
	// DecoderWorkers sets the per-frame GOB-row reconstruction
	// goroutines of every simulation's decoder (<= 1 decodes
	// serially). Output is bit-identical for every value.
	DecoderWorkers int
	// Cache, when non-nil, memoizes encodes by content fingerprint.
	// PBPAIR's planner depends on both Intra_Th and PLR, so every grid
	// cell is a distinct encode within one sweep; the cache pays off
	// across repeated sweeps and, with a spill dir, across processes.
	Cache *bitcache.Store
	// Trials, when > 1, evaluates every grid point against that many
	// independent loss realizations through the bit-packed batch
	// engine (SimBatch) instead of one sampled channel, filling the
	// points' CI95 fields. Lane 0 uses the channel seed of the
	// single-trial sweep, so the point means converge on — and at
	// Trials <= 1 exactly equal — the legacy single-seed sweep.
	Trials int
}

// WithDefaults fills zero fields with their documented defaults.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.QP == 0 {
		c.QP = 8
	}
	if c.Seed == 0 {
		c.Seed = 77
	}
	if len(c.IntraThs) == 0 {
		c.IntraThs = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1}
	}
	if len(c.PLRs) == 0 {
		c.PLRs = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if c.Regime == 0 {
		c.Regime = synth.RegimeForeman
	}
	if c.Profile.Name == "" {
		c.Profile = energy.IPAQ
	}
	return c
}

// SweepPoint is one (Intra_Th, PLR) operating point: the §4.3
// resiliency-vs-energy and §4.4 resiliency-vs-quality data. With
// SweepConfig.Trials > 1 the quality metrics are means over the trial
// lanes and the CI95 fields carry their 95% confidence half-widths
// (zero in single-trial sweeps).
type SweepPoint struct {
	IntraTh          float64
	PLR              float64
	IntraMBsPerFrame float64
	FileKB           float64
	EnergyJ          float64
	AvgPSNR          float64
	BadPixels        int
	Trials           int
	PSNRCI95         float64
	BadPixelsCI95    float64
}

// Sweep runs the full Intra_Th × PLR grid. The flattened job order
// (PLR outer, Intra_Th inner) and the returned slice order match the
// serial nested loops exactly.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	cfg = cfg.WithDefaults()
	if cfg.Trials > 1 {
		return sweepBatch(cfg)
	}
	src := synth.Shared(cfg.Regime)
	gridRows, gridCols := mbGrid(src)

	plan := NewPlan(cfg.Workers, cfg.Cache)
	type point struct{ th, plr float64 }
	var points []point
	for _, plr := range cfg.PLRs {
		for _, th := range cfg.IntraThs {
			enc := plan.Encode(EncodeSpec{
				Regime: cfg.Regime, Frames: cfg.Frames,
				QP: cfg.QP, SearchRange: cfg.SearchRange,
				Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: th, PLR: plr}),
			})
			var channel network.Channel
			if plr > 0 {
				uniform, err := network.NewUniformLoss(plr, cfg.Seed)
				if err != nil {
					return nil, err
				}
				channel = uniform
			}
			plan.Simulate(enc, SimSpec{
				Name:           fmt.Sprintf("sweep/th%.2f/plr%.2f", th, plr),
				Channel:        channel,
				Profile:        cfg.Profile,
				DecoderWorkers: cfg.DecoderWorkers,
			})
			points = append(points, point{th: th, plr: plr})
		}
	}
	results, err := plan.Run()
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(results))
	for i, res := range results {
		out = append(out, SweepPoint{
			IntraTh:          points[i].th,
			PLR:              points[i].plr,
			IntraMBsPerFrame: res.IntraMBs.Mean(),
			FileKB:           float64(res.TotalBytes) / 1024,
			EnergyJ:          res.Joules,
			AvgPSNR:          res.PSNR.Mean(),
			BadPixels:        res.TotalBadPix,
		})
	}
	return out, nil
}

// sweepBatch is the multi-trial backend of Sweep: every grid point is
// one SimBatch pass over cfg.Trials lanes. Grid points fan out across
// cfg.Workers goroutines (each point's batch engine runs serially
// inside its worker); the flattened order matches Sweep's serial
// nested loops, so the returned slice is identical for every worker
// count.
func sweepBatch(cfg SweepConfig) ([]SweepPoint, error) {
	src := synth.Shared(cfg.Regime)
	gridRows, gridCols := mbGrid(src)

	type gridPoint struct{ th, plr float64 }
	var points []gridPoint
	for _, plr := range cfg.PLRs {
		for _, th := range cfg.IntraThs {
			points = append(points, gridPoint{th: th, plr: plr})
		}
	}
	return parallel.Map(cfg.Workers, len(points), func(i int) (SweepPoint, error) {
		pt := points[i]
		seq, err := Encode(cfg.Cache, EncodeSpec{
			Regime: cfg.Regime, Frames: cfg.Frames,
			QP: cfg.QP, SearchRange: cfg.SearchRange,
			Scheme: SchemePBPAIR(core.Config{Rows: gridRows, Cols: gridCols, IntraTh: pt.th, PLR: pt.plr}),
		})
		if err != nil {
			return SweepPoint{}, err
		}
		mtr, err := SimBatch(seq, src, SimSpec{
			Name:    fmt.Sprintf("sweep/th%.2f/plr%.2f", pt.th, pt.plr),
			Profile: cfg.Profile,
		}, BatchSpec{
			Trials: cfg.Trials, Seed: cfg.Seed, LossRate: pt.plr,
			Workers: 1, Lane0Result: true,
		})
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{
			IntraTh:          pt.th,
			PLR:              pt.plr,
			IntraMBsPerFrame: mtr.Lane0.IntraMBs.Mean(),
			FileKB:           float64(mtr.TotalBytes) / 1024,
			EnergyJ:          mtr.Joules,
			AvgPSNR:          mtr.PSNR.Mean,
			BadPixels:        int(math.Round(mtr.BadPixels.Mean)),
			Trials:           cfg.Trials,
			PSNRCI95:         mtr.PSNR.CI95,
			BadPixelsCI95:    mtr.BadPixels.CI95,
		}, nil
	})
}

// SweepCSV renders sweep points in the CSV layout of cmd/pbpair-sweep:
// a header line plus one row per point. The CLI and the determinism
// tests share this renderer, so "byte-identical CSV for every worker
// count" is pinned against the exact bytes users see. Single-trial
// sweeps keep the legacy seven-column schema byte for byte;
// multi-trial sweeps (any point with Trials > 1) append the
// confidence columns psnr_ci95, bad_pixels_ci95 and trials.
func SweepCSV(points []SweepPoint) string {
	multi := false
	for _, p := range points {
		if p.Trials > 1 {
			multi = true
			break
		}
	}
	var b strings.Builder
	if !multi {
		b.WriteString("intra_th,plr,intra_mbs_per_frame,file_kb,energy_j,avg_psnr_db,bad_pixels\n")
		for _, p := range points {
			fmt.Fprintf(&b, "%.3f,%.3f,%.2f,%.1f,%.4f,%.2f,%d\n",
				p.IntraTh, p.PLR, p.IntraMBsPerFrame, p.FileKB, p.EnergyJ, p.AvgPSNR, p.BadPixels)
		}
		return b.String()
	}
	b.WriteString("intra_th,plr,intra_mbs_per_frame,file_kb,energy_j,avg_psnr_db,bad_pixels,psnr_ci95,bad_pixels_ci95,trials\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f,%.3f,%.2f,%.1f,%.4f,%.2f,%d,%.4f,%.2f,%d\n",
			p.IntraTh, p.PLR, p.IntraMBsPerFrame, p.FileKB, p.EnergyJ, p.AvgPSNR, p.BadPixels,
			p.PSNRCI95, p.BadPixelsCI95, p.Trials)
	}
	return b.String()
}
