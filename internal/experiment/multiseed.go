package experiment

import (
	"fmt"
	"math"

	"pbpair/internal/energy"
	"pbpair/internal/parallel"
	"pbpair/internal/synth"
)

// Multi-seed replication. The paper reports single runs; loss patterns
// are random, so any single-seed comparison could be luck. Fig5Multi
// repeats the Figure 5 experiment across independent loss seeds and
// reports mean and standard deviation per cell, which is what the
// EXPERIMENTS.md claims ("who wins") should rest on.

// Fig5Stats aggregates one (sequence, scheme) cell across independent
// channel realizations — seeds for Fig5Multi, lanes for Fig5Batch.
type Fig5Stats struct {
	Sequence string
	Scheme   string

	PSNRMean, PSNRStd     float64
	PSNRCI95              float64 // 95% confidence half-width of PSNRMean
	BadPixMean, BadPixStd float64
	BadPixCI95            float64 // 95% confidence half-width of BadPixMean
	FileKBMean            float64 // loss-independent: no spread reported
	EnergyJMean           float64 // loss-independent: no spread reported
	Seeds                 int     // realizations aggregated (seeds or lanes)
}

// Fig5Multi runs Fig5 once per seed and aggregates. The calibration
// and encode are loss-independent (the encoder never sees the channel),
// so size and energy come out identical across seeds — a claim this
// function enforces at runtime: any per-seed divergence in encoded
// size, energy or the raw work counters is an error, not silently
// averaged away. Quality metrics get a real distribution.
//
// Seeds fan out across cfg.Workers goroutines and each seed's Fig5
// run fans out internally with the same knob; per-seed rows are merged
// in seed order, so the aggregate is identical for every worker count.
// With cfg.Cache set, the per-seed runs share one encode per cell
// (concurrent seeds coalesce onto one compute) instead of re-encoding
// the grid per seed.
func Fig5Multi(cfg Fig5Config, seeds []uint64) ([]Fig5Stats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: Fig5Multi needs at least one seed")
	}
	perSeed, err := parallel.Map(cfg.Workers, len(seeds), func(i int) ([]Fig5Row, error) {
		c := cfg
		c.Seed = seeds[i]
		rows, err := Fig5(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: Fig5 seed %d: %w", seeds[i], err)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}

	type acc struct {
		psnr, bad       []float64
		fileKB, energyJ float64
		counters        energy.Counters
	}
	accs := map[string]*acc{}
	var order []string

	for si, rows := range perSeed {
		for _, r := range rows {
			key := r.Sequence + "\x00" + r.Scheme
			a := accs[key]
			if a == nil {
				a = &acc{fileKB: r.FileKB, energyJ: r.EnergyJ, counters: r.Counters}
				accs[key] = a
				order = append(order, key)
			} else if r.FileKB != a.fileKB || r.EnergyJ != a.energyJ || r.Counters != a.counters {
				return nil, fmt.Errorf(
					"experiment: Fig5Multi: %s/%s loss-independent outputs diverged at seed %d (size %.3f KB vs %.3f KB, energy %.6f J vs %.6f J): the encoder must never see the channel",
					r.Sequence, r.Scheme, seeds[si], r.FileKB, a.fileKB, r.EnergyJ, a.energyJ)
			}
			a.psnr = append(a.psnr, r.AvgPSNR)
			a.bad = append(a.bad, float64(r.BadPixels))
		}
	}

	out := make([]Fig5Stats, 0, len(order))
	for _, key := range order {
		a := accs[key]
		seq, scheme := splitKey(key)
		pm, ps := meanStd(a.psnr)
		bm, bs := meanStd(a.bad)
		n := len(a.psnr)
		ci := func(std float64) float64 {
			if n < 2 {
				return 0
			}
			return 1.96 * std / math.Sqrt(float64(n))
		}
		out = append(out, Fig5Stats{
			Sequence: seq, Scheme: scheme,
			PSNRMean: pm, PSNRStd: ps, PSNRCI95: ci(ps),
			BadPixMean: bm, BadPixStd: bs, BadPixCI95: ci(bs),
			FileKBMean:  a.fileKB,
			EnergyJMean: a.energyJ,
			Seeds:       n,
		})
	}
	return out, nil
}

// Fig5Batch runs the Figure 5 experiment through the bit-packed
// Monte-Carlo engine: the same calibration and encode plan as Fig5,
// but each (sequence, scheme) cell is evaluated against trials
// independent loss realizations in one SimBatch pass instead of one
// sampled channel — which is what makes 10k-trial confidence
// intervals affordable. Lane 0 of every cell is the scalar Fig5 run
// with the same config (the channel seed is cfg.Seed + regime, as in
// Fig5), so Fig5Batch at trials=1 reproduces Fig5's rows exactly.
//
// Cells fan out across cfg.Workers goroutines (each cell's batch
// engine runs serially inside its worker); the returned order matches
// Fig5's serial iteration order for every worker count.
func Fig5Batch(cfg Fig5Config, trials int) ([]Fig5Stats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiment: Fig5Batch needs at least one trial")
	}
	cfg = cfg.WithDefaults()
	regimes := []synth.Regime{synth.RegimeForeman, synth.RegimeAkiyo, synth.RegimeGarden}
	ths, err := fig5Thresholds(cfg, regimes)
	if err != nil {
		return nil, err
	}

	type cell struct {
		regime synth.Regime
		spec   EncodeSpec
		name   string
	}
	var cells []cell
	for si, regime := range regimes {
		src := synth.Shared(regime)
		gridRows, gridCols := mbGrid(src)
		for _, sc := range fig5Schemes(gridRows, gridCols, ths[si], cfg.PLR) {
			cells = append(cells, cell{
				regime: regime,
				spec: EncodeSpec{
					Regime: regime, Frames: cfg.Frames,
					QP: cfg.QP, SearchRange: cfg.SearchRange,
					Scheme: sc.spec,
				},
				name: fmt.Sprintf("fig5/%s/%s", src.Name(), sc.spec.Key()),
			})
		}
	}
	stats, err := parallel.Map(cfg.Workers, len(cells), func(i int) (Fig5Stats, error) {
		c := cells[i]
		src := synth.Shared(c.regime)
		seq, err := Encode(cfg.Cache, c.spec)
		if err != nil {
			return Fig5Stats{}, err
		}
		mtr, err := SimBatch(seq, src, SimSpec{Name: c.name, Profile: cfg.Profile},
			BatchSpec{Trials: trials, Seed: cfg.Seed + uint64(c.regime), LossRate: cfg.PLR, Workers: 1})
		if err != nil {
			return Fig5Stats{}, err
		}
		return Fig5Stats{
			Sequence: src.Name(), Scheme: mtr.Scheme,
			PSNRMean: mtr.PSNR.Mean, PSNRStd: mtr.PSNR.Std, PSNRCI95: mtr.PSNR.CI95,
			BadPixMean: mtr.BadPixels.Mean, BadPixStd: mtr.BadPixels.Std, BadPixCI95: mtr.BadPixels.CI95,
			FileKBMean:  float64(mtr.TotalBytes) / 1024,
			EnergyJMean: mtr.Joules,
			Seeds:       trials,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

func splitKey(key string) (seq, scheme string) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if len(v) < 2 {
		return mean, 0
	}
	var sum float64
	for _, x := range v {
		d := x - mean
		sum += d * d
	}
	return mean, math.Sqrt(sum / float64(len(v)-1))
}

// SeparationVerdict reports whether scheme a beats scheme b on mean
// PSNR by more than the combined standard error of the two means — a
// coarse but honest "is the win real" check used by the reproduction
// tests.
func SeparationVerdict(stats []Fig5Stats, sequence, a, b string) (bool, error) {
	var sa, sb *Fig5Stats
	for i := range stats {
		if stats[i].Sequence != sequence {
			continue
		}
		switch stats[i].Scheme {
		case a:
			sa = &stats[i]
		case b:
			sb = &stats[i]
		}
	}
	if sa == nil || sb == nil {
		return false, fmt.Errorf("experiment: schemes %q/%q not found for %q", a, b, sequence)
	}
	margin := (sa.PSNRStd + sb.PSNRStd) / math.Sqrt(float64(sa.Seeds))
	return sa.PSNRMean > sb.PSNRMean+margin, nil
}
