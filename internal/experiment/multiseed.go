package experiment

import (
	"fmt"
	"math"

	"pbpair/internal/energy"
	"pbpair/internal/parallel"
)

// Multi-seed replication. The paper reports single runs; loss patterns
// are random, so any single-seed comparison could be luck. Fig5Multi
// repeats the Figure 5 experiment across independent loss seeds and
// reports mean and standard deviation per cell, which is what the
// EXPERIMENTS.md claims ("who wins") should rest on.

// Fig5Stats aggregates one (sequence, scheme) cell across seeds.
type Fig5Stats struct {
	Sequence string
	Scheme   string

	PSNRMean, PSNRStd     float64
	BadPixMean, BadPixStd float64
	FileKBMean            float64 // loss-independent: no spread reported
	EnergyJMean           float64 // loss-independent: no spread reported
	Seeds                 int
}

// Fig5Multi runs Fig5 once per seed and aggregates. The calibration
// and encode are loss-independent (the encoder never sees the channel),
// so size and energy come out identical across seeds — a claim this
// function enforces at runtime: any per-seed divergence in encoded
// size, energy or the raw work counters is an error, not silently
// averaged away. Quality metrics get a real distribution.
//
// Seeds fan out across cfg.Workers goroutines and each seed's Fig5
// run fans out internally with the same knob; per-seed rows are merged
// in seed order, so the aggregate is identical for every worker count.
// With cfg.Cache set, the per-seed runs share one encode per cell
// (concurrent seeds coalesce onto one compute) instead of re-encoding
// the grid per seed.
func Fig5Multi(cfg Fig5Config, seeds []uint64) ([]Fig5Stats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: Fig5Multi needs at least one seed")
	}
	perSeed, err := parallel.Map(cfg.Workers, len(seeds), func(i int) ([]Fig5Row, error) {
		c := cfg
		c.Seed = seeds[i]
		rows, err := Fig5(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: Fig5 seed %d: %w", seeds[i], err)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}

	type acc struct {
		psnr, bad       []float64
		fileKB, energyJ float64
		counters        energy.Counters
	}
	accs := map[string]*acc{}
	var order []string

	for si, rows := range perSeed {
		for _, r := range rows {
			key := r.Sequence + "\x00" + r.Scheme
			a := accs[key]
			if a == nil {
				a = &acc{fileKB: r.FileKB, energyJ: r.EnergyJ, counters: r.Counters}
				accs[key] = a
				order = append(order, key)
			} else if r.FileKB != a.fileKB || r.EnergyJ != a.energyJ || r.Counters != a.counters {
				return nil, fmt.Errorf(
					"experiment: Fig5Multi: %s/%s loss-independent outputs diverged at seed %d (size %.3f KB vs %.3f KB, energy %.6f J vs %.6f J): the encoder must never see the channel",
					r.Sequence, r.Scheme, seeds[si], r.FileKB, a.fileKB, r.EnergyJ, a.energyJ)
			}
			a.psnr = append(a.psnr, r.AvgPSNR)
			a.bad = append(a.bad, float64(r.BadPixels))
		}
	}

	out := make([]Fig5Stats, 0, len(order))
	for _, key := range order {
		a := accs[key]
		seq, scheme := splitKey(key)
		pm, ps := meanStd(a.psnr)
		bm, bs := meanStd(a.bad)
		out = append(out, Fig5Stats{
			Sequence: seq, Scheme: scheme,
			PSNRMean: pm, PSNRStd: ps,
			BadPixMean: bm, BadPixStd: bs,
			FileKBMean:  a.fileKB,
			EnergyJMean: a.energyJ,
			Seeds:       len(a.psnr),
		})
	}
	return out, nil
}

func splitKey(key string) (seq, scheme string) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if len(v) < 2 {
		return mean, 0
	}
	var sum float64
	for _, x := range v {
		d := x - mean
		sum += d * d
	}
	return mean, math.Sqrt(sum / float64(len(v)-1))
}

// SeparationVerdict reports whether scheme a beats scheme b on mean
// PSNR by more than the combined standard error of the two means — a
// coarse but honest "is the win real" check used by the reproduction
// tests.
func SeparationVerdict(stats []Fig5Stats, sequence, a, b string) (bool, error) {
	var sa, sb *Fig5Stats
	for i := range stats {
		if stats[i].Sequence != sequence {
			continue
		}
		switch stats[i].Scheme {
		case a:
			sa = &stats[i]
		case b:
			sb = &stats[i]
		}
	}
	if sa == nil || sb == nil {
		return false, fmt.Errorf("experiment: schemes %q/%q not found for %q", a, b, sequence)
	}
	margin := (sa.PSNRStd + sb.PSNRStd) / math.Sqrt(float64(sa.Seeds))
	return sa.PSNRMean > sb.PSNRMean+margin, nil
}
