package experiment

import (
	"strings"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/metrics"
	"pbpair/internal/network"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
)

func TestRunValidation(t *testing.T) {
	src := synth.New(synth.RegimeAkiyo)
	tests := []struct {
		name string
		s    Scenario
	}{
		{"no source", Scenario{Planner: resilience.NewNone(), Frames: 1}},
		{"no planner", Scenario{Source: src, Frames: 1}},
		{"no frames", Scenario{Source: src, Planner: resilience.NewNone()}},
	}
	for _, tt := range tests {
		if _, err := Run(tt.s); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestRunLossFree(t *testing.T) {
	res, err := Run(Scenario{
		Name:    "basic",
		Source:  synth.New(synth.RegimeAkiyo),
		Frames:  5,
		Planner: resilience.NewNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 5 || res.PSNR.Len() != 5 || res.FrameBytes.Len() != 5 {
		t.Fatalf("series lengths wrong: %+v", res)
	}
	if res.LostFrames != 0 || res.ConcealedMBs != 0 || res.PacketsLost != 0 {
		t.Fatalf("loss-free run reported loss: %+v", res)
	}
	if res.PSNR.Mean() < 28 {
		t.Fatalf("loss-free PSNR %.2f too low", res.PSNR.Mean())
	}
	if res.Joules <= 0 {
		t.Fatal("no energy recorded")
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no bytes recorded")
	}
	if res.Scheme != "NO" {
		t.Fatalf("scheme name %q", res.Scheme)
	}
}

func TestRunWithScheduledLoss(t *testing.T) {
	clean, err := Run(Scenario{
		Name: "clean", Source: synth.New(synth.RegimeForeman), Frames: 10,
		Planner: resilience.NewNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(Scenario{
		Name: "lossy", Source: synth.New(synth.RegimeForeman), Frames: 10,
		Planner: resilience.NewNone(),
		Channel: network.NewSchedule(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.LostFrames != 1 {
		t.Fatalf("LostFrames = %d, want 1", lossy.LostFrames)
	}
	if lossy.ConcealedMBs < 99 {
		t.Fatalf("ConcealedMBs = %d, want >= 99", lossy.ConcealedMBs)
	}
	// PSNR at and after the lost frame must be worse than clean.
	cp, lp := clean.PSNR.Values(), lossy.PSNR.Values()
	if lp[3] >= cp[3] {
		t.Fatalf("lost frame PSNR %.2f not worse than clean %.2f", lp[3], cp[3])
	}
	// Error propagation: next frame still degraded (NO has no refresh).
	if lp[4] >= cp[4]-0.1 {
		t.Fatalf("no error propagation visible: %.2f vs %.2f", lp[4], cp[4])
	}
}

func TestKeepFrames(t *testing.T) {
	res, err := Run(Scenario{
		Name: "keep", Source: synth.New(synth.RegimeAkiyo), Frames: 3,
		Planner: resilience.NewNone(),
	}, KeepFrames())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DecodedFrames) != 3 {
		t.Fatalf("kept %d frames, want 3", len(res.DecodedFrames))
	}
	// Frames must be healthy reconstructions.
	psnr, err := metrics.PSNR(synth.New(synth.RegimeAkiyo).Frame(2), res.DecodedFrames[2])
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 28 {
		t.Fatalf("kept frame PSNR %.2f", psnr)
	}
}

func TestCalibrateIntraThMonotoneProbe(t *testing.T) {
	// Synthetic probe: bytes = 1000 + th*9000 (monotone).
	probe := func(th float64) (int, error) { return 1000 + int(th*9000), nil }
	th, err := CalibrateIntraTh(probe, 5500, 16)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.49 || th > 0.51 {
		t.Fatalf("calibrated th %.4f, want ~0.50", th)
	}
	// Saturation below and above.
	if th, _ := CalibrateIntraTh(probe, 500, 8); th != 0 {
		t.Fatalf("target below range: th = %v, want 0", th)
	}
	if th, _ := CalibrateIntraTh(probe, 50000, 8); th != 1 {
		t.Fatalf("target above range: th = %v, want 1", th)
	}
}

func TestCalibrateIntraThRealEncoder(t *testing.T) {
	src := synth.New(synth.RegimeForeman)
	probe := func(th float64) (int, error) {
		planner, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: th, PLR: 0.1})
		if err != nil {
			return 0, err
		}
		res, err := Run(Scenario{Name: "probe", Source: src, Frames: 8, Planner: planner})
		if err != nil {
			return 0, err
		}
		return res.TotalBytes, nil
	}
	lo, err := probe(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := probe(1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("probe not increasing: %d .. %d", lo, hi)
	}
	target := (lo + hi) / 2
	th, err := CalibrateIntraTh(probe, target, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := probe(th)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, target) > 0.25 {
		t.Fatalf("calibrated size %d far from target %d (th=%.3f)", got, target, th)
	}
}

func relErr(a, b int) float64 {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

func TestRecoveryFrames(t *testing.T) {
	clean := []float64{30, 30, 30, 30, 30, 30, 30, 30}
	lossy := []float64{30, 20, 22, 29.5, 30, 15, 15, 15}
	got := RecoveryFrames(clean, lossy, []int{1, 5}, 1.0)
	if got[0] != 2 {
		t.Errorf("event 0 recovery = %d, want 2 (frame 3 within 1 dB)", got[0])
	}
	if got[1] != -1 {
		t.Errorf("event 1 recovery = %d, want -1 (never recovers)", got[1])
	}
	// Out-of-range event.
	if r := RecoveryFrames(clean, lossy, []int{99}, 1.0); r[0] != -1 {
		t.Errorf("out-of-range event recovery = %d", r[0])
	}
	// Window ends at next event: event 0 can't claim recovery after event at 2.
	lossy2 := []float64{30, 10, 10, 30, 30, 30, 30, 30}
	r := RecoveryFrames(clean, lossy2, []int{1, 2}, 1.0)
	if r[0] != -1 {
		t.Errorf("recovery credited across a later event: %d", r[0])
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "scheme", "psnr")
	tb.AddRow("PBPAIR", "31.20")
	tb.AddRow("GOP-3", "29.87")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "PBPAIR") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows() = %d", tb.Rows())
	}
}

func TestFormatSeries(t *testing.T) {
	line := FormatSeries("psnr", []float64{1.234, 5.678}, "%.1f")
	if line != "psnr,1.2,5.7" {
		t.Fatalf("got %q", line)
	}
	if got := FormatSeries("x", []float64{1}, ""); got != "x,1.00" {
		t.Fatalf("default format: %q", got)
	}
}

// TestFig6SmallRun exercises the whole Figure 6 pipeline at reduced
// scale and checks its headline claims: GOP suffers most at the
// I-frame-loss event, and PBPAIR recovers from every event.
func TestFig6SmallRun(t *testing.T) {
	events := []int{5, 20, 36}
	series, err := Fig6(Fig6Config{Frames: 42, ProbeFrames: 15, LossEvents: events})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	byName := map[string]Fig6Series{}
	for _, s := range series {
		byName[s.Scheme] = s
		if len(s.PSNR) != 42 || len(s.FrameBytes) != 42 {
			t.Fatalf("%s: series lengths %d/%d", s.Scheme, len(s.PSNR), len(s.FrameBytes))
		}
	}
	pb, ok := byName["PBPAIR"]
	if !ok {
		t.Fatal("no PBPAIR series")
	}
	gop, ok := byName["GOP-8"]
	if !ok {
		t.Fatal("no GOP-8 series")
	}
	// Frame 36 is a GOP-8 I-frame: after losing it, GOP's PSNR through
	// the rest of the sequence must collapse relative to PBPAIR's.
	gopTail := mean(gop.PSNR[37:])
	pbTail := mean(pb.PSNR[37:])
	t.Logf("post-I-frame-loss tail PSNR: GOP-8 %.2f dB, PBPAIR %.2f dB", gopTail, pbTail)
	if pbTail <= gopTail {
		t.Fatalf("PBPAIR tail %.2f not above GOP tail %.2f after I-frame loss", pbTail, gopTail)
	}
	// The paper's recovery claim: "PBPAIR recovers faster than PGOP
	// and AIR". Unrecovered events are censored at their window length.
	score := func(s Fig6Series) float64 {
		var total float64
		for i, r := range s.Recovery {
			if r < 0 {
				end := 42
				if i+1 < len(events) {
					end = events[i+1]
				}
				r = end - events[i]
			}
			total += float64(r)
		}
		return total / float64(len(s.Recovery))
	}
	pbScore := score(pb)
	pgopScore := score(byName["PGOP-1"])
	airScore := score(byName["AIR-10"])
	t.Logf("mean recovery (frames): PBPAIR %.1f, PGOP-1 %.1f, AIR-10 %.1f", pbScore, pgopScore, airScore)
	if pbScore > pgopScore || pbScore > airScore {
		t.Fatalf("PBPAIR recovery %.1f not fastest (PGOP %.1f, AIR %.1f)", pbScore, pgopScore, airScore)
	}
	// GOP frame sizes are bursty: max/mean well above PBPAIR's.
	gopBurst := maxOf(gop.FrameBytes) / mean(gop.FrameBytes)
	pbBurst := maxOf(pb.FrameBytes) / mean(pb.FrameBytes)
	t.Logf("frame-size burstiness (max/mean): GOP-8 %.2f, PBPAIR %.2f", gopBurst, pbBurst)
	if gopBurst <= pbBurst {
		t.Fatalf("GOP burstiness %.2f not above PBPAIR %.2f", gopBurst, pbBurst)
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TestSweepSmall checks the §4.3 trade-off directions on a tiny grid:
// at fixed PLR, higher Intra_Th ⇒ more intra MBs, bigger files, less
// energy.
func TestSweepSmall(t *testing.T) {
	points, err := Sweep(SweepConfig{
		Frames:   10,
		IntraThs: []float64{0, 0.9, 1},
		PLRs:     []float64{0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].IntraMBsPerFrame < points[i-1].IntraMBsPerFrame {
			t.Fatalf("intra rate not monotone in Intra_Th: %+v", points)
		}
		if points[i].EnergyJ >= points[i-1].EnergyJ {
			t.Fatalf("energy not decreasing in Intra_Th: %+v", points)
		}
	}
	if points[2].FileKB <= points[0].FileKB {
		t.Fatalf("all-intra file %.2f KB not larger than all-inter %.2f KB", points[2].FileKB, points[0].FileKB)
	}
}

// mbGridHelper sanity.
func TestMBGrid(t *testing.T) {
	r, c := mbGrid(synth.New(synth.RegimeAkiyo))
	if r != 9 || c != 11 {
		t.Fatalf("grid %dx%d, want 9x11", r, c)
	}
}

var _ codec.ModePlanner = (*resilience.None)(nil) // interface checks stay honest
