package experiment

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table for figure/table reproduction
// output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells, one per (format, value)
// pair expressed as pre-formatted strings via fmt.Sprintf by the
// caller. Provided for symmetry; most callers format explicitly.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatSeries renders a named per-frame series as a CSV line pair,
// the output format of the Figure 6 plots.
func FormatSeries(name string, values []float64, format string) string {
	if format == "" {
		format = "%.2f"
	}
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf(format, v)
	}
	return name + "," + strings.Join(cells, ",")
}
