package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/resilience"
)

// ParseScheme builds a planner from its command-line spelling:
//
//	NO | GOP-<n> | AIR-<n> | PGOP-<n> | PBPAIR
//
// rows/cols give the macroblock grid; intraTh and plr configure
// PBPAIR (ignored by the others). Planners are stateful: call
// ParseScheme once per encode.
func ParseScheme(name string, rows, cols int, intraTh, plr float64) (codec.ModePlanner, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	switch {
	case upper == "NO" || upper == "NONE":
		return resilience.NewNone(), nil
	case upper == "PBPAIR":
		return core.New(core.Config{Rows: rows, Cols: cols, IntraTh: intraTh, PLR: plr})
	case strings.HasPrefix(upper, "GOP-"):
		n, err := schemeParam(upper, "GOP-")
		if err != nil {
			return nil, err
		}
		return resilience.NewGOP(n)
	case strings.HasPrefix(upper, "AIR-"):
		n, err := schemeParam(upper, "AIR-")
		if err != nil {
			return nil, err
		}
		return resilience.NewAIR(n)
	case strings.HasPrefix(upper, "PGOP-"):
		n, err := schemeParam(upper, "PGOP-")
		if err != nil {
			return nil, err
		}
		return resilience.NewPGOP(n, cols)
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q (want NO, GOP-n, AIR-n, PGOP-n or PBPAIR)", name)
	}
}

func schemeParam(s, prefix string) (int, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(s, prefix))
	if err != nil {
		return 0, fmt.Errorf("experiment: scheme %q: bad parameter: %w", s, err)
	}
	return n, nil
}
