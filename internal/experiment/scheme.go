package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/resilience"
)

// SchemeKind enumerates the resilience schemes a SchemeSpec can build.
type SchemeKind int

// Scheme kinds.
const (
	SchemeKindNO SchemeKind = iota + 1
	SchemeKindGOP
	SchemeKindAIR
	SchemeKindPGOP
	SchemeKindPBPAIR
)

// SchemeSpec is a resilience scheme as a value: enough configuration
// to build a fresh planner (planners are stateful — one per encode)
// and to serialize the scheme canonically for the bitstream cache.
// Construct specs with the SchemeNO/SchemeGOP/SchemeAIR/SchemePGOP/
// SchemePBPAIR helpers.
type SchemeSpec struct {
	Kind SchemeKind
	// N parameterises GOP (I-frame period), AIR (intra MBs per frame)
	// and PGOP (refresh columns per frame).
	N int
	// Cols is the macroblock-grid width PGOP sweeps across.
	Cols int
	// PBPAIR configures a SchemeKindPBPAIR planner (including its
	// grid).
	PBPAIR core.Config
}

// SchemeNO is the no-resilience baseline.
func SchemeNO() SchemeSpec { return SchemeSpec{Kind: SchemeKindNO} }

// SchemeGOP inserts an I-frame every n frames.
func SchemeGOP(n int) SchemeSpec { return SchemeSpec{Kind: SchemeKindGOP, N: n} }

// SchemeAIR forces the n highest-SAD macroblocks intra per frame.
func SchemeAIR(n int) SchemeSpec { return SchemeSpec{Kind: SchemeKindAIR, N: n} }

// SchemePGOP refreshes n columns per frame across a cols-wide grid.
func SchemePGOP(n, cols int) SchemeSpec { return SchemeSpec{Kind: SchemeKindPGOP, N: n, Cols: cols} }

// SchemePBPAIR is the paper's probability-based planner.
func SchemePBPAIR(cfg core.Config) SchemeSpec {
	return SchemeSpec{Kind: SchemeKindPBPAIR, PBPAIR: cfg}
}

// Key returns the scheme's canonical serialization, the planner part
// of an EncodeSpec fingerprint. PBPAIR settings are normalised first
// (core.Config.Normalized), so two configs that build behaviourally
// identical planners — e.g. Lambda 0 and Lambda DefaultLambda — key
// equal, while any behavioural difference keys apart.
func (s SchemeSpec) Key() string {
	switch s.Kind {
	case SchemeKindNO:
		return "NO"
	case SchemeKindGOP:
		return fmt.Sprintf("GOP-%d", s.N)
	case SchemeKindAIR:
		return fmt.Sprintf("AIR-%d", s.N)
	case SchemeKindPGOP:
		return fmt.Sprintf("PGOP-%d/cols=%d", s.N, s.Cols)
	case SchemeKindPBPAIR:
		c := s.PBPAIR.Normalized()
		return fmt.Sprintf("PBPAIR/r=%d/c=%d/th=%s/plr=%s/lambda=%s/pscale=%s/nosim=%t/simscale=%s/paranoia=%s",
			c.Rows, c.Cols, ffmt(c.IntraTh), ffmt(c.PLR), ffmt(c.Lambda), ffmt(c.PenaltyScale),
			c.DisableSimilarity, ffmt(c.SimilarityScale), ffmt(c.Paranoia))
	default:
		return fmt.Sprintf("SchemeKind(%d)", int(s.Kind))
	}
}

// ffmt renders a float canonically (shortest exact representation).
func ffmt(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Build returns a fresh planner for the spec. Planners are stateful;
// build one per encode.
func (s SchemeSpec) Build() (codec.ModePlanner, error) {
	switch s.Kind {
	case SchemeKindNO:
		return resilience.NewNone(), nil
	case SchemeKindGOP:
		return resilience.NewGOP(s.N)
	case SchemeKindAIR:
		return resilience.NewAIR(s.N)
	case SchemeKindPGOP:
		return resilience.NewPGOP(s.N, s.Cols)
	case SchemeKindPBPAIR:
		return core.New(s.PBPAIR)
	default:
		return nil, fmt.Errorf("experiment: unknown scheme kind %d", s.Kind)
	}
}

// ParseSchemeSpec builds a SchemeSpec from its command-line spelling:
//
//	NO | GOP-<n> | AIR-<n> | PGOP-<n> | PBPAIR
//
// rows/cols give the macroblock grid; intraTh and plr configure
// PBPAIR (ignored by the others).
func ParseSchemeSpec(name string, rows, cols int, intraTh, plr float64) (SchemeSpec, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	switch {
	case upper == "NO" || upper == "NONE":
		return SchemeNO(), nil
	case upper == "PBPAIR":
		return SchemePBPAIR(core.Config{Rows: rows, Cols: cols, IntraTh: intraTh, PLR: plr}), nil
	case strings.HasPrefix(upper, "GOP-"):
		n, err := schemeParam(upper, "GOP-")
		if err != nil {
			return SchemeSpec{}, err
		}
		return SchemeGOP(n), nil
	case strings.HasPrefix(upper, "AIR-"):
		n, err := schemeParam(upper, "AIR-")
		if err != nil {
			return SchemeSpec{}, err
		}
		return SchemeAIR(n), nil
	case strings.HasPrefix(upper, "PGOP-"):
		n, err := schemeParam(upper, "PGOP-")
		if err != nil {
			return SchemeSpec{}, err
		}
		return SchemePGOP(n, cols), nil
	default:
		return SchemeSpec{}, fmt.Errorf("experiment: unknown scheme %q (want NO, GOP-n, AIR-n, PGOP-n or PBPAIR)", name)
	}
}

// ParseScheme builds a planner from its command-line spelling (see
// ParseSchemeSpec for the grammar). Planners are stateful: call
// ParseScheme once per encode.
func ParseScheme(name string, rows, cols int, intraTh, plr float64) (codec.ModePlanner, error) {
	spec, err := ParseSchemeSpec(name, rows, cols, intraTh, plr)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

func schemeParam(s, prefix string) (int, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(s, prefix))
	if err != nil {
		return 0, fmt.Errorf("experiment: scheme %q: bad parameter: %w", s, err)
	}
	return n, nil
}
