package dct

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// Differential harness: the folded butterfly kernels must be bit-exact
// with the naive triple loops in dct_ref.go for every int32 input
// block — not just the nominal sample/coefficient ranges. The fold
// only redistributes int64 ring operations, so this holds even when
// extreme inputs make intermediate products wrap.

// TestCosineTableSymmetry pins the property the fold depends on:
// ctab[v][y] == ctab[v][7−y] for even v and == −ctab[v][7−y] for odd
// v, exactly, as int32 values after rounding.
func TestCosineTableSymmetry(t *testing.T) {
	for v := 0; v < video.BlockSize; v++ {
		for y := 0; y < video.BlockSize/2; y++ {
			a, b := ctab[v][y], ctab[v][video.BlockSize-1-y]
			if v%2 == 0 && a != b {
				t.Errorf("even v=%d y=%d: ctab %d != mirrored %d", v, y, a, b)
			}
			if v%2 == 1 && a != -b {
				t.Errorf("odd v=%d y=%d: ctab %d != -mirrored %d", v, y, a, -b)
			}
		}
	}
}

func TestDCTEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	regimes := []func() int32{
		func() int32 { return int32(rng.Intn(511)) - 255 },   // residual range
		func() int32 { return int32(rng.Intn(256)) },         // intra range
		func() int32 { return int32(rng.Intn(4096)) - 2048 }, // coefficient range
		func() int32 { return rng.Int31() - rng.Int31() },    // full int32 domain
		func() int32 { return []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 255, -255}[rng.Intn(7)] },
	}
	for i := 0; i < 4000; i++ {
		gen := regimes[i%len(regimes)]
		var src video.Block
		for j := range src {
			src[j] = gen()
		}
		var fwdFast, fwdRef, invFast, invRef video.Block
		Forward(&src, &fwdFast)
		ForwardRef(&src, &fwdRef)
		if fwdFast != fwdRef {
			t.Fatalf("Forward diverges (regime %d):\nsrc  %v\nfast %v\nref  %v", i%len(regimes), src, fwdFast, fwdRef)
		}
		Inverse(&src, &invFast)
		InverseRef(&src, &invRef)
		if invFast != invRef {
			t.Fatalf("Inverse diverges (regime %d):\nsrc  %v\nfast %v\nref  %v", i%len(regimes), src, invFast, invRef)
		}
	}
}

// FuzzDCTEquiv extends the same equivalence to fuzzer-chosen blocks:
// 64 int32 coefficients are decoded little-endian from the input.
func FuzzDCTEquiv(f *testing.F) {
	f.Add(make([]byte, 256))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var src video.Block
		for j := range src {
			if 4*j+4 <= len(data) {
				src[j] = int32(binary.LittleEndian.Uint32(data[4*j : 4*j+4]))
			}
		}
		var fwdFast, fwdRef, invFast, invRef video.Block
		Forward(&src, &fwdFast)
		ForwardRef(&src, &fwdRef)
		if fwdFast != fwdRef {
			t.Fatalf("Forward diverges:\nsrc  %v\nfast %v\nref  %v", src, fwdFast, fwdRef)
		}
		Inverse(&src, &invFast)
		InverseRef(&src, &invRef)
		if invFast != invRef {
			t.Fatalf("Inverse diverges:\nsrc  %v\nfast %v\nref  %v", src, invFast, invRef)
		}
	})
}
