package dct

import "pbpair/internal/video"

// Reference (naive O(N³)) transforms — the original triple-loop
// implementations of Forward and Inverse, kept exported as ground
// truth for the differential harness (TestDCTEquiv / FuzzDCTEquiv).
// The folded kernels in dct.go must match these exactly for every
// int32 input block, not just the nominal sample range: the fold only
// reorders int64 additions and relies on the exact ±symmetry of ctab
// (asserted by TestCosineTableSymmetry), both of which are
// value-independent.

// ForwardRef is the reference implementation of Forward.
func ForwardRef(src, dst *video.Block) {
	// Row pass: tmp[x][v] = Σ_y src[x][y] * ctab[v][y], scaled 2^14.
	var tmp [video.BlockSize * video.BlockSize]int64
	for x := 0; x < video.BlockSize; x++ {
		row := src[x*video.BlockSize:]
		for v := 0; v < video.BlockSize; v++ {
			var sum int64
			for y := 0; y < video.BlockSize; y++ {
				sum += int64(row[y]) * int64(ctab[v][y])
			}
			tmp[x*video.BlockSize+v] = sum
		}
	}
	// Column pass: dst[u][v] = Σ_x tmp[x][v] * ctab[u][x], scaled 2^28,
	// rounded back to integers.
	const round = int64(1) << (2*scaleBits - 1)
	for v := 0; v < video.BlockSize; v++ {
		for u := 0; u < video.BlockSize; u++ {
			var sum int64
			for x := 0; x < video.BlockSize; x++ {
				sum += tmp[x*video.BlockSize+v] * int64(ctab[u][x])
			}
			dst[u*video.BlockSize+v] = clampCoef(int32((sum + round) >> (2 * scaleBits)))
		}
	}
}

// InverseRef is the reference implementation of Inverse.
func InverseRef(src, dst *video.Block) {
	// Row pass over coefficient rows: tmp[u][y] = Σ_v src[u][v]*ctab[v][y].
	var tmp [video.BlockSize * video.BlockSize]int64
	for u := 0; u < video.BlockSize; u++ {
		row := src[u*video.BlockSize:]
		for y := 0; y < video.BlockSize; y++ {
			var sum int64
			for v := 0; v < video.BlockSize; v++ {
				sum += int64(row[v]) * int64(ctab[v][y])
			}
			tmp[u*video.BlockSize+y] = sum
		}
	}
	const round = int64(1) << (2*scaleBits - 1)
	for y := 0; y < video.BlockSize; y++ {
		for x := 0; x < video.BlockSize; x++ {
			var sum int64
			for u := 0; u < video.BlockSize; u++ {
				sum += tmp[u*video.BlockSize+y] * int64(ctab[u][x])
			}
			dst[x*video.BlockSize+y] = int32((sum + round) >> (2 * scaleBits))
		}
	}
}
