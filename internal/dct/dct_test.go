package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbpair/internal/video"
)

// floatForward is an independent float64 reference DCT-II used to
// validate the fixed-point implementation.
func floatForward(src *video.Block) [64]float64 {
	var out [64]float64
	n := float64(video.BlockSize)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			var sum float64
			for x := 0; x < 8; x++ {
				for y := 0; y < 8; y++ {
					sum += float64(src[x*8+y]) *
						math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*n)) *
						math.Cos((2*float64(y)+1)*float64(v)*math.Pi/(2*n))
				}
			}
			out[u*8+v] = cu * cv / 4 * sum
		}
	}
	return out
}

func randBlock(rng *rand.Rand, lo, hi int32) *video.Block {
	var b video.Block
	for i := range b {
		b[i] = lo + rng.Int31n(hi-lo+1)
	}
	return &b
}

func TestForwardFlatBlockDCOnly(t *testing.T) {
	var src, dst video.Block
	for i := range src {
		src[i] = 100
	}
	Forward(&src, &dst)
	if dst[0] != 800 { // 8 * mean
		t.Fatalf("DC = %d, want 800", dst[0])
	}
	for i := 1; i < 64; i++ {
		if dst[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, dst[i])
		}
	}
}

func TestForwardMatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		src := randBlock(rng, -255, 255)
		var got video.Block
		Forward(src, &got)
		want := floatForward(src)
		for i := range got {
			if d := math.Abs(float64(got[i]) - want[i]); d > 1.0 {
				t.Fatalf("trial %d coef %d: fixed %d vs float %.3f (|Δ|=%.3f)",
					trial, i, got[i], want[i], d)
			}
		}
	}
}

func TestRoundTripIntraRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		src := randBlock(rng, 0, 255)
		var freq, rec video.Block
		Forward(src, &freq)
		Inverse(&freq, &rec)
		for i := range src {
			if d := src[i] - rec[i]; d > 1 || d < -1 {
				t.Fatalf("trial %d pixel %d: %d -> %d (|Δ|>1)", trial, i, src[i], rec[i])
			}
		}
	}
}

// TestRoundTripProperty is the DESIGN.md invariant: for any in-range
// residual block, Forward→Inverse reproduces every sample within ±1.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randBlock(rng, -255, 255)
		var freq, rec video.Block
		Forward(src, &freq)
		Inverse(&freq, &rec)
		for i := range src {
			if d := src[i] - rec[i]; d > 1 || d < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randBlock(rng, -100, 100)
	b := randBlock(rng, -100, 100)
	var sum video.Block
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	var fa, fb, fsum video.Block
	Forward(a, &fa)
	Forward(b, &fb)
	Forward(&sum, &fsum)
	for i := range fsum {
		if d := fsum[i] - (fa[i] + fb[i]); d > 2 || d < -2 {
			t.Fatalf("coef %d: DCT(a+b)=%d, DCT(a)+DCT(b)=%d", i, fsum[i], fa[i]+fb[i])
		}
	}
}

// TestParseval checks approximate energy preservation (orthonormal
// basis): Σf² ≈ ΣF².
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randBlock(rng, -255, 255)
	var freq video.Block
	Forward(src, &freq)
	var es, ef float64
	for i := range src {
		es += float64(src[i]) * float64(src[i])
		ef += float64(freq[i]) * float64(freq[i])
	}
	if rel := math.Abs(es-ef) / es; rel > 0.01 {
		t.Fatalf("energy mismatch: spatial %.0f vs frequency %.0f (rel %.4f)", es, ef, rel)
	}
}

func TestCoefficientRange(t *testing.T) {
	// Worst-case inputs must stay inside the H.263 coefficient range.
	var src, dst video.Block
	for i := range src {
		src[i] = 255
	}
	Forward(&src, &dst)
	for i, v := range dst {
		if v < -2048 || v > 2047 {
			t.Fatalf("coef %d = %d outside [-2048, 2047]", i, v)
		}
	}
	if dst[0] != 2040 {
		t.Fatalf("max DC = %d, want 2040", dst[0])
	}
}

func TestInverseZeroBlock(t *testing.T) {
	var freq, rec video.Block
	Inverse(&freq, &rec)
	for i, v := range rec {
		if v != 0 {
			t.Fatalf("pixel %d = %d, want 0", i, v)
		}
	}
}

func TestClampCoef(t *testing.T) {
	if clampCoef(-3000) != -2048 || clampCoef(3000) != 2047 || clampCoef(5) != 5 {
		t.Fatal("clampCoef wrong")
	}
}

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randBlock(rng, -255, 255)
	var dst video.Block
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(src, &dst)
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randBlock(rng, -255, 255)
	var freq, dst video.Block
	Forward(src, &freq)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Inverse(&freq, &dst)
	}
}

func BenchmarkForwardRef(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randBlock(rng, -255, 255)
	var dst video.Block
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForwardRef(src, &dst)
	}
}

func BenchmarkInverseRef(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randBlock(rng, -255, 255)
	var freq, dst video.Block
	Forward(src, &freq)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InverseRef(&freq, &dst)
	}
}
