// Package dct implements the 8x8 forward and inverse discrete cosine
// transform used by the codec's transform stage.
//
// Per-block arithmetic is pure integer (fixed-point), matching the
// paper's implementation note that the H.263 encoder was built with
// fixed-point arithmetic because the target PDAs have no floating-point
// unit. The cosine basis is tabulated once at package init as 2.14
// fixed-point integers; each 2-D transform is two 1-D passes with a
// single rounding step at the end, accumulated in 64-bit integers (the
// idiomatic Go stand-in for a DSP's wide accumulator).
package dct

import (
	"math"

	"pbpair/internal/video"
)

// scaleBits is the fixed-point precision of the tabulated cosine basis.
const scaleBits = 14

// ctab[u][x] = round(2^scaleBits * c(u)/2 * cos((2x+1)uπ/16)), where
// c(0)=1/√2 and c(u)=1 otherwise — the orthonormal DCT-II basis.
var ctab [video.BlockSize][video.BlockSize]int32

func init() {
	n := float64(video.BlockSize)
	for u := 0; u < video.BlockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < video.BlockSize; x++ {
			v := cu / 2 * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*n))
			ctab[u][x] = int32(math.Round(v * (1 << scaleBits)))
		}
	}
}

// The folded kernels below exploit the exact ±symmetry of the cosine
// basis, ctab[v][y] == ±ctab[v][7−y] (+ for even v, − for odd v; a
// property of the table's int32 values, asserted by
// TestCosineTableSymmetry): forming row[y]±row[7−y] first halves the
// multiply count from 8 to 4 per output. The fold is bit-exact with
// the naive triple loops in dct_ref.go for every int32 input — it only
// redistributes int64 ring operations ((a+b)·c == a·c + b·c holds
// exactly mod 2^64), so even inputs far outside the nominal sample
// range produce identical bit patterns.

// Forward computes the 2-D DCT-II of src into dst. Input samples are
// expected in the residual range [-255, 255] or the intra range
// [0, 255]; output coefficients lie in [-2048, 2047] (the H.263
// coefficient range). Bit-exact with ForwardRef.
func Forward(src, dst *video.Block) {
	// Row pass: tmp[x][v] = Σ_y src[x][y] * ctab[v][y], scaled 2^14,
	// folded over y: even v see row[y]+row[7−y], odd v see the
	// difference.
	var tmp [video.BlockSize * video.BlockSize]int64
	for x := 0; x < video.BlockSize; x++ {
		row := src[x*video.BlockSize:]
		var s, d [4]int64
		for y := 0; y < 4; y++ {
			a, b := int64(row[y]), int64(row[7-y])
			s[y], d[y] = a+b, a-b
		}
		t := tmp[x*video.BlockSize:]
		for v := 0; v < video.BlockSize; v += 2 {
			c := &ctab[v]
			t[v] = s[0]*int64(c[0]) + s[1]*int64(c[1]) + s[2]*int64(c[2]) + s[3]*int64(c[3])
		}
		for v := 1; v < video.BlockSize; v += 2 {
			c := &ctab[v]
			t[v] = d[0]*int64(c[0]) + d[1]*int64(c[1]) + d[2]*int64(c[2]) + d[3]*int64(c[3])
		}
	}
	// Column pass: dst[u][v] = Σ_x tmp[x][v] * ctab[u][x], scaled 2^28,
	// rounded back to integers; same fold over x.
	const round = int64(1) << (2*scaleBits - 1)
	for v := 0; v < video.BlockSize; v++ {
		var s, d [4]int64
		for x := 0; x < 4; x++ {
			a, b := tmp[x*video.BlockSize+v], tmp[(7-x)*video.BlockSize+v]
			s[x], d[x] = a+b, a-b
		}
		for u := 0; u < video.BlockSize; u += 2 {
			c := &ctab[u]
			sum := s[0]*int64(c[0]) + s[1]*int64(c[1]) + s[2]*int64(c[2]) + s[3]*int64(c[3])
			dst[u*video.BlockSize+v] = clampCoef(int32((sum + round) >> (2 * scaleBits)))
		}
		for u := 1; u < video.BlockSize; u += 2 {
			c := &ctab[u]
			sum := d[0]*int64(c[0]) + d[1]*int64(c[1]) + d[2]*int64(c[2]) + d[3]*int64(c[3])
			dst[u*video.BlockSize+v] = clampCoef(int32((sum + round) >> (2 * scaleBits)))
		}
	}
}

// Inverse computes the 2-D inverse DCT (DCT-III) of src into dst.
// Coefficients in [-2048, 2047] reconstruct samples within ±1 of the
// original for any block that came out of Forward. Bit-exact with
// InverseRef.
func Inverse(src, dst *video.Block) {
	// Row pass over coefficient rows: tmp[u][y] = Σ_v src[u][v]*ctab[v][y].
	// Folded over the output index: with E[y] the even-v partial sum
	// and O[y] the odd-v partial sum, tmp[u][y] = E+O and
	// tmp[u][7−y] = E−O by the basis symmetry.
	var tmp [video.BlockSize * video.BlockSize]int64
	for u := 0; u < video.BlockSize; u++ {
		row := src[u*video.BlockSize:]
		r0, r1 := int64(row[0]), int64(row[1])
		r2, r3 := int64(row[2]), int64(row[3])
		r4, r5 := int64(row[4]), int64(row[5])
		r6, r7 := int64(row[6]), int64(row[7])
		t := tmp[u*video.BlockSize:]
		for y := 0; y < 4; y++ {
			e := r0*int64(ctab[0][y]) + r2*int64(ctab[2][y]) +
				r4*int64(ctab[4][y]) + r6*int64(ctab[6][y])
			o := r1*int64(ctab[1][y]) + r3*int64(ctab[3][y]) +
				r5*int64(ctab[5][y]) + r7*int64(ctab[7][y])
			t[y] = e + o
			t[7-y] = e - o
		}
	}
	const round = int64(1) << (2*scaleBits - 1)
	for y := 0; y < video.BlockSize; y++ {
		t0, t1 := tmp[0*video.BlockSize+y], tmp[1*video.BlockSize+y]
		t2, t3 := tmp[2*video.BlockSize+y], tmp[3*video.BlockSize+y]
		t4, t5 := tmp[4*video.BlockSize+y], tmp[5*video.BlockSize+y]
		t6, t7 := tmp[6*video.BlockSize+y], tmp[7*video.BlockSize+y]
		for x := 0; x < 4; x++ {
			e := t0*int64(ctab[0][x]) + t2*int64(ctab[2][x]) +
				t4*int64(ctab[4][x]) + t6*int64(ctab[6][x])
			o := t1*int64(ctab[1][x]) + t3*int64(ctab[3][x]) +
				t5*int64(ctab[5][x]) + t7*int64(ctab[7][x])
			dst[x*video.BlockSize+y] = int32((e + o + round) >> (2 * scaleBits))
			dst[(7-x)*video.BlockSize+y] = int32((e - o + round) >> (2 * scaleBits))
		}
	}
}

// clampCoef clamps a transform coefficient to the H.263 range.
func clampCoef(v int32) int32 {
	if v < -2048 {
		return -2048
	}
	if v > 2047 {
		return 2047
	}
	return v
}
