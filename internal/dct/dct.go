// Package dct implements the 8x8 forward and inverse discrete cosine
// transform used by the codec's transform stage.
//
// Per-block arithmetic is pure integer (fixed-point), matching the
// paper's implementation note that the H.263 encoder was built with
// fixed-point arithmetic because the target PDAs have no floating-point
// unit. The cosine basis is tabulated once at package init as 2.14
// fixed-point integers; each 2-D transform is two 1-D passes with a
// single rounding step at the end, accumulated in 64-bit integers (the
// idiomatic Go stand-in for a DSP's wide accumulator).
package dct

import (
	"math"

	"pbpair/internal/video"
)

// scaleBits is the fixed-point precision of the tabulated cosine basis.
const scaleBits = 14

// ctab[u][x] = round(2^scaleBits * c(u)/2 * cos((2x+1)uπ/16)), where
// c(0)=1/√2 and c(u)=1 otherwise — the orthonormal DCT-II basis.
var ctab [video.BlockSize][video.BlockSize]int32

func init() {
	n := float64(video.BlockSize)
	for u := 0; u < video.BlockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < video.BlockSize; x++ {
			v := cu / 2 * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*n))
			ctab[u][x] = int32(math.Round(v * (1 << scaleBits)))
		}
	}
}

// Forward computes the 2-D DCT-II of src into dst. Input samples are
// expected in the residual range [-255, 255] or the intra range
// [0, 255]; output coefficients lie in [-2048, 2047] (the H.263
// coefficient range).
func Forward(src, dst *video.Block) {
	// Row pass: tmp[x][v] = Σ_y src[x][y] * ctab[v][y], scaled 2^14.
	var tmp [video.BlockSize * video.BlockSize]int64
	for x := 0; x < video.BlockSize; x++ {
		row := src[x*video.BlockSize:]
		for v := 0; v < video.BlockSize; v++ {
			var sum int64
			for y := 0; y < video.BlockSize; y++ {
				sum += int64(row[y]) * int64(ctab[v][y])
			}
			tmp[x*video.BlockSize+v] = sum
		}
	}
	// Column pass: dst[u][v] = Σ_x tmp[x][v] * ctab[u][x], scaled 2^28,
	// rounded back to integers.
	const round = int64(1) << (2*scaleBits - 1)
	for v := 0; v < video.BlockSize; v++ {
		for u := 0; u < video.BlockSize; u++ {
			var sum int64
			for x := 0; x < video.BlockSize; x++ {
				sum += tmp[x*video.BlockSize+v] * int64(ctab[u][x])
			}
			dst[u*video.BlockSize+v] = clampCoef(int32((sum + round) >> (2 * scaleBits)))
		}
	}
}

// Inverse computes the 2-D inverse DCT (DCT-III) of src into dst.
// Coefficients in [-2048, 2047] reconstruct samples within ±1 of the
// original for any block that came out of Forward.
func Inverse(src, dst *video.Block) {
	// Row pass over coefficient rows: tmp[u][y] = Σ_v src[u][v]*ctab[v][y].
	var tmp [video.BlockSize * video.BlockSize]int64
	for u := 0; u < video.BlockSize; u++ {
		row := src[u*video.BlockSize:]
		for y := 0; y < video.BlockSize; y++ {
			var sum int64
			for v := 0; v < video.BlockSize; v++ {
				sum += int64(row[v]) * int64(ctab[v][y])
			}
			tmp[u*video.BlockSize+y] = sum
		}
	}
	const round = int64(1) << (2*scaleBits - 1)
	for y := 0; y < video.BlockSize; y++ {
		for x := 0; x < video.BlockSize; x++ {
			var sum int64
			for u := 0; u < video.BlockSize; u++ {
				sum += tmp[u*video.BlockSize+y] * int64(ctab[u][x])
			}
			dst[x*video.BlockSize+y] = int32((sum + round) >> (2 * scaleBits))
		}
	}
}

// clampCoef clamps a transform coefficient to the H.263 range.
func clampCoef(v int32) int32 {
	if v < -2048 {
		return -2048
	}
	if v > 2047 {
		return 2047
	}
	return v
}
