// Package stream defines the on-disk container for encoded sequences:
// a magic header followed by length-prefixed frame payloads. The
// length framing preserves the frame boundaries the loss simulator and
// decoder operate on (the network layer drops whole frames/packets, so
// files must round-trip per frame, not as one blob).
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var magic = [4]byte{'P', 'B', 'P', 'S'}

// ErrBadMagic reports a stream that is not a PBPS container.
var ErrBadMagic = errors.New("stream: not a PBPS container")

// maxFrameBytes guards against corrupt length prefixes.
const maxFrameBytes = 64 << 20

// Writer appends encoded frames to a container.
type Writer struct {
	w      *bufio.Writer
	frames int
	header bool
}

// NewWriter returns a container writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteFrame appends one encoded frame payload.
func (w *Writer) WriteFrame(data []byte) error {
	if !w.header {
		if _, err := w.w.Write(magic[:]); err != nil {
			return fmt.Errorf("stream: write header: %w", err)
		}
		w.header = true
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("stream: write frame length: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("stream: write frame payload: %w", err)
	}
	w.frames++
	return nil
}

// Frames returns the number of frames written.
func (w *Writer) Frames() int { return w.frames }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("stream: flush: %w", err)
	}
	return nil
}

// Reader iterates the frames of a container.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the container header and returns a frame
// iterator.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: read header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// ReadFrame returns the next frame payload, or io.EOF after the last.
func (r *Reader) ReadFrame() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("stream: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("stream: frame length %d exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, fmt.Errorf("stream: read frame payload: %w", err)
	}
	return data, nil
}
