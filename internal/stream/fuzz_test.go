package stream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary container bytes must never panic and never
// allocate absurd frame buffers; every parse either yields frames or a
// clean error/EOF.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame([]byte("hello")); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteFrame(bytes.Repeat([]byte{7}, 300)); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PBPS"))
	f.Add([]byte("PBPS\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			frame, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(frame) > maxFrameBytes {
				t.Fatalf("oversized frame %d accepted", len(frame))
			}
		}
	})
}
