package stream

import (
	"bytes"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	frames := [][]byte{
		[]byte("frame zero"),
		{},
		bytes.Repeat([]byte{0xAB}, 3000),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if w.Frames() != 3 {
		t.Fatalf("Frames() = %d", w.Frames())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("past end: %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("PB"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestCorruptLength(t *testing.T) {
	data := append([]byte("PBPS"), 0xFF, 0xFF, 0xFF, 0xFF)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("absurd length accepted")
	}
}
