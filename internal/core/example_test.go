package core_test

import (
	"fmt"
	"log"

	"pbpair/internal/codec"
	"pbpair/internal/core"
)

// ExamplePBPAIR_Update walks the §3.1.3 probability update on a tiny
// 2×2 macroblock grid with the Formula 3 approximation (similarity
// disabled), so every number is hand-checkable: at PLR α = 0.1 an
// intra macroblock resets to 1−α = 0.9 while an inter macroblock decays
// to (1−α)·σ of its reference. Once σ falls below Intra_Th the PreME
// hook orders a refresh — intra coding before motion estimation runs,
// which is where PBPAIR's energy saving comes from.
func ExamplePBPAIR_Update() {
	p, err := core.New(core.Config{
		Rows: 2, Cols: 2,
		IntraTh:           0.8,
		PLR:               0.1,
		DisableSimilarity: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same plan every frame: macroblock 0 coded intra, the rest
	// inter predicting from their co-located reference (zero MV).
	plan := &codec.FramePlan{Rows: 2, Cols: 2, Type: codec.PFrame, MBs: []codec.MBPlan{
		{Mode: codec.ModeIntra}, {Mode: codec.ModeInter},
		{Mode: codec.ModeInter}, {Mode: codec.ModeInter},
	}}
	for frame := 0; frame < 3; frame++ {
		p.Update(&codec.FrameResult{FrameNum: frame, Plan: plan})
		fmt.Printf("after frame %d: mean sigma %.3f\n%s", frame, p.MeanSigma(), p.SigmaMap())
	}
	fmt.Printf("inter MB due for refresh (sigma < 0.8): %v\n",
		p.PreME(&codec.MBContext{Index: 3}))
	// Output:
	// after frame 0: mean sigma 0.900
	// 99
	// 99
	// after frame 1: mean sigma 0.833
	// 98
	// 88
	// after frame 2: mean sigma 0.772
	// 97
	// 77
	// inter MB due for refresh (sigma < 0.8): true
}
