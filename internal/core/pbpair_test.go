package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbpair/internal/codec"
	"pbpair/internal/motion"
	"pbpair/internal/video"
)

func mustNew(t *testing.T, cfg Config) *PBPAIR {
	t.Helper()
	if cfg.Rows == 0 {
		cfg.Rows = 9
	}
	if cfg.Cols == 0 {
		cfg.Cols = 11
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero grid", Config{IntraTh: 0.5}},
		{"negative th", Config{Rows: 9, Cols: 11, IntraTh: -0.1}},
		{"th above one", Config{Rows: 9, Cols: 11, IntraTh: 1.1}},
		{"negative plr", Config{Rows: 9, Cols: 11, IntraTh: 0.5, PLR: -0.2}},
		{"plr above one", Config{Rows: 9, Cols: 11, IntraTh: 0.5, PLR: 1.2}},
	}
	for _, tt := range tests {
		if _, err := New(tt.cfg); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestInitialMatrixErrorFree(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0.5, PLR: 0.1})
	for i, s := range p.Sigma() {
		if s != 1 {
			t.Fatalf("σ[%d] = %v, want 1 (error-free start)", i, s)
		}
	}
	if p.MeanSigma() != 1 {
		t.Fatalf("MeanSigma = %v", p.MeanSigma())
	}
}

func TestPreMEThreshold(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0.5, PLR: 0.1})
	p.sigma[7] = 0.3
	p.sigma[8] = 0.5
	if !p.PreME(&codec.MBContext{Index: 7}) {
		t.Fatal("σ=0.3 < Th=0.5 should force intra")
	}
	if p.PreME(&codec.MBContext{Index: 8}) {
		t.Fatal("σ=0.5 is not strictly below Th=0.5")
	}
}

// allInterResult builds a FrameResult where every MB was coded inter
// with the given vector; PrevRecon nil so similarity contributes zero.
func allInterResult(rows, cols int, mv motion.Vector) *codec.FrameResult {
	plan := &codec.FramePlan{Rows: rows, Cols: cols, MBs: make([]codec.MBPlan, rows*cols)}
	for i := range plan.MBs {
		plan.MBs[i] = codec.MBPlan{Mode: codec.ModeInter, MV: mv}
	}
	return &codec.FrameResult{Plan: plan}
}

// TestFormula3Decay verifies the §3.2 closed form: with zero
// similarity and all-inter zero-motion coding, σᵏ = (1−α)ᵏ.
func TestFormula3Decay(t *testing.T) {
	const alpha = 0.1
	p := mustNew(t, Config{IntraTh: 0, PLR: alpha, DisableSimilarity: true})
	for k := 1; k <= 10; k++ {
		p.Update(allInterResult(9, 11, motion.Vector{}))
		want := math.Pow(1-alpha, float64(k))
		for i, s := range p.Sigma() {
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("frame %d σ[%d] = %v, want (1−α)^%d = %v", k, i, s, k, want)
			}
		}
	}
}

// TestIntraRefreshRestoresSigma: Formula 2 with sim=0 gives σ = 1−α
// for an intra MB regardless of how degraded it was.
func TestIntraRefreshRestoresSigma(t *testing.T) {
	const alpha = 0.2
	p := mustNew(t, Config{IntraTh: 0, PLR: alpha, DisableSimilarity: true})
	for i := range p.sigma {
		p.sigma[i] = 0.01
	}
	plan := &codec.FramePlan{Rows: 9, Cols: 11, MBs: make([]codec.MBPlan, 99)}
	for i := range plan.MBs {
		plan.MBs[i].Mode = codec.ModeIntra
	}
	p.Update(&codec.FrameResult{Plan: plan})
	for i, s := range p.Sigma() {
		if math.Abs(s-(1-alpha)) > 1e-12 {
			t.Fatalf("σ[%d] = %v, want %v", i, s, 1-alpha)
		}
	}
}

// TestSigmaBoundsProperty: the DESIGN.md invariant — for any α, any
// mode pattern, any motion vectors and any starting matrix, every σ
// stays in [0, 1].
func TestSigmaBoundsProperty(t *testing.T) {
	prop := func(seed int64, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := float64(alphaRaw) / 255
		p, err := New(Config{Rows: 9, Cols: 11, IntraTh: 0.5, PLR: alpha})
		if err != nil {
			return false
		}
		for i := range p.sigma {
			p.sigma[i] = rng.Float64()
		}
		plan := &codec.FramePlan{Rows: 9, Cols: 11, MBs: make([]codec.MBPlan, 99)}
		for i := range plan.MBs {
			switch rng.Intn(3) {
			case 0:
				plan.MBs[i].Mode = codec.ModeIntra
			case 1:
				plan.MBs[i].Mode = codec.ModeSkip
			default:
				plan.MBs[i].Mode = codec.ModeInter
				plan.MBs[i].MV = motion.Vector{X: rng.Intn(31) - 15, Y: rng.Intn(31) - 15}
			}
		}
		// Random reconstructions exercise the similarity path.
		prev := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
		cur := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
		for i := range prev.Y {
			prev.Y[i] = uint8(rng.Intn(256))
			cur.Y[i] = uint8(rng.Intn(256))
		}
		p.Update(&codec.FrameResult{Plan: plan, PrevRecon: prev, Recon: cur})
		for _, s := range p.Sigma() {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestInterInheritsMinOfRelated: an inter MB's σ is driven by the
// weakest previous-frame MB its reference overlaps.
func TestInterInheritsMinOfRelated(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0, PLR: 0.0, DisableSimilarity: true})
	// Damage MB (2,3); α=0 makes σᵏ = min(related σ) exactly.
	p.sigma[2*11+3] = 0.25

	// MB (2,4) with mv.X = -8 overlaps columns 3 and 4.
	plan := &codec.FramePlan{Rows: 9, Cols: 11, MBs: make([]codec.MBPlan, 99)}
	for i := range plan.MBs {
		plan.MBs[i].Mode = codec.ModeSkip // co-located references
	}
	idx := 2*11 + 4
	plan.MBs[idx].Mode = codec.ModeInter
	plan.MBs[idx].MV = motion.Vector{X: -8}
	p.Update(&codec.FrameResult{Plan: plan})

	if got := p.Sigma()[idx]; got != 0.25 {
		t.Fatalf("σ of MB referencing damaged area = %v, want 0.25", got)
	}
	// A co-located skip MB far away keeps σ = 1.
	if got := p.Sigma()[5*11+5]; got != 1 {
		t.Fatalf("unrelated MB σ = %v, want 1", got)
	}
}

// TestMEPenaltyPenalisesDamagedReference reproduces Figure 3: with the
// penalty active, a candidate pointing at a damaged MB must cost more
// than its raw SAD, and an undamaged candidate with equal SAD wins.
func TestMEPenaltyPenalisesDamagedReference(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0, PLR: 0.1})
	p.sigma[0] = 0.2 // MB (0,0) damaged

	pen := p.MEPenalty(&codec.MBContext{Row: 0, Col: 1, Index: 1})
	if pen == nil {
		t.Fatal("MEPenalty returned nil with PLR > 0")
	}
	damaged := pen(motion.Vector{X: -16}) // references MB (0,0)
	clean := pen(motion.Vector{X: 0})     // references MB (0,1), σ=1
	if damaged <= clean {
		t.Fatalf("damaged reference penalty %d not above clean penalty %d", damaged, clean)
	}
	if clean != 0 {
		t.Fatalf("clean reference should be unpenalised: penalty %d", clean)
	}
	if damaged < 0 {
		t.Fatal("penalty must never be negative (pruning contract)")
	}
}

func TestMEPenaltyDisabled(t *testing.T) {
	zeroPLR := mustNew(t, Config{IntraTh: 0, PLR: 0})
	if zeroPLR.MEPenalty(&codec.MBContext{}) != nil {
		t.Fatal("PLR=0 should disable the penalty")
	}
	ablated := mustNew(t, Config{IntraTh: 0, PLR: 0.1, Lambda: -1})
	if ablated.MEPenalty(&codec.MBContext{}) != nil {
		t.Fatal("negative Lambda should disable the penalty")
	}
}

func TestSettersClamp(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0.5, PLR: 0.1})
	p.SetIntraTh(-2)
	if p.IntraTh() != 0 {
		t.Fatalf("IntraTh = %v, want 0", p.IntraTh())
	}
	p.SetIntraTh(7)
	if p.IntraTh() != 1 {
		t.Fatalf("IntraTh = %v, want 1", p.IntraTh())
	}
	p.SetPLR(-1)
	if p.PLR() != 0 {
		t.Fatalf("PLR = %v, want 0", p.PLR())
	}
	p.SetPLR(2)
	if p.PLR() != 1 {
		t.Fatalf("PLR = %v, want 1", p.PLR())
	}
}

func TestHigherPLRDecaysFaster(t *testing.T) {
	// §3.2: as α grows with fixed Intra_Th, σ decreases faster, so more
	// intra MBs get generated.
	low := mustNew(t, Config{IntraTh: 0, PLR: 0.05, DisableSimilarity: true})
	high := mustNew(t, Config{IntraTh: 0, PLR: 0.3, DisableSimilarity: true})
	for k := 0; k < 5; k++ {
		low.Update(allInterResult(9, 11, motion.Vector{}))
		high.Update(allInterResult(9, 11, motion.Vector{}))
	}
	if high.MeanSigma() >= low.MeanSigma() {
		t.Fatalf("higher PLR should decay σ faster: %.4f vs %.4f",
			high.MeanSigma(), low.MeanSigma())
	}
}

func TestFloorDiv(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 16, 0}, {15, 16, 0}, {16, 16, 1}, {-1, 16, -1}, {-16, 16, -1}, {-17, 16, -2},
	}
	for _, tt := range tests {
		if got := floorDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSimilarityIdenticalMBs(t *testing.T) {
	f := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	f.Fill(120, 128, 128)
	if sim := similarity(f, f, 2, 3, DefaultSimilarityScale); sim != 1 {
		t.Fatalf("identical MBs similarity = %v, want 1", sim)
	}
	g := f.Clone()
	for i := range g.Y {
		g.Y[i] = 0
	}
	f.Fill(255, 128, 128)
	if sim := similarity(f, g, 2, 3, DefaultSimilarityScale); sim != 0 {
		t.Fatalf("maximally different MBs similarity = %v, want 0", sim)
	}
}

func TestSimilaritySlowsDecay(t *testing.T) {
	// With a high-similarity previous frame (good concealment), σ must
	// decay slower than the Formula 3 approximation.
	const alpha = 0.2
	withSim := mustNew(t, Config{IntraTh: 0, PLR: alpha})
	noSim := mustNew(t, Config{IntraTh: 0, PLR: alpha, DisableSimilarity: true})

	frame := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	frame.Fill(100, 128, 128)
	res := allInterResult(9, 11, motion.Vector{})
	res.PrevRecon = frame
	res.Recon = frame.Clone() // identical → sim = 1
	for k := 0; k < 5; k++ {
		withSim.Update(res)
		noSim.Update(allInterResult(9, 11, motion.Vector{}))
	}
	if withSim.MeanSigma() <= noSim.MeanSigma() {
		t.Fatalf("similarity should slow decay: %.4f vs %.4f",
			withSim.MeanSigma(), noSim.MeanSigma())
	}
}

func TestPlanFrameAlwaysP(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0.5, PLR: 0.1})
	for k := 0; k < 10; k++ {
		if p.PlanFrame(k) != codec.PFrame {
			t.Fatal("PBPAIR must never request I-frames")
		}
	}
}

func TestSigmaMap(t *testing.T) {
	p := mustNew(t, Config{IntraTh: 0.5, PLR: 0.1})
	p.sigma[0] = 0.05
	p.sigma[1] = 0.55
	m := p.SigmaMap()
	lines := 0
	for _, c := range m {
		if c == '\n' {
			lines++
		}
	}
	if lines != 9 {
		t.Fatalf("SigmaMap has %d lines, want 9", lines)
	}
	if m[0] != '0' || m[1] != '5' || m[2] != '9' {
		t.Fatalf("SigmaMap digits wrong: %q", m[:3])
	}
}

func TestParanoiaValidation(t *testing.T) {
	if _, err := New(Config{Rows: 9, Cols: 11, IntraTh: 0.5, Paranoia: -0.1}); err == nil {
		t.Fatal("negative paranoia accepted")
	}
	if _, err := New(Config{Rows: 9, Cols: 11, IntraTh: 0.5, Paranoia: 1}); err == nil {
		t.Fatal("paranoia 1 accepted")
	}
}

// TestParanoiaBoundsStaleness: with paranoia on, even the static fixed
// point (sim = 1, all skip) decays below any threshold eventually,
// guaranteeing a refresh; without it, σ holds forever.
func TestParanoiaBoundsStaleness(t *testing.T) {
	static := func(paranoia float64) float64 {
		p := mustNew(t, Config{IntraTh: 0.9, PLR: 0.1, Paranoia: paranoia})
		frame := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
		frame.Fill(100, 128, 128)
		res := allInterResult(9, 11, motion.Vector{})
		res.PrevRecon = frame
		res.Recon = frame.Clone() // sim = 1: the fixed-point case
		for k := 0; k < 60; k++ {
			p.Update(res)
		}
		return p.MeanSigma()
	}
	without := static(0)
	with := static(0.01)
	t.Logf("σ after 60 static frames: paranoia off %.4f, on %.4f", without, with)
	if without < 0.99 {
		t.Fatalf("paper-faithful σ should hold at the fixed point, got %.4f", without)
	}
	if with >= 0.9 {
		t.Fatalf("paranoia did not decay σ below the threshold: %.4f", with)
	}
}
