// Package core implements PBPAIR — Probability Based Power Aware Intra
// Refresh — the paper's contribution (Section 3).
//
// PBPAIR maintains, per macroblock, a probability of correctness
// σ ∈ [0, 1]: the probability that the decoder's reconstruction of the
// macroblock is intact given the network packet-loss rate α and the
// prediction chain that produced it. The matrix drives two decisions:
//
//  1. Encoding-mode selection (§3.1.1): σ < Intra_Th ⇒ code the
//     macroblock intra, *before* motion estimation — skipping ME
//     entirely, which is where the energy saving comes from.
//  2. Motion-vector selection (§3.1.2): candidates referencing
//     low-probability areas are penalised, so an error-free candidate
//     with slightly higher SAD beats a likely-damaged one (Figure 3).
//
// After each frame the matrix is re-evaluated (§3.1.3):
//
//	inter: σᵏ = (1−α)·min(σ of related MBs) + α·sim·σᵏ⁻¹   (Formula 1)
//	intra: σᵏ = (1−α)·1                     + α·sim·σᵏ⁻¹   (Formula 2)
//
// where "related MBs" are the previous-frame macroblocks overlapped by
// the motion-compensated reference block and sim is the similarity
// factor of the decoder's concealment (for copy concealment:
// 1 − SAD(co-located)/SAD_max).
package core

import (
	"fmt"

	"pbpair/internal/codec"
	"pbpair/internal/motion"
	"pbpair/internal/video"
)

// Config parameterises a PBPAIR planner.
type Config struct {
	// Rows, Cols is the macroblock grid (9x11 for QCIF).
	Rows, Cols int

	// IntraTh is the user-expectation threshold on σ (§3.1): 0 disables
	// refresh entirely (maximum compression), 1 forces every macroblock
	// intra (maximum resilience). Must lie in [0, 1].
	IntraTh float64

	// PLR is the network packet-loss rate α in [0, 1].
	PLR float64

	// Lambda scales the probability penalty in motion-vector selection.
	// The candidate cost is SAD + Lambda·α·(1−σ_ref)·PenaltyScale.
	// Zero selects DefaultLambda; negative disables the penalty
	// (ablation: plain SAD selection).
	Lambda float64

	// PenaltyScale converts a probability deficit into SAD units. Zero
	// selects DefaultPenaltyScale (the maximum possible 16x16 SAD).
	PenaltyScale float64

	// DisableSimilarity drops the similarity term from the update
	// formulas (the Formula 3 approximation of §3.2) — an ablation and
	// the basis of the adaptive controller's closed form.
	DisableSimilarity bool

	// SimilarityScale is the per-pixel mean absolute difference at
	// which copy concealment is considered useless (sim = 0). The
	// paper derives sim "from [the] SAD value between macroblock
	// m^{k-1} and m^k" without fixing the normalisation; 255 would
	// saturate sim near 1 for all natural content, so the default
	// (DefaultSimilarityScale) uses a perceptual scale instead. Zero
	// selects the default.
	SimilarityScale float64

	// Paranoia, if positive, multiplies every σ by (1 − Paranoia) each
	// frame, bounding how long any macroblock can go unrefreshed. The
	// paper's formulas have a fixed point for perfectly-concealable
	// static content (σ never falls, so refresh never fires) — correct
	// in expectation but permanent in the unlucky tail where the
	// initial intra coding AND its repair are both lost: the encoder
	// then believes the region healthy forever. A paranoia of p forces
	// a refresh roughly every ln(σ*/Th)/p frames at the cost of
	// periodic intra traffic on static content. Zero (the default) is
	// paper-faithful.
	Paranoia float64
}

// Defaults for the motion-penalty reconstruction (the exact formula is
// in unavailable tech report [15]; see DESIGN.md).
const (
	DefaultLambda       = 1.0
	DefaultPenaltyScale = 255 * video.MBSize * video.MBSize // max 16x16 SAD

	// DefaultSimilarityScale: a co-located mean absolute difference of
	// 32 grey levels (out of 255) makes copy concealment useless.
	DefaultSimilarityScale = 32
)

// Normalized returns cfg with zero-value knobs replaced by their
// documented defaults (Lambda, PenaltyScale, SimilarityScale). New
// applies it before validating, so two configs with equal Normalized
// forms build planners with identical behaviour — the canonical form
// the experiment layer fingerprints for its bitstream cache.
func (cfg Config) Normalized() Config {
	if cfg.Lambda == 0 {
		cfg.Lambda = DefaultLambda
	}
	if cfg.PenaltyScale == 0 {
		cfg.PenaltyScale = DefaultPenaltyScale
	}
	if cfg.SimilarityScale == 0 {
		cfg.SimilarityScale = DefaultSimilarityScale
	}
	return cfg
}

// PBPAIR is the planner. It implements codec.ModePlanner.
type PBPAIR struct {
	cfg   Config
	sigma []float64 // σ of the previous frame's matrix, row-major
	plr   float64   // current α (adjustable via SetPLR)
	th    float64   // current Intra_Th (adjustable via SetIntraTh)
}

var _ codec.ModePlanner = (*PBPAIR)(nil)

// New validates cfg and returns a PBPAIR planner with an error-free
// initial matrix (σ = 1 everywhere, the paper's start state).
func New(cfg Config) (*PBPAIR, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("core: invalid macroblock grid %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.IntraTh < 0 || cfg.IntraTh > 1 {
		return nil, fmt.Errorf("core: Intra_Th %v outside [0, 1]", cfg.IntraTh)
	}
	if cfg.PLR < 0 || cfg.PLR > 1 {
		return nil, fmt.Errorf("core: PLR %v outside [0, 1]", cfg.PLR)
	}
	cfg = cfg.Normalized()
	if cfg.SimilarityScale < 0 {
		return nil, fmt.Errorf("core: similarity scale %v must be positive", cfg.SimilarityScale)
	}
	if cfg.Paranoia < 0 || cfg.Paranoia >= 1 {
		return nil, fmt.Errorf("core: paranoia %v outside [0, 1)", cfg.Paranoia)
	}
	p := &PBPAIR{
		cfg:   cfg,
		sigma: make([]float64, cfg.Rows*cfg.Cols),
		plr:   cfg.PLR,
		th:    cfg.IntraTh,
	}
	for i := range p.sigma {
		p.sigma[i] = 1
	}
	return p, nil
}

// Name implements codec.ModePlanner.
func (*PBPAIR) Name() string { return "PBPAIR" }

// Clone returns an independent deep copy of the planner: same
// configuration, same correctness matrix, same α and Intra_Th.
// Mutations of either copy never affect the other. The serving layer's
// encode farm forks a session lineage by cloning its planner alongside
// the encoder (codec.Encoder.Clone) so a diverging session continues
// bit-exactly from the shared state.
func (p *PBPAIR) Clone() *PBPAIR {
	cp := &PBPAIR{
		cfg:   p.cfg,
		sigma: make([]float64, len(p.sigma)),
		plr:   p.plr,
		th:    p.th,
	}
	copy(cp.sigma, p.sigma)
	return cp
}

// IntraTh returns the current threshold.
func (p *PBPAIR) IntraTh() float64 { return p.th }

// SetIntraTh adjusts the threshold at runtime — the knob the §3.2
// power-awareness extension (and the adapt package) turns. Values are
// clamped to [0, 1].
func (p *PBPAIR) SetIntraTh(th float64) {
	if th < 0 {
		th = 0
	}
	if th > 1 {
		th = 1
	}
	p.th = th
}

// PLR returns the current packet-loss rate α.
func (p *PBPAIR) PLR() float64 { return p.plr }

// SetPLR updates α from network feedback. Values are clamped to [0, 1].
func (p *PBPAIR) SetPLR(alpha float64) {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	p.plr = alpha
}

// Sigma returns a copy of the current correctness matrix, row-major.
func (p *PBPAIR) Sigma() []float64 {
	out := make([]float64, len(p.sigma))
	copy(out, p.sigma)
	return out
}

// SigmaMap renders the correctness matrix as an ASCII heat map, one
// digit per macroblock: '9' means σ ≥ 0.9 (healthy), '0' means σ < 0.1
// (about to refresh). Used by debugging output and the examples.
func (p *PBPAIR) SigmaMap() string {
	buf := make([]byte, 0, (p.cfg.Cols+1)*p.cfg.Rows)
	for r := 0; r < p.cfg.Rows; r++ {
		for c := 0; c < p.cfg.Cols; c++ {
			d := int(p.sigma[r*p.cfg.Cols+c] * 10)
			if d > 9 {
				d = 9
			}
			if d < 0 {
				d = 0
			}
			buf = append(buf, byte('0'+d))
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

// MeanSigma returns the average probability of correctness — a scalar
// view of how robust the encoder currently believes the stream is.
func (p *PBPAIR) MeanSigma() float64 {
	var sum float64
	for _, v := range p.sigma {
		sum += v
	}
	return sum / float64(len(p.sigma))
}

// PlanFrame implements codec.ModePlanner: PBPAIR never inserts
// I-frames — refresh is distributed across macroblocks.
func (*PBPAIR) PlanFrame(int) codec.FrameType { return codec.PFrame }

// PreME implements the §3.1.1 early decision: a macroblock whose
// probability of correctness has fallen below Intra_Th is coded intra
// with no motion estimation.
func (p *PBPAIR) PreME(ctx *codec.MBContext) bool {
	return p.sigma[ctx.Index] < p.th
}

// MEPenalty implements the §3.1.2 probability-aware motion-vector
// selection: candidates are scored SAD + λ·α·(1 − σ_ref(mv))·scale,
// where σ_ref(mv) is the minimum correctness of the previous-frame
// macroblocks the candidate block overlaps. The penalty depends only
// on the vector, so the search's early-termination pruning stays
// exact.
func (p *PBPAIR) MEPenalty(ctx *codec.MBContext) motion.PenaltyFunc {
	if p.cfg.Lambda < 0 || p.plr == 0 {
		return nil
	}
	row, col := ctx.Row, ctx.Col
	weight := p.cfg.Lambda * p.plr * p.cfg.PenaltyScale
	return func(mv motion.Vector) int32 {
		deficit := 1 - p.relatedMin(row, col, mv)
		penalty := int32(weight * deficit)
		if penalty < 0 {
			penalty = 0
		}
		return penalty
	}
}

// relatedMin returns min σ over the previous-frame macroblocks
// overlapped by the reference block of macroblock (row, col) displaced
// by mv — the "related MBs" of Formula 1.
func (p *PBPAIR) relatedMin(row, col int, mv motion.Vector) float64 {
	x := col*video.MBSize + mv.X
	y := row*video.MBSize + mv.Y
	c0 := floorDiv(x, video.MBSize)
	c1 := floorDiv(x+video.MBSize-1, video.MBSize)
	r0 := floorDiv(y, video.MBSize)
	r1 := floorDiv(y+video.MBSize-1, video.MBSize)
	minSigma := 1.0
	for r := r0; r <= r1; r++ {
		if r < 0 || r >= p.cfg.Rows {
			continue
		}
		for c := c0; c <= c1; c++ {
			if c < 0 || c >= p.cfg.Cols {
				continue
			}
			if s := p.sigma[r*p.cfg.Cols+c]; s < minSigma {
				minSigma = s
			}
		}
	}
	return minSigma
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// PostME implements codec.ModePlanner. PBPAIR makes no post-ME
// revisions: its whole point is deciding before ME.
func (*PBPAIR) PostME(*codec.FramePlan) {}

// Update re-evaluates the correctness matrix from the encoded frame
// (Formulas 1 and 2). The similarity factor models the decoder's copy
// concealment: sim = 1 − SAD(co-located previous vs current
// reconstruction)/SAD_max, clamped to [0, 1].
func (p *PBPAIR) Update(result *codec.FrameResult) {
	alpha := p.plr
	plan := result.Plan
	next := make([]float64, len(p.sigma))
	for i := range plan.MBs {
		row, col := i/plan.Cols, i%plan.Cols
		sim := 0.0
		if !p.cfg.DisableSimilarity && result.PrevRecon != nil {
			sim = similarity(result.PrevRecon, result.Recon, row, col, p.cfg.SimilarityScale)
		}
		prev := p.sigma[i]
		var s float64
		switch plan.MBs[i].Mode {
		case codec.ModeIntra:
			s = (1-alpha)*1 + alpha*sim*prev
		default: // inter or skip: prediction chains through related MBs
			s = (1-alpha)*p.relatedMin(row, col, plan.MBs[i].MV) + alpha*sim*prev
		}
		if p.cfg.Paranoia > 0 {
			s *= 1 - p.cfg.Paranoia
		}
		next[i] = clamp01(s)
	}
	copy(p.sigma, next)
}

// similarity is the copy-concealment similarity factor between the
// co-located macroblocks of two reconstructions: 1 at identity,
// falling linearly to 0 when the mean absolute difference reaches
// scale grey levels.
func similarity(prev, cur *video.Frame, row, col int, scale float64) float64 {
	x := col * video.MBSize
	y := row * video.MBSize
	w := cur.Width
	var sad int64
	for r := 0; r < video.MBSize; r++ {
		a := cur.Y[(y+r)*w+x:]
		b := prev.Y[(y+r)*w+x:]
		for i := 0; i < video.MBSize; i++ {
			d := int64(a[i]) - int64(b[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	mad := float64(sad) / (video.MBSize * video.MBSize)
	return clamp01(1 - mad/scale)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
