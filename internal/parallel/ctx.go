package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// cancelled no further indices are dispatched, although calls already
// in flight run to completion (fn is never interrupted mid-call, so
// index-addressed output slots are either fully written or untouched).
// It returns nil when all n calls completed and ctx.Err() when
// cancellation cut the iteration short. The serving layer's graceful
// shutdown leans on exactly this contract: stop starting work, finish
// what was started, then report whether the sweep was complete.
//
// ForEach remains the right choice for closed workloads that must
// always run to completion (the codec's intra-frame sharding, the
// deterministic experiment fan-out); ForEachCtx is for server-side
// callers whose lifetime is bounded by a request or process context.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if int(next.Load()) < n {
		return ctx.Err()
	}
	// All indices were claimed; the final claimants may have observed
	// cancellation only after finishing, in which case the iteration is
	// complete regardless.
	return nil
}

// MapCtx is Map with cooperative cancellation via ForEachCtx. On a
// clean run it returns the n results in index order. If any completed
// call returned an error, the error of the lowest failing index wins
// (the same deterministic choice Map makes), taking precedence over a
// cancellation error; otherwise a cut-short run returns (nil,
// ctx.Err()).
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	errs := make([]error, n)
	cancelled := ForEachCtx(ctx, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cancelled != nil {
		return nil, cancelled
	}
	return out, nil
}
