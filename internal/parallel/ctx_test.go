package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var ran atomic.Int64
		err := ForEachCtx(context.Background(), workers, 100, func(i int) {
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if got := ran.Load(); got != 100 {
			t.Fatalf("workers=%d: ran %d of 100 calls", workers, got)
		}
	}
}

func TestForEachCtxStopsDispatching(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 10000
		err := ForEachCtx(ctx, workers, n, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// In-flight calls finish but no new indices are dispatched once
		// every worker has seen the cancellation, so the count must stay
		// far below n (each worker can overshoot by at most one call).
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: ran all %d calls despite cancellation", workers, got)
		}
		cancel()
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForEachCtx(ctx, 4, 10, func(i int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A single dispatch racing the flag is permitted on the parallel
	// path; the serial path dispatches nothing.
	if err := ForEachCtx(ctx, 1, 10, func(i int) { t.Error("serial dispatch after cancel") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	_ = ran
}

func TestMapCtxOrderAndErrors(t *testing.T) {
	got, err := MapCtx(context.Background(), 3, 5, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}

	boom := errors.New("boom")
	if _, err := MapCtx(context.Background(), 3, 5, func(i int) (int, error) {
		if i >= 2 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("want fn error, got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 3, 5, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMapCtxEmpty(t *testing.T) {
	got, err := MapCtx(context.Background(), 3, 0, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("n=0: got (%v, %v), want (nil, nil)", got, err)
	}
}
