// Package parallel provides the bounded worker pool behind the
// repository's two levels of concurrency: the experiment fan-out
// (cmd/pbpair-sweep, -sim and -figures run independent (scheme, PLR,
// seed, sequence) configurations concurrently) and the encoder's
// intra-frame sharding (codec.Encoder splits motion estimation across
// macroblock-row shards).
//
// Key entry points: ForEach runs an indexed function over [0, n) on a
// bounded number of goroutines; Map does the same while collecting
// results into an order-preserving slice; Split partitions an index
// range into contiguous spans for shard-local accumulation.
//
// Invariant — determinism by construction: work distribution is the
// ONLY nondeterministic ingredient here, and none of it can leak into
// results. ForEach gives no ordering guarantee, so callers write
// result i to slot i of a pre-sized slice (Map enforces exactly that),
// and per-shard accumulators are merged in shard order after the pool
// drains. Map's error selection is by lowest index, not by arrival
// time. Consequently every caller in this repository produces
// byte-identical output for any worker count — the property the codec
// golden tests and the sweep CSV tests pin down.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool size: GOMAXPROCS, the number
// of OS threads the Go scheduler will actually run concurrently.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalises a worker-count knob against a job count: values
// <= 0 select DefaultWorkers, values above DefaultWorkers are capped
// to it (goroutines beyond GOMAXPROCS cannot run concurrently for this
// CPU-bound workload — they only add scheduling churn), and the result
// is clamped to [1, n] so a pool never holds idle goroutines (n <= 0
// yields 1).
func Workers(workers, n int) int {
	if max := DefaultWorkers(); workers <= 0 || workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach invokes fn(i) exactly once for every i in [0, n), using at
// most Workers(workers, n) goroutines, and returns when all calls have
// completed. Indices are claimed dynamically, so callers must not rely
// on any ordering between calls; determinism comes from writing
// outputs into index-addressed slots. With one worker (or n <= 1) fn
// runs on the calling goroutine with no synchronisation overhead.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the
// results in index order. All n calls run to completion even when some
// fail; if any call returned an error, Map returns nil and the error
// of the lowest failing index — a deterministic choice, unlike
// first-to-arrive.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Span is a contiguous half-open index range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Split partitions [0, n) into at most shards contiguous spans of
// near-equal size (sizes differ by at most one, larger spans first).
// It returns nil for n <= 0 and a single span for shards <= 1. The
// partition depends only on (n, shards), so per-shard accumulators
// merged in span order produce identical totals for any schedule.
func Split(n, shards int) []Span {
	if n <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	spans := make([]Span, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for i := range spans {
		size := base
		if i < rem {
			size++
		}
		spans[i] = Span{Lo: lo, Hi: lo + size}
		lo += size
	}
	return spans
}
