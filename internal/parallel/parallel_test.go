package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalisation(t *testing.T) {
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct {
		workers, n int
		want       int
	}{
		{0, 100, DefaultWorkers()},
		{-3, 100, DefaultWorkers()},
		{4, 100, min(4, DefaultWorkers())}, // capped at GOMAXPROCS
		{DefaultWorkers() + 7, 10000, DefaultWorkers()},
		{8, 3, min(min(8, DefaultWorkers()), 3)}, // capped at job count too
		{8, 0, 1},                                // degenerate job count
		{1, 100, 1},
	}
	for _, tc := range cases {
		if got := Workers(tc.workers, tc.n); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var running, peak int32
	var mu sync.Mutex
	ForEach(workers, n, func(int) {
		now := atomic.AddInt32(&running, 1)
		mu.Lock()
		if now > peak {
			peak = now
		}
		mu.Unlock()
		atomic.AddInt32(&running, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent calls, pool bounded at %d", peak, workers)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -5, func(int) { called = true })
	if called {
		t.Error("fn called for empty index range")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("index 7")
	errB := errors.New("index 31")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Errorf("workers=%d: got error %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (string, error) { return "", fmt.Errorf("never") })
	if err != nil || out != nil {
		t.Errorf("Map over empty range = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestSplitPartitions(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Span
	}{
		{0, 4, nil},
		{-1, 4, nil},
		{5, 1, []Span{{0, 5}}},
		{5, 0, []Span{{0, 5}}},
		{3, 8, []Span{{0, 1}, {1, 2}, {2, 3}}}, // shards capped at n
		{10, 3, []Span{{0, 4}, {4, 7}, {7, 10}}},
		{9, 3, []Span{{0, 3}, {3, 6}, {6, 9}}},
	}
	for _, tc := range cases {
		got := Split(tc.n, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("Split(%d, %d) = %v, want %v", tc.n, tc.shards, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Split(%d, %d)[%d] = %v, want %v", tc.n, tc.shards, i, got[i], tc.want[i])
			}
		}
	}
}

// TestSplitIsExhaustiveAndContiguous checks the partition invariant
// for a spread of sizes: spans are adjacent, ordered, non-empty and
// cover [0, n) exactly.
func TestSplitIsExhaustiveAndContiguous(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for shards := 1; shards <= 10; shards++ {
			spans := Split(n, shards)
			lo := 0
			for _, s := range spans {
				if s.Lo != lo || s.Len() < 1 {
					t.Fatalf("Split(%d, %d) = %v: bad span %v at offset %d", n, shards, spans, s, lo)
				}
				lo = s.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d, %d) covers [0, %d), want [0, %d)", n, shards, lo, n)
			}
		}
	}
}

// TestShardMergeDeterminism is the usage pattern the encoder relies
// on: per-shard accumulators merged in span order give the same total
// as a serial run, for any worker count.
func TestShardMergeDeterminism(t *testing.T) {
	const n = 97
	serial := 0
	for i := 0; i < n; i++ {
		serial += i * i
	}
	for _, workers := range []int{1, 2, 5, 16} {
		spans := Split(n, workers)
		sums := make([]int, len(spans))
		ForEach(len(spans), len(spans), func(shard int) {
			for i := spans[shard].Lo; i < spans[shard].Hi; i++ {
				sums[shard] += i * i
			}
		})
		total := 0
		for _, s := range sums {
			total += s
		}
		if total != serial {
			t.Errorf("workers=%d: sharded total %d != serial %d", workers, total, serial)
		}
	}
}
