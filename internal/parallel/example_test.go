package parallel_test

import (
	"fmt"

	"pbpair/internal/parallel"
)

// ExampleMap shows the fan-out pattern the experiment harness uses:
// independent jobs run on a bounded pool while results come back in
// job order, so tables and CSV output are identical to a serial run.
func ExampleMap() {
	plrs := []float64{0, 0.05, 0.1, 0.2}
	rows, err := parallel.Map(4, len(plrs), func(i int) (string, error) {
		// Stands in for one full encode/transmit/decode scenario.
		return fmt.Sprintf("plr=%.2f ok", plrs[i]), nil
	})
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// plr=0.00 ok
	// plr=0.05 ok
	// plr=0.10 ok
	// plr=0.20 ok
}

// ExampleSplit shows the intra-frame sharding pattern the encoder
// uses: contiguous row spans, one accumulator per shard, merged in
// span order so totals match the serial run exactly.
func ExampleSplit() {
	const mbRows = 9 // QCIF macroblock rows
	spans := parallel.Split(mbRows, 4)
	work := make([]int, len(spans))
	parallel.ForEach(len(spans), len(spans), func(shard int) {
		for row := spans[shard].Lo; row < spans[shard].Hi; row++ {
			work[shard] += row // stands in for per-row SAD statistics
		}
	})
	total := 0
	for _, w := range work {
		total += w
	}
	fmt.Println(len(spans), "shards, total", total)
	// Output:
	// 4 shards, total 36
}
