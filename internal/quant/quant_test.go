package quant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbpair/internal/video"
)

func TestClampQP(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {16, 16}, {31, 31}, {32, 31}, {100, 31},
	}
	for _, tt := range tests {
		if got := ClampQP(tt.in); got != tt.want {
			t.Errorf("ClampQP(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestZeroBlockStaysZero(t *testing.T) {
	var src, levels, rec video.Block
	for _, qp := range []int{1, 8, 31} {
		Inter(&src, &levels, qp)
		for i, v := range levels {
			if v != 0 {
				t.Fatalf("QP %d: inter level[%d] = %d", qp, i, v)
			}
		}
		DequantInter(&levels, &rec, qp)
		for i, v := range rec {
			if v != 0 {
				t.Fatalf("QP %d: inter rec[%d] = %d", qp, i, v)
			}
		}
	}
}

func TestIntraDCRoundTrip(t *testing.T) {
	var src, levels, rec video.Block
	for dc := int32(0); dc <= 2040; dc += 8 {
		src[0] = dc
		Intra(&src, &levels, 8)
		DequantIntra(&levels, &rec, 8)
		if d := rec[0] - dc; d > 4 || d < -4 {
			t.Fatalf("DC %d -> %d (|Δ|>4)", dc, rec[0])
		}
	}
}

// TestInterRoundTripBound: the reconstruction error of the dead-zone
// quantiser is bounded by 5·QP/2+1 for any coefficient — values inside
// the dead zone (|c| < 2.5·QP) reconstruct to 0, everything else lands
// within 1.5·QP of its bin's reconstruction point.
func TestInterRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, qp := range []int{1, 2, 5, 8, 15, 31} {
		bound := int32(5*qp/2 + 1)
		for trial := 0; trial < 200; trial++ {
			c := rng.Int31n(4096) - 2048
			var src, levels, rec video.Block
			src[0] = c
			Inter(&src, &levels, qp)
			DequantInter(&levels, &rec, qp)
			if d := rec[0] - c; d > bound || d < -bound {
				t.Fatalf("QP %d: %d -> %d (|Δ|=%d > %d)", qp, c, rec[0], d, bound)
			}
		}
	}
}

// TestIntraACRoundTripBound: intra AC uses plain truncation with step
// 2·QP, so error is bounded by 3·QP (truncation up to 2QP−1 plus the
// reconstruction offset).
func TestIntraACRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, qp := range []int{1, 4, 10, 31} {
		bound := int32(3 * qp)
		for trial := 0; trial < 200; trial++ {
			c := rng.Int31n(4096) - 2048
			var src, levels, rec video.Block
			src[1] = c
			Intra(&src, &levels, qp)
			DequantIntra(&levels, &rec, qp)
			if d := rec[1] - c; d > bound || d < -bound {
				t.Fatalf("QP %d: %d -> %d (|Δ|=%d > %d)", qp, c, rec[1], d, bound)
			}
		}
	}
}

func TestInterSignSymmetry(t *testing.T) {
	prop := func(c int32, qpRaw uint8) bool {
		qp := int(qpRaw%31) + 1
		c %= 2048
		var srcP, srcN, lvlP, lvlN video.Block
		srcP[0] = c
		srcN[0] = -c
		Inter(&srcP, &lvlP, qp)
		Inter(&srcN, &lvlN, qp)
		return lvlP[0] == -lvlN[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructOddEvenQP(t *testing.T) {
	// H.263: |rec| = QP(2|L|+1), minus 1 when QP even.
	if got := reconstruct(3, 5); got != 5*7 {
		t.Fatalf("odd QP: got %d, want 35", got)
	}
	if got := reconstruct(3, 6); got != 6*7-1 {
		t.Fatalf("even QP: got %d, want 41", got)
	}
	if got := reconstruct(-3, 6); got != -(6*7 - 1) {
		t.Fatalf("negative level: got %d, want -41", got)
	}
	if got := reconstruct(0, 6); got != 0 {
		t.Fatalf("zero level: got %d, want 0", got)
	}
}

func TestReconstructClamped(t *testing.T) {
	if got := reconstruct(1024, 31); got != 2047 {
		t.Fatalf("positive clamp: got %d", got)
	}
	if got := reconstruct(-1024, 31); got != -2047 {
		t.Fatalf("negative clamp: got %d", got)
	}
}

func TestLevelsClamped(t *testing.T) {
	var src, levels video.Block
	src[0] = 2047
	src[1] = -2048
	Inter(&src, &levels, 1)
	if levels[0] > maxLevel || levels[1] < -maxLevel {
		t.Fatalf("levels %d/%d exceed ±%d", levels[0], levels[1], maxLevel)
	}
}

func TestIntraDCClamped(t *testing.T) {
	var src, levels video.Block
	src[0] = -100
	Intra(&src, &levels, 8)
	if levels[0] != 0 {
		t.Fatalf("negative DC level = %d, want 0", levels[0])
	}
	src[0] = 2047
	Intra(&src, &levels, 8)
	if levels[0] > 255 {
		t.Fatalf("DC level = %d exceeds 255", levels[0])
	}
}

// TestQuantMonotone: larger QP never produces a larger level magnitude.
func TestQuantMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		c := rng.Int31n(4096) - 2048
		prev := int32(1 << 30)
		for qp := 1; qp <= 31; qp++ {
			var src, levels video.Block
			src[0] = c
			Inter(&src, &levels, qp)
			mag := levels[0]
			if mag < 0 {
				mag = -mag
			}
			if mag > prev {
				t.Fatalf("coef %d: level magnitude grew from %d to %d at QP %d", c, prev, mag, qp)
			}
			prev = mag
		}
	}
}
