// Package quant implements H.263-style scalar quantisation of DCT
// coefficients (the Q / DeQ stages of Figure 1 in the paper).
//
// The quantiser parameter QP ranges over [1, 31]. The intra DC
// coefficient uses a fixed step of 8 (H.263 §6.2.1); all other
// coefficients use a dead-zone quantiser with step 2·QP and the
// standard H.263 reconstruction rule with odd/even QP adjustment.
package quant

import "pbpair/internal/video"

// QP bounds from H.263.
const (
	MinQP = 1
	MaxQP = 31
)

// ClampQP forces qp into the legal [MinQP, MaxQP] range.
func ClampQP(qp int) int {
	if qp < MinQP {
		return MinQP
	}
	if qp > MaxQP {
		return MaxQP
	}
	return qp
}

// maxLevel bounds quantised levels so they always fit the entropy
// coder's level alphabet. With QP >= 1 and coefficients in ±2048 the
// natural level range is ±1024.
const maxLevel = 1024

// Intra quantises an intra-block coefficient array in place semantics:
// src holds DCT coefficients, dst receives levels. Index 0 is the DC
// coefficient (step 8, always coded); the rest use step 2·QP with no
// dead zone (H.263 intra rule level = coef / (2·QP)).
func Intra(src, dst *video.Block, qp int) {
	qp = ClampQP(qp)
	dst[0] = clampDC((src[0] + 4) >> 3)
	for i := 1; i < len(src); i++ {
		dst[i] = clampLevel(src[i] / int32(2*qp))
	}
}

// clampDC keeps the quantised DC inside the 8-bit fixed-length field
// used by the bitstream (1..254 in H.263; we allow 0..255).
func clampDC(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Inter quantises an inter (residual) block: every coefficient,
// including index 0, uses the dead-zone rule
// level = sign(coef) · (|coef| − QP/2) / (2·QP).
func Inter(src, dst *video.Block, qp int) {
	qp = ClampQP(qp)
	for i := range src {
		c := src[i]
		neg := c < 0
		if neg {
			c = -c
		}
		level := (c - int32(qp)/2) / int32(2*qp)
		if level < 0 {
			level = 0
		}
		if neg {
			level = -level
		}
		dst[i] = clampLevel(level)
	}
}

func clampLevel(v int32) int32 {
	if v < -maxLevel {
		return -maxLevel
	}
	if v > maxLevel {
		return maxLevel
	}
	return v
}

// DequantIntra reconstructs coefficients from intra levels.
func DequantIntra(src, dst *video.Block, qp int) {
	qp = ClampQP(qp)
	dst[0] = src[0] * 8
	for i := 1; i < len(src); i++ {
		dst[i] = reconstruct(src[i], qp)
	}
}

// DequantInter reconstructs coefficients from inter levels.
func DequantInter(src, dst *video.Block, qp int) {
	qp = ClampQP(qp)
	for i := range src {
		dst[i] = reconstruct(src[i], qp)
	}
}

// reconstruct applies the H.263 inverse quantisation rule:
// |rec| = QP·(2·|level|+1) for odd QP, QP·(2·|level|+1)−1 for even QP;
// zero levels reconstruct to zero. The result is clipped to the legal
// coefficient range.
func reconstruct(level int32, qp int) int32 {
	if level == 0 {
		return 0
	}
	neg := level < 0
	if neg {
		level = -level
	}
	rec := int32(qp) * (2*level + 1)
	if qp%2 == 0 {
		rec--
	}
	if rec > 2047 {
		rec = 2047
	}
	if neg {
		rec = -rec
	}
	if rec < -2048 {
		rec = -2048
	}
	return rec
}
