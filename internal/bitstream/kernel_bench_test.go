package bitstream

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks pairing the accumulator writer / byte-chunk reader
// with their bit-at-a-time references. Each op writes or reads a mixed
// schedule of widths (1..22 bits) resembling the codec's header + VLC
// traffic.

var benchWidths = [...]uint{1, 3, 8, 5, 12, 1, 22, 6, 2, 9}

func benchStream() []byte {
	rng := rand.New(rand.NewSource(12))
	var w Writer
	for i := 0; i < 4096; i++ {
		w.WriteBits(rng.Uint32(), benchWidths[i%len(benchWidths)])
	}
	out := w.Bytes()
	cp := make([]byte, len(out))
	copy(cp, out)
	return cp
}

func BenchmarkWriteBits(b *testing.B) {
	var w Writer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			w.Reset()
		}
		w.WriteBits(0xAC5F17, benchWidths[i%len(benchWidths)])
	}
}

func BenchmarkWriteBitsRef(b *testing.B) {
	var w RefWriter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			w.Reset()
		}
		w.WriteBits(0xAC5F17, benchWidths[i%len(benchWidths)])
	}
}

func BenchmarkReadBits(b *testing.B) {
	data := benchStream()
	r := NewReader(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadBits(benchWidths[i%len(benchWidths)]); err != nil {
			r = NewReader(data)
		}
	}
}

func BenchmarkReadBitsRef(b *testing.B) {
	data := benchStream()
	r := NewRefReader(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadBits(benchWidths[i%len(benchWidths)]); err != nil {
			r = NewRefReader(data)
		}
	}
}
