package bitstream

import "fmt"

// Reference (bit-at-a-time) writer and reader — the original
// implementations, kept exported as ground truth for the differential
// harness (TestBitstreamEquiv / FuzzBitstreamEquiv). They process one
// bit per loop iteration, which makes the MSB-first contract and the
// emulation-prevention byte boundary conditions obvious; the
// accumulator-based Writer/Reader must match them on every observable:
// emitted bytes, BitLen/BitPos, errors, and post-error state.

// RefWriter assembles a bitstream MSB-first one bit at a time. The
// zero value is ready to use.
type RefWriter struct {
	buf   []byte
	cur   uint8 // bits accumulated into the current byte
	nCur  uint  // number of valid bits in cur (0..7)
	zeros int   // consecutive payload zero bytes emitted (for escaping)
}

// appendPayload appends one completed payload byte, inserting an
// emulation-prevention 0x03 where the raw payload would otherwise form
// a start-code prefix.
func (w *RefWriter) appendPayload(b byte) {
	if w.zeros >= 2 && b <= 0x03 {
		w.buf = append(w.buf, 0x03)
		w.zeros = 0
	}
	w.buf = append(w.buf, b)
	if b == 0x00 {
		w.zeros++
	} else {
		w.zeros = 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 32]; bits of v above n are ignored.
func (w *RefWriter) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		bit := uint8(v>>uint(i)) & 1
		w.cur = w.cur<<1 | bit
		w.nCur++
		if w.nCur == 8 {
			w.appendPayload(w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

// WriteBit appends a single bit.
func (w *RefWriter) WriteBit(b uint8) { w.WriteBits(uint32(b&1), 1) }

// AlignByte pads the current byte with zero bits up to the next byte
// boundary. It is a no-op when already aligned.
func (w *RefWriter) AlignByte() {
	if w.nCur != 0 {
		w.cur <<= 8 - w.nCur
		w.appendPayload(w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteStartCode byte-aligns the stream and appends the raw 0x000001
// prefix followed by code.
func (w *RefWriter) WriteStartCode(code byte) {
	w.AlignByte()
	w.buf = append(w.buf, 0x00, 0x00, 0x01, code)
	w.zeros = 0
}

// BitLen returns the number of bits written so far.
func (w *RefWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes byte-aligns the stream and returns the accumulated buffer.
func (w *RefWriter) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset discards all written data, retaining capacity.
func (w *RefWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
	w.zeros = 0
}

// RefReader consumes a bitstream MSB-first one bit at a time,
// transparently removing emulation-prevention bytes from payload.
type RefReader struct {
	data  []byte
	pos   int  // next byte index
	bit   uint // bits already consumed from data[pos] (0..7)
	zeros int  // consecutive zero payload bytes consumed (for unescaping)
}

// NewRefReader returns a reference reader over data.
func NewRefReader(data []byte) *RefReader {
	return &RefReader{data: data}
}

// ReadBits reads n bits (n in [0, 32]) MSB-first.
func (r *RefReader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d", n))
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		if r.bit == 0 {
			// About to start a new byte: drop an escape byte if present.
			if r.zeros >= 2 && r.pos < len(r.data) && r.data[r.pos] == 0x03 {
				r.pos++
				r.zeros = 0
			}
			if r.pos >= len(r.data) {
				return 0, ErrUnexpectedEOF
			}
			if r.data[r.pos] == 0x00 {
				r.zeros++
			} else {
				r.zeros = 0
			}
		}
		if r.pos >= len(r.data) {
			return 0, ErrUnexpectedEOF
		}
		bit := (r.data[r.pos] >> (7 - r.bit)) & 1
		v = v<<1 | uint32(bit)
		r.bit++
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *RefReader) ReadBit() (uint8, error) {
	v, err := r.ReadBits(1)
	return uint8(v), err
}

// AlignByte skips to the next byte boundary.
func (r *RefReader) AlignByte() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}

// BitPos returns the number of bits consumed so far, counted in the
// escaped (on-wire) stream.
func (r *RefReader) BitPos() int { return r.pos*8 + int(r.bit) }

// Remaining returns the number of unread on-wire bits.
func (r *RefReader) Remaining() int { return len(r.data)*8 - r.BitPos() }
