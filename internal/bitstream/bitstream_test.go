package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBitsRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		vals []uint32
		bits []uint
	}{
		{"single bit", []uint32{1}, []uint{1}},
		{"byte", []uint32{0xAB}, []uint{8}},
		{"mixed widths", []uint32{1, 0, 5, 1023, 0xFFFFFFFF}, []uint{1, 3, 4, 10, 32}},
		{"zeros", []uint32{0, 0, 0}, []uint{7, 9, 13}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var w Writer
			for i, v := range tt.vals {
				w.WriteBits(v, tt.bits[i])
			}
			r := NewReader(w.Bytes())
			for i, want := range tt.vals {
				got, err := r.ReadBits(tt.bits[i])
				if err != nil {
					t.Fatalf("ReadBits(%d): %v", tt.bits[i], err)
				}
				mask := uint32(0xFFFFFFFF)
				if tt.bits[i] < 32 {
					mask = 1<<tt.bits[i] - 1
				}
				if got != want&mask {
					t.Fatalf("field %d: got %#x, want %#x", i, got, want&mask)
				}
			}
		})
	}
}

// TestRoundTripProperty: arbitrary sequences of (value, width) pairs
// round-trip exactly, including across the emulation-prevention layer.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		vals := make([]uint32, count)
		bits := make([]uint, count)
		var w Writer
		for i := range vals {
			bits[i] = uint(rng.Intn(32) + 1)
			vals[i] = rng.Uint32() & (uint32(1)<<bits[i] - 1)
			if bits[i] == 32 {
				vals[i] = rng.Uint32()
			}
			w.WriteBits(vals[i], bits[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(bits[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEmulationPrevention: payload full of zero bytes (the worst case
// for start-code emulation) must not contain a 0x000001 sequence and
// must round-trip.
func TestEmulationPrevention(t *testing.T) {
	var w Writer
	w.WriteStartCode(CodePicture)
	for i := 0; i < 64; i++ {
		w.WriteBits(0, 8)
	}
	w.WriteBits(0x01, 8) // would complete 00 00 01 without escaping
	data := w.Bytes()

	// The only start-code prefix must be the one explicitly written.
	count := bytes.Count(data, []byte{0x00, 0x00, 0x01})
	if count != 1 {
		t.Fatalf("found %d start-code prefixes, want 1", count)
	}

	r := NewReader(data)
	code, err := r.NextStartCode()
	if err != nil || code != CodePicture {
		t.Fatalf("NextStartCode = %#x, %v", code, err)
	}
	for i := 0; i < 64; i++ {
		v, err := r.ReadBits(8)
		if err != nil || v != 0 {
			t.Fatalf("payload byte %d: got %#x, err %v", i, v, err)
		}
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 0x01 {
		t.Fatalf("final byte: got %#x, err %v", v, err)
	}
}

// TestEmulationPreventionAllPatterns exercises every escaped byte value
// after a zero run.
func TestEmulationPreventionAllPatterns(t *testing.T) {
	for b := 0; b <= 4; b++ {
		var w Writer
		w.WriteBits(0, 16) // two zero bytes
		w.WriteBits(uint32(b), 8)
		data := w.Bytes()
		wantLen := 3
		if b <= 3 {
			wantLen = 4 // escape byte inserted
		}
		if len(data) != wantLen {
			t.Fatalf("byte %#x: stream length %d, want %d", b, len(data), wantLen)
		}
		r := NewReader(data)
		if v, err := r.ReadBits(16); err != nil || v != 0 {
			t.Fatalf("byte %#x: zero prefix read %#x, %v", b, v, err)
		}
		if v, err := r.ReadBits(8); err != nil || v != uint32(b) {
			t.Fatalf("byte %#x: got %#x, %v", b, v, err)
		}
	}
}

func TestStartCodeNavigation(t *testing.T) {
	var w Writer
	w.WriteStartCode(CodeSequence)
	w.WriteBits(0xDEAD, 16)
	w.WriteStartCode(CodePicture)
	w.WriteBits(0x5, 3) // unaligned payload
	w.WriteStartCode(CodeGOB)
	w.WriteBits(0xFF, 8)
	w.WriteStartCode(CodeEnd)
	data := w.Bytes()

	r := NewReader(data)
	wantCodes := []byte{CodeSequence, CodePicture, CodeGOB, CodeEnd}
	for i, want := range wantCodes {
		code, err := r.NextStartCode()
		if err != nil {
			t.Fatalf("start code %d: %v", i, err)
		}
		if code != want {
			t.Fatalf("start code %d = %#x, want %#x", i, code, want)
		}
	}
	if _, err := r.NextStartCode(); err != ErrNoStartCode {
		t.Fatalf("after last start code: err = %v, want ErrNoStartCode", err)
	}
}

func TestPeekAndSkipToStartCode(t *testing.T) {
	var w Writer
	w.WriteBits(0xAA, 8) // leading garbage
	w.WriteStartCode(CodeGOB)
	w.WriteBits(0x1, 1)
	data := w.Bytes()

	r := NewReader(data)
	if _, ok := r.PeekStartCode(); ok {
		t.Fatal("PeekStartCode true at garbage")
	}
	if err := r.SkipToStartCode(); err != nil {
		t.Fatalf("SkipToStartCode: %v", err)
	}
	code, ok := r.PeekStartCode()
	if !ok || code != CodeGOB {
		t.Fatalf("PeekStartCode = %#x, %v", code, ok)
	}
	// Peek must not consume.
	code2, err := r.NextStartCode()
	if err != nil || code2 != CodeGOB {
		t.Fatalf("NextStartCode after peek = %#x, %v", code2, err)
	}
}

func TestAlignByte(t *testing.T) {
	var w Writer
	w.WriteBits(0x3, 2)
	w.AlignByte()
	w.WriteBits(0xAB, 8)
	data := w.Bytes()
	if len(data) != 2 {
		t.Fatalf("stream length %d, want 2", len(data))
	}
	if data[0] != 0xC0 {
		t.Fatalf("first byte %#x, want 0xC0", data[0])
	}

	r := NewReader(data)
	if v, _ := r.ReadBits(2); v != 0x3 {
		t.Fatal("first field wrong")
	}
	r.AlignByte()
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatal("aligned field wrong")
	}
	r.AlignByte() // already aligned: no-op
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestBitLenAndPos(t *testing.T) {
	var w Writer
	if w.BitLen() != 0 {
		t.Fatal("fresh writer BitLen != 0")
	}
	w.WriteBits(0x7, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d, want 3", w.BitLen())
	}
	w.WriteBits(0x1F, 5)
	if w.BitLen() != 8 {
		t.Fatalf("BitLen = %d, want 8", w.BitLen())
	}

	r := NewReader(w.Bytes())
	if r.BitPos() != 0 {
		t.Fatal("fresh reader BitPos != 0")
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.BitPos() != 5 {
		t.Fatalf("BitPos = %d, want 5", r.BitPos())
	}
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", r.Remaining())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := NewReader(nil).ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("empty reader: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatal("BitLen after Reset != 0")
	}
	w.WriteBits(0xA, 4)
	data := w.Bytes()
	if len(data) != 1 || data[0] != 0xA0 {
		t.Fatalf("after reset: % x", data)
	}
}

func TestWriteBitsPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n > 32")
		}
	}()
	var w Writer
	w.WriteBits(0, 33)
}

func TestWriteBit(t *testing.T) {
	var w Writer
	for _, b := range []uint8{1, 0, 1, 1, 0, 1, 0, 1} {
		w.WriteBit(b)
	}
	data := w.Bytes()
	if len(data) != 1 || data[0] != 0xB5 {
		t.Fatalf("got % x, want b5", data)
	}
}
