package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

// Differential harness: the accumulator-based Writer and byte-chunk
// Reader must match the bit-at-a-time RefWriter/RefReader on every
// observable — emitted bytes, BitLen/BitPos, read values, errors and
// post-error state — for arbitrary operation sequences, including ones
// that provoke emulation-prevention escapes and mid-read EOF.

func TestBitstreamWriterEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		var fast Writer
		var ref RefWriter
		ops := rng.Intn(200) + 1
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0:
				fast.AlignByte()
				ref.AlignByte()
			case 1:
				code := byte(rng.Intn(256))
				fast.WriteStartCode(code)
				ref.WriteStartCode(code)
			case 2:
				// Zero-heavy values provoke escape insertion.
				n := uint(rng.Intn(33))
				fast.WriteBits(0, n)
				ref.WriteBits(0, n)
			default:
				n := uint(rng.Intn(33))
				v := rng.Uint32()
				fast.WriteBits(v, n)
				ref.WriteBits(v, n)
			}
			if fast.BitLen() != ref.BitLen() {
				t.Fatalf("trial %d op %d: BitLen fast %d ref %d", trial, i, fast.BitLen(), ref.BitLen())
			}
		}
		if !bytes.Equal(fast.Bytes(), ref.Bytes()) {
			t.Fatalf("trial %d: streams diverge\nfast %x\nref  %x", trial, fast.Bytes(), ref.Bytes())
		}
	}
}

func TestBitstreamReaderEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.Intn(64))
		for i := range data {
			// Bias toward 0x00/0x01/0x03 so escape removal paths and
			// start-code-like runs are common.
			switch rng.Intn(4) {
			case 0:
				data[i] = byte(rng.Intn(256))
			case 1:
				data[i] = 0x00
			case 2:
				data[i] = 0x03
			default:
				data[i] = 0x01
			}
		}
		fast := NewReader(data)
		ref := NewRefReader(data)
		for i := 0; i < 100; i++ {
			if rng.Intn(8) == 0 {
				fast.AlignByte()
				ref.AlignByte()
			}
			n := uint(rng.Intn(33))
			if pv, pn := fast.PeekBits(n); pn == n {
				// A full peek must predict the next read exactly.
				v, err := fast.ReadBits(n)
				if err != nil || v != pv {
					t.Fatalf("trial %d: PeekBits(%d)=%#x but ReadBits=%#x err=%v", trial, n, pv, v, err)
				}
				rv, rerr := ref.ReadBits(n)
				if rerr != nil || rv != v {
					t.Fatalf("trial %d: ref diverges after peek: %#x/%v vs %#x", trial, rv, rerr, v)
				}
			} else {
				v, err := fast.ReadBits(n)
				rv, rerr := ref.ReadBits(n)
				if v != rv || (err == nil) != (rerr == nil) {
					t.Fatalf("trial %d: ReadBits(%d) fast %#x/%v ref %#x/%v", trial, n, v, err, rv, rerr)
				}
			}
			if fast.BitPos() != ref.BitPos() {
				t.Fatalf("trial %d: BitPos fast %d ref %d", trial, fast.BitPos(), ref.BitPos())
			}
			if fast.Remaining() != ref.Remaining() {
				t.Fatalf("trial %d: Remaining fast %d ref %d", trial, fast.Remaining(), ref.Remaining())
			}
		}
	}
}

// TestWriteBitsMasksHighBits pins the chosen contract for value bits
// above n: they are ignored. The reference writer has always behaved
// this way (it only inspects bits 0..n−1); the accumulator writer
// masks explicitly and must agree.
func TestWriteBitsMasksHighBits(t *testing.T) {
	var a, b Writer
	a.WriteBits(0xFFFFFFFF, 4)
	b.WriteBits(0xF, 4)
	a.AlignByte()
	b.AlignByte()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("high bits leaked: %x vs %x", a.Bytes(), b.Bytes())
	}
	var c RefWriter
	c.WriteBits(0xFFFFFFFF, 4)
	c.AlignByte()
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatalf("fast and ref disagree on masking: %x vs %x", a.Bytes(), c.Bytes())
	}
	// n = 0 writes nothing, whatever v holds.
	var d Writer
	d.WriteBits(0xFFFFFFFF, 0)
	if d.BitLen() != 0 {
		t.Fatalf("WriteBits(v, 0) wrote %d bits", d.BitLen())
	}
}

// TestBitsPanicOnWideN pins the panic contract on n > 32 for both
// writer and reader (fast and reference).
func TestBitsPanicOnWideN(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic for n=33", name)
			}
		}()
		fn()
	}
	var w Writer
	expectPanic("Writer.WriteBits", func() { w.WriteBits(0, 33) })
	var rw RefWriter
	expectPanic("RefWriter.WriteBits", func() { rw.WriteBits(0, 33) })
	r := NewReader([]byte{0xAA})
	expectPanic("Reader.ReadBits", func() { r.ReadBits(33) })
	rr := NewRefReader([]byte{0xAA})
	expectPanic("RefReader.ReadBits", func() { rr.ReadBits(33) })
}

// FuzzBitstreamEquiv drives both writer pairs with a fuzzer-chosen op
// script, then reads the produced stream back with both readers. Every
// divergence — bytes, lengths, values, error presence, positions — is
// a bug.
func FuzzBitstreamEquiv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x01, 0xB0, 0xFF})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		var fast Writer
		var ref RefWriter
		// Writer phase: consume the script as (op, n, v...) tuples.
		for i := 0; i+1 < len(script); {
			op := script[i]
			n := uint(script[i+1]) % 33
			i += 2
			switch op % 8 {
			case 0:
				fast.AlignByte()
				ref.AlignByte()
			case 1:
				fast.WriteStartCode(byte(n))
				ref.WriteStartCode(byte(n))
			default:
				var v uint32
				for k := 0; k < 4 && i < len(script); k++ {
					v = v<<8 | uint32(script[i])
					i++
				}
				fast.WriteBits(v, n)
				ref.WriteBits(v, n)
			}
			if fast.BitLen() != ref.BitLen() {
				t.Fatalf("BitLen diverges: %d vs %d", fast.BitLen(), ref.BitLen())
			}
		}
		out := fast.Bytes()
		if !bytes.Equal(out, ref.Bytes()) {
			t.Fatalf("written streams diverge:\nfast %x\nref  %x", out, ref.Bytes())
		}

		// Reader phase: replay the script as read sizes over both the
		// written stream and the raw script bytes.
		for _, data := range [][]byte{out, script} {
			fr := NewReader(data)
			rr := NewRefReader(data)
			for i := 0; i < len(script); i++ {
				n := uint(script[i]) % 33
				if script[i]%7 == 0 {
					fr.AlignByte()
					rr.AlignByte()
				}
				pv, pn := fr.PeekBits(n)
				v, err := fr.ReadBits(n)
				rv, rerr := rr.ReadBits(n)
				if v != rv || (err == nil) != (rerr == nil) {
					t.Fatalf("ReadBits(%d) diverges: fast %#x/%v ref %#x/%v", n, v, err, rv, rerr)
				}
				if err == nil && pn == n && pv != v {
					t.Fatalf("PeekBits(%d)=%#x but ReadBits=%#x", n, pv, v)
				}
				if fr.BitPos() != rr.BitPos() {
					t.Fatalf("BitPos diverges: %d vs %d", fr.BitPos(), rr.BitPos())
				}
			}
		}
	})
}
