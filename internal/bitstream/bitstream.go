// Package bitstream provides MSB-first bit-level writers and readers
// plus the byte-aligned start codes the codec uses for picture and GOB
// (group-of-blocks) resynchronisation — the substrate beneath the
// entropy-coding layer, mirroring the role of H.263's bitstream syntax.
//
// Start codes must be unambiguous: entropy-coded payload could
// otherwise happen to contain the 0x000001 prefix. The writer therefore
// applies H.264-style emulation prevention — inside payload, any byte
// in 0x00..0x03 following two zero bytes is preceded by an inserted
// 0x03 escape byte, which the reader removes transparently. Start codes
// themselves are written raw.
package bitstream

import (
	"errors"
	"fmt"
)

// Start codes. A start code is a byte-aligned 0x000001 prefix followed
// by a one-byte code identifying the unit.
const (
	startCodePrefixLen = 3 // bytes: 0x00 0x00 0x01

	// CodePicture introduces a picture header.
	CodePicture byte = 0xB0
	// CodeGOB introduces a group-of-blocks (one macroblock row) header.
	CodeGOB byte = 0xB1
	// CodeSequence introduces a sequence header (dimensions etc.).
	CodeSequence byte = 0xB2
	// CodeEnd terminates a stream.
	CodeEnd byte = 0xB7
)

// ErrUnexpectedEOF reports a read past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitstream: unexpected end of stream")

// ErrNoStartCode reports that no start code was found while scanning.
var ErrNoStartCode = errors.New("bitstream: no start code found")

// Writer assembles a bitstream MSB-first. The zero value is ready to
// use.
//
// Bits accumulate right-aligned in a 64-bit shift register; WriteBits
// shifts one whole value in and drains completed bytes, instead of
// looping per bit. With n ≤ 32 and at most 7 residual bits the
// register never exceeds 39 live bits. Output is byte-for-byte
// identical to the bit-at-a-time RefWriter (the emulation-prevention
// escaping runs per completed byte in both).
type Writer struct {
	buf   []byte
	acc   uint64 // bit accumulator, valid bits right-aligned
	nAcc  uint   // number of valid bits in acc (0..7 between calls)
	zeros int    // consecutive payload zero bytes emitted (for escaping)
}

// appendPayload appends one completed payload byte, inserting an
// emulation-prevention 0x03 where the raw payload would otherwise form
// a start-code prefix.
func (w *Writer) appendPayload(b byte) {
	if w.zeros >= 2 && b <= 0x03 {
		w.buf = append(w.buf, 0x03)
		w.zeros = 0
	}
	w.buf = append(w.buf, b)
	if b == 0x00 {
		w.zeros++
	} else {
		w.zeros = 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 32]; larger n panics. Bits of v above the low n are
// ignored (masked off), so WriteBits(0xFFFFFFFF, 4) and
// WriteBits(0xF, 4) emit the same stream — the behavior pinned by
// TestWriteBitsMasksHighBits.
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
	w.acc = w.acc<<n | uint64(v)&(1<<n-1)
	w.nAcc += n
	for w.nAcc >= 8 {
		w.nAcc -= 8
		w.appendPayload(byte(w.acc >> w.nAcc))
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint8) { w.WriteBits(uint32(b&1), 1) }

// AlignByte pads the current byte with zero bits up to the next byte
// boundary. It is a no-op when already aligned.
func (w *Writer) AlignByte() {
	if w.nAcc != 0 {
		w.appendPayload(byte(w.acc << (8 - w.nAcc)))
		w.acc, w.nAcc = 0, 0
	}
}

// WriteStartCode byte-aligns the stream and appends the raw 0x000001
// prefix followed by code. Start codes are exempt from emulation
// prevention; the escaping state resets after one.
func (w *Writer) WriteStartCode(code byte) {
	w.AlignByte()
	w.buf = append(w.buf, 0x00, 0x00, 0x01, code)
	w.zeros = 0
}

// BitLen returns the number of bits written so far (including any
// escape bytes already emitted).
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nAcc) }

// Bytes byte-aligns the stream and returns the accumulated buffer. The
// returned slice aliases the writer's internal storage; callers that
// keep writing afterwards must copy it first.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset discards all written data, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.nAcc = 0, 0
	w.zeros = 0
}

// Reader consumes a bitstream MSB-first, transparently removing
// emulation-prevention bytes from payload.
type Reader struct {
	data  []byte
	pos   int  // next byte index
	bit   uint // bits already consumed from data[pos] (0..7)
	zeros int  // consecutive zero payload bytes consumed (for unescaping)
}

// NewReader returns a reader over data. The reader does not copy data;
// the caller must not mutate it while reading.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset repoints the reader at data from the beginning, equivalent to
// NewReader without the allocation — the decoder reuses one Reader
// across frames.
func (r *Reader) Reset(data []byte) {
	*r = Reader{data: data}
}

// ReadBits reads n bits (n in [0, 32]) MSB-first; larger n panics.
//
// The loop consumes whole bytes: each iteration takes every still-
// unread bit of the current byte (up to n), so a 32-bit read touches
// at most 5 bytes instead of running 32 single-bit steps. Observable
// behavior — values, errors, BitPos, escape removal, and reader state
// after a mid-read EOF — is identical to the bit-at-a-time RefReader:
// both only ever fail at a byte boundary, with the same bits consumed.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d", n))
	}
	var v uint32
	for n > 0 {
		if r.bit == 0 {
			// About to start a new byte: drop an escape byte if present.
			if r.zeros >= 2 && r.pos < len(r.data) && r.data[r.pos] == 0x03 {
				r.pos++
				r.zeros = 0
			}
			if r.pos >= len(r.data) {
				return 0, ErrUnexpectedEOF
			}
			if r.data[r.pos] == 0x00 {
				r.zeros++
			} else {
				r.zeros = 0
			}
		}
		take := 8 - r.bit
		if take > n {
			take = n
		}
		chunk := uint32(r.data[r.pos]>>(8-r.bit-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= take
	}
	return v, nil
}

// Peek8 returns the next 8 bits of lookahead without consuming them,
// when they are cheaply available: at least one byte beyond the
// current one remains, no emulation-prevention escape can intervene
// (fewer than two pending zero bytes) and the current byte is nonzero,
// so the zeros state cannot grow inside the window. Returns ok ==
// false otherwise; callers then fall back to PeekBits, which handles
// every case. This is the hot path of table-driven VLC decoding.
func (r *Reader) Peek8() (uint32, bool) {
	if r.zeros < 2 && r.pos+1 < len(r.data) {
		b0 := r.data[r.pos]
		if b0 != 0x00 {
			win := uint32(b0)<<8 | uint32(r.data[r.pos+1])
			return win >> (8 - r.bit) & 0xFF, true
		}
	}
	return 0, false
}

// PeekBits returns up to max bits of lookahead (max in [0, 32])
// without consuming anything, along with how many bits were actually
// available before end of stream. Escape bytes are skipped exactly as
// ReadBits would. Used by table-driven VLC decoders to index a
// prefix-lookup table.
func (r *Reader) PeekBits(max uint) (uint32, uint) {
	cp := *r
	var v uint32
	var got uint
	for got < max {
		if cp.bit == 0 {
			if cp.zeros >= 2 && cp.pos < len(cp.data) && cp.data[cp.pos] == 0x03 {
				cp.pos++
				cp.zeros = 0
			}
			if cp.pos >= len(cp.data) {
				return v, got
			}
			if cp.data[cp.pos] == 0x00 {
				cp.zeros++
			} else {
				cp.zeros = 0
			}
		}
		take := 8 - cp.bit
		if take > max-got {
			take = max - got
		}
		chunk := uint32(cp.data[cp.pos]>>(8-cp.bit-take)) & (1<<take - 1)
		v = v<<take | chunk
		cp.bit += take
		if cp.bit == 8 {
			cp.bit = 0
			cp.pos++
		}
		got += take
	}
	return v, got
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint8, error) {
	v, err := r.ReadBits(1)
	return uint8(v), err
}

// AlignByte skips to the next byte boundary.
func (r *Reader) AlignByte() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}

// BitPos returns the number of bits consumed so far, counted in the
// escaped (on-wire) stream.
func (r *Reader) BitPos() int { return r.pos*8 + int(r.bit) }

// Remaining returns the number of unread on-wire bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.BitPos() }

// NextStartCode byte-aligns and scans forward for the next start-code
// prefix, returning the unit code and leaving the reader positioned
// just after it. It returns ErrNoStartCode at end of data.
func (r *Reader) NextStartCode() (byte, error) {
	if err := r.SkipToStartCode(); err != nil {
		return 0, err
	}
	code := r.data[r.pos+startCodePrefixLen]
	r.pos += startCodePrefixLen + 1
	return code, nil
}

// PeekStartCode reports whether the reader is byte-aligned at a start
// code, and if so which one, without consuming it.
func (r *Reader) PeekStartCode() (byte, bool) {
	if r.bit != 0 {
		return 0, false
	}
	if r.pos+startCodePrefixLen >= len(r.data) {
		return 0, false
	}
	if r.data[r.pos] == 0x00 && r.data[r.pos+1] == 0x00 && r.data[r.pos+2] == 0x01 {
		return r.data[r.pos+3], true
	}
	return 0, false
}

// SkipToStartCode byte-aligns and advances until positioned AT a start
// code prefix (not past it), so PeekStartCode will see it. Returns
// ErrNoStartCode if none remains. The unescaping state resets, since a
// start code begins a fresh payload unit.
func (r *Reader) SkipToStartCode() error {
	r.AlignByte()
	r.zeros = 0
	for r.pos+startCodePrefixLen < len(r.data) {
		if r.data[r.pos] == 0x00 && r.data[r.pos+1] == 0x00 && r.data[r.pos+2] == 0x01 {
			return nil
		}
		r.pos++
	}
	r.pos = len(r.data)
	return ErrNoStartCode
}

// BytePos returns the current byte offset (the byte containing the
// next unread bit).
func (r *Reader) BytePos() int { return r.pos }
