package analytic

import (
	"fmt"
	"math"

	"pbpair/internal/codec"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/motion"
	"pbpair/internal/video"
)

// Report is the closed-form counterpart of an experiment.Result: every
// metric is an expectation over the loss process instead of one
// sampled outcome.
//
// ExpPacketsLost and ExpLostFrames are exact expectations (the
// quantities are linear in per-packet loss indicators, whose
// marginals the loss process provides exactly). ExpConcealedMBs is
// exact under single-packet framing and a lower bound otherwise: it
// counts a row as concealed when the packet carrying that row is
// lost, which is every concealment the decoder performs except the
// header-loss cascade — when the packet carrying the picture header
// is lost but later packets arrive, the surviving GOBs of an intra
// frame parse under the sticky inter-frame default and the resulting
// parse errors conceal rows whose own packets arrived. The 10k-lane
// agreement test in internal/experiment pins both the exact cases and
// the one-sided envelope of the cascade.
// ExpPSNR and ExpBadPixels are proxies: the engine propagates each
// macroblock's expected excess distortion (error beyond the clean
// decode) through the same prediction structure the decoder uses — a
// lost macroblock adds its one-step concealment error on top of the
// co-located carry-over, an arriving inter macroblock inherits the
// mean excess of its compensation footprint, an arriving intra
// macroblock resets to zero. The approximations are that (a) error
// energies add without cross terms, (b) losses are collapsed to their
// per-packet marginals, and (c) the PSNR reported is the PSNR of the
// expected SSE — by Jensen's inequality a lower bound on the expected
// PSNR when loss is present. The agreement tests in
// internal/experiment pin both proxies to the Monte-Carlo engine
// within documented bounds.
type Report struct {
	Loss   string // loss-process name
	Scheme string
	Frames int

	ExpPSNR      metrics.Series // per-frame PSNR of the expected SSE
	ExpBadPixels metrics.Series // per-frame expected bad-pixel count

	ExpBadPixTotal  float64
	ExpConcealedMBs float64
	ExpPacketsLost  float64
	ExpLostFrames   float64

	PacketsSent int
	TotalBytes  int

	// MeanSigma is the mean expected-correctness over the macroblock
	// grid after the final frame — 1 under loss-free transmission, the
	// engine's direct view of residual error propagation otherwise.
	MeanSigma float64

	// Counters is the encode-phase work tally, so callers can price the
	// run under any device profile exactly as the simulate phase does.
	Counters energy.Counters
}

// Evaluate propagates the correctness recurrence under the given loss
// process and returns the expected metrics. It is pure arithmetic over
// the extracted metadata — no decoding, no channel draws — and safe to
// call concurrently on one Model.
func (m *Model) Evaluate(loss Loss) (*Report, error) {
	if loss == nil {
		return nil, fmt.Errorf("analytic: no loss process")
	}
	cursor := loss.newCursor()
	rep := &Report{
		Loss:        loss.Name(),
		Scheme:      m.scheme,
		Frames:      len(m.frames),
		PacketsSent: m.packetsSent,
		TotalBytes:  m.totalBytes,
		Counters:    m.counters,
	}

	n := m.rows * m.cols
	sigma := make([]float64, n)
	next := make([]float64, n)
	for i := range sigma {
		sigma[i] = 1
	}
	// Expected excess distortion per macroblock: error energy (and bad
	// pixels) beyond the clean decode. Zero while everything arrives, so
	// loss-free evaluation reproduces the simulate phase bit for bit.
	exSSE := make([]float64, n)
	exBad := make([]float64, n)
	nextSSE := make([]float64, n)
	nextBad := make([]float64, n)
	const mbPixels = video.MBSize * video.MBSize
	var alphas []float64

	for fi := range m.frames {
		fm := &m.frames[fi]
		if cap(alphas) < fm.packets {
			alphas = make([]float64, fm.packets)
		}
		alphas = alphas[:fm.packets]
		rep.ExpLostFrames += cursor.frame(alphas)
		for _, a := range alphas {
			rep.ExpPacketsLost += a
		}
		for r := 0; r < m.rows; r++ {
			rep.ExpConcealedMBs += alphas[fm.rowPacket[r]] * float64(m.cols)
		}

		var expSSE, expBad float64
		for i := range fm.mbs {
			mb := &fm.mbs[i]
			row, col := i/m.cols, i%m.cols
			alpha := alphas[fm.rowPacket[row]]
			var s float64
			var inheritSSE, inheritBad float64
			if mb.mode == codec.ModeIntra {
				// Formula 2: an intra macroblock is correct when its
				// packet arrives; when lost, concealment inherits the
				// previous correctness damped by similarity. An arriving
				// intra macroblock references nothing, so it also resets
				// the excess distortion.
				s = (1 - alpha) + alpha*mb.sim*sigma[i]
			} else {
				// Formula 1: inter (and skip) chain through the related
				// previous-frame macroblocks their prediction reads, and
				// motion compensation carries their excess error through.
				s = (1-alpha)*relatedMin(sigma, m.rows, m.cols, row, col, mb.mv) + alpha*mb.sim*sigma[i]
				inheritSSE, inheritBad = footprintMean(exSSE, exBad, m.rows, m.cols, row, col, mb.mv)
			}
			next[i] = s

			// Excess-distortion recurrence: when the packet is lost, copy
			// concealment pays the one-step concealment error on top of
			// the co-located carry-over; when it arrives, the macroblock
			// inherits its reference's excess (zero for intra). Clamped so
			// clean + excess never exceeds the physical per-MB maximum.
			eSSE := (1-alpha)*inheritSSE + alpha*(math.Max(0, mb.concealSSE-mb.cleanSSE)+exSSE[i])
			eBad := (1-alpha)*inheritBad + alpha*(math.Max(0, mb.concealBad-mb.cleanBad)+exBad[i])
			eSSE = math.Min(eSSE, mbPixels*255*255-mb.cleanSSE)
			eBad = math.Min(eBad, mbPixels-mb.cleanBad)
			nextSSE[i], nextBad[i] = eSSE, eBad
			expSSE += mb.cleanSSE + eSSE
			expBad += mb.cleanBad + eBad
		}
		sigma, next = next, sigma
		exSSE, nextSSE = nextSSE, exSSE
		exBad, nextBad = nextBad, exBad

		rep.ExpPSNR.Add(psnrOfSSE(expSSE, m.pixels))
		rep.ExpBadPixels.Add(expBad)
		rep.ExpBadPixTotal += expBad
	}

	var sum float64
	for _, s := range sigma {
		sum += s
	}
	if n > 0 {
		rep.MeanSigma = sum / float64(n)
	}
	return rep, nil
}

// relatedMin returns min σ over the previous-frame macroblocks the
// compensation footprint of (row, col) displaced by hv overlaps — the
// "related MBs" of Formula 1, in half-pel precision (a fractional
// vector widens the footprint by one pixel, exactly like the decoder's
// interpolation window).
func relatedMin(sigma []float64, rows, cols, row, col int, hv motion.HalfVector) float64 {
	intPart, fx, fy := hv.Split()
	x := col*video.MBSize + intPart.X
	y := row*video.MBSize + intPart.Y
	c0 := floorDiv(x, video.MBSize)
	c1 := floorDiv(x+video.MBSize+fx-1, video.MBSize)
	r0 := floorDiv(y, video.MBSize)
	r1 := floorDiv(y+video.MBSize+fy-1, video.MBSize)
	minSigma := 1.0
	for r := r0; r <= r1; r++ {
		if r < 0 || r >= rows {
			continue
		}
		for c := c0; c <= c1; c++ {
			if c < 0 || c >= cols {
				continue
			}
			if s := sigma[r*cols+c]; s < minSigma {
				minSigma = s
			}
		}
	}
	return minSigma
}

// footprintMean returns the mean excess SSE and bad-pixel count over
// the previous-frame macroblocks the compensation footprint of
// (row, col) displaced by hv overlaps — the distortion analogue of
// relatedMin. Out-of-range cells are skipped (edge padding replicates
// in-frame pixels, whose excess the in-range cells already account
// for); an entirely out-of-range footprint inherits nothing.
func footprintMean(exSSE, exBad []float64, rows, cols, row, col int, hv motion.HalfVector) (sse, bad float64) {
	intPart, fx, fy := hv.Split()
	x := col*video.MBSize + intPart.X
	y := row*video.MBSize + intPart.Y
	c0 := floorDiv(x, video.MBSize)
	c1 := floorDiv(x+video.MBSize+fx-1, video.MBSize)
	r0 := floorDiv(y, video.MBSize)
	r1 := floorDiv(y+video.MBSize+fy-1, video.MBSize)
	cells := 0
	for r := r0; r <= r1; r++ {
		if r < 0 || r >= rows {
			continue
		}
		for c := c0; c <= c1; c++ {
			if c < 0 || c >= cols {
				continue
			}
			sse += exSSE[r*cols+c]
			bad += exBad[r*cols+c]
			cells++
		}
	}
	if cells > 0 {
		sse /= float64(cells)
		bad /= float64(cells)
	}
	return sse, bad
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// psnrOfSSE converts an (expected) luma SSE to dB with the metrics
// package's saturation convention.
func psnrOfSSE(sse float64, pixels int) float64 {
	if sse <= 0 {
		return metrics.MaxPSNR
	}
	mse := sse / float64(pixels)
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > metrics.MaxPSNR {
		psnr = metrics.MaxPSNR
	}
	return psnr
}
