package analytic

import (
	"fmt"
	"sort"
)

// DefaultQualityMarginDB is how far (in dB of expected PSNR) a cheaper
// candidate may fall below the best before the bank stops preferring
// it. The margin implements the paper's power-aware trade: among
// thresholds whose expected quality is indistinguishable, pick the one
// that encodes cheapest.
const DefaultQualityMarginDB = 0.25

// Candidate is one Intra_Th operating point a Bank can recommend: its
// extracted model plus the encode energy of that threshold under the
// controller's device profile.
type Candidate struct {
	IntraTh float64
	EnergyJ float64
	Model   *Model
}

// Bank evaluates a ladder of candidate Intra_Th models analytically
// and recommends the most energy-efficient one whose expected quality
// stays within a margin of the best — the predictive inner loop
// internal/adapt can consult before committing a retune. Evaluations
// are microseconds each, so a Best call per loss-report is free
// compared to a single re-encode.
type Bank struct {
	cands  []Candidate
	margin float64
}

// NewBank builds a bank from candidates (sorted by IntraTh for
// deterministic tie-breaks). marginDB <= 0 selects
// DefaultQualityMarginDB.
func NewBank(cands []Candidate, marginDB float64) (*Bank, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("analytic: bank needs at least one candidate")
	}
	for i := range cands {
		if cands[i].Model == nil {
			return nil, fmt.Errorf("analytic: bank candidate %d has no model", i)
		}
	}
	if marginDB <= 0 {
		marginDB = DefaultQualityMarginDB
	}
	sorted := append([]Candidate(nil), cands...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].IntraTh < sorted[j].IntraTh })
	return &Bank{cands: sorted, margin: marginDB}, nil
}

// Candidates returns the bank's ladder in ascending IntraTh order.
func (b *Bank) Candidates() []Candidate {
	return append([]Candidate(nil), b.cands...)
}

// Best evaluates every candidate under i.i.d. loss at the given rate
// and returns the chosen candidate with its report: the lowest-energy
// candidate whose mean expected PSNR is within the quality margin of
// the best candidate's. Ties on energy resolve to the lower threshold.
func (b *Bank) Best(lossRate float64) (Candidate, *Report, error) {
	loss, err := NewIID(lossRate)
	if err != nil {
		return Candidate{}, nil, err
	}
	reports := make([]*Report, len(b.cands))
	bestPSNR := 0.0
	for i := range b.cands {
		rep, err := b.cands[i].Model.Evaluate(loss)
		if err != nil {
			return Candidate{}, nil, err
		}
		reports[i] = rep
		if psnr := rep.ExpPSNR.Mean(); i == 0 || psnr > bestPSNR {
			bestPSNR = psnr
		}
	}
	chosen := -1
	for i := range b.cands {
		if reports[i].ExpPSNR.Mean() < bestPSNR-b.margin {
			continue
		}
		if chosen < 0 || b.cands[i].EnergyJ < b.cands[chosen].EnergyJ {
			chosen = i
		}
	}
	return b.cands[chosen], reports[chosen], nil
}

// BestIntraTh is Best reduced to the recommended threshold — the
// signature internal/adapt's predictive controller consumes.
func (b *Bank) BestIntraTh(lossRate float64) (float64, error) {
	cand, _, err := b.Best(lossRate)
	if err != nil {
		return 0, err
	}
	return cand.IntraTh, nil
}
