// Package analytic computes expected distortion in closed form. It
// replaces the simulate phase's channel draws with probability
// propagation: the paper's correctness-matrix recurrence (Formulas
// 1–2) already tracks per-macroblock correctness *in expectation*, so
// evaluating it with the true per-packet loss probabilities of a
// channel model — instead of a sampled loss pattern — yields the
// expected value of every loss-linear metric exactly (packets lost,
// lost frames, concealed macroblocks) and a principled proxy for the
// nonlinear ones (PSNR, bad pixels), without simulating a single
// channel draw.
//
// A Model is extracted once per encoded sequence: the cached bitstream
// is clean-decoded with a parse trace (codec.WithMBTrace) to recover
// every macroblock's coded mode and motion vector, and per-macroblock
// distortion terms (clean vs concealed against the original source)
// are measured from the reconstructions. Evaluating the model under a
// loss process is then pure arithmetic — microseconds per operating
// point — which makes full Intra_Th × α × loss-rate × content grids
// and controller inner loops (Bank) essentially free. See
// ARCHITECTURE.md, "Analytic layer".
package analytic

import (
	"fmt"
	"math"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/energy"
	"pbpair/internal/metrics"
	"pbpair/internal/motion"
	"pbpair/internal/network"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

// Config parameterises model extraction. The zero value selects the
// experiment pipeline's defaults, so a Model extracted with Config{}
// is comparable to a Simulate run with a zero SimSpec.
type Config struct {
	// MTU for packetisation (default network.DefaultMTU). Must match
	// the SimSpec the model is compared against: packet boundaries
	// decide which GOB rows share a loss event.
	MTU int
	// SimilarityScale is the copy-concealment similarity scale of the
	// recurrence (default core.DefaultSimilarityScale, the encoder's
	// own).
	SimilarityScale float64
	// BadPixelThreshold for the expected bad-pixel metric (default
	// metrics.DefaultBadPixelThreshold).
	BadPixelThreshold int
}

// withDefaults fills zero fields; negative or NaN values are rejected
// by Extract.
func (c Config) withDefaults() Config {
	if c.MTU <= 0 {
		c.MTU = network.DefaultMTU
	}
	if c.SimilarityScale == 0 {
		c.SimilarityScale = core.DefaultSimilarityScale
	}
	if c.BadPixelThreshold <= 0 {
		c.BadPixelThreshold = metrics.DefaultBadPixelThreshold
	}
	return c
}

// mbMeta is the per-macroblock metadata driving the recurrence: the
// coded mode and motion vector (which previous-frame macroblocks this
// one references), the copy-concealment similarity, and the two
// endpoints of the distortion mix — luma SSE/bad-pixels of the clean
// reconstruction and of the concealed substitute, both against the
// original source frame.
type mbMeta struct {
	mode       codec.MBMode
	mv         motion.HalfVector
	sim        float64
	cleanSSE   float64
	concealSSE float64
	cleanBad   float64
	concealBad float64
}

// frameMeta is one frame's metadata: its macroblocks, how its GOB rows
// map onto packets, and its transport accounting.
type frameMeta struct {
	packets   int
	rowPacket []int // GOB row -> index of the packet carrying it
	mbs       []mbMeta
	intraMBs  int
	bytes     int
}

// Model is the analytic twin of one encoded sequence: everything the
// expected-distortion recurrence needs, measured once from a clean
// decode. Models are immutable after Extract and safe for concurrent
// Evaluate calls.
type Model struct {
	scheme        string
	width, height int
	rows, cols    int
	pixels        int // luma samples per frame
	packetsSent   int
	totalBytes    int
	counters      energy.Counters
	frames        []frameMeta
}

// Scheme returns the resilience scheme of the underlying encode.
func (m *Model) Scheme() string { return m.scheme }

// FrameCount returns the number of modelled frames.
func (m *Model) FrameCount() int { return len(m.frames) }

// PacketsSent returns the total media packets the sequence packetises
// into (loss-independent, so a property of the model).
func (m *Model) PacketsSent() int { return m.packetsSent }

// TotalBytes returns the encoded size of the underlying sequence.
func (m *Model) TotalBytes() int { return m.totalBytes }

// Counters returns the encode-phase energy tally of the underlying
// sequence, for pricing under a device profile.
func (m *Model) Counters() energy.Counters { return m.counters }

// IntraMBsPerFrame returns the mean intra-coded macroblocks per frame.
func (m *Model) IntraMBsPerFrame() float64 {
	if len(m.frames) == 0 {
		return 0
	}
	total := 0
	for i := range m.frames {
		total += m.frames[i].intraMBs
	}
	return float64(total) / float64(len(m.frames))
}

// Extract builds the analytic model of an encoded sequence. src must
// be the source the sequence was encoded from; its frames are
// regenerated to measure the distortion endpoints. The sequence is
// clean-decoded once (no loss), so extraction costs about one decode
// plus one metrics pass per frame — paid once per encode and amortised
// over every Evaluate.
func Extract(seq *codec.EncodedSequence, src synth.Source, cfg Config) (*Model, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, fmt.Errorf("analytic: empty sequence")
	}
	if src == nil {
		return nil, fmt.Errorf("analytic: no source")
	}
	if w, h := src.Dims(); w != seq.Width || h != seq.Height {
		return nil, fmt.Errorf("analytic: source %dx%d does not match sequence %dx%d", w, h, seq.Width, seq.Height)
	}
	cfg = cfg.withDefaults()
	if math.IsNaN(cfg.SimilarityScale) || cfg.SimilarityScale <= 0 {
		return nil, fmt.Errorf("analytic: similarity scale %v must be positive", cfg.SimilarityScale)
	}

	rows := seq.Height / video.MBSize
	cols := seq.Width / video.MBSize
	m := &Model{
		scheme: seq.Scheme,
		width:  seq.Width, height: seq.Height,
		rows: rows, cols: cols,
		pixels:     seq.Width * seq.Height,
		totalBytes: seq.TotalBytes,
		counters:   seq.Counters,
		frames:     make([]frameMeta, 0, len(seq.Frames)),
	}

	trace := &codec.MBTrace{}
	dec, err := codec.NewDecoder(seq.Width, seq.Height, codec.WithMBTrace(trace))
	if err != nil {
		return nil, fmt.Errorf("analytic: %w", err)
	}
	pktz := network.NewPacketizer(cfg.MTU)

	var prev *video.Frame // previous clean reconstruction
	for i := range seq.Frames {
		sf := &seq.Frames[i]
		packets := pktz.Packetize(sf.AsEncodedFrame())
		rowPacket, err := mapRowsToPackets(sf, packets, rows)
		if err != nil {
			return nil, fmt.Errorf("analytic: frame %d: %w", i, err)
		}
		m.packetsSent += len(packets)

		res, err := dec.DecodeFrame(sf.Data)
		if err != nil {
			return nil, fmt.Errorf("analytic: frame %d: %w", i, err)
		}
		if res.HeaderLost || res.ConcealedMBs != 0 {
			return nil, fmt.Errorf("analytic: frame %d does not clean-decode (%d concealed MBs)", i, res.ConcealedMBs)
		}

		original := src.Frame(i)
		fm := frameMeta{
			packets:   len(packets),
			rowPacket: rowPacket,
			mbs:       make([]mbMeta, rows*cols),
			intraMBs:  sf.IntraMBs,
			bytes:     len(sf.Data),
		}
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				mode, hv := trace.At(row, col)
				if mode == 0 {
					return nil, fmt.Errorf("analytic: frame %d MB (%d,%d) not traced", i, row, col)
				}
				mb := &fm.mbs[row*cols+col]
				mb.mode = mode
				mb.mv = hv
				mb.cleanSSE, mb.cleanBad = mbLumaStats(original, res.Frame, row, col, cfg.BadPixelThreshold)
				if prev != nil {
					mb.concealSSE, mb.concealBad = mbLumaStats(original, prev, row, col, cfg.BadPixelThreshold)
					mb.sim = mbSimilarity(prev, res.Frame, row, col, cfg.SimilarityScale)
				} else {
					// First frame: copy concealment has no reference and
					// paints mid-grey; similarity has nothing to compare.
					mb.concealSSE, mb.concealBad = mbLumaStatsGrey(original, row, col, cfg.BadPixelThreshold)
				}
			}
		}
		m.frames = append(m.frames, fm)

		if prev == nil {
			prev = res.Frame.Clone()
		} else if err := prev.CopyFrom(res.Frame); err != nil {
			return nil, fmt.Errorf("analytic: frame %d: %w", i, err)
		}
	}
	return m, nil
}

// mapRowsToPackets assigns each GOB row to the packet whose payload
// carries its GOB header. Packetize fragments contiguously from offset
// zero at GOB boundaries, so cumulative payload lengths give each
// packet's byte range in the frame.
func mapRowsToPackets(sf *codec.SeqFrame, packets []network.Packet, rows int) ([]int, error) {
	if len(sf.GOBOffsets) != rows {
		return nil, fmt.Errorf("%d GOBs for %d macroblock rows", len(sf.GOBOffsets), rows)
	}
	rowPacket := make([]int, rows)
	end := 0
	pkt := 0
	for r, off := range sf.GOBOffsets {
		for pkt < len(packets) && off >= end+len(packets[pkt].Payload) {
			end += len(packets[pkt].Payload)
			pkt++
		}
		if pkt >= len(packets) {
			return nil, fmt.Errorf("GOB %d at offset %d beyond packetised payload", r, off)
		}
		rowPacket[r] = pkt
	}
	return rowPacket, nil
}

// mbLumaStats measures one macroblock's luma SSE and bad-pixel count
// of rec against ref.
func mbLumaStats(ref, rec *video.Frame, row, col, threshold int) (sse float64, bad float64) {
	x := col * video.MBSize
	y := row * video.MBSize
	w := ref.Width
	var s int64
	b := 0
	for r := 0; r < video.MBSize; r++ {
		a := ref.Y[(y+r)*w+x : (y+r)*w+x+video.MBSize]
		c := rec.Y[(y+r)*w+x : (y+r)*w+x+video.MBSize]
		for i := range a {
			d := int(a[i]) - int(c[i])
			if d < 0 {
				d = -d
			}
			s += int64(d) * int64(d)
			if d > threshold {
				b++
			}
		}
	}
	return float64(s), float64(b)
}

// mbLumaStatsGrey is mbLumaStats against the decoder's mid-grey
// first-frame concealment.
func mbLumaStatsGrey(ref *video.Frame, row, col, threshold int) (sse float64, bad float64) {
	x := col * video.MBSize
	y := row * video.MBSize
	w := ref.Width
	var s int64
	b := 0
	for r := 0; r < video.MBSize; r++ {
		a := ref.Y[(y+r)*w+x : (y+r)*w+x+video.MBSize]
		for i := range a {
			d := int(a[i]) - 128
			if d < 0 {
				d = -d
			}
			s += int64(d) * int64(d)
			if d > threshold {
				b++
			}
		}
	}
	return float64(s), float64(b)
}

// mbSimilarity mirrors core's copy-concealment similarity factor:
// 1 − MAD(prev, cur)/scale over the co-located luma macroblock,
// clamped to [0, 1].
func mbSimilarity(prev, cur *video.Frame, row, col int, scale float64) float64 {
	x := col * video.MBSize
	y := row * video.MBSize
	w := cur.Width
	var sad int64
	for r := 0; r < video.MBSize; r++ {
		a := cur.Y[(y+r)*w+x : (y+r)*w+x+video.MBSize]
		b := prev.Y[(y+r)*w+x : (y+r)*w+x+video.MBSize]
		for i := range a {
			d := int64(a[i]) - int64(b[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	mad := float64(sad) / (video.MBSize * video.MBSize)
	return clamp01(1 - mad/scale)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
