package analytic

import (
	"math"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/network"
)

func TestNewIIDValidation(t *testing.T) {
	cases := []struct {
		rate float64
		ok   bool
	}{
		{0, true}, {0.5, true}, {1, true},
		{-0.01, false}, {1.01, false},
		{math.NaN(), false}, {math.Inf(1), false}, {math.Inf(-1), false},
	}
	for _, c := range cases {
		_, err := NewIID(c.rate)
		if (err == nil) != c.ok {
			t.Errorf("NewIID(%v): err=%v, want ok=%v", c.rate, err, c.ok)
		}
	}
}

func TestNewGEValidation(t *testing.T) {
	good := network.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.5, LossGood: 0.01, LossBad: 0.8}
	if _, err := NewGE(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []network.GEConfig{
		{PGoodToBad: -0.1, PBadToGood: 0.5, LossGood: 0.01, LossBad: 0.8},
		{PGoodToBad: 0.1, PBadToGood: 1.5, LossGood: 0.01, LossBad: 0.8},
		{PGoodToBad: 0.1, PBadToGood: 0.5, LossGood: math.NaN(), LossBad: 0.8},
		{PGoodToBad: 0.1, PBadToGood: 0.5, LossGood: 0.01, LossBad: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := NewGE(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// TestIIDCursor checks the i.i.d. marginals and the all-lost product.
func TestIIDCursor(t *testing.T) {
	l, err := NewIID(0.3)
	if err != nil {
		t.Fatal(err)
	}
	c := l.newCursor()
	alphas := make([]float64, 3)
	allLost := c.frame(alphas)
	for i, a := range alphas {
		if a != 0.3 {
			t.Fatalf("alpha[%d] = %v", i, a)
		}
	}
	if want := 0.3 * 0.3 * 0.3; math.Abs(allLost-want) > 1e-15 {
		t.Fatalf("allLost = %v, want %v", allLost, want)
	}
}

// TestGEDegeneratesToIID pins the Gilbert–Elliott cursor against the
// i.i.d. one when the chain cannot leave the good state.
func TestGEDegeneratesToIID(t *testing.T) {
	ge, err := NewGE(network.GEConfig{PGoodToBad: 0, PBadToGood: 1, LossGood: 0.25, LossBad: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	iid, err := NewIID(0.25)
	if err != nil {
		t.Fatal(err)
	}
	gc, ic := ge.newCursor(), iid.newCursor()
	for frame := 0; frame < 4; frame++ {
		ga := make([]float64, 5)
		ia := make([]float64, 5)
		gAll := gc.frame(ga)
		iAll := ic.frame(ia)
		for i := range ga {
			if math.Abs(ga[i]-ia[i]) > 1e-12 {
				t.Fatalf("frame %d packet %d: GE alpha %v, IID alpha %v", frame, i, ga[i], ia[i])
			}
		}
		if math.Abs(gAll-iAll) > 1e-12 {
			t.Fatalf("frame %d: GE allLost %v, IID allLost %v", frame, gAll, iAll)
		}
	}
}

// TestGEStateDistribution checks the marginal converges to the chain's
// steady state.
func TestGEStateDistribution(t *testing.T) {
	cfg := network.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.4, LossGood: 0.02, LossBad: 0.7}
	ge, err := NewGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := ge.newCursor()
	alphas := make([]float64, 500)
	c.frame(alphas)
	want := ge.SteadyStateLoss()
	if got := alphas[len(alphas)-1]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("steady-state marginal %v, want %v", got, want)
	}
}

// TestMapRowsToPackets exercises the GOB→packet assignment on a
// synthetic multi-packet frame.
func TestMapRowsToPackets(t *testing.T) {
	// Three GOBs at offsets 0, 40, 80 in a 120-byte frame split into
	// packets of 40/40/40 bytes.
	sf := &codec.SeqFrame{
		Data:       make([]byte, 120),
		GOBOffsets: []int{0, 40, 80},
	}
	packets := []network.Packet{
		{Payload: sf.Data[0:40]},
		{Payload: sf.Data[40:80]},
		{Payload: sf.Data[80:120]},
	}
	rowPacket, err := mapRowsToPackets(sf, packets, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r, want := range []int{0, 1, 2} {
		if rowPacket[r] != want {
			t.Fatalf("row %d -> packet %d, want %d", r, rowPacket[r], want)
		}
	}

	// Single packet carrying all GOBs.
	one := []network.Packet{{Payload: sf.Data}}
	rowPacket, err = mapRowsToPackets(sf, one, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := range rowPacket {
		if rowPacket[r] != 0 {
			t.Fatalf("row %d -> packet %d, want 0", r, rowPacket[r])
		}
	}

	// GOB count mismatch is an error.
	if _, err := mapRowsToPackets(sf, one, 4); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}
