package analytic

import (
	"fmt"

	"pbpair/internal/network"
)

// Loss is a packet-loss process the analytic engine can integrate: it
// yields, per frame, the marginal loss probability of each packet and
// the probability that all of the frame's packets are lost (the
// whole-frame-loss event the decoder meets with full-frame
// concealment). Implementations live in this package; the two shipped
// processes mirror internal/network's sampled channels exactly.
type Loss interface {
	// Name identifies the process in reports.
	Name() string
	// newCursor starts an independent pass over the packet stream.
	// Evaluate calls it once per run, so one Loss value may be shared
	// across concurrent evaluations.
	newCursor() lossCursor
}

// lossCursor consumes the packet stream frame by frame, carrying
// whatever chain state the process needs between frames (the
// Gilbert–Elliott state distribution persists across frame boundaries,
// exactly like the sampled channel's state).
type lossCursor interface {
	// frame fills alphas with the marginal loss probability of the
	// frame's next len(alphas) packets and returns the probability that
	// all of them are lost.
	frame(alphas []float64) (allLost float64)
}

// validProb rejects NaN and out-of-range probabilities. The explicit
// >= && <= form (rather than < || >) is what makes NaN fail: every
// comparison against NaN is false.
func validProb(p float64) bool { return p >= 0 && p <= 1 }

// IID is independent, identically distributed packet loss at a fixed
// rate — the analytic twin of network.UniformLoss.
type IID struct {
	rate float64
}

// NewIID returns an i.i.d. loss process. rate must lie in [0, 1]
// (NaN rejected).
func NewIID(rate float64) (*IID, error) {
	if !validProb(rate) {
		return nil, fmt.Errorf("analytic: loss rate %v outside [0, 1]", rate)
	}
	return &IID{rate: rate}, nil
}

// Rate returns the configured loss rate.
func (l *IID) Rate() float64 { return l.rate }

// Name implements Loss.
func (l *IID) Name() string { return fmt.Sprintf("iid(p=%g)", l.rate) }

type iidCursor struct{ rate float64 }

func (l *IID) newCursor() lossCursor { return &iidCursor{rate: l.rate} }

func (c *iidCursor) frame(alphas []float64) float64 {
	if len(alphas) == 0 {
		return 0
	}
	allLost := 1.0
	for i := range alphas {
		alphas[i] = c.rate
		allLost *= c.rate
	}
	return allLost
}

// GE is a two-state Gilbert–Elliott loss process — the analytic twin
// of network.GilbertElliott. The state distribution starts in the good
// state and advances transition-then-loss per packet, matching the
// sampled channel's draw order, and persists across frames.
type GE struct {
	cfg network.GEConfig
}

// NewGE returns a Gilbert–Elliott loss process. Every probability of
// cfg must lie in [0, 1] (NaN rejected).
func NewGE(cfg network.GEConfig) (*GE, error) {
	for _, p := range []float64{cfg.PGoodToBad, cfg.PBadToGood, cfg.LossGood, cfg.LossBad} {
		if !validProb(p) {
			return nil, fmt.Errorf("analytic: Gilbert–Elliott probability %v outside [0, 1]", p)
		}
	}
	return &GE{cfg: cfg}, nil
}

// Config returns the chain parameters.
func (l *GE) Config() network.GEConfig { return l.cfg }

// SteadyStateLoss returns the chain's long-run average loss rate.
func (l *GE) SteadyStateLoss() float64 {
	denom := l.cfg.PGoodToBad + l.cfg.PBadToGood
	if denom == 0 {
		return l.cfg.LossGood // starts (and stays) good
	}
	pBad := l.cfg.PGoodToBad / denom
	return pBad*l.cfg.LossBad + (1-pBad)*l.cfg.LossGood
}

// Name implements Loss.
func (l *GE) Name() string {
	return fmt.Sprintf("ge(g2b=%g,b2g=%g,lg=%g,lb=%g)",
		l.cfg.PGoodToBad, l.cfg.PBadToGood, l.cfg.LossGood, l.cfg.LossBad)
}

// geCursor carries the chain's state distribution (pGood, pBad) across
// frames. Marginal loss of packet i is the loss rate averaged over the
// state distribution after i transitions; the all-lost probability is
// propagated as a joint vector u, where u[s] = P(every packet so far
// lost AND chain now in state s) — loss outcomes are conditionally
// independent given the state path, so u advances by the same
// transition matrix followed by a componentwise loss multiply.
type geCursor struct {
	cfg         network.GEConfig
	pGood, pBad float64
}

func (l *GE) newCursor() lossCursor {
	return &geCursor{cfg: l.cfg, pGood: 1, pBad: 0}
}

func (c *geCursor) frame(alphas []float64) float64 {
	if len(alphas) == 0 {
		return 0
	}
	uGood, uBad := c.pGood, c.pBad
	for i := range alphas {
		c.pGood, c.pBad = c.pGood*(1-c.cfg.PGoodToBad)+c.pBad*c.cfg.PBadToGood,
			c.pGood*c.cfg.PGoodToBad+c.pBad*(1-c.cfg.PBadToGood)
		alphas[i] = c.pGood*c.cfg.LossGood + c.pBad*c.cfg.LossBad
		uGood, uBad = uGood*(1-c.cfg.PGoodToBad)+uBad*c.cfg.PBadToGood,
			uGood*c.cfg.PGoodToBad+uBad*(1-c.cfg.PBadToGood)
		uGood *= c.cfg.LossGood
		uBad *= c.cfg.LossBad
	}
	return uGood + uBad
}
