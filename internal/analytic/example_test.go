package analytic_test

import (
	"fmt"

	"pbpair/internal/analytic"
	"pbpair/internal/core"
	"pbpair/internal/experiment"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// Example extracts an analytic model from a short PBPAIR encode and
// evaluates it under two loss processes without simulating a single
// channel draw. Everything is deterministic — the synthetic source,
// the encoder and the closed-form evaluation — so the output is
// stable.
func Example() {
	src := synth.Shared(synth.RegimeForeman)
	seq, err := experiment.Encode(nil, experiment.EncodeSpec{
		Regime: synth.RegimeForeman, Frames: 8, QP: 8, SearchRange: 7,
		Scheme: experiment.SchemePBPAIR(core.Config{Rows: 9, Cols: 11, IntraTh: 0.6, PLR: 0.1}),
	})
	if err != nil {
		panic(err)
	}

	// One decode pass captures per-MB modes, vectors and distortion
	// statistics; every loss point after that is pure arithmetic.
	model, err := analytic.Extract(seq, src, analytic.Config{})
	if err != nil {
		panic(err)
	}

	iid, err := analytic.NewIID(0.1)
	if err != nil {
		panic(err)
	}
	rep, err := model.Evaluate(iid)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: E[PSNR]=%.2f dB, E[lost packets]=%.1f of %d\n",
		rep.Loss, rep.ExpPSNR.Mean(), rep.ExpPacketsLost, rep.PacketsSent)

	ge, err := analytic.NewGE(network.GEConfig{
		PGoodToBad: 0.05, PBadToGood: 0.45, LossGood: 0, LossBad: 1,
	})
	if err != nil {
		panic(err)
	}
	rep, err = model.Evaluate(ge)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bursty chain, same mean loss %.1f: E[PSNR]=%.2f dB\n",
		ge.SteadyStateLoss(), rep.ExpPSNR.Mean())

	// Output:
	// iid(p=0.1): E[PSNR]=26.14 dB, E[lost packets]=1.0 of 10
	// bursty chain, same mean loss 0.1: E[PSNR]=27.41 dB
}
