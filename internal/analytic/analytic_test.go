package analytic_test

import (
	"math"
	"testing"

	"pbpair/internal/analytic"
	"pbpair/internal/core"
	"pbpair/internal/experiment"
	"pbpair/internal/network"
	"pbpair/internal/synth"
)

// testSequence encodes a short PBPAIR clip through the experiment
// pipeline (no cache) for extraction tests.
func testSequence(t *testing.T, regime synth.Regime, frames int, th, plr float64) (*experiment.EncodeSpec, *analytic.Model) {
	t.Helper()
	src := synth.Shared(regime)
	w, h := src.Dims()
	spec := experiment.EncodeSpec{
		Regime: regime, Frames: frames,
		SearchRange: 7,
		Scheme: experiment.SchemePBPAIR(core.Config{
			Rows: h / 16, Cols: w / 16, IntraTh: th, PLR: plr,
		}),
	}
	seq, err := experiment.Encode(nil, spec)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	model, err := analytic.Extract(seq, src, analytic.Config{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return &spec, model
}

// TestEvaluateLossFreeMatchesSimulate pins the analytic engine to the
// Monte-Carlo engine in the one case where both are exact: no loss.
// Per-frame PSNR and bad pixels must agree to float precision, and all
// loss expectations must be zero.
func TestEvaluateLossFreeMatchesSimulate(t *testing.T) {
	spec, model := testSequence(t, synth.RegimeForeman, 8, 0.5, 0.1)
	seq, err := experiment.Encode(nil, *spec)
	if err != nil {
		t.Fatal(err)
	}
	src := synth.Shared(spec.Regime)
	res, err := experiment.Simulate(seq, src, experiment.SimSpec{Name: "clean"})
	if err != nil {
		t.Fatal(err)
	}

	loss, err := analytic.NewIID(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate(loss)
	if err != nil {
		t.Fatal(err)
	}

	if rep.ExpPacketsLost != 0 || rep.ExpLostFrames != 0 || rep.ExpConcealedMBs != 0 {
		t.Fatalf("loss-free expectations non-zero: %+v", rep)
	}
	if rep.MeanSigma != 1 {
		t.Fatalf("loss-free MeanSigma = %v, want 1", rep.MeanSigma)
	}
	if rep.PacketsSent != res.PacketsSent {
		t.Fatalf("PacketsSent %d, MC %d", rep.PacketsSent, res.PacketsSent)
	}
	if rep.TotalBytes != res.TotalBytes {
		t.Fatalf("TotalBytes %d, MC %d", rep.TotalBytes, res.TotalBytes)
	}
	mcPSNR := res.PSNR.Values()
	anPSNR := rep.ExpPSNR.Values()
	mcBad := res.BadPixels.Values()
	anBad := rep.ExpBadPixels.Values()
	if len(mcPSNR) != len(anPSNR) {
		t.Fatalf("frame counts differ: %d vs %d", len(mcPSNR), len(anPSNR))
	}
	for i := range mcPSNR {
		if math.Abs(mcPSNR[i]-anPSNR[i]) > 1e-9 {
			t.Fatalf("frame %d: PSNR %v (MC) vs %v (analytic)", i, mcPSNR[i], anPSNR[i])
		}
		if math.Abs(mcBad[i]-anBad[i]) > 1e-9 {
			t.Fatalf("frame %d: bad pixels %v (MC) vs %v (analytic)", i, mcBad[i], anBad[i])
		}
	}
	if rep.Counters != res.Counters {
		t.Fatalf("counters differ: %+v vs %+v", rep.Counters, res.Counters)
	}
}

// TestEvaluateCertainLoss checks the exact expectations at loss rate 1:
// every packet lost, every frame lost, every macroblock concealed.
func TestEvaluateCertainLoss(t *testing.T) {
	_, model := testSequence(t, synth.RegimeAkiyo, 5, 0.3, 0.1)
	loss, err := analytic.NewIID(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate(loss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExpPacketsLost != float64(model.PacketsSent()) {
		t.Fatalf("ExpPacketsLost %v, want %d", rep.ExpPacketsLost, model.PacketsSent())
	}
	if rep.ExpLostFrames != float64(model.FrameCount()) {
		t.Fatalf("ExpLostFrames %v, want %d", rep.ExpLostFrames, model.FrameCount())
	}
	wantMBs := float64(model.FrameCount()) * 9 * 11 // QCIF grid
	if rep.ExpConcealedMBs != wantMBs {
		t.Fatalf("ExpConcealedMBs %v, want %v", rep.ExpConcealedMBs, wantMBs)
	}
	if rep.MeanSigma != 0 {
		t.Fatalf("MeanSigma %v under certain loss, want 0", rep.MeanSigma)
	}
}

// TestEvaluateMonotoneInLoss checks the expected-quality surface moves
// the right way: more loss, lower expected PSNR and more expected
// concealment.
func TestEvaluateMonotoneInLoss(t *testing.T) {
	_, model := testSequence(t, synth.RegimeForeman, 6, 0.5, 0.1)
	rates := []float64{0, 0.05, 0.2, 0.5}
	var lastPSNR, lastConcealed float64
	for i, rate := range rates {
		loss, err := analytic.NewIID(rate)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := model.Evaluate(loss)
		if err != nil {
			t.Fatal(err)
		}
		psnr := rep.ExpPSNR.Mean()
		if i > 0 {
			if psnr >= lastPSNR {
				t.Fatalf("rate %v: ExpPSNR %v not below %v", rate, psnr, lastPSNR)
			}
			if rep.ExpConcealedMBs <= lastConcealed {
				t.Fatalf("rate %v: ExpConcealedMBs %v not above %v", rate, rep.ExpConcealedMBs, lastConcealed)
			}
		}
		lastPSNR, lastConcealed = psnr, rep.ExpConcealedMBs
	}
}

// TestEvaluateGEMatchesIIDWhenDegenerate pins a degenerate
// Gilbert–Elliott chain (never leaves the good state) to the i.i.d.
// process at the same rate across the full report.
func TestEvaluateGEMatchesIIDWhenDegenerate(t *testing.T) {
	_, model := testSequence(t, synth.RegimeForeman, 6, 0.5, 0.1)
	ge, err := analytic.NewGE(network.GEConfig{PGoodToBad: 0, PBadToGood: 1, LossGood: 0.15, LossBad: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	iid, err := analytic.NewIID(0.15)
	if err != nil {
		t.Fatal(err)
	}
	geRep, err := model.Evaluate(ge)
	if err != nil {
		t.Fatal(err)
	}
	iidRep, err := model.Evaluate(iid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(geRep.ExpPSNR.Mean()-iidRep.ExpPSNR.Mean()) > 1e-9 {
		t.Fatalf("ExpPSNR %v (GE) vs %v (IID)", geRep.ExpPSNR.Mean(), iidRep.ExpPSNR.Mean())
	}
	if math.Abs(geRep.ExpPacketsLost-iidRep.ExpPacketsLost) > 1e-9 {
		t.Fatalf("ExpPacketsLost %v (GE) vs %v (IID)", geRep.ExpPacketsLost, iidRep.ExpPacketsLost)
	}
	if math.Abs(geRep.ExpLostFrames-iidRep.ExpLostFrames) > 1e-9 {
		t.Fatalf("ExpLostFrames %v (GE) vs %v (IID)", geRep.ExpLostFrames, iidRep.ExpLostFrames)
	}
}

// TestEvaluateBurstinessMatters checks the Markov extension changes
// the answer: at equal average loss, a bursty chain concentrates
// losses and must yield a different whole-frame-loss expectation than
// i.i.d. loss.
func TestEvaluateBurstinessMatters(t *testing.T) {
	_, model := testSequence(t, synth.RegimeForeman, 6, 0.5, 0.1)
	cfg := network.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.45, LossGood: 0, LossBad: 1}
	ge, err := analytic.NewGE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := ge.SteadyStateLoss()
	iid, err := analytic.NewIID(avg)
	if err != nil {
		t.Fatal(err)
	}
	geRep, err := model.Evaluate(ge)
	if err != nil {
		t.Fatal(err)
	}
	iidRep, err := model.Evaluate(iid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(geRep.ExpLostFrames-iidRep.ExpLostFrames) < 1e-6 {
		t.Fatalf("burst chain indistinguishable from i.i.d.: ExpLostFrames %v vs %v",
			geRep.ExpLostFrames, iidRep.ExpLostFrames)
	}
}

// TestBankPrefersCheapCandidateWithinMargin builds a two-candidate
// bank and checks the margin logic directly: when both candidates'
// expected quality ties (no loss), the cheaper encode wins; under
// heavy loss the more refreshed (better-quality) candidate must win if
// the gap exceeds the margin.
func TestBankPrefersCheapCandidateWithinMargin(t *testing.T) {
	_, low := testSequence(t, synth.RegimeForeman, 6, 0.1, 0.1)
	_, high := testSequence(t, synth.RegimeForeman, 6, 0.9, 0.1)
	bank, err := analytic.NewBank([]analytic.Candidate{
		{IntraTh: 0.9, EnergyJ: 2.0, Model: high},
		{IntraTh: 0.1, EnergyJ: 1.0, Model: low},
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Quality surfaces at the endpoints for context.
	for _, rate := range []float64{0, 0.3} {
		cand, rep, err := bank.Best(rate)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil {
			t.Fatal("nil report")
		}
		// At rate 0 both candidates clean-decode: quality within margin,
		// so the cheaper (lower-energy) one must be chosen.
		if rate == 0 && cand.EnergyJ != 1.0 {
			t.Fatalf("rate 0: chose energy %v, want the cheaper candidate", cand.EnergyJ)
		}
	}

	th, err := bank.BestIntraTh(0)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.1 {
		t.Fatalf("BestIntraTh(0) = %v, want 0.1", th)
	}

	if _, err := analytic.NewBank(nil, 0); err == nil {
		t.Fatal("empty bank accepted")
	}
	if _, _, err := bank.Best(math.NaN()); err == nil {
		t.Fatal("NaN loss rate accepted")
	}
}

// TestExtractValidation covers the constructor-style errors.
func TestExtractValidation(t *testing.T) {
	src := synth.Shared(synth.RegimeForeman)
	if _, err := analytic.Extract(nil, src, analytic.Config{}); err == nil {
		t.Fatal("nil sequence accepted")
	}
	spec, _ := testSequence(t, synth.RegimeForeman, 2, 0.5, 0.1)
	seq, err := experiment.Encode(nil, *spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analytic.Extract(seq, nil, analytic.Config{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := analytic.Extract(seq, src, analytic.Config{SimilarityScale: math.NaN()}); err == nil {
		t.Fatal("NaN similarity scale accepted")
	}
	if _, err := analytic.Extract(seq, src, analytic.Config{SimilarityScale: -1}); err == nil {
		t.Fatal("negative similarity scale accepted")
	}
	model, err := analytic.Extract(seq, src, analytic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate(nil); err == nil {
		t.Fatal("nil loss accepted")
	}
}
