package motion

import "pbpair/internal/video"

// Reference (scalar, per-pixel) half-pel kernels — the original
// implementations of SAD16Half and CompensateHalf, kept exported as
// ground truth for the differential harness (TestHalfPelEquiv /
// FuzzSADEquiv). Do not optimise these; their value is that they are
// obviously-correct transcriptions of the H.263 §6.1.2 rounding rules.

// interpPixel samples the reference plane at half-pel position
// (2·x0+fx, 2·y0+fy) with H.263 rounding. Callers guarantee x0+1/y0+1
// stay in bounds whenever the corresponding frac is 1.
func interpPixel(ref []uint8, stride, x0, y0, fx, fy int) int32 {
	a := int32(ref[y0*stride+x0])
	switch {
	case fx == 0 && fy == 0:
		return a
	case fx == 1 && fy == 0:
		b := int32(ref[y0*stride+x0+1])
		return (a + b + 1) / 2
	case fx == 0 && fy == 1:
		c := int32(ref[(y0+1)*stride+x0])
		return (a + c + 1) / 2
	default:
		b := int32(ref[y0*stride+x0+1])
		c := int32(ref[(y0+1)*stride+x0])
		d := int32(ref[(y0+1)*stride+x0+1])
		return (a + b + c + d + 2) / 4
	}
}

// SAD16HalfRef is the scalar reference implementation of SAD16Half:
// one interpPixel call per pixel, per-row early exit and per-row
// PixelOps accounting identical to the vectorized kernel.
func SAD16HalfRef(cur, ref *video.Frame, cx, cy int, hv HalfVector, limit int32, stats *Stats) int32 {
	intPart, fx, fy := hv.Split()
	if fx == 0 && fy == 0 {
		return SAD16Ref(cur, ref, cx, cy, cx+intPart.X, cy+intPart.Y, limit, stats)
	}
	if stats != nil {
		stats.SADCalls++
	}
	x0 := cx + intPart.X
	y0 := cy + intPart.Y
	var sum int32
	cw, rw := cur.Width, ref.Width
	for r := 0; r < video.MBSize; r++ {
		c := cur.Y[(cy+r)*cw+cx:]
		for i := 0; i < video.MBSize; i++ {
			p := interpPixel(ref.Y, rw, x0+i, y0+r, fx, fy)
			d := int32(c[i]) - p
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if stats != nil {
			stats.PixelOps += video.MBSize * halfPelOpsPerPixel
		}
		if sum > limit {
			return sum
		}
	}
	return sum
}

// CompensateHalfRef is the scalar reference implementation of
// CompensateHalf, including the chroma edge clamping.
func CompensateHalfRef(dst, ref *video.Frame, mbRow, mbCol int, hv HalfVector) {
	intPart, fx, fy := hv.Split()
	if fx == 0 && fy == 0 {
		Compensate(dst, ref, mbRow, mbCol, intPart)
		return
	}
	x := mbCol * video.MBSize
	y := mbRow * video.MBSize
	w := ref.Width
	x0 := x + intPart.X
	y0 := y + intPart.Y
	for r := 0; r < video.MBSize; r++ {
		for c := 0; c < video.MBSize; c++ {
			dst.Y[(y+r)*w+x+c] = uint8(interpPixel(ref.Y, w, x0+c, y0+r, fx, fy))
		}
	}

	chv := HalfVector{X: chromaHalfMV(hv.X), Y: chromaHalfMV(hv.Y)}
	cInt, cfx, cfy := chv.Split()
	cw := ref.ChromaWidth()
	ch := ref.ChromaHeight()
	ccx := mbCol * (video.MBSize / 2)
	ccy := mbRow * (video.MBSize / 2)
	cx0 := ccx + cInt.X
	cy0 := ccy + cInt.Y
	// Clamp the chroma fractional footprint at the frame edge (the
	// rounding rule can ask for one sample beyond what the luma
	// footprint guarantees).
	if cfx == 1 && cx0+video.MBSize/2 >= cw {
		cfx = 0
	}
	if cfy == 1 && cy0+video.MBSize/2 >= ch {
		cfy = 0
	}
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx0+video.MBSize/2 > cw {
		cx0 = cw - video.MBSize/2
	}
	if cy0+video.MBSize/2 > ch {
		cy0 = ch - video.MBSize/2
	}
	for r := 0; r < video.MBSize/2; r++ {
		for c := 0; c < video.MBSize/2; c++ {
			dst.Cb[(ccy+r)*cw+ccx+c] = uint8(interpPixel(ref.Cb, cw, cx0+c, cy0+r, cfx, cfy))
			dst.Cr[(ccy+r)*cw+ccx+c] = uint8(interpPixel(ref.Cr, cw, cx0+c, cy0+r, cfx, cfy))
		}
	}
}
