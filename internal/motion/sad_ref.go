package motion

import "pbpair/internal/video"

// Reference (scalar) SAD kernels. These are the original byte-at-a-time
// implementations the SWAR kernels in swar.go replaced; they are kept
// exported as the ground truth for the differential equivalence
// harness (TestSADEquiv / FuzzSADEquiv) and must never be edited for
// speed. The contract is exact equivalence: for any legal input,
// SAD16(x) == SAD16Ref(x) — including the returned partial sum on
// early termination and the Stats deltas.

// SAD16Ref is the scalar reference implementation of SAD16. It scans
// row by row, accumulating |a−b| per pixel, counting a full row into
// stats.PixelOps before the early-exit check — the same per-row
// granularity the SWAR kernel preserves.
func SAD16Ref(cur, ref *video.Frame, cx, cy, rx, ry int, limit int32, stats *Stats) int32 {
	if stats != nil {
		stats.SADCalls++
	}
	var sum int32
	cw, rw := cur.Width, ref.Width
	for r := 0; r < video.MBSize; r++ {
		c := cur.Y[(cy+r)*cw+cx:]
		p := ref.Y[(ry+r)*rw+rx:]
		for i := 0; i < video.MBSize; i++ {
			d := int32(c[i]) - int32(p[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if stats != nil {
			stats.PixelOps += video.MBSize
		}
		if sum > limit {
			return sum
		}
	}
	return sum
}

// SADSelfRef is the scalar reference implementation of SADSelf.
func SADSelfRef(cur *video.Frame, cx, cy int, stats *Stats) int32 {
	if stats != nil {
		stats.SADCalls++
		stats.PixelOps += video.MBSize * video.MBSize
	}
	w := cur.Width
	var sum int32
	for r := 0; r < video.MBSize; r++ {
		row := cur.Y[(cy+r)*w+cx:]
		for i := 0; i < video.MBSize; i++ {
			sum += int32(row[i])
		}
	}
	mean := (sum + video.MBSize*video.MBSize/2) / (video.MBSize * video.MBSize)
	var dev int32
	for r := 0; r < video.MBSize; r++ {
		row := cur.Y[(cy+r)*w+cx:]
		for i := 0; i < video.MBSize; i++ {
			d := int32(row[i]) - mean
			if d < 0 {
				d = -d
			}
			dev += d
		}
	}
	return dev
}
