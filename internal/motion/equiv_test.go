package motion

import (
	"math"
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// Differential harness: the SWAR kernels must be bit-exact with the
// scalar references in sad_ref.go / halfpel_ref.go — same return
// values (including early-exit partial sums) and same Stats deltas —
// across the full input domain. Seeded randomized property tests run
// on every `go test`; FuzzSADEquiv extends the same checks to
// fuzzer-chosen inputs.

// extremeFrame is randFrame (motion_test.go) plus extreme patches —
// all-0 and all-255 16x16 corner blocks — so saturated lanes and
// zero-difference rows get exercised.
func extremeFrame(rng *rand.Rand, w, h int) *video.Frame {
	f := randFrame(rng, w, h)
	for r := 0; r < video.MBSize; r++ {
		for c := 0; c < video.MBSize; c++ {
			f.Y[r*w+c] = 0
			f.Y[r*w+w-video.MBSize+c] = 255
		}
	}
	return f
}

func TestSADEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cur := extremeFrame(rng, video.QCIFWidth, video.QCIFHeight)
	ref := extremeFrame(rng, video.QCIFWidth, video.QCIFHeight)
	maxX := video.QCIFWidth - video.MBSize
	maxY := video.QCIFHeight - video.MBSize
	for i := 0; i < 5000; i++ {
		cx, cy := rng.Intn(maxX+1), rng.Intn(maxY+1)
		rx, ry := rng.Intn(maxX+1), rng.Intn(maxY+1)
		var limit int32 = math.MaxInt32
		if i%3 == 1 {
			limit = int32(rng.Intn(5000)) // frequently triggers early exit
		} else if i%3 == 2 {
			limit = int32(rng.Intn(200))
		}
		var sf, sr Stats
		got := SAD16(cur, ref, cx, cy, rx, ry, limit, &sf)
		want := SAD16Ref(cur, ref, cx, cy, rx, ry, limit, &sr)
		if got != want {
			t.Fatalf("SAD16(%d,%d vs %d,%d limit=%d) = %d, ref %d", cx, cy, rx, ry, limit, got, want)
		}
		if sf != sr {
			t.Fatalf("SAD16 stats diverge: fast %+v ref %+v", sf, sr)
		}
	}
}

func TestSADSelfEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cur := extremeFrame(rng, video.QCIFWidth, video.QCIFHeight)
	for i := 0; i < 2000; i++ {
		cx := rng.Intn(video.QCIFWidth - video.MBSize + 1)
		cy := rng.Intn(video.QCIFHeight - video.MBSize + 1)
		var sf, sr Stats
		got := SADSelf(cur, cx, cy, &sf)
		want := SADSelfRef(cur, cx, cy, &sr)
		if got != want {
			t.Fatalf("SADSelf(%d,%d) = %d, ref %d", cx, cy, got, want)
		}
		if sf != sr {
			t.Fatalf("SADSelf stats diverge: fast %+v ref %+v", sf, sr)
		}
	}
}

func TestHalfPelEquiv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cur := extremeFrame(rng, video.QCIFWidth, video.QCIFHeight)
	ref := extremeFrame(rng, video.QCIFWidth, video.QCIFHeight)
	mbCols := video.QCIFWidth / video.MBSize
	mbRows := video.QCIFHeight / video.MBSize
	for i := 0; i < 3000; i++ {
		mbCol, mbRow := rng.Intn(mbCols), rng.Intn(mbRows)
		cx, cy := mbCol*video.MBSize, mbRow*video.MBSize
		hv := HalfVector{X: rng.Intn(31) - 15, Y: rng.Intn(31) - 15}
		if !halfFootprintLegal(ref, cx, cy, hv) {
			continue
		}
		var limit int32 = math.MaxInt32
		if i%2 == 1 {
			limit = int32(rng.Intn(4000))
		}
		var sf, sr Stats
		got := SAD16Half(cur, ref, cx, cy, hv, limit, &sf)
		want := SAD16HalfRef(cur, ref, cx, cy, hv, limit, &sr)
		if got != want {
			t.Fatalf("SAD16Half(mb %d,%d hv %+v limit=%d) = %d, ref %d", mbRow, mbCol, hv, limit, got, want)
		}
		if sf != sr {
			t.Fatalf("SAD16Half stats diverge: fast %+v ref %+v", sf, sr)
		}

		dstFast := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
		dstRef := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
		CompensateHalf(dstFast, ref, mbRow, mbCol, hv)
		CompensateHalfRef(dstRef, ref, mbRow, mbCol, hv)
		if !framesEqual(dstFast, dstRef) {
			t.Fatalf("CompensateHalf diverges at mb %d,%d hv %+v", mbRow, mbCol, hv)
		}
	}
}

func framesEqual(a, b *video.Frame) bool {
	if len(a.Y) != len(b.Y) {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	for i := range a.Cb {
		if a.Cb[i] != b.Cb[i] || a.Cr[i] != b.Cr[i] {
			return false
		}
	}
	return true
}

// FuzzSADEquiv lets the fuzzer choose block contents, displacements
// and limits; fast and reference kernels must agree exactly. The two
// 16x16 blocks are carved from the fuzz data, so the full byte domain
// is reachable.
func FuzzSADEquiv(f *testing.F) {
	f.Add(make([]byte, 512), uint16(0), uint16(0), int32(math.MaxInt32), false)
	f.Add(make([]byte, 512), uint16(3), uint16(70), int32(100), true)
	seed := make([]byte, 512)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed, uint16(40), uint16(41), int32(2000), true)

	f.Fuzz(func(t *testing.T, data []byte, posA, posB uint16, limit int32, half bool) {
		const w, h = 48, 48 // 3x3 macroblocks
		if len(data) == 0 {
			data = []byte{0}
		}
		// Both frames are filled from the fuzz data, cycling, so every
		// byte pattern the fuzzer finds lands in pixel memory.
		cur := video.NewFrame(w, h)
		ref := video.NewFrame(w, h)
		for i := range cur.Y {
			cur.Y[i] = data[i%len(data)]
			ref.Y[i] = data[(i*13+7)%len(data)]
		}
		maxOff := w - video.MBSize
		cx := int(posA) % (maxOff + 1)
		cy := int(posA) / 251 % (maxOff + 1)
		rx := int(posB) % (maxOff + 1)
		ry := int(posB) / 251 % (maxOff + 1)
		if limit < 0 {
			limit = -limit
		}

		var sf, sr Stats
		got := SAD16(cur, ref, cx, cy, rx, ry, limit, &sf)
		want := SAD16Ref(cur, ref, cx, cy, rx, ry, limit, &sr)
		if got != want || sf != sr {
			t.Fatalf("SAD16 diverges: %d/%+v vs %d/%+v", got, sf, want, sr)
		}

		gotSelf := SADSelf(cur, cx, cy, nil)
		wantSelf := SADSelfRef(cur, cx, cy, nil)
		if gotSelf != wantSelf {
			t.Fatalf("SADSelf diverges: %d vs %d", gotSelf, wantSelf)
		}

		if half {
			hv := HalfVector{X: rx - cx + 1, Y: ry - cy + 1}
			if halfFootprintLegal(ref, cx, cy, hv) {
				var hf, hr Stats
				g := SAD16Half(cur, ref, cx, cy, hv, limit, &hf)
				wnt := SAD16HalfRef(cur, ref, cx, cy, hv, limit, &hr)
				if g != wnt || hf != hr {
					t.Fatalf("SAD16Half diverges: %d/%+v vs %d/%+v", g, hf, wnt, hr)
				}
			}
		}
	})
}
