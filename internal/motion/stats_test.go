package motion

import (
	"math"
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// flatFrame returns a frame with every luma sample set to v.
func flatFrame(w, h int, v uint8) *video.Frame {
	f := video.NewFrame(w, h)
	for i := range f.Y {
		f.Y[i] = v
	}
	return f
}

// TestPixelOpsContract pins the Stats.PixelOps accounting documented
// on Stats: pixels actually loaded, counted one 16-pixel row at a
// time, with the row that trips the early-exit limit included and
// every row after it excluded. The energy model consumes these counts
// directly, so they are part of the kernel contract, not a debugging
// aid.
func TestPixelOpsContract(t *testing.T) {
	const w, h = 48, 48
	cur := flatFrame(w, h, 255)
	ref := flatFrame(w, h, 0)
	// Each fully-scanned row contributes 16 * |255-0| to the SAD.
	const rowSAD = video.MBSize * 255

	t.Run("SAD16 full scan", func(t *testing.T) {
		var st Stats
		SAD16(cur, ref, 16, 16, 16, 16, math.MaxInt32, &st)
		if want := int64(video.MBSize * video.MBSize); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d (all 16 rows)", st.PixelOps, want)
		}
		if st.SADCalls != 1 {
			t.Fatalf("SADCalls = %d, want 1", st.SADCalls)
		}
	})

	t.Run("SAD16 first row trips the limit", func(t *testing.T) {
		var st Stats
		// limit just below one row's SAD: row 0 is loaded, its pixels
		// count, and no further row is touched.
		SAD16(cur, ref, 16, 16, 16, 16, rowSAD-1, &st)
		if want := int64(video.MBSize); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d (exactly the tripping row)", st.PixelOps, want)
		}
	})

	t.Run("SAD16 limit on the row boundary", func(t *testing.T) {
		var st Stats
		// limit equal to one row's SAD: the exit test is sum > limit,
		// so row 0 passes and row 1 trips — two rows counted.
		SAD16(cur, ref, 16, 16, 16, 16, rowSAD, &st)
		if want := int64(2 * video.MBSize); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d (two rows)", st.PixelOps, want)
		}
	})

	t.Run("SAD16 row granularity on random frames", func(t *testing.T) {
		rng := rand.New(rand.NewSource(77))
		a := randFrame(rng, w, h)
		b := randFrame(rng, w, h)
		for trial := 0; trial < 200; trial++ {
			var st Stats
			limit := int32(rng.Intn(70000))
			SAD16(a, b, 16, 16, rng.Intn(32), rng.Intn(32), limit, &st)
			if st.PixelOps%video.MBSize != 0 {
				t.Fatalf("trial %d: PixelOps = %d not a multiple of %d", trial, st.PixelOps, video.MBSize)
			}
			if st.PixelOps < video.MBSize || st.PixelOps > video.MBSize*video.MBSize {
				t.Fatalf("trial %d: PixelOps = %d outside [16, 256]", trial, st.PixelOps)
			}
		}
	})

	t.Run("SADSelf counts the whole block", func(t *testing.T) {
		var st Stats
		SADSelf(cur, 16, 16, &st)
		if want := int64(video.MBSize * video.MBSize); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d", st.PixelOps, want)
		}
	})

	t.Run("SAD16Half weights interpolated rows", func(t *testing.T) {
		var st Stats
		hv := HalfVector{X: 1, Y: 1} // true half-pel: every pixel interpolated
		SAD16Half(cur, ref, 16, 16, hv, math.MaxInt32, &st)
		if want := int64(video.MBSize * video.MBSize * halfPelOpsPerPixel); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d (3 ops per interpolated pixel)", st.PixelOps, want)
		}
		st = Stats{}
		SAD16Half(cur, ref, 16, 16, hv, int32(rowSAD-1), &st)
		if want := int64(video.MBSize * halfPelOpsPerPixel); st.PixelOps != want {
			t.Fatalf("early exit: PixelOps = %d, want %d (one interpolated row)", st.PixelOps, want)
		}
	})

	t.Run("SAD16Half integer displacement falls back to SAD16 accounting", func(t *testing.T) {
		var st Stats
		SAD16Half(cur, ref, 16, 16, HalfVector{X: 2, Y: 0}, math.MaxInt32, &st)
		if want := int64(video.MBSize * video.MBSize); st.PixelOps != want {
			t.Fatalf("PixelOps = %d, want %d (plain SAD weight)", st.PixelOps, want)
		}
	})
}
