package motion

import (
	"math"
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

func randFrame(rng *rand.Rand, w, h int) *video.Frame {
	f := video.NewFrame(w, h)
	for i := range f.Y {
		f.Y[i] = uint8(rng.Intn(256))
	}
	for i := range f.Cb {
		f.Cb[i] = uint8(rng.Intn(256))
		f.Cr[i] = uint8(rng.Intn(256))
	}
	return f
}

// shiftFrame returns a copy of f whose luma content is translated by
// (dx, dy); uncovered areas replicate the border.
func shiftFrame(f *video.Frame, dx, dy int) *video.Frame {
	g := video.NewFrame(f.Width, f.Height)
	for y := 0; y < f.Height; y++ {
		sy := clamp(y-dy, 0, f.Height-1)
		for x := 0; x < f.Width; x++ {
			sx := clamp(x-dx, 0, f.Width-1)
			g.Y[y*f.Width+x] = f.Y[sy*f.Width+sx]
		}
	}
	cw, ch := f.ChromaWidth(), f.ChromaHeight()
	for y := 0; y < ch; y++ {
		sy := clamp(y-dy/2, 0, ch-1)
		for x := 0; x < cw; x++ {
			sx := clamp(x-dx/2, 0, cw-1)
			g.Cb[y*cw+x] = f.Cb[sy*cw+sx]
			g.Cr[y*cw+x] = f.Cr[sy*cw+sx]
		}
	}
	return g
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestSAD16IdenticalBlocksZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randFrame(rng, 64, 64)
	var stats Stats
	if sad := SAD16(f, f, 16, 16, 16, 16, math.MaxInt32, &stats); sad != 0 {
		t.Fatalf("SAD of identical blocks = %d", sad)
	}
	if stats.SADCalls != 1 {
		t.Fatalf("SADCalls = %d, want 1", stats.SADCalls)
	}
	if stats.PixelOps != 256 {
		t.Fatalf("PixelOps = %d, want 256", stats.PixelOps)
	}
}

func TestSAD16KnownValue(t *testing.T) {
	a := video.NewFrame(16, 16)
	b := video.NewFrame(16, 16)
	a.Fill(100, 128, 128)
	b.Fill(97, 128, 128)
	if sad := SAD16(a, b, 0, 0, 0, 0, math.MaxInt32, nil); sad != 3*256 {
		t.Fatalf("SAD = %d, want %d", sad, 3*256)
	}
}

func TestSAD16EarlyTermination(t *testing.T) {
	a := video.NewFrame(16, 16)
	b := video.NewFrame(16, 16)
	a.Fill(255, 128, 128)
	b.Fill(0, 128, 128)
	var stats Stats
	sad := SAD16(a, b, 0, 0, 0, 0, 100, &stats)
	if sad <= 100 {
		t.Fatalf("early-terminated SAD %d should exceed the limit", sad)
	}
	if stats.PixelOps >= 256 {
		t.Fatalf("no early termination: %d pixel ops", stats.PixelOps)
	}
}

func TestSADSelf(t *testing.T) {
	f := video.NewFrame(16, 16)
	f.Fill(100, 128, 128)
	if dev := SADSelf(f, 0, 0, nil); dev != 0 {
		t.Fatalf("flat block self-deviation = %d", dev)
	}
	// Half 0, half 200: mean 100, every pixel deviates by 100.
	for i := range f.Y {
		if i%2 == 0 {
			f.Y[i] = 0
		} else {
			f.Y[i] = 200
		}
	}
	if dev := SADSelf(f, 0, 0, nil); dev != 100*256 {
		t.Fatalf("self-deviation = %d, want %d", dev, 100*256)
	}
}

func TestFullSearchFindsExactShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	tests := []Vector{{3, 2}, {-4, 1}, {0, -5}, {7, 7}, {-7, -7}}
	for _, shift := range tests {
		cur := shiftFrame(ref, shift.X, shift.Y)
		// Content moved by +shift, so the motion vector pointing back
		// at the reference is −shift.
		want := Vector{-shift.X, -shift.Y}
		// Interior MB far from borders so the true vector is legal.
		res := Search(cur, ref, 4, 5, Config{Range: 7, Kind: FullSearch}, nil)
		if res.MV != want {
			t.Errorf("shift %v: found %v, want %v (SAD %d)", shift, res.MV, want, res.SAD)
		}
		if res.SAD != 0 {
			t.Errorf("shift %v: SAD = %d, want 0", shift, res.SAD)
		}
	}
}

// smoothFrame builds a smooth random luma field (a coarse lattice
// bilinearly upsampled), so the SAD surface is unimodal and a
// logarithmic search can follow its gradient.
func smoothFrame(rng *rand.Rand, w, h int) *video.Frame {
	const cell = 16
	lw, lh := w/cell+2, h/cell+2
	lattice := make([]int, lw*lh)
	for i := range lattice {
		lattice[i] = rng.Intn(256)
	}
	f := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		ly, fy := y/cell, y%cell
		for x := 0; x < w; x++ {
			lx, fx := x/cell, x%cell
			v00 := lattice[ly*lw+lx]
			v10 := lattice[ly*lw+lx+1]
			v01 := lattice[(ly+1)*lw+lx]
			v11 := lattice[(ly+1)*lw+lx+1]
			top := v00*(cell-fx) + v10*fx
			bot := v01*(cell-fx) + v11*fx
			f.Y[y*w+x] = uint8((top*(cell-fy) + bot*fy) / (cell * cell))
		}
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	return f
}

func TestThreeStepFindsExactShiftOnSmoothContent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := smoothFrame(rng, video.QCIFWidth, video.QCIFHeight)
	for _, shift := range []Vector{{4, 0}, {-2, 3}, {1, 1}} {
		cur := shiftFrame(ref, shift.X, shift.Y)
		res := Search(cur, ref, 4, 5, Config{Range: 7, Kind: ThreeStep}, nil)
		if res.SAD != 0 {
			t.Errorf("shift %v: TSS found %v with SAD %d, want exact match", shift, res.MV, res.SAD)
		}
	}
}

func TestThreeStepMuchCheaperThanFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := shiftFrame(ref, 3, -2)
	var fullStats, tssStats Stats
	Search(cur, ref, 4, 5, Config{Range: 15, Kind: FullSearch}, &fullStats)
	Search(cur, ref, 4, 5, Config{Range: 15, Kind: ThreeStep}, &tssStats)
	if tssStats.SADCalls*5 > fullStats.SADCalls {
		t.Fatalf("TSS (%d calls) not clearly cheaper than full (%d calls)",
			tssStats.SADCalls, fullStats.SADCalls)
	}
}

func TestSearchRespectsFrameBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	// Corner MBs with a big range: all candidates must stay legal (no
	// panics) and vectors within the window.
	for _, mb := range [][2]int{{0, 0}, {0, 10}, {8, 0}, {8, 10}} {
		for _, kind := range []SearchKind{FullSearch, ThreeStep} {
			res := Search(cur, ref, mb[0], mb[1], Config{Range: 15, Kind: kind}, nil)
			if res.MV.X < -15 || res.MV.X > 15 || res.MV.Y < -15 || res.MV.Y > 15 {
				t.Fatalf("MB %v kind %v: vector %v outside range", mb, kind, res.MV)
			}
			x := mb[1]*video.MBSize + res.MV.X
			y := mb[0]*video.MBSize + res.MV.Y
			if x < 0 || y < 0 || x+16 > cur.Width || y+16 > cur.Height {
				t.Fatalf("MB %v kind %v: reference block out of frame (%d, %d)", mb, kind, x, y)
			}
		}
	}
}

func TestSearchZeroRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := randFrame(rng, 64, 64)
	cur := randFrame(rng, 64, 64)
	res := Search(cur, ref, 1, 1, Config{Range: 0}, nil)
	if !res.MV.IsZero() {
		t.Fatalf("zero-range search returned %v", res.MV)
	}
}

func TestSearchPenaltyBiasesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := shiftFrame(ref, -5, 0) // content shifted −5 → true MV (5, 0)

	// A penalty that heavily punishes any non-zero horizontal component
	// forces the search away from the SAD-optimal candidate — the
	// mechanism PBPAIR uses to avoid likely-damaged references.
	penalise := func(mv Vector) int32 {
		if mv.X != 0 {
			return 1 << 20
		}
		return 0
	}
	plain := Search(cur, ref, 4, 5, Config{Range: 7}, nil)
	biased := Search(cur, ref, 4, 5, Config{Range: 7, Penalty: penalise}, nil)
	if plain.MV != (Vector{5, 0}) {
		t.Fatalf("unbiased search missed true motion: %v", plain.MV)
	}
	if biased.MV.X != 0 {
		t.Fatalf("biased search still picked X=%d", biased.MV.X)
	}
	if biased.Cost < biased.SAD {
		t.Fatalf("cost %d < sad %d violates contract", biased.Cost, biased.SAD)
	}
}

func TestSearchTiePrefersZeroVector(t *testing.T) {
	// Flat frames: every candidate has SAD 0; the zero vector is
	// seeded first and must win ties.
	a := video.NewFrame(64, 64)
	b := video.NewFrame(64, 64)
	a.Fill(77, 128, 128)
	b.Fill(77, 128, 128)
	for _, kind := range []SearchKind{FullSearch, ThreeStep} {
		res := Search(a, b, 1, 1, Config{Range: 7, Kind: kind}, nil)
		if !res.MV.IsZero() {
			t.Fatalf("kind %v: tie broke to %v, want zero vector", kind, res.MV)
		}
	}
}

func TestFullSearchCandidateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	var stats Stats
	// Interior MB with range 3: all (2*3+1)^2 = 49 candidates legal.
	Search(cur, ref, 4, 5, Config{Range: 3}, &stats)
	if want := int64(FullSearchCandidates(3)); stats.SADCalls != want {
		t.Fatalf("SADCalls = %d, want %d", stats.SADCalls, want)
	}
}

func TestCompensateZeroVectorCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	dst := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	Compensate(dst, ref, 2, 3, Vector{})
	want := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	video.CopyMB(want, ref, 2, 3)
	if !dst.Equal(want) {
		t.Fatal("zero-vector compensation differs from direct MB copy")
	}
}

func TestCompensateRecoversShiftedContent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	mv := Vector{4, -6}
	cur := shiftFrame(ref, -mv.X, -mv.Y)
	dst := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	Compensate(dst, ref, 4, 5, mv)
	// Prediction luma must equal the current frame's MB exactly.
	x, y := 5*16, 4*16
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if dst.Y[(y+r)*dst.Width+x+c] != cur.Y[(y+r)*cur.Width+x+c] {
				t.Fatalf("luma mismatch at (%d,%d)", c, r)
			}
		}
	}
}

func TestCompensateChromaBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	dst := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	// Extreme legal vectors at frame corners must not panic.
	Compensate(dst, ref, 0, 0, Vector{15, 15})
	Compensate(dst, ref, 8, 10, Vector{-15, -15})
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SADCalls: 3, PixelOps: 100}
	a.Add(Stats{SADCalls: 2, PixelOps: 50})
	if a.SADCalls != 5 || a.PixelOps != 150 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestSearchKindString(t *testing.T) {
	if FullSearch.String() != "full" || ThreeStep.String() != "tss" {
		t.Fatal("kind names wrong")
	}
	if SearchKind(0).String() != "SearchKind(0)" {
		t.Fatal("zero kind string wrong")
	}
}

func BenchmarkFullSearchRange15(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := shiftFrame(ref, 3, -2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Search(cur, ref, 4, 5, Config{Range: 15, Kind: FullSearch}, nil)
	}
}

func BenchmarkThreeStepRange15(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := shiftFrame(ref, 3, -2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Search(cur, ref, 4, 5, Config{Range: 15, Kind: ThreeStep}, nil)
	}
}
