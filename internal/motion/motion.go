// Package motion implements the ME / MC stage of the codec: 16x16 sum
// of absolute differences (SAD), full and three-step block search with
// a pluggable candidate cost, and integer-pel motion compensation.
//
// Motion estimation is the paper's energy lever: it is "the most power
// consuming operation in a predictive video compression algorithm", so
// every search reports exact operation counts (Stats) that the energy
// model converts to Joules. PBPAIR's probability-aware motion-vector
// selection plugs in through Config.Cost.
//
// All search and compensation functions are pure over their frame
// arguments and accumulate work counts only into the *Stats the caller
// passes, so concurrent searches over disjoint macroblocks are safe as
// long as each goroutine uses its own Stats — the contract behind the
// encoder's macroblock-row sharding (codec.Config.Workers). Stats is an
// additive tally; per-shard copies merged with Add in shard order equal
// a serial run's tally exactly.
package motion

import (
	"fmt"
	"math"

	"pbpair/internal/swar"
	"pbpair/internal/video"
)

// Vector is an integer-pel motion vector in luma pixels.
type Vector struct {
	X, Y int
}

// IsZero reports whether v is the zero vector.
func (v Vector) IsZero() bool { return v.X == 0 && v.Y == 0 }

// Stats counts the work a search performed. Counts are exact, not
// estimates: PixelOps reflects early termination.
//
// PixelOps contract: it counts pixels actually loaded from memory, at
// the granularity the kernel loads them — one 16-pixel row at a time.
// SAD16 adds video.MBSize per row after that row has been fully
// processed and before the early-exit check, so the row that trips the
// limit is counted (its pixels were loaded) and rows after it are not.
// A terminated scan therefore always reports a multiple of
// video.MBSize equal to 16 × (rows scanned). SADSelf always processes
// the whole block and counts MBSize². SAD16Half counts
// 3 × video.MBSize per row scanned (each interpolated pixel costs the
// bilinear blend plus the difference — see halfPelOpsPerPixel). The
// SWAR kernels load 8 pixels per machine word but preserve exactly
// this per-row accounting, so energy-model outputs are unchanged.
type Stats struct {
	SADCalls int64 // 16x16 SAD evaluations started
	PixelOps int64 // per-pixel |a-b| operations actually executed
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SADCalls += other.SADCalls
	s.PixelOps += other.PixelOps
}

// SAD16 computes the sum of absolute differences between the 16x16
// luma block at (cx, cy) in cur and the one at (rx, ry) in ref. The
// scan aborts once the partial sum exceeds limit (use math.MaxInt32 to
// disable), returning a value > limit. Callers guarantee both blocks
// lie inside their frames.
//
// The implementation is SWAR (see internal/swar): each row is two uint64
// loads and branch-free 8-lane arithmetic. It is bit-exact with
// SAD16Ref — identical return values (including early-exit partial
// sums, which are checked at the same row boundaries) and identical
// Stats deltas.
func SAD16(cur, ref *video.Frame, cx, cy, rx, ry int, limit int32, stats *Stats) int32 {
	if stats != nil {
		stats.SADCalls++
	}
	var sum int32
	cw, rw := cur.Width, ref.Width
	co := cy*cw + cx
	po := ry*rw + rx
	for r := 0; r < video.MBSize; r++ {
		sum += swar.SADRow16(cur.Y[co:co+video.MBSize], ref.Y[po:po+video.MBSize])
		co += cw
		po += rw
		if stats != nil {
			stats.PixelOps += video.MBSize
		}
		if sum > limit {
			return sum
		}
	}
	return sum
}

// SADSelf returns the deviation of the 16x16 block at (cx, cy) from its
// own mean: Σ|p − mean|. This is the H.263 test-model "intra SAD" used
// by the inter/intra fallback decision (SADself in the paper's Figure
// 4 pseudo-code).
// SADSelf is SWAR like SAD16: the mean pass sums rows 16 bytes at a
// time, and the deviation pass reuses the |a−b| lanes against the mean
// replicated into every lane (the rounded mean of bytes always fits in
// a byte). Bit-exact with SADSelfRef.
func SADSelf(cur *video.Frame, cx, cy int, stats *Stats) int32 {
	if stats != nil {
		stats.SADCalls++
		stats.PixelOps += video.MBSize * video.MBSize
	}
	w := cur.Width
	var sum int32
	off := cy*w + cx
	for r := 0; r < video.MBSize; r++ {
		sum += swar.SumRow16(cur.Y[off : off+video.MBSize])
		off += w
	}
	mean := (sum + video.MBSize*video.MBSize/2) / (video.MBSize * video.MBSize)
	meanLanes := uint64(mean) * swar.LaneOnes
	var dev int32
	off = cy*w + cx
	for r := 0; r < video.MBSize; r++ {
		dev += swar.SADRow16Const(cur.Y[off:off+video.MBSize], meanLanes)
		off += w
	}
	return dev
}

// SearchKind selects the block-matching strategy.
type SearchKind int

// Search strategies. FullSearch examines every candidate in the window
// (the reference-encoder behaviour, maximally expensive); ThreeStep is
// the classic logarithmic search (much cheaper, slightly worse
// matches).
const (
	FullSearch SearchKind = iota + 1
	ThreeStep
)

// String names the search kind.
func (k SearchKind) String() string {
	switch k {
	case FullSearch:
		return "full"
	case ThreeStep:
		return "tss"
	default:
		return fmt.Sprintf("SearchKind(%d)", int(k))
	}
}

// PenaltyFunc returns a non-negative additive bias for a candidate
// motion vector; the search minimises SAD(mv) + penalty(mv). Because
// the penalty depends only on the vector, it is evaluated before the
// SAD, which keeps early-termination pruning exact. PBPAIR uses this
// hook to penalise references with low probability of correctness.
// Negative return values are treated as zero.
type PenaltyFunc func(mv Vector) int32

// Config parameterises a search.
type Config struct {
	// Range is the maximum |component| of a candidate vector (H.263
	// default ±15). Must be >= 0.
	Range int
	// Kind selects the strategy; zero value defaults to FullSearch.
	Kind SearchKind
	// Penalty optionally biases candidates; nil means raw SAD.
	Penalty PenaltyFunc
}

// Result is the outcome of a search.
type Result struct {
	MV   Vector
	SAD  int32 // raw SAD of the winning candidate
	Cost int32 // cost of the winning candidate (== SAD when Cost is nil)
}

// Search finds the best motion vector for macroblock (mbRow, mbCol) of
// cur against ref. Candidates are restricted so the reference block
// stays fully inside the frame (H.263 baseline). The zero vector is
// always evaluated first, so Search never fails.
func Search(cur, ref *video.Frame, mbRow, mbCol int, cfg Config, stats *Stats) Result {
	if cfg.Kind == 0 {
		cfg.Kind = FullSearch
	}
	if cfg.Range < 0 {
		cfg.Range = 0
	}
	cx := mbCol * video.MBSize
	cy := mbRow * video.MBSize

	// Legal displacement bounds keeping the block inside the frame.
	minX := -cx
	if -cfg.Range > minX {
		minX = -cfg.Range
	}
	maxX := cur.Width - video.MBSize - cx
	if cfg.Range < maxX {
		maxX = cfg.Range
	}
	minY := -cy
	if -cfg.Range > minY {
		minY = -cfg.Range
	}
	maxY := cur.Height - video.MBSize - cy
	if cfg.Range < maxY {
		maxY = cfg.Range
	}

	s := searcher{
		cur: cur, ref: ref,
		cx: cx, cy: cy,
		minX: minX, maxX: maxX, minY: minY, maxY: maxY,
		penalty: cfg.Penalty,
		stats:   stats,
		best:    Result{MV: Vector{}, SAD: math.MaxInt32, Cost: math.MaxInt32},
	}
	s.try(Vector{0, 0})

	switch cfg.Kind {
	case ThreeStep:
		s.threeStep(cfg.Range)
	default:
		s.full()
	}
	return s.best
}

type searcher struct {
	cur, ref               *video.Frame
	cx, cy                 int
	minX, maxX, minY, maxY int
	penalty                PenaltyFunc
	stats                  *Stats
	best                   Result
}

// try evaluates one candidate, keeping it if it beats the incumbent.
// Ties prefer the earlier candidate (and hence smaller vectors, given
// the evaluation orders used below). The vector penalty is known
// before the SAD, so pruning stays exact: the SAD scan aborts once the
// candidate cannot beat the incumbent even with its penalty included.
func (s *searcher) try(mv Vector) {
	if mv.X < s.minX || mv.X > s.maxX || mv.Y < s.minY || mv.Y > s.maxY {
		return
	}
	var pen int32
	if s.penalty != nil {
		pen = s.penalty(mv)
		if pen < 0 {
			pen = 0
		}
		if pen >= s.best.Cost {
			return // cannot win even with SAD 0
		}
	}
	limit := s.best.Cost - pen
	sad := SAD16(s.cur, s.ref, s.cx, s.cy, s.cx+mv.X, s.cy+mv.Y, limit, s.stats)
	if sad >= limit {
		return
	}
	s.best = Result{MV: mv, SAD: sad, Cost: sad + pen}
}

// full scans the whole window in raster order.
func (s *searcher) full() {
	for dy := s.minY; dy <= s.maxY; dy++ {
		for dx := s.minX; dx <= s.maxX; dx++ {
			if dx == 0 && dy == 0 {
				continue // already seeded
			}
			s.try(Vector{dx, dy})
		}
	}
}

// threeStep runs the classic three-step (logarithmic) search: evaluate
// the 8 neighbours of the current centre at the current step size,
// recentre on the winner, halve the step.
func (s *searcher) threeStep(searchRange int) {
	step := (searchRange + 1) / 2
	centre := Vector{0, 0}
	for step >= 1 {
		for _, d := range [8][2]int{
			{-1, -1}, {0, -1}, {1, -1},
			{-1, 0}, {1, 0},
			{-1, 1}, {0, 1}, {1, 1},
		} {
			s.try(Vector{centre.X + d[0]*step, centre.Y + d[1]*step})
		}
		centre = s.best.MV
		step /= 2
	}
}

// Compensate writes the motion-compensated prediction for macroblock
// (mbRow, mbCol) into dst: the 16x16 luma block of ref displaced by mv,
// plus the two 8x8 chroma blocks displaced by mv/2 (truncated toward
// zero, which keeps chroma references in bounds whenever the luma
// reference is). dst and ref must share dimensions.
func Compensate(dst, ref *video.Frame, mbRow, mbCol int, mv Vector) {
	x := mbCol * video.MBSize
	y := mbRow * video.MBSize
	w := ref.Width
	for r := 0; r < video.MBSize; r++ {
		src := ref.Y[(y+mv.Y+r)*w+x+mv.X:]
		copy(dst.Y[(y+r)*w+x:(y+r)*w+x+video.MBSize], src[:video.MBSize])
	}
	cmx, cmy := mv.X/2, mv.Y/2
	cw := ref.ChromaWidth()
	cx := mbCol * (video.MBSize / 2)
	cy := mbRow * (video.MBSize / 2)
	for r := 0; r < video.MBSize/2; r++ {
		srcOff := (cy+cmy+r)*cw + cx + cmx
		dstOff := (cy+r)*cw + cx
		copy(dst.Cb[dstOff:dstOff+video.MBSize/2], ref.Cb[srcOff:srcOff+video.MBSize/2])
		copy(dst.Cr[dstOff:dstOff+video.MBSize/2], ref.Cr[srcOff:srcOff+video.MBSize/2])
	}
}

// FullSearchCandidates returns the number of candidate evaluations a
// full search performs for an interior macroblock with the given
// range — used by tests and the energy-model calibration.
func FullSearchCandidates(searchRange int) int {
	n := 2*searchRange + 1
	return n * n
}
