package motion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbpair/internal/video"
)

func TestHalfVectorSplit(t *testing.T) {
	tests := []struct {
		h          HalfVector
		wantInt    Vector
		wantFX, fy int
	}{
		{HalfVector{0, 0}, Vector{0, 0}, 0, 0},
		{HalfVector{2, 4}, Vector{1, 2}, 0, 0},
		{HalfVector{3, 5}, Vector{1, 2}, 1, 1},
		{HalfVector{-1, -2}, Vector{-1, -1}, 1, 0},
		{HalfVector{-3, 1}, Vector{-2, 0}, 1, 1},
	}
	for _, tt := range tests {
		gotInt, fx, fy := tt.h.Split()
		if gotInt != tt.wantInt || fx != tt.wantFX || fy != tt.fy {
			t.Errorf("Split(%v) = %v,%d,%d want %v,%d,%d",
				tt.h, gotInt, fx, fy, tt.wantInt, tt.wantFX, tt.fy)
		}
	}
}

// TestSplitReconstructs: 2·int + frac always reproduces the half-pel
// value, with frac in {0, 1}.
func TestSplitReconstructs(t *testing.T) {
	prop := func(x, y int16) bool {
		h := HalfVector{int(x), int(y)}
		i, fx, fy := h.Split()
		return 2*i.X+fx == h.X && 2*i.Y+fy == h.Y &&
			fx >= 0 && fx <= 1 && fy >= 0 && fy <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromIntegerIsExact(t *testing.T) {
	h := FromInteger(Vector{3, -2})
	if h != (HalfVector{6, -4}) {
		t.Fatalf("FromInteger = %v", h)
	}
	i, fx, fy := h.Split()
	if i != (Vector{3, -2}) || fx != 0 || fy != 0 {
		t.Fatal("integer vectors must have no fractional part")
	}
}

func TestInterpPixelRounding(t *testing.T) {
	// 2x2 plane: 10 20 / 30 40.
	ref := []uint8{10, 20, 30, 40}
	tests := []struct {
		fx, fy int
		want   int32
	}{
		{0, 0, 10},
		{1, 0, 15}, // (10+20+1)/2
		{0, 1, 20}, // (10+30+1)/2
		{1, 1, 25}, // (10+20+30+40+2)/4
	}
	for _, tt := range tests {
		if got := interpPixel(ref, 2, 0, 0, tt.fx, tt.fy); got != tt.want {
			t.Errorf("interp(%d,%d) = %d, want %d", tt.fx, tt.fy, got, tt.want)
		}
	}
}

func TestChromaHalfMV(t *testing.T) {
	// H.263 quarter-to-half rounding: 0→0, ±1(0.25px)→±1(0.5px chroma),
	// ±2→±1, ±3→±1, ±4→±2, ±5→±3.
	tests := []struct{ in, want int }{
		{0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 3}, {6, 3},
		{-1, -1}, {-2, -1}, {-3, -1}, {-4, -2}, {-5, -3},
	}
	for _, tt := range tests {
		if got := chromaHalfMV(tt.in); got != tt.want {
			t.Errorf("chromaHalfMV(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// halfShiftFrame builds a frame whose luma is ref shifted by exactly
// half a pixel horizontally, using the same rounding as the codec's
// interpolator: cur(x) = (ref(x) + ref(x+1) + 1)/2.
func halfShiftFrame(ref *video.Frame) *video.Frame {
	g := video.NewFrame(ref.Width, ref.Height)
	for y := 0; y < ref.Height; y++ {
		for x := 0; x < ref.Width; x++ {
			x1 := x + 1
			if x1 >= ref.Width {
				x1 = ref.Width - 1
			}
			g.Y[y*ref.Width+x] = uint8((int(ref.Y[y*ref.Width+x]) + int(ref.Y[y*ref.Width+x1]) + 1) / 2)
		}
	}
	for i := range g.Cb {
		g.Cb[i] = 128
		g.Cr[i] = 128
	}
	return g
}

func TestRefineHalfFindsHalfPelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := halfShiftFrame(ref)

	// Integer search on an interior MB: best integer candidate has a
	// residual; the (1, 0) half-pel refinement must drive SAD to 0.
	res := Search(cur, ref, 4, 5, Config{Range: 7}, nil)
	if res.SAD == 0 {
		t.Fatal("integer search should not match a half-pel shift exactly")
	}
	var stats Stats
	hv, sad := RefineHalf(cur, ref, 4, 5, res.MV, res.SAD, &stats)
	if sad != 0 {
		t.Fatalf("refinement SAD = %d, want 0 (hv %v)", sad, hv)
	}
	if hv == FromInteger(res.MV) {
		t.Fatal("refinement did not move off the integer grid")
	}
	if stats.SADCalls == 0 || stats.PixelOps == 0 {
		t.Fatal("refinement did no counted work")
	}
}

func TestRefineHalfNeverWorseThanInteger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	for mb := 0; mb < 10; mb++ {
		row, col := mb/5, mb%5+3
		res := Search(cur, ref, row+2, col, Config{Range: 7}, nil)
		_, sad := RefineHalf(cur, ref, row+2, col, res.MV, res.SAD, nil)
		if sad > res.SAD {
			t.Fatalf("MB (%d,%d): refinement worsened SAD %d -> %d", row+2, col, res.SAD, sad)
		}
	}
}

func TestRefineHalfRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	// Corner MBs with extreme vectors: must not panic, and the result
	// footprint must be legal.
	for _, mb := range [][2]int{{0, 0}, {0, 10}, {8, 0}, {8, 10}} {
		res := Search(cur, ref, mb[0], mb[1], Config{Range: 15}, nil)
		hv, _ := RefineHalf(cur, ref, mb[0], mb[1], res.MV, res.SAD, nil)
		if !halfFootprintLegal(ref, mb[1]*16, mb[0]*16, hv) {
			t.Fatalf("MB %v: refined vector %v footprint illegal", mb, hv)
		}
	}
}

func TestCompensateHalfIntegerFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	a := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	b := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	CompensateHalf(a, ref, 3, 4, FromInteger(Vector{2, -1}))
	Compensate(b, ref, 3, 4, Vector{2, -1})
	if !a.Equal(b) {
		t.Fatal("integer half-vector compensation differs from integer compensation")
	}
}

func TestCompensateHalfMatchesSAD(t *testing.T) {
	// The prediction CompensateHalf writes must be exactly what
	// SAD16Half measured: SAD(cur, prediction) == SAD16Half value.
	rng := rand.New(rand.NewSource(10))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	hv := HalfVector{5, -3} // fractional x, fractional y via split: 5=2*2+1, -3=2*(-2)+1
	pred := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	CompensateHalf(pred, ref, 4, 5, hv)
	want := SAD16Half(cur, ref, 5*16, 4*16, hv, math.MaxInt32, nil)
	got := SAD16(cur, pred, 5*16, 4*16, 5*16, 4*16, math.MaxInt32, nil)
	if got != want {
		t.Fatalf("prediction SAD %d != measured SAD %d", got, want)
	}
}

func TestHalfPelCountsMoreOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	cur := randFrame(rng, video.QCIFWidth, video.QCIFHeight)
	var intStats, halfStats Stats
	SAD16(cur, ref, 80, 64, 80, 64, math.MaxInt32, &intStats)
	SAD16Half(cur, ref, 80, 64, HalfVector{1, 0}, math.MaxInt32, &halfStats)
	if halfStats.PixelOps <= intStats.PixelOps {
		t.Fatalf("interpolated SAD ops %d not above plain %d",
			halfStats.PixelOps, intStats.PixelOps)
	}
}
