package motion

import (
	"math"
	"math/rand"
	"testing"

	"pbpair/internal/video"
)

// Micro-benchmarks pairing each SAD kernel with its scalar reference;
// the gap between BenchmarkX and BenchmarkXRef is the SWAR speedup
// tracked in BENCH_kernels.json (make bench-json).

func benchFrames() (*video.Frame, *video.Frame) {
	rng := rand.New(rand.NewSource(11))
	return randFrame(rng, video.QCIFWidth, video.QCIFHeight),
		randFrame(rng, video.QCIFWidth, video.QCIFHeight)
}

func BenchmarkSAD16(b *testing.B) {
	cur, ref := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SAD16(cur, ref, 32, 32, 33, 31, math.MaxInt32, nil)
	}
}

func BenchmarkSAD16Ref(b *testing.B) {
	cur, ref := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SAD16Ref(cur, ref, 32, 32, 33, 31, math.MaxInt32, nil)
	}
}

func BenchmarkSADSelf(b *testing.B) {
	cur, _ := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SADSelf(cur, 32, 32, nil)
	}
}

func BenchmarkSADSelfRef(b *testing.B) {
	cur, _ := benchFrames()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SADSelfRef(cur, 32, 32, nil)
	}
}

func BenchmarkSAD16Half(b *testing.B) {
	cur, ref := benchFrames()
	hv := HalfVector{X: 3, Y: -1} // both fractional: the 4-point case
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SAD16Half(cur, ref, 32, 32, hv, math.MaxInt32, nil)
	}
}

func BenchmarkSAD16HalfRef(b *testing.B) {
	cur, ref := benchFrames()
	hv := HalfVector{X: 3, Y: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SAD16HalfRef(cur, ref, 32, 32, hv, math.MaxInt32, nil)
	}
}

func BenchmarkCompensateHalf(b *testing.B) {
	_, ref := benchFrames()
	dst := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	hv := HalfVector{X: 3, Y: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompensateHalf(dst, ref, 2, 2, hv)
	}
}

func BenchmarkCompensateHalfRef(b *testing.B) {
	_, ref := benchFrames()
	dst := video.NewFrame(video.QCIFWidth, video.QCIFHeight)
	hv := HalfVector{X: 3, Y: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompensateHalfRef(dst, ref, 2, 2, hv)
	}
}
