package motion

import (
	"encoding/binary"

	"pbpair/internal/swar"
	"pbpair/internal/video"
)

// Half-pixel motion — H.263's defining improvement over H.261. A
// motion vector may point between pixels; the prediction is then the
// bilinear interpolation of the surrounding samples (H.263 §6.1.2
// rounding: (A+B+1)/2 for the two-point positions, (A+B+C+D+2)/4 for
// the four-point position).
//
// The codec treats half-pel as a refinement stage: the integer-pel
// search (with the scheme's probability penalty) picks a winner, then
// RefineHalf evaluates its eight half-pel neighbours. Positions are
// represented in half-pel units: h = 2·integer + frac.

// HalfVector is a motion vector in half-pel units (so {3, -1} means
// +1.5 px right, −0.5 px up).
type HalfVector struct {
	X, Y int
}

// FromInteger converts an integer-pel vector to half-pel units.
func FromInteger(v Vector) HalfVector { return HalfVector{X: 2 * v.X, Y: 2 * v.Y} }

// Split decomposes a half-pel vector into its floor integer-pel part
// and non-negative fractional half-steps (0 or 1 per axis).
func (h HalfVector) Split() (intPart Vector, fracX, fracY int) {
	ix := floorDiv2(h.X)
	iy := floorDiv2(h.Y)
	return Vector{X: ix, Y: iy}, h.X - 2*ix, h.Y - 2*iy
}

// IsZero reports whether h is the zero displacement.
func (h HalfVector) IsZero() bool { return h.X == 0 && h.Y == 0 }

func floorDiv2(v int) int {
	if v < 0 {
		return (v - 1) / 2
	}
	return v / 2
}

// interpRow writes n interpolated bytes (n a multiple of 8) into dst
// from the reference plane at half-pel row position (2·x0+fx,
// 2·(y0)+fy), 8 pixels per step via the averagers in internal/swar.
// Bit-exact with per-pixel interpPixel (halfpel_ref.go): AvgRound8 is
// the byte-lane identity for (a+b+1)/2 and QuadAvg8 widens to 16-bit
// lanes for (a+b+c+d+2)/4. Callers guarantee the (n+fx)×(1+fy)
// footprint lies inside the plane.
func interpRow(dst []byte, ref []uint8, stride, x0, y0, fx, fy, n int) {
	row0 := ref[y0*stride+x0:]
	switch {
	case fx == 0 && fy == 0:
		copy(dst[:n], row0[:n])
	case fx == 1 && fy == 0:
		for i := 0; i < n; i += 8 {
			a := binary.LittleEndian.Uint64(row0[i : i+8])
			b := binary.LittleEndian.Uint64(row0[i+1 : i+9])
			binary.LittleEndian.PutUint64(dst[i:i+8], swar.AvgRound8(a, b))
		}
	case fx == 0 && fy == 1:
		row1 := ref[(y0+1)*stride+x0:]
		for i := 0; i < n; i += 8 {
			a := binary.LittleEndian.Uint64(row0[i : i+8])
			c := binary.LittleEndian.Uint64(row1[i : i+8])
			binary.LittleEndian.PutUint64(dst[i:i+8], swar.AvgRound8(a, c))
		}
	default:
		row1 := ref[(y0+1)*stride+x0:]
		for i := 0; i < n; i += 8 {
			a := binary.LittleEndian.Uint64(row0[i : i+8])
			b := binary.LittleEndian.Uint64(row0[i+1 : i+9])
			c := binary.LittleEndian.Uint64(row1[i : i+8])
			d := binary.LittleEndian.Uint64(row1[i+1 : i+9])
			binary.LittleEndian.PutUint64(dst[i:i+8], swar.QuadAvg8(a, b, c, d))
		}
	}
}

// halfPelOpsPerPixel is the energy-model weight of one interpolated
// SAD pixel: the bilinear blend costs roughly two extra operations on
// top of the |a−b| difference.
const halfPelOpsPerPixel = 3

// SAD16Half computes the SAD between the current macroblock at
// (cx, cy) and the reference block at half-pel displacement hv from
// the same position. Early-terminates beyond limit. Callers guarantee
// the interpolation footprint stays inside the reference frame.
// The fast path interpolates a whole 16-pixel row into a stack buffer
// with interpRow, then differences it with the SWAR SAD row kernel —
// bit-exact with SAD16HalfRef including early-exit partial sums and
// Stats deltas.
func SAD16Half(cur, ref *video.Frame, cx, cy int, hv HalfVector, limit int32, stats *Stats) int32 {
	intPart, fx, fy := hv.Split()
	if fx == 0 && fy == 0 {
		return SAD16(cur, ref, cx, cy, cx+intPart.X, cy+intPart.Y, limit, stats)
	}
	if stats != nil {
		stats.SADCalls++
	}
	x0 := cx + intPart.X
	y0 := cy + intPart.Y
	var sum int32
	cw, rw := cur.Width, ref.Width
	var buf [video.MBSize]byte
	co := cy*cw + cx
	for r := 0; r < video.MBSize; r++ {
		interpRow(buf[:], ref.Y, rw, x0, y0+r, fx, fy, video.MBSize)
		sum += swar.SADRow16(cur.Y[co:co+video.MBSize], buf[:])
		co += cw
		if stats != nil {
			stats.PixelOps += video.MBSize * halfPelOpsPerPixel
		}
		if sum > limit {
			return sum
		}
	}
	return sum
}

// RefineHalf evaluates the eight half-pel neighbours of an integer-pel
// winner and returns the best half-pel vector with its SAD. Candidates
// whose interpolation footprint leaves the frame are skipped, so the
// integer-pel winner (always legal) is the fallback.
func RefineHalf(cur, ref *video.Frame, mbRow, mbCol int, mv Vector, baseSAD int32, stats *Stats) (HalfVector, int32) {
	cx := mbCol * video.MBSize
	cy := mbRow * video.MBSize
	best := FromInteger(mv)
	bestSAD := baseSAD

	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			hv := HalfVector{X: 2*mv.X + dx, Y: 2*mv.Y + dy}
			if !halfFootprintLegal(ref, cx, cy, hv) {
				continue
			}
			sad := SAD16Half(cur, ref, cx, cy, hv, bestSAD, stats)
			if sad < bestSAD {
				bestSAD = sad
				best = hv
			}
		}
	}
	return best, bestSAD
}

// halfFootprintLegal reports whether the (possibly interpolated)
// reference block fits inside the frame.
func halfFootprintLegal(ref *video.Frame, cx, cy int, hv HalfVector) bool {
	intPart, fx, fy := hv.Split()
	x0 := cx + intPart.X
	y0 := cy + intPart.Y
	needX := video.MBSize
	needY := video.MBSize
	if fx == 1 {
		needX++
	}
	if fy == 1 {
		needY++
	}
	return x0 >= 0 && y0 >= 0 && x0+needX <= ref.Width && y0+needY <= ref.Height
}

// chromaHalfMV derives the chroma displacement (in chroma half-pel
// units) from a luma half-pel component, per the H.263 rule that
// quarter-pel chroma positions round to the nearest half-pel:
// |c| = (|v|/2)|0x1 when |v| is odd.
func chromaHalfMV(v int) int {
	neg := v < 0
	if neg {
		v = -v
	}
	c := (v >> 1) | (v & 1)
	if neg {
		return -c
	}
	return c
}

// CompensateHalf writes the half-pel motion-compensated prediction for
// macroblock (mbRow, mbCol) into dst. Chroma uses the derived
// half-pel chroma vector with the same bilinear rules. Callers
// guarantee the luma footprint is legal (halfFootprintLegal); the
// chroma footprint then is too.
func CompensateHalf(dst, ref *video.Frame, mbRow, mbCol int, hv HalfVector) {
	intPart, fx, fy := hv.Split()
	if fx == 0 && fy == 0 {
		Compensate(dst, ref, mbRow, mbCol, intPart)
		return
	}
	x := mbCol * video.MBSize
	y := mbRow * video.MBSize
	w := ref.Width
	x0 := x + intPart.X
	y0 := y + intPart.Y
	for r := 0; r < video.MBSize; r++ {
		off := (y+r)*w + x
		interpRow(dst.Y[off:off+video.MBSize], ref.Y, w, x0, y0+r, fx, fy, video.MBSize)
	}

	chv := HalfVector{X: chromaHalfMV(hv.X), Y: chromaHalfMV(hv.Y)}
	cInt, cfx, cfy := chv.Split()
	cw := ref.ChromaWidth()
	ch := ref.ChromaHeight()
	ccx := mbCol * (video.MBSize / 2)
	ccy := mbRow * (video.MBSize / 2)
	cx0 := ccx + cInt.X
	cy0 := ccy + cInt.Y
	// Clamp the chroma fractional footprint at the frame edge (the
	// rounding rule can ask for one sample beyond what the luma
	// footprint guarantees).
	if cfx == 1 && cx0+video.MBSize/2 >= cw {
		cfx = 0
	}
	if cfy == 1 && cy0+video.MBSize/2 >= ch {
		cfy = 0
	}
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx0+video.MBSize/2 > cw {
		cx0 = cw - video.MBSize/2
	}
	if cy0+video.MBSize/2 > ch {
		cy0 = ch - video.MBSize/2
	}
	for r := 0; r < video.MBSize/2; r++ {
		off := (ccy+r)*cw + ccx
		interpRow(dst.Cb[off:off+video.MBSize/2], ref.Cb, cw, cx0, cy0+r, cfx, cfy, video.MBSize/2)
		interpRow(dst.Cr[off:off+video.MBSize/2], ref.Cr, cw, cx0, cy0+r, cfx, cfy, video.MBSize/2)
	}
}
