package motion

import "encoding/binary"

// SWAR (SIMD-within-a-register) pixel kernels. A 16-pixel macroblock
// row is two uint64 loads; per-byte arithmetic then runs 8 lanes at a
// time in ordinary integer registers — branch-free, no per-pixel loop.
// Every kernel here is bit-exact with its scalar reference in
// sad_ref.go / halfpel_ref.go: only non-negative integer additions are
// reordered, which is exact, and the per-row early-exit granularity is
// unchanged.
//
// The |a−b| kernel widens bytes into four 16-bit lanes per word (even
// and odd bytes separately), biases by 0x8000 per lane so the
// subtraction cannot borrow across lanes, and resolves the absolute
// value with a computed per-lane sign mask. Lane sums are folded with
// a single multiply: x * 0x0001000100010001 accumulates all four
// 16-bit lanes into the top lane (partial sums stay < 2^16, so no
// carries cross lanes).

const (
	laneMask   = 0x00FF00FF00FF00FF // even-byte 16-bit lanes
	laneBias   = 0x8000800080008000 // +0x8000 per 16-bit lane
	laneOnes   = 0x0001000100010001 // 1 per 16-bit lane
	lane7FFF   = 0x7FFF7FFF7FFF7FFF
	avgLowMask = 0x7F7F7F7F7F7F7F7F // clears cross-byte carry bits after >>1
)

// absDiff4 returns per-lane |a−b| for four 16-bit lanes each holding a
// value in [0, 255]. biased = 0x8000 + (a−b) per lane never borrows;
// bit 15 of each lane is then the "a >= b" flag, from which a full
// 0xFFFF mask selects between biased−0x8000 and 0x8000−biased.
func absDiff4(a, b uint64) uint64 {
	biased := a + laneBias - b
	pos := (biased >> 15) & laneOnes
	neg := (pos ^ laneOnes) * 0xFFFF
	return (biased ^ neg) - (lane7FFF + pos)
}

// sadRow16 returns Σ|c[i]−p[i]| over 16 bytes. c and p must have at
// least 16 bytes.
func sadRow16(c, p []byte) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	pa := binary.LittleEndian.Uint64(p[0:8])
	pb := binary.LittleEndian.Uint64(p[8:16])
	d := absDiff4(ca&laneMask, pa&laneMask) +
		absDiff4((ca>>8)&laneMask, (pa>>8)&laneMask) +
		absDiff4(cb&laneMask, pb&laneMask) +
		absDiff4((cb>>8)&laneMask, (pb>>8)&laneMask)
	return int32((d * laneOnes) >> 48)
}

// sadRow16Const returns Σ|c[i]−m| over 16 bytes against a constant
// byte value m already replicated into 16-bit lanes (m * laneOnes).
func sadRow16Const(c []byte, mLanes uint64) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	d := absDiff4(ca&laneMask, mLanes) +
		absDiff4((ca>>8)&laneMask, mLanes) +
		absDiff4(cb&laneMask, mLanes) +
		absDiff4((cb>>8)&laneMask, mLanes)
	return int32((d * laneOnes) >> 48)
}

// sumRow16 returns Σc[i] over 16 bytes.
func sumRow16(c []byte) int32 {
	ca := binary.LittleEndian.Uint64(c[0:8])
	cb := binary.LittleEndian.Uint64(c[8:16])
	s := ca&laneMask + (ca>>8)&laneMask + cb&laneMask + (cb>>8)&laneMask
	return int32((s * laneOnes) >> 48)
}

// avgRound8 returns the per-byte rounded average (a+b+1)>>1 of two
// 8-byte words — H.263 two-point half-pel interpolation, 8 pixels at
// a time. Identity: (a+b+1)>>1 == (a|b) − ((a^b)>>1) per byte.
func avgRound8(a, b uint64) uint64 {
	return (a | b) - ((a^b)>>1)&avgLowMask
}

// quadAvg8 returns the per-byte (a+b+c+d+2)>>2 of four 8-byte words —
// the H.263 four-point half-pel position. Bytes widen into 16-bit
// lanes (max lane sum 4·255+2 = 1022 < 2^10, so lanes never carry),
// are averaged, and repack.
func quadAvg8(a, b, c, d uint64) uint64 {
	even := a&laneMask + b&laneMask + c&laneMask + d&laneMask + 2*laneOnes
	odd := (a>>8)&laneMask + (b>>8)&laneMask + (c>>8)&laneMask + (d>>8)&laneMask + 2*laneOnes
	return (even>>2)&laneMask | ((odd>>2)&laneMask)<<8
}
