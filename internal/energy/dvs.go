package energy

import (
	"fmt"
	"sort"
)

// Dynamic voltage/frequency scaling — the paper's §5 extension
// ("Cooperation with traditional low power techniques such as dynamic
// voltage scaling (DVS) and dynamic frequency scaling (DFS) to explore
// more energy gain").
//
// The model follows the standard CMOS relations: at frequency f and
// supply voltage V, energy per cycle scales with V² and execution time
// with 1/f. A real-time encoder has a per-frame deadline (the frame
// interval); a DVS governor picks the lowest level whose speed still
// meets the deadline for the frame's predicted workload. Because
// PBPAIR's intra refresh removes motion-estimation cycles, it lets the
// governor drop to lower levels — the energy saving compounds
// quadratically, which is exactly the synergy the paper anticipates.

// FreqLevel is one operating point of the processor.
type FreqLevel struct {
	MHz   float64
	Volts float64
}

// XScaleLevels approximates the Intel PXA25x/PXA26x operating points
// of the paper's PDAs (400 MHz at 1.3 V nominal).
var XScaleLevels = []FreqLevel{
	{MHz: 100, Volts: 0.85},
	{MHz: 200, Volts: 1.00},
	{MHz: 300, Volts: 1.10},
	{MHz: 400, Volts: 1.30},
}

// nominalNJPerCycle anchors the counter model to cycles: the base
// profiles are calibrated at the 400 MHz / 1.3 V point with roughly
// this energy per cycle.
const nominalNJPerCycle = 1.1

// Cycles estimates the processor cycles behind a counter tally, by
// inverting the nominal profile's nanojoule costs. It is the workload
// input to the DVS governor.
func (p Profile) Cycles(c Counters) float64 {
	return p.Joules(c) * 1e9 / nominalNJPerCycle
}

// ScaleToLevel returns a copy of the profile with every per-unit cost
// scaled by (V/Vnominal)² — the energy of running the same work at a
// different operating point. Vnominal is taken from the highest level
// of the given table.
func (p Profile) ScaleToLevel(level FreqLevel, levels []FreqLevel) Profile {
	vNom := levels[len(levels)-1].Volts
	s := (level.Volts / vNom) * (level.Volts / vNom)
	q := p
	q.Name = fmt.Sprintf("%s@%.0fMHz", p.Name, level.MHz)
	q.PerSADPixelOp *= s
	q.PerSADCall *= s
	q.PerDCTBlock *= s
	q.PerIDCTBlock *= s
	q.PerQuantBlock *= s
	q.PerDequant *= s
	q.PerMCMB *= s
	q.PerVLCBit *= s
	q.PerMB *= s
	q.PerFrame *= s
	return q
}

// Governor selects operating points per frame.
type Governor struct {
	levels        []FreqLevel
	deadlineSec   float64
	profile       Profile
	predictCycles float64 // workload predictor (EMA of observed cycles)
	seeded        bool
}

// NewGovernor returns a DVS governor for the given profile, level
// table (ascending frequency) and frame deadline in seconds (e.g.
// 0.1 for 10 fps). levels must be non-empty and sorted ascending.
func NewGovernor(p Profile, levels []FreqLevel, deadlineSec float64) (*Governor, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("energy: governor needs at least one frequency level")
	}
	if !sort.SliceIsSorted(levels, func(i, j int) bool { return levels[i].MHz < levels[j].MHz }) {
		return nil, fmt.Errorf("energy: frequency levels must be sorted ascending")
	}
	if deadlineSec <= 0 {
		return nil, fmt.Errorf("energy: frame deadline %v must be positive", deadlineSec)
	}
	return &Governor{levels: levels, deadlineSec: deadlineSec, profile: p}, nil
}

// Select returns the lowest level that can execute the predicted
// workload within the deadline, defaulting to the highest level when
// even that cannot (deadline miss — reported by the second return).
func (g *Governor) Select() (FreqLevel, bool) {
	cycles := g.predictCycles
	for _, level := range g.levels {
		if cycles <= level.MHz*1e6*g.deadlineSec {
			return level, true
		}
	}
	top := g.levels[len(g.levels)-1]
	return top, false
}

// Observe feeds the actual cycles of the last frame into the workload
// predictor (EMA with 0.5 weight: video workloads are strongly
// frame-to-frame correlated, so a fast predictor tracks scene changes
// while smoothing noise).
func (g *Governor) Observe(frame Counters) {
	cycles := g.profile.Cycles(frame)
	if !g.seeded {
		g.predictCycles = cycles
		g.seeded = true
		return
	}
	g.predictCycles += 0.5 * (cycles - g.predictCycles)
}

// FrameEnergy prices one frame's tally at a level: V²-scaled per-cycle
// energy.
func (g *Governor) FrameEnergy(frame Counters, level FreqLevel) float64 {
	return g.profile.ScaleToLevel(level, g.levels).Joules(frame)
}

// Deadline returns the governor's frame deadline in seconds.
func (g *Governor) Deadline() float64 { return g.deadlineSec }

// FrameTime returns the execution time of a frame's workload at a
// level, in seconds.
func (g *Governor) FrameTime(frame Counters, level FreqLevel) float64 {
	return g.profile.Cycles(frame) / (level.MHz * 1e6)
}
