// Package energy models encoding energy consumption, substituting for
// the paper's hardware measurement (a DAQ board sampling the supply of
// iPAQ H5555 and Zaurus SL-5600 PDAs; see DESIGN.md, substitution 2).
//
// The encoder counts architecture-independent work units; a device
// Profile maps each unit to nanojoules. Profiles are calibrated to an
// Intel XScale PXA-class core at 400 MHz (~1 nJ per cycle at typical
// active power) such that full-search motion estimation dominates
// encode energy — the premise of the paper ("motion estimation ... is
// the most power consuming operation"). Energy *differences* between
// schemes therefore arise from the same mechanism as on real hardware:
// how often each scheme runs ME.
package energy

// Counters tallies the work performed while encoding. All fields are
// exact counts, accumulated additively; the zero value is an empty
// tally. Because every field is a plain sum, tallies are mergeable:
// the encoder's sharded motion search accumulates per-shard counts and
// Adds them in shard order, giving totals identical to a serial run,
// and a per-frame delta is just the Sub of two snapshots.
//
// Concurrency contract: the fields are plain int64s, not atomics, so a
// live tally has exactly one owning writer (the encoder goroutine it
// is registered with). Goroutines that need to observe a tally someone
// else is mutating — observability exporters in particular — must read
// a snapshot the owner publishes through SharedCounters rather than
// the live struct.
type Counters struct {
	SADPixelOps   int64 // per-pixel |a−b| operations inside ME (early exit honoured)
	SADCalls      int64 // block-SAD evaluations started
	DCTBlocks     int64 // forward 8x8 transforms
	IDCTBlocks    int64 // inverse 8x8 transforms
	QuantBlocks   int64 // quantised 8x8 blocks
	DequantBlocks int64 // dequantised 8x8 blocks
	MCMBs         int64 // motion-compensated macroblocks
	VLCBits       int64 // entropy-coded output bits
	MBs           int64 // macroblocks processed (per-MB overhead)
	Frames        int64 // frames processed (per-frame overhead)
}

// Sub returns the field-wise difference c − other: the work performed
// between two snapshots of the same tally.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		SADPixelOps:   c.SADPixelOps - other.SADPixelOps,
		SADCalls:      c.SADCalls - other.SADCalls,
		DCTBlocks:     c.DCTBlocks - other.DCTBlocks,
		IDCTBlocks:    c.IDCTBlocks - other.IDCTBlocks,
		QuantBlocks:   c.QuantBlocks - other.QuantBlocks,
		DequantBlocks: c.DequantBlocks - other.DequantBlocks,
		MCMBs:         c.MCMBs - other.MCMBs,
		VLCBits:       c.VLCBits - other.VLCBits,
		MBs:           c.MBs - other.MBs,
		Frames:        c.Frames - other.Frames,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.SADPixelOps += other.SADPixelOps
	c.SADCalls += other.SADCalls
	c.DCTBlocks += other.DCTBlocks
	c.IDCTBlocks += other.IDCTBlocks
	c.QuantBlocks += other.QuantBlocks
	c.DequantBlocks += other.DequantBlocks
	c.MCMBs += other.MCMBs
	c.VLCBits += other.VLCBits
	c.MBs += other.MBs
	c.Frames += other.Frames
}

// Profile maps work units to energy. All costs are in nanojoules per
// unit.
type Profile struct {
	Name string

	PerSADPixelOp float64
	PerSADCall    float64
	PerDCTBlock   float64
	PerIDCTBlock  float64
	PerQuantBlock float64
	PerDequant    float64
	PerMCMB       float64
	PerVLCBit     float64
	PerMB         float64
	PerFrame      float64
}

// IPAQ models the HP iPAQ H5555 (Intel XScale 400 MHz, 128 MB SDRAM) —
// the device behind the paper's Figure 5(d).
var IPAQ = Profile{
	Name:          "iPAQ-H5555",
	PerSADPixelOp: 1.2,
	PerSADCall:    60,
	PerDCTBlock:   2200,
	PerIDCTBlock:  2200,
	PerQuantBlock: 400,
	PerDequant:    400,
	PerMCMB:       800,
	PerVLCBit:     10,
	PerMB:         600,
	PerFrame:      30000,
}

// Zaurus models the Sharp Zaurus SL-5600 (same 400 MHz XScale core,
// slower 32 MB SDRAM path → memory-bound stages cost ~20% more).
var Zaurus = Profile{
	Name:          "Zaurus-SL5600",
	PerSADPixelOp: 1.45,
	PerSADCall:    70,
	PerDCTBlock:   2350,
	PerIDCTBlock:  2350,
	PerQuantBlock: 420,
	PerDequant:    420,
	PerMCMB:       980,
	PerVLCBit:     11,
	PerMB:         650,
	PerFrame:      33000,
}

// Breakdown is a per-stage energy decomposition in joules.
type Breakdown struct {
	ME        float64 // SAD pixel ops + call overhead
	Transform float64 // DCT + IDCT
	Quant     float64 // quantise + dequantise
	MC        float64
	VLC       float64
	Overhead  float64 // per-MB and per-frame fixed costs
}

// Total returns the sum of all stages in joules.
func (b Breakdown) Total() float64 {
	return b.ME + b.Transform + b.Quant + b.MC + b.VLC + b.Overhead
}

// Decompose converts a counter tally to a per-stage energy breakdown.
func (p Profile) Decompose(c Counters) Breakdown {
	const nj = 1e-9
	return Breakdown{
		ME:        nj * (float64(c.SADPixelOps)*p.PerSADPixelOp + float64(c.SADCalls)*p.PerSADCall),
		Transform: nj * (float64(c.DCTBlocks)*p.PerDCTBlock + float64(c.IDCTBlocks)*p.PerIDCTBlock),
		Quant:     nj * (float64(c.QuantBlocks)*p.PerQuantBlock + float64(c.DequantBlocks)*p.PerDequant),
		MC:        nj * float64(c.MCMBs) * p.PerMCMB,
		VLC:       nj * float64(c.VLCBits) * p.PerVLCBit,
		Overhead:  nj * (float64(c.MBs)*p.PerMB + float64(c.Frames)*p.PerFrame),
	}
}

// Joules returns the total modelled energy for a tally.
func (p Profile) Joules(c Counters) float64 {
	return p.Decompose(c).Total()
}
