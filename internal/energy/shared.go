package energy

import "sync/atomic"

// SharedCounters publishes point-in-time snapshots of a Counters tally
// across goroutines without making every hot-path increment atomic.
//
// Ownership contract: a Counters value has exactly one writer — the
// encoder goroutine that registered it via codec.Config.Counters
// mutates its plain int64 fields with no synchronisation, which is
// only sound while nobody else reads them concurrently. Any other
// goroutine (an observability exporter, a monitoring endpoint, a test)
// must read through a SharedCounters the owner publishes into at frame
// boundaries: Publish stores a copy behind an atomic pointer, Load
// returns the copy, and the owner keeps sole access to the live tally.
// The snapshot is internally consistent (a whole-struct copy taken
// between frames), at most one frame stale, and race-free by
// construction.
//
// The zero value is ready to use; Load before any Publish returns an
// empty tally.
type SharedCounters struct {
	p atomic.Pointer[Counters]
}

// Publish makes a snapshot of c visible to Load callers. Only the
// goroutine that owns the live tally may call Publish.
func (s *SharedCounters) Publish(c Counters) {
	cp := c
	s.p.Store(&cp)
}

// Load returns the most recently published snapshot, or a zero tally
// if nothing has been published yet. Safe to call from any goroutine.
func (s *SharedCounters) Load() Counters {
	if p := s.p.Load(); p != nil {
		return *p
	}
	return Counters{}
}
