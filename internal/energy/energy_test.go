package energy

import (
	"testing"
	"testing/quick"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{SADPixelOps: 1, SADCalls: 2, DCTBlocks: 3, IDCTBlocks: 4,
		QuantBlocks: 5, DequantBlocks: 6, MCMBs: 7, VLCBits: 8, MBs: 9, Frames: 10}
	b := a
	a.Add(b)
	want := Counters{SADPixelOps: 2, SADCalls: 4, DCTBlocks: 6, IDCTBlocks: 8,
		QuantBlocks: 10, DequantBlocks: 12, MCMBs: 14, VLCBits: 16, MBs: 18, Frames: 20}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

func TestJoulesZeroCounters(t *testing.T) {
	if j := IPAQ.Joules(Counters{}); j != 0 {
		t.Fatalf("empty tally costs %v J", j)
	}
}

func TestJoulesAdditive(t *testing.T) {
	prop := func(a, b uint16) bool {
		ca := Counters{SADPixelOps: int64(a), DCTBlocks: int64(b), VLCBits: int64(a) + int64(b)}
		cb := Counters{SADPixelOps: int64(b), IDCTBlocks: int64(a), MBs: 3}
		sum := ca
		sum.Add(cb)
		sep := IPAQ.Joules(ca) + IPAQ.Joules(cb)
		tot := IPAQ.Joules(sum)
		diff := sep - tot
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoulesMonotone(t *testing.T) {
	small := Counters{SADPixelOps: 1000, DCTBlocks: 6}
	large := Counters{SADPixelOps: 2000, DCTBlocks: 12}
	if IPAQ.Joules(small) >= IPAQ.Joules(large) {
		t.Fatal("energy not monotone in counters")
	}
}

func TestDecomposeTotalsMatch(t *testing.T) {
	c := Counters{
		SADPixelOps: 57600, SADCalls: 225,
		DCTBlocks: 6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		MCMBs: 1, VLCBits: 300, MBs: 1, Frames: 1,
	}
	for _, p := range []Profile{IPAQ, Zaurus} {
		b := p.Decompose(c)
		if got, want := b.Total(), p.Joules(c); got != want {
			t.Fatalf("%s: Breakdown.Total %v != Joules %v", p.Name, got, want)
		}
		for _, stage := range []float64{b.ME, b.Transform, b.Quant, b.MC, b.VLC, b.Overhead} {
			if stage < 0 {
				t.Fatalf("%s: negative stage energy %+v", p.Name, b)
			}
		}
	}
}

// TestMEDominatesForFullSearch encodes the calibration target: for a
// typical inter macroblock with full-search ME (range ±7, no early
// exit), ME must be the majority of macroblock energy on both devices —
// the paper's premise.
func TestMEDominatesForFullSearch(t *testing.T) {
	mb := Counters{
		SADPixelOps: 225 * 256, // 15x15 candidates, full 16x16 SAD each
		SADCalls:    225,
		DCTBlocks:   6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		MCMBs: 1, VLCBits: 350, MBs: 1,
	}
	for _, p := range []Profile{IPAQ, Zaurus} {
		b := p.Decompose(mb)
		if share := b.ME / b.Total(); share < 0.5 {
			t.Fatalf("%s: ME share %.2f < 0.5 (breakdown %+v)", p.Name, share, b)
		}
	}
}

// TestIntraMBMuchCheaperThanInter: an intra macroblock (no ME, no MC)
// must cost well under half of an inter macroblock with full-search
// ME — PBPAIR's energy saving mechanism.
func TestIntraMBMuchCheaperThanInter(t *testing.T) {
	inter := Counters{
		SADPixelOps: 225 * 256, SADCalls: 225,
		DCTBlocks: 6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		MCMBs: 1, VLCBits: 350, MBs: 1,
	}
	intra := Counters{
		DCTBlocks: 6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		VLCBits: 600, MBs: 1,
	}
	for _, p := range []Profile{IPAQ, Zaurus} {
		if ratio := p.Joules(intra) / p.Joules(inter); ratio > 0.5 {
			t.Fatalf("%s: intra/inter energy ratio %.2f > 0.5", p.Name, ratio)
		}
	}
}

func TestZaurusCostsMoreThanIPAQ(t *testing.T) {
	c := Counters{
		SADPixelOps: 1e6, SADCalls: 4000,
		DCTBlocks: 600, IDCTBlocks: 600, QuantBlocks: 600, DequantBlocks: 600,
		MCMBs: 99, VLCBits: 40000, MBs: 99, Frames: 1,
	}
	if Zaurus.Joules(c) <= IPAQ.Joules(c) {
		t.Fatal("Zaurus (slower memory) should cost more than iPAQ for the same work")
	}
}

func TestProfileNames(t *testing.T) {
	if IPAQ.Name == "" || Zaurus.Name == "" || IPAQ.Name == Zaurus.Name {
		t.Fatal("profiles must have distinct non-empty names")
	}
}
