package energy

import (
	"math"
	"testing"
)

// interMB is a full-ME inter macroblock's tally (range ±15 full search).
func interMB() Counters {
	return Counters{
		SADPixelOps: 961 * 256, SADCalls: 961,
		DCTBlocks: 6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		MCMBs: 1, VLCBits: 350, MBs: 1,
	}
}

// intraMB is an intra macroblock's tally (no ME).
func intraMB() Counters {
	return Counters{
		DCTBlocks: 6, IDCTBlocks: 6, QuantBlocks: 6, DequantBlocks: 6,
		VLCBits: 600, MBs: 1,
	}
}

func frameOf(mb Counters, n int) Counters {
	var c Counters
	for i := 0; i < n; i++ {
		c.Add(mb)
	}
	c.Frames = 1
	return c
}

func TestGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(IPAQ, nil, 0.1); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := NewGovernor(IPAQ, XScaleLevels, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
	unsorted := []FreqLevel{{MHz: 400, Volts: 1.3}, {MHz: 100, Volts: 0.85}}
	if _, err := NewGovernor(IPAQ, unsorted, 0.1); err == nil {
		t.Fatal("unsorted levels accepted")
	}
}

func TestCyclesPositiveAndAdditive(t *testing.T) {
	a := frameOf(interMB(), 10)
	b := frameOf(intraMB(), 10)
	ca, cb := IPAQ.Cycles(a), IPAQ.Cycles(b)
	if ca <= 0 || cb <= 0 {
		t.Fatal("non-positive cycle estimates")
	}
	if ca <= cb {
		t.Fatal("full-ME frame should cost more cycles than all-intra")
	}
	var sum Counters
	sum.Add(a)
	sum.Add(b)
	if math.Abs(IPAQ.Cycles(sum)-(ca+cb)) > 1 {
		t.Fatal("cycles not additive")
	}
}

func TestScaleToLevelQuadratic(t *testing.T) {
	c := frameOf(interMB(), 99)
	top := XScaleLevels[len(XScaleLevels)-1]
	low := XScaleLevels[0]
	eTop := IPAQ.ScaleToLevel(top, XScaleLevels).Joules(c)
	eLow := IPAQ.ScaleToLevel(low, XScaleLevels).Joules(c)
	if math.Abs(eTop-IPAQ.Joules(c)) > 1e-12 {
		t.Fatal("top level should match the nominal profile")
	}
	want := (low.Volts / top.Volts) * (low.Volts / top.Volts)
	if got := eLow / eTop; math.Abs(got-want) > 1e-9 {
		t.Fatalf("voltage scaling ratio %v, want %v", got, want)
	}
}

func TestGovernorPicksLowestFeasibleLevel(t *testing.T) {
	g, err := NewGovernor(IPAQ, XScaleLevels, 0.1) // 10 fps
	if err != nil {
		t.Fatal(err)
	}
	// Light workload: an all-intra QCIF frame.
	light := frameOf(intraMB(), 99)
	g.Observe(light)
	level, ok := g.Select()
	if !ok {
		t.Fatal("light workload missed deadline")
	}
	if level.MHz != 100 {
		t.Fatalf("light workload selected %v MHz, want 100", level.MHz)
	}

	// Heavy workload: full-search ME on every macroblock. Feed it
	// until the EMA predictor converges.
	heavy := frameOf(interMB(), 99)
	for i := 0; i < 8; i++ {
		g.Observe(heavy)
	}
	heavyLevel, ok := g.Select()
	if heavyLevel.MHz <= level.MHz {
		t.Fatalf("heavy workload selected %v MHz, not above %v", heavyLevel.MHz, level.MHz)
	}
	// When the governor claims the deadline is met, the converged
	// prediction equals the true workload, so the real frame must fit
	// (small tolerance for residual EMA error).
	if ok && g.FrameTime(heavy, heavyLevel) > 0.1*1.05 {
		t.Fatalf("selected level misses deadline: %v s at %v MHz",
			g.FrameTime(heavy, heavyLevel), heavyLevel.MHz)
	}
}

func TestGovernorReportsDeadlineMiss(t *testing.T) {
	// A 100 fps deadline with a huge workload cannot be met even at
	// 400 MHz.
	g, err := NewGovernor(IPAQ, XScaleLevels, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	huge := frameOf(interMB(), 99)
	g.Observe(huge)
	level, ok := g.Select()
	if ok {
		t.Fatalf("deadline reported met at %v MHz for %v cycles in 10 ms",
			level.MHz, IPAQ.Cycles(huge))
	}
	if level.MHz != 400 {
		t.Fatalf("miss should select the top level, got %v", level.MHz)
	}
}

// TestDVSAmplifiesIntraSaving is the §5 synergy claim: the energy gap
// between an all-intra and a full-ME frame grows once DVS can downshift
// for the lighter workload.
func TestDVSAmplifiesIntraSaving(t *testing.T) {
	g, err := NewGovernor(IPAQ, XScaleLevels, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	inter := frameOf(interMB(), 99)
	intra := frameOf(intraMB(), 99)

	// Without DVS (both at top level):
	top := XScaleLevels[len(XScaleLevels)-1]
	gapFixed := g.FrameEnergy(inter, top) / g.FrameEnergy(intra, top)

	// With DVS: each frame at its own lowest feasible level.
	levelFor := func(c Counters) FreqLevel {
		gg, err := NewGovernor(IPAQ, XScaleLevels, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		gg.Observe(c)
		l, _ := gg.Select()
		return l
	}
	gapDVS := g.FrameEnergy(inter, levelFor(inter)) / g.FrameEnergy(intra, levelFor(intra))
	t.Logf("inter/intra energy ratio: fixed %.2f, DVS %.2f", gapFixed, gapDVS)
	if gapDVS <= gapFixed {
		t.Fatalf("DVS did not amplify the intra saving: %.2f <= %.2f", gapDVS, gapFixed)
	}
}

func TestScaledProfileName(t *testing.T) {
	q := IPAQ.ScaleToLevel(XScaleLevels[0], XScaleLevels)
	if q.Name == IPAQ.Name || q.Name == "" {
		t.Fatalf("scaled profile name %q should be distinct", q.Name)
	}
}
