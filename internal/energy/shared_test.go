package energy

import (
	"sync"
	"testing"
)

func TestSharedCountersZeroValue(t *testing.T) {
	var s SharedCounters
	if got := s.Load(); got != (Counters{}) {
		t.Fatalf("Load before Publish = %+v, want zero tally", got)
	}
}

func TestSharedCountersSnapshotIsolation(t *testing.T) {
	var s SharedCounters
	live := Counters{Frames: 1, MBs: 99}
	s.Publish(live)
	live.Frames = 2 // owner keeps mutating the live tally
	if got := s.Load(); got.Frames != 1 || got.MBs != 99 {
		t.Fatalf("snapshot mutated along with live tally: %+v", got)
	}
}

// TestSharedCountersConcurrent exercises the publish/load pattern the
// serving layer uses — an encoder goroutine mutating its private tally
// and publishing per frame, exporters reading concurrently. Run under
// -race this pins the race-freedom claim in the ownership contract.
func TestSharedCountersConcurrent(t *testing.T) {
	var s SharedCounters
	const frames = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		var live Counters // single writer
		for i := 0; i < frames; i++ {
			live.Frames++
			live.MBs += 99
			live.SADPixelOps += 12345
			s.Publish(live)
		}
	}()
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				c := s.Load()
				// Snapshots must be internally consistent: MBs moves in
				// lockstep with Frames.
				if c.MBs != c.Frames*99 {
					t.Errorf("torn snapshot: Frames=%d MBs=%d", c.Frames, c.MBs)
					return
				}
			}
		}()
	}
	wg.Wait()
}
