package rate

import (
	"math"
	"testing"

	"pbpair/internal/codec"
	"pbpair/internal/core"
	"pbpair/internal/resilience"
	"pbpair/internal/synth"
	"pbpair/internal/video"
)

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0, 10, 8, 0); err == nil {
		t.Fatal("zero bitrate accepted")
	}
	if _, err := NewController(64000, 0, 8, 0); err == nil {
		t.Fatal("zero fps accepted")
	}
}

func TestQPStaysInRange(t *testing.T) {
	c, err := NewController(64000, 10, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer with enormous frames: QP must rail at 31, not beyond.
	for i := 0; i < 50; i++ {
		c.Observe(1 << 20)
	}
	if c.QP() != 31 {
		t.Fatalf("QP = %d after sustained overshoot, want 31", c.QP())
	}
	// Then with empty frames: QP must rail at 1.
	for i := 0; i < 200; i++ {
		c.Observe(0)
	}
	if c.QP() != 1 {
		t.Fatalf("QP = %d after sustained undershoot, want 1", c.QP())
	}
}

// encodeAtRate runs the full loop and returns the mean bits/frame over
// the second half (after convergence) plus the QP trajectory extremes.
func encodeAtRate(t *testing.T, planner codec.ModePlanner, targetBPS float64, frames int) (meanBits float64, minQP, maxQP int) {
	t.Helper()
	const fps = 10
	ctrl, err := NewController(targetBPS, fps, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.NewEncoder(codec.Config{
		Width: video.QCIFWidth, Height: video.QCIFHeight,
		QP: ctrl.QP(), SearchRange: 7, Planner: planner,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := synth.New(synth.RegimeForeman)
	minQP, maxQP = 31, 1
	var tail float64
	tailN := 0
	for k := 0; k < frames; k++ {
		enc.SetQP(ctrl.QP())
		if q := enc.QP(); q < minQP {
			minQP = q
		} else if q > maxQP {
			maxQP = q
		}
		ef, err := enc.EncodeFrame(src.Frame(k))
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Observe(ef.Bytes() * 8)
		if k >= frames/2 {
			tail += float64(ef.Bytes() * 8)
			tailN++
		}
	}
	return tail / float64(tailN), minQP, maxQP
}

func TestConvergesToTarget(t *testing.T) {
	const fps = 10
	for _, targetBPS := range []float64{32000, 96000} {
		mean, _, _ := encodeAtRate(t, resilience.NewNone(), targetBPS, 60)
		targetPerFrame := targetBPS / fps
		if rel := math.Abs(mean-targetPerFrame) / targetPerFrame; rel > 0.30 {
			t.Errorf("target %v bps: steady-state %.0f bits/frame vs budget %.0f (rel err %.2f)",
				targetBPS, mean, targetPerFrame, rel)
		}
	}
}

func TestHigherTargetGivesFinerQP(t *testing.T) {
	_, _, qpLow := encodeAtRate(t, resilience.NewNone(), 24000, 40)
	_, qpHigh, _ := encodeAtRate(t, resilience.NewNone(), 200000, 40)
	if qpHigh >= qpLow {
		t.Fatalf("200 kbps min QP %d not finer than 24 kbps max QP %d", qpHigh, qpLow)
	}
}

// TestComposesWithPBPAIR is the paper's independence claim: the rate
// loop and PBPAIR control different knobs (QP vs Intra_Th) and must
// work together — bitrate converges while the refresh keeps running.
func TestComposesWithPBPAIR(t *testing.T) {
	pb, err := core.New(core.Config{Rows: 9, Cols: 11, IntraTh: 0.85, PLR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const targetBPS, fps = 64000.0, 10.0
	mean, _, _ := encodeAtRate(t, pb, targetBPS, 60)
	if rel := math.Abs(mean-targetBPS/fps) / (targetBPS / fps); rel > 0.30 {
		t.Fatalf("with PBPAIR: steady state %.0f bits/frame vs %.0f", mean, targetBPS/fps)
	}
}

// TestRateControlledStreamDecodes: per-frame QP changes ride in the
// picture header, so a vanilla decoder must track them bit-exactly.
func TestRateControlledStreamDecodes(t *testing.T) {
	ctrl, err := NewController(48000, 10, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.NewEncoder(codec.Config{
		Width: video.QCIFWidth, Height: video.QCIFHeight,
		QP: ctrl.QP(), SearchRange: 7, Planner: resilience.NewNone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewDecoder(video.QCIFWidth, video.QCIFHeight)
	if err != nil {
		t.Fatal(err)
	}
	src := synth.New(synth.RegimeGarden)
	sawQPChange := false
	lastQP := enc.QP()
	for k := 0; k < 20; k++ {
		enc.SetQP(ctrl.QP())
		if enc.QP() != lastQP {
			sawQPChange = true
			lastQP = enc.QP()
		}
		ef, err := enc.EncodeFrame(src.Frame(k))
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Observe(ef.Bytes() * 8)
		res, err := dec.DecodeFrame(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Frame.Equal(enc.ReconClone()) {
			t.Fatalf("frame %d: drift under rate control (QP %d)", k, enc.QP())
		}
	}
	if !sawQPChange {
		t.Fatal("rate controller never moved QP; test is vacuous")
	}
}

func TestBufferLeakBoundsIFrameImpact(t *testing.T) {
	c, err := NewController(48000, 10, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One huge I-frame, then exact-budget frames: QP must return to
	// within 2 of its start within 30 frames.
	start := c.QP()
	c.Observe(40000)
	for i := 0; i < 30; i++ {
		c.Observe(int(c.TargetBits()))
	}
	if diff := c.QP() - start; diff > 2 || diff < -2 {
		t.Fatalf("QP %d has not recovered near start %d after the I-frame", c.QP(), start)
	}
}
