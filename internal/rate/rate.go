// Package rate implements a TMN-style frame-level rate controller for
// the codec. The paper stresses that PBPAIR "is independent from any
// other encoder and/or decoder side control mechanisms (i.e. rate
// control, channel coding, etc.)"; this package makes that claim
// testable by composing a rate loop with any resilience scheme.
//
// The control law integrates the normalised per-frame bit error into
// the quantiser parameter: frames over budget push QP up (coarser),
// frames under budget pull it down. The error is slew-limited so a
// single oversized frame (an I-frame, or a refresh burst) nudges QP by
// at most gain·2 instead of yanking it to the rail, and the integral
// is clamped at the QP limits (anti-windup).
package rate

import (
	"fmt"

	"pbpair/internal/quant"
)

// Error slew limits, in units of the per-frame budget. Overshoot is
// allowed a larger step than undershoot because oversized frames (I
// frames) are transient and large, while undershoot is small and
// persistent.
const (
	maxOverError  = 2.0
	maxUnderError = -1.0
)

// Controller is the frame-level rate loop. Create with NewController;
// call QP before each frame and Observe after it.
type Controller struct {
	targetBits float64 // budget per frame
	qp         float64 // continuous QP state (clamped on output)
	gain       float64
}

// NewController returns a controller targeting bitsPerSecond at the
// given frame rate, starting from startQP. gain <= 0 selects the
// default 0.6 (QP steps per budget-of-error per frame).
func NewController(bitsPerSecond, fps float64, startQP int, gain float64) (*Controller, error) {
	if bitsPerSecond <= 0 {
		return nil, fmt.Errorf("rate: target %v bits/s must be positive", bitsPerSecond)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("rate: frame rate %v must be positive", fps)
	}
	if gain <= 0 {
		gain = 0.6
	}
	return &Controller{
		targetBits: bitsPerSecond / fps,
		qp:         float64(quant.ClampQP(startQP)),
		gain:       gain,
	}, nil
}

// QP returns the quantiser parameter to use for the next frame.
func (c *Controller) QP() int { return quant.ClampQP(int(c.qp + 0.5)) }

// TargetBits returns the per-frame bit budget.
func (c *Controller) TargetBits() float64 { return c.targetBits }

// Observe records the actual size of the frame just encoded and
// returns the QP for the next one.
func (c *Controller) Observe(frameBits int) int {
	err := (float64(frameBits) - c.targetBits) / c.targetBits
	if err > maxOverError {
		err = maxOverError
	}
	if err < maxUnderError {
		err = maxUnderError
	}
	c.qp += c.gain * err
	// Anti-windup: hold the continuous state at the rails.
	if c.qp < quant.MinQP {
		c.qp = quant.MinQP
	}
	if c.qp > quant.MaxQP {
		c.qp = quant.MaxQP
	}
	return c.QP()
}
